// Command benchcheck compares `go test -bench` output (on stdin)
// against the recorded engine perf baseline (BENCH_engine.json) and
// fails when any benchmark regressed beyond the threshold. It is the
// guard that keeps the event-engine fast path fast:
//
//	go test -bench 'BenchmarkSyncFastPath|...' -run xxx ./internal/sim/ \
//	    | benchcheck -baseline BENCH_engine.json -max-regress 25
//
// Absolute ns/op thresholds drift with the shared host (this file has
// recorded 25-40% day-to-day swings with zero code change), so an entry
// may instead name a paired control: "control" is another benchmark
// measured in the same run, and "max_ratio" is the largest tolerated
// value of entry/control. Ratios of same-run measurements cancel host
// speed, making the check portable — it is how the inline-dispatch win
// over the goroutine-dispatch control is pinned. An entry may carry
// both kinds of bound; each is checked when its inputs are present.
//
// Benchmarks present in the baseline but missing from stdin are
// warnings, not failures, so a scoped bench run still checks what it
// ran.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// baselineFile mirrors the slice of BENCH_engine.json this tool needs:
// per-package benchmark entries whose "after" field is the recorded
// ns/op of the current engine. Entries that are not objects with an
// "after" number (annotations like grid_sims_per_op) are ignored.
type baselineFile struct {
	Results map[string]map[string]json.RawMessage `json:"results"`
}

// entry is the checkable slice of a baseline record: an absolute bound
// ("after" ns/op, checked against -max-regress) and/or a paired bound
// (entry must stay under max_ratio x the same-run "control" benchmark).
type entry struct {
	After    float64 `json:"after"`
	Control  string  `json:"control"`
	MaxRatio float64 `json:"max_ratio"`
}

// entryOf decodes a baseline record, returning the zero entry when the
// record is not an object (annotations like grid_sims_per_op).
func entryOf(raw json.RawMessage) entry {
	var e entry
	if json.Unmarshal(raw, &e) != nil {
		return entry{}
	}
	return e
}

// parseBench extracts "BenchmarkName ns/op" pairs from `go test -bench`
// output. The -N GOMAXPROCS suffix is stripped, so entries match the
// baseline's keys regardless of the host's core count.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkX-8   12345   67.8 ns/op [...]"
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		idx := -1
		for i, f := range fields {
			if f == "ns/op" {
				idx = i
				break
			}
		}
		if idx < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[idx-1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if dash := strings.LastIndexByte(name, '-'); dash > 0 {
			name = name[:dash]
		}
		out[name] = v
	}
	return out, sc.Err()
}

// check compares measured ns/op against the baseline "after" values and
// paired-control ratios. It returns human-readable result lines and
// whether any benchmark broke its bound.
func check(base baselineFile, got map[string]float64, maxRegressPct float64) (lines []string, failed bool) {
	for _, pkg := range sortedKeys(base.Results) {
		for _, key := range sortedKeys(base.Results[pkg]) {
			name := strings.TrimSuffix(key, "_ns_op")
			e := entryOf(base.Results[pkg][key])
			if e.After <= 0 && (e.Control == "" || e.MaxRatio <= 0) {
				continue
			}
			v, ok := got[name]
			if !ok {
				lines = append(lines, fmt.Sprintf("warn: %s/%s not in input (baseline %.4g ns/op)", pkg, name, e.After))
				continue
			}
			if e.After > 0 {
				deltaPct := (v - e.After) / e.After * 100
				status := "ok"
				if deltaPct > maxRegressPct {
					status = "FAIL"
					failed = true
				}
				lines = append(lines, fmt.Sprintf("%-4s %s/%s: %.4g ns/op vs baseline %.4g (%+.1f%%, limit +%.0f%%)",
					status, pkg, name, v, e.After, deltaPct, maxRegressPct))
			}
			if e.Control != "" && e.MaxRatio > 0 {
				ctl, ok := got[e.Control]
				if !ok || ctl <= 0 {
					lines = append(lines, fmt.Sprintf("warn: %s/%s control %s not in input (ratio bound %.3g unchecked)",
						pkg, name, e.Control, e.MaxRatio))
					continue
				}
				ratio := v / ctl
				status := "ok"
				if ratio > e.MaxRatio {
					status = "FAIL"
					failed = true
				}
				lines = append(lines, fmt.Sprintf("%-4s %s/%s: %.4g ns/op = %.3fx same-run %s (limit %.3gx)",
					status, pkg, name, v, ratio, e.Control, e.MaxRatio))
			}
		}
	}
	return lines, failed
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "recorded perf baseline")
	maxRegress := flag.Float64("max-regress", 25, "max tolerated slowdown in percent")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	got, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin")
		os.Exit(2)
	}
	lines, failed := check(base, got, *maxRegress)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		os.Exit(1)
	}
}

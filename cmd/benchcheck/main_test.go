package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSyncFastPath-8   	837002847	         1.40 ns/op
BenchmarkDispatch-8       	  2270961	       530.0 ns/op
BenchmarkServerAcquire 	164103818	         20.0 ns/op
PASS
ok  	repro/internal/sim	4.5s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSyncFastPath":  1.40,
		"BenchmarkDispatch":      530.0,
		"BenchmarkServerAcquire": 20.0,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func mkBase() baselineFile {
	var b baselineFile
	if err := json.Unmarshal([]byte(`{"results": {"internal/sim": {
		"BenchmarkSyncFastPath_ns_op":  {"after": 1.35},
		"BenchmarkDispatch_ns_op":      {"after": 527.0},
		"BenchmarkServerAcquire_ns_op": {"after": 7.3},
		"BenchmarkAbsent_ns_op":        {"after": 100.0},
		"grid_sims_per_op":             9
	}}}`), &b); err != nil {
		panic(err)
	}
	return b
}

func TestCheckFailsOnRegression(t *testing.T) {
	got, _ := parseBench(strings.NewReader(sampleBenchOutput))
	// ServerAcquire: 20.0 vs 7.3 baseline = +174% -> fail at 25%.
	lines, failed := check(mkBase(), got, 25)
	if !failed {
		t.Fatalf("regression not flagged:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "FAIL internal/sim/BenchmarkServerAcquire") {
		t.Errorf("missing FAIL line:\n%s", joined)
	}
	if !strings.Contains(joined, "warn: internal/sim/BenchmarkAbsent not in input") {
		t.Errorf("missing-benchmark warning absent:\n%s", joined)
	}
	// SyncFastPath at +3.7% and Dispatch at +0.6% must pass.
	if strings.Contains(joined, "FAIL internal/sim/BenchmarkSyncFastPath") ||
		strings.Contains(joined, "FAIL internal/sim/BenchmarkDispatch") {
		t.Errorf("within-threshold benchmarks flagged:\n%s", joined)
	}
}

func TestCheckPassesWithinThreshold(t *testing.T) {
	got := map[string]float64{
		"BenchmarkSyncFastPath":  1.60, // +18.5%
		"BenchmarkDispatch":      500.0,
		"BenchmarkServerAcquire": 8.0,
	}
	if lines, failed := check(mkBase(), got, 25); failed {
		t.Errorf("false positive:\n%s", strings.Join(lines, "\n"))
	}
}

// mkRatioBase pins BenchmarkDispatchInline to at most 0.5x its same-run
// goroutine control, with no absolute bound on the inline entry itself.
func mkRatioBase() baselineFile {
	var b baselineFile
	if err := json.Unmarshal([]byte(`{"results": {"internal/sim": {
		"BenchmarkDispatchInline_ns_op": {
			"control": "BenchmarkDispatchInlineGoroutine", "max_ratio": 0.5
		},
		"BenchmarkDispatchInlineGoroutine_ns_op": {"after": 300.0}
	}}}`), &b); err != nil {
		panic(err)
	}
	return b
}

func TestCheckPairedControlRatio(t *testing.T) {
	// 36/305 = 0.118x: well under the 0.5x bound.
	got := map[string]float64{
		"BenchmarkDispatchInline":          36.0,
		"BenchmarkDispatchInlineGoroutine": 305.0,
	}
	lines, failed := check(mkRatioBase(), got, 25)
	joined := strings.Join(lines, "\n")
	if failed {
		t.Errorf("in-bound ratio flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "0.118x same-run BenchmarkDispatchInlineGoroutine") {
		t.Errorf("ratio line missing:\n%s", joined)
	}

	// 200/305 = 0.656x: breaks the 0.5x bound even though both absolute
	// numbers would look fine on a slow host.
	got["BenchmarkDispatchInline"] = 200.0
	lines, failed = check(mkRatioBase(), got, 25)
	joined = strings.Join(lines, "\n")
	if !failed || !strings.Contains(joined, "FAIL internal/sim/BenchmarkDispatchInline:") {
		t.Errorf("out-of-bound ratio not flagged:\n%s", joined)
	}
}

func TestCheckPairedControlMissing(t *testing.T) {
	// Control absent from the run: warn, don't fail — mirrors the
	// missing-benchmark policy for scoped runs.
	got := map[string]float64{"BenchmarkDispatchInline": 36.0}
	lines, failed := check(mkRatioBase(), got, 25)
	joined := strings.Join(lines, "\n")
	if failed {
		t.Errorf("missing control failed the check:\n%s", joined)
	}
	if !strings.Contains(joined, "warn: internal/sim/BenchmarkDispatchInline control BenchmarkDispatchInlineGoroutine not in input") {
		t.Errorf("missing-control warning absent:\n%s", joined)
	}
}

// Command paperbench regenerates every table and figure of the paper's
// evaluation section on the simulator and prints them as text tables.
//
// Usage:
//
//	paperbench [-scale small|default|paper] [-only table3,fig2,...] [-apps fir,depth] [-j N]
//
// The default scale runs the same workload shapes as the paper at
// reduced dataset sizes; -scale paper uses paper-sized inputs (slow).
//
// Simulations run -j at a time (default: GOMAXPROCS) on a deduplicating
// worker pool. Every simulation is an isolated deterministic engine and
// results are collected in a fixed order, so table and figure output is
// byte-identical at any -j; only the stderr progress interleaving varies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
)

// gitDescribe identifies the tree the artifacts were produced from;
// "unknown" when git or the repository is unavailable (e.g. a released
// binary run outside a checkout).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// manifestRun is one simulation's record in manifest.jsonl: the bench
// record (full config, report, host duration) plus the headline
// numbers a reader wants without digging into the report.
type manifestRun struct {
	Kind string `json:"kind"` // "run"
	bench.Record
	WallFS       uint64  `json:"wall_fs"`
	FastPathRate float64 `json:"fastpath_rate"`
}

// manifestWriter serializes concurrent OnRecord callbacks into one
// append-only JSONL stream.
type manifestWriter struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

func newManifestWriter(dir string, scale string) (*manifestWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		return nil, err
	}
	m := &manifestWriter{f: f, enc: json.NewEncoder(f)}
	header := struct {
		Kind    string `json:"kind"` // "header"
		Git     string `json:"git"`
		Scale   string `json:"scale"`
		Started string `json:"started"`
	}{"header", gitDescribe(), scale, time.Now().UTC().Format(time.RFC3339)}
	if err := m.enc.Encode(header); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// record is the bench.Runner.OnRecord callback.
func (m *manifestWriter) record(rec bench.Record) {
	run := manifestRun{Kind: "run", Record: rec}
	if rec.Report != nil {
		run.WallFS = uint64(rec.Report.Wall)
		run.FastPathRate = rec.Report.Engine.FastPathRate()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.enc.Encode(run); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: manifest: %v\n", err)
	}
}

func (m *manifestWriter) close() error { return m.f.Close() }

func main() {
	scaleFlag := flag.String("scale", "default", "dataset scale: small, default or paper")
	onlyFlag := flag.String("only", "", "comma-separated subset: table2,table3,fig2,...,fig10")
	appsFlag := flag.String("apps", "", "restrict fig2 to these comma-separated apps")
	quiet := flag.Bool("q", false, "suppress per-run progress lines")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV files into this directory")
	artifactsDir := flag.String("artifacts", "", "write a machine-readable manifest.jsonl (one record per simulation) into this directory")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (output is identical at any -j)")
	flag.Parse()

	var scale workload.Scale
	switch *scaleFlag {
	case "small":
		scale = workload.ScaleSmall
	case "default":
		scale = workload.ScaleDefault
	case "paper":
		scale = workload.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, k := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var apps []string
	if *appsFlag != "" {
		apps = strings.Split(*appsFlag, ",")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}
	writeCSV := func(name string, tb *stats.Table) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		tb.WriteCSV(f)
		f.Close()
	}
	barsCSV := func(name string, bars []bench.Bar) {
		tb := stats.NewTable("", "config", "useful", "sync", "load", "store", "total")
		for _, b := range bars {
			tb.Row(b.Label, b.Useful, b.Sync, b.Load, b.Store, b.Total)
		}
		writeCSV(name, tb)
	}
	trafficCSV := func(name string, bars []bench.TrafficBar) {
		tb := stats.NewTable("", "config", "read", "write")
		for _, b := range bars {
			tb.Row(b.Label, b.Read, b.Write)
		}
		writeCSV(name, tb)
	}
	energyCSV := func(name string, bars []bench.EnergyBar) {
		tb := stats.NewTable("", "config", "core", "icache", "dcache", "lmem", "net", "l2", "dram")
		for _, b := range bars {
			tb.Row(b.Label, b.Core, b.ICache, b.DCache, b.LMem, b.Net, b.L2, b.DRAM)
		}
		writeCSV(name, tb)
	}

	r := bench.NewRunner(scale)
	r.Workers = *jobs
	if !*quiet {
		r.Progress = os.Stderr
	}
	var manifest *manifestWriter
	if *artifactsDir != "" {
		var err error
		if manifest, err = newManifestWriter(*artifactsDir, *scaleFlag); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		r.OnRecord = manifest.record
	}
	out := os.Stdout
	start := time.Now()
	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", what, err)
		os.Exit(1)
	}

	if sel("table2") {
		bench.Table2(out)
		fmt.Fprintln(out)
	}
	if sel("table3") {
		rows, err := r.Table3(out)
		if err != nil {
			fail("table3", err)
		}
		tb := stats.NewTable("", "app", "l1miss", "l2miss", "instrPerL1Miss", "cycPerL2Miss", "offchipMBps")
		for _, row := range rows {
			tb.Row(row.App, row.L1MissRate, row.L2MissRate, row.InstrPerL1Miss, row.CyclesPerL2, row.OffChipMBps)
		}
		writeCSV("table3", tb)
		fmt.Fprintln(out)
	}
	if sel("fig2") {
		series, err := r.Figure2(out, apps)
		if err != nil {
			fail("fig2", err)
		}
		for _, app := range bench.SortedKeys(series) {
			barsCSV("fig2-"+app, series[app])
		}
		fmt.Fprintln(out)
	}
	if sel("fig3") {
		series, err := r.Figure3(out)
		if err != nil {
			fail("fig3", err)
		}
		for _, app := range bench.SortedKeys(series) {
			trafficCSV("fig3-"+app, series[app])
		}
		fmt.Fprintln(out)
	}
	if sel("fig4") {
		series, err := r.Figure4(out)
		if err != nil {
			fail("fig4", err)
		}
		for _, app := range bench.SortedKeys(series) {
			energyCSV("fig4-"+app, series[app])
		}
		fmt.Fprintln(out)
	}
	if sel("fig5") {
		series, err := r.Figure5(out)
		if err != nil {
			fail("fig5", err)
		}
		for _, app := range bench.SortedKeys(series) {
			barsCSV("fig5-"+app, series[app])
		}
		fmt.Fprintln(out)
	}
	if sel("fig6") {
		bars, err := r.Figure6(out)
		if err != nil {
			fail("fig6", err)
		}
		barsCSV("fig6-fir", bars)
		fmt.Fprintln(out)
	}
	if sel("fig7") {
		series, err := r.Figure7(out)
		if err != nil {
			fail("fig7", err)
		}
		for _, app := range bench.SortedKeys(series) {
			barsCSV("fig7-"+app, series[app])
		}
		fmt.Fprintln(out)
	}
	if sel("fig8") {
		traffic, energy, err := r.Figure8(out)
		if err != nil {
			fail("fig8", err)
		}
		for _, app := range bench.SortedKeys(traffic) {
			trafficCSV("fig8-"+app, traffic[app])
		}
		energyCSV("fig8-fir-energy", energy)
		fmt.Fprintln(out)
	}
	if sel("fig9") {
		bars, traffic, err := r.Figure9(out)
		if err != nil {
			fail("fig9", err)
		}
		barsCSV("fig9-mpeg2-time", bars)
		trafficCSV("fig9-mpeg2-traffic", traffic)
		fmt.Fprintln(out)
	}
	if sel("fig10") {
		bars, err := r.Figure10(out)
		if err != nil {
			fail("fig10", err)
		}
		barsCSV("fig10-art", bars)
		fmt.Fprintln(out)
	}
	r.Close() // drain pending progress lines before the summary
	if manifest != nil {
		if err := manifest.close(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: manifest: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "# paperbench finished in %v\n", time.Since(start).Round(time.Millisecond))
}

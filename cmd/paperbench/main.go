// Command paperbench regenerates every table and figure of the paper's
// evaluation section on the simulator and prints them as text tables.
//
// Usage:
//
//	paperbench [-scale small|default|paper] [-only table3,fig2,...] [-apps fir,depth] [-j N]
//	           [-job-timeout 2m] [-retries 2] [-artifacts DIR] [-resume] [-manifest-sync]
//	           [-store DIR] [-store-max-bytes N] [-txn-trace FILE.jsonl]
//	           [-cpuprofile cpu.pprof] [-blockprofile block.pprof]
//	           [-http :9090] [-http-linger 60s] [-flightrec 256]
//
// The default scale runs the same workload shapes as the paper at
// reduced dataset sizes; -scale paper uses paper-sized inputs (slow).
//
// Simulations run -j at a time (default: GOMAXPROCS) on a deduplicating
// worker pool. Every simulation is an isolated deterministic engine and
// results are collected in a fixed order, so table and figure output is
// byte-identical at any -j; only the stderr progress interleaving varies.
//
// A failing simulation does not kill the campaign: its cells render as
// ERR, the figure gains a "N ok / M failed" summary line, and the
// manifest records the typed failure with the engine's state dump.
// -resume replays an existing manifest.jsonl (requires -artifacts),
// seeding every previously successful run so only missing and failed
// jobs simulate again.
//
// -store DIR attaches a persistent, crash-safe result store shared
// across campaigns: each job probes it before simulating and a verified
// hit (matching config hash, workload, dataset -scale and code version)
// is recalled instead of re-run, while fresh results are journaled back
// with CRC32C checksums. Corrupt or stale records are quarantined to
// quarantine.jsonl and re-simulated — never served; results stored at
// one -scale never answer a campaign at another. One process owns a
// store directory at a time (a concurrent open fails with "in use").
// Figure output is byte-identical with or without the store.
//
// -http serves live campaign telemetry while the figures run: GET
// /metrics (Prometheus text), GET /progress (JSON span table with
// per-figure completion and a rate-based ETA), and net/http/pprof under
// /debug/pprof. -http-linger keeps the endpoint up after the campaign
// finishes (until the duration passes or /quit is hit) so scrapers can
// collect the final state. When stderr is a terminal, a single in-place
// status line summarizes the pool; pipes get the plain progress lines,
// byte-identical to previous releases. Every fresh simulation also arms
// an engine flight recorder (-flightrec events), so failure records
// carry the scheduler-event tail that led to the deadlock or abort.
//
// Exit codes (shared with memsim): 0 success, 1 runtime/IO failure,
// 2 flag or configuration validation error, 3 grid completed partially
// (at least one cell failed).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/ledger"
	"repro/internal/resultstore"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/txntrace"
	"repro/internal/workload"
)

// gitDescribe identifies the tree the artifacts were produced from;
// "unknown" when git or the repository is unavailable (e.g. a released
// binary run outside a checkout).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// manifestRun is one simulation's record in manifest.jsonl: the bench
// record (full config, report, host duration) plus the headline
// numbers a reader wants without digging into the report.
type manifestRun struct {
	Kind string `json:"kind"` // "run"
	bench.Record
	WallFS       uint64  `json:"wall_fs"`
	FastPathRate float64 `json:"fastpath_rate"`
	HandoffRate  float64 `json:"handoff_rate"`
	InlineRate   float64 `json:"inline_rate"`
}

// manifestWriter serializes concurrent OnRecord callbacks into one
// append-only JSONL stream. The header is fsynced at open so a
// powerloss mid-campaign can never lose the whole journal; -manifest-sync
// extends that to every record. Write errors surface once (the first),
// then are suppressed — a dead disk would otherwise print one error per
// simulation.
type manifestWriter struct {
	mu       sync.Mutex
	f        *os.File
	enc      *json.Encoder
	syncEach bool
	stderr   io.Writer
	failed   bool
}

// newManifestWriter opens dir/manifest.jsonl and writes this
// invocation's header. With resume the journal is appended to, keeping
// the prior campaign's records; otherwise it is truncated.
func newManifestWriter(dir string, scale string, resume, syncEach bool, stderr io.Writer) (*manifestWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if resume {
		mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(filepath.Join(dir, "manifest.jsonl"), mode, 0o644)
	if err != nil {
		return nil, err
	}
	m := &manifestWriter{f: f, enc: json.NewEncoder(f), syncEach: syncEach, stderr: stderr}
	header := struct {
		Kind    string `json:"kind"` // "header"
		Git     string `json:"git"`
		Scale   string `json:"scale"`
		Started string `json:"started"`
	}{"header", gitDescribe(), scale, time.Now().UTC().Format(time.RFC3339)}
	if err := m.enc.Encode(header); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// record is the bench.Runner.OnRecord callback.
func (m *manifestWriter) record(rec bench.Record) {
	run := manifestRun{Kind: "run", Record: rec}
	if rec.Report != nil {
		run.WallFS = uint64(rec.Report.Wall)
		run.FastPathRate = rec.Report.Engine.FastPathRate()
		run.HandoffRate = rec.Report.Engine.HandoffRate()
		run.InlineRate = rec.Report.Engine.InlineRate()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.enc.Encode(run)
	if err == nil && m.syncEach {
		err = m.f.Sync()
	}
	if err != nil && !m.failed {
		m.failed = true
		fmt.Fprintf(m.stderr, "paperbench: manifest: write failed (suppressing further errors): %v\n", err)
	}
}

// close syncs and closes the journal; a write failure anywhere in the
// campaign surfaces here too, so the exit code reflects a bad manifest
// even when the one-time warning scrolled away.
func (m *manifestWriter) close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	serr := m.f.Sync()
	cerr := m.f.Close()
	switch {
	case m.failed:
		return errors.New("one or more records failed to write (see first error above)")
	case serr != nil:
		return serr
	default:
		return cerr
	}
}

// txnSink gathers each fresh simulation's transaction tracer from the
// OnRecord stream and writes one deterministic JSONL file at campaign
// end: per run a header line (workload, config, tail_exemplars digest)
// followed by that run's retained transaction trees. Runs are sorted by
// (workload, config) so the file is byte-identical at any -j; store
// hits and resume-seeded jobs carry no tracer and are skipped.
type txnSink struct {
	mu   sync.Mutex
	recs []bench.Record
}

func (s *txnSink) record(rec bench.Record) {
	if rec.Txn == nil {
		return
	}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

func (s *txnSink) write(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	type keyed struct {
		key string
		rec bench.Record
	}
	ks := make([]keyed, 0, len(s.recs))
	for _, rec := range s.recs {
		cj, err := json.Marshal(rec.Cfg)
		if err != nil {
			return err
		}
		ks = append(ks, keyed{rec.Name + "\x00" + string(cj), rec})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, k := range ks {
		// A map marshals with sorted keys, keeping the header stable.
		hdr := map[string]any{
			"kind":     "run",
			"workload": k.rec.Name,
			"config":   k.rec.Cfg,
		}
		if len(k.rec.TailExemplars) > 0 {
			hdr["tail_exemplars"] = k.rec.TailExemplars
		}
		if err := enc.Encode(hdr); err != nil {
			f.Close()
			return err
		}
		if err := k.rec.Txn.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// seedFromManifest replays a previous campaign's journal into the
// runner's memo table: every "run" record that completed cleanly is
// seeded (first record wins), so the resumed campaign simulates only
// missing and failed jobs. Replay is per line and skip-and-warn: a
// malformed record anywhere in the journal costs that record, never the
// valid ones after it. A torn final line — a campaign killed mid-write —
// is tolerated with its own warning, matching append-only journal
// semantics (a torn line that still parses is seeded normally).
func seedFromManifest(path string, r *bench.Runner, stderr io.Writer) (seeded, failed int, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for line := 1; ; line++ {
		raw, rerr := br.ReadBytes('\n')
		if len(bytes.TrimSpace(raw)) > 0 {
			var rec manifestRun
			if jerr := json.Unmarshal(raw, &rec); jerr != nil {
				if rerr == nil {
					fmt.Fprintf(stderr, "# paperbench: resume: skipping malformed manifest line %d: %v\n", line, jerr)
				} else {
					fmt.Fprintf(stderr, "# paperbench: resume: ignoring torn final manifest line %d (campaign killed mid-write?)\n", line)
				}
			} else if rec.Kind == "run" {
				if rec.Err != "" || rec.Report == nil {
					failed++
				} else if r.Seed(rec.Cfg, rec.Name, rec.Report) {
					seeded++
				}
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				return seeded, failed, rerr
			}
			return seeded, failed, nil
		}
	}
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "default", "dataset scale: small, default or paper")
	onlyFlag := fs.String("only", "", "comma-separated subset: table2,table3,fig2,...,fig10,breakdown")
	appsFlag := fs.String("apps", "", "restrict fig2 to these comma-separated apps")
	quiet := fs.Bool("q", false, "suppress per-run progress lines")
	csvDir := fs.String("csv", "", "also write each figure's series as CSV files into this directory")
	artifactsDir := fs.String("artifacts", "", "write a machine-readable manifest.jsonl (one record per simulation) into this directory")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (output is identical at any -j)")
	jobTimeout := fs.Duration("job-timeout", 0, "wall-clock watchdog per simulation (0 = off); timed-out jobs fail with a progress dump")
	retries := fs.Int("retries", 0, "retry budget per job for retryable failures (timeouts, panics)")
	resume := fs.Bool("resume", false, "seed completed jobs from an existing manifest.jsonl (requires -artifacts) and re-run only missing/failed ones")
	storeDir := fs.String("store", "", "persistent cross-campaign result store directory: verified results are recalled instead of re-simulated (crash-safe; corrupt records are quarantined and re-run)")
	storeMax := fs.Int64("store-max-bytes", 0, "cap the -store journal at this many bytes via LRU compaction (0 = unbounded)")
	manifestSync := fs.Bool("manifest-sync", false, "fsync manifest.jsonl after every record (slower; survives powerloss, not just process death)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole campaign to this file")
	blockProfile := fs.String("blockprofile", "", "write a pprof blocking profile (rate 1) to this file; shows where goroutines wait")
	httpAddr := fs.String("http", "", "serve live campaign telemetry on this address: GET /metrics, /progress, /debug/pprof (empty = off)")
	httpLinger := fs.Duration("http-linger", 0, "keep -http serving this long after the campaign finishes (ends early on /quit)")
	flightRec := fs.Int("flightrec", 0, "per-job flight-recorder depth: last K scheduler events in failure dumps (0 = default 256, negative = off)")
	txnTrace := fs.String("txn-trace", "", "arm per-run transaction tracing with worst-K tail exemplars, write every retained tree as JSONL to this file, and record tail_exemplars blocks in the manifest")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var scale workload.Scale
	switch *scaleFlag {
	case "small":
		scale = workload.ScaleSmall
	case "default":
		scale = workload.ScaleDefault
	case "paper":
		scale = workload.ScalePaper
	default:
		fmt.Fprintf(stderr, "paperbench: unknown scale %q\n", *scaleFlag)
		return 2
	}
	if *jobTimeout < 0 {
		fmt.Fprintln(stderr, "paperbench: -job-timeout must be non-negative")
		return 2
	}
	if *retries < 0 {
		fmt.Fprintln(stderr, "paperbench: -retries must be non-negative")
		return 2
	}
	if *resume && *artifactsDir == "" {
		fmt.Fprintln(stderr, "paperbench: -resume requires -artifacts (the manifest.jsonl to replay)")
		return 2
	}
	if *httpLinger < 0 {
		fmt.Fprintln(stderr, "paperbench: -http-linger must be non-negative")
		return 2
	}
	if *httpLinger > 0 && *httpAddr == "" {
		fmt.Fprintln(stderr, "paperbench: -http-linger requires -http")
		return 2
	}
	if *manifestSync && *artifactsDir == "" {
		fmt.Fprintln(stderr, "paperbench: -manifest-sync requires -artifacts")
		return 2
	}
	if *storeMax < 0 {
		fmt.Fprintln(stderr, "paperbench: -store-max-bytes must be non-negative")
		return 2
	}
	if *storeMax > 0 && *storeDir == "" {
		fmt.Fprintln(stderr, "paperbench: -store-max-bytes requires -store")
		return 2
	}

	// Profiling wraps the whole campaign: start before any simulation
	// spawns, flush via defer so every return path (including partial
	// and fatal exits) still writes usable profiles.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "paperbench: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer func() {
			runtime.SetBlockProfileRate(0)
			f, err := os.Create(*blockProfile)
			if err != nil {
				fmt.Fprintf(stderr, "paperbench: -blockprofile: %v\n", err)
				return
			}
			if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "paperbench: -blockprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, k := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var apps []string
	if *appsFlag != "" {
		apps = strings.Split(*appsFlag, ",")
		for _, app := range apps {
			if _, err := workload.Get(app); err != nil {
				fmt.Fprintf(stderr, "paperbench: -apps: %v\n", err)
				return 2
			}
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "paperbench: %v\n", err)
			return 1
		}
	}
	var ioFail error
	writeCSV := func(name string, tb *stats.Table) {
		if *csvDir == "" || ioFail != nil {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			ioFail = err
			return
		}
		tb.WriteCSV(f)
		f.Close()
	}
	barsCSV := func(name string, bars []bench.Bar) {
		tb := stats.NewTable("", "config", "useful", "sync", "load", "store", "total")
		for _, b := range bars {
			if b.Err {
				tb.Row(b.Label, "ERR", "ERR", "ERR", "ERR", "ERR")
				continue
			}
			tb.Row(b.Label, b.Useful, b.Sync, b.Load, b.Store, b.Total)
		}
		writeCSV(name, tb)
	}
	trafficCSV := func(name string, bars []bench.TrafficBar) {
		tb := stats.NewTable("", "config", "read", "write")
		for _, b := range bars {
			if b.Err {
				tb.Row(b.Label, "ERR", "ERR")
				continue
			}
			tb.Row(b.Label, b.Read, b.Write)
		}
		writeCSV(name, tb)
	}
	breakdownCSV := func(name string, bars []bench.BreakdownBar) {
		names := ledger.ClassNames()
		tb := stats.NewTable("", append([]string{"config"}, names...)...)
		for _, b := range bars {
			row := []interface{}{b.Label}
			for c := range b.Classes {
				if b.Err {
					row = append(row, "ERR")
				} else {
					row = append(row, b.Classes[c])
				}
			}
			tb.Row(row...)
		}
		writeCSV(name, tb)
	}
	energyCSV := func(name string, bars []bench.EnergyBar) {
		tb := stats.NewTable("", "config", "core", "icache", "dcache", "lmem", "net", "l2", "dram")
		for _, b := range bars {
			if b.Err {
				tb.Row(b.Label, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
				continue
			}
			tb.Row(b.Label, b.Core, b.ICache, b.DCache, b.LMem, b.Net, b.L2, b.DRAM)
		}
		writeCSV(name, tb)
	}

	r := bench.NewRunner(scale)
	r.Workers = *jobs
	r.JobTimeout = *jobTimeout
	r.Retries = *retries
	r.FlightRecorder = *flightRec
	var txns *txnSink
	if *txnTrace != "" {
		r.TxnExemplars = txntrace.DefaultK
		txns = &txnSink{}
	}

	// The persistent result store: verified results from any previous
	// campaign of this code version are recalled instead of re-simulated.
	// Opening recovers from whatever a crash left behind (torn tails are
	// truncated, corrupt records quarantined), so -store after a SIGKILL
	// just works.
	var store *resultstore.Store
	if *storeDir != "" {
		var err error
		store, err = resultstore.Open(resultstore.Options{
			Dir: *storeDir, Version: gitDescribe(), MaxBytes: *storeMax, Log: stderr,
		})
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: -store: %v\n", err)
			return 1
		}
		defer store.Close()
		r.Store = store
	}

	// Campaign telemetry: allocated when anything will read it (-http, or
	// the in-place status line on an interactive stderr). With neither,
	// r.Telemetry stays nil and every span call is a no-op — figure
	// output is byte-identical regardless.
	useStatus := !*quiet && telemetry.IsTerminal(stderr)
	var tele *telemetry.Campaign
	if *httpAddr != "" || useStatus {
		tele = telemetry.NewCampaign()
		r.Telemetry = tele
		if store != nil {
			tele.SetStoreStats(func() telemetry.StoreStats {
				s := store.Stats()
				return telemetry.StoreStats{
					Records: s.Records, Bytes: s.Bytes,
					Hits: s.Hits, Misses: s.Misses, Puts: s.Puts, PutErrors: s.PutErrors,
					Evictions: s.Evictions, Compactions: s.Compactions,
					Recovered: s.Recovered, Corrupt: s.Corrupt, TruncatedBytes: s.TruncatedBytes,
				}
			})
		}
	}
	var srv *telemetry.Server
	if *httpAddr != "" {
		var err error
		if srv, err = telemetry.Serve(*httpAddr, tele); err != nil {
			fmt.Fprintf(stderr, "paperbench: -http: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "# paperbench: telemetry on http://%s (/metrics, /progress, /debug/pprof)\n", srv.Addr())
	}
	var sl *telemetry.StatusLine
	if !*quiet {
		if useStatus {
			// Interactive terminal: progress lines scroll above a single
			// redrawn-in-place campaign summary line.
			sl = telemetry.NewStatusLine(stderr, tele)
			sl.Start(0)
			r.Progress = sl.Writer()
		} else {
			r.Progress = stderr
		}
	}
	if *resume {
		seeded, prevFailed, err := seedFromManifest(filepath.Join(*artifactsDir, "manifest.jsonl"), r, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: resume: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "# paperbench: resume: %d completed jobs seeded, %d prior failures will re-run\n",
			seeded, prevFailed)
	}
	var manifest *manifestWriter
	if *artifactsDir != "" {
		var err error
		if manifest, err = newManifestWriter(*artifactsDir, *scaleFlag, *resume, *manifestSync, stderr); err != nil {
			fmt.Fprintf(stderr, "paperbench: %v\n", err)
			return 1
		}
		r.OnRecord = manifest.record
	}
	if txns != nil {
		prev := r.OnRecord
		r.OnRecord = func(rec bench.Record) {
			if prev != nil {
				prev(rec)
			}
			txns.record(rec)
		}
	}
	out := stdout
	start := time.Now()

	// check lets a partially-failed grid keep the campaign going: ERR
	// cells and the summary line are already rendered, the exit code
	// becomes 3. Any other error is fatal.
	partial := false
	fatal := false
	check := func(what string, err error) bool {
		if err == nil {
			return true
		}
		var gerr *bench.GridError
		if errors.As(err, &gerr) {
			fmt.Fprintf(stderr, "# paperbench: %s: %v\n", what, gerr)
			partial = true
			return true
		}
		fmt.Fprintf(stderr, "paperbench: %s: %v\n", what, err)
		fatal = true
		return false
	}

	if sel("table2") {
		bench.Table2(out)
		fmt.Fprintln(out)
	}
	if sel("table3") && !fatal {
		tele.BeginGroup("table3")
		rows, err := r.Table3(out)
		if check("table3", err) {
			tb := stats.NewTable("", "app", "l1miss", "l2miss", "instrPerL1Miss", "cycPerL2Miss", "offchipMBps")
			for _, row := range rows {
				if row.Err {
					tb.Row(row.App, "ERR", "ERR", "ERR", "ERR", "ERR")
					continue
				}
				tb.Row(row.App, row.L1MissRate, row.L2MissRate, row.InstrPerL1Miss, row.CyclesPerL2, row.OffChipMBps)
			}
			writeCSV("table3", tb)
			fmt.Fprintln(out)
		}
	}
	if sel("fig2") && !fatal {
		tele.BeginGroup("fig2")
		series, err := r.Figure2(out, apps)
		if check("fig2", err) {
			for _, app := range bench.SortedKeys(series) {
				barsCSV("fig2-"+app, series[app])
			}
			fmt.Fprintln(out)
		}
	}
	if sel("fig3") && !fatal {
		tele.BeginGroup("fig3")
		series, err := r.Figure3(out)
		if check("fig3", err) {
			for _, app := range bench.SortedKeys(series) {
				trafficCSV("fig3-"+app, series[app])
			}
			fmt.Fprintln(out)
		}
	}
	if sel("fig4") && !fatal {
		tele.BeginGroup("fig4")
		series, err := r.Figure4(out)
		if check("fig4", err) {
			for _, app := range bench.SortedKeys(series) {
				energyCSV("fig4-"+app, series[app])
			}
			fmt.Fprintln(out)
		}
	}
	if sel("fig5") && !fatal {
		tele.BeginGroup("fig5")
		series, err := r.Figure5(out)
		if check("fig5", err) {
			for _, app := range bench.SortedKeys(series) {
				barsCSV("fig5-"+app, series[app])
			}
			fmt.Fprintln(out)
		}
	}
	if sel("fig6") && !fatal {
		tele.BeginGroup("fig6")
		bars, err := r.Figure6(out)
		if check("fig6", err) {
			barsCSV("fig6-fir", bars)
			fmt.Fprintln(out)
		}
	}
	if sel("fig7") && !fatal {
		tele.BeginGroup("fig7")
		series, err := r.Figure7(out)
		if check("fig7", err) {
			for _, app := range bench.SortedKeys(series) {
				barsCSV("fig7-"+app, series[app])
			}
			fmt.Fprintln(out)
		}
	}
	if sel("fig8") && !fatal {
		tele.BeginGroup("fig8")
		traffic, energy, err := r.Figure8(out)
		if check("fig8", err) {
			for _, app := range bench.SortedKeys(traffic) {
				trafficCSV("fig8-"+app, traffic[app])
			}
			energyCSV("fig8-fir-energy", energy)
			fmt.Fprintln(out)
		}
	}
	if sel("fig9") && !fatal {
		tele.BeginGroup("fig9")
		bars, traffic, err := r.Figure9(out)
		if check("fig9", err) {
			barsCSV("fig9-mpeg2-time", bars)
			trafficCSV("fig9-mpeg2-traffic", traffic)
			fmt.Fprintln(out)
		}
	}
	if sel("fig10") && !fatal {
		tele.BeginGroup("fig10")
		bars, err := r.Figure10(out)
		if check("fig10", err) {
			barsCSV("fig10-art", bars)
			fmt.Fprintln(out)
		}
	}
	if sel("breakdown") && !fatal {
		tele.BeginGroup("breakdown")
		series, err := r.FigureBreakdown(out, apps)
		if check("breakdown", err) {
			for _, app := range bench.SortedKeys(series) {
				breakdownCSV("breakdown-"+app, series[app])
			}
			fmt.Fprintln(out)
		}
	}
	r.Close() // drain pending progress lines before the summary
	sl.Stop() // clear the status line; summary lines below scroll normally

	// finish seals the campaign for scrapers — the completion gauge flips
	// so /progress reports "complete": true with the final counts — then
	// lingers on -http-linger so an external collector (CI) can take its
	// last scrape before the process exits.
	finish := func(code int) int {
		tele.SetComplete()
		if srv != nil {
			srv.WaitQuit(*httpLinger)
			srv.Close()
		}
		return code
	}
	if manifest != nil {
		if err := manifest.close(); err != nil {
			fmt.Fprintf(stderr, "paperbench: manifest: %v\n", err)
			return finish(1)
		}
	}
	if txns != nil {
		if err := txns.write(*txnTrace); err != nil {
			fmt.Fprintf(stderr, "paperbench: -txn-trace: %v\n", err)
			return finish(1)
		}
	}
	if ioFail != nil {
		fmt.Fprintf(stderr, "paperbench: csv: %v\n", ioFail)
		return finish(1)
	}
	if store != nil {
		// Seal the journal before reporting: Close syncs pending records,
		// so everything this campaign simulated is durable by the time
		// the summary prints.
		if err := store.Close(); err != nil {
			fmt.Fprintf(stderr, "paperbench: -store: %v\n", err)
			return finish(1)
		}
		st := store.Stats()
		fmt.Fprintf(stderr, "# paperbench: store: %d hits, %d misses, %d results persisted (%d records, %d bytes)\n",
			st.Hits, st.Misses, st.Puts, st.Records, st.Bytes)
	}
	fmt.Fprintf(stderr, "# paperbench finished in %v\n", time.Since(start).Round(time.Millisecond))
	if fatal {
		return finish(1)
	}
	if partial {
		ok, failed := r.Outcome()
		fmt.Fprintf(stderr, "# paperbench: partial results: %d ok / %d failed\n", ok, failed)
		return finish(3)
	}
	return finish(0)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test poll stderr while the campaign goroutine
// writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var servingLine = regexp.MustCompile(`telemetry on http://(\S+) `)

// httpGet fetches a URL, failing the test on transport errors.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestLiveTelemetryEndpoints runs a small fig2 campaign with -http and
// scrapes it while it is alive: /progress must reach complete with the
// span-conservation invariant intact, /metrics must agree with the
// manifest on the fresh-simulation count (the CI contract), and /quit
// must end the -http-linger period with a clean exit.
func TestLiveTelemetryEndpoints(t *testing.T) {
	dir := t.TempDir()
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q",
			"-artifacts", dir, "-http", "127.0.0.1:0", "-http-linger", "1m"}, &stdout, stderr)
	}()

	// The serving line is printed before the campaign starts.
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if m := servingLine.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no telemetry serving line on stderr: %q", stderr.String())
	}

	// Poll /progress until the campaign completes, checking conservation
	// on every live snapshot scraped along the way.
	type progress struct {
		Complete bool `json:"complete"`
		Enqueued int  `json:"enqueued"`
		Queued   int  `json:"queued"`
		Running  int  `json:"running"`
		Retrying int  `json:"retrying"`
		Done     int  `json:"done"`
		Failed   int  `json:"failed"`
		Memo     int  `json:"memo_seeded"`
		Figures  []struct {
			Figure string `json:"figure"`
			Total  int    `json:"total"`
			Done   int    `json:"done"`
		} `json:"figures"`
		Spans []json.RawMessage `json:"spans"`
	}
	var p progress
	for deadline := time.Now().Add(2 * time.Minute); ; time.Sleep(20 * time.Millisecond) {
		if time.Now().After(deadline) {
			t.Fatalf("campaign never completed; last progress: %+v", p)
		}
		body := httpGet(t, "http://"+addr+"/progress")
		p = progress{}
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("/progress not JSON: %v\n%s", err, body)
		}
		if p.Enqueued != p.Queued+p.Running+p.Retrying+p.Done+p.Failed+p.Memo {
			t.Fatalf("conservation broken in live snapshot: %+v", p)
		}
		if p.Complete {
			break
		}
	}
	if p.Done == 0 || len(p.Spans) != p.Enqueued {
		t.Fatalf("final progress: %+v", p)
	}
	var fig2 bool
	for _, f := range p.Figures {
		if f.Figure == "fig2" && f.Total > 0 && f.Done == f.Total {
			fig2 = true
		}
	}
	if !fig2 {
		t.Fatalf("no completed fig2 rollup: %+v", p.Figures)
	}

	// The CI contract: the metric equals the manifest record count.
	metrics := httpGet(t, "http://"+addr+"/metrics")
	runs, failed := countRuns(t, filepath.Join(dir, "manifest.jsonl"))
	if failed != 0 {
		t.Fatalf("campaign had %d failed runs", failed)
	}
	want := fmt.Sprintf("memsim_jobs_done_total %d\n", runs)
	if !strings.Contains(metrics, want) {
		t.Fatalf("metrics disagree with manifest (%d runs):\n%s", runs, metrics)
	}
	if !strings.Contains(metrics, "memsim_campaign_complete 1\n") {
		t.Fatal("metrics do not report the campaign complete")
	}

	httpGet(t, "http://"+addr+"/quit")
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("/quit did not end the linger period")
	}
}

// TestTelemetryOutputByteIdentical is the zero-perturbation acceptance
// check: the full default output of a campaign must be byte-identical
// with telemetry serving and without it.
func TestTelemetryOutputByteIdentical(t *testing.T) {
	campaign := func(extra ...string) string {
		var stdout bytes.Buffer
		stderr := &syncBuffer{}
		args := append([]string{"-scale", "small", "-only", "fig2", "-apps", "fir"}, extra...)
		if code := run(args, &stdout, stderr); code != 0 {
			t.Fatalf("run(%v) = %d (stderr: %s)", args, code, stderr.String())
		}
		return stdout.String()
	}
	plain := campaign()
	served := campaign("-http", "127.0.0.1:0")
	if plain != served {
		t.Fatalf("stdout differs with -http on:\n--- off ---\n%s\n--- on ---\n%s", plain, served)
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestMain(m *testing.M) {
	fault.RegisterWorkloads()
	// Child mode for the SIGKILL crash-recovery test: re-exec'ed with the
	// CLI args joined by the ASCII unit separator in the environment, run
	// the real entry point.
	if env := os.Getenv("PAPERBENCH_CHILD_ARGS"); env != "" {
		os.Exit(run(strings.Split(env, "\x1f"), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestExitCodes pins the CLI contract: 0 success, 2 flag/config
// validation error, 3 partial grid.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr string
	}{
		{"table2 only", []string{"-only", "table2", "-q"}, 0, ""},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2, "flag provided but not defined"},
		{"bad scale", []string{"-scale", "huge"}, 2, "unknown scale"},
		{"negative retries", []string{"-retries", "-1"}, 2, "-retries must be non-negative"},
		{"negative timeout", []string{"-job-timeout", "-5s"}, 2, "-job-timeout must be non-negative"},
		{"resume without artifacts", []string{"-resume"}, 2, "-resume requires -artifacts"},
		{"unknown app", []string{"-only", "fig2", "-apps", "nope"}, 2, "unknown workload"},
		{"partial grid", []string{"-scale", "small", "-only", "fig2", "-apps", fault.Panic, "-q"},
			3, "# paperbench: partial results: 1 ok / 8 failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("run(%v) stderr %q, want mention of %q", tc.args, stderr.String(), tc.stderr)
			}
		})
	}
}

// countRuns tallies manifest.jsonl records: fresh simulations and how
// many of them failed.
func countRuns(t *testing.T, path string) (runs, failed int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		var rec struct {
			Kind string `json:"kind"`
			Err  string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad manifest line %q: %v", sc.Text(), err)
		}
		if rec.Kind != "run" {
			continue
		}
		runs++
		if rec.Err != "" {
			failed++
		}
	}
	return runs, failed
}

// TestPartialGridRendersErrCells proves graceful degradation at the CLI:
// a grid with injected panics still prints the figure, marks the dead
// cells ERR, and records the failures in the manifest with their kind
// and engine state.
func TestPartialGridRendersErrCells(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scale", "small", "-only", "fig2", "-apps", fault.Panic, "-q", "-artifacts", dir}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (stderr: %s)", code, stderr.String())
	}
	text := stdout.String()
	if !strings.Contains(text, "ERR") {
		t.Fatal("stdout has no ERR cells")
	}
	if !strings.Contains(text, "# Figure 2: 1 ok / 8 failed") {
		t.Fatalf("missing grid summary in stdout:\n%s", text)
	}
	runs, failed := countRuns(t, filepath.Join(dir, "manifest.jsonl"))
	if runs != 9 || failed != 8 {
		t.Fatalf("manifest has %d runs / %d failed, want 9/8", runs, failed)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"error_kind":"panic"`) {
		t.Fatal("manifest records lack the typed error kind")
	}
	if !strings.Contains(string(raw), `"engine_state"`) {
		t.Fatal("failed records lack the engine-state dump")
	}
}

// TestResumeSkipsCompletedAndRerunsFailed proves resume end to end: a
// second invocation seeds the completed baseline from the journal and
// re-simulates only the failed cells, with byte-identical stdout.
func TestResumeSkipsCompletedAndRerunsFailed(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scale", "small", "-only", "fig2", "-apps", fault.Panic, "-q", "-artifacts", dir}
	var out1, err1 bytes.Buffer
	if code := run(args, &out1, &err1); code != 3 {
		t.Fatalf("first run exit = %d, want 3 (stderr: %s)", code, err1.String())
	}
	var out2, err2 bytes.Buffer
	if code := run(append(args, "-resume"), &out2, &err2); code != 3 {
		t.Fatalf("resumed run exit = %d, want 3 (stderr: %s)", code, err2.String())
	}
	if !strings.Contains(err2.String(), "resume: 1 completed jobs seeded, 8 prior failures will re-run") {
		t.Fatalf("resume summary missing from stderr: %s", err2.String())
	}
	// 9 fresh runs in campaign one; only the 8 failures re-ran in two.
	runs, failed := countRuns(t, filepath.Join(dir, "manifest.jsonl"))
	if runs != 17 || failed != 16 {
		t.Fatalf("manifest has %d runs / %d failed after resume, want 17/16", runs, failed)
	}
	if out1.String() != out2.String() {
		t.Fatalf("resumed stdout differs:\n--- first\n%s\n--- resumed\n%s", out1.String(), out2.String())
	}
}

// TestResumeOfCleanCampaignSimulatesNothing: with every job seeded from
// the journal, the resumed run is pure replay — zero fresh simulations,
// exit 0, byte-identical stdout.
func TestResumeOfCleanCampaignSimulatesNothing(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q", "-artifacts", dir}
	var out1, err1 bytes.Buffer
	if code := run(args, &out1, &err1); code != 0 {
		t.Fatalf("first run exit = %d (stderr: %s)", code, err1.String())
	}
	runsBefore, _ := countRuns(t, filepath.Join(dir, "manifest.jsonl"))
	if runsBefore != 9 {
		t.Fatalf("first campaign ran %d jobs, want 9", runsBefore)
	}
	var out2, err2 bytes.Buffer
	if code := run(append(args, "-resume"), &out2, &err2); code != 0 {
		t.Fatalf("resumed run exit = %d (stderr: %s)", code, err2.String())
	}
	runsAfter, _ := countRuns(t, filepath.Join(dir, "manifest.jsonl"))
	if runsAfter != runsBefore {
		t.Fatalf("resume simulated %d fresh jobs, want 0", runsAfter-runsBefore)
	}
	if out1.String() != out2.String() {
		t.Fatalf("resumed stdout differs from the original campaign")
	}
}

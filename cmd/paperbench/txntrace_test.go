package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTxnTraceCampaign: a -txn-trace campaign writes the per-run tree
// JSONL sink with sorted run headers, records tail_exemplars blocks in
// the manifest, and leaves the figure output byte-identical to an
// untraced campaign.
func TestTxnTraceCampaign(t *testing.T) {
	dir := t.TempDir()
	sink := filepath.Join(dir, "txn.jsonl")
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q",
		"-artifacts", dir, "-txn-trace", sink}
	var traced, plain, errs bytes.Buffer
	if code := run(args, &traced, &errs); code != 0 {
		t.Fatalf("traced campaign exit %d: %s", code, errs.String())
	}
	if code := run([]string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q"}, &plain, &errs); code != 0 {
		t.Fatalf("plain campaign exit %d: %s", code, errs.String())
	}
	if !bytes.Equal(traced.Bytes(), plain.Bytes()) {
		t.Error("-txn-trace changed the figure output")
	}

	f, err := os.Open(sink)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var headers []string
	trees := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Kind  string `json:"kind"`
			Class string `json:"class"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("unparseable sink line: %v", err)
		}
		if probe.Kind == "run" {
			headers = append(headers, sc.Text())
		} else if probe.Class != "" {
			trees++
		}
	}
	if len(headers) == 0 || trees == 0 {
		t.Fatalf("sink has %d run headers and %d trees", len(headers), trees)
	}
	for i := 1; i < len(headers); i++ {
		if headers[i] < headers[i-1] {
			t.Fatal("run headers are not sorted")
		}
	}
	if !strings.Contains(headers[0], `"tail_exemplars"`) {
		t.Fatalf("run header lacks tail_exemplars: %s", headers[0])
	}

	raw, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	runs, tailed := 0, 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if !bytes.Contains(line, []byte(`"kind":"run"`)) {
			continue
		}
		runs++
		if bytes.Contains(line, []byte(`"tail_exemplars"`)) {
			tailed++
		}
	}
	if runs == 0 || tailed != runs {
		t.Fatalf("manifest: %d/%d run records carry tail_exemplars", tailed, runs)
	}
}

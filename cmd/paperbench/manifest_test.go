package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// manifestPath runs a clean fig2/fir campaign into dir and returns the
// manifest path plus the campaign's stdout for byte comparisons.
func manifestCampaign(t *testing.T, dir string) (string, string) {
	t.Helper()
	var out, errs bytes.Buffer
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q", "-artifacts", dir}
	if code := run(args, &out, &errs); code != 0 {
		t.Fatalf("campaign exit %d: %s", code, errs.String())
	}
	return filepath.Join(dir, "manifest.jsonl"), out.String()
}

// TestResumeSkipsMalformedManifestLine: a corrupt record in the middle
// of the journal costs exactly that record — every valid record after
// it still seeds, the skip is warned once, and the resumed campaign
// reproduces the figure byte-identically.
func TestResumeSkipsMalformedManifestLine(t *testing.T) {
	dir := t.TempDir()
	path, want := manifestCampaign(t, dir)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Line 1 is the header; clobber the third run record so both earlier
	// and later records must survive the damage.
	lines[3] = "{\"kind\":\"run\", this is not json}\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errs bytes.Buffer
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q", "-artifacts", dir, "-resume"}
	if code := run(args, &out, &errs); code != 0 {
		t.Fatalf("resume over damaged manifest exit %d: %s", code, errs.String())
	}
	if !strings.Contains(errs.String(), "skipping malformed manifest line 4") {
		t.Fatalf("no skip warning: %s", errs.String())
	}
	if !strings.Contains(errs.String(), "resume: 8 completed jobs seeded") {
		t.Fatalf("records after the damage were not seeded: %s", errs.String())
	}
	if out.String() != want {
		t.Errorf("resumed output differs:\n--- want\n%s\n--- got\n%s", want, out.String())
	}
	// Exactly the one clobbered cell re-simulated. The malformed line is
	// still in the journal (resume appends), so count parseable records.
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	for _, line := range strings.Split(string(raw), "\n") {
		var rec struct {
			Kind string `json:"kind"`
		}
		if json.Unmarshal([]byte(line), &rec) == nil && rec.Kind == "run" {
			runs++
		}
	}
	if runs != 9 {
		t.Fatalf("manifest has %d parseable runs after resume, want 9 (8 surviving + 1 re-run)", runs)
	}
}

// TestResumeToleratesTornFinalLine: a campaign killed mid-write leaves
// a partial last line with no newline; resume warns, drops it, and
// seeds everything before it.
func TestResumeToleratesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	path, want := manifestCampaign(t, dir)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: cut the trailing newline and half the line.
	last := bytes.LastIndexByte(raw[:len(raw)-1], '\n')
	torn := raw[:last+1+(len(raw)-last)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errs bytes.Buffer
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q", "-artifacts", dir, "-resume"}
	if code := run(args, &out, &errs); code != 0 {
		t.Fatalf("resume over torn manifest exit %d: %s", code, errs.String())
	}
	if !strings.Contains(errs.String(), "ignoring torn final manifest line") {
		t.Fatalf("no torn-tail warning: %s", errs.String())
	}
	if !strings.Contains(errs.String(), "resume: 8 completed jobs seeded") {
		t.Fatalf("intact records were not seeded: %s", errs.String())
	}
	if out.String() != want {
		t.Errorf("resumed output differs after torn tail")
	}
}

// TestManifestSyncFlag: -manifest-sync needs -artifacts, and with it
// the campaign still produces a complete, byte-identical manifest.
func TestManifestSyncFlag(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-manifest-sync"}, &out, &errs); code != 2 ||
		!strings.Contains(errs.String(), "-manifest-sync requires -artifacts") {
		t.Fatalf("exit %d, stderr %s", code, errs.String())
	}

	dir := t.TempDir()
	out.Reset()
	errs.Reset()
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q", "-artifacts", dir, "-manifest-sync"}
	if code := run(args, &out, &errs); code != 0 {
		t.Fatalf("synced campaign exit %d: %s", code, errs.String())
	}
	if runs, failed := countRuns(t, filepath.Join(dir, "manifest.jsonl")); runs != 9 || failed != 0 {
		t.Fatalf("synced manifest has %d runs / %d failed, want 9/0", runs, failed)
	}
}

// TestManifestWriteErrorSurfacesOnce: a dead disk prints one warning,
// not one per simulation, and still fails the campaign at close.
func TestManifestWriteErrorSurfacesOnce(t *testing.T) {
	var errs bytes.Buffer
	m, err := newManifestWriter(t.TempDir(), "small", false, false, &errs)
	if err != nil {
		t.Fatal(err)
	}
	m.f.Close() // every subsequent write fails, like a yanked disk
	for i := 0; i < 5; i++ {
		m.record(bench.Record{Name: "fir"})
	}
	if got := strings.Count(errs.String(), "write failed"); got != 1 {
		t.Fatalf("warning printed %d times, want once:\n%s", got, errs.String())
	}
	if err := m.close(); err == nil || !strings.Contains(err.Error(), "records failed to write") {
		t.Fatalf("close() = %v, want the sticky write failure", err)
	}
}

package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// runPB invokes the CLI in-process and returns (exit, stdout, stderr).
func runPB(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestStoreFlagValidation pins the -store flag contract at the CLI.
func TestStoreFlagValidation(t *testing.T) {
	if code, _, errs := func() (int, string, string) {
		return runPB(t, "-store-max-bytes", "1024")
	}(); code != 2 || !strings.Contains(errs, "-store-max-bytes requires -store") {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runPB(t, "-store", t.TempDir(), "-store-max-bytes", "-1"); code != 2 ||
		!strings.Contains(errs, "must be non-negative") {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
}

// TestStoreWarmCampaignByteIdentical: the tentpole's output contract.
// A campaign with -store prints the same bytes as one without; a second
// campaign over the same store simulates nothing and still matches.
func TestStoreWarmCampaignByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q"}
	stored := append(append([]string{}, args...), "-store", dir)

	code, bare, errs := runPB(t, args...)
	if code != 0 {
		t.Fatalf("bare run exit %d: %s", code, errs)
	}
	code, cold, coldErrs := runPB(t, stored...)
	if code != 0 {
		t.Fatalf("cold store run exit %d: %s", code, coldErrs)
	}
	if bare != cold {
		t.Errorf("-store changed figure output:\n--- bare\n%s\n--- store\n%s", bare, cold)
	}
	if !strings.Contains(coldErrs, "store: 0 hits, 9 misses, 9 results persisted") {
		t.Fatalf("cold store summary: %s", coldErrs)
	}
	code, warm, warmErrs := runPB(t, stored...)
	if code != 0 {
		t.Fatalf("warm store run exit %d: %s", code, warmErrs)
	}
	if warm != cold {
		t.Errorf("warm store output differs:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
	if !strings.Contains(warmErrs, "store: 9 hits, 0 misses") {
		t.Fatalf("warm run did not serve everything from the store: %s", warmErrs)
	}
}

// TestStoreCorruptJournalHeals: damage the journal between campaigns —
// truncate mid-record AND flip a byte in an earlier record — and the
// next campaign still exits 0 with byte-identical output, re-simulating
// exactly the records it could not trust.
func TestStoreCorruptJournalHeals(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q", "-store", dir}

	code, cold, errs := runPB(t, args...)
	if code != 0 {
		t.Fatalf("cold run exit %d: %s", code, errs)
	}
	journal := filepath.Join(dir, "store.journal")
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x40                    // corrupt a record in the first third
	raw = raw[:len(raw)-len(raw)/4]            // tear the tail mid-record
	if err := os.WriteFile(journal, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	code, healed, errs := runPB(t, args...)
	if code != 0 {
		t.Fatalf("run over damaged store exit %d: %s", code, errs)
	}
	if healed != cold {
		t.Errorf("output changed after store damage:\n--- cold\n%s\n--- healed\n%s", cold, healed)
	}
	if !strings.Contains(errs, "misses") || strings.Contains(errs, "store: 9 hits") {
		t.Fatalf("damaged store should have missed at least once: %s", errs)
	}

	// And once healed, the next run serves everything again.
	code, warm, errs := runPB(t, args...)
	if code != 0 || warm != cold {
		t.Fatalf("store did not heal (exit %d): %s", code, errs)
	}
	if !strings.Contains(errs, "store: 9 hits, 0 misses") {
		t.Fatalf("healed store summary: %s", errs)
	}
}

// TestCrashRecoverySIGKILL is the tentpole's crash-safety proof at
// process granularity: a real campaign process is SIGKILLed mid-write,
// then a resumed campaign over the same store directory reproduces the
// figure byte-identically, simulating only the cells the crash lost.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{"-scale", "small", "-only", "fig2", "-apps", "fir", "-q", "-j", "1", "-store", dir}

	// Reference output from an undisturbed in-process run (no store).
	code, want, errs := runPB(t, "-scale", "small", "-only", "fig2", "-apps", "fir", "-q")
	if code != 0 {
		t.Fatalf("reference run exit %d: %s", code, errs)
	}

	// Launch the victim campaign and SIGKILL it once the journal holds at
	// least one record past the 16-byte header.
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), "PAPERBENCH_CHILD_ARGS="+strings.Join(args, "\x1f"))
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(dir, "store.journal")
	deadline := time.Now().Add(30 * time.Second)
	grew := false
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(journal); err == nil && fi.Size() > 16 {
			grew = true
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !grew {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("journal never grew past its header; child output:\n%s", childOut.String())
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ProcessState.ExitCode() == 0 {
		// The child may have finished its last write and exited before the
		// signal landed; that still leaves a valid store to resume from.
		t.Logf("child exit: %v (kill may have raced completion)", err)
	}

	// Resume over the crashed store: byte-identical figure, and at least
	// one cell recalled rather than re-simulated.
	code, got, errs := runPB(t, args...)
	if code != 0 {
		t.Fatalf("resumed campaign exit %d: %s", code, errs)
	}
	if got != want {
		t.Errorf("resumed campaign output differs from reference:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if !strings.Contains(errs, "store:") || strings.Contains(errs, "store: 0 hits") {
		t.Fatalf("resumed campaign recalled nothing from the crashed store: %s", errs)
	}
}

package main

import (
	"strings"
	"testing"

	memsys "repro"
)

func TestCCOnlyFlags(t *testing.T) {
	cases := []struct {
		model   memsys.Model
		pf      int
		nwa     bool
		filter  bool
		wantErr string
	}{
		{memsys.CC, 4, true, true, ""},
		{memsys.STR, 0, false, false, ""},
		{memsys.INC, 0, false, false, ""},
		{memsys.STR, 4, false, false, "-pf"},
		{memsys.STR, 0, true, false, "-nwa"},
		{memsys.INC, 0, false, true, "-snoopfilter"},
		{memsys.STR, 4, true, true, "-pf, -nwa, -snoopfilter"},
	}
	for _, tc := range cases {
		err := ccOnlyFlags(tc.model, tc.pf, tc.nwa, tc.filter)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%v/pf=%d: unexpected error %v", tc.model, tc.pf, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%v/pf=%d nwa=%v filter=%v: err = %v, want mention of %q",
				tc.model, tc.pf, tc.nwa, tc.filter, err, tc.wantErr)
		}
	}
}

func TestHeadlineSeriesMerge(t *testing.T) {
	pr := memsys.NewProbe(100 * 1000 * 1000 * 1000) // 100ns
	cfg := memsys.DefaultConfig(memsys.STR, 2)
	cfg.Probe = pr
	tr := memsys.NewTrace()
	cfg.Trace = tr
	if _, err := memsys.Run(cfg, "fir", memsys.ScaleSmall); err != nil {
		t.Fatal(err)
	}
	mergeProbeCounters(tr, pr)
	if len(tr.Counters()) == 0 {
		t.Fatal("no counter samples merged into trace")
	}
	seen := map[string]bool{}
	for _, c := range tr.Counters() {
		seen[c.Name] = true
	}
	for _, want := range []string{"dram.read_bytes", "cpu.instructions", "dma.get_bytes"} {
		if !seen[want] {
			t.Errorf("counter track %q missing; have %v", want, seen)
		}
	}
	if seen["coher.c2c_cluster"] {
		t.Error("CC-only series merged on an STR run")
	}
}

package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	memsys "repro"
	"repro/internal/fault"
)

func TestCCOnlyFlags(t *testing.T) {
	cases := []struct {
		model   memsys.Model
		pf      int
		nwa     bool
		filter  bool
		wantErr string
	}{
		{memsys.CC, 4, true, true, ""},
		{memsys.STR, 0, false, false, ""},
		{memsys.INC, 0, false, false, ""},
		{memsys.STR, 4, false, false, "-pf"},
		{memsys.STR, 0, true, false, "-nwa"},
		{memsys.INC, 0, false, true, "-snoopfilter"},
		{memsys.STR, 4, true, true, "-pf, -nwa, -snoopfilter"},
	}
	for _, tc := range cases {
		err := ccOnlyFlags(tc.model, tc.pf, tc.nwa, tc.filter)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%v/pf=%d: unexpected error %v", tc.model, tc.pf, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%v/pf=%d nwa=%v filter=%v: err = %v, want mention of %q",
				tc.model, tc.pf, tc.nwa, tc.filter, err, tc.wantErr)
		}
	}
}

// TestExitCodes pins the CLI contract: 0 success, 1 runtime/simulation
// failure, 2 flag or configuration validation error.
func TestExitCodes(t *testing.T) {
	fault.RegisterWorkloads()
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr string
	}{
		{"list", []string{"-list"}, 0, ""},
		{"run ok", []string{"-w", "fir", "-cores", "2", "-scale", "small"}, 0, ""},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2, "flag provided but not defined"},
		{"bad model", []string{"-model", "zzz"}, 2, "unknown model"},
		{"bad scale", []string{"-scale", "huge"}, 2, "unknown scale"},
		{"unknown workload", []string{"-w", "nope"}, 2, "unknown workload"},
		{"cc-only flag", []string{"-w", "fir", "-model", "str", "-pf", "4"},
			2, "-pf only applies to -model cc (got -model str)"},
		{"all cc-only flags", []string{"-w", "fir", "-model", "str", "-pf", "4", "-nwa", "-snoopfilter"},
			2, "-pf, -nwa, -snoopfilter only applies to -model cc (got -model str)"},
		{"bad cores", []string{"-w", "fir", "-cores", "65"}, 2, "-cores must be in 1..64 (got 65)"},
		{"sample-csv without sample", []string{"-w", "fir", "-sample-csv", "/tmp/x.csv"},
			2, "-sample-csv requires -sample"},
		{"latency-csv without breakdown", []string{"-w", "fir", "-latency-csv", "/tmp/x.csv"},
			2, "-latency-csv requires -breakdown"},
		{"breakdown ok", []string{"-w", "fir", "-cores", "2", "-breakdown"}, 0, ""},
		{"verify failure", []string{"-w", fault.BadVerify, "-cores", "2"}, 1, "checksum mismatch"},
		{"deadlock", []string{"-w", fault.Deadlock, "-cores", "4"}, 1, "deadlock"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("run(%v) stderr %q, want mention of %q", tc.args, stderr.String(), tc.stderr)
			}
		})
	}
}

// TestBreakdownOutput checks the -breakdown tables render the ledger
// classes and latency metrics, and that conservation shows up as shares
// summing to ~100%.
func TestBreakdownOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-w", "fir", "-model", "str", "-cores", "2", "-breakdown"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d (stderr: %s)", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"cycle accounting", "compute", "dma_wait", "idle", "latency distributions", "dma_get", "noc_acquire"} {
		if !strings.Contains(out, want) {
			t.Errorf("-breakdown output missing %q:\n%s", want, out)
		}
	}
}

func TestHeadlineSeriesMerge(t *testing.T) {
	pr := memsys.NewProbe(100 * 1000 * 1000 * 1000) // 100ns
	cfg := memsys.DefaultConfig(memsys.STR, 2)
	cfg.Probe = pr
	tr := memsys.NewTrace()
	cfg.Trace = tr
	if _, err := memsys.Run(cfg, "fir", memsys.ScaleSmall); err != nil {
		t.Fatal(err)
	}
	mergeProbeCounters(tr, pr)
	if len(tr.Counters()) == 0 {
		t.Fatal("no counter samples merged into trace")
	}
	seen := map[string]bool{}
	for _, c := range tr.Counters() {
		seen[c.Name] = true
	}
	for _, want := range []string{"dram.read_bytes", "cpu.instructions", "dma.get_bytes"} {
		if !seen[want] {
			t.Errorf("counter track %q missing; have %v", want, seen)
		}
	}
	if seen["coher.c2c_cluster"] {
		t.Error("CC-only series merged on an STR run")
	}
}

// TestFlightTailOnTypedFailure pins the stderr rendering of the flight
// recorder: a deadlock run prints the scheduler-event tail that led
// there, and -flightrec 0 turns it off.
func TestFlightTailOnTypedFailure(t *testing.T) {
	fault.RegisterWorkloads()
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-w", fault.Deadlock, "-cores", "4"}, &stdout, &stderr); got != 1 {
		t.Fatalf("run = %d, want 1 (stderr: %s)", got, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "flight recorder: last ") {
		t.Fatalf("no flight-recorder tail on deadlock stderr:\n%s", out)
	}
	if !strings.Contains(out, "block") {
		t.Fatalf("tail lacks the blocking events that formed the deadlock:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-w", fault.Deadlock, "-cores", "4", "-flightrec", "0"}, &stdout, &stderr); got != 1 {
		t.Fatalf("run = %d, want 1", got)
	}
	if strings.Contains(stderr.String(), "flight recorder") {
		t.Fatalf("-flightrec 0 still printed a tail:\n%s", stderr.String())
	}
}

// TestMemsimHTTP serves one run's telemetry: the span must reach done
// and the contract metric must report it.
func TestMemsimHTTP(t *testing.T) {
	var stdout, stderr bytes.Buffer
	got := run([]string{"-w", "fir", "-cores", "2", "-scale", "small", "-http", "127.0.0.1:0"}, &stdout, &stderr)
	if got != 0 {
		t.Fatalf("run = %d (stderr: %s)", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "memsim: telemetry on http://") {
		t.Fatalf("no serving line on stderr: %q", stderr.String())
	}
	// Flag validation for the linger/addr pairing.
	if got := run([]string{"-w", "fir", "-http-linger", "5s"}, &stdout, &stderr); got != 2 {
		t.Fatalf("-http-linger without -http: exit %d, want 2", got)
	}
	if got := run([]string{"-w", "fir", "-flightrec", "-1"}, &stdout, &stderr); got != 2 {
		t.Fatalf("-flightrec -1: exit %d, want 2", got)
	}
}

// TestStoreWarmRunByteIdentical: with -store, a second identical run is
// served from the journal and prints byte-identical output; the output
// also matches a run with no store at all.
func TestStoreWarmRunByteIdentical(t *testing.T) {
	fault.RegisterWorkloads()
	dir := t.TempDir()
	args := []string{"-w", "fir", "-cores", "2", "-scale", "small", "-v"}
	withStore := append(append([]string{}, args...), "-store", dir)

	var bare, cold, warm bytes.Buffer
	var coldErr, warmErr bytes.Buffer
	if code := run(args, &bare, &coldErr); code != 0 {
		t.Fatalf("bare run exited %d: %s", code, coldErr.String())
	}
	coldErr.Reset()
	if code := run(withStore, &cold, &coldErr); code != 0 {
		t.Fatalf("cold store run exited %d: %s", code, coldErr.String())
	}
	if code := run(withStore, &warm, &warmErr); code != 0 {
		t.Fatalf("warm store run exited %d: %s", code, warmErr.String())
	}
	if !strings.Contains(warmErr.String(), "served from store") {
		t.Fatalf("warm run did not hit the store: %s", warmErr.String())
	}
	if strings.Contains(coldErr.String(), "served from store") {
		t.Fatalf("cold run claims a store hit: %s", coldErr.String())
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm store output differs from cold:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	if !bytes.Equal(bare.Bytes(), cold.Bytes()) {
		t.Errorf("-store changed the output:\nbare:\n%s\nstore:\n%s", bare.String(), cold.String())
	}
}

// TestStoreJSONWarmRun: the JSON printing path is byte-identical too.
func TestStoreJSONWarmRun(t *testing.T) {
	fault.RegisterWorkloads()
	dir := t.TempDir()
	args := []string{"-w", "fir", "-cores", "2", "-scale", "small", "-json", "-store", dir}
	var cold, warm, errs bytes.Buffer
	if code := run(args, &cold, &errs); code != 0 {
		t.Fatalf("cold run exited %d: %s", code, errs.String())
	}
	if code := run(args, &warm, &errs); code != 0 {
		t.Fatalf("warm run exited %d: %s", code, errs.String())
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("JSON output differs between cold and warm store runs:\n%s\n---\n%s", cold.String(), warm.String())
	}
}

// TestStoreFlagValidation pins the -store flag contract.
func TestStoreFlagValidation(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-w", "fir", "-store-max-bytes", "1024"}, &out, &errs); code != 2 {
		t.Fatalf("-store-max-bytes without -store exited %d", code)
	}
	if !strings.Contains(errs.String(), "-store-max-bytes requires -store") {
		t.Fatalf("stderr: %s", errs.String())
	}
	errs.Reset()
	if code := run([]string{"-w", "fir", "-store", t.TempDir(), "-store-max-bytes", "-1"}, &out, &errs); code != 2 {
		t.Fatalf("negative -store-max-bytes exited %d", code)
	}
	if !strings.Contains(errs.String(), "must be non-negative") {
		t.Fatalf("stderr: %s", errs.String())
	}
}

// TestStoreTraceRunAlwaysSimulates: artifact-collecting runs skip the
// store probe (a hit could not produce the trace) but still persist, so
// a later plain run hits.
func TestStoreTraceRunAlwaysSimulates(t *testing.T) {
	fault.RegisterWorkloads()
	dir := t.TempDir()
	traceFile := dir + "/t.json"
	plain := []string{"-w", "fir", "-cores", "2", "-scale", "small", "-store", dir}
	traced := append(append([]string{}, plain...), "-trace", traceFile)

	var out, errs bytes.Buffer
	if code := run(plain, &out, &errs); code != 0 {
		t.Fatalf("seed run exited %d: %s", code, errs.String())
	}
	errs.Reset()
	if code := run(traced, &out, &errs); code != 0 {
		t.Fatalf("traced run exited %d: %s", code, errs.String())
	}
	if strings.Contains(errs.String(), "served from store") {
		t.Fatal("traced run was served from the store; its trace would be empty")
	}
	errs.Reset()
	if code := run(plain, &out, &errs); code != 0 {
		t.Fatalf("warm run exited %d: %s", code, errs.String())
	}
	if !strings.Contains(errs.String(), "served from store") {
		t.Fatalf("plain rerun missed after traced run persisted: %s", errs.String())
	}
}

// TestTxnFlagValidation pins the -txn-sample/-txn-seed pairing rule.
func TestTxnFlagValidation(t *testing.T) {
	var out, errs bytes.Buffer
	for _, args := range [][]string{
		{"-w", "fir", "-txn-sample", "8"},
		{"-w", "fir", "-txn-seed", "3"},
	} {
		errs.Reset()
		if code := run(args, &out, &errs); code != 2 {
			t.Fatalf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errs.String(), "-txn-sample/-txn-seed require -txn-trace or -explain-tail") {
			t.Fatalf("stderr: %s", errs.String())
		}
	}
	// Paired with an enabling flag they are accepted.
	if code := run([]string{"-w", "fir", "-cores", "2", "-scale", "small",
		"-explain-tail", "-txn-sample", "64", "-txn-seed", "3"}, &out, &errs); code != 0 {
		t.Fatalf("valid -txn-sample run exited %d: %s", code, errs.String())
	}
}

// TestExplainTailDeterministic is the CLI acceptance check: the
// acceptance workload (fir, CC, 8 cores) prints a worst-K read-miss
// table whose trees are identical across two runs at the same seed,
// and the report portion is byte-identical to an untraced run.
func TestExplainTailDeterministic(t *testing.T) {
	args := []string{"-w", "fir", "-model", "cc", "-cores", "8", "-scale", "small",
		"-explain-tail", "-txn-sample", "64", "-txn-seed", "7"}
	var a, b, plain, errs bytes.Buffer
	if code := run(args, &a, &errs); code != 0 {
		t.Fatalf("first run exited %d: %s", code, errs.String())
	}
	if code := run(args, &b, &errs); code != 0 {
		t.Fatalf("second run exited %d: %s", code, errs.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("-explain-tail output differs between two same-seed runs")
	}
	for _, want := range []string{"worst-", "read_miss exemplars", "= total", "cyc"} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("-explain-tail output missing %q:\n%s", want, a.String())
		}
	}
	if code := run([]string{"-w", "fir", "-model", "cc", "-cores", "8", "-scale", "small"}, &plain, &errs); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, errs.String())
	}
	if !bytes.HasPrefix(a.Bytes(), plain.Bytes()) {
		t.Fatal("traced run's report prefix differs from the untraced report")
	}
}

// TestTxnTraceSinkAndMerge: -txn-trace writes the JSONL sink and a
// combined -trace file gains the transaction flow events.
func TestTxnTraceSinkAndMerge(t *testing.T) {
	dir := t.TempDir()
	jsonl := dir + "/txn.jsonl"
	chrome := dir + "/trace.json"
	var out, errs bytes.Buffer
	code := run([]string{"-w", "fir", "-cores", "2", "-scale", "small",
		"-txn-trace", jsonl, "-trace", chrome}, &out, &errs)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errs.String())
	}
	if !strings.Contains(out.String(), "txn-trace: ") {
		t.Fatalf("no txn-trace summary line:\n%s", out.String())
	}
	raw, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"class":"read_miss"`)) {
		t.Fatalf("JSONL sink has no read_miss tree: %.200s", raw)
	}
	tj, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ph":"s"`, `"ph":"f"`, "txn.dram"} {
		if !bytes.Contains(tj, []byte(want)) {
			t.Fatalf("merged Chrome trace missing %q", want)
		}
	}
}

// TestStoreExplainTailAlwaysSimulates: like -trace, a txn-tracing run
// must skip the store probe (a stored report cannot yield trees).
func TestStoreExplainTailAlwaysSimulates(t *testing.T) {
	dir := t.TempDir()
	plain := []string{"-w", "fir", "-cores", "2", "-scale", "small", "-store", dir}
	var out, errs bytes.Buffer
	if code := run(plain, &out, &errs); code != 0 {
		t.Fatalf("seed run exited %d: %s", code, errs.String())
	}
	errs.Reset()
	traced := append(append([]string{}, plain...), "-explain-tail")
	if code := run(traced, &out, &errs); code != 0 {
		t.Fatalf("traced run exited %d: %s", code, errs.String())
	}
	if strings.Contains(errs.String(), "served from store") {
		t.Fatal("-explain-tail run was served from the store; its trees would be empty")
	}
}

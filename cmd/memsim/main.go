// Command memsim runs one workload on one machine configuration and
// prints the measurement report: the quickest way to poke at the
// simulator.
//
// Usage:
//
//	memsim -w fir -model str -cores 16 -mhz 3200 -bw 6400 -pf 4 -scale default
//	memsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	memsys "repro"
)

func main() {
	name := flag.String("w", "fir", "workload name (see -list)")
	model := flag.String("model", "cc", "memory model: cc, str or inc")
	cores := flag.Int("cores", 4, "number of cores (1-16)")
	mhz := flag.Uint64("mhz", 800, "core clock in MHz (800, 1600, 3200, 6400)")
	bw := flag.Uint64("bw", 1600, "DRAM bandwidth in MB/s (1600, 3200, 6400, 12800)")
	pf := flag.Int("pf", 0, "hardware prefetch depth (0 = off; CC only)")
	nwa := flag.Bool("nwa", false, "no-write-allocate L1 policy (CC only)")
	filter := flag.Bool("snoopfilter", false, "RegionScout-style snoop filter (CC only)")
	scaleName := flag.String("scale", "small", "dataset scale: small, default, paper")
	list := flag.Bool("list", false, "list available workloads")
	verbose := flag.Bool("v", false, "print detailed counters")
	asJSON := flag.Bool("json", false, "print the full report as JSON")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(memsys.Workloads(), "\n"))
		return
	}
	m, err := memsys.ParseModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memsim:", err)
		os.Exit(2)
	}
	scale, err := memsys.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memsim:", err)
		os.Exit(2)
	}

	cfg := memsys.DefaultConfig(m, *cores)
	cfg.CoreMHz = *mhz
	cfg.DRAMBandwidthMBps = *bw
	cfg.PrefetchDepth = *pf
	cfg.NoWriteAllocate = *nwa
	cfg.SnoopFilter = *filter
	var tr *memsys.Trace
	if *traceOut != "" {
		tr = memsys.NewTrace()
		cfg.Trace = tr
	}

	rep, err := memsys.Run(cfg, *name, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memsim: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep)
	}
	if tr != nil {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", ferr)
			os.Exit(1)
		}
		if werr := tr.WriteChrome(f); werr != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", werr)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace: %d spans written to %s (%d dropped)\n", tr.Len(), *traceOut, tr.Dropped())
	}
	if *verbose {
		fmt.Printf("L1:    %+v\n", rep.L1)
		fmt.Printf("L2:    %+v\n", rep.L2)
		fmt.Printf("DRAM:  %+v\n", rep.DRAM)
		fmt.Printf("Net:   %+v\n", rep.Net)
		fmt.Printf("Coher: rm=%d wm=%d upg=%d pfs=%d c2c=%d/%d wb=%d pf=%d/%d\n",
			rep.ReadMisses, rep.WriteMisses, rep.Upgrades, rep.PFSMisses,
			rep.C2CCluster, rep.C2CRemote, rep.L1WritebacksL2,
			rep.PrefetchFills, rep.PrefetchUseless)
		fmt.Printf("DMA:   cmds=%d get=%dB put=%dB ls=%d\n",
			rep.DMACommands, rep.DMAGetBytes, rep.DMAPutBytes, rep.LSAccesses)
		fmt.Printf("Energy: core=%.3g i$=%.3g d$=%.3g lmem=%.3g net=%.3g l2=%.3g dram=%.3g J\n",
			rep.Energy.Core, rep.Energy.ICache, rep.Energy.DCache, rep.Energy.LMem,
			rep.Energy.Network, rep.Energy.L2, rep.Energy.DRAM)
	}
}

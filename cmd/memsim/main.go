// Command memsim runs one workload on one machine configuration and
// prints the measurement report: the quickest way to poke at the
// simulator.
//
// Usage:
//
//	memsim -w fir -model str -cores 16 -mhz 3200 -bw 6400 -pf 4 -scale default
//	memsim -w fir -model str -sample 1us          # per-epoch time series
//	memsim -w fir -model str -breakdown           # cycle accounting + latency distributions
//	memsim -w fir -http :9090 -http-linger 30s    # live /metrics, /progress, /debug/pprof
//	memsim -w fir -store ~/.memsim-store          # reuse verified results across runs
//	memsim -list
//
// With -store DIR the run first looks its exact configuration up in the
// crash-safe result store shared with paperbench; a hit prints the
// stored report byte-identically and skips the simulation, a miss
// simulates and persists the fresh report. Store keys include the
// dataset -scale, so one store directory can hold results at every
// scale without ever serving one as another. One process owns a store
// directory at a time (a concurrent open fails with "in use"). Runs
// that collect artifacts only a live simulation can produce (-trace,
// -sample) always simulate, but still persist their reports.
//
// Every run arms an engine flight recorder (-flightrec events, default
// 256): when the simulation dies with a typed failure — deadlock,
// livelock, panic — the last scheduler events that led there are printed
// to stderr along with the error.
//
// Exit codes (shared with paperbench): 0 success, 1 runtime or
// simulation failure, 2 flag or configuration validation error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	memsys "repro"
	"repro/internal/probe"
	"repro/internal/resultstore"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/warnonce"
)

// gitDescribe identifies the running code for the result store's record
// keys; "unknown" outside a checkout (matching paperbench).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// flagOf maps Config fields validated by Config.Validate to the memsim
// flags that set them.
var flagOf = map[string]string{
	"Model":           "-model",
	"Cores":           "-cores",
	"CoreMHz":         "-mhz",
	"PrefetchDepth":   "-pf",
	"NoWriteAllocate": "-nwa",
	"SnoopFilter":     "-snoopfilter",
}

// flagErrors rewrites Config.Validate's typed field errors in terms of
// the flags that set them. Requests for CC-only hardware on other
// models — the prefetcher, the no-write-allocate policy, the snoop
// filter — are gathered into one message because they share a fix.
func flagErrors(err error, m memsys.Model) error {
	if err == nil {
		return nil
	}
	var ccOnly, rest []string
	for _, fe := range memsys.FieldErrors(err) {
		fl, ok := flagOf[fe.Field]
		if !ok {
			fl = "config." + fe.Field
		}
		if strings.Contains(fe.Reason, "only applies to model CC") {
			ccOnly = append(ccOnly, fl)
			continue
		}
		rest = append(rest, fl+" "+fe.Reason)
	}
	var msgs []string
	if len(ccOnly) > 0 {
		msgs = append(msgs, fmt.Sprintf("%s only applies to -model cc (got -model %s)",
			strings.Join(ccOnly, ", "), strings.ToLower(m.String())))
	}
	msgs = append(msgs, rest...)
	return errors.New(strings.Join(msgs, "; "))
}

// ccOnlyFlags validates flag combinations that silently do nothing
// outside the cache-coherent model. It is Config.Validate seen through
// memsim's flags; kept as a named check because the wording is pinned
// by tests and documentation.
func ccOnlyFlags(m memsys.Model, pf int, nwa, snoopFilter bool) error {
	cfg := memsys.DefaultConfig(m, 1)
	cfg.PrefetchDepth = pf
	cfg.NoWriteAllocate = nwa
	cfg.SnoopFilter = snoopFilter
	return flagErrors(cfg.Validate(), m)
}

// headlineSeries are the probe metrics rendered as text and merged into
// the Chrome trace as counter tracks. Counters are differentiated into
// per-epoch increments; levels are plotted as-is. Metrics absent from a
// run (model-specific sources) are skipped.
var headlineSeries = []string{
	"dram.read_bytes",
	"dram.write_bytes",
	"cpu.instructions",
	"cpu.storebuf",
	"engine.heap_depth",
	"dma.get_bytes",
	"dma.put_bytes",
	"dma.queued",
	"coher.c2c_cluster",
	"coher.c2c_remote",
}

// seriesOf returns a headline metric's plottable view: the per-epoch
// delta for counters, the raw samples for levels. nil if absent.
func seriesOf(pr *probe.Recorder, name string) []float64 {
	for i, n := range pr.Names() {
		if n == name {
			return pr.Delta(i)
		}
	}
	return nil
}

// writeProbeText renders the headline series as sparklines and a
// heatmap, one intensity row per metric.
func writeProbeText(w io.Writer, pr *probe.Recorder) {
	fmt.Fprintf(w, "probe: %d epochs of %v", pr.Epochs(), memsys.Time(pr.Interval()))
	if d := pr.Dropped(); d > 0 {
		fmt.Fprintf(w, " (%d dropped past cap)", d)
	}
	fmt.Fprintln(w)
	hm := stats.Heatmap{Width: 72}
	for _, name := range headlineSeries {
		if s := seriesOf(pr, name); s != nil {
			hm.AddRow(name, s)
		}
	}
	hm.Write(w)
}

// mergeProbeCounters adds the headline series to the trace as Chrome
// "C" counter events, so Perfetto draws them above the span timeline.
func mergeProbeCounters(tr *trace.Collector, pr *probe.Recorder) {
	times := pr.Times()
	for _, name := range headlineSeries {
		s := seriesOf(pr, name)
		for k, v := range s {
			tr.AddCounter(name, times[k], v)
		}
	}
}

// writeBreakdownText renders the cycle-accounting ledger (per-core
// averages, as fractions of the wall time) and the service-time
// distributions' headline quantiles.
func writeBreakdownText(w io.Writer, rep *memsys.Report) {
	wall := float64(rep.Wall)
	tb := stats.NewTable("cycle accounting (per-core average)", "class", "time", "share")
	for c, name := range rep.Cycles.Classes {
		v := rep.Cycles.Avg[c]
		share := 0.0
		if wall > 0 {
			share = float64(v) / wall
		}
		tb.Row(name, v.String(), fmt.Sprintf("%5.1f%%", 100*share))
	}
	tb.WriteText(w)
	lt := stats.NewTable("latency distributions", "metric", "count", "mean", "p50", "p95", "p99", "max")
	rep.Latency.Each(func(name string, d *memsys.LatencyDist) {
		lt.Row(name, d.Count, d.MeanFS.String(), d.P50FS.String(), d.P95FS.String(), d.P99FS.String(), d.MaxFS.String())
	})
	lt.WriteText(w)
}

// writeFlightTail prints the flight recorder's last scheduler events
// from a typed failure's EngineState: the concrete dispatch/handoff/
// block sequence that led into a deadlock or watchdog abort.
func writeFlightTail(w io.Writer, st memsys.EngineState) {
	if len(st.Recent) == 0 {
		return
	}
	tail := st.Recent
	const max = 16
	if len(tail) > max {
		tail = tail[len(tail)-max:]
	}
	fmt.Fprintf(w, "memsim: flight recorder: last %d of %d scheduler events:\n", len(tail), st.EventsRecorded)
	for _, ev := range tail {
		fmt.Fprintf(w, "  %12v  %-11s %s (task %d)\n", ev.Time, ev.Kind, ev.Task, ev.ID)
	}
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("w", "fir", "workload name (see -list)")
	model := fs.String("model", "cc", "memory model: cc, str or inc")
	cores := fs.Int("cores", 4, "number of cores (1-16)")
	mhz := fs.Uint64("mhz", 800, "core clock in MHz (800, 1600, 3200, 6400)")
	bw := fs.Uint64("bw", 1600, "DRAM bandwidth in MB/s (1600, 3200, 6400, 12800)")
	pf := fs.Int("pf", 0, "hardware prefetch depth (0 = off; CC only)")
	nwa := fs.Bool("nwa", false, "no-write-allocate L1 policy (CC only)")
	filter := fs.Bool("snoopfilter", false, "RegionScout-style snoop filter (CC only)")
	scaleName := fs.String("scale", "small", "dataset scale: small, default, paper")
	list := fs.Bool("list", false, "list available workloads")
	verbose := fs.Bool("v", false, "print detailed counters")
	asJSON := fs.Bool("json", false, "print the full report as JSON")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	txnTraceOut := fs.String("txn-trace", "", "write sampled and worst-K exemplar transaction trees as JSONL to this file")
	txnSample := fs.Uint64("txn-sample", 0, "keep the full tree of ~1-in-N transactions, selected by a deterministic hash of (serial, -txn-seed) (0 = exemplars only; requires -txn-trace or -explain-tail)")
	txnSeed := fs.Uint64("txn-seed", 0, "sampling-hash seed for -txn-sample (requires -txn-trace or -explain-tail)")
	explainTail := fs.Bool("explain-tail", false, "print the worst-K transaction trees per latency class with per-hop cycle attribution")
	sample := fs.String("sample", "", "sample the machine every simulated interval (e.g. 1us, 500ns)")
	sampleCSV := fs.String("sample-csv", "", "write the per-epoch samples as CSV to this file (requires -sample)")
	breakdown := fs.Bool("breakdown", false, "enable the cycle ledger and print cycle-accounting and latency-distribution tables")
	latencyCSV := fs.String("latency-csv", "", "write the latency histogram buckets as CSV to this file (requires -breakdown)")
	httpAddr := fs.String("http", "", "serve run telemetry on this address: GET /metrics, /progress, /debug/pprof (empty = off)")
	httpLinger := fs.Duration("http-linger", 0, "keep -http serving this long after the run finishes (ends early on /quit)")
	flightRec := fs.Int("flightrec", 256, "flight-recorder depth: last K scheduler events printed with a typed failure (0 = off)")
	storeDir := fs.String("store", "", "reuse verified results from this persistent store directory, creating it if missing (empty = off)")
	storeMax := fs.Int64("store-max-bytes", 0, "evict the oldest store records once the journal exceeds this size (0 = unlimited; requires -store)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(memsys.Workloads(), "\n"))
		return 0
	}
	m, err := memsys.ParseModel(*model)
	if err != nil {
		fmt.Fprintln(stderr, "memsim:", err)
		return 2
	}
	scale, err := memsys.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(stderr, "memsim:", err)
		return 2
	}
	if _, err := memsys.NewWorkload(*name, scale); err != nil {
		fmt.Fprintln(stderr, "memsim:", err)
		return 2
	}
	if *sampleCSV != "" && *sample == "" {
		fmt.Fprintln(stderr, "memsim: -sample-csv requires -sample")
		return 2
	}
	if *latencyCSV != "" && !*breakdown {
		fmt.Fprintln(stderr, "memsim: -latency-csv requires -breakdown")
		return 2
	}
	if *flightRec < 0 {
		fmt.Fprintln(stderr, "memsim: -flightrec must be non-negative")
		return 2
	}
	if (*txnSample != 0 || *txnSeed != 0) && *txnTraceOut == "" && !*explainTail {
		fmt.Fprintln(stderr, "memsim: -txn-sample/-txn-seed require -txn-trace or -explain-tail")
		return 2
	}
	if *httpLinger < 0 {
		fmt.Fprintln(stderr, "memsim: -http-linger must be non-negative")
		return 2
	}
	if *httpLinger > 0 && *httpAddr == "" {
		fmt.Fprintln(stderr, "memsim: -http-linger requires -http")
		return 2
	}
	if *storeMax < 0 {
		fmt.Fprintln(stderr, "memsim: -store-max-bytes must be non-negative")
		return 2
	}
	if *storeMax > 0 && *storeDir == "" {
		fmt.Fprintln(stderr, "memsim: -store-max-bytes requires -store")
		return 2
	}

	cfg := memsys.DefaultConfig(m, *cores)
	cfg.CoreMHz = *mhz
	cfg.DRAMBandwidthMBps = *bw
	cfg.PrefetchDepth = *pf
	cfg.NoWriteAllocate = *nwa
	cfg.SnoopFilter = *filter
	cfg.CycleLedger = *breakdown
	cfg.FlightRecorder = *flightRec
	if err := flagErrors(cfg.Validate(), m); err != nil {
		fmt.Fprintln(stderr, "memsim:", err)
		return 2
	}
	var tr *memsys.Trace
	if *traceOut != "" {
		tr = memsys.NewTrace()
		cfg.Trace = tr
	}
	var pr *memsys.Probe
	if *sample != "" {
		interval, perr := memsys.ParseTime(*sample)
		if perr != nil {
			fmt.Fprintln(stderr, "memsim:", perr)
			return 2
		}
		pr = memsys.NewProbe(interval)
		cfg.Probe = pr
	}
	var txn *memsys.TxnTrace
	if *txnTraceOut != "" || *explainTail {
		txn = memsys.NewTxnTrace()
		txn.SampleEvery = *txnSample
		txn.Seed = *txnSeed
		cfg.TxnTrace = txn
	}
	// Capacity-overflow warnings are warn-once so re-entrant printing
	// paths can report them unconditionally.
	traceWarn := warnonce.New(stderr)
	txnWarn := warnonce.New(stderr)

	var store *resultstore.Store
	if *storeDir != "" {
		var serr error
		store, serr = resultstore.Open(resultstore.Options{
			Dir: *storeDir, Version: gitDescribe(), MaxBytes: *storeMax, Log: stderr,
		})
		if serr != nil {
			fmt.Fprintf(stderr, "memsim: -store: %v\n", serr)
			return 1
		}
	}

	// -http serves this run as a one-span campaign: workers=1, the span
	// walks queued → running → done/failed, and the process lingers on
	// -http-linger so /metrics and /debug/pprof outlive the simulation.
	var tele *telemetry.Campaign
	var srv *telemetry.Server
	finish := func(code int) int {
		if store != nil {
			if cerr := store.Close(); cerr != nil && code == 0 {
				fmt.Fprintf(stderr, "memsim: store: %v\n", cerr)
				code = 1
			}
			store = nil
		}
		tele.SetComplete()
		if srv != nil {
			srv.WaitQuit(*httpLinger)
			srv.Close()
		}
		return code
	}
	var sp *telemetry.Span
	if *httpAddr != "" {
		tele = telemetry.NewCampaign()
		tele.SetWorkers(1)
		var serr error
		if srv, serr = telemetry.Serve(*httpAddr, tele); serr != nil {
			fmt.Fprintf(stderr, "memsim: -http: %v\n", serr)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "memsim: telemetry on http://%s (/metrics, /progress, /debug/pprof)\n", srv.Addr())
		sp = tele.Enqueue(*name, fmt.Sprintf("%v %d cores @%d MHz bw=%d pf=%d",
			cfg.Model, cfg.Cores, cfg.CoreMHz, cfg.DRAMBandwidthMBps, cfg.PrefetchDepth))
		if store != nil {
			tele.SetStoreStats(func() telemetry.StoreStats {
				st := store.Stats()
				return telemetry.StoreStats{
					Records: st.Records, Bytes: st.Bytes,
					Hits: st.Hits, Misses: st.Misses,
					Puts: st.Puts, PutErrors: st.PutErrors,
					Evictions: st.Evictions, Compactions: st.Compactions,
					Recovered: st.Recovered, Corrupt: st.Corrupt,
					TruncatedBytes: st.TruncatedBytes,
				}
			})
		}
	}

	sp.Start()
	// A store hit replays the persisted report through the exact printing
	// paths a fresh run uses, so the output is byte-identical either way.
	// Runs collecting live-only artifacts (-trace, -sample, -txn-trace,
	// -explain-tail) must really simulate; they skip the probe but still
	// persist their reports.
	var rep *memsys.Report
	fromStore := false
	if store != nil && tr == nil && pr == nil && txn == nil {
		if hit, ok := store.Get(cfg, *name, scale.String()); ok {
			rep, fromStore = hit, true
			sp.StoreHit()
			fmt.Fprintf(stderr, "memsim: result served from store %s\n", *storeDir)
		}
	}
	if !fromStore {
		var err error
		rep, err = memsys.Run(cfg, *name, scale)
		if err != nil {
			sp.Fail("error")
			fmt.Fprintf(stderr, "memsim: %v\n", err)
			var rerr memsys.RunError
			if errors.As(err, &rerr) {
				writeFlightTail(stderr, rerr.EngineState())
			}
			return finish(1)
		}
		sp.Done()
		if store != nil {
			if perr := store.Put(cfg, *name, scale.String(), rep); perr != nil {
				fmt.Fprintf(stderr, "memsim: store: write failed: %v\n", perr)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		out := any(rep)
		if pr != nil {
			out = struct {
				Report *memsys.Report `json:"report"`
				Probe  *memsys.Probe  `json:"probe"`
			}{rep, pr}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", err)
			return finish(1)
		}
	} else {
		fmt.Fprint(stdout, rep)
		if *breakdown {
			writeBreakdownText(stdout, rep)
		}
		if pr != nil {
			writeProbeText(stdout, pr)
		}
		if *explainTail {
			txn.WriteExplainTail(stdout, sim.MHz(cfg.CoreMHz).Period)
		}
	}
	if tele != nil {
		if rep.Latency != nil {
			period := sim.MHz(cfg.CoreMHz).Period
			if period > 0 {
				rep.Latency.Each(func(lname string, d *memsys.LatencyDist) {
					for _, b := range d.Buckets {
						tele.RecordLatency(lname, uint64(b.HiFS)/uint64(period), b.Count)
					}
				})
			}
		}
		for _, s := range txn.Summary() {
			tele.RecordTxnClass(s.Class, s.Count, s.Exemplars, s.SlowestID, s.SlowestFS)
		}
	}
	if *latencyCSV != "" {
		f, ferr := os.Create(*latencyCSV)
		if ferr != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", ferr)
			return finish(1)
		}
		rep.Latency.WriteBucketsCSV(f)
		f.Close()
		if !*asJSON {
			fmt.Fprintf(stdout, "latency: histogram buckets written to %s\n", *latencyCSV)
		}
	}
	if pr != nil && *sampleCSV != "" {
		f, ferr := os.Create(*sampleCSV)
		if ferr != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", ferr)
			return finish(1)
		}
		if werr := pr.WriteCSV(f); werr != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", werr)
			return finish(1)
		}
		f.Close()
		if !*asJSON {
			fmt.Fprintf(stdout, "samples: %d epochs written to %s\n", pr.Epochs(), *sampleCSV)
		}
	}
	if txn != nil && *txnTraceOut != "" {
		f, ferr := os.Create(*txnTraceOut)
		if ferr != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", ferr)
			return finish(1)
		}
		if werr := txn.WriteJSONL(f); werr != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", werr)
			return finish(1)
		}
		f.Close()
		if !*asJSON {
			fmt.Fprintf(stdout, "txn-trace: %d transaction trees written to %s\n", txn.Trees(), *txnTraceOut)
		}
	}
	if txn != nil {
		if d := txn.DroppedSampled(); d > 0 {
			txnWarn.Warnf("memsim: warning: txn trace dropped %d sampled trees past the retention cap; lower -txn-sample or rely on the exemplar reservoirs", d)
		}
	}
	if tr != nil {
		if pr != nil {
			mergeProbeCounters(tr, pr)
		}
		txn.MergeChrome(tr)
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", ferr)
			return finish(1)
		}
		if werr := tr.WriteChrome(f); werr != nil {
			fmt.Fprintf(stderr, "memsim: %v\n", werr)
			return finish(1)
		}
		f.Close()
		if !*asJSON {
			fmt.Fprintf(stdout, "trace: %d spans written to %s (%d dropped)\n", tr.Len(), *traceOut, tr.Dropped())
		}
		if d := tr.Dropped(); d > 0 {
			traceWarn.Warnf("memsim: warning: trace dropped %d spans past the collector cap; the timeline is incomplete", d)
		}
	}
	if *verbose {
		fmt.Fprintf(stdout, "L1:    %+v\n", rep.L1)
		fmt.Fprintf(stdout, "L2:    %+v\n", rep.L2)
		fmt.Fprintf(stdout, "DRAM:  %+v\n", rep.DRAM)
		fmt.Fprintf(stdout, "Net:   %+v\n", rep.Net)
		fmt.Fprintf(stdout, "Coher: rm=%d wm=%d upg=%d pfs=%d c2c=%d/%d wb=%d pf=%d/%d\n",
			rep.ReadMisses, rep.WriteMisses, rep.Upgrades, rep.PFSMisses,
			rep.C2CCluster, rep.C2CRemote, rep.L1WritebacksL2,
			rep.PrefetchFills, rep.PrefetchUseless)
		fmt.Fprintf(stdout, "DMA:   cmds=%d get=%dB put=%dB ls=%d\n",
			rep.DMACommands, rep.DMAGetBytes, rep.DMAPutBytes, rep.LSAccesses)
		fmt.Fprintf(stdout, "Energy: core=%.3g i$=%.3g d$=%.3g lmem=%.3g net=%.3g l2=%.3g dram=%.3g J\n",
			rep.Energy.Core, rep.Energy.ICache, rep.Energy.DCache, rep.Energy.LMem,
			rep.Energy.Network, rep.Energy.L2, rep.Energy.DRAM)
		fmt.Fprintf(stdout, "Engine: dispatches=%d fastpath=%.1f%% handoff=%.1f%% inline=%.1f%% heap<=%d srv pruned=%d\n",
			rep.Engine.Dispatches+rep.Engine.Handoffs+rep.Engine.InlineSteps, 100*rep.Engine.FastPathRate(),
			100*rep.Engine.HandoffRate(), 100*rep.Engine.InlineRate(), rep.Engine.HeapMax, rep.Servers.Pruned)
	}
	return finish(0)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

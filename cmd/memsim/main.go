// Command memsim runs one workload on one machine configuration and
// prints the measurement report: the quickest way to poke at the
// simulator.
//
// Usage:
//
//	memsim -w fir -model str -cores 16 -mhz 3200 -bw 6400 -pf 4 -scale default
//	memsim -w fir -model str -sample 1us          # per-epoch time series
//	memsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	memsys "repro"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ccOnlyFlags validates flag combinations that silently do nothing
// outside the cache-coherent model: the prefetcher, the no-write-
// allocate policy and the snoop filter all live in the CC protocol
// layer, so asking for them on STR or INC machines is a mistake, not a
// no-op to shrug off.
func ccOnlyFlags(m memsys.Model, pf int, nwa, snoopFilter bool) error {
	if m == memsys.CC {
		return nil
	}
	var bad []string
	if pf != 0 {
		bad = append(bad, "-pf")
	}
	if nwa {
		bad = append(bad, "-nwa")
	}
	if snoopFilter {
		bad = append(bad, "-snoopfilter")
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("%s only applies to -model cc (got -model %s)",
		strings.Join(bad, ", "), strings.ToLower(m.String()))
}

// headlineSeries are the probe metrics rendered as text and merged into
// the Chrome trace as counter tracks. Counters are differentiated into
// per-epoch increments; levels are plotted as-is. Metrics absent from a
// run (model-specific sources) are skipped.
var headlineSeries = []string{
	"dram.read_bytes",
	"dram.write_bytes",
	"cpu.instructions",
	"cpu.storebuf",
	"engine.heap_depth",
	"dma.get_bytes",
	"dma.put_bytes",
	"dma.queued",
	"coher.c2c_cluster",
	"coher.c2c_remote",
}

// seriesOf returns a headline metric's plottable view: the per-epoch
// delta for counters, the raw samples for levels. nil if absent.
func seriesOf(pr *probe.Recorder, name string) []float64 {
	for i, n := range pr.Names() {
		if n == name {
			return pr.Delta(i)
		}
	}
	return nil
}

// writeProbeText renders the headline series as sparklines and a
// heatmap, one intensity row per metric.
func writeProbeText(pr *probe.Recorder) {
	fmt.Printf("probe: %d epochs of %v", pr.Epochs(), memsys.Time(pr.Interval()))
	if d := pr.Dropped(); d > 0 {
		fmt.Printf(" (%d dropped past cap)", d)
	}
	fmt.Println()
	hm := stats.Heatmap{Width: 72}
	for _, name := range headlineSeries {
		if s := seriesOf(pr, name); s != nil {
			hm.AddRow(name, s)
		}
	}
	hm.Write(os.Stdout)
}

// mergeProbeCounters adds the headline series to the trace as Chrome
// "C" counter events, so Perfetto draws them above the span timeline.
func mergeProbeCounters(tr *trace.Collector, pr *probe.Recorder) {
	times := pr.Times()
	for _, name := range headlineSeries {
		s := seriesOf(pr, name)
		for k, v := range s {
			tr.AddCounter(name, times[k], v)
		}
	}
}

func main() {
	name := flag.String("w", "fir", "workload name (see -list)")
	model := flag.String("model", "cc", "memory model: cc, str or inc")
	cores := flag.Int("cores", 4, "number of cores (1-16)")
	mhz := flag.Uint64("mhz", 800, "core clock in MHz (800, 1600, 3200, 6400)")
	bw := flag.Uint64("bw", 1600, "DRAM bandwidth in MB/s (1600, 3200, 6400, 12800)")
	pf := flag.Int("pf", 0, "hardware prefetch depth (0 = off; CC only)")
	nwa := flag.Bool("nwa", false, "no-write-allocate L1 policy (CC only)")
	filter := flag.Bool("snoopfilter", false, "RegionScout-style snoop filter (CC only)")
	scaleName := flag.String("scale", "small", "dataset scale: small, default, paper")
	list := flag.Bool("list", false, "list available workloads")
	verbose := flag.Bool("v", false, "print detailed counters")
	asJSON := flag.Bool("json", false, "print the full report as JSON")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	sample := flag.String("sample", "", "sample the machine every simulated interval (e.g. 1us, 500ns)")
	sampleCSV := flag.String("sample-csv", "", "write the per-epoch samples as CSV to this file (requires -sample)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(memsys.Workloads(), "\n"))
		return
	}
	m, err := memsys.ParseModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memsim:", err)
		os.Exit(2)
	}
	scale, err := memsys.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memsim:", err)
		os.Exit(2)
	}
	if err := ccOnlyFlags(m, *pf, *nwa, *filter); err != nil {
		fmt.Fprintln(os.Stderr, "memsim:", err)
		os.Exit(2)
	}
	if *sampleCSV != "" && *sample == "" {
		fmt.Fprintln(os.Stderr, "memsim: -sample-csv requires -sample")
		os.Exit(2)
	}

	cfg := memsys.DefaultConfig(m, *cores)
	cfg.CoreMHz = *mhz
	cfg.DRAMBandwidthMBps = *bw
	cfg.PrefetchDepth = *pf
	cfg.NoWriteAllocate = *nwa
	cfg.SnoopFilter = *filter
	var tr *memsys.Trace
	if *traceOut != "" {
		tr = memsys.NewTrace()
		cfg.Trace = tr
	}
	var pr *memsys.Probe
	if *sample != "" {
		interval, perr := memsys.ParseTime(*sample)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "memsim:", perr)
			os.Exit(2)
		}
		pr = memsys.NewProbe(interval)
		cfg.Probe = pr
	}

	rep, err := memsys.Run(cfg, *name, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memsim: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := any(rep)
		if pr != nil {
			out = struct {
				Report *memsys.Report `json:"report"`
				Probe  *memsys.Probe  `json:"probe"`
			}{rep, pr}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep)
		if pr != nil {
			writeProbeText(pr)
		}
	}
	if pr != nil && *sampleCSV != "" {
		f, ferr := os.Create(*sampleCSV)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", ferr)
			os.Exit(1)
		}
		if werr := pr.WriteCSV(f); werr != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", werr)
			os.Exit(1)
		}
		f.Close()
		if !*asJSON {
			fmt.Printf("samples: %d epochs written to %s\n", pr.Epochs(), *sampleCSV)
		}
	}
	if tr != nil {
		if pr != nil {
			mergeProbeCounters(tr, pr)
		}
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", ferr)
			os.Exit(1)
		}
		if werr := tr.WriteChrome(f); werr != nil {
			fmt.Fprintf(os.Stderr, "memsim: %v\n", werr)
			os.Exit(1)
		}
		f.Close()
		if !*asJSON {
			fmt.Printf("trace: %d spans written to %s (%d dropped)\n", tr.Len(), *traceOut, tr.Dropped())
		}
	}
	if *verbose {
		fmt.Printf("L1:    %+v\n", rep.L1)
		fmt.Printf("L2:    %+v\n", rep.L2)
		fmt.Printf("DRAM:  %+v\n", rep.DRAM)
		fmt.Printf("Net:   %+v\n", rep.Net)
		fmt.Printf("Coher: rm=%d wm=%d upg=%d pfs=%d c2c=%d/%d wb=%d pf=%d/%d\n",
			rep.ReadMisses, rep.WriteMisses, rep.Upgrades, rep.PFSMisses,
			rep.C2CCluster, rep.C2CRemote, rep.L1WritebacksL2,
			rep.PrefetchFills, rep.PrefetchUseless)
		fmt.Printf("DMA:   cmds=%d get=%dB put=%dB ls=%d\n",
			rep.DMACommands, rep.DMAGetBytes, rep.DMAPutBytes, rep.LSAccesses)
		fmt.Printf("Energy: core=%.3g i$=%.3g d$=%.3g lmem=%.3g net=%.3g l2=%.3g dram=%.3g J\n",
			rep.Energy.Core, rep.Energy.ICache, rep.Energy.DCache, rep.Energy.LMem,
			rep.Energy.Network, rep.Energy.L2, rep.Energy.DRAM)
		fmt.Printf("Engine: dispatches=%d fastpath=%.1f%% heap<=%d srv pruned=%d\n",
			rep.Engine.Dispatches, 100*rep.Engine.FastPathRate(), rep.Engine.HeapMax,
			rep.Servers.Pruned)
	}
}

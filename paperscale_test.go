package memsys_test

import (
	"testing"

	memsys "repro"
)

// TestPaperScaleSmoke runs a representative subset of workloads at the
// paper's dataset sizes on the full 16-core machines. It is skipped in
// -short mode (these runs take minutes); CI and the final validation
// pass run it to prove the paper-scale inputs hold up end to end.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale runs are slow")
	}
	apps := []string{"fir", "depth", "mpeg2", "mergesort", "fem"}
	for _, app := range apps {
		for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
			app, model := app, model
			t.Run(app+"/"+model.String(), func(t *testing.T) {
				t.Parallel()
				rep, err := memsys.Run(memsys.DefaultConfig(model, 16), app, memsys.ScalePaper)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Wall == 0 || rep.Instructions == 0 {
					t.Fatalf("empty report: %+v", rep)
				}
			})
		}
	}
}

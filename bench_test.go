// Benchmarks that regenerate each of the paper's tables and figures
// (small dataset scale; cmd/paperbench runs the full-size versions).
// Each benchmark reports, as custom metrics, the headline numbers the
// corresponding figure is about, so `go test -bench .` doubles as a
// quick shape check against the paper.
package memsys_test

import (
	"io"
	"testing"

	memsys "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

func newRunner() *bench.Runner { return bench.NewRunner(workload.ScaleSmall) }

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		rows, err := r.Table3(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range rows {
				if row.App == "fir" {
					b.ReportMetric(row.OffChipMBps, "fir-MB/s")
				}
				if row.App == "depth" {
					b.ReportMetric(row.InstrPerL1Miss, "depth-instr/L1miss")
				}
			}
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	// The full 11-app sweep is cmd/paperbench's job; the benchmark runs
	// a representative pair: one compute-bound, one data-bound app.
	for i := 0; i < b.N; i++ {
		r := newRunner()
		out, err := r.Figure2(io.Discard, []string{"depth", "fir"})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			bars := out["fir"]
			b.ReportMetric(bars[6].Total/bars[7].Total, "fir-CC16/STR16")
			bars = out["depth"]
			b.ReportMetric(bars[6].Total/bars[7].Total, "depth-CC16/STR16")
		}
	}
}

func BenchmarkFigure2AllApps(b *testing.B) {
	if testing.Short() {
		b.Skip("full 11-app sweep")
	}
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if _, err := r.Figure2(io.Discard, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		out, err := r.Figure3(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			fir := out["fir"]
			b.ReportMetric(fir[0].Read/fir[1].Read, "fir-CCread/STRread")
			bt := out["bitonicsort"]
			b.ReportMetric(bt[1].Write/(bt[0].Write+1e-12), "bitonic-STRwrite/CCwrite")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		out, err := r.Figure4(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			fir := out["fir"]
			b.ReportMetric(fir[1].Total/fir[0].Total, "fir-STR/CC-energy")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		out, err := r.Figure5(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			fir := out["fir"]
			// 6.4 GHz bars are the last pair: CC then STR.
			b.ReportMetric(fir[6].Total/fir[7].Total, "fir-CC/STR@6.4GHz")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		bars, err := r.Figure6(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(bars[0].Total/bars[6].Total, "fir-CC-1.6/12.8-speedup")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		out, err := r.Figure7(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			ms := out["mergesort"]
			b.ReportMetric(ms[0].Load/(ms[1].Load+1e-12), "mergesort-prefetch-loadstall-cut")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		traffic, energy, err := r.Figure8(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			fir := traffic["fir"]
			b.ReportMetric(fir[1].Read/(fir[0].Read+1e-12), "fir-PFSread/CCread")
			b.ReportMetric(energy[1].Total/energy[0].Total, "fir-PFS/CC-energy")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		bars, _, err := r.Figure9(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(bench.Speedup(bars[6], bars[7]), "mpeg2-opt-speedup@16")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		bars, err := r.Figure10(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// At small benchmark scale the 16-core bars are barrier-bound
			// (tiny per-core spans), so report the 2-core speedup; the
			// full-scale Figure 10 speedups live in EXPERIMENTS.md.
			b.ReportMetric(bench.Speedup(bars[0], bars[1]), "art-opt-speedup@2")
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

func runCfg(b *testing.B, cfg core.Config, app string) *core.Report {
	b.Helper()
	rep, err := memsys.Run(cfg, app, memsys.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblationNoWriteAllocate compares PFS against the full
// no-write-allocate policy with a write-gathering buffer (the paper's
// Section 5.5 footnote expects the latter to do at least as well).
func BenchmarkAblationNoWriteAllocate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := runCfg(b, memsys.DefaultConfig(memsys.CC, 4), "fir")
		pfs := runCfg(b, memsys.DefaultConfig(memsys.CC, 4), "fir-pfs")
		nwaCfg := memsys.DefaultConfig(memsys.CC, 4)
		nwaCfg.NoWriteAllocate = true
		nwa := runCfg(b, nwaCfg, "fir")
		if i == b.N-1 {
			b.ReportMetric(float64(plain.Wall)/float64(pfs.Wall), "pfs-speedup")
			b.ReportMetric(float64(plain.Wall)/float64(nwa.Wall), "nwa-speedup")
			b.ReportMetric(float64(nwa.DRAM.ReadBytes)/float64(plain.DRAM.ReadBytes), "nwa-read-ratio")
		}
	}
}

// BenchmarkAblationPrefetchDepth sweeps the prefetcher depth in the
// latency-bound regime of Figure 7 (high clock, ample bandwidth).
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	mk := func(depth int) memsys.Config {
		cfg := memsys.DefaultConfig(memsys.CC, 2)
		cfg.CoreMHz = 3200
		cfg.DRAMBandwidthMBps = 12800
		cfg.PrefetchDepth = depth
		return cfg
	}
	for i := 0; i < b.N; i++ {
		base := runCfg(b, mk(0), "fir")
		for _, depth := range []int{1, 2, 4, 8, 16} {
			rep := runCfg(b, mk(depth), "fir")
			if i == b.N-1 && depth == 4 {
				b.ReportMetric(float64(base.Wall)/float64(rep.Wall), "depth4-speedup")
			}
		}
	}
}

// BenchmarkAblationChannelBandwidth compares the default channel to a
// 4x one for the bandwidth-bound filter.
func BenchmarkAblationChannelBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lo := runCfg(b, memsys.DefaultConfig(memsys.CC, 16), "fir")
		cfg := memsys.DefaultConfig(memsys.CC, 16)
		cfg.DRAMBandwidthMBps = 6400
		hi := runCfg(b, cfg, "fir")
		if i == b.N-1 {
			b.ReportMetric(float64(lo.Wall)/float64(hi.Wall), "4x-bw-speedup")
		}
	}
}

// BenchmarkAblationDMAOutstanding sweeps the DMA engine's
// outstanding-access window for a bandwidth-bound streaming workload.
func BenchmarkAblationDMAOutstanding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var walls [3]float64
		for j, window := range []int{1, 4, 16} {
			// One fast core over a fat channel isolates the engine's own
			// pipelining (at 800 MHz compute hides the serial transfer).
			cfg := memsys.DefaultConfig(memsys.STR, 1)
			cfg.CoreMHz = 6400
			cfg.DRAMBandwidthMBps = 12800
			cfg.DMAOutstanding = window
			walls[j] = float64(runCfg(b, cfg, "fir").Wall)
		}
		if i == b.N-1 {
			b.ReportMetric(walls[0]/walls[2], "16-vs-1-outstanding-speedup")
		}
	}
}

// BenchmarkAblationClusterSize compares 2, 4 and 8 cores per cluster
// bus at 16 cores.
func BenchmarkAblationClusterSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var walls [3]float64
		for j, per := range []int{2, 4, 8} {
			cfg := memsys.DefaultConfig(memsys.CC, 16)
			cfg.CoresPerCluster = per
			walls[j] = float64(runCfg(b, cfg, "mpeg2").Wall)
		}
		if i == b.N-1 {
			b.ReportMetric(walls[0]/walls[1], "clust2-vs-4")
			b.ReportMetric(walls[2]/walls[1], "clust8-vs-4")
		}
	}
}

// BenchmarkAblationL2Size sweeps the shared L2 from 128 KB to 2 MB for
// a reuse-heavy workload.
func BenchmarkAblationL2Size(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var first, last float64
		sizes := []uint64{128, 512, 2048}
		for j, kb := range sizes {
			cfg := memsys.DefaultConfig(memsys.CC, 4)
			cfg.L2SizeKB = kb
			// mpeg2-orig's frame-sized temporaries (~200 KB at default
			// scale) thrash a 128 KB L2 but fit larger ones.
			rep, err := memsys.Run(cfg, "mpeg2-orig", memsys.ScaleDefault)
			if err != nil {
				b.Fatal(err)
			}
			w := float64(rep.Wall)
			if j == 0 {
				first = w
			}
			if j == len(sizes)-1 {
				last = w
			}
		}
		if i == b.N-1 {
			b.ReportMetric(first/last, "2MB-vs-128KB-speedup")
		}
	}
}

// BenchmarkAblationIncoherent compares the coherent model against the
// incoherent cache-based model (the third practical corner of the
// paper's Table 1) on workloads whose sharing is read-only or disjoint,
// where software coherence needs no extra flushes: the delta is pure
// protocol overhead (broadcasts, snoops, upgrade latencies).
func BenchmarkAblationIncoherent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"fir", "depth"} {
			cc := runCfg(b, memsys.DefaultConfig(memsys.CC, 8), app)
			inc := runCfg(b, memsys.DefaultConfig(memsys.INC, 8), app)
			if i == b.N-1 {
				b.ReportMetric(float64(cc.Wall)/float64(inc.Wall), app+"-inc-speedup")
			}
		}
	}
}

// BenchmarkAblationSnoopFilter measures the RegionScout-style filter:
// for data-parallel workloads with little sharing, most global
// broadcasts are provably unnecessary and the filter removes them.
func BenchmarkAblationSnoopFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := runCfg(b, memsys.DefaultConfig(memsys.CC, 16), "fir")
		cfg := memsys.DefaultConfig(memsys.CC, 16)
		cfg.SnoopFilter = true
		filt := runCfg(b, cfg, "fir")
		if i == b.N-1 {
			b.ReportMetric(float64(plain.Wall)/float64(filt.Wall), "filter-speedup")
			b.ReportMetric(float64(filt.FilteredSnoops), "filtered-broadcasts")
			b.ReportMetric(float64(plain.Net.BusControl)/float64(filt.Net.BusControl+1), "busctl-cut")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in
// simulated instructions per host second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instr uint64
	for i := 0; i < b.N; i++ {
		rep := runCfg(b, memsys.DefaultConfig(memsys.CC, 16), "depth")
		instr += rep.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

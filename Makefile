# Tier-1 verification and CI entry points (see ROADMAP.md).

.PHONY: verify build test race fault bench bench-engine bench-check paperbench-determinism profile

# verify is the tier-1 gate: build + full test suite.
verify: build test

build:
	go build ./...

test:
	go test ./...

# race runs the race detector over the concurrent experiment runner and
# the engine it parallelizes; required for any change to either. The
# bench run is scoped to the runner's concurrency tests (the figure-
# shape tests exercise single-threaded model code and are ~20x slower
# under race, blowing the go test timeout).
race:
	go test -race -timeout 20m -run 'Runner|Parallel|Prefetch|Progress|CfgKey|Store' ./internal/bench/...
	go test -race -timeout 20m ./internal/sim/...
	go test -race -timeout 20m ./internal/resultstore/

# fault runs the fault-injection suite and the CLI exit-code contracts
# under the race detector: injected deadlocks, watchdog-aborted stalls,
# panics, flaky retries and corrupted configs must all surface as typed
# job records while every engine drains its goroutines cleanly. The
# disk-fault wrappers (torn writes, bit flips, short reads, ENOSPC
# against the result store) and the SIGKILL crash-recovery re-exec test
# live in the same packages and run here too.
fault:
	go test -race -timeout 20m ./internal/fault/ ./internal/resultstore/ ./cmd/memsim/ ./cmd/paperbench/

# bench regenerates the perf numbers tracked in BENCH_runner.json.
bench:
	go test -bench 'BenchmarkAccessHit|BenchmarkLookupMiss|BenchmarkInsertEvict' -run xxx ./internal/cache/
	go test -bench BenchmarkRegionFilter -run xxx ./internal/coher/
	go test -bench BenchmarkRunner -run xxx -benchtime 3x ./internal/bench/

# bench-engine regenerates the event-engine numbers tracked in
# BENCH_engine.json (Sync fast path, scheduler dispatch, server
# calendar, the cycle-ledger charge path, the histogram record path,
# plus the end-to-end runner grid).
bench-engine:
	go test -bench 'BenchmarkSyncFastPath|BenchmarkDispatch|BenchmarkServerAcquire|BenchmarkFlightRecorder' -run xxx ./internal/sim/
	go test -bench BenchmarkLedger -run xxx ./internal/cpu/
	go test -bench BenchmarkHistogramRecord -run xxx ./internal/stats/
	go test -bench BenchmarkTxnTrace -run xxx ./internal/txntrace/
	go test -bench BenchmarkRunner -run xxx -benchtime 3x ./internal/bench/

# bench-check fails if the engine microbenchmarks regress more than 25%
# against the 'after' values recorded in BENCH_engine.json. After an
# intentional engine change, regenerate the record with bench-engine and
# update the file.
bench-check:
	go test -bench 'BenchmarkSyncFastPath|BenchmarkDispatch|BenchmarkServerAcquire|BenchmarkFlightRecorder' -run xxx ./internal/sim/ > /tmp/bench-engine-check.txt
	go test -bench BenchmarkLedger -run xxx ./internal/cpu/ >> /tmp/bench-engine-check.txt
	go test -bench BenchmarkHistogramRecord -run xxx ./internal/stats/ >> /tmp/bench-engine-check.txt
	go test -bench BenchmarkTxnTrace -run xxx ./internal/txntrace/ >> /tmp/bench-engine-check.txt
	go test -bench BenchmarkRunner -run xxx -benchtime 3x ./internal/bench/ >> /tmp/bench-engine-check.txt
	go run ./cmd/benchcheck -baseline BENCH_engine.json -max-regress 25 < /tmp/bench-engine-check.txt

# profile runs a small single-figure campaign under the CPU and blocking
# profilers and leaves cpu.pprof/block.pprof in /tmp for `go tool pprof`.
# The blocking profile is the one that matters for dispatch work: time
# parked in channel operations is invisible to the CPU profile. See
# EXPERIMENTS.md ("Profiling the engine") for how to read the output.
profile:
	go run ./cmd/paperbench -only fig2 -apps fir -scale small -q \
		-cpuprofile /tmp/paperbench-cpu.pprof -blockprofile /tmp/paperbench-block.pprof
	@echo "profiles written: /tmp/paperbench-cpu.pprof /tmp/paperbench-block.pprof"
	@echo "inspect with: go tool pprof -top /tmp/paperbench-cpu.pprof"

# paperbench-determinism is the end-to-end check that figure output is
# byte-identical at any -j (the sweep is embarrassingly parallel).
paperbench-determinism:
	go run ./cmd/paperbench -only fig2 -scale small -q -j 1 > /tmp/pb-j1.txt
	go run ./cmd/paperbench -only fig2 -scale small -q -j 8 > /tmp/pb-j8.txt
	cmp /tmp/pb-j1.txt /tmp/pb-j8.txt && echo "fig2 output identical at -j 1 and -j 8"

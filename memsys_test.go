package memsys_test

import (
	"fmt"
	"testing"

	memsys "repro"
)

func TestWorkloadsRegistered(t *testing.T) {
	names := memsys.Workloads()
	want := []string{
		"art", "art-orig", "bitonicsort", "depth", "fem", "fir",
		"fir-pfs", "h264", "jpeg-decode", "jpeg-encode", "mergesort",
		"mergesort-pfs", "mpeg2", "mpeg2-orig", "mpeg2-pfs", "raytracer",
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("workload %q not registered (have %v)", w, names)
		}
	}
}

func TestRunQuickstart(t *testing.T) {
	rep, err := memsys.Run(memsys.DefaultConfig(memsys.CC, 4), "fir", memsys.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall == 0 || rep.Instructions == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := memsys.Run(memsys.DefaultConfig(memsys.CC, 1), "nope", memsys.ScaleSmall); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestBothModelsAllWorkloadsSmall(t *testing.T) {
	// Every registered workload must verify on both models at 2 cores.
	for _, name := range memsys.Workloads() {
		for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
			name, model := name, model
			t.Run(name+"/"+model.String(), func(t *testing.T) {
				t.Parallel()
				if _, err := memsys.Run(memsys.DefaultConfig(model, 2), name, memsys.ScaleSmall); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestINCModelOnCommunicationFreeWorkloads(t *testing.T) {
	// The incoherent model (Table 1's third option) is sound without
	// extra software coherence for workloads whose sharing is read-only
	// and whose outputs are disjoint; the coherent and incoherent
	// machines must produce verified results and comparable times.
	apps := []string{"fir", "depth", "jpeg-encode", "jpeg-decode", "raytracer", "mpeg2"}
	for _, app := range apps {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			inc, err := memsys.Run(memsys.DefaultConfig(memsys.INC, 4), app, memsys.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			cc, err := memsys.Run(memsys.DefaultConfig(memsys.CC, 4), app, memsys.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(inc.Wall) / float64(cc.Wall)
			if ratio < 0.5 || ratio > 1.5 {
				t.Errorf("INC/CC wall ratio = %.2f; removing the protocol should not change these apps much", ratio)
			}
		})
	}
}

func TestTraceCollectsSpans(t *testing.T) {
	tr := memsys.NewTrace()
	cfg := memsys.DefaultConfig(memsys.CC, 2)
	cfg.Trace = tr
	if _, err := memsys.Run(cfg, "mergesort", memsys.ScaleSmall); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no spans collected")
	}
	sum := tr.Summary()
	found := false
	for k := range sum {
		if len(k) > 2 && (k[2:] == "load-stall" || k[2:] == "sync-wait" || k[2:] == "store-stall") {
			found = true
		}
	}
	if !found {
		t.Errorf("no stall/sync spans in %v", sum)
	}
}

func TestOddCoreCounts(t *testing.T) {
	// Core counts that are not powers of two exercise the partitioning
	// and cluster-boundary logic (e.g. a half-filled cluster).
	for _, cores := range []int{3, 5, 6, 7} {
		for _, app := range []string{"fir", "mergesort", "fem"} {
			for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
				cores, app, model := cores, app, model
				t.Run(fmt.Sprintf("%s/%v/%d", app, model, cores), func(t *testing.T) {
					t.Parallel()
					if _, err := memsys.Run(memsys.DefaultConfig(model, cores), app, memsys.ScaleSmall); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestParseHelpers(t *testing.T) {
	cases := []struct {
		in   string
		want memsys.Model
	}{{"cc", memsys.CC}, {"STR", memsys.STR}, {"Inc", memsys.INC}}
	for _, c := range cases {
		got, err := memsys.ParseModel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseModel(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := memsys.ParseModel("bogus"); err == nil {
		t.Error("ParseModel accepted garbage")
	}
	if sc, err := memsys.ParseScale("paper"); err != nil || sc != memsys.ScalePaper {
		t.Errorf("ParseScale(paper) = %v, %v", sc, err)
	}
	if _, err := memsys.ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted garbage")
	}
}

package memsys_test

import (
	"fmt"
	"log"

	memsys "repro"
)

// Example runs the quickstart flow: one workload on both memory models.
func Example() {
	for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
		cfg := memsys.DefaultConfig(model, 4)
		rep, err := memsys.Run(cfg, "fir", memsys.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: verified=%v cores=%d positive-energy=%v\n",
			model, err == nil, rep.Cores, rep.Energy.Total() > 0)
	}
	// Output:
	// CC: verified=true cores=4 positive-energy=true
	// STR: verified=true cores=4 positive-energy=true
}

// ExampleRun_prefetch shows the Section 5.4 experiment in miniature:
// hardware prefetching removes cache-model load stalls.
func ExampleRun_prefetch() {
	plain := memsys.DefaultConfig(memsys.CC, 2)
	plain.CoreMHz = 3200
	plain.DRAMBandwidthMBps = 12800
	pf := plain
	pf.PrefetchDepth = 4

	a, err := memsys.Run(plain, "mergesort", memsys.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	b, err := memsys.Run(pf, "mergesort", memsys.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefetching reduced load stalls: %v\n", b.Breakdown.LoadStall < a.Breakdown.LoadStall/2)
	// Output:
	// prefetching reduced load stalls: true
}

// ExampleNewWorkload shows direct system assembly for custom sweeps.
func ExampleNewWorkload() {
	w, err := memsys.NewWorkload("depth", memsys.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	sys := memsys.NewSystem(memsys.DefaultConfig(memsys.STR, 8))
	rep, err := sys.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("depth on STR is compute-bound: %v\n",
		rep.Breakdown.Useful > rep.Breakdown.Sync+rep.Breakdown.LoadStall+rep.Breakdown.StoreStall)
	// Output:
	// depth on STR is compute-bound: true
}

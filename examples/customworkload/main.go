// Customworkload shows how a user of this library writes their own
// workload — a parallel histogram over a large byte array — and runs it
// on both memory models, entirely through the public memsys API.
//
// The pattern mirrors the paper's applications: Setup allocates
// simulated regions and synchronization, Run executes on every core
// (real Go computation plus declared memory behavior, with a streaming
// path when the machine has local stores), and Verify checks the result
// against an independent reference.
package main

import (
	"fmt"
	"log"

	memsys "repro"
)

const buckets = 256

// histogram counts byte values over a shared input array. Each core
// histograms a disjoint slab into a private table; core 0 reduces.
type histogram struct {
	n       int
	data    []byte
	partial [][]int64
	result  []int64

	dataR   memsys.Region
	partR   []memsys.Region
	cores   int
	barrier *memsys.Barrier
}

func (h *histogram) Name() string { return "histogram" }

func (h *histogram) Setup(sys *memsys.System) {
	h.cores = sys.Cores()
	h.data = make([]byte, h.n)
	for i := range h.data {
		h.data[i] = byte((i*2654435761 + 12345) >> 7)
	}
	h.dataR = sys.AddressSpace().Alloc("hist.data", uint64(h.n))
	h.partial = make([][]int64, h.cores)
	for c := range h.partial {
		h.partial[c] = make([]int64, buckets)
		h.partR = append(h.partR, sys.AddressSpace().AllocArray(
			fmt.Sprintf("hist.partial%d", c), buckets, 8))
	}
	h.result = make([]int64, buckets)
	h.barrier = memsys.NewBarrier("hist.bar", h.cores)
}

func (h *histogram) Run(p *memsys.Proc) {
	lo := h.n * p.ID() / h.cores
	hi := h.n * (p.ID() + 1) / h.cores
	mine := h.partial[p.ID()]

	if sm, ok := p.Mem().(*memsys.StreamMem); ok {
		// Streaming path: double-buffered DMA blocks into the local
		// store; the private table lives in the local store too.
		const block = 4096
		get := sm.Get(p, h.dataR.At(uint64(lo)), uint64(min(block, hi-lo)))
		for b := lo; b < hi; b += block {
			e := min(b+block, hi)
			cur := get
			if e < hi {
				get = sm.Get(p, h.dataR.At(uint64(e)), uint64(min(block, hi-e)))
			}
			sm.Wait(p, cur)
			for i := b; i < e; i++ {
				mine[h.data[i]]++
			}
			n := uint64(e - b)
			sm.LSLoadN(p, n/4)  // word loads of the input block
			p.Work(n * 2)       // bucket index + increment
			sm.LSStoreN(p, n/8) // table updates (amortized)
		}
		put := sm.Put(p, h.partR[p.ID()].Base, buckets*8)
		sm.Wait(p, put)
	} else {
		// Cache path: the table stays hot in the L1; the input streams.
		const block = 4096
		for b := lo; b < hi; b += block {
			e := min(b+block, hi)
			p.LoadN(h.dataR.At(uint64(b)), 4, uint64(e-b)/4)
			for i := b; i < e; i++ {
				mine[h.data[i]]++
			}
			p.Work(uint64(e-b) * 2)
			p.StoreN(h.partR[p.ID()].Base, 8, buckets/8) // table writeout (amortized)
		}
	}

	h.barrier.Wait(p)
	if p.ID() == 0 {
		for c := 0; c < h.cores; c++ {
			p.LoadN(h.partR[c].Base, 8, buckets)
			for k := 0; k < buckets; k++ {
				h.result[k] += h.partial[c][k]
			}
			p.Work(buckets)
		}
	}
	h.barrier.Wait(p)
}

func (h *histogram) Verify() error {
	want := make([]int64, buckets)
	for _, b := range h.data {
		want[b]++
	}
	for k := range want {
		if h.result[k] != want[k] {
			return fmt.Errorf("bucket %d = %d, want %d", k, h.result[k], want[k])
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
		sys := memsys.NewSystem(memsys.DefaultConfig(model, 8))
		rep, err := sys.Run(&histogram{n: 1 << 20})
		if err != nil {
			log.Fatalf("%v: %v", model, err)
		}
		fmt.Printf("%v: histogrammed 1 MiB on 8 cores in %v (%.0f MB/s off-chip)\n",
			model, rep.Wall, rep.OffChipBandwidth())
	}
	fmt.Println("\nWriting a workload needs only the public memsys API: Proc for")
	fmt.Println("issue accounting, Region/Addr for simulated placement, Barrier/")
	fmt.Println("Lock/TaskQueue for synchronization, and StreamMem for DMA.")
}

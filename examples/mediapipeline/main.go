// Mediapipeline walks the paper's cache-enhancement story (Sections 5.4
// and 5.5) on the media workloads: start from the plain cache-based
// MPEG-2 encoder, add stream-programming restructuring, then hardware
// prefetching, then non-allocating ("Prepare For Store") output stores,
// and compare the end point against the streaming-memory machine.
package main

import (
	"fmt"
	"log"

	memsys "repro"
)

func run(cfg memsys.Config, name string) *memsys.Report {
	rep, err := memsys.Run(cfg, name, memsys.ScaleSmall)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return rep
}

func main() {
	const cores = 8
	fmt.Printf("MPEG-2 encoder on %d cores @ 800 MHz: enhancing the cache-based system\n\n", cores)
	fmt.Printf("  %-34s %12s %10s %10s\n", "configuration", "time", "DRAM rd KB", "DRAM wr KB")

	show := func(label string, rep *memsys.Report) {
		fmt.Printf("  %-34s %12v %10d %10d\n",
			label, rep.Wall, rep.DRAM.ReadBytes/1024, rep.DRAM.WriteBytes/1024)
	}

	base := memsys.DefaultConfig(memsys.CC, cores)

	show("CC, original kernel-per-frame code", run(base, "mpeg2-orig"))
	show("CC, stream-programmed (fused)", run(base, "mpeg2"))

	pf := base
	pf.PrefetchDepth = 4
	show("CC, fused + prefetch depth 4", run(pf, "mpeg2"))

	pfs := pf
	show("CC, fused + P4 + PFS stores", run(pfs, "mpeg2-pfs"))

	show("STR, streaming memory", run(memsys.DefaultConfig(memsys.STR, cores), "mpeg2"))

	fmt.Println("\nThe paper's Section 5 conclusion in one table: with stream")
	fmt.Println("programming, prefetching and non-allocating writes, the coherent")
	fmt.Println("cache machine matches the streaming-memory machine on its own turf.")
}

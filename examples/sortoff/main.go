// Sortoff compares the two parallel sorts of the study — MergeSort and
// BitonicSort — on both memory models across core counts. It reproduces
// the Section 5.1 story in miniature: BitonicSort's in-place
// compare-exchanges favor the cache-based model (only dirtied lines are
// written back), while MergeSort's decaying parallelism shows up as
// synchronization time on both.
package main

import (
	"fmt"
	"log"

	memsys "repro"
)

func main() {
	fmt.Println("Parallel sort comparison (small scale, 800 MHz, 1.6 GB/s)")
	for _, app := range []string{"mergesort", "bitonicsort"} {
		fmt.Printf("\n%s:\n", app)
		fmt.Printf("  %5s  %12s %12s %9s %14s %14s\n",
			"cores", "CC time", "STR time", "CC/STR", "CC wr KB", "STR wr KB")
		for _, cores := range []int{1, 2, 4, 8, 16} {
			var wall [2]float64
			var wrKB [2]uint64
			for i, model := range []memsys.Model{memsys.CC, memsys.STR} {
				rep, err := memsys.Run(memsys.DefaultConfig(model, cores), app, memsys.ScaleSmall)
				if err != nil {
					log.Fatal(err)
				}
				wall[i] = rep.Wall.Seconds() * 1e6
				// Write traffic toward the memory system: L1 writebacks
				// for CC, DMA puts for STR.
				if model == memsys.CC {
					wrKB[i] = rep.L1WritebacksL2 * 32 / 1024
				} else {
					wrKB[i] = rep.DMAPutBytes / 1024
				}
			}
			fmt.Printf("  %5d  %10.1fus %10.1fus %9.2f %12d %14d\n",
				cores, wall[0], wall[1], wall[0]/wall[1], wrKB[0], wrKB[1])
		}
	}
	fmt.Println("\nNote how BitonicSort's STR write volume exceeds CC's: the")
	fmt.Println("streaming system writes unmodified blocks back; the caches don't.")
}

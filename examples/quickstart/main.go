// Quickstart: run one workload on both on-chip memory models and
// compare the outcome — the two-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	memsys "repro"
)

func main() {
	// A 4-core machine with the paper's default parameters (Table 2):
	// 800 MHz cores, 1.6 GB/s memory channel.
	for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
		cfg := memsys.DefaultConfig(model, 4)

		// Run the 16-tap FIR filter; the workload computes real results
		// and verifies them against a reference before reporting.
		rep, err := memsys.Run(cfg, "fir", memsys.ScaleSmall)
		if err != nil {
			log.Fatalf("verification failed: %v", err)
		}

		fmt.Printf("=== %v model ===\n", model)
		fmt.Print(rep)
		fmt.Printf("  read %d KB / wrote %d KB off-chip, %.2f uJ total\n\n",
			rep.DRAM.ReadBytes/1024, rep.DRAM.WriteBytes/1024, rep.Energy.Total()*1e6)
	}

	fmt.Println("Available workloads:")
	for _, name := range memsys.Workloads() {
		fmt.Println("  ", name)
	}
}

// Scaling explores the paper's Section 6/7 outlook: what happens to the
// cache-coherent model beyond the paper's 16 cores, where broadcast
// coherence traffic grows with the core count, and how the two remedies
// the paper anticipates — coarser-grained sharing (stream programming)
// and traffic filters — change the picture. It runs a data-parallel
// workload out to 32 cores and reports protocol activity alongside
// execution time.
package main

import (
	"fmt"
	"log"

	memsys "repro"
)

func main() {
	const app = "fem"
	fmt.Printf("%s beyond the paper's core counts (800 MHz, 1.6 GB/s)\n\n", app)
	fmt.Printf("  %6s %9s | %12s %14s %12s | %12s %14s\n",
		"cores", "model", "time (us)", "broadcasts", "snoops", "+filter (us)", "filtered")
	for _, cores := range []int{8, 16, 32} {
		for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
			rep, err := memsys.Run(memsys.DefaultConfig(model, cores), app, memsys.ScaleSmall)
			if err != nil {
				log.Fatal(err)
			}
			if model == memsys.STR {
				fmt.Printf("  %6d %9v | %12.1f %14s %12s | %12s %14s\n",
					cores, model, rep.Wall.Seconds()*1e6, "-", "-", "-", "-")
				continue
			}
			fcfg := memsys.DefaultConfig(model, cores)
			fcfg.SnoopFilter = true
			frep, err := memsys.Run(fcfg, app, memsys.ScaleSmall)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6d %9v | %12.1f %14d %12d | %12.1f %14d\n",
				cores, model, rep.Wall.Seconds()*1e6,
				rep.ReadMisses+rep.WriteMisses+rep.Upgrades, rep.L1.SnoopLookups,
				frep.Wall.Seconds()*1e6, frep.FilteredSnoops)
		}
	}
	fmt.Println("\nEvery cache miss in the protocol-based machine probes every other")
	fmt.Println("cache, so snoop work grows with the square of the core count; the")
	fmt.Println("streaming machine has no such term. The region filter removes the")
	fmt.Println("probes for provably-private data — the paper's expectation that")
	fmt.Println("'less aggressive, coarser-grain' coherence is what scales.")
}

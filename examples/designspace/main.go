// Designspace sweeps the two machine knobs the paper scales —
// computational throughput (core clock) and off-chip bandwidth — for a
// bandwidth-bound workload, and prints where each memory model
// saturates. It reproduces the Figure 5/6 design-space exploration as a
// grid instead of bar charts.
package main

import (
	"fmt"
	"log"

	memsys "repro"
)

func main() {
	const app = "fir"
	const cores = 16
	clocks := []uint64{800, 1600, 3200, 6400}
	bws := []uint64{1600, 3200, 6400, 12800}

	for _, model := range []memsys.Model{memsys.CC, memsys.STR} {
		fmt.Printf("%s on %v, %d cores: execution time (us)\n", app, model, cores)
		fmt.Printf("  %10s", "clock\\bw")
		for _, bw := range bws {
			fmt.Printf(" %9.1fGB/s", float64(bw)/1000)
		}
		fmt.Println()
		for _, mhz := range clocks {
			fmt.Printf("  %7.1fGHz", float64(mhz)/1000)
			for _, bw := range bws {
				cfg := memsys.DefaultConfig(model, cores)
				cfg.CoreMHz = mhz
				cfg.DRAMBandwidthMBps = bw
				rep, err := memsys.Run(cfg, app, memsys.ScaleSmall)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %13.1f", rep.Wall.Seconds()*1e6)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Reading the grids: once a row stops improving left-to-right the")
	fmt.Println("machine is compute-bound; once a column stops improving top-to-")
	fmt.Println("bottom it is bandwidth-bound. The streaming model reaches the")
	fmt.Println("bandwidth wall with fewer stalls; prefetching (see mediapipeline)")
	fmt.Println("buys the cache-based model the same headroom.")
}

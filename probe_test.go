package memsys_test

import (
	"bytes"
	"encoding/json"
	"testing"

	memsys "repro"
)

// TestProbeDoesNotPerturbReports pins the probe layer's core invariant:
// attaching a Recorder changes nothing about the simulated outcome.
// Every counter, timestamp and energy figure — the whole Report,
// including the engine self-metrics — must be identical with sampling
// on or off, across workloads and both of the paper's models.
func TestProbeDoesNotPerturbReports(t *testing.T) {
	cases := []struct {
		workload string
		model    memsys.Model
	}{
		{"fir", memsys.CC},
		{"fir", memsys.STR},
		{"mergesort", memsys.CC},
		{"mergesort", memsys.STR},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload+"-"+tc.model.String(), func(t *testing.T) {
			t.Parallel()
			run := func(sample bool) ([]byte, *memsys.Probe) {
				cfg := memsys.DefaultConfig(tc.model, 4)
				var pr *memsys.Probe
				if sample {
					pr = memsys.NewProbe(100 * 1000 * 1000 * 1000) // 100ns
					cfg.Probe = pr
				}
				rep, err := memsys.Run(cfg, tc.workload, memsys.ScaleSmall)
				if err != nil {
					t.Fatalf("run (sample=%v): %v", sample, err)
				}
				js, err := json.Marshal(rep)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				return js, pr
			}
			plain, _ := run(false)
			sampled, pr := run(true)
			if !bytes.Equal(plain, sampled) {
				t.Errorf("report differs with sampling on:\noff: %s\non:  %s", plain, sampled)
			}
			if pr.Epochs() == 0 {
				t.Fatalf("probe recorded no epochs")
			}
		})
	}
}

// TestProbeShowsDMAComputeOverlap checks that the per-epoch series
// actually resolve the streaming model's double-buffering: within a
// single epoch both the cores retire instructions AND the DMA engines
// move data — the "macroscopic prefetching" overlap of the paper.
func TestProbeShowsDMAComputeOverlap(t *testing.T) {
	pr := memsys.NewProbe(100 * 1000 * 1000 * 1000) // 100ns
	cfg := memsys.DefaultConfig(memsys.STR, 4)
	cfg.Probe = pr
	if _, err := memsys.Run(cfg, "fir", memsys.ScaleSmall); err != nil {
		t.Fatalf("run: %v", err)
	}
	instr := pr.DeltaByName("cpu.instructions")
	dmaBytes := pr.DeltaByName("dma.get_bytes")
	if instr == nil || dmaBytes == nil {
		t.Fatalf("missing series; have %v", pr.Names())
	}
	overlap := 0
	for i := range instr {
		if instr[i] > 0 && dmaBytes[i] > 0 {
			overlap++
		}
	}
	if overlap == 0 {
		t.Errorf("no epoch shows DMA and compute active together (epochs=%d)", pr.Epochs())
	}
}

// Package memsys is the public API of this repository: a reproduction of
// "Comparing Memory Systems for Chip Multiprocessors" (Leverich et al.,
// ISCA 2007) as an execution-driven CMP simulator with both of the
// paper's on-chip memory models.
//
// The typical flow is:
//
//	cfg := memsys.DefaultConfig(memsys.CC, 16)
//	cfg.PrefetchDepth = 4
//	rep, err := memsys.Run(cfg, "fir", memsys.ScaleDefault)
//	fmt.Println(rep)
//
// Run builds a machine (Table 2 of the paper: Tensilica-class 3-way
// VLIW cores in clusters of four, hierarchical interconnect, shared
// 512 KB L2, one DRAM channel), instantiates the named workload at the
// requested dataset scale, executes it on every core, verifies the
// computed result against an independent reference, and returns the
// measurement report (Figure 2 execution breakdown, Figure 3 traffic,
// Figure 4 energy, Table 3 metrics).
//
// Lower-level access — assembling systems by hand, writing custom
// workloads — is available through NewSystem and the Workload interface.
package memsys

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ledger"
	"repro/internal/mem"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/syncprim"
	"repro/internal/trace"
	"repro/internal/txntrace"
	"repro/internal/workload"
)

// Model selects the on-chip memory model.
type Model = core.Model

// The two memory models of the study.
const (
	// CC is the hardware-coherent cache-based model: 32 KB 2-way L1
	// data caches with MESI snooping over the hierarchical network.
	CC = core.CC
	// STR is the software-managed streaming model: 24 KB local stores
	// with DMA engines plus an 8 KB cache for stack/global data.
	STR = core.STR
	// INC is the incoherent cache-based model, the third practical point
	// of the paper's Table 1 design space (an extension beyond the
	// paper's two evaluated models): caches without a coherence
	// protocol; software flushes and invalidates at synchronization
	// points.
	INC = core.INC
)

// Config describes one experimental machine; see core.Config for the
// field documentation.
type Config = core.Config

// System is an assembled machine.
type System = core.System

// Report is the measurement record of one run.
type Report = core.Report

// Cycle-accounting types (internal/ledger), present on a Report when
// Config.CycleLedger is set: CycleSummary attributes every core cycle
// to a fixed class taxonomy (classes sum exactly to the wall time);
// LatencySummary carries the memory system's service-time
// distributions, one LatencyDist of quantiles and power-of-two buckets
// per metric.
type (
	CycleSummary   = ledger.Summary
	LatencySummary = ledger.LatencySummary
	LatencyDist    = ledger.Dist
)

// Workload is a program for the machine. The built-in implementations
// live in internal/workload; external users implement it against the
// aliases below (Proc, Region, Barrier, ...), which expose everything a
// workload needs without importing internal packages.
type Workload = core.Workload

// Proc is one simulated core as seen by workload code: Work/Load/Store
// issue accounting, bulk LoadN/StoreN/StorePFSN helpers, and the
// execution-time breakdown.
type Proc = cpu.Proc

// StreamMem is the streaming model's first level; workload code obtains
// it with p.Mem().(*memsys.StreamMem) to reach the local store and DMA
// engine on STR machines.
type StreamMem = stream.Mem

// Addr is a simulated physical address; Region a named allocation from
// System.AddressSpace().
type (
	Addr   = mem.Addr
	Region = mem.Region
)

// Synchronization primitives for workloads, in simulated time.
type (
	Barrier   = syncprim.Barrier
	Lock      = syncprim.Lock
	TaskQueue = syncprim.TaskQueue
)

// NewBarrier returns a reusable barrier for n participants.
func NewBarrier(name string, n int) *Barrier { return syncprim.NewBarrier(name, n) }

// NewLock returns a FIFO mutex in simulated time.
func NewLock(name string) *Lock { return syncprim.NewLock(name) }

// NewTaskQueue returns a dynamic work-item dispenser over [0, limit).
func NewTaskQueue(name string, limit int) *TaskQueue { return syncprim.NewTaskQueue(name, limit) }

// Scale selects workload dataset sizes.
type Scale = workload.Scale

// Dataset scales: Small for quick runs, Default for benchmarks (same
// shape as the paper at lower cost), Paper for paper-scale inputs.
const (
	ScaleSmall   = workload.ScaleSmall
	ScaleDefault = workload.ScaleDefault
	ScalePaper   = workload.ScalePaper
)

// ParseModel converts a string ("cc", "str", "inc", case-insensitive)
// to a Model.
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(s) {
	case "cc":
		return CC, nil
	case "str":
		return STR, nil
	case "inc":
		return INC, nil
	}
	return CC, fmt.Errorf("memsys: unknown model %q (want cc, str or inc)", s)
}

// ParseScale converts a string ("small", "default", "paper") to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return ScaleSmall, nil
	case "default":
		return ScaleDefault, nil
	case "paper":
		return ScalePaper, nil
	}
	return ScaleSmall, fmt.Errorf("memsys: unknown scale %q (want small, default or paper)", s)
}

// DefaultConfig returns the paper's default machine for the given model
// and core count: 800 MHz cores, 1.6 GB/s memory channel, no prefetch.
func DefaultConfig(model Model, cores int) Config {
	return core.DefaultConfig(model, cores)
}

// NewSystem assembles a machine.
func NewSystem(cfg Config) *System { return core.New(cfg) }

// FieldError reports one invalid Config field from Config.Validate;
// Field names the Config field, so CLIs can map it back to a flag.
type FieldError = core.FieldError

// FieldErrors extracts every typed *FieldError from a Config.Validate
// result. Nil input yields nil.
func FieldErrors(err error) []*FieldError { return core.FieldErrors(err) }

// Workloads lists the registered workload names: the paper's eleven
// applications plus the pre-optimization and PFS variants.
func Workloads() []string { return workload.Names() }

// NewWorkload instantiates a registered workload at the given scale.
func NewWorkload(name string, scale Scale) (Workload, error) {
	f, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	return f(scale), nil
}

// Trace collects per-core stall/sync timeline spans; attach one via
// Config.Trace and export it with WriteChrome for chrome://tracing.
type Trace = trace.Collector

// NewTrace returns an empty span collector with the default cap.
func NewTrace() *Trace { return trace.New() }

// RunError is the interface of every typed simulation failure raised by
// the engine (deadlock, livelock, watchdog abort, task panic). Extract
// it from Run's error with errors.As to reach the EngineState snapshot —
// including the flight recorder's last scheduler events — taken at the
// moment of failure.
type RunError = sim.RunError

// EngineState is the diagnostic snapshot every RunError carries: last
// event time, per-task states, engine self-metrics, and (when a flight
// recorder was armed via Config.FlightRecorder) the recent scheduler
// events that led to the failure.
type EngineState = sim.EngineState

// FlightEvent is one recorded scheduler event in EngineState.Recent.
type FlightEvent = sim.FlightEvent

// Time is a simulated timestamp/duration in femtoseconds.
type Time = sim.Time

// ParseTime parses a simulated duration such as "1us", "2.5ns" or
// "800ps" into a Time.
func ParseTime(s string) (Time, error) { return sim.ParseDuration(s) }

// Probe samples the whole machine on a fixed simulated-time epoch,
// turning cumulative counters into time-resolved series; attach one via
// Config.Probe. Sampling never changes the simulated outcome.
type Probe = probe.Recorder

// NewProbe returns a recorder sampling every interval of simulated time.
func NewProbe(interval Time) *Probe { return probe.NewRecorder(interval) }

// TxnTrace records request-scoped causal traces of individual memory
// transactions: each sampled miss, DMA command or prefetch gets a tree
// of hops through the hierarchy (L1 → snoop/L2 → NoC → DRAM), plus an
// always-on worst-K exemplar reservoir per latency class. Attach one
// via Config.TxnTrace; like Trace and Probe it never changes a report.
type TxnTrace = txntrace.Tracer

// Txn is one recorded transaction tree; TxnHop one interval within it.
type (
	Txn    = txntrace.Txn
	TxnHop = txntrace.Hop
)

// TxnClass is a transaction latency class (read_miss, write_miss,
// l2_hit, dram_fill, dma_get, dma_put, prefetch).
type TxnClass = txntrace.Class

// NewTxnTrace returns a tracer with worst-K exemplar capture on and
// sampled capture off; set SampleEvery/Seed before the run for
// deterministic sampled capture.
func NewTxnTrace() *TxnTrace { return txntrace.New() }

// Run builds a machine, runs the named workload, verifies its output
// and returns the report. A verification failure returns the report
// alongside the error.
func Run(cfg Config, name string, scale Scale) (*Report, error) {
	w, err := NewWorkload(name, scale)
	if err != nil {
		return nil, err
	}
	return NewSystem(cfg).Run(w)
}

package coher

import (
	"testing"

	"repro/internal/mem"
)

func TestRegionTableCounts(t *testing.T) {
	var rt regionTable
	if got := rt.get(42); got != 0 {
		t.Fatalf("empty table get = %d", got)
	}
	if old, now := rt.add(1024, 1); old != 0 || now != 1 {
		t.Fatalf("add = (%d,%d), want (0,1)", old, now)
	}
	if old, now := rt.add(1024, 1); old != 1 || now != 2 {
		t.Fatalf("second add = (%d,%d), want (1,2)", old, now)
	}
	// Far above: table grows upward.
	rt.add(5000, 3)
	if got := rt.get(5000); got != 3 {
		t.Fatalf("get(5000) = %d, want 3", got)
	}
	// Below base: table grows downward.
	rt.add(12, 7)
	if got := rt.get(12); got != 7 {
		t.Fatalf("get(12) = %d, want 7", got)
	}
	if got := rt.get(1024); got != 2 {
		t.Fatalf("get(1024) after growth = %d, want 2", got)
	}
	// Counts clamp at zero, as the old map semantics deleted entries.
	if _, now := rt.add(1024, -5); now != 0 {
		t.Fatalf("clamped count = %d, want 0", now)
	}
}

func TestRegionShift(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint
	}{{1, 0}, {2, 1}, {1024, 10}, {1000, 10}, {1025, 11}}
	for _, c := range cases {
		if got := regionShift(c.n); got != c.want {
			t.Errorf("regionShift(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLineTableCounts(t *testing.T) {
	lt := newLineTable(8)
	a := mem.Addr(1 << 20)
	b := a + mem.LineSize
	lt.addOwner(a)
	lt.addSharer(b)
	lt.addSharer(b)
	got := map[mem.Addr][2]uint16{}
	lt.each(func(addr mem.Addr, owners, sharers uint16) {
		got[addr] = [2]uint16{owners, sharers}
	})
	if len(got) != 2 {
		t.Fatalf("%d lines recorded, want 2", len(got))
	}
	if got[a] != [2]uint16{1, 0} {
		t.Errorf("line a = %v, want {1 0}", got[a])
	}
	if got[b] != [2]uint16{0, 2} {
		t.Errorf("line b = %v, want {0 2}", got[b])
	}
}

// BenchmarkRegionFilter tracks the RegionScout hot path: the per-fill
// region bookkeeping plus the shared-region query every global broadcast
// consults (formerly one map probe per core).
func BenchmarkRegionFilter(b *testing.B) {
	d := &Domain{
		regShift: regionShift(1024),
		regions:  make([]regionTable, 16),
	}
	const span = 1 << 22 // 4 MB working set
	for i := 0; i < b.N; i++ {
		a := mem.Addr(1<<20 + (i*mem.LineSize)%span)
		core := i & 15
		d.regionTrack(core, a, 1)
		if d.regionShared(core, a) {
			// Typical outcome once regions warm up; keep the branch live.
			_ = a
		}
		d.regionTrack(core, a, -1)
	}
}

package coher

import (
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Mem is the per-core cpu.ProcMem of the cache-coherent model. L1 hits
// are charged locally without an engine round trip; misses, upgrades and
// prefetch issue synchronize with the engine so that shared-state
// mutations stay in timestamp order.
//
// Sync audit (engine fast path, PR 2): every Sync below is immediately
// followed by a read or write of cross-core state — the bus/L2 servers
// via readMiss/writeMiss/upgrade, peer L1s via invalidation, or this
// core's own L1 tags, which peers mutate through snoops and so count as
// shared. None can convert to SetTime/Advance. They stay because they
// are needed, not because they are cheap — though with the engine fast
// path a Sync by the globally minimal core no longer pays a handshake.
type Mem struct {
	d    *Domain
	core int
}

var _ cpu.ProcMem = (*Mem)(nil)

// Load implements cpu.ProcMem.
func (m *Mem) Load(p *cpu.Proc, a mem.Addr) sim.Time {
	c := m.d.l1s[m.core]
	ln, wasPf := c.AccessTagged(a, false)
	if ln != nil {
		done := p.Now()
		if ln.FillDone > done {
			done = ln.FillDone
			if wasPf {
				// The stall until FillDone is the tail of a prefetch still
				// in flight — ledger it as PrefetchShadow, not LoadStall.
				p.MarkPrefetchShadow()
			}
		}
		if wasPf {
			// Tagged trigger: top the stream up. This touches shared
			// resources, so sync first.
			p.Task().Sync()
			m.issuePrefetches(p, m.d.pref[m.core].Hit(a.Line()))
		}
		return done
	}
	p.Task().Sync()
	// The gather buffer may hold pending writes to this line; flush them
	// so the load observes a consistent memory image.
	if !m.d.cfg.WriteAllocate {
		m.d.gath[m.core].flushLine(m.d, m.core, p, a.Line())
	}
	done := m.d.readMiss(p.Now(), m.core, a, false)
	m.issuePrefetches(p, m.d.pref[m.core].Miss(a.Line()))
	return done
}

// issuePrefetches fires the prefetcher's proposals into the memory
// system without stalling the core.
func (m *Mem) issuePrefetches(p *cpu.Proc, addrs []mem.Addr) {
	c := m.d.l1s[m.core]
	for _, pa := range addrs {
		if c.Lookup(pa) != nil {
			continue // already resident or in flight
		}
		m.d.readMiss(p.Now(), m.core, pa, true)
	}
}

// Store implements cpu.ProcMem.
func (m *Mem) Store(p *cpu.Proc, a mem.Addr, nbytes uint64) sim.Time {
	c := m.d.l1s[m.core]
	ln := c.Access(a, true)
	if ln != nil {
		switch ln.State {
		case cache.Modified:
			ln.Dirty = true
			return maxTime(p.Now(), ln.FillDone)
		case cache.Exclusive:
			// E -> M is silent in MESI.
			ln.State = cache.Modified
			ln.Dirty = true
			return maxTime(p.Now(), ln.FillDone)
		case cache.Shared:
			p.Task().Sync()
			// The line may have been invalidated while we yielded.
			if ln2 := c.Lookup(a); ln2 != nil {
				done := m.d.upgrade(p.Now(), m.core, a)
				ln2.State = cache.Modified
				ln2.Dirty = true
				return done
			}
			return m.d.writeMiss(p.Now(), m.core, a)
		}
	}
	p.Task().Sync()
	if !m.d.cfg.WriteAllocate {
		return m.d.gath[m.core].add(m.d, m.core, p, a, nbytes)
	}
	return m.d.writeMiss(p.Now(), m.core, a)
}

// StorePFS implements cpu.ProcMem: allocate-without-refill stores.
func (m *Mem) StorePFS(p *cpu.Proc, a mem.Addr, nbytes uint64) sim.Time {
	c := m.d.l1s[m.core]
	ln := c.Access(a, true)
	if ln != nil {
		switch ln.State {
		case cache.Modified, cache.Exclusive:
			ln.State = cache.Modified
			ln.Dirty = true
			return maxTime(p.Now(), ln.FillDone)
		case cache.Shared:
			p.Task().Sync()
			if ln2 := c.Lookup(a); ln2 != nil {
				done := m.d.upgrade(p.Now(), m.core, a)
				ln2.State = cache.Modified
				ln2.Dirty = true
				return done
			}
			return m.d.pfsMiss(p.Now(), m.core, a)
		}
	}
	p.Task().Sync()
	return m.d.pfsMiss(p.Now(), m.core, a)
}

// PrefetchRange implements the hybrid "bulk transfer primitives for
// cache-based systems" the paper's Section 7 proposes: software issues
// one macroscopic prefetch for a whole range, and the lines stream into
// the L1 without the microscopic miss-pattern detection a hardware
// prefetcher needs. The core does not stall; subsequent demand loads
// wait only for their line's fill.
func (m *Mem) PrefetchRange(p *cpu.Proc, a mem.Addr, nbytes uint64) {
	if nbytes == 0 {
		return
	}
	p.Work(dmaSetupInstr) // programming the bulk transfer
	p.Task().Sync()
	c := m.d.l1s[m.core]
	end := a + mem.Addr(nbytes)
	for la := a.Line(); la < end; la += mem.LineSize {
		if c.Lookup(la) != nil {
			continue
		}
		m.d.readMiss(p.Now(), m.core, la, true)
	}
}

// dmaSetupInstr mirrors the streaming model's DMA programming cost.
const dmaSetupInstr = 8

// Flush implements cpu.ProcMem: drain the write-gather buffer.
func (m *Mem) Flush(p *cpu.Proc) sim.Time {
	if m.d.cfg.WriteAllocate {
		return p.Now()
	}
	p.Task().Sync()
	return m.d.gath[m.core].flushAll(m.d, m.core, p)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// gatherBufferEntries is the depth of the no-write-allocate model's
// write-gathering buffer ("it is necessary to group store data in write
// buffers before forwarding them to memory in order to avoid wasting
// bandwidth on narrow writes").
const gatherBufferEntries = 4

type gatherEntry struct {
	line  mem.Addr
	mask  uint32 // one bit per byte of the 32-byte line
	valid bool
}

// gatherBuffer coalesces store misses per line for the no-write-allocate
// policy. Entries are flushed to the L2 when displaced, when a full line
// has been gathered, or at Flush time.
type gatherBuffer struct {
	entries [gatherBufferEntries]gatherEntry
	next    int // FIFO replacement
}

func newGatherBuffer() *gatherBuffer { return &gatherBuffer{} }

// add records a store covering nbytes from a into the buffer, flushing
// a displaced entry if needed. It returns the store's completion time
// (acceptance).
func (g *gatherBuffer) add(d *Domain, core int, p *cpu.Proc, a mem.Addr, nbytes uint64) sim.Time {
	la := a.Line()
	if nbytes == 0 {
		nbytes = 4
	}
	var wordMask uint32
	for off := a.LineOffset(); off < a.LineOffset()+nbytes && off < mem.LineSize; off++ {
		wordMask |= 1 << off
	}
	for i := range g.entries {
		e := &g.entries[i]
		if e.valid && e.line == la {
			e.mask |= wordMask
			if e.mask == 0xFFFFFFFF {
				g.flushEntry(d, core, p, e)
			}
			return p.Now()
		}
	}
	// Allocate a new entry, displacing FIFO order.
	e := &g.entries[g.next]
	g.next = (g.next + 1) % gatherBufferEntries
	if e.valid {
		g.flushEntry(d, core, p, e)
	}
	*e = gatherEntry{line: la, mask: wordMask, valid: true}
	return p.Now()
}

// flushEntry sends a gathered entry to the L2 and invalidates other
// cached copies (coherence for non-allocating stores).
func (g *gatherBuffer) flushEntry(d *Domain, core int, p *cpu.Proc, e *gatherEntry) {
	if !e.valid {
		return
	}
	d.stats.GatherFlushes++
	cl := d.procs[core].Cluster()
	now := p.Now()
	t := d.net.BusControl(now, cl)
	t = d.invalidateOthers(t, core, e.line, false)
	nbytes := uint64(popcount(e.mask))
	full := e.mask == 0xFFFFFFFF
	t = d.net.BusData(t, cl, nbytes)
	d.unc.WriteLine(t, cl, e.line, nbytes, full)
	e.valid = false
}

func (g *gatherBuffer) flushLine(d *Domain, core int, p *cpu.Proc, la mem.Addr) {
	for i := range g.entries {
		if g.entries[i].valid && g.entries[i].line == la {
			g.flushEntry(d, core, p, &g.entries[i])
		}
	}
}

func (g *gatherBuffer) flushAll(d *Domain, core int, p *cpu.Proc) sim.Time {
	for i := range g.entries {
		g.flushEntry(d, core, p, &g.entries[i])
	}
	return p.Now()
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

package coher

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func filterConfig() Config {
	cfg := DefaultConfig()
	cfg.SnoopFilter = true
	return cfg
}

func TestFilterSkipsBroadcastsForPrivateData(t *testing.T) {
	h := newHarness(8, filterConfig())
	bodies := make([]func(*cpu.Proc), 8)
	for i := range bodies {
		base := mem.Addr(0x100000 * (i + 1)) // disjoint regions per core
		bodies[i] = func(p *cpu.Proc) {
			for k := 0; k < 64; k++ {
				p.Load(base + mem.Addr(k*32))
				p.Store(base + mem.Addr(0x40000+k*32))
			}
		}
	}
	h.run(bodies...)
	st := h.dom.Stats()
	if st.FilteredSnoops == 0 {
		t.Fatal("filter never fired on fully private data")
	}
	if st.GlobalBroadcasts > st.FilteredSnoops/4 {
		t.Errorf("broadcasts=%d vs filtered=%d; private data should mostly filter",
			st.GlobalBroadcasts, st.FilteredSnoops)
	}
}

func TestFilterStaysCorrectUnderSharing(t *testing.T) {
	// Random true sharing with the filter on: MESI invariants must hold
	// (the filter may only skip snoops that provably cannot matter).
	h := newHarness(4, filterConfig())
	bodies := make([]func(*cpu.Proc), 4)
	for i := range bodies {
		seed := int64(i + 99)
		bodies[i] = func(p *cpu.Proc) {
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 300; n++ {
				a := mem.Addr(0x20000 + rng.Intn(48)*32)
				if rng.Intn(2) == 0 {
					p.Load(a)
				} else {
					p.Store(a)
				}
				p.Work(uint64(rng.Intn(10)))
			}
		}
	}
	h.run(bodies...)
	if err := h.dom.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterEquivalentProtocolOutcome(t *testing.T) {
	// With and without the filter, the same single-producer/consumer
	// sequence must end in the same line states — the filter is a pure
	// traffic optimization.
	endStates := func(filter bool) [2]string {
		cfg := DefaultConfig()
		cfg.SnoopFilter = filter
		h := newHarness(2, cfg)
		h.run(
			func(p *cpu.Proc) {
				p.Store(0x7000)
				p.WaitUntil(30 * sim.Microsecond)
				p.Load(0x7000)
			},
			func(p *cpu.Proc) {
				p.WaitUntil(15 * sim.Microsecond)
				p.Load(0x7000)
			},
		)
		var out [2]string
		for i := 0; i < 2; i++ {
			if ln := h.dom.L1(i).Lookup(0x7000); ln != nil {
				out[i] = ln.State.String()
			} else {
				out[i] = "I"
			}
		}
		return out
	}
	if a, b := endStates(false), endStates(true); a != b {
		t.Errorf("states differ: plain=%v filtered=%v", a, b)
	}
}

func TestFilterReducesSnoopProbes(t *testing.T) {
	probes := func(filter bool) uint64 {
		cfg := DefaultConfig()
		cfg.SnoopFilter = filter
		h := newHarness(8, cfg)
		bodies := make([]func(*cpu.Proc), 8)
		for i := range bodies {
			base := mem.Addr(0x400000 * (i + 1))
			bodies[i] = func(p *cpu.Proc) {
				for k := 0; k < 128; k++ {
					p.Load(base + mem.Addr(k*32))
				}
			}
		}
		h.run(bodies...)
		var total uint64
		for i := 0; i < 8; i++ {
			total += h.dom.L1(i).Stats().SnoopLookups
		}
		return total
	}
	plain, filtered := probes(false), probes(true)
	if filtered >= plain/2 {
		t.Errorf("filter left %d of %d snoop probes", filtered, plain)
	}
}

package coher

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestPrefetchRangeHidesStreamLatency: the Section 7 hybrid bulk
// prefetch should remove most demand load stalls on a stream, like the
// streaming model's macroscopic DMA prefetching does.
func TestPrefetchRangeHidesStreamLatency(t *testing.T) {
	run := func(bulk bool) sim.Time {
		h := newHarness(1, DefaultConfig())
		var stall sim.Time
		h.run(func(p *cpu.Proc) {
			m := p.Mem().(*Mem)
			const block = 2048 // bytes
			for b := 0; b < 16; b++ {
				base := mem.Addr(0x100000 + b*block)
				if bulk && b+1 < 16 {
					m.PrefetchRange(p, base+block, block) // next block ahead
				}
				if bulk && b == 0 {
					// First block was not covered; prefetch it too and
					// give it a head start with the setup work below.
					m.PrefetchRange(p, base, block)
				}
				p.LoadN(base, 4, block/4)
				p.Work(2000)
			}
			stall = p.Breakdown().LoadStall
		})
		return stall
	}
	plain := run(false)
	bulk := run(true)
	if bulk >= plain/2 {
		t.Errorf("bulk prefetch stall %v, want < half of %v", bulk, plain)
	}
}

// TestPrefetchRangeSkipsResidentLines: re-prefetching a resident range
// must not generate memory traffic.
func TestPrefetchRangeSkipsResidentLines(t *testing.T) {
	h := newHarness(1, DefaultConfig())
	h.run(func(p *cpu.Proc) {
		m := p.Mem().(*Mem)
		p.LoadN(0x2000, 4, 256) // bring 1 KB in
		before := h.dom.Stats().PrefetchFills
		m.PrefetchRange(p, 0x2000, 1024)
		if got := h.dom.Stats().PrefetchFills - before; got != 0 {
			t.Errorf("prefetched %d resident lines", got)
		}
	})
}

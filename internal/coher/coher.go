// Package coher implements the cache-coherent memory model (Section 3.2):
// per-core 32 KB 2-way write-back/write-allocate L1 data caches kept
// coherent with a MESI write-invalidate protocol over the hierarchical
// interconnect. Requests are first broadcast on the requester's cluster
// bus; if they cannot be satisfied within the cluster (or are upgrades),
// they are broadcast to all other clusters and the shared L2. Snoop
// probes occupy the target D-cache for a cycle and may stall its core.
//
// The package also provides the per-core cpu.ProcMem implementation
// (Mem), including the optional tagged hardware prefetcher and the
// "Prepare For Store" / no-write-allocate store policies of Section 5.5.
package coher

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/ledger"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/txntrace"
	"repro/internal/uncore"
)

// Config configures the coherent L1 level.
type Config struct {
	L1Size  uint64
	L1Assoc int
	// PrefetchDepth enables the tagged hardware stream prefetcher when
	// positive ("runs a configurable number of cache lines ahead").
	PrefetchDepth int
	// WriteAllocate selects the L1 write policy. The paper's default is
	// write-allocate; false enables the full no-write-allocate policy
	// with a write-gathering buffer (the Section 5.5 footnote).
	WriteAllocate bool
	// SnoopFilter enables a RegionScout-style coarse-grain filter (the
	// paper's reference [35]): requests to regions no other cache holds
	// skip the global broadcast and remote snoop probes entirely.
	SnoopFilter bool
	// RegionBytes is the filter granularity (default 1 KB).
	RegionBytes uint64
}

// DefaultConfig is the paper's Table 2 cache-coherent configuration.
func DefaultConfig() Config {
	return Config{L1Size: 32 * 1024, L1Assoc: 2, WriteAllocate: true}
}

// Stats counts protocol activity across the domain.
type Stats struct {
	ReadMisses       uint64
	WriteMisses      uint64
	Upgrades         uint64
	PFSMisses        uint64 // PFS stores that allocated without refill
	C2CCluster       uint64 // misses served by a cache in the same cluster
	C2CRemote        uint64 // misses served by a remote cluster's cache
	GlobalBroadcasts uint64
	Invalidations    uint64 // copies killed by upgrades/write misses
	L1WritebacksL2   uint64 // dirty L1 victims written to the L2
	PrefetchFills    uint64
	PrefetchUseless  uint64 // prefetched lines evicted before any demand
	GatherFlushes    uint64 // write-gather buffer lines sent to the L2
	FilteredSnoops   uint64 // broadcasts avoided by the region filter

	// Latency accounting for the average demand read-miss and write-miss
	// service times (diagnostics and the EXPERIMENTS.md tables).
	ReadMissLatency  sim.Time
	WriteMissLatency sim.Time

	// DebugStage accumulates per-stage latency of the write-miss path
	// (bus control, remote snoop, L2/DRAM fetch, final bus data).
	DebugStage [4]sim.Time
}

// Snapshot emits the headline protocol counters in a fixed order (probe
// layer); the per-epoch C2C deltas are the communication-phase series.
// Latency accumulators and DebugStage stay out: they are diagnostics,
// not time series.
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("read_misses", float64(s.ReadMisses))
	put("write_misses", float64(s.WriteMisses))
	put("upgrades", float64(s.Upgrades))
	put("c2c_cluster", float64(s.C2CCluster))
	put("c2c_remote", float64(s.C2CRemote))
	put("global_broadcasts", float64(s.GlobalBroadcasts))
	put("invalidations", float64(s.Invalidations))
	put("l1_writebacks_l2", float64(s.L1WritebacksL2))
	put("prefetch_fills", float64(s.PrefetchFills))
	put("prefetch_useless", float64(s.PrefetchUseless))
	put("filtered_snoops", float64(s.FilteredSnoops))
}

// AvgReadMissLatency returns the mean demand read-miss service time.
func (s Stats) AvgReadMissLatency() sim.Time {
	if s.ReadMisses == 0 {
		return 0
	}
	return s.ReadMissLatency / sim.Time(s.ReadMisses)
}

// AvgWriteMissLatency returns the mean write-miss service time.
func (s Stats) AvgWriteMissLatency() sim.Time {
	if s.WriteMisses == 0 {
		return 0
	}
	return s.WriteMissLatency / sim.Time(s.WriteMisses)
}

// Domain is the set of coherent L1 caches over one uncore.
type Domain struct {
	cfg   Config
	net   *noc.Network
	unc   *uncore.Uncore
	procs []*cpu.Proc
	l1s   []*cache.Cache
	pref  []*prefetch.Prefetcher
	gath  []*gatherBuffer
	stats Stats
	lat   *ledger.Latency  // nil = latency histograms disabled
	txn   *txntrace.Tracer // nil = transaction tracing disabled
	// The RegionScout filter state, array-backed (see table.go):
	// regions[i] counts core i's resident lines per region, and
	// regionOwners counts, per region, how many cores hold at least one
	// line there — making the shared-region query O(1) instead of a map
	// probe per core. regions is nil when the filter is disabled.
	regions      []regionTable
	regionOwners regionTable
	regShift     uint // log2(RegionBytes), rounded up to a power of two
}

// regionIndex returns the filter-region index of an address.
func (d *Domain) regionIndex(a mem.Addr) uint64 {
	return uint64(a) >> d.regShift
}

// regionTrack updates core i's region population by delta lines,
// keeping the per-region owner count in step.
func (d *Domain) regionTrack(i int, a mem.Addr, delta int32) {
	if d.regions == nil {
		return
	}
	r := d.regionIndex(a)
	old, now := d.regions[i].add(r, delta)
	switch {
	case old == 0 && now > 0:
		d.regionOwners.add(r, 1)
	case old > 0 && now == 0:
		d.regionOwners.add(r, -1)
	}
}

// regionShared reports whether any core other than self holds lines in
// a's region. With the filter disabled it is conservatively true.
func (d *Domain) regionShared(self int, a mem.Addr) bool {
	if d.regions == nil {
		return true
	}
	r := d.regionIndex(a)
	holders := d.regionOwners.get(r)
	if d.regions[self].get(r) > 0 {
		return holders > 1
	}
	return holders > 0
}

// NewDomain builds the coherent L1 level for the given cores.
func NewDomain(cfg Config, unc *uncore.Uncore, procs []*cpu.Proc) *Domain {
	if cfg.RegionBytes == 0 {
		cfg.RegionBytes = 1024
	}
	d := &Domain{cfg: cfg, net: unc.Network(), unc: unc, procs: procs}
	for i := range procs {
		d.l1s = append(d.l1s, cache.New(cache.Config{
			Name:  fmt.Sprintf("l1d%d", i),
			Size:  cfg.L1Size,
			Assoc: cfg.L1Assoc,
		}))
		d.pref = append(d.pref, prefetch.New(cfg.PrefetchDepth))
		d.gath = append(d.gath, newGatherBuffer())
	}
	if cfg.SnoopFilter {
		d.regShift = regionShift(cfg.RegionBytes)
		d.regions = make([]regionTable, len(procs))
	}
	return d
}

// Mem returns the cpu.ProcMem for core i.
func (d *Domain) Mem(i int) *Mem { return &Mem{d: d, core: i} }

// L1 returns core i's data cache (stats, tests).
func (d *Domain) L1(i int) *cache.Cache { return d.l1s[i] }

// Prefetcher returns core i's prefetcher.
func (d *Domain) Prefetcher(i int) *prefetch.Prefetcher { return d.pref[i] }

// Stats returns a snapshot of the protocol counters.
func (d *Domain) Stats() Stats { return d.stats }

// SetLatency attaches the run's service-time histograms (nil disables
// recording).
func (d *Domain) SetLatency(l *ledger.Latency) { d.lat = l }

// SetTxnTrace attaches the run's transaction tracer (nil disables it).
func (d *Domain) SetTxnTrace(t *txntrace.Tracer) { d.txn = t }

// tag annotates the active transaction with an outcome (no-op when
// tracing is off or nothing is active).
func (d *Domain) tag(s string) {
	if d.txn != nil {
		d.txn.Active().AddTag(s)
	}
}

// Uncore returns the shared hierarchy.
func (d *Domain) Uncore() *uncore.Uncore { return d.unc }

// snoopCluster probes every other L1 in cluster cl for line a, charging
// snoop-probe occupancy to their cores. It returns the first owner found.
func (d *Domain) snoopCluster(cl int, self int, a mem.Addr) (owner int, ln *cache.Line) {
	owner = -1
	lo, hi := d.clusterRange(cl)
	for i := lo; i < hi; i++ {
		if i == self || i >= len(d.l1s) {
			continue
		}
		d.procs[i].AddSnoopProbe()
		if l := d.l1s[i].Snoop(a); l != nil && owner == -1 {
			owner, ln = i, l
		}
	}
	return owner, ln
}

func (d *Domain) clusterRange(cl int) (lo, hi int) {
	per := d.net.Config().CoresPerClust
	return cl * per, (cl + 1) * per
}

// snoopRemote broadcasts to every cluster other than cl, probing all
// their caches. It returns the owning core (-1 if none) and the time the
// last snoop response is available at the global crossbar.
func (d *Domain) snoopRemote(at sim.Time, cl int, a mem.Addr) (owner int, ln *cache.Line, done sim.Time) {
	d.stats.GlobalBroadcasts++
	owner = -1
	done = at
	t := d.net.ToGlobal(at, cl, ctrlBytes)
	for oc := 0; oc < d.net.Clusters(); oc++ {
		if oc == cl {
			continue
		}
		tc := d.net.FromGlobal(t, oc, ctrlBytes)
		tc = d.net.BusControl(tc, oc)
		lo, hi := d.clusterRange(oc)
		for i := lo; i < hi && i < len(d.l1s); i++ {
			d.procs[i].AddSnoopProbe()
			if l := d.l1s[i].Snoop(a); l != nil && owner == -1 {
				owner, ln = i, l
			}
		}
		if tc > done {
			done = tc
		}
	}
	return owner, ln, done
}

const ctrlBytes = 8

// insertL1 installs a line into core i's L1, handling the displaced
// victim (dirty victims are written back to the L2 over the local bus;
// the core does not wait for the writeback).
func (d *Domain) insertL1(at sim.Time, i int, a mem.Addr, st cache.State, fill sim.Time) *cache.Line {
	ln, ev := d.l1s[i].Insert(a, st, fill)
	d.regionTrack(i, a, 1)
	if ev.Valid {
		d.regionTrack(i, ev.Addr, -1)
		if ev.Prefetched {
			d.stats.PrefetchUseless++
		}
		if ev.Dirty {
			d.stats.L1WritebacksL2++
			cl := d.procs[i].Cluster()
			t := d.net.BusData(at, cl, mem.LineSize)
			d.unc.WriteLine(t, cl, ev.Addr, mem.LineSize, true)
		}
	}
	return ln
}

// readMiss services a demand read miss (or a prefetch when pf is set)
// for core i. It returns the time the line is filled.
func (d *Domain) readMiss(at sim.Time, i int, a mem.Addr, pf bool) sim.Time {
	if d.txn != nil {
		class := txntrace.ReadMiss
		if pf {
			class = txntrace.Prefetch
		}
		d.txn.Begin(class, i, uint64(a.Line()), at)
	}
	done := d.readMiss1(at, i, a, pf)
	if !pf {
		d.stats.ReadMissLatency += done - at
		if d.lat != nil {
			d.lat.ReadMiss.Record(uint64(done - at))
		}
	}
	d.txn.End(done)
	return done
}

func (d *Domain) readMiss1(at sim.Time, i int, a mem.Addr, pf bool) sim.Time {
	a = a.Line()
	if !pf {
		d.stats.ReadMisses++
	} else {
		d.stats.PrefetchFills++
	}
	cl := d.procs[i].Cluster()
	t := d.net.BusControl(at, cl)

	// Step 1: snoop within the cluster.
	if owner, oln := d.snoopCluster(cl, i, a); owner != -1 {
		d.stats.C2CCluster++
		if d.txn != nil {
			d.tag("src=c2c_cluster")
			d.tag("mesi=" + oln.State.String() + "->S")
		}
		t = d.net.BusData(t, cl, mem.LineSize)
		if oln.State == cache.Modified && oln.Dirty {
			// Owner supplies dirty data and writes it back to the L2 so
			// both copies can be Shared and clean.
			d.unc.WriteLine(t, cl, a, mem.LineSize, true)
		}
		oln.State = cache.Shared
		oln.Dirty = false
		ln := d.insertL1(t, i, a, cache.Shared, t)
		ln.Prefetched = pf
		return t
	}

	// Step 2: broadcast to the other clusters and the L2 — unless the
	// region filter proves no cache can hold the line.
	var owner int
	var oln *cache.Line
	tSnoop := t
	if d.cfg.SnoopFilter && !d.regionShared(i, a) {
		d.stats.FilteredSnoops++
		d.tag("snoop=filtered")
		owner = -1
	} else {
		owner, oln, tSnoop = d.snoopRemote(t, cl, a)
	}
	if owner != -1 && oln.State == cache.Modified {
		d.stats.C2CRemote++
		d.tag("src=owner_remote_m")
		ocl := d.procs[owner].Cluster()
		td := d.net.BusData(tSnoop, ocl, mem.LineSize)
		td = d.net.ToGlobal(td, ocl, mem.LineSize)
		if oln.Dirty {
			d.unc.WriteLine(td, ocl, a, mem.LineSize, true)
		}
		td = d.net.FromGlobal(td, cl, mem.LineSize)
		td = d.net.BusData(td, cl, mem.LineSize)
		oln.State = cache.Shared
		oln.Dirty = false
		ln := d.insertL1(td, i, a, cache.Shared, td)
		ln.Prefetched = pf
		return td
	}

	// Step 3: the L2/DRAM supplies the data. Remote clean owners are
	// downgraded to Shared.
	newState := cache.Exclusive
	if owner != -1 {
		oln.State = cache.Shared
		newState = cache.Shared
	}
	if d.txn != nil {
		d.tag("src=l2")
		d.tag("mesi=I->" + newState.String())
	}
	done, _ := d.unc.ReadLine(t, cl, a)
	if done < tSnoop {
		done = tSnoop
	}
	done = d.net.BusData(done, cl, mem.LineSize)
	ln := d.insertL1(done, i, a, newState, done)
	ln.Prefetched = pf
	return done
}

// invalidateOthers kills every other copy of line a. withinOnly limits
// the broadcast to the requester's cluster (legal when the requester saw
// a cluster-local E/M owner, which MESI guarantees is the only copy).
// It returns the time ownership is granted.
func (d *Domain) invalidateOthers(at sim.Time, i int, a mem.Addr, withinOnly bool) sim.Time {
	cl := d.procs[i].Cluster()
	lo, hi := d.clusterRange(cl)
	for c := lo; c < hi && c < len(d.l1s); c++ {
		if c == i {
			continue
		}
		d.procs[c].AddSnoopProbe()
		d.invalidate(c, a)
	}
	if withinOnly {
		return at
	}
	_, _, tSnoop := d.snoopRemote(at, cl, a)
	for c := range d.l1s {
		clo, chi := d.clusterRange(cl)
		if c >= clo && c < chi {
			continue // already done above
		}
		d.invalidate(c, a)
	}
	return tSnoop
}

// writeMiss services a store miss for core i with the write-allocate
// policy: a read-for-ownership that fetches the line (the "superfluous
// refill" for output-only data) and invalidates every other copy.
func (d *Domain) writeMiss(at sim.Time, i int, a mem.Addr) sim.Time {
	d.txn.Begin(txntrace.WriteMiss, i, uint64(a.Line()), at)
	done := d.writeMiss1(at, i, a)
	d.stats.WriteMissLatency += done - at
	if d.lat != nil {
		d.lat.WriteMiss.Record(uint64(done - at))
	}
	d.txn.End(done)
	return done
}

func (d *Domain) writeMiss1(at sim.Time, i int, a mem.Addr) sim.Time {
	a = a.Line()
	d.stats.WriteMisses++
	cl := d.procs[i].Cluster()
	t := d.net.BusControl(at, cl)

	// Cluster-local M/E owner: take the data and ownership locally.
	if owner, oln := d.snoopCluster(cl, i, a); owner != -1 {
		if d.txn != nil {
			d.tag("src=c2c_cluster")
			d.tag("mesi=" + oln.State.String() + "->M")
		}
		exclusiveOwner := oln.State == cache.Modified || oln.State == cache.Exclusive
		t = d.net.BusData(t, cl, mem.LineSize)
		dirty := oln.Dirty
		d.invalidate(owner, a)
		if !exclusiveOwner {
			// Shared: other copies may exist anywhere; broadcast.
			t2 := d.invalidateOthers(t, i, a, false)
			if t2 > t {
				t = t2
			}
		}
		_ = dirty // ownership moves with the data; the store dirties it
		ln := d.insertL1(t, i, a, cache.Modified, t)
		ln.Dirty = true
		return t
	}

	// No cluster owner: global broadcast invalidation + fetch — unless
	// the region filter proves no cache can hold the line.
	var owner int
	var oln *cache.Line
	tSnoop := t
	if d.cfg.SnoopFilter && !d.regionShared(i, a) {
		d.stats.FilteredSnoops++
		d.tag("snoop=filtered")
		owner = -1
	} else {
		owner, oln, tSnoop = d.snoopRemote(t, cl, a)
	}
	if owner != -1 && oln.State == cache.Modified {
		// Remote dirty owner transfers the line with ownership.
		d.tag("src=owner_remote_m")
		ocl := d.procs[owner].Cluster()
		td := d.net.BusData(tSnoop, ocl, mem.LineSize)
		td = d.net.ToGlobal(td, ocl, mem.LineSize)
		td = d.net.FromGlobal(td, cl, mem.LineSize)
		td = d.net.BusData(td, cl, mem.LineSize)
		d.invalidate(owner, a)
		d.killRemaining(a, i)
		ln := d.insertL1(td, i, a, cache.Modified, td)
		ln.Dirty = true
		return td
	}
	d.killRemaining(a, i)
	if d.txn != nil {
		d.tag("src=l2")
		d.tag("mesi=I->M")
	}
	d.stats.DebugStage[0] += t - at
	d.stats.DebugStage[1] += tSnoop - t
	done, _ := d.unc.ReadLine(t, cl, a)
	d.stats.DebugStage[2] += done - t
	if done < tSnoop {
		done = tSnoop
	}
	d2 := d.net.BusData(done, cl, mem.LineSize)
	d.stats.DebugStage[3] += d2 - done
	done = d2
	ln := d.insertL1(done, i, a, cache.Modified, done)
	ln.Dirty = true
	return done
}

// killRemaining invalidates stray copies after a global broadcast has
// already been charged.
func (d *Domain) killRemaining(a mem.Addr, except int) {
	for c := range d.l1s {
		if c == except {
			continue
		}
		d.invalidate(c, a)
	}
}

// invalidate removes core c's copy of line a, keeping the region filter
// and statistics consistent.
func (d *Domain) invalidate(c int, a mem.Addr) (present bool) {
	present, _ = d.l1s[c].Invalidate(a)
	if present {
		d.stats.Invalidations++
		d.regionTrack(c, a.Line(), -1)
	}
	return present
}

// upgrade services a store hit on a Shared line: broadcast invalidation
// without data movement.
func (d *Domain) upgrade(at sim.Time, i int, a mem.Addr) sim.Time {
	a = a.Line()
	d.stats.Upgrades++
	cl := d.procs[i].Cluster()
	t := d.net.BusControl(at, cl)
	lo, hi := d.clusterRange(cl)
	for c := lo; c < hi && c < len(d.l1s); c++ {
		if c == i {
			continue
		}
		d.procs[c].AddSnoopProbe()
		d.invalidate(c, a)
	}
	// Upgrades always broadcast beyond the cluster ("the request cannot
	// be satisfied within one cluster (e.g., upgrade request)") — unless
	// the region filter proves no remote copies can exist.
	if d.cfg.SnoopFilter && !d.regionShared(i, a) {
		d.stats.FilteredSnoops++
		return t
	}
	t2 := d.invalidateOthers(t, i, a, false)
	if t2 > t {
		t = t2
	}
	return t
}

// pfsMiss services a PFS store to an absent line: ownership without data.
func (d *Domain) pfsMiss(at sim.Time, i int, a mem.Addr) sim.Time {
	a = a.Line()
	d.stats.PFSMisses++
	cl := d.procs[i].Cluster()
	t := d.net.BusControl(at, cl)
	t2 := d.invalidateOthers(t, i, a, false)
	if t2 > t {
		t = t2
	}
	ln, ev := d.l1s[i].InsertPFS(a, t)
	_ = ln
	d.regionTrack(i, a, 1)
	if ev.Valid {
		d.regionTrack(i, ev.Addr, -1)
		if ev.Prefetched {
			d.stats.PrefetchUseless++
		}
		if ev.Dirty {
			d.stats.L1WritebacksL2++
			wt := d.net.BusData(t, cl, mem.LineSize)
			d.unc.WriteLine(wt, cl, ev.Addr, mem.LineSize, true)
		}
	}
	return t
}

// CheckInvariants verifies MESI invariants across all L1s: a line that is
// Modified or Exclusive anywhere has exactly one copy. Tests call it
// after workloads run.
func (d *Domain) CheckInvariants() error {
	total := 0
	for _, c := range d.l1s {
		total += c.Occupancy()
	}
	lines := newLineTable(total)
	for _, c := range d.l1s {
		for _, a := range c.Lines() {
			switch c.Lookup(a).State {
			case cache.Modified, cache.Exclusive:
				lines.addOwner(a)
			case cache.Shared:
				lines.addSharer(a)
			}
		}
	}
	var err error
	lines.each(func(a mem.Addr, owners, sharers uint16) {
		if err != nil {
			return
		}
		if owners > 1 {
			err = fmt.Errorf("line %v has %d exclusive owners", a, owners)
		} else if owners == 1 && sharers > 0 {
			err = fmt.Errorf("line %v is exclusive with %d sharers", a, sharers)
		}
	})
	return err
}

package coher

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/uncore"
)

// harness wires an engine, network, uncore and n coherent cores.
type harness struct {
	eng   *sim.Engine
	dom   *Domain
	procs []*cpu.Proc
}

func newHarness(n int, cfg Config) *harness {
	h := &harness{eng: sim.NewEngine()}
	net := noc.New(noc.DefaultConfig(n))
	unc := uncore.New(uncore.DefaultConfig(), net)
	for i := 0; i < n; i++ {
		h.procs = append(h.procs, cpu.New(i, net.ClusterOf(i), cpu.Config{Clock: sim.MHz(800)}))
	}
	h.dom = NewDomain(cfg, unc, h.procs)
	return h
}

// run executes one body per core and drives the simulation to completion.
func (h *harness) run(bodies ...func(p *cpu.Proc)) {
	for i, body := range bodies {
		i, body := i, body
		h.eng.Spawn("core", 0, func(task *sim.Task) {
			p := h.procs[i]
			p.Bind(task, h.dom.Mem(i))
			body(p)
			p.Finish()
		})
	}
	h.eng.Run()
}

func TestColdMissThenHit(t *testing.T) {
	h := newHarness(1, DefaultConfig())
	var missStall, hitStall sim.Time
	h.run(func(p *cpu.Proc) {
		p.Load(0x1000)
		missStall = p.Breakdown().LoadStall
		p.Load(0x1008) // same line: hit
		hitStall = p.Breakdown().LoadStall - missStall
	})
	if missStall < 70*sim.Nanosecond {
		t.Errorf("cold miss stall %v below DRAM latency", missStall)
	}
	if hitStall != 0 {
		t.Errorf("L1 hit stalled %v", hitStall)
	}
	if mr := h.dom.L1(0).Stats().MissRate(); mr != 0.5 {
		t.Errorf("miss rate %v, want 0.5", mr)
	}
}

func TestL2HitFasterThanDRAM(t *testing.T) {
	h := newHarness(1, DefaultConfig())
	var cold, warm sim.Time
	h.run(func(p *cpu.Proc) {
		p.Load(0x1000)
		cold = p.Breakdown().LoadStall
		// Evict the line from L1 by filling its set (2-way, 512 sets:
		// same set every 16 KB), then reload: it should hit in L2.
		p.Load(0x1000 + 16*1024)
		p.Load(0x1000 + 2*16*1024)
		before := p.Breakdown().LoadStall
		p.Load(0x1000)
		warm = p.Breakdown().LoadStall - before
	})
	if warm >= cold {
		t.Errorf("L2 hit stall %v not faster than DRAM miss %v", warm, cold)
	}
	if warm == 0 {
		t.Error("reload after eviction should not be an L1 hit")
	}
}

func TestClusterCacheToCacheTransfer(t *testing.T) {
	h := newHarness(2, DefaultConfig())
	h.run(
		func(p *cpu.Proc) {
			p.Store(0x2000) // owns line M at t~0
		},
		func(p *cpu.Proc) {
			// Timestamp ordering guarantees core 0's store (t~0) executes
			// before this load syncs at 10us.
			p.WaitUntil(10 * sim.Microsecond)
			p.Load(0x2000)
		},
	)
	if got := h.dom.Stats().C2CCluster; got != 1 {
		t.Errorf("cluster c2c transfers = %d, want 1", got)
	}
	// Both copies must now be Shared.
	for i := 0; i < 2; i++ {
		ln := h.dom.L1(i).Lookup(0x2000)
		if ln == nil || ln.State != cache.Shared {
			t.Errorf("core %d line state = %v, want S", i, ln)
		}
	}
	if err := h.dom.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoteDirtyTransfer(t *testing.T) {
	h := newHarness(8, DefaultConfig()) // cores 0-3 cluster 0, 4-7 cluster 1
	bodies := make([]func(*cpu.Proc), 8)
	bodies[0] = func(p *cpu.Proc) {
		p.Store(0x3000)
	}
	bodies[4] = func(p *cpu.Proc) {
		p.WaitUntil(10 * sim.Microsecond)
		p.Load(0x3000)
	}
	for i := range bodies {
		if bodies[i] == nil {
			bodies[i] = func(p *cpu.Proc) {}
		}
	}
	h.run(bodies...)
	if got := h.dom.Stats().C2CRemote; got != 1 {
		t.Errorf("remote c2c transfers = %d, want 1", got)
	}
	if err := h.dom.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	h := newHarness(2, DefaultConfig())
	h.run(
		func(p *cpu.Proc) {
			p.Load(0x4000) // t~0
			p.WaitUntil(20 * sim.Microsecond)
			p.Store(0x4000) // upgrade: invalidate the other copy
		},
		func(p *cpu.Proc) {
			p.WaitUntil(10 * sim.Microsecond)
			p.Load(0x4000) // second sharer
		},
	)
	if h.dom.L1(1).Lookup(0x4000) != nil {
		t.Error("sharer copy not invalidated by upgrade")
	}
	ln := h.dom.L1(0).Lookup(0x4000)
	if ln == nil || ln.State != cache.Modified {
		t.Errorf("writer line = %+v, want M", ln)
	}
	if h.dom.Stats().Upgrades == 0 {
		t.Error("no upgrade recorded")
	}
	if err := h.dom.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriteAllocateRefillsFromDRAM(t *testing.T) {
	h := newHarness(1, DefaultConfig())
	h.run(func(p *cpu.Proc) {
		for i := 0; i < 64; i++ {
			p.Store(mem.Addr(0x8000 + i*32))
		}
	})
	// Every store miss triggered a superfluous refill.
	rd := h.dom.Uncore().DRAM().Stats().ReadBytes
	if rd != 64*32 {
		t.Errorf("DRAM read bytes = %d, want %d (write-allocate refills)", rd, 64*32)
	}
}

func TestPFSAvoidsRefills(t *testing.T) {
	h := newHarness(1, DefaultConfig())
	h.run(func(p *cpu.Proc) {
		for i := 0; i < 64; i++ {
			p.StorePFS(mem.Addr(0x8000 + i*32))
		}
	})
	if rd := h.dom.Uncore().DRAM().Stats().ReadBytes; rd != 0 {
		t.Errorf("DRAM read bytes = %d, want 0 (PFS avoids refills)", rd)
	}
	if got := h.dom.Stats().PFSMisses; got != 64 {
		t.Errorf("PFS misses = %d, want 64", got)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := newHarness(1, DefaultConfig())
	h.run(func(p *cpu.Proc) {
		// Three lines mapping to the same 2-way set: 16 KB apart.
		p.Store(0x1000)
		p.Store(0x1000 + 16*1024)
		p.Store(0x1000 + 32*1024)
	})
	if got := h.dom.Stats().L1WritebacksL2; got != 1 {
		t.Errorf("L1 writebacks = %d, want 1", got)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	run := func(depth int) sim.Time {
		h := newHarness(1, Config{L1Size: 32 * 1024, L1Assoc: 2, WriteAllocate: true, PrefetchDepth: depth})
		var stall sim.Time
		h.run(func(p *cpu.Proc) {
			// Stream through 512 lines with compute between lines.
			for i := 0; i < 512; i++ {
				p.LoadN(mem.Addr(0x100000+i*32), 4, 8)
				p.Work(60)
			}
			stall = p.Breakdown().LoadStall
		})
		return stall
	}
	noPf := run(0)
	pf4 := run(4)
	if pf4 >= noPf/2 {
		t.Errorf("prefetch depth 4 stall %v, want < half of %v", pf4, noPf)
	}
}

func TestSnoopProbesChargeStalls(t *testing.T) {
	h := newHarness(2, DefaultConfig())
	h.run(
		func(p *cpu.Proc) {
			for i := 0; i < 256; i++ {
				p.Load(mem.Addr(0x10000 + i*32)) // misses snoop core 1
			}
		},
		func(p *cpu.Proc) {
			for i := 0; i < 256; i++ {
				p.Load(mem.Addr(0x40000 + i*32)) // periodic misses interleave with core 0
				for j := 0; j < 8; j++ {
					p.Load(0x9000) // hits on its own cache collide with snoops
				}
			}
		},
	)
	if got := h.procs[1].Stats().SnoopStalls; got == 0 {
		t.Error("snooped core recorded no snoop stalls")
	}
}

func TestNoWriteAllocateGathersWrites(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteAllocate = false
	h := newHarness(1, cfg)
	h.run(func(p *cpu.Proc) {
		// Stream full-line writes: 8 words per line.
		for i := 0; i < 64; i++ {
			for w := 0; w < 8; w++ {
				p.Store(mem.Addr(0xA000 + i*32 + w*4))
			}
		}
	})
	if rd := h.dom.Uncore().DRAM().Stats().ReadBytes; rd != 0 {
		t.Errorf("DRAM reads = %d, want 0 under no-write-allocate", rd)
	}
	if got := h.dom.Stats().GatherFlushes; got != 64 {
		t.Errorf("gather flushes = %d, want 64", got)
	}
	// The L1 must not have allocated the store lines.
	if occ := h.dom.L1(0).Occupancy(); occ != 0 {
		t.Errorf("L1 holds %d lines, want 0", occ)
	}
}

func TestMESIInvariantsUnderRandomSharing(t *testing.T) {
	h := newHarness(4, DefaultConfig())
	bodies := make([]func(*cpu.Proc), 4)
	for i := range bodies {
		seed := int64(i + 1)
		bodies[i] = func(p *cpu.Proc) {
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 400; n++ {
				a := mem.Addr(0x20000 + rng.Intn(64)*32)
				if rng.Intn(2) == 0 {
					p.Load(a)
				} else {
					p.Store(a)
				}
				p.Work(uint64(rng.Intn(20)))
			}
		}
	}
	h.run(bodies...)
	if err := h.dom.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSharingLeavesAllShared(t *testing.T) {
	h := newHarness(4, DefaultConfig())
	bodies := make([]func(*cpu.Proc), 4)
	for i := range bodies {
		start := sim.Time(i) * sim.Microsecond
		bodies[i] = func(p *cpu.Proc) {
			p.WaitUntil(start)
			for n := 0; n < 16; n++ {
				p.Load(mem.Addr(0x30000 + n*32))
			}
		}
	}
	h.run(bodies...)
	// After all four cores read the same lines, later readers' copies are
	// Shared and invariants hold.
	shared := 0
	for i := 0; i < 4; i++ {
		for n := 0; n < 16; n++ {
			if ln := h.dom.L1(i).Lookup(mem.Addr(0x30000 + n*32)); ln != nil && ln.State == cache.Shared {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Error("no shared copies after read sharing")
	}
	if err := h.dom.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

package coher

import (
	"math/bits"

	"repro/internal/mem"
)

// This file holds the hot-path table structures of the coherence layer.
// The per-access paths used to go through Go maps (map[mem.Addr]int per
// core for the RegionScout filter, map[mem.Addr]*state for the MESI
// invariant sweep); both are replaced here with array-backed and
// open-addressed tables keyed by region/line index. Workload address
// spaces are contiguous (mem.AddressSpace allocates upward from 1 MB),
// so region indices are small and dense — a flat counter array with a
// base offset beats hashing on every access.

// regionTable counts values per coarse-grain region for one agent. The
// zero value is an empty table.
type regionTable struct {
	base uint64  // region index of slot 0; valid once cnt is non-empty
	cnt  []int32 // counts, indexed by regionIndex-base
}

// get returns the count for region index idx.
func (t *regionTable) get(idx uint64) int32 {
	if len(t.cnt) == 0 || idx < t.base || idx-t.base >= uint64(len(t.cnt)) {
		return 0
	}
	return t.cnt[idx-t.base]
}

// add applies delta to region index idx, growing the table as needed,
// and returns the old and new counts. Counts never go below zero.
func (t *regionTable) add(idx uint64, delta int32) (old, new int32) {
	if len(t.cnt) == 0 {
		t.base = idx
		t.cnt = make([]int32, 64)
	}
	if idx < t.base {
		// Grow downward: shift existing counts up. Rare — allocation
		// proceeds upward — but kept correct for arbitrary layouts.
		shift := t.base - idx
		grown := make([]int32, uint64(len(t.cnt))+shift+64)
		copy(grown[shift:], t.cnt)
		t.cnt = grown
		t.base = idx
	}
	for idx-t.base >= uint64(len(t.cnt)) {
		t.cnt = append(t.cnt, make([]int32, len(t.cnt))...)
	}
	p := &t.cnt[idx-t.base]
	old = *p
	new = old + delta
	if new < 0 {
		new = 0
	}
	*p = new
	return old, new
}

// regionShift returns log2 of the smallest power of two >= n. The filter
// granularity is rounded up so region lookup is a shift, not a divide.
func regionShift(n uint64) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len64(n - 1))
}

// lineTable is a small open-addressed hash table keyed by line-aligned
// address, used by the MESI invariant sweep. Address 0 is the reserved
// "no address" (mem.AddressSpace starts at 1 MB), so it doubles as the
// empty-slot sentinel.
type lineTable struct {
	mask    uint64
	keys    []mem.Addr
	owners  []uint16 // Modified/Exclusive copies
	sharers []uint16 // Shared copies
}

// newLineTable returns a table with room for at least n lines.
func newLineTable(n int) *lineTable {
	sz := uint64(1)
	for sz < uint64(n)*2+1 {
		sz <<= 1
	}
	return &lineTable{
		mask:    sz - 1,
		keys:    make([]mem.Addr, sz),
		owners:  make([]uint16, sz),
		sharers: make([]uint16, sz),
	}
}

// slot returns the index for line address a, linear-probing from its
// Fibonacci-hashed home slot.
func (t *lineTable) slot(a mem.Addr) uint64 {
	i := (uint64(a) >> mem.LineShift) * 0x9E3779B97F4A7C15 >> 32 & t.mask
	for t.keys[i] != 0 && t.keys[i] != a {
		i = (i + 1) & t.mask
	}
	t.keys[i] = a
	return i
}

// addOwner records one Modified/Exclusive copy of line a.
func (t *lineTable) addOwner(a mem.Addr) { t.owners[t.slot(a)]++ }

// addSharer records one Shared copy of line a.
func (t *lineTable) addSharer(a mem.Addr) { t.sharers[t.slot(a)]++ }

// each calls fn for every recorded line.
func (t *lineTable) each(fn func(a mem.Addr, owners, sharers uint16)) {
	for i, k := range t.keys {
		if k != 0 {
			fn(k, t.owners[i], t.sharers[i])
		}
	}
}

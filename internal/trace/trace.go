// Package trace collects simulation activity spans and exports them in
// the Chrome trace-event JSON format (chrome://tracing, Perfetto), so a
// run's stalls, synchronization waits and DMA transfers can be inspected
// on a timeline. Collection is opt-in per run and capped, because a
// paper-scale simulation can produce millions of spans.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// DefaultCap bounds the number of recorded spans.
const DefaultCap = 1 << 20

// Span is one timeline interval.
type Span struct {
	Track int    // timeline row (core id; DMA engines use an offset)
	Name  string // e.g. "load-stall", "dma-get"
	Start sim.Time
	Dur   sim.Time
}

// Counter is one sample of a named counter track ("ph":"C" in the
// Chrome format; Perfetto renders it as a value-over-time graph above
// the span timeline). The probe layer's per-epoch series are merged in
// as counters after a run.
type Counter struct {
	Name  string
	At    sim.Time
	Value float64
}

// FlowStep is one anchor of a flow arrow: the track the request was on
// at that instant. Chrome draws an arrow between consecutive steps.
type FlowStep struct {
	Track int
	At    sim.Time
}

// Flow is one request arrow chain ("s"/"t"/"f" events sharing an id):
// the transaction tracer merges one Flow per traced memory request, so
// -trace timelines show where each request traveled.
type Flow struct {
	ID    uint64
	Name  string
	Steps []FlowStep
}

// Collector accumulates spans. The simulation engine is single-threaded,
// so no locking is needed.
type Collector struct {
	Cap      int
	spans    []Span
	counters []Counter
	flows    []Flow
	tracks   map[int]string
	dropped  uint64
}

// New returns a collector with the default cap.
func New() *Collector { return &Collector{Cap: DefaultCap} }

// Add records one span; spans beyond the cap are counted as dropped.
func (c *Collector) Add(track int, name string, start, dur sim.Time) {
	if c.Cap > 0 && len(c.spans) >= c.Cap {
		c.dropped++
		return
	}
	c.spans = append(c.spans, Span{Track: track, Name: name, Start: start, Dur: dur})
}

// Len returns the number of recorded spans.
func (c *Collector) Len() int { return len(c.spans) }

// Dropped returns how many spans were discarded after the cap.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Spans returns the recorded spans (read-only view).
func (c *Collector) Spans() []Span { return c.spans }

// AddCounter records one counter sample. Counter samples are bounded by
// their producer (the probe recorder's epoch cap), so they do not count
// against Cap.
func (c *Collector) AddCounter(name string, at sim.Time, value float64) {
	c.counters = append(c.counters, Counter{Name: name, At: at, Value: value})
}

// Counters returns the recorded counter samples (read-only view).
func (c *Collector) Counters() []Counter { return c.counters }

// AddFlow records one request arrow chain. Flows are bounded by their
// producer (the transaction tracer's reservoirs and sampling cap), so
// they do not count against Cap. Chains shorter than two steps draw no
// arrow and are dropped.
func (c *Collector) AddFlow(id uint64, name string, steps []FlowStep) {
	if len(steps) < 2 {
		return
	}
	c.flows = append(c.flows, Flow{ID: id, Name: name, Steps: steps})
}

// Flows returns the recorded flow chains (read-only view).
func (c *Collector) Flows() []Flow { return c.flows }

// SetTrackName labels a timeline row ("M" thread_name metadata), so
// merged component tracks render as "uncore.l2" instead of a bare tid.
func (c *Collector) SetTrackName(track int, name string) {
	if c.tracks == nil {
		c.tracks = map[int]string{}
	}
	c.tracks[track] = name
}

// chromeEvent is the trace-event wire format ("X" = complete event;
// timestamps and durations in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// counterEvent is a "C" counter sample; Perfetto draws one graph track
// per name, with the sampled value under args.
type counterEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Pid  int                `json:"pid"`
	Args map[string]float64 `json:"args"`
}

// metaEvent is an "M" metadata record.
type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Args map[string]uint64 `json:"args"`
}

// threadNameEvent is the "M" thread_name record labeling one track.
type threadNameEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// flowEvent is one anchor of a flow arrow ("s" start, "t" step,
// "f" finish), tied together by Id.
type flowEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Id   uint64  `json:"id"`
	Ts   float64 `json:"ts"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChrome writes the spans, counter samples and a trailing
// dropped-span metadata record as a Chrome trace-event JSON array.
func (c *Collector) WriteChrome(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	first := true
	emit := func(ev any) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ev)
	}
	// Track labels first, in ascending track order (deterministic output
	// regardless of SetTrackName call order).
	tids := make([]int, 0, len(c.tracks))
	for tid := range c.tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		err := emit(threadNameEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  tid,
			Args: map[string]string{"name": c.tracks[tid]},
		})
		if err != nil {
			return err
		}
	}
	for _, s := range c.spans {
		err := emit(chromeEvent{
			Name: s.Name,
			Cat:  "sim",
			Ph:   "X",
			Ts:   float64(s.Start) / float64(sim.Microsecond),
			Dur:  float64(s.Dur) / float64(sim.Microsecond),
			Pid:  0,
			Tid:  s.Track,
		})
		if err != nil {
			return err
		}
	}
	for _, cs := range c.counters {
		err := emit(counterEvent{
			Name: cs.Name,
			Cat:  "probe",
			Ph:   "C",
			Ts:   float64(cs.At) / float64(sim.Microsecond),
			Pid:  0,
			Args: map[string]float64{"value": cs.Value},
		})
		if err != nil {
			return err
		}
	}
	for _, f := range c.flows {
		for i, st := range f.Steps {
			ph := "t"
			switch i {
			case 0:
				ph = "s"
			case len(f.Steps) - 1:
				ph = "f"
			}
			err := emit(flowEvent{
				Name: f.Name,
				Cat:  "txn",
				Ph:   ph,
				Id:   f.ID,
				Ts:   float64(st.At) / float64(sim.Microsecond),
				Pid:  0,
				Tid:  st.Track,
			})
			if err != nil {
				return err
			}
		}
	}
	// Always record how much the cap discarded (zero included), so a
	// truncated timeline is never mistaken for a complete one.
	err := emit(metaEvent{
		Name: "dropped_spans",
		Ph:   "M",
		Pid:  0,
		Args: map[string]uint64{"dropped": c.dropped},
	})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, "]\n")
	return err
}

// Summary aggregates total duration per (track, name) for quick textual
// inspection and tests.
func (c *Collector) Summary() map[string]sim.Time {
	out := map[string]sim.Time{}
	for _, s := range c.spans {
		out[fmt.Sprintf("%d/%s", s.Track, s.Name)] += s.Dur
	}
	return out
}

package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCollectAndSummarize(t *testing.T) {
	c := New()
	c.Add(0, "load-stall", 100*sim.Nanosecond, 50*sim.Nanosecond)
	c.Add(0, "load-stall", 300*sim.Nanosecond, 25*sim.Nanosecond)
	c.Add(1, "sync-wait", 0, 10*sim.Nanosecond)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	sum := c.Summary()
	if sum["0/load-stall"] != 75*sim.Nanosecond {
		t.Errorf("summary = %v", sum)
	}
}

func TestCapDrops(t *testing.T) {
	c := &Collector{Cap: 2}
	for i := 0; i < 5; i++ {
		c.Add(0, "x", sim.Time(i), 1)
	}
	if c.Len() != 2 || c.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d", c.Len(), c.Dropped())
	}
}

func TestChromeExportParses(t *testing.T) {
	c := New()
	c.Add(2, "dma-get", sim.Microsecond, 3*sim.Microsecond)
	c.Add(0, "load-stall", 0, 500*sim.Nanosecond)
	var sb strings.Builder
	if err := c.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	if events[0]["name"] != "dma-get" || events[0]["ts"].(float64) != 1.0 {
		t.Errorf("event 0 = %v", events[0])
	}
	if events[0]["dur"].(float64) != 3.0 {
		t.Errorf("dur = %v", events[0]["dur"])
	}
}

func TestZeroDurationNotEmittedByProcHelper(t *testing.T) {
	// The collector itself records what it is given; zero-duration
	// filtering happens at the instrumentation site. Just confirm the
	// collector copes with zero durations for robustness.
	c := New()
	c.Add(0, "z", 0, 0)
	if c.Len() != 1 {
		t.Error("zero-duration span rejected by collector")
	}
}

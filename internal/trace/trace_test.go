package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCollectAndSummarize(t *testing.T) {
	c := New()
	c.Add(0, "load-stall", 100*sim.Nanosecond, 50*sim.Nanosecond)
	c.Add(0, "load-stall", 300*sim.Nanosecond, 25*sim.Nanosecond)
	c.Add(1, "sync-wait", 0, 10*sim.Nanosecond)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	sum := c.Summary()
	if sum["0/load-stall"] != 75*sim.Nanosecond {
		t.Errorf("summary = %v", sum)
	}
}

func TestCapDrops(t *testing.T) {
	c := &Collector{Cap: 2}
	for i := 0; i < 5; i++ {
		c.Add(0, "x", sim.Time(i), 1)
	}
	if c.Len() != 2 || c.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d", c.Len(), c.Dropped())
	}
}

func TestChromeExportParses(t *testing.T) {
	c := New()
	c.Add(2, "dma-get", sim.Microsecond, 3*sim.Microsecond)
	c.Add(0, "load-stall", 0, 500*sim.Nanosecond)
	var sb strings.Builder
	if err := c.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 3 { // 2 spans + dropped_spans metadata
		t.Fatalf("%d events", len(events))
	}
	if events[0]["name"] != "dma-get" || events[0]["ts"].(float64) != 1.0 {
		t.Errorf("event 0 = %v", events[0])
	}
	if events[0]["dur"].(float64) != 3.0 {
		t.Errorf("dur = %v", events[0]["dur"])
	}
	if events[2]["ph"] != "M" || events[2]["name"] != "dropped_spans" {
		t.Errorf("trailing metadata = %v", events[2])
	}
}

// TestChromeGoldenEmpty pins the exact bytes of an empty collector's
// export: just the always-present dropped-span metadata record.
func TestChromeGoldenEmpty(t *testing.T) {
	var sb strings.Builder
	if err := New().WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	want := "[\n{\"name\":\"dropped_spans\",\"ph\":\"M\",\"pid\":0,\"args\":{\"dropped\":0}}\n]\n"
	if sb.String() != want {
		t.Errorf("golden mismatch:\ngot  %q\nwant %q", sb.String(), want)
	}
}

// TestChromeGoldenNameEscaping pins that span names containing JSON
// metacharacters are escaped, not emitted raw.
func TestChromeGoldenNameEscaping(t *testing.T) {
	c := New()
	c.Add(0, `quote"back\slash`, 0, sim.Microsecond)
	var sb strings.Builder
	if err := c.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	want := "[\n" +
		"{\"name\":\"quote\\\"back\\\\slash\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0}\n" +
		",{\"name\":\"dropped_spans\",\"ph\":\"M\",\"pid\":0,\"args\":{\"dropped\":0}}\n" +
		"]\n"
	if sb.String() != want {
		t.Errorf("golden mismatch:\ngot  %q\nwant %q", sb.String(), want)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if events[0]["name"] != `quote"back\slash` {
		t.Errorf("round-tripped name = %v", events[0]["name"])
	}
}

// TestChromeCounterEvents checks "C" events carry the sampled value and
// that the dropped count in the metadata reflects the cap.
func TestChromeCounterEvents(t *testing.T) {
	c := &Collector{Cap: 1}
	c.Add(0, "x", 0, 1)
	c.Add(0, "y", 0, 1) // dropped
	c.AddCounter("dram.read_bytes", 2*sim.Microsecond, 4096)
	var sb strings.Builder
	if err := c.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 3 { // 1 span + 1 counter + metadata
		t.Fatalf("%d events:\n%s", len(events), sb.String())
	}
	cnt := events[1]
	if cnt["ph"] != "C" || cnt["name"] != "dram.read_bytes" || cnt["ts"].(float64) != 2.0 {
		t.Errorf("counter event = %v", cnt)
	}
	if v := cnt["args"].(map[string]any)["value"].(float64); v != 4096 {
		t.Errorf("counter value = %v", v)
	}
	if d := events[2]["args"].(map[string]any)["dropped"].(float64); d != 1 {
		t.Errorf("dropped = %v", d)
	}
}

func TestZeroDurationNotEmittedByProcHelper(t *testing.T) {
	// The collector itself records what it is given; zero-duration
	// filtering happens at the instrumentation site. Just confirm the
	// collector copes with zero durations for robustness.
	c := New()
	c.Add(0, "z", 0, 0)
	if c.Len() != 1 {
		t.Error("zero-duration span rejected by collector")
	}
}

// Package fault provides deterministic failure injection for the run
// layer's robustness tests: workloads that deadlock, stall forever,
// panic, fail verification, or fail transiently, plus deliberately
// corrupted configurations. Every fault fires from the simulation's own
// deterministic state (task IDs, attempt counters) — never the clock —
// so an injected failure reproduces identically on every run.
//
// The fault workloads are NOT registered by package init: call
// RegisterWorkloads from a test so production binaries never see them.
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/syncprim"
	"repro/internal/workload"
)

// Workload names injected by RegisterWorkloads.
const (
	Deadlock  = "fault-deadlock"  // core 0 exits holding the lock the rest acquire
	Stall     = "fault-stall"     // every core advances simulated time forever
	Panic     = "fault-panic"     // panics on every core except core 0
	Flaky     = "fault-flaky"     // panics while the SetFlakyFailures budget lasts
	BadVerify = "fault-badverify" // computes fine, fails verification
)

var registerOnce sync.Once

// RegisterWorkloads adds the fault workloads to the workload registry.
// Safe to call from multiple tests; registration happens once per
// process.
func RegisterWorkloads() {
	registerOnce.Do(func() {
		workload.Register(Deadlock, func(workload.Scale) core.Workload { return &deadlockWorkload{} })
		workload.Register(Stall, func(workload.Scale) core.Workload { return stallWorkload{} })
		workload.Register(Panic, func(workload.Scale) core.Workload { return panicWorkload{} })
		workload.Register(Flaky, func(workload.Scale) core.Workload { return flakyWorkload{} })
		workload.Register(BadVerify, func(workload.Scale) core.Workload { return badVerifyWorkload{} })
	})
}

// deadlockWorkload drives the machine into a true synchronization
// deadlock: core 0 wins the lock race and finishes without releasing,
// every other core blocks in Acquire. On one core it degenerates to a
// clean (if useless) run, so use at least two cores to inject.
type deadlockWorkload struct{ lock *syncprim.Lock }

func (w *deadlockWorkload) Name() string           { return Deadlock }
func (w *deadlockWorkload) Setup(sys *core.System) { w.lock = syncprim.NewLock("fault.poison") }
func (w *deadlockWorkload) Run(p *cpu.Proc) {
	if p.ID() == 0 {
		w.lock.Acquire(p)
		return // exits still holding the lock
	}
	p.WaitUntil(100 * sim.Nanosecond) // let core 0 win the race
	w.lock.Acquire(p)
	w.lock.Release(p)
}
func (w *deadlockWorkload) Verify() error { return nil }

// stallWorkload never finishes: simulated time advances forever. With
// MaxSimTime disabled it runs until something outside the simulation
// (the per-job watchdog) aborts it; with MaxSimTime set it trips the
// livelock net instead.
type stallWorkload struct{}

func (stallWorkload) Name() string           { return Stall }
func (stallWorkload) Setup(sys *core.System) {}
func (stallWorkload) Run(p *cpu.Proc) {
	for {
		p.Work(1000)
		p.Task().Sync()
	}
}
func (stallWorkload) Verify() error { return nil }

// panicWorkload panics in workload code on every core but core 0, so a
// one-core baseline succeeds while any parallel configuration fails —
// exactly one poisoned region of a figure grid.
type panicWorkload struct{}

func (panicWorkload) Name() string           { return Panic }
func (panicWorkload) Setup(sys *core.System) {}
func (panicWorkload) Run(p *cpu.Proc) {
	if p.ID() != 0 {
		panic(fmt.Sprintf("fault: injected panic on core %d", p.ID()))
	}
	p.Work(1000)
}
func (panicWorkload) Verify() error { return nil }

// flakyBudget is the number of upcoming fault-flaky runs that will
// panic. It is process-global (each attempt constructs a fresh workload
// instance, so per-instance state cannot survive a retry); tests using
// Flaky must not run fault-flaky jobs concurrently.
var flakyBudget atomic.Int64

// SetFlakyFailures arms fault-flaky: the next n runs panic, subsequent
// runs succeed. The retry loop is its consumer — a job with a retry
// budget of at least n recovers, one with less fails.
func SetFlakyFailures(n int) { flakyBudget.Store(int64(n)) }

type flakyWorkload struct{}

func (flakyWorkload) Name() string           { return Flaky }
func (flakyWorkload) Setup(sys *core.System) {}
func (flakyWorkload) Run(p *cpu.Proc) {
	if p.ID() == 0 && flakyBudget.Add(-1) >= 0 {
		panic("fault: injected transient failure")
	}
	p.Work(1000)
}
func (flakyWorkload) Verify() error { return nil }

// badVerifyWorkload simulates cleanly and then reports a wrong answer.
type badVerifyWorkload struct{}

func (badVerifyWorkload) Name() string           { return BadVerify }
func (badVerifyWorkload) Setup(sys *core.System) {}
func (badVerifyWorkload) Run(p *cpu.Proc)        { p.Work(1000) }
func (badVerifyWorkload) Verify() error {
	return fmt.Errorf("fault: injected verification failure (checksum mismatch)")
}

// CorruptedConfigs returns configurations corrupted one field at a time,
// keyed by the Config field that Validate must report. The run layer's
// tests prove each fails typed, synchronously, and before any simulation
// goroutine spawns.
func CorruptedConfigs() map[string]core.Config {
	out := map[string]core.Config{}
	mk := func(field string, mutate func(*core.Config)) {
		cfg := core.DefaultConfig(core.CC, 4)
		mutate(&cfg)
		out[field] = cfg
	}
	mk("Cores", func(c *core.Config) { c.Cores = -4 })
	mk("CoreMHz", func(c *core.Config) { c.CoreMHz = 0 })
	mk("Model", func(c *core.Config) { c.Model = core.Model(42) })
	mk("PrefetchDepth", func(c *core.Config) { c.Model = core.STR; c.PrefetchDepth = 4 })
	mk("StoreBuffer", func(c *core.Config) { c.StoreBuffer = -1 })
	return out
}

package fault

import (
	"sync"
	"syscall"

	"repro/internal/resultstore"
)

// Disk-fault injection for the persistent result store: wrappers over
// resultstore.File that fail deterministically — after a byte budget,
// at a fixed offset — never from the clock, mirroring the package's
// workload faults. Tests hand them to resultstore.Options.OpenFile to
// prove the journal survives torn writes, flipped bits, short reads and
// a full disk.

// DiskFile is the subset of file behavior the wrappers inject into; it
// matches resultstore.File exactly.
type DiskFile = resultstore.File

// tornWriteFile models a crash mid-write: writes consume a byte budget,
// and the write that exhausts it persists only the bytes that fit, then
// fails — after which every mutation fails too, like a process that
// died. Reads keep working so the "dead" journal can be inspected.
type tornWriteFile struct {
	mu     sync.Mutex
	inner  DiskFile
	budget int64
	dead   bool
}

// NewTornWriteFile wraps inner with a write budget in bytes. The write
// crossing the budget is torn (a prefix lands on disk), and the file is
// dead to further writes, truncates and syncs from then on.
func NewTornWriteFile(inner DiskFile, budget int64) DiskFile {
	return &tornWriteFile{inner: inner, budget: budget}
}

func (f *tornWriteFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return 0, syscall.EIO
	}
	if int64(len(p)) <= f.budget {
		f.budget -= int64(len(p))
		return f.inner.WriteAt(p, off)
	}
	keep := f.budget
	f.budget = 0
	f.dead = true
	if keep > 0 {
		f.inner.WriteAt(p[:keep], off)
	}
	return int(keep), syscall.EIO
}

func (f *tornWriteFile) Truncate(n int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return syscall.EIO
	}
	return f.inner.Truncate(n)
}

func (f *tornWriteFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return syscall.EIO
	}
	return f.inner.Sync()
}

func (f *tornWriteFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *tornWriteFile) Size() (int64, error)                    { return f.inner.Size() }
func (f *tornWriteFile) Close() error                            { return f.inner.Close() }

// bitFlipFile corrupts data on its way to disk: any write covering the
// target absolute offset lands with one bit of that byte inverted, the
// silent-corruption case checksums exist for.
type bitFlipFile struct {
	inner  DiskFile
	target int64
}

// NewBitFlipFile wraps inner so writes covering absolute offset target
// flip bit 5 of that byte.
func NewBitFlipFile(inner DiskFile, target int64) DiskFile {
	return &bitFlipFile{inner: inner, target: target}
}

func (f *bitFlipFile) WriteAt(p []byte, off int64) (int, error) {
	if off <= f.target && f.target < off+int64(len(p)) {
		q := append([]byte(nil), p...)
		q[f.target-off] ^= 0x20
		p = q
	}
	return f.inner.WriteAt(p, off)
}

func (f *bitFlipFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *bitFlipFile) Truncate(n int64) error                  { return f.inner.Truncate(n) }
func (f *bitFlipFile) Sync() error                             { return f.inner.Sync() }
func (f *bitFlipFile) Size() (int64, error)                    { return f.inner.Size() }
func (f *bitFlipFile) Close() error                            { return f.inner.Close() }

// shortReadFile starves reads: any read at or past the cutoff offset
// returns at most one byte per call less than asked (and an EIO once
// nothing fits), modeling a file system returning less than requested.
type shortReadFile struct {
	inner  DiskFile
	cutoff int64
}

// NewShortReadFile wraps inner so reads reaching at or past cutoff fail
// with EIO.
func NewShortReadFile(inner DiskFile, cutoff int64) DiskFile {
	return &shortReadFile{inner: inner, cutoff: cutoff}
}

func (f *shortReadFile) ReadAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > f.cutoff {
		keep := f.cutoff - off
		if keep < 0 {
			keep = 0
		}
		n, _ := f.inner.ReadAt(p[:keep], off)
		return n, syscall.EIO
	}
	return f.inner.ReadAt(p, off)
}

func (f *shortReadFile) WriteAt(p []byte, off int64) (int, error) { return f.inner.WriteAt(p, off) }
func (f *shortReadFile) Truncate(n int64) error                   { return f.inner.Truncate(n) }
func (f *shortReadFile) Sync() error                              { return f.inner.Sync() }
func (f *shortReadFile) Size() (int64, error)                     { return f.inner.Size() }
func (f *shortReadFile) Close() error                             { return f.inner.Close() }

// noSpaceFile models a full disk: writes consume a byte budget and the
// one that would exceed it fails atomically with ENOSPC (no partial
// bytes land — the torn variant covers that). Reads, truncates and
// syncs keep working, as they do on a full file system.
type noSpaceFile struct {
	mu     sync.Mutex
	inner  DiskFile
	budget int64
}

// NewNoSpaceFile wraps inner with a write budget in bytes; writes past
// it fail whole with ENOSPC.
func NewNoSpaceFile(inner DiskFile, budget int64) DiskFile {
	return &noSpaceFile{inner: inner, budget: budget}
}

func (f *noSpaceFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int64(len(p)) > f.budget {
		return 0, syscall.ENOSPC
	}
	f.budget -= int64(len(p))
	return f.inner.WriteAt(p, off)
}

func (f *noSpaceFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *noSpaceFile) Truncate(n int64) error                  { return f.inner.Truncate(n) }
func (f *noSpaceFile) Sync() error                             { return f.inner.Sync() }
func (f *noSpaceFile) Size() (int64, error)                    { return f.inner.Size() }
func (f *noSpaceFile) Close() error                            { return f.inner.Close() }

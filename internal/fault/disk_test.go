package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/sim"
)

func diskCfg(i int) core.Config {
	cfg := core.DefaultConfig(core.CC, 2)
	cfg.CoreMHz = uint64(700 + i)
	return cfg
}

func diskRep(i int) *core.Report {
	return &core.Report{Model: core.CC, Cores: 2, Wall: sim.Time(100 + i), Instructions: uint64(i + 1)}
}

// faultyOpener wraps resultstore.OpenOSFile so only the live journal is
// faulted; compaction temporaries open clean.
func faultyOpener(wrap func(resultstore.File) resultstore.File) func(string) (resultstore.File, error) {
	return func(path string) (resultstore.File, error) {
		f, err := resultstore.OpenOSFile(path)
		if err != nil {
			return nil, err
		}
		if filepath.Ext(path) == ".journal" {
			return wrap(f), nil
		}
		return f, nil
	}
}

// journalSize reads the on-disk journal length.
func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, "store.journal"))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestTornWriteRecovers: a write budget dies mid-record, leaving a torn
// tail on disk. The put fails, the store keeps serving what it has, and
// a clean reopen truncates the torn bytes and restores every record
// written before the crash.
func TestTornWriteRecovers(t *testing.T) {
	dir := t.TempDir()

	// Find one record's journal footprint to size the budget mid-record.
	s, err := resultstore.Open(resultstore.Options{Dir: dir, Version: "v1", SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(diskCfg(0), "fir", "small", diskRep(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	recSize := journalSize(t, dir) - 16 // header is 16 bytes
	os.RemoveAll(dir)

	// Budget: header + one full record + half of the next.
	budget := 16 + recSize + recSize/2
	s, err = resultstore.Open(resultstore.Options{
		Dir: dir, Version: "v1", SyncEvery: 1,
		OpenFile: faultyOpener(func(f resultstore.File) resultstore.File {
			return NewTornWriteFile(f, budget)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(diskCfg(0), "fir", "small", diskRep(0)); err != nil {
		t.Fatalf("first put within budget: %v", err)
	}
	if err := s.Put(diskCfg(1), "fir", "small", diskRep(1)); err == nil {
		t.Fatal("torn write reported success")
	}
	// The dead file also fails rollback, so torn bytes stay on disk —
	// exactly what a crash leaves behind.
	if st := s.Stats(); st.PutErrors != 1 {
		t.Fatalf("put errors: %+v", st)
	}
	if _, ok := s.Get(diskCfg(0), "fir", "small"); !ok {
		t.Fatal("surviving record unreadable after torn write")
	}
	s.Close()
	if sz := journalSize(t, dir); sz <= 16+recSize {
		t.Fatalf("journal %d bytes: expected torn bytes past the good record", sz)
	}

	s2, err := resultstore.Open(resultstore.Options{Dir: dir, Version: "v1"})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Recovered != 1 || st.TruncatedBytes == 0 || st.Corrupt != 0 {
		t.Fatalf("recovery stats after torn write: %+v", st)
	}
	if rep, ok := s2.Get(diskCfg(0), "fir", "small"); !ok || rep.Wall != diskRep(0).Wall {
		t.Fatal("record written before the crash lost")
	}
	if _, ok := s2.Get(diskCfg(1), "fir", "small"); ok {
		t.Fatal("torn record served")
	}
}

// TestBitFlipQuarantined: one bit flipped on its way to disk is caught
// by the record checksum at read time — quarantined, never served.
func TestBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	// Flip a byte inside the first record's payload (header 16 + record
	// header 12 + a few bytes in).
	s, err := resultstore.Open(resultstore.Options{
		Dir: dir, Version: "v1", SyncEvery: 1,
		OpenFile: faultyOpener(func(f resultstore.File) resultstore.File {
			return NewBitFlipFile(f, 16+12+8)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(diskCfg(0), "fir", "small", diskRep(0)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Put(diskCfg(1), "fir", "small", diskRep(1)); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if _, ok := s.Get(diskCfg(0), "fir", "small"); ok {
		t.Fatal("bit-flipped record served")
	}
	st := s.Stats()
	if st.Corrupt == 0 {
		t.Fatalf("flip not quarantined: %+v", st)
	}
	if _, ok := s.Get(diskCfg(1), "fir", "small"); !ok {
		t.Fatal("undamaged record lost")
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "quarantine.jsonl")); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}

	// Reopen clean: the flipped record is dropped during recovery (or on
	// read), the good one survives.
	s2, err := resultstore.Open(resultstore.Options{Dir: dir, Version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(diskCfg(0), "fir", "small"); ok {
		t.Fatal("bit-flipped record served after reopen")
	}
	if rep, ok := s2.Get(diskCfg(1), "fir", "small"); !ok || rep.Wall != diskRep(1).Wall {
		t.Fatal("undamaged record lost after reopen")
	}
}

// TestShortReadIsAMiss: a file system returning less than asked turns a
// hit into a quarantined miss, never an error or bad data.
func TestShortReadIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := resultstore.Open(resultstore.Options{Dir: dir, Version: "v1", SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(diskCfg(0), "fir", "small", diskRep(0)); err != nil {
		t.Fatal(err)
	}
	firstEnd := journalSize(t, dir)
	if err := s.Put(diskCfg(1), "fir", "small", diskRep(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := resultstore.Open(resultstore.Options{
		Dir: dir, Version: "v1",
		OpenFile: faultyOpener(func(f resultstore.File) resultstore.File {
			// Reads reaching past the first record fail.
			return NewShortReadFile(f, firstEnd)
		}),
	})
	if err != nil {
		t.Fatalf("open with starved reads: %v", err)
	}
	defer s2.Close()
	if rep, ok := s2.Get(diskCfg(0), "fir", "small"); !ok || rep.Wall != diskRep(0).Wall {
		t.Fatal("readable record lost")
	}
	if _, ok := s2.Get(diskCfg(1), "fir", "small"); ok {
		t.Fatal("short-read record served")
	}
	if st := s2.Stats(); st.Misses == 0 {
		t.Fatalf("short read not a miss: %+v", st)
	}
}

// TestNoSpaceRollsBack: ENOSPC fails the put, rolls the journal back,
// and the store keeps serving; freeing space (a fresh opener) makes
// puts work again on the same journal.
func TestNoSpaceRollsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := resultstore.Open(resultstore.Options{Dir: dir, Version: "v1", SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(diskCfg(0), "fir", "small", diskRep(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	goodSize := journalSize(t, dir)

	s2, err := resultstore.Open(resultstore.Options{
		Dir: dir, Version: "v1", SyncEvery: 1,
		OpenFile: faultyOpener(func(f resultstore.File) resultstore.File {
			return NewNoSpaceFile(f, 0) // disk already full
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s2.Put(diskCfg(1), "fir", "small", diskRep(1))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("put on full disk: %v", err)
	}
	if st := s2.Stats(); st.PutErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if _, ok := s2.Get(diskCfg(0), "fir", "small"); !ok {
		t.Fatal("full disk broke reads")
	}
	if _, ok := s2.Get(diskCfg(1), "fir", "small"); ok {
		t.Fatal("failed put served")
	}
	s2.Close()
	if sz := journalSize(t, dir); sz != goodSize {
		t.Fatalf("journal grew to %d bytes on a full disk (want %d)", sz, goodSize)
	}

	// Space freed: same journal, fresh opener, puts succeed.
	s3, err := resultstore.Open(resultstore.Options{Dir: dir, Version: "v1", SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if err := s3.Put(diskCfg(1), "fir", "small", diskRep(1)); err != nil {
		t.Fatalf("put after space freed: %v", err)
	}
	if rep, ok := s3.Get(diskCfg(1), "fir", "small"); !ok || rep.Wall != diskRep(1).Wall {
		t.Fatal("record lost after recovery from full disk")
	}
}

// End-to-end robustness proof: every injected fault must come back from
// the run layer as a structured, typed failure — never a crashed
// process, a hung pool or a silently wrong figure. The suite runs under
// the race detector in CI (make fault).
package fault_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMain(m *testing.M) {
	fault.RegisterWorkloads()
	m.Run()
}

// recorder collects Records concurrency-safely.
type recorder struct {
	mu   sync.Mutex
	recs []bench.Record
}

func (c *recorder) add(r bench.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, r)
}

func newRunner(rec *recorder) *bench.Runner {
	r := bench.NewRunner(workload.ScaleSmall)
	r.Workers = 2
	if rec != nil {
		r.OnRecord = rec.add
	}
	return r
}

// TestDeadlockProducesTypedRecord injects a synchronization deadlock and
// checks the whole failure path: typed JobError, engine-state snapshot
// naming the contended lock, and a manifest record carrying both.
func TestDeadlockProducesTypedRecord(t *testing.T) {
	rec := &recorder{}
	r := newRunner(rec)
	defer r.Close()
	rep, err := r.Run(core.DefaultConfig(core.CC, 4), fault.Deadlock)
	if rep != nil || err == nil {
		t.Fatalf("rep=%v err=%v, want typed failure", rep, err)
	}
	var jerr *bench.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("err = %#v, want *bench.JobError", err)
	}
	if jerr.Kind != bench.ErrDeadlock {
		t.Fatalf("kind = %q, want deadlock", jerr.Kind)
	}
	if jerr.State == nil || len(jerr.State.Tasks) == 0 {
		t.Fatalf("deadlock JobError carries no engine state: %+v", jerr)
	}
	if len(jerr.State.Recent) == 0 || jerr.State.EventsRecorded == 0 {
		t.Fatalf("deadlock state has no flight-recorder tail: %+v", jerr.State)
	}
	for _, ev := range jerr.State.Recent {
		if ev.Kind == "" || ev.Task == "" {
			t.Fatalf("flight event missing kind or task name: %+v", ev)
		}
	}
	if !strings.Contains(jerr.Error(), "awaiting lock fault.poison") {
		t.Fatalf("error %q does not name the contended lock", jerr.Error())
	}
	if jerr.Retryable() {
		t.Fatal("deadlock must not be retryable: it is deterministic")
	}
	if len(rec.recs) != 1 {
		t.Fatalf("got %d records, want 1", len(rec.recs))
	}
	rc := rec.recs[0]
	if rc.ErrKind != "deadlock" || rc.EngineState == nil || rc.Attempts != 1 {
		t.Fatalf("record = %+v, want deadlock kind with engine state", rc)
	}
}

// TestWatchdogAbortsStall proves the wall-clock watchdog end to end: a
// simulation that would run forever is cancelled cooperatively and
// fails as a timeout with a progress dump.
func TestWatchdogAbortsStall(t *testing.T) {
	r := newRunner(nil)
	defer r.Close()
	r.JobTimeout = 50 * time.Millisecond
	cfg := core.DefaultConfig(core.CC, 2)
	cfg.MaxSimTime = 0 // disable the livelock net; the watchdog must act
	_, err := r.Run(cfg, fault.Stall)
	var jerr *bench.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("err = %#v, want *bench.JobError", err)
	}
	if jerr.Kind != bench.ErrTimeout {
		t.Fatalf("kind = %q, want timeout", jerr.Kind)
	}
	var ae *sim.AbortError
	if !errors.As(jerr.Err, &ae) {
		t.Fatalf("underlying err = %#v, want *sim.AbortError", jerr.Err)
	}
	if !strings.Contains(ae.Reason, "watchdog: job exceeded 50ms") {
		t.Fatalf("abort reason = %q", ae.Reason)
	}
	if jerr.State == nil || len(jerr.State.Tasks) == 0 || jerr.State.HeapDepth < 0 {
		t.Fatalf("timeout carries no progress dump: %+v", jerr.State)
	}
	if len(jerr.State.Recent) == 0 {
		t.Fatalf("timeout state has no flight-recorder tail: %+v", jerr.State)
	}
}

// TestWatchdogAbortMidHandoff is the handoff-dispatch regression at the
// run layer: with 8 cores advancing in lockstep, every slow-path yield
// is a direct task-to-task handoff and the engine goroutine stays
// parked, so the watchdog's Abort necessarily lands while a task
// goroutine holds the scheduler. It must still surface as a typed
// timeout record whose EngineState snapshot is coherent — all stalled
// cores accounted for, none stuck "running" — and whose engine metrics
// prove the run was dispatching by handoff when it died.
func TestWatchdogAbortMidHandoff(t *testing.T) {
	rec := &recorder{}
	r := newRunner(rec)
	defer r.Close()
	r.JobTimeout = 50 * time.Millisecond
	cfg := core.DefaultConfig(core.CC, 8)
	cfg.MaxSimTime = 0 // disable the livelock net; the watchdog must act
	_, err := r.Run(cfg, fault.Stall)
	var jerr *bench.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("err = %#v, want *bench.JobError", err)
	}
	if jerr.Kind != bench.ErrTimeout {
		t.Fatalf("kind = %q, want timeout", jerr.Kind)
	}
	var ae *sim.AbortError
	if !errors.As(jerr.Err, &ae) {
		t.Fatalf("underlying err = %#v, want *sim.AbortError", jerr.Err)
	}
	st := ae.EngineState()
	if st.Metrics.Handoffs == 0 {
		t.Fatalf("stall aborted without a single handoff dispatch: %+v", st.Metrics)
	}
	cores := 0
	for _, ts := range st.Tasks {
		if ts.State == "running" {
			t.Fatalf("task %q snapshotted as running after abort: the scheduler owner was lost mid-handoff (%+v)", ts.Name, st.Tasks)
		}
		if strings.HasPrefix(ts.Name, "core") {
			cores++
		}
	}
	if cores != 8 {
		t.Fatalf("snapshot accounts for %d core tasks, want 8: %+v", cores, st.Tasks)
	}
	if len(rec.recs) != 1 || rec.recs[0].ErrKind != "timeout" || rec.recs[0].EngineState == nil {
		t.Fatalf("manifest record = %+v, want one timeout record with engine state", rec.recs)
	}
	// The run was dispatching by handoff when it died, so the recorded
	// tail must say so: flight events ride the same channel edges as the
	// scheduler state, making this snapshot coherent without locks.
	handoffs := 0
	for _, ev := range rec.recs[0].EngineState.Recent {
		if ev.Kind == "handoff" {
			handoffs++
		}
	}
	if handoffs == 0 {
		t.Fatalf("handoff-dispatched stall recorded no handoff events: %+v", rec.recs[0].EngineState.Recent)
	}
}

// TestLivelockNetCatchesStall is the same stall under MaxSimTime: the
// engine's own bound fires instead of the watchdog.
func TestLivelockNetCatchesStall(t *testing.T) {
	r := newRunner(nil)
	defer r.Close()
	cfg := core.DefaultConfig(core.CC, 1)
	cfg.MaxSimTime = 10 * sim.Microsecond
	_, err := r.Run(cfg, fault.Stall)
	var jerr *bench.JobError
	if !errors.As(err, &jerr) || jerr.Kind != bench.ErrLivelock {
		t.Fatalf("err = %v, want livelock JobError", err)
	}
}

// TestRetryRecoversFlaky arms one transient failure and gives the job a
// retry budget: the first attempt panics, the second succeeds, and the
// pool reports one clean fresh simulation.
func TestRetryRecoversFlaky(t *testing.T) {
	rec := &recorder{}
	r := newRunner(rec)
	defer r.Close()
	r.Retries = 2
	fault.SetFlakyFailures(1)
	rep, err := r.Run(core.DefaultConfig(core.CC, 1), fault.Flaky)
	if err != nil || rep == nil {
		t.Fatalf("rep=%v err=%v, want recovered success", rep, err)
	}
	ok, failed := r.Outcome()
	if ok != 1 || failed != 0 {
		t.Fatalf("outcome = %d ok / %d failed, want 1/0", ok, failed)
	}
	if len(rec.recs) != 1 || rec.recs[0].Err != "" {
		t.Fatalf("records = %+v, want one clean record", rec.recs)
	}
}

// TestRetryBudgetExhausted injects more failures than the budget covers:
// the job fails as a panic after retries, and Attempts counts them all.
func TestRetryBudgetExhausted(t *testing.T) {
	r := newRunner(nil)
	defer r.Close()
	r.Retries = 1
	fault.SetFlakyFailures(10)
	defer fault.SetFlakyFailures(0)
	_, err := r.Run(core.DefaultConfig(core.CC, 1), fault.Flaky)
	var jerr *bench.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("err = %#v, want *bench.JobError", err)
	}
	if jerr.Kind != bench.ErrPanic || jerr.Attempts != 2 {
		t.Fatalf("kind=%q attempts=%d, want panic after 2 attempts", jerr.Kind, jerr.Attempts)
	}
	if !jerr.Retryable() {
		t.Fatal("panic kind must be retryable")
	}
}

// TestCorruptConfigsFailTyped proves config corruption is caught by
// validation — synchronously, with the corrupted field named, before
// any simulation goroutine spawns.
func TestCorruptConfigsFailTyped(t *testing.T) {
	r := newRunner(nil)
	defer r.Close()
	r.Retries = 3 // must not matter: config errors are never retried
	for field, cfg := range fault.CorruptedConfigs() {
		_, err := r.Run(cfg, fault.BadVerify)
		var jerr *bench.JobError
		if !errors.As(err, &jerr) {
			t.Fatalf("%s: err = %#v, want *bench.JobError", field, err)
		}
		if jerr.Kind != bench.ErrConfig || jerr.Attempts != 1 {
			t.Fatalf("%s: kind=%q attempts=%d, want config/1", field, jerr.Kind, jerr.Attempts)
		}
		fes := core.FieldErrors(jerr.Err)
		if len(fes) == 0 {
			t.Fatalf("%s: no field errors in %v", field, jerr.Err)
		}
		found := false
		for _, fe := range fes {
			if fe.Field == field {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: field not named in %v", field, jerr.Err)
		}
	}
}

// TestBadVerifyNotRetried: a wrong answer is deterministic, so the
// retry budget must not burn attempts on it.
func TestBadVerifyNotRetried(t *testing.T) {
	r := newRunner(nil)
	defer r.Close()
	r.Retries = 3
	_, err := r.Run(core.DefaultConfig(core.CC, 2), fault.BadVerify)
	var jerr *bench.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("err = %#v, want *bench.JobError", err)
	}
	if jerr.Kind != bench.ErrVerify || jerr.Attempts != 1 {
		t.Fatalf("kind=%q attempts=%d, want verify/1", jerr.Kind, jerr.Attempts)
	}
	if !strings.Contains(jerr.Error(), "checksum mismatch") {
		t.Fatalf("error %q lost the verification detail", jerr.Error())
	}
}

// TestFigureRendersWithErrCells is the graceful-degradation proof: a
// figure whose parallel runs all fail still renders — failed cells
// marked ERR, a summary line, and a typed GridError — instead of
// aborting on the first bad cell.
func TestFigureRendersWithErrCells(t *testing.T) {
	r := newRunner(nil)
	defer r.Close()
	var buf bytes.Buffer
	// fault-panic succeeds on 1 core (the baseline) and panics on every
	// parallel configuration: 1 ok cell, 8 ERR cells.
	out, err := r.Figure2(&buf, []string{fault.Panic})
	var gerr *bench.GridError
	if !errors.As(err, &gerr) {
		t.Fatalf("err = %#v, want *bench.GridError", err)
	}
	if gerr.OK != 1 || gerr.Failed != 8 {
		t.Fatalf("grid = %d ok / %d failed, want 1/8", gerr.OK, gerr.Failed)
	}
	bars := out[fault.Panic]
	if len(bars) != 8 {
		t.Fatalf("got %d bars, want all 8 rendered", len(bars))
	}
	for _, b := range bars {
		if !b.Err {
			t.Fatalf("bar %q not marked Err", b.Label)
		}
	}
	text := buf.String()
	if !strings.Contains(text, "ERR") {
		t.Fatal("figure output has no ERR cells")
	}
	if !strings.Contains(text, "# Figure 2: 1 ok / 8 failed") {
		t.Fatalf("missing summary line in output:\n%s", text)
	}
	var jerr *bench.JobError
	if !errors.As(gerr, &jerr) || jerr.Kind != bench.ErrPanic {
		t.Fatalf("GridError does not expose per-cell JobErrors: %v", err)
	}
}

// TestSeedSkipsSimulation proves resume: a seeded result is a cache hit
// — returned as-is, no fresh simulation, no record, no counter change.
func TestSeedSkipsSimulation(t *testing.T) {
	rec := &recorder{}
	r := newRunner(rec)
	defer r.Close()
	cfg := core.DefaultConfig(core.CC, 4)
	seeded := &core.Report{Wall: 12345}
	if !r.Seed(cfg, fault.Deadlock, seeded) {
		t.Fatal("first Seed rejected")
	}
	if r.Seed(cfg, fault.Deadlock, &core.Report{}) {
		t.Fatal("second Seed for the same key accepted")
	}
	rep, err := r.Run(cfg, fault.Deadlock) // would deadlock if simulated
	if err != nil || rep != seeded {
		t.Fatalf("rep=%v err=%v, want the seeded report", rep, err)
	}
	ok, failed := r.Outcome()
	if ok != 0 || failed != 0 || len(rec.recs) != 0 {
		t.Fatalf("seeded hit produced side effects: ok=%d failed=%d recs=%d", ok, failed, len(rec.recs))
	}
}

// TestFlightRecorderTailCoverage sweeps the remaining typed-failure
// kinds — livelock and task panic — plus the opt-out: every failure
// whose engine produced a snapshot must carry the scheduler-event tail
// that led there, and a negative Runner.FlightRecorder must disarm it.
func TestFlightRecorderTailCoverage(t *testing.T) {
	t.Run("livelock", func(t *testing.T) {
		r := newRunner(nil)
		defer r.Close()
		cfg := core.DefaultConfig(core.CC, 1)
		cfg.MaxSimTime = 10 * sim.Microsecond
		_, err := r.Run(cfg, fault.Stall)
		var jerr *bench.JobError
		if !errors.As(err, &jerr) || jerr.Kind != bench.ErrLivelock {
			t.Fatalf("err = %v, want livelock JobError", err)
		}
		if jerr.State == nil || len(jerr.State.Recent) == 0 {
			t.Fatalf("livelock state has no flight-recorder tail: %+v", jerr.State)
		}
	})
	t.Run("panic", func(t *testing.T) {
		r := newRunner(nil)
		defer r.Close()
		fault.SetFlakyFailures(10)
		defer fault.SetFlakyFailures(0)
		_, err := r.Run(core.DefaultConfig(core.CC, 1), fault.Flaky)
		var jerr *bench.JobError
		if !errors.As(err, &jerr) || jerr.Kind != bench.ErrPanic {
			t.Fatalf("err = %v, want panic JobError", err)
		}
		if jerr.State == nil || len(jerr.State.Recent) == 0 {
			t.Fatalf("panic state has no flight-recorder tail: %+v", jerr.State)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		r := newRunner(nil)
		defer r.Close()
		r.FlightRecorder = -1
		_, err := r.Run(core.DefaultConfig(core.CC, 4), fault.Deadlock)
		var jerr *bench.JobError
		if !errors.As(err, &jerr) || jerr.Kind != bench.ErrDeadlock {
			t.Fatalf("err = %v, want deadlock JobError", err)
		}
		if jerr.State == nil {
			t.Fatalf("deadlock lost its engine state: %+v", jerr)
		}
		if len(jerr.State.Recent) != 0 || jerr.State.EventsRecorded != 0 {
			t.Fatalf("disabled recorder still captured events: %+v", jerr.State)
		}
	})
}

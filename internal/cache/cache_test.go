package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func l1Config() Config {
	return Config{Name: "l1d", Size: 32 * 1024, Assoc: 2}
}

func TestGeometry(t *testing.T) {
	c := New(l1Config())
	if c.nsets != 512 {
		t.Errorf("32KB 2-way 32B cache: nsets = %d, want 512", c.nsets)
	}
	l2 := New(Config{Name: "l2", Size: 512 * 1024, Assoc: 16})
	if l2.nsets != 1024 {
		t.Errorf("512KB 16-way: nsets = %d, want 1024", l2.nsets)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(l1Config())
	if c.Access(0x100, false) != nil {
		t.Fatal("cold access should miss")
	}
	c.Insert(0x100, Exclusive, 0)
	ln := c.Access(0x104, false) // same line
	if ln == nil {
		t.Fatal("access after insert should hit")
	}
	if ln.State != Exclusive {
		t.Errorf("state = %v, want E", ln.State)
	}
	st := c.Stats()
	if st.Reads != 2 || st.ReadHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Name: "tiny", Size: 64, Assoc: 2}) // one set, two ways
	c.Insert(0x000, Exclusive, 0)
	c.Insert(0x020, Exclusive, 0)
	c.Access(0x000, false) // make 0x000 MRU
	_, ev := c.Insert(0x040, Exclusive, 0)
	if !ev.Valid || ev.Addr != 0x020 {
		t.Errorf("evicted %+v, want line 0x020", ev)
	}
	if c.Lookup(0x000) == nil || c.Lookup(0x040) == nil || c.Lookup(0x020) != nil {
		t.Error("wrong lines resident after eviction")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := New(Config{Name: "tiny", Size: 64, Assoc: 1})
	ln, _ := c.Insert(0x000, Modified, 0)
	ln.Dirty = true
	_, ev := c.Insert(0x040, Exclusive, 0) // maps to same single set? size 64, assoc1 -> 2 sets
	// 0x040 maps to set (0x40>>5)%2 = 0, same as 0x000.
	if !ev.Valid || !ev.Dirty {
		t.Errorf("evicted %+v, want dirty 0x000", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(l1Config())
	ln, _ := c.Insert(0x200, Modified, 0)
	ln.Dirty = true
	present, dirty := c.Invalidate(0x210) // same line via offset
	if !present || !dirty {
		t.Errorf("Invalidate = %v,%v; want true,true", present, dirty)
	}
	if p, _ := c.Invalidate(0x200); p {
		t.Error("double invalidate should report absent")
	}
}

func TestPFSAllocatesWithoutFill(t *testing.T) {
	c := New(l1Config())
	ln, _ := c.InsertPFS(0x300, 100)
	if ln.State != Modified || !ln.Dirty {
		t.Errorf("PFS line = %+v, want dirty M", ln)
	}
	st := c.Stats()
	if st.PFSAllocs != 1 || st.Fills != 0 {
		t.Errorf("stats = %+v, want 1 PFS alloc and 0 fills", st)
	}
}

func TestPrefetchedHitCounted(t *testing.T) {
	c := New(l1Config())
	ln, _ := c.Insert(0x400, Exclusive, 0)
	ln.Prefetched = true
	c.Access(0x400, false)
	if c.Stats().PrefetchHits != 1 {
		t.Error("prefetch hit not counted")
	}
	if ln.Prefetched {
		t.Error("prefetched flag should clear on demand hit")
	}
}

func TestDowngrade(t *testing.T) {
	c := New(l1Config())
	c.Insert(0x500, Modified, 0)
	ln := c.Downgrade(0x500)
	if ln == nil || ln.State != Shared {
		t.Errorf("downgrade result %+v", ln)
	}
	if c.Downgrade(0x900) != nil {
		t.Error("downgrade of absent line should return nil")
	}
}

func TestFlushAllReturnsDirtyLines(t *testing.T) {
	c := New(l1Config())
	ln, _ := c.Insert(0x000, Modified, 0)
	ln.Dirty = true
	c.Insert(0x020, Exclusive, 0)
	dirty := c.FlushAll()
	if len(dirty) != 1 || dirty[0] != 0x000 {
		t.Errorf("dirty = %v, want [0x000]", dirty)
	}
	if c.Occupancy() != 0 {
		t.Error("cache not empty after flush")
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate insert")
		}
	}()
	c := New(l1Config())
	c.Insert(0x100, Exclusive, 0)
	c.Insert(0x104, Shared, 0)
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(Config{Name: "t", Size: 1024, Assoc: 4})
		for _, a := range addrs {
			la := mem.Addr(a).Line()
			if c.Lookup(la) == nil {
				c.Insert(la, Exclusive, 0)
			}
		}
		return c.Occupancy() <= 32 // 1024/32 lines
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetSmallerThanCacheNeverEvicts(t *testing.T) {
	// Property: repeatedly touching a working set no larger than the
	// cache with line-sequential addresses causes no evictions after the
	// initial fills (LRU on a power-of-two set count is conflict-free for
	// a contiguous range).
	c := New(l1Config())
	lines := int(c.cfg.Size / mem.LineSize)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			a := mem.Addr(i * mem.LineSize)
			if c.Access(a, false) == nil {
				c.Insert(a, Exclusive, 0)
			}
		}
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Errorf("evictions = %d, want 0", ev)
	}
	if mr := c.Stats().MissRate(); mr > 0.34 {
		t.Errorf("miss rate %.2f too high; compulsory only expected", mr)
	}
}

func TestMissRateMath(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
	s = Stats{Reads: 8, Writes: 2, ReadHits: 5, WriteHits: 1}
	if got := s.MissRate(); got != 0.4 {
		t.Errorf("miss rate = %v, want 0.4", got)
	}
	if got := s.Misses(); got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
}

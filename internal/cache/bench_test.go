package cache

import (
	"testing"

	"repro/internal/mem"
)

// The per-access tag lookup is the hottest path of the simulator; these
// benchmarks track it across the map→array/mask table changes (baseline
// in BENCH_runner.json).

func benchCache() *Cache {
	return New(Config{Name: "l1d", Size: 32 * 1024, Assoc: 2})
}

func BenchmarkAccessHit(b *testing.B) {
	c := benchCache()
	const lines = 256 // resident working set: 256 lines in 512 sets
	for i := 0; i < lines; i++ {
		c.Insert(mem.Addr(1<<20+i*mem.LineSize), Exclusive, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(mem.Addr(1<<20+(i%lines)*mem.LineSize), i&1 == 0)
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := benchCache()
	for i := 0; i < b.N; i++ {
		if c.Lookup(mem.Addr(1<<20+i*mem.LineSize)) != nil {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := benchCache()
	for i := 0; i < b.N; i++ {
		// Walk far past the capacity so every insert evicts.
		c.Insert(mem.Addr(1<<20+i*mem.LineSize), Modified, 0)
	}
}

// Package cache implements the set-associative tag arrays used for every
// cache in the study: the 32 KB 2-way L1 data caches and 16 KB I-caches of
// the cache-coherent model, the 8 KB stack/global cache of the streaming
// model, and the shared 512 KB 16-way L2. It tracks tags, MESI state,
// dirty bits, LRU order and fill completion times — never data, because
// the simulator is functionally decoupled (see internal/mem).
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// State is a MESI coherence state. Caches that are not kept coherent (the
// L2, the streaming model's small cache) use only Invalid/Exclusive/
// Modified, treating Exclusive as plain "valid clean".
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the single-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Line is one cache line's bookkeeping.
type Line struct {
	Addr       mem.Addr // line-aligned address; valid only when State != Invalid
	State      State
	Dirty      bool
	FillDone   sim.Time // time the fill completes; accesses before it wait
	Prefetched bool     // brought in by a prefetcher and not yet demanded
	lastUse    uint64
}

// Stats counts tag-array activity. The coherence layer and energy model
// interpret them.
type Stats struct {
	Reads        uint64 // read lookups (demand)
	Writes       uint64 // write lookups (demand)
	ReadHits     uint64
	WriteHits    uint64
	Fills        uint64 // lines installed
	Writebacks   uint64 // dirty lines evicted
	Evictions    uint64 // total lines evicted (dirty or clean)
	Invalidates  uint64 // lines killed by coherence
	SnoopLookups uint64 // tag probes on behalf of other agents
	PFSAllocs    uint64 // lines allocated without refill (PrepareForStore)
	PrefetchHits uint64 // demand hits on prefetched lines
}

// Add accumulates src into s (aggregating per-core caches).
func (s *Stats) Add(src Stats) {
	s.Reads += src.Reads
	s.Writes += src.Writes
	s.ReadHits += src.ReadHits
	s.WriteHits += src.WriteHits
	s.Fills += src.Fills
	s.Writebacks += src.Writebacks
	s.Evictions += src.Evictions
	s.Invalidates += src.Invalidates
	s.SnoopLookups += src.SnoopLookups
	s.PFSAllocs += src.PFSAllocs
	s.PrefetchHits += src.PrefetchHits
}

// Snapshot emits the counters in a fixed order; the probe layer
// (internal/probe) samples it every epoch to build miss-rate and
// writeback-burst series.
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("reads", float64(s.Reads))
	put("writes", float64(s.Writes))
	put("read_hits", float64(s.ReadHits))
	put("write_hits", float64(s.WriteHits))
	put("fills", float64(s.Fills))
	put("writebacks", float64(s.Writebacks))
	put("evictions", float64(s.Evictions))
	put("invalidates", float64(s.Invalidates))
	put("snoop_lookups", float64(s.SnoopLookups))
	put("prefetch_hits", float64(s.PrefetchHits))
}

// Config sizes a cache.
type Config struct {
	Name     string
	Size     uint64 // bytes
	Assoc    int
	LineSize uint64 // must be mem.LineSize for this study
}

// Cache is a set-associative tag array. The ways of all sets live in
// one flat set-major array and the set index is a mask when the set
// count is a power of two (it always is for the study's Table 2
// geometries), keeping the per-access lookup free of divisions and
// pointer chasing — it is the hottest path of the whole simulator.
type Cache struct {
	cfg     Config
	lines   []Line // nsets * assoc entries, set-major
	assoc   uint64
	nsets   uint64
	setMask uint64 // nsets-1; valid only when pow2
	pow2    bool
	tick    uint64
	stats   Stats
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = mem.LineSize
	}
	if cfg.LineSize != mem.LineSize {
		panic("cache: study uses 32-byte lines everywhere")
	}
	if cfg.Assoc <= 0 || cfg.Size == 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	nlines := cfg.Size / cfg.LineSize
	nsets := nlines / uint64(cfg.Assoc)
	if nsets == 0 || nlines%uint64(cfg.Assoc) != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible into %d-way sets", cfg.Name, nlines, cfg.Assoc))
	}
	return &Cache{
		cfg:     cfg,
		lines:   make([]Line, nlines),
		assoc:   uint64(cfg.Assoc),
		nsets:   nsets,
		setMask: nsets - 1,
		pow2:    nsets&(nsets-1) == 0,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) set(a mem.Addr) []Line {
	idx := uint64(a) >> mem.LineShift
	if c.pow2 {
		idx &= c.setMask
	} else {
		idx %= c.nsets
	}
	base := idx * c.assoc
	return c.lines[base : base+c.assoc]
}

// Lookup probes the tag array for the line holding a, without updating
// statistics. It returns nil on miss.
func (c *Cache) Lookup(a mem.Addr) *Line {
	la := a.Line()
	set := c.set(a)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			return &set[i]
		}
	}
	return nil
}

// Access probes for a demand read or write, updating hit/miss statistics
// and LRU order. It returns the line on a hit, nil on a miss.
func (c *Cache) Access(a mem.Addr, write bool) *Line {
	ln, _ := c.AccessTagged(a, write)
	return ln
}

// AccessTagged is Access, additionally reporting whether the hit landed
// on a line installed by a prefetcher and not yet demanded (the "tag"
// that advances a tagged prefetcher's stream).
func (c *Cache) AccessTagged(a mem.Addr, write bool) (ln *Line, wasPrefetched bool) {
	ln = c.Lookup(a)
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	if ln == nil {
		return nil, false
	}
	if write {
		c.stats.WriteHits++
	} else {
		c.stats.ReadHits++
	}
	if ln.Prefetched {
		ln.Prefetched = false
		wasPrefetched = true
		c.stats.PrefetchHits++
	}
	c.tick++
	ln.lastUse = c.tick
	return ln, wasPrefetched
}

// Snoop probes on behalf of another agent (coherence, DMA), counting a
// snoop lookup. It returns the line or nil.
func (c *Cache) Snoop(a mem.Addr) *Line {
	c.stats.SnoopLookups++
	return c.Lookup(a)
}

// Evicted describes a line displaced by Insert.
type Evicted struct {
	Addr       mem.Addr
	Dirty      bool
	Valid      bool
	Prefetched bool // the victim was prefetched and never demanded
}

// Insert installs the line for a, evicting the LRU way if the set is full.
// The returned Evicted reports what was displaced so the caller can issue
// the writeback. The new line starts with the given state and fill time.
func (c *Cache) Insert(a mem.Addr, st State, fillDone sim.Time) (*Line, Evicted) {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	la := a.Line()
	set := c.set(a)
	victim := &set[0]
	for i := range set {
		ln := &set[i]
		if ln.State != Invalid && ln.Addr == la {
			panic(fmt.Sprintf("cache %s: Insert of already-present line %v", c.cfg.Name, la))
		}
		if ln.State == Invalid {
			victim = ln
			break
		}
		if ln.lastUse < victim.lastUse {
			victim = ln
		}
	}
	var ev Evicted
	if victim.State != Invalid {
		ev = Evicted{Addr: victim.Addr, Dirty: victim.Dirty, Valid: true, Prefetched: victim.Prefetched}
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.Writebacks++
		}
	}
	c.tick++
	*victim = Line{Addr: la, State: st, FillDone: fillDone, lastUse: c.tick}
	c.stats.Fills++
	return victim, ev
}

// InsertPFS allocates and validates a line without refilling it, as the
// MIPS32 "Prepare For Store" instruction does. The line is Modified and
// immediately usable.
func (c *Cache) InsertPFS(a mem.Addr, at sim.Time) (*Line, Evicted) {
	ln, ev := c.Insert(a, Modified, at)
	ln.Dirty = true
	c.stats.PFSAllocs++
	c.stats.Fills-- // PFS is not a fill: no data was moved
	return ln, ev
}

// Invalidate removes the line holding a, if present, returning whether it
// was present and whether it was dirty (the caller decides if the dirty
// data must be transferred).
func (c *Cache) Invalidate(a mem.Addr) (present, dirty bool) {
	ln := c.Lookup(a)
	if ln == nil {
		return false, false
	}
	present, dirty = true, ln.Dirty
	c.stats.Invalidates++
	*ln = Line{}
	return present, dirty
}

// Downgrade moves the line holding a (if present) to Shared, returning the
// line. Dirtiness is cleared by the caller after it writes the data back.
func (c *Cache) Downgrade(a mem.Addr) *Line {
	ln := c.Lookup(a)
	if ln == nil {
		return nil
	}
	ln.State = Shared
	return ln
}

// FlushAll invalidates every line, returning the dirty line addresses in
// an unspecified order. Used by tests and by workload epilogues that
// model cache cleaning.
func (c *Cache) FlushAll() []mem.Addr {
	var dirty []mem.Addr
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.State == Invalid {
			continue
		}
		if ln.Dirty {
			dirty = append(dirty, ln.Addr)
		}
		*ln = Line{}
	}
	return dirty
}

// Lines returns the addresses of all valid lines, in set order.
func (c *Cache) Lines() []mem.Addr {
	var out []mem.Addr
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			out = append(out, c.lines[i].Addr)
		}
	}
	return out
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			n++
		}
	}
	return n
}

// MissRate returns demand misses over demand accesses.
func (s Stats) MissRate() float64 {
	acc := s.Reads + s.Writes
	if acc == 0 {
		return 0
	}
	hits := s.ReadHits + s.WriteHits
	return float64(acc-hits) / float64(acc)
}

// Misses returns demand misses.
func (s Stats) Misses() uint64 {
	return s.Reads + s.Writes - s.ReadHits - s.WriteHits
}

package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// refCache is an oracle: a fully-associative-per-set model tracking the
// same geometry with straightforward maps, used to cross-check the
// packed implementation under random operation sequences.
type refCache struct {
	nsets uint64
	assoc int
	sets  []map[mem.Addr]int // line -> lastUse
	clock int
}

func newRefCache(size uint64, assoc int) *refCache {
	nsets := size / mem.LineSize / uint64(assoc)
	r := &refCache{nsets: nsets, assoc: assoc}
	for i := uint64(0); i < nsets; i++ {
		r.sets = append(r.sets, map[mem.Addr]int{})
	}
	return r
}

func (r *refCache) set(a mem.Addr) map[mem.Addr]int {
	return r.sets[(uint64(a)>>mem.LineShift)%r.nsets]
}

func (r *refCache) access(a mem.Addr) bool {
	la := a.Line()
	s := r.set(a)
	if _, ok := s[la]; ok {
		r.clock++
		s[la] = r.clock
		return true
	}
	return false
}

func (r *refCache) insert(a mem.Addr) {
	la := a.Line()
	s := r.set(a)
	if len(s) == r.assoc {
		// Evict LRU.
		var victim mem.Addr
		oldest := int(^uint(0) >> 1)
		for addr, use := range s {
			if use < oldest {
				oldest, victim = use, addr
			}
		}
		delete(s, victim)
	}
	r.clock++
	s[la] = r.clock
}

// TestAgainstReferenceModel drives both implementations with the same
// random trace and requires identical hit/miss behavior.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{Name: "dut", Size: 2048, Assoc: 4})
		r := newRefCache(2048, 4)
		for _, op := range ops {
			a := mem.Addr(op) * 8 // 512 distinct lines over 64-line cache
			gotHit := c.Access(a, false) != nil
			wantHit := r.access(a)
			if gotHit != wantHit {
				return false
			}
			if !gotHit {
				c.Insert(a, Exclusive, 0)
				r.insert(a)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStatsBalance: across any op sequence, fills == evictions + live
// lines, and hits + misses == accesses.
func TestStatsBalance(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{Name: "dut", Size: 1024, Assoc: 2})
		for _, op := range ops {
			a := mem.Addr(op) * 16
			write := op%3 == 0
			if c.Access(a, write) == nil {
				ln, _ := c.Insert(a, Exclusive, 0)
				if write {
					ln.Dirty = true
				}
			}
		}
		st := c.Stats()
		if st.Fills != st.Evictions+uint64(c.Occupancy()) {
			return false
		}
		hits := st.ReadHits + st.WriteHits
		return hits+st.Misses() == st.Reads+st.Writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable campaign clock: tests advance it by hand
// so queue waits, ETAs and elapsed times are exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// testCampaign returns a campaign on a fake clock starting at a fixed
// instant.
func testCampaign() (*Campaign, *fakeClock) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	c := NewCampaign()
	c.now = fc.now
	c.begun = fc.t
	return c, fc
}

// conserved checks the span-conservation invariant on a snapshot:
// every opened span is in exactly one state.
func conserved(s Snapshot) bool {
	return s.Enqueued == s.Queued+s.Running+s.Retrying+s.Done+s.Failed+s.MemoSpan+s.StoreSpan
}

// TestStoreHitSpanAndStats pins the store-hit terminal state: it
// conserves spans, rolls up per figure, stays out of the ETA rate, and
// the attached StoreStats provider surfaces in snapshots.
func TestStoreHitSpanAndStats(t *testing.T) {
	c, fc := testCampaign()
	c.SetStoreStats(func() StoreStats { return StoreStats{Hits: 3, Misses: 1, Puts: 1} })
	c.BeginGroup("fig2")
	hit := c.Enqueue("fir", "cfg")
	sim := c.Enqueue("aes", "cfg")
	hit.Start()
	hit.StoreHit()

	s := c.Snapshot(true)
	if s.StoreSpan != 1 || !conserved(s) {
		t.Fatalf("after store hit: %+v", s)
	}
	if s.Spans[0].State != "store-hit" {
		t.Fatalf("span state: %+v", s.Spans[0])
	}
	if s.Store == nil || s.Store.Hits != 3 {
		t.Fatalf("store stats block: %+v", s.Store)
	}
	if s.Figures[0].StoreHits != 1 {
		t.Fatalf("figure rollup: %+v", s.Figures[0])
	}
	// Only the unsimulated job remains; the store hit finished nothing,
	// so the ETA is still unknown.
	fc.advance(time.Second)
	if eta := c.Snapshot(false).ETASeconds; eta != -1 {
		t.Fatalf("eta after store hit = %v, want -1 (no real completion yet)", eta)
	}
	sim.Start()
	sim.Done()
	if eta := c.Snapshot(false).ETASeconds; eta != 0 {
		t.Fatalf("eta after completion = %v, want 0", eta)
	}
}

// TestSpanLifecycle walks one job through queued → running → retrying →
// running → done and checks every intermediate snapshot.
func TestSpanLifecycle(t *testing.T) {
	c, fc := testCampaign()
	c.BeginGroup("fig2")
	sp := c.Enqueue("fir", "CC 4 cores @800 MHz")

	s := c.Snapshot(true)
	if s.Queued != 1 || s.Enqueued != 1 || s.MemoMisses != 1 {
		t.Fatalf("after enqueue: %+v", s)
	}
	if s.Spans[0].State != "queued" || s.Spans[0].Workload != "fir" {
		t.Fatalf("span snapshot: %+v", s.Spans[0])
	}

	fc.advance(2 * time.Second)
	if qw := sp.Start(); qw != 2*time.Second {
		t.Fatalf("queue wait = %v, want 2s", qw)
	}
	s = c.Snapshot(true)
	if s.Running != 1 || s.Queued != 0 {
		t.Fatalf("after start: %+v", s)
	}
	if s.Spans[0].QueueWaitNS != (2 * time.Second).Nanoseconds() {
		t.Fatalf("span queue wait = %d", s.Spans[0].QueueWaitNS)
	}

	fc.advance(time.Second)
	sp.Attempt(time.Second)
	sp.Retry()
	s = c.Snapshot(false)
	if s.Retrying != 1 || s.Retries != 1 {
		t.Fatalf("after retry: %+v", s)
	}

	sp.Start() // retry start must not overwrite the queue wait
	fc.advance(time.Second)
	sp.Attempt(time.Second)
	sp.Done()

	s = c.Snapshot(true)
	if s.Done != 1 || s.Running != 0 || s.Retrying != 0 {
		t.Fatalf("after done: %+v", s)
	}
	got := s.Spans[0]
	if got.State != "done" || got.Attempts != 2 || len(got.AttemptsNS) != 2 {
		t.Fatalf("final span: %+v", got)
	}
	if got.QueueWaitNS != (2 * time.Second).Nanoseconds() {
		t.Fatalf("queue wait overwritten on retry start: %d", got.QueueWaitNS)
	}
	if got.EndedNS != (4 * time.Second).Nanoseconds() {
		t.Fatalf("ended = %dns, want 4s", got.EndedNS)
	}
	if !conserved(s) {
		t.Fatalf("conservation broken: %+v", s)
	}
}

// TestFailCountsWatchdogAborts pins the timeout→watchdog attribution
// and the figure rollup of failures.
func TestFailCountsWatchdogAborts(t *testing.T) {
	c, _ := testCampaign()
	c.BeginGroup("fig4")
	sp := c.Enqueue("stall", "cfg")
	sp.Start()
	sp.Fail("timeout")
	sp2 := c.Enqueue("dead", "cfg")
	sp2.Start()
	sp2.Fail("deadlock")

	s := c.Snapshot(true)
	if s.Failed != 2 || s.WatchdogAborts != 1 {
		t.Fatalf("failed=%d watchdog=%d, want 2/1", s.Failed, s.WatchdogAborts)
	}
	if s.Spans[0].ErrKind != "timeout" || s.Spans[1].ErrKind != "deadlock" {
		t.Fatalf("err kinds: %+v", s.Spans)
	}
	if len(s.Figures) != 1 || s.Figures[0].Failed != 2 || s.Figures[0].Total != 2 {
		t.Fatalf("figure rollup: %+v", s.Figures)
	}
}

// TestSeedAndMemoHit pins the two memo paths: Seed opens a terminal
// memo-hit span (a resume replay), MemoHit only bumps the counter (an
// in-campaign duplicate).
func TestSeedAndMemoHit(t *testing.T) {
	c, _ := testCampaign()
	c.BeginGroup("table3")
	c.Seed("fir", "cfg")
	c.MemoHit()
	c.MemoHit()

	s := c.Snapshot(true)
	if s.Enqueued != 1 || s.MemoSpan != 1 || s.MemoHits != 2 || s.MemoMisses != 0 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Spans[0].State != "memo-hit" || s.Spans[0].EndedNS != s.Spans[0].EnqueuedNS {
		t.Fatalf("seeded span: %+v", s.Spans[0])
	}
	if s.Figures[0].MemoHits != 1 {
		t.Fatalf("figure memo rollup: %+v", s.Figures[0])
	}
	if !conserved(s) {
		t.Fatalf("conservation broken: %+v", s)
	}
}

// TestETA pins the three ETA regimes: unknown before anything finishes,
// rate-extrapolated mid-campaign, zero once nothing remains.
func TestETA(t *testing.T) {
	c, fc := testCampaign()
	sps := make([]*Span, 4)
	for i := range sps {
		sps[i] = c.Enqueue("fir", "cfg")
	}

	fc.advance(10 * time.Second)
	if eta := c.Snapshot(false).ETASeconds; eta != -1 {
		t.Fatalf("eta with nothing finished = %v, want -1", eta)
	}

	sps[0].Start()
	sps[0].Done() // 1 finished in 10s → rate 0.1/s, 3 remaining → 30s
	if eta := c.Snapshot(false).ETASeconds; eta != 30 {
		t.Fatalf("eta = %v, want 30", eta)
	}

	for _, sp := range sps[1:] {
		sp.Start()
		sp.Done()
	}
	if eta := c.Snapshot(false).ETASeconds; eta != 0 {
		t.Fatalf("eta with nothing remaining = %v, want 0", eta)
	}
}

// TestErrCellAttribution pins ErrCell to the figure group current at
// render time, not the one that admitted the job.
func TestErrCellAttribution(t *testing.T) {
	c, _ := testCampaign()
	c.BeginGroup("fig2")
	sp := c.Enqueue("dead", "cfg")
	sp.Start()
	sp.Fail("deadlock")
	c.BeginGroup("fig3")
	c.ErrCell() // the shared failed job poisons a fig3 cell too

	s := c.Snapshot(false)
	if s.ErrCells != 1 {
		t.Fatalf("err cells = %d, want 1", s.ErrCells)
	}
	var fig3 *FigureSnapshot
	for i := range s.Figures {
		if s.Figures[i].Figure == "fig3" {
			fig3 = &s.Figures[i]
		}
	}
	if fig3 == nil || fig3.ErrCells != 1 {
		t.Fatalf("fig3 rollup: %+v", s.Figures)
	}
}

// TestNilCampaignIsNoOp pins the package-wide nil contract: every
// method on a nil *Campaign and nil *Span is safe, and a nil snapshot
// reports an unknown ETA.
func TestNilCampaignIsNoOp(t *testing.T) {
	var c *Campaign
	c.SetWorkers(4)
	c.BeginGroup("fig2")
	sp := c.Enqueue("fir", "cfg")
	if sp != nil {
		t.Fatal("nil campaign returned a non-nil span")
	}
	c.Seed("fir", "cfg")
	c.MemoHit()
	c.ErrCell()
	c.SetComplete()
	sp.Start()
	sp.Retry()
	sp.Attempt(time.Second)
	sp.Done()
	sp.Fail("timeout")
	if err := c.WriteMetrics(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
	if s := c.Snapshot(true); s.ETASeconds != -1 || s.Enqueued != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}

	var sl *StatusLine
	sl.Start(0)
	sl.Stop()
}

// TestConservationUnderScrape hammers a campaign from writer goroutines
// while scraping snapshots and metrics concurrently; under -race this
// doubles as the data-race proof for the one-mutex design. Every
// observed snapshot must satisfy the conservation invariant.
func TestConservationUnderScrape(t *testing.T) {
	c, _ := testCampaign()
	c.now = time.Now // real clock: interleavings matter more than values
	const writers, jobsPer = 4, 50

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := c.Snapshot(true)
			if !conserved(s) {
				t.Errorf("conservation broken: enq=%d q=%d r=%d rt=%d d=%d f=%d m=%d",
					s.Enqueued, s.Queued, s.Running, s.Retrying, s.Done, s.Failed, s.MemoSpan)
				return
			}
			if err := c.WriteMetrics(&bytes.Buffer{}); err != nil {
				t.Errorf("WriteMetrics: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < jobsPer; j++ {
				sp := c.Enqueue("fir", "cfg")
				sp.Start()
				switch j % 3 {
				case 0:
					sp.Done()
				case 1:
					sp.Retry()
					sp.Start()
					sp.Done()
				case 2:
					sp.Fail("timeout")
				}
				c.MemoHit()
			}
		}(w)
	}
	wg.Wait() // writers first; then stop the scraper
	close(stop)
	scraper.Wait()

	s := c.Snapshot(false)
	if s.Enqueued != writers*jobsPer || !conserved(s) {
		t.Fatalf("final snapshot: %+v", s)
	}
	if s.Done != writers*(jobsPer-jobsPer/3) && s.Failed == 0 {
		t.Fatalf("final tallies: %+v", s)
	}
}

// TestStatusLine pins the TTY line's shape and the writer interleaving
// contract: payload lines pass through intact between redraws.
func TestStatusLine(t *testing.T) {
	c, fc := testCampaign()
	sp := c.Enqueue("fir", "cfg")
	sp.Start()
	sp.Done()
	c.Enqueue("aes", "cfg")
	fc.advance(time.Second)

	var buf bytes.Buffer
	sl := NewStatusLine(&buf, c)
	sl.Start(time.Hour) // tick far away; draws happen via Writer
	w := sl.Writer()
	if _, err := w.Write([]byte("fig2 row\n")); err != nil {
		t.Fatal(err)
	}
	sl.Stop()
	sl.Stop() // idempotent

	out := buf.String()
	if !strings.Contains(out, "fig2 row\n") {
		t.Fatalf("payload lost: %q", out)
	}
	if !strings.Contains(out, "1/2 done") {
		t.Fatalf("status line missing tally: %q", out)
	}
	if !strings.HasSuffix(out, "\r\x1b[K") {
		t.Fatalf("Stop did not clear the line: %q", out)
	}
}

// TestIsTerminal: bytes.Buffer is not a terminal; a pipe is a *os.File
// but still not a char device.
func TestIsTerminal(t *testing.T) {
	if IsTerminal(&bytes.Buffer{}) {
		t.Fatal("buffer reported as terminal")
	}
}

package telemetry

import "time"

// SpanSnapshot is one job's lifecycle record as served by /progress.
// Times are nanoseconds; zero means "not yet" (e.g. StartedNS while
// queued, EndedNS while running).
type SpanSnapshot struct {
	ID          int     `json:"id"`
	Workload    string  `json:"workload"`
	Config      string  `json:"config,omitempty"`
	Figure      string  `json:"figure,omitempty"`
	State       string  `json:"state"`
	EnqueuedNS  int64   `json:"enqueued_ns"`
	StartedNS   int64   `json:"started_ns,omitempty"`
	EndedNS     int64   `json:"ended_ns,omitempty"`
	QueueWaitNS int64   `json:"queue_wait_ns,omitempty"`
	Attempts    int     `json:"attempts,omitempty"`
	AttemptsNS  []int64 `json:"attempts_ns,omitempty"`
	ErrKind     string  `json:"err_kind,omitempty"`
}

// FigureSnapshot is one figure's completion rollup.
type FigureSnapshot struct {
	Figure    string `json:"figure"`
	Total     int    `json:"total"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	MemoHits  int    `json:"memo_hits"`
	StoreHits int    `json:"store_hits"`
	ErrCells  int    `json:"err_cells"`
}

// Snapshot is the /progress payload: campaign counters and gauges, the
// per-figure rollup, and the full span table, captured atomically under
// the campaign mutex.
type Snapshot struct {
	Complete  bool  `json:"complete"`
	ElapsedNS int64 `json:"elapsed_ns"`
	Workers   int   `json:"workers,omitempty"`

	Enqueued int `json:"enqueued"` // spans opened (fresh + seeded)
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Retrying int `json:"retrying"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	MemoSpan  int `json:"memo_seeded"`
	StoreSpan int `json:"store_hits_spans"`

	MemoHits       uint64 `json:"memo_hits"`
	MemoMisses     uint64 `json:"memo_misses"`
	Retries        uint64 `json:"retries"`
	WatchdogAborts uint64 `json:"watchdog_aborts"`
	ErrCells       uint64 `json:"err_cells"`

	// ETASeconds extrapolates the remaining fresh jobs at the observed
	// completion rate (finished-per-elapsed). Negative means unknown
	// (nothing has finished yet).
	ETASeconds float64 `json:"eta_seconds"`

	// Store holds the persistent result store's counters while one is
	// attached (-store); absent otherwise.
	Store *StoreStats `json:"store,omitempty"`

	// TxnClasses is the transaction tracer's per-class rollup (counts,
	// retained exemplars, campaign-wide slowest transaction) while any
	// run recorded one; absent otherwise.
	TxnClasses []TxnClassSnapshot `json:"txn_classes,omitempty"`

	// LatencyHists carries the campaign latency histograms for the
	// metrics renderer; /progress omits them (the JSON payload would
	// dwarf the span table).
	LatencyHists []LatencyClassSnapshot `json:"-"`

	Figures []FigureSnapshot `json:"figures,omitempty"`
	Spans   []SpanSnapshot   `json:"spans,omitempty"`
}

// nsOf converts a span-relative timestamp to wall nanoseconds since the
// campaign began; zero time stays zero.
func nsOf(begun, t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Sub(begun).Nanoseconds()
}

// Snapshot captures the whole campaign state at one instant. withSpans
// false omits the span table (the TTY status line only needs the
// aggregates; /progress serves the full table).
func (c *Campaign) Snapshot(withSpans bool) Snapshot {
	if c == nil {
		return Snapshot{ETASeconds: -1}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	elapsed := c.now().Sub(c.begun)
	snap := Snapshot{
		Complete:  c.complete,
		ElapsedNS: elapsed.Nanoseconds(),
		Workers:   c.workers,

		Enqueued: len(c.spans),
		Queued:   c.byState[StateQueued],
		Running:  c.byState[StateRunning],
		Retrying: c.byState[StateRetrying],
		Done:      c.byState[StateDone],
		Failed:    c.byState[StateFailed],
		MemoSpan:  c.byState[StateMemoHit],
		StoreSpan: c.byState[StateStoreHit],

		MemoHits:       c.memoHits,
		MemoMisses:     c.memoMisses,
		Retries:        c.retries,
		WatchdogAborts: c.watchdogAborts,
		ErrCells:       c.errCells,
	}

	if c.storeStats != nil {
		st := c.storeStats()
		snap.Store = &st
	}

	// The ETA extrapolates only real simulations: memo-seeded and
	// store-hit spans are terminal the moment they resolve and would
	// otherwise inflate the completion rate toward zero ETA.
	finished := snap.Done + snap.Failed
	remaining := snap.Queued + snap.Running + snap.Retrying
	switch {
	case remaining == 0:
		snap.ETASeconds = 0
	case finished == 0 || elapsed <= 0:
		snap.ETASeconds = -1
	default:
		rate := float64(finished) / elapsed.Seconds()
		snap.ETASeconds = float64(remaining) / rate
	}

	for _, class := range c.txnOrder {
		a := c.txn[class]
		snap.TxnClasses = append(snap.TxnClasses, TxnClassSnapshot{
			Class: class, Count: a.count, Exemplars: a.exemplars,
			SlowestID: a.slowestID, SlowestFS: a.slowestFS,
		})
	}
	for i, class := range LatencyClasses {
		if c.latency[i].Count() > 0 {
			snap.LatencyHists = append(snap.LatencyHists, LatencyClassSnapshot{Class: class, Hist: c.latency[i]})
		}
	}

	for _, fig := range c.figOrder {
		f := c.figures[fig]
		snap.Figures = append(snap.Figures, FigureSnapshot{
			Figure:    fig,
			Total:     f.total,
			Done:      f.done,
			Failed:    f.failed,
			MemoHits:  f.memo,
			StoreHits: f.store,
			ErrCells:  f.errCells,
		})
	}

	if withSpans {
		snap.Spans = make([]SpanSnapshot, 0, len(c.spans))
		for _, s := range c.spans {
			snap.Spans = append(snap.Spans, SpanSnapshot{
				ID:          s.id,
				Workload:    s.workload,
				Config:      s.config,
				Figure:      s.figure,
				State:       s.state.String(),
				EnqueuedNS:  nsOf(c.begun, s.enqueued),
				StartedNS:   nsOf(c.begun, s.started),
				EndedNS:     nsOf(c.begun, s.ended),
				QueueWaitNS: s.queueWait.Nanoseconds(),
				Attempts:    s.attempts,
				AttemptsNS:  append([]int64(nil), s.attemptNS...),
				ErrKind:     s.errKind,
			})
		}
	}
	return snap
}

package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestEscapeLabel pins the three escapes of the exposition format.
func TestEscapeLabel(t *testing.T) {
	got := escapeLabel("a\\b\"c\nd")
	want := `a\\b\"c\nd`
	if got != want {
		t.Fatalf("escapeLabel = %q, want %q", got, want)
	}
}

// TestWriteMetricsGolden drives a deterministic campaign on a fake
// clock through every counter and gauge, then compares the full
// exposition text byte for byte: metric names, HELP/TYPE headers,
// label escaping (the second figure's label needs all three escapes),
// and value formatting.
func TestWriteMetricsGolden(t *testing.T) {
	c, fc := testCampaign()
	c.SetWorkers(4)

	c.SetStoreStats(func() StoreStats {
		return StoreStats{Records: 7, Bytes: 4096, Hits: 1, Misses: 2, Puts: 3,
			Evictions: 4, Compactions: 1, Recovered: 5, Corrupt: 1, TruncatedBytes: 12}
	})

	c.BeginGroup("fig2")
	spA := c.Enqueue("fir", "CC 4 cores @800 MHz bw=1600 pf=0")
	spB := c.Enqueue("aes", "STR 8 cores @3200 MHz bw=6400 pf=0")
	spC := c.Enqueue("fem", "CC 2 cores @800 MHz bw=1600 pf=0")
	c.Seed("fir", "CC 1 cores @800 MHz bw=1600 pf=0")
	c.MemoHit()

	fc.advance(1 * time.Second)
	spA.Start()
	fc.advance(2 * time.Second)
	spA.Done()
	spB.Start()
	spB.Retry()
	spB.Start()
	fc.advance(1 * time.Second)
	spB.Fail("timeout")
	spC.Start()
	spC.StoreHit()

	c.BeginGroup("tbl\"3\\x\ny")
	c.ErrCell()

	// Campaign latency histograms (bucket replay) and transaction-tracer
	// rollups; the unknown class must be ignored.
	c.RecordLatency("read_miss", 5, 1)
	c.RecordLatency("read_miss", 100, 3)
	c.RecordLatency("dma_get", 1, 2)
	c.RecordLatency("bogus", 9, 9)
	c.RecordTxnClass("read_miss", 42, 4, 17, 123456)
	c.RecordTxnClass("dma_get", 7, 2, 99, 999999)
	c.RecordTxnClass("read_miss", 8, 4, 3, 200000)

	fc.advance(6 * time.Second)
	c.SetComplete()

	var b strings.Builder
	if err := c.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP memsim_jobs_enqueued_total Jobs admitted to the campaign (fresh simulations plus manifest-seeded results).
# TYPE memsim_jobs_enqueued_total counter
memsim_jobs_enqueued_total 4
# HELP memsim_jobs_done_total Jobs whose simulation completed successfully in this campaign.
# TYPE memsim_jobs_done_total counter
memsim_jobs_done_total 1
# HELP memsim_jobs_failed_total Jobs that failed after exhausting retries.
# TYPE memsim_jobs_failed_total counter
memsim_jobs_failed_total 1
# HELP memsim_jobs_memo_seeded_total Jobs answered by replaying a previous campaign's manifest (-resume).
# TYPE memsim_jobs_memo_seeded_total counter
memsim_jobs_memo_seeded_total 1
# HELP memsim_jobs_store_hit_total Jobs answered by the persistent result store (-store) without simulating.
# TYPE memsim_jobs_store_hit_total counter
memsim_jobs_store_hit_total 1
# HELP memsim_memo_hits_total Run requests answered from the in-campaign memo table.
# TYPE memsim_memo_hits_total counter
memsim_memo_hits_total 1
# HELP memsim_memo_misses_total Run requests that admitted a fresh simulation.
# TYPE memsim_memo_misses_total counter
memsim_memo_misses_total 3
# HELP memsim_job_retries_total Retry attempts started after retryable failures.
# TYPE memsim_job_retries_total counter
memsim_job_retries_total 1
# HELP memsim_watchdog_aborts_total Jobs aborted by the per-job watchdog timeout.
# TYPE memsim_watchdog_aborts_total counter
memsim_watchdog_aborts_total 1
# HELP memsim_err_cells_total Figure cells rendered as ERR because their job failed.
# TYPE memsim_err_cells_total counter
memsim_err_cells_total 1
# HELP memsim_workers_busy Worker slots currently running a simulation attempt.
# TYPE memsim_workers_busy gauge
memsim_workers_busy 0
# HELP memsim_workers Size of the worker pool.
# TYPE memsim_workers gauge
memsim_workers 4
# HELP memsim_queue_depth Jobs admitted and waiting for a worker slot.
# TYPE memsim_queue_depth gauge
memsim_queue_depth 0
# HELP memsim_inflight_keys Singleflight keys not yet resolved (queued + running + retrying).
# TYPE memsim_inflight_keys gauge
memsim_inflight_keys 0
# HELP memsim_campaign_elapsed_seconds Wall time since the campaign began.
# TYPE memsim_campaign_elapsed_seconds gauge
memsim_campaign_elapsed_seconds 10
# HELP memsim_campaign_eta_seconds Estimated seconds to finish the remaining jobs at the observed rate (-1 = unknown).
# TYPE memsim_campaign_eta_seconds gauge
memsim_campaign_eta_seconds 0
# HELP memsim_campaign_complete 1 once every figure has rendered and no further transitions will arrive.
# TYPE memsim_campaign_complete gauge
memsim_campaign_complete 1
# HELP memsim_store_hits_total Result-store lookups answered by a verified on-disk record.
# TYPE memsim_store_hits_total counter
memsim_store_hits_total 1
# HELP memsim_store_misses_total Result-store lookups that found no usable record.
# TYPE memsim_store_misses_total counter
memsim_store_misses_total 2
# HELP memsim_store_puts_total Records appended to the result-store journal.
# TYPE memsim_store_puts_total counter
memsim_store_puts_total 3
# HELP memsim_store_put_errors_total Record appends that failed and were rolled back.
# TYPE memsim_store_put_errors_total counter
memsim_store_put_errors_total 0
# HELP memsim_store_evictions_total Records dropped by the size-capped LRU compaction.
# TYPE memsim_store_evictions_total counter
memsim_store_evictions_total 4
# HELP memsim_store_compactions_total Atomic journal rewrites triggered by the size cap.
# TYPE memsim_store_compactions_total counter
memsim_store_compactions_total 1
# HELP memsim_store_corrupt_records_total Corrupt records detected and quarantined (never served).
# TYPE memsim_store_corrupt_records_total counter
memsim_store_corrupt_records_total 1
# HELP memsim_store_recovered_records_total Records restored by the opening recovery scan.
# TYPE memsim_store_recovered_records_total counter
memsim_store_recovered_records_total 5
# HELP memsim_store_truncated_bytes_total Torn-tail bytes truncated during recovery.
# TYPE memsim_store_truncated_bytes_total counter
memsim_store_truncated_bytes_total 12
# HELP memsim_store_records Records currently indexed in the store.
# TYPE memsim_store_records gauge
memsim_store_records 7
# HELP memsim_store_bytes Journal size in bytes.
# TYPE memsim_store_bytes gauge
memsim_store_bytes 4096
# HELP memsim_latency_cycles Campaign-wide memory service-time distributions in core cycles, by latency class.
# TYPE memsim_latency_cycles histogram
memsim_latency_cycles_bucket{class="read_miss",le="8"} 1
memsim_latency_cycles_bucket{class="read_miss",le="128"} 4
memsim_latency_cycles_bucket{class="read_miss",le="+Inf"} 4
memsim_latency_cycles_sum{class="read_miss"} 305
memsim_latency_cycles_count{class="read_miss"} 4
memsim_latency_cycles_bucket{class="dma_get",le="2"} 2
memsim_latency_cycles_bucket{class="dma_get",le="+Inf"} 2
memsim_latency_cycles_sum{class="dma_get"} 2
memsim_latency_cycles_count{class="dma_get"} 2
# HELP memsim_txn_transactions_total Transactions observed by the per-run tracers, by latency class.
# TYPE memsim_txn_transactions_total counter
memsim_txn_transactions_total{class="read_miss"} 50
memsim_txn_transactions_total{class="dma_get"} 7
# HELP memsim_txn_exemplars Worst-K exemplar transaction trees retained across runs, by latency class.
# TYPE memsim_txn_exemplars gauge
memsim_txn_exemplars{class="read_miss"} 8
memsim_txn_exemplars{class="dma_get"} 2
# HELP memsim_txn_slowest_latency_fs End-to-end latency of the campaign's slowest transaction per class, in femtoseconds.
# TYPE memsim_txn_slowest_latency_fs gauge
memsim_txn_slowest_latency_fs{class="read_miss"} 200000
memsim_txn_slowest_latency_fs{class="dma_get"} 999999
# HELP memsim_txn_slowest_id Trace ID of the campaign's slowest transaction per class (pair with the run's -txn-trace sink).
# TYPE memsim_txn_slowest_id gauge
memsim_txn_slowest_id{class="read_miss"} 3
memsim_txn_slowest_id{class="dma_get"} 99
# HELP memsim_figure_jobs_total Jobs attributed to each figure, by terminal state.
# TYPE memsim_figure_jobs_total counter
memsim_figure_jobs_total{figure="fig2",state="done"} 1
memsim_figure_jobs_total{figure="fig2",state="failed"} 1
memsim_figure_jobs_total{figure="fig2",state="memo-hit"} 1
memsim_figure_jobs_total{figure="fig2",state="store-hit"} 1
memsim_figure_jobs_total{figure="tbl\"3\\x\ny",state="done"} 0
memsim_figure_jobs_total{figure="tbl\"3\\x\ny",state="failed"} 0
memsim_figure_jobs_total{figure="tbl\"3\\x\ny",state="memo-hit"} 0
memsim_figure_jobs_total{figure="tbl\"3\\x\ny",state="store-hit"} 0
# HELP memsim_figure_jobs_pending Jobs attributed to each figure not yet in a terminal state.
# TYPE memsim_figure_jobs_pending gauge
memsim_figure_jobs_pending{figure="fig2"} 0
memsim_figure_jobs_pending{figure="tbl\"3\\x\ny"} 0
# HELP memsim_figure_err_cells_total ERR cells rendered per figure.
# TYPE memsim_figure_err_cells_total counter
memsim_figure_err_cells_total{figure="fig2"} 0
memsim_figure_err_cells_total{figure="tbl\"3\\x\ny"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

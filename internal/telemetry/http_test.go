package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// get fetches a path from the server, returning status, content type
// and body.
func get(t *testing.T, s *Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestServeEndpoints exercises the live HTTP surface end to end:
// /metrics serves the exposition format with its versioned content
// type, /progress serves a parseable JSON snapshot with the span table,
// /debug/pprof answers, and /quit releases WaitQuit so -http-linger can
// end early.
func TestServeEndpoints(t *testing.T) {
	c, _ := testCampaign()
	c.SetWorkers(2)
	c.BeginGroup("fig2")
	sp := c.Enqueue("fir", "cfg")
	sp.Start()
	sp.Done()
	c.SetComplete()

	s, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, ct, body := get(t, s, "/metrics")
	if code != 200 || ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics: code=%d content-type=%q", code, ct)
	}
	if !strings.Contains(body, "memsim_jobs_done_total 1") {
		t.Fatalf("/metrics missing contract metric:\n%s", body)
	}

	code, ct, body = get(t, s, "/progress")
	if code != 200 || ct != "application/json" {
		t.Fatalf("/progress: code=%d content-type=%q", code, ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if !snap.Complete || snap.Done != 1 || len(snap.Spans) != 1 {
		t.Fatalf("/progress snapshot: %+v", snap)
	}
	if snap.Spans[0].Workload != "fir" || snap.Spans[0].State != "done" {
		t.Fatalf("/progress span: %+v", snap.Spans[0])
	}

	if code, _, _ := get(t, s, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}

	// /quit must release a long WaitQuit well before its deadline.
	done := make(chan struct{})
	go func() {
		s.WaitQuit(time.Minute)
		close(done)
	}()
	if code, _, body := get(t, s, "/quit"); code != 200 || body != "bye\n" {
		t.Fatalf("/quit: code=%d body=%q", code, body)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitQuit not released by /quit")
	}
}

// TestServerCloseIdempotent pins Close on nil and after double call,
// and WaitQuit's immediate return for non-positive lingers.
func TestServerCloseIdempotent(t *testing.T) {
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	nilSrv.WaitQuit(time.Second)
	if nilSrv.Addr() != "" {
		t.Fatal("nil Addr not empty")
	}

	s, err := Serve("127.0.0.1:0", nil) // nil campaign: endpoints still answer
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := get(t, s, "/metrics"); code != 200 {
		t.Fatalf("/metrics on nil campaign: code=%d", code)
	}
	s.WaitQuit(0) // returns immediately
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("second Close: %v", err)
	}
}

package telemetry

import "repro/internal/stats"

// LatencyClasses are the per-class campaign latency histograms exported
// as the memsim_latency_cycles family, in render order. They mirror the
// cycle ledger's headline service-time metrics; classes outside this
// list are ignored by RecordLatency.
var LatencyClasses = []string{"read_miss", "write_miss", "dma_get", "dma_put"}

func latencyIndex(class string) int {
	for i, c := range LatencyClasses {
		if c == class {
			return i
		}
	}
	return -1
}

// RecordLatency merges count observations of one latency value (in core
// cycles) into the campaign-wide histogram for class. The runner calls
// it per report bucket, replaying each run's power-of-two latency
// distribution into the campaign aggregate; unknown classes are
// ignored. Purely observational, like every Campaign method.
func (c *Campaign) RecordLatency(class string, cycles, count uint64) {
	if c == nil {
		return
	}
	i := latencyIndex(class)
	if i < 0 {
		return
	}
	c.mu.Lock()
	c.latency[i].RecordN(cycles, count)
	c.mu.Unlock()
}

// txnAgg aggregates one transaction class across runs (guarded by mu).
type txnAgg struct {
	count     uint64 // transactions observed
	exemplars int    // worst-K trees retained across runs
	slowestID uint64 // trace ID of the slowest transaction seen
	slowestFS uint64 // its end-to-end latency
}

// RecordTxnClass folds one run's transaction-tracer summary for a class
// into the campaign rollup: the observation count accumulates, the
// exemplar count accumulates (each run retains its own worst-K trees),
// and the campaign-wide slowest transaction is kept by latency with the
// lower trace ID as the deterministic tiebreak.
func (c *Campaign) RecordTxnClass(class string, count uint64, exemplars int, slowestID, slowestFS uint64) {
	if c == nil || count == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.txn == nil {
		c.txn = map[string]*txnAgg{}
	}
	a, ok := c.txn[class]
	if !ok {
		a = &txnAgg{}
		c.txn[class] = a
		c.txnOrder = append(c.txnOrder, class)
	}
	a.count += count
	a.exemplars += exemplars
	if slowestFS > a.slowestFS || (slowestFS == a.slowestFS && (a.slowestID == 0 || slowestID < a.slowestID)) {
		a.slowestFS = slowestFS
		a.slowestID = slowestID
	}
}

// TxnClassSnapshot is one transaction class's campaign rollup as served
// by /progress and rendered on /metrics.
type TxnClassSnapshot struct {
	Class     string `json:"class"`
	Count     uint64 `json:"count"`
	Exemplars int    `json:"exemplars"`
	SlowestID uint64 `json:"slowest_id,omitempty"`
	SlowestFS uint64 `json:"slowest_fs,omitempty"`
}

// LatencyClassSnapshot carries one class's campaign-wide latency
// histogram for the metrics renderer (not part of the JSON payload —
// /progress serves the txn rollup, /metrics the full distribution).
type LatencyClassSnapshot struct {
	Class string
	Hist  stats.Histogram
}

// writeLatencyFamily renders the campaign latency histograms as one
// Prometheus histogram family with power-of-two le bounds. A bucket
// holding values in [2^(i-1), 2^i) is exactly the cumulative le=2^i
// bound, so the log-bucket histogram exports losslessly.
func writeLatencyFamily(m *metricWriter, hists []LatencyClassSnapshot) {
	any := false
	for i := range hists {
		if hists[i].Hist.Count() > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	m.header("memsim_latency_cycles", "Campaign-wide memory service-time distributions in core cycles, by latency class.", "histogram")
	for i := range hists {
		h := &hists[i].Hist
		if h.Count() == 0 {
			continue
		}
		class := hists[i].Class
		var cum uint64
		h.Buckets(func(lo, hi, count uint64) {
			cum += count
			if hi == ^uint64(0) {
				// The saturated top bucket has no finite power-of-two
				// bound; it folds into +Inf below.
				return
			}
			m.metric("memsim_latency_cycles_bucket", cum, "class", class, "le", formatUint(hi+1))
		})
		m.metric("memsim_latency_cycles_bucket", h.Count(), "class", class, "le", "+Inf")
		m.metric("memsim_latency_cycles_sum", h.Sum(), "class", class)
		m.metric("memsim_latency_cycles_count", h.Count(), "class", class)
	}
}

// formatUint renders a bucket bound without importing strconv's float
// formatting quirks into the label.
func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

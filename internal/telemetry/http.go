package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server exposes a campaign over HTTP: GET /metrics (Prometheus text),
// GET /progress (JSON Snapshot with the full span table), the standard
// net/http/pprof handlers under /debug/pprof/, and POST|GET /quit,
// which releases WaitQuit so a supervisor (or the CI scrape script) can
// end a -http-linger period early. The server owns its listener and
// mux; nothing touches http.DefaultServeMux.
type Server struct {
	c    *Campaign
	ln   net.Listener
	srv  *http.Server
	quit chan struct{}
	once sync.Once
}

// Serve binds addr (":0" picks a free port — tests use this) and
// serves c in the background until Close.
func Serve(addr string, c *Campaign) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{c: c, ln: ln, quit: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WriteMetrics(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.c.Snapshot(true))
	})
	mux.HandleFunc("/quit", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("bye\n"))
		s.once.Do(func() { close(s.quit) })
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" to the actual
// port).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// WaitQuit blocks until /quit is hit or d elapses, whichever is first.
// d <= 0 returns immediately. This is the -http-linger hook: the CLI
// finishes its campaign, marks it complete, then lingers here so
// scrapers can collect the final state.
func (s *Server) WaitQuit(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.quit:
	case <-t.C:
	}
}

// Close stops the listener and releases any WaitQuit. Safe to call
// twice and on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() { close(s.quit) })
	return s.srv.Close()
}

// Package telemetry is the campaign observability core: a lock-cheap
// span table the experiment runner (internal/bench) feeds with per-job
// lifecycle transitions — enqueued → running → retrying → done / failed
// / memo-hit — plus pool gauges (workers busy, queue depth, inflight
// singleflight keys) and campaign counters (memo hits and misses,
// retries, watchdog aborts, ERR cells), aggregated per figure and
// campaign-wide. The table is exposed three ways: Prometheus text
// rendering (prometheus.go), a JSON progress snapshot with a rate-based
// ETA (Snapshot), and a live in-place TTY status line (status.go);
// Serve (http.go) puts the first two plus net/http/pprof behind an HTTP
// listener.
//
// Zero-perturbation discipline (DESIGN.md): telemetry observes the
// campaign, never the simulations. Transitions happen on the runner's
// own goroutines at job granularity — a handful of mutex operations per
// multi-millisecond simulation — and nothing here is reachable from
// model code, so figure output is byte-identical with a Campaign
// attached or not. Every method is safe for concurrent use and on a nil
// *Campaign (a no-op), so callers need no guards.
package telemetry

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// State is a span's position in the job lifecycle. A span is in exactly
// one state, which is what makes the conservation invariant —
// enqueued == queued + running + retrying + done + failed + memo-hit —
// hold at every instant (TestConservationUnderScrape pins it under the
// race detector while a campaign runs).
type State uint8

const (
	// StateQueued: admitted to the pool, waiting for a worker slot.
	StateQueued State = iota
	// StateRunning: a worker is simulating an attempt.
	StateRunning
	// StateRetrying: an attempt failed retryably; the job is in its
	// deterministic backoff before the next attempt.
	StateRetrying
	// StateDone: the final attempt succeeded.
	StateDone
	// StateFailed: the job failed for good (after any retries).
	StateFailed
	// StateMemoHit: the result was seeded from a previous campaign's
	// manifest (resume); no simulation ran in this campaign.
	StateMemoHit
	// StateStoreHit: the result was served by the persistent result
	// store (-store); the job was admitted but never simulated here.
	StateStoreHit
	numStates
)

var stateNames = [numStates]string{
	"queued", "running", "retrying", "done", "failed", "memo-hit", "store-hit",
}

// String returns the state's wire name ("queued", "running", ...).
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "?"
}

// span is one job's lifecycle record. All fields are guarded by the
// owning Campaign's mutex.
type span struct {
	id        int
	workload  string
	config    string
	figure    string
	state     State
	enqueued  time.Time
	started   time.Time // first transition to running
	ended     time.Time // terminal transition
	queueWait time.Duration
	attempts  int
	attemptNS []int64
	errKind   string
}

// Span is a caller's handle on one job's lifecycle record; the runner
// holds one per admitted job and reports transitions through it. The
// zero of a nil Campaign's Enqueue is a nil *Span, on which every
// method is a no-op.
type Span struct {
	c *Campaign
	s *span
}

// figureAgg is the per-figure completion rollup.
type figureAgg struct {
	total    int // spans attributed to this figure
	done     int
	failed   int
	memo     int
	store    int
	errCells int
}

// StoreStats is the persistent result store's counter block as exposed
// through /progress and /metrics. telemetry deliberately does not
// import internal/resultstore (the dependency points the other way for
// every other consumer); the runner or CLI bridges the two with a
// provider closure via SetStoreStats.
type StoreStats struct {
	Records        int    `json:"records"`
	Bytes          int64  `json:"bytes"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	PutErrors      uint64 `json:"put_errors"`
	Evictions      uint64 `json:"evictions"`
	Compactions    uint64 `json:"compactions"`
	Recovered      uint64 `json:"recovered"`
	Corrupt        uint64 `json:"corrupt"`
	TruncatedBytes int64  `json:"truncated_bytes"`
}

// Campaign is the span table plus the campaign-wide counters. The zero
// value is not ready; use NewCampaign. One mutex guards everything:
// transitions are a handful of field writes per job (jobs take
// milliseconds to minutes), so contention is unmeasurable, and a
// concurrent scrape sees a consistent table.
type Campaign struct {
	mu    sync.Mutex
	now   func() time.Time // injectable for deterministic tests
	begun time.Time
	group string // current figure label, set by BeginGroup

	spans   []*span
	byState [numStates]int

	memoHits       uint64 // requests answered from the memo table
	memoMisses     uint64 // requests that admitted a fresh simulation
	retries        uint64 // retry attempts started
	watchdogAborts uint64 // failures whose kind was "timeout"
	errCells       uint64 // rendered figure cells backed by a failed job

	figures  map[string]*figureAgg
	figOrder []string

	workers  int // pool size, for utilization readers (0 = unknown)
	complete bool

	// latency holds the campaign-wide service-time histograms (core
	// cycles), one per LatencyClasses entry; txn the per-class
	// transaction-tracer rollups in first-seen order.
	latency  [4]stats.Histogram
	txn      map[string]*txnAgg
	txnOrder []string

	// storeStats, when set, is polled at snapshot time for the result
	// store's counters. The provider must not call back into telemetry
	// (it runs under the campaign mutex); resultstore.Stats satisfies
	// that trivially.
	storeStats func() StoreStats
}

// NewCampaign returns an empty campaign whose clock starts now.
func NewCampaign() *Campaign {
	return &Campaign{now: time.Now, begun: time.Now(), figures: map[string]*figureAgg{}}
}

// SetWorkers records the worker-pool size for snapshot readers. Call it
// before serving.
func (c *Campaign) SetWorkers(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.workers = n
	c.mu.Unlock()
}

// SetStoreStats attaches a provider for the persistent result store's
// counters; snapshots and metrics include a store block while one is
// attached. Call it before serving. The provider is invoked under the
// campaign mutex and must not call back into this package.
func (c *Campaign) SetStoreStats(provider func() StoreStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.storeStats = provider
	c.mu.Unlock()
}

// BeginGroup sets the figure label attributed to subsequently enqueued
// spans ("table3", "fig2", ...). The runner admits each figure's grid
// before collecting it, so the driver calls BeginGroup once per figure;
// jobs shared across figures (memoized baselines) belong to the figure
// that admitted them first.
func (c *Campaign) BeginGroup(figure string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.group = figure
	c.mu.Unlock()
}

// figureOf returns the aggregate for a figure label, creating it in
// first-seen order. Caller holds mu.
func (c *Campaign) figureOf(figure string) *figureAgg {
	if figure == "" {
		return nil
	}
	f, ok := c.figures[figure]
	if !ok {
		f = &figureAgg{}
		c.figures[figure] = f
		c.figOrder = append(c.figOrder, figure)
	}
	return f
}

// Enqueue opens a span for a freshly admitted job (a memo miss): the
// job is in the pool's queue until Start. workload and config label the
// span in snapshots and metrics.
func (c *Campaign) Enqueue(workload, config string) *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &span{
		id:       len(c.spans),
		workload: workload,
		config:   config,
		figure:   c.group,
		state:    StateQueued,
		enqueued: c.now(),
	}
	c.spans = append(c.spans, s)
	c.byState[StateQueued]++
	c.memoMisses++
	if f := c.figureOf(s.figure); f != nil {
		f.total++
	}
	return &Span{c: c, s: s}
}

// Seed opens a span already in the memo-hit terminal state: a result
// replayed from a previous campaign's manifest, which this campaign
// will never simulate.
func (c *Campaign) Seed(workload, config string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &span{
		id:       len(c.spans),
		workload: workload,
		config:   config,
		figure:   c.group,
		state:    StateMemoHit,
		enqueued: c.now(),
	}
	s.ended = s.enqueued
	c.spans = append(c.spans, s)
	c.byState[StateMemoHit]++
	if f := c.figureOf(s.figure); f != nil {
		f.total++
		f.memo++
	}
}

// MemoHit counts a request answered from the memo table (a duplicate of
// an admitted or seeded key). No span opens: the one simulation already
// has one.
func (c *Campaign) MemoHit() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.memoHits++
	c.mu.Unlock()
}

// ErrCell counts one rendered figure cell backed by a failed job (the
// ERR markers in tables and charts). A single failed simulation can
// poison several cells across figures; this counter tracks the blast
// radius where the failure counters track the cause.
func (c *Campaign) ErrCell() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.errCells++
	if f := c.figureOf(c.group); f != nil {
		f.errCells++
	}
	c.mu.Unlock()
}

// transition moves a span between states, keeping byState conserved.
// Caller holds mu.
func (c *Campaign) transition(s *span, to State) {
	c.byState[s.state]--
	s.state = to
	c.byState[to]++
}

// Start moves the span to running: from queued when a worker picks the
// job up (the queue wait is captured here), or from retrying when the
// backoff ends. It returns the span's queue wait.
func (sp *Span) Start() time.Duration {
	if sp == nil {
		return 0
	}
	c := sp.c
	c.mu.Lock()
	defer c.mu.Unlock()
	s := sp.s
	if s.state == StateQueued {
		s.started = c.now()
		s.queueWait = s.started.Sub(s.enqueued)
	}
	c.transition(s, StateRunning)
	return s.queueWait
}

// Retry moves the span to retrying: an attempt failed retryably and the
// job sits in its deterministic backoff until the next Start.
func (sp *Span) Retry() {
	if sp == nil {
		return
	}
	c := sp.c
	c.mu.Lock()
	c.transition(sp.s, StateRetrying)
	sp.s.attempts++
	c.retries++
	c.mu.Unlock()
}

// Attempt records one attempt's wall time.
func (sp *Span) Attempt(d time.Duration) {
	if sp == nil {
		return
	}
	sp.c.mu.Lock()
	sp.s.attemptNS = append(sp.s.attemptNS, d.Nanoseconds())
	sp.c.mu.Unlock()
}

// Done closes the span successfully.
func (sp *Span) Done() { sp.finish(StateDone, "") }

// StoreHit closes the span as answered by the persistent result store:
// the job was admitted (a memo miss) but a verified on-disk record made
// simulation unnecessary. Terminal like Done, but counted apart so
// completion rates and ETAs only reflect real simulations.
func (sp *Span) StoreHit() {
	if sp == nil {
		return
	}
	c := sp.c
	c.mu.Lock()
	defer c.mu.Unlock()
	s := sp.s
	c.transition(s, StateStoreHit)
	s.ended = c.now()
	if f := c.figureOf(s.figure); f != nil {
		f.store++
	}
}

// Fail closes the span as failed after its last attempt, recording the
// failure kind ("deadlock", "timeout", ...). Timeouts are additionally
// counted as watchdog aborts.
func (sp *Span) Fail(kind string) { sp.finish(StateFailed, kind) }

func (sp *Span) finish(to State, kind string) {
	if sp == nil {
		return
	}
	c := sp.c
	c.mu.Lock()
	defer c.mu.Unlock()
	s := sp.s
	c.transition(s, to)
	s.ended = c.now()
	s.errKind = kind
	s.attempts++
	if f := c.figureOf(s.figure); f != nil {
		if to == StateDone {
			f.done++
		} else {
			f.failed++
		}
	}
	if kind == "timeout" {
		c.watchdogAborts++
	}
}

// SetComplete marks the campaign finished: every figure has rendered
// and no further transitions will arrive. Snapshots and metrics expose
// it so a scraper knows the final numbers are final.
func (c *Campaign) SetComplete() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.complete = true
	c.mu.Unlock()
}

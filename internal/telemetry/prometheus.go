package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE`
// headers followed by samples, label values escaped per the spec
// (backslash, double quote, and newline). Rendered from a Snapshot so
// one lock acquisition covers the whole scrape. Metric names live in
// the memsim_ namespace; memsim_jobs_done_total is the contract metric
// CI reconciles against the manifest record count.

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// metricWriter accumulates exposition text; the error from the
// underlying writer is sticky and returned once at the end.
type metricWriter struct {
	w   io.Writer
	err error
}

func (m *metricWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// header emits the HELP/TYPE preamble for one metric family.
func (m *metricWriter) header(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// metric emits one sample. labels come as alternating key, value
// pairs; values are escaped here.
func (m *metricWriter) metric(name string, value any, labels ...string) {
	m.printf("%s", name)
	if len(labels) > 0 {
		m.printf("{")
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				m.printf(",")
			}
			m.printf(`%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		m.printf("}")
	}
	switch v := value.(type) {
	case float64:
		m.printf(" %g\n", v)
	default:
		m.printf(" %d\n", v)
	}
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WriteMetrics renders the campaign in Prometheus text format. A nil
// campaign renders nothing (and returns nil), matching the package-wide
// nil-no-op contract.
func (c *Campaign) WriteMetrics(w io.Writer) error {
	if c == nil {
		return nil
	}
	snap := c.Snapshot(false)
	m := &metricWriter{w: w}

	m.header("memsim_jobs_enqueued_total", "Jobs admitted to the campaign (fresh simulations plus manifest-seeded results).", "counter")
	m.metric("memsim_jobs_enqueued_total", snap.Enqueued)
	m.header("memsim_jobs_done_total", "Jobs whose simulation completed successfully in this campaign.", "counter")
	m.metric("memsim_jobs_done_total", snap.Done)
	m.header("memsim_jobs_failed_total", "Jobs that failed after exhausting retries.", "counter")
	m.metric("memsim_jobs_failed_total", snap.Failed)
	m.header("memsim_jobs_memo_seeded_total", "Jobs answered by replaying a previous campaign's manifest (-resume).", "counter")
	m.metric("memsim_jobs_memo_seeded_total", snap.MemoSpan)
	m.header("memsim_jobs_store_hit_total", "Jobs answered by the persistent result store (-store) without simulating.", "counter")
	m.metric("memsim_jobs_store_hit_total", snap.StoreSpan)

	m.header("memsim_memo_hits_total", "Run requests answered from the in-campaign memo table.", "counter")
	m.metric("memsim_memo_hits_total", snap.MemoHits)
	m.header("memsim_memo_misses_total", "Run requests that admitted a fresh simulation.", "counter")
	m.metric("memsim_memo_misses_total", snap.MemoMisses)
	m.header("memsim_job_retries_total", "Retry attempts started after retryable failures.", "counter")
	m.metric("memsim_job_retries_total", snap.Retries)
	m.header("memsim_watchdog_aborts_total", "Jobs aborted by the per-job watchdog timeout.", "counter")
	m.metric("memsim_watchdog_aborts_total", snap.WatchdogAborts)
	m.header("memsim_err_cells_total", "Figure cells rendered as ERR because their job failed.", "counter")
	m.metric("memsim_err_cells_total", snap.ErrCells)

	m.header("memsim_workers_busy", "Worker slots currently running a simulation attempt.", "gauge")
	m.metric("memsim_workers_busy", snap.Running)
	m.header("memsim_workers", "Size of the worker pool.", "gauge")
	m.metric("memsim_workers", snap.Workers)
	m.header("memsim_queue_depth", "Jobs admitted and waiting for a worker slot.", "gauge")
	m.metric("memsim_queue_depth", snap.Queued)
	m.header("memsim_inflight_keys", "Singleflight keys not yet resolved (queued + running + retrying).", "gauge")
	m.metric("memsim_inflight_keys", snap.Queued+snap.Running+snap.Retrying)

	m.header("memsim_campaign_elapsed_seconds", "Wall time since the campaign began.", "gauge")
	m.metric("memsim_campaign_elapsed_seconds", float64(snap.ElapsedNS)/1e9)
	m.header("memsim_campaign_eta_seconds", "Estimated seconds to finish the remaining jobs at the observed rate (-1 = unknown).", "gauge")
	m.metric("memsim_campaign_eta_seconds", snap.ETASeconds)
	m.header("memsim_campaign_complete", "1 once every figure has rendered and no further transitions will arrive.", "gauge")
	m.metric("memsim_campaign_complete", boolGauge(snap.Complete))

	if st := snap.Store; st != nil {
		m.header("memsim_store_hits_total", "Result-store lookups answered by a verified on-disk record.", "counter")
		m.metric("memsim_store_hits_total", st.Hits)
		m.header("memsim_store_misses_total", "Result-store lookups that found no usable record.", "counter")
		m.metric("memsim_store_misses_total", st.Misses)
		m.header("memsim_store_puts_total", "Records appended to the result-store journal.", "counter")
		m.metric("memsim_store_puts_total", st.Puts)
		m.header("memsim_store_put_errors_total", "Record appends that failed and were rolled back.", "counter")
		m.metric("memsim_store_put_errors_total", st.PutErrors)
		m.header("memsim_store_evictions_total", "Records dropped by the size-capped LRU compaction.", "counter")
		m.metric("memsim_store_evictions_total", st.Evictions)
		m.header("memsim_store_compactions_total", "Atomic journal rewrites triggered by the size cap.", "counter")
		m.metric("memsim_store_compactions_total", st.Compactions)
		m.header("memsim_store_corrupt_records_total", "Corrupt records detected and quarantined (never served).", "counter")
		m.metric("memsim_store_corrupt_records_total", st.Corrupt)
		m.header("memsim_store_recovered_records_total", "Records restored by the opening recovery scan.", "counter")
		m.metric("memsim_store_recovered_records_total", st.Recovered)
		m.header("memsim_store_truncated_bytes_total", "Torn-tail bytes truncated during recovery.", "counter")
		m.metric("memsim_store_truncated_bytes_total", st.TruncatedBytes)
		m.header("memsim_store_records", "Records currently indexed in the store.", "gauge")
		m.metric("memsim_store_records", st.Records)
		m.header("memsim_store_bytes", "Journal size in bytes.", "gauge")
		m.metric("memsim_store_bytes", st.Bytes)
	}

	writeLatencyFamily(m, snap.LatencyHists)

	if len(snap.TxnClasses) > 0 {
		m.header("memsim_txn_transactions_total", "Transactions observed by the per-run tracers, by latency class.", "counter")
		for _, t := range snap.TxnClasses {
			m.metric("memsim_txn_transactions_total", t.Count, "class", t.Class)
		}
		m.header("memsim_txn_exemplars", "Worst-K exemplar transaction trees retained across runs, by latency class.", "gauge")
		for _, t := range snap.TxnClasses {
			m.metric("memsim_txn_exemplars", t.Exemplars, "class", t.Class)
		}
		m.header("memsim_txn_slowest_latency_fs", "End-to-end latency of the campaign's slowest transaction per class, in femtoseconds.", "gauge")
		for _, t := range snap.TxnClasses {
			m.metric("memsim_txn_slowest_latency_fs", t.SlowestFS, "class", t.Class)
		}
		m.header("memsim_txn_slowest_id", "Trace ID of the campaign's slowest transaction per class (pair with the run's -txn-trace sink).", "gauge")
		for _, t := range snap.TxnClasses {
			m.metric("memsim_txn_slowest_id", t.SlowestID, "class", t.Class)
		}
	}

	if len(snap.Figures) > 0 {
		figs := append([]FigureSnapshot(nil), snap.Figures...)
		sort.Slice(figs, func(i, j int) bool { return figs[i].Figure < figs[j].Figure })
		m.header("memsim_figure_jobs_total", "Jobs attributed to each figure, by terminal state.", "counter")
		for _, f := range figs {
			m.metric("memsim_figure_jobs_total", f.Done, "figure", f.Figure, "state", "done")
			m.metric("memsim_figure_jobs_total", f.Failed, "figure", f.Figure, "state", "failed")
			m.metric("memsim_figure_jobs_total", f.MemoHits, "figure", f.Figure, "state", "memo-hit")
			m.metric("memsim_figure_jobs_total", f.StoreHits, "figure", f.Figure, "state", "store-hit")
		}
		m.header("memsim_figure_jobs_pending", "Jobs attributed to each figure not yet in a terminal state.", "gauge")
		for _, f := range figs {
			m.metric("memsim_figure_jobs_pending", f.Total-f.Done-f.Failed-f.MemoHits-f.StoreHits, "figure", f.Figure)
		}
		m.header("memsim_figure_err_cells_total", "ERR cells rendered per figure.", "counter")
		for _, f := range figs {
			m.metric("memsim_figure_err_cells_total", f.ErrCells, "figure", f.Figure)
		}
	}
	return m.err
}

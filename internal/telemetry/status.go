package telemetry

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// IsTerminal reports whether w is an interactive terminal (an *os.File
// whose mode is a character device). The CLIs use it to decide between
// the in-place status line (humans) and plain progress lines (pipes,
// CI, tests — whose output must stay byte-identical to pre-telemetry
// builds).
func IsTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// StatusLine maintains a single in-place line at the bottom of a
// terminal summarizing the campaign (done/total, running, queued, memo
// hits, failures, ETA), redrawn on a ticker. Progress lines from the
// runner go through Writer, which lifts the status line out of the way
// so ordinary output scrolls above it.
type StatusLine struct {
	mu      sync.Mutex
	w       io.Writer
	c       *Campaign
	ticker  *time.Ticker
	stop    chan struct{}
	stopped sync.WaitGroup
	active  bool // a status line is currently drawn
	started bool
}

// NewStatusLine attaches a status line for c to terminal w. Call Start
// to begin drawing.
func NewStatusLine(w io.Writer, c *Campaign) *StatusLine {
	return &StatusLine{w: w, c: c}
}

// Start begins redrawing every interval (0 means 500ms).
func (l *StatusLine) Start(interval time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.started {
		return
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	l.started = true
	l.ticker = time.NewTicker(interval)
	l.stop = make(chan struct{})
	l.stopped.Add(1)
	go func() {
		defer l.stopped.Done()
		for {
			select {
			case <-l.ticker.C:
				l.mu.Lock()
				l.draw()
				l.mu.Unlock()
			case <-l.stop:
				return
			}
		}
	}()
}

// Stop halts redrawing and clears the line. Idempotent.
func (l *StatusLine) Stop() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.started {
		l.mu.Unlock()
		return
	}
	l.started = false
	l.ticker.Stop()
	close(l.stop)
	l.clear()
	l.mu.Unlock()
	l.stopped.Wait()
}

// clear erases the drawn status line, leaving the cursor at column 0.
// Caller holds mu.
func (l *StatusLine) clear() {
	if l.active {
		fmt.Fprint(l.w, "\r\x1b[K")
		l.active = false
	}
}

// draw renders the current snapshot in place. Caller holds mu.
func (l *StatusLine) draw() {
	if !l.started {
		return
	}
	snap := l.c.Snapshot(false)
	finished := snap.Done + snap.Failed + snap.MemoSpan
	line := fmt.Sprintf("# %d/%d done · %d running · %d queued · %d memo",
		finished, snap.Enqueued, snap.Running, snap.Queued, snap.MemoSpan)
	if snap.Failed > 0 {
		line += fmt.Sprintf(" · %d FAILED", snap.Failed)
	}
	if snap.ETASeconds > 0 {
		line += fmt.Sprintf(" · eta %s", time.Duration(snap.ETASeconds*float64(time.Second)).Round(time.Second))
	}
	fmt.Fprintf(l.w, "\r\x1b[K%s", line)
	l.active = true
}

// Writer returns the io.Writer the runner's Progress should point at:
// each Write clears the status line, emits the payload (a normal
// scrolling progress line), and redraws the status underneath.
func (l *StatusLine) Writer() io.Writer {
	return statusWriter{l}
}

type statusWriter struct{ l *StatusLine }

func (sw statusWriter) Write(p []byte) (int, error) {
	sw.l.mu.Lock()
	defer sw.l.mu.Unlock()
	sw.l.clear()
	n, err := sw.l.w.Write(p)
	if sw.l.started {
		sw.l.draw()
	}
	return n, err
}

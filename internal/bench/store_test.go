package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/resultstore"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func openStore(t *testing.T, dir, version string) *resultstore.Store {
	t.Helper()
	s, err := resultstore.Open(resultstore.Options{Dir: dir, Version: version})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// storedFigure renders the Figure 2 subset with an optional store
// attached and returns the figure bytes plus the runner for counters.
func storedFigure(t *testing.T, st *resultstore.Store) ([]byte, *Runner) {
	t.Helper()
	r := NewRunner(workload.ScaleSmall)
	r.Workers = 4
	r.Store = st
	var out bytes.Buffer
	if _, err := r.Figure2(&out, []string{"fir", "depth"}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	return out.Bytes(), r
}

// TestStoreRoundTripByteIdentical is the core promise of -store: a
// first campaign populates the store, a second one answers everything
// from it, and the figure bytes are identical in all three worlds —
// no store, cold store, warm store.
func TestStoreRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	bare, _ := storedFigure(t, nil)

	// One store is open per campaign: the directory lock admits a single
	// process/instance at a time, so each campaign closes before the next.
	st1 := openStore(t, dir, "v1")
	cold, r1 := storedFigure(t, st1)
	st1.Close()
	if !bytes.Equal(bare, cold) {
		t.Fatal("attaching an empty store changed figure output")
	}
	ok1, _ := r1.Outcome()
	if ok1 == 0 || r1.StoreHits() != 0 {
		t.Fatalf("cold run: ok=%d storeHits=%d", ok1, r1.StoreHits())
	}

	warm, r2 := storedFigure(t, openStore(t, dir, "v1"))
	if !bytes.Equal(bare, warm) {
		t.Fatal("store-served figure differs from fresh simulation")
	}
	ok2, fail2 := r2.Outcome()
	if ok2 != 0 || fail2 != 0 {
		t.Fatalf("warm run simulated %d/%d jobs fresh; all should be store hits", ok2, fail2)
	}
	if r2.StoreHits() != ok1 {
		t.Fatalf("warm run store hits = %d, want %d (every cold simulation)", r2.StoreHits(), ok1)
	}
}

// TestStoreVersionMismatchResimulates: a store written by another code
// version answers nothing — every job re-simulates and the output is
// still correct.
func TestStoreVersionMismatchResimulates(t *testing.T) {
	dir := t.TempDir()
	bare, _ := storedFigure(t, nil)
	st1 := openStore(t, dir, "v1")
	_, r1 := storedFigure(t, st1)
	st1.Close()
	ok1, _ := r1.Outcome()

	out, r2 := storedFigure(t, openStore(t, dir, "v2"))
	if !bytes.Equal(bare, out) {
		t.Fatal("version-mismatched store perturbed output")
	}
	ok2, _ := r2.Outcome()
	if ok2 != ok1 || r2.StoreHits() != 0 {
		t.Fatalf("stale store: ok=%d (want %d) hits=%d (want 0)", ok2, ok1, r2.StoreHits())
	}
}

// TestStoreCorruptRecordResimulates: smashing the journal mid-file
// costs the smashed records a re-simulation, never wrong output.
func TestStoreCorruptRecordResimulates(t *testing.T) {
	dir := t.TempDir()
	bare, _ := storedFigure(t, nil)
	st1 := openStore(t, dir, "v1")
	_, _ = storedFigure(t, st1)
	st1.Close()

	path := filepath.Join(dir, "store.journal")
	journal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(journal) / 3; i < len(journal)/2; i++ {
		journal[i] ^= 0xff
	}
	if err := os.WriteFile(path, journal, 0o644); err != nil {
		t.Fatal(err)
	}

	st := openStore(t, dir, "v1")
	out, r := storedFigure(t, st)
	if !bytes.Equal(bare, out) {
		t.Fatal("corrupted store perturbed output")
	}
	ok, fail := r.Outcome()
	if fail != 0 || ok == 0 {
		t.Fatalf("corruption should force some re-simulation: ok=%d fail=%d", ok, fail)
	}
	if r.StoreHits()+ok < 3 {
		t.Fatalf("hits=%d + fresh=%d lost jobs", r.StoreHits(), ok)
	}
}

// TestStoreHitsFeedTelemetryConsistently is the Seed/Outcome/store-hit
// counting contract: seeded, store-hit, memo-hit and fresh jobs must
// all satisfy the span-conservation invariant, roll up per figure, and
// leave the ETA to real simulations only.
func TestStoreHitsFeedTelemetryConsistently(t *testing.T) {
	dir := t.TempDir()

	// Campaign 1: populate the store with one job's result, and keep a
	// copy of the report to seed campaign 2 with.
	pre := NewRunner(workload.ScaleSmall)
	pre.Store = openStore(t, dir, "v1")
	hitCfg := core.DefaultConfig(core.CC, 2)
	hitRep, err := pre.Run(hitCfg, "fir")
	if err != nil {
		t.Fatal(err)
	}
	seedCfg := core.DefaultConfig(core.CC, 4)
	seedRep, err := pre.Run(seedCfg, "fir")
	if err != nil {
		t.Fatal(err)
	}
	pre.Close()
	if err := pre.Store.Close(); err != nil {
		t.Fatal(err)
	}

	// Campaign 2: one seeded job, one store hit, one fresh simulation,
	// plus a memo-hit duplicate of each.
	st := openStore(t, dir, "v1")
	c := telemetry.NewCampaign()
	c.SetStoreStats(func() telemetry.StoreStats {
		s := st.Stats()
		return telemetry.StoreStats{Hits: s.Hits, Misses: s.Misses}
	})
	r := NewRunner(workload.ScaleSmall)
	r.Store = st
	r.Telemetry = c
	c.BeginGroup("fig2")
	if !r.Seed(seedCfg, "fir", seedRep) {
		t.Fatal("seed rejected")
	}
	freshCfg := core.DefaultConfig(core.STR, 2)
	for _, job := range []Job{{seedCfg, "fir"}, {hitCfg, "fir"}, {freshCfg, "fir"}} {
		for i := 0; i < 2; i++ { // second pass = memo hit
			rep, err := r.Run(job.Cfg, job.Name)
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil {
				t.Fatal("nil report")
			}
		}
	}
	r.Close()

	gotHit, _ := r.Run(hitCfg, "fir")
	wantB, _ := json.Marshal(hitRep)
	gotB, _ := json.Marshal(gotHit)
	if !bytes.Equal(wantB, gotB) {
		t.Fatalf("store-served report differs:\n%s\n%s", wantB, gotB)
	}

	ok, fail := r.Outcome()
	if ok != 1 || fail != 0 {
		t.Fatalf("Outcome = (%d,%d), want (1,0): only freshCfg simulates", ok, fail)
	}
	if r.StoreHits() != 1 {
		t.Fatalf("StoreHits = %d, want 1", r.StoreHits())
	}

	s := c.Snapshot(true)
	if s.Enqueued != s.Queued+s.Running+s.Retrying+s.Done+s.Failed+s.MemoSpan+s.StoreSpan {
		t.Fatalf("span conservation broken: %+v", s)
	}
	if s.Enqueued != 3 || s.MemoSpan != 1 || s.StoreSpan != 1 || s.Done != 1 {
		t.Fatalf("span states: enq=%d memo=%d store=%d done=%d, want 3/1/1/1",
			s.Enqueued, s.MemoSpan, s.StoreSpan, s.Done)
	}
	if s.MemoHits < 3 {
		t.Fatalf("memo hits = %d, want >= 3 (the duplicate passes)", s.MemoHits)
	}
	if s.ETASeconds != 0 {
		t.Fatalf("ETA = %v, want 0 with nothing remaining", s.ETASeconds)
	}
	if s.Store == nil || s.Store.Hits < 1 {
		t.Fatalf("store stats block missing or empty: %+v", s.Store)
	}
	if len(s.Figures) != 1 || s.Figures[0].StoreHits != 1 || s.Figures[0].MemoHits != 1 || s.Figures[0].Done != 1 {
		t.Fatalf("figure rollup: %+v", s.Figures)
	}

	var spanStates []string
	for _, sp := range s.Spans {
		spanStates = append(spanStates, sp.State)
	}
	joined := strings.Join(spanStates, ",")
	if !strings.Contains(joined, "store-hit") || !strings.Contains(joined, "memo-hit") || !strings.Contains(joined, "done") {
		t.Fatalf("span states missing a terminal kind: %s", joined)
	}
}

// TestStoreProgressLineMarksHits: the progress stream distinguishes
// recalled results from fresh simulations.
func TestStoreProgressLineMarksHits(t *testing.T) {
	dir := t.TempDir()
	pre := NewRunner(workload.ScaleSmall)
	pre.Store = openStore(t, dir, "v1")
	cfg := core.DefaultConfig(core.CC, 2)
	if _, err := pre.Run(cfg, "fir"); err != nil {
		t.Fatal(err)
	}
	pre.Close()
	pre.Store.Close()

	var prog bytes.Buffer
	r := NewRunner(workload.ScaleSmall)
	r.Store = openStore(t, dir, "v1")
	r.Progress = &prog
	if _, err := r.Run(cfg, "fir"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !strings.Contains(prog.String(), "(store)") {
		t.Fatalf("progress line not marked: %q", prog.String())
	}
}

// TestStoreScaleMismatchMisses is the cross-scale poisoning guard at
// the Runner level: a store populated by a small-scale campaign keys
// its records under that scale, so a campaign at any other -scale
// misses and re-simulates instead of being served small-scale reports.
func TestStoreScaleMismatchMisses(t *testing.T) {
	dir := t.TempDir()
	pre := NewRunner(workload.ScaleSmall)
	pre.Store = openStore(t, dir, "v1")
	cfg := core.DefaultConfig(core.CC, 2)
	if _, err := pre.Run(cfg, "fir"); err != nil {
		t.Fatal(err)
	}
	pre.Close()
	if err := pre.Store.Close(); err != nil {
		t.Fatal(err)
	}

	st := openStore(t, dir, "v1")
	if _, ok := st.Get(cfg, "fir", workload.ScaleSmall.String()); !ok {
		t.Fatal("runner did not key the stored record under its own scale")
	}
	for _, other := range []workload.Scale{workload.ScaleDefault, workload.ScalePaper} {
		if _, ok := st.Get(cfg, "fir", other.String()); ok {
			t.Fatalf("small-scale record served at %v scale", other)
		}
	}
}

package bench

import (
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// sharedRunner memoizes across the package's tests: figure generators
// reuse many of the same configurations (baselines especially).
var sharedRunner = NewRunner(workload.ScaleSmall)

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(workload.ScaleSmall)
	cfg := core.DefaultConfig(core.CC, 2)
	a, err := r.Run(cfg, "fir")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(cfg, "fir")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second run not served from cache")
	}
}

func TestTable2Writes(t *testing.T) {
	var sb strings.Builder
	Table2(&sb)
	if !strings.Contains(sb.String(), "512 KB 16-way") {
		t.Error("Table 2 missing L2 row")
	}
}

func TestTable3SmallScale(t *testing.T) {
	r := sharedRunner
	rows, err := r.Table3(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllApps) {
		t.Fatalf("%d rows, want %d", len(rows), len(AllApps))
	}
	byApp := map[string]Table3Row{}
	for _, row := range rows {
		byApp[row.App] = row
		if row.OffChipMBps <= 0 {
			t.Errorf("%s: no off-chip traffic measured", row.App)
		}
	}
	// Table 3 shape: depth is the most compute-intense; fir and the
	// sorts demand the most bandwidth.
	if byApp["depth"].InstrPerL1Miss < 4*byApp["fir"].InstrPerL1Miss {
		t.Errorf("depth instr/miss (%.0f) should dwarf fir's (%.0f)",
			byApp["depth"].InstrPerL1Miss, byApp["fir"].InstrPerL1Miss)
	}
	if byApp["fir"].OffChipMBps < byApp["depth"].OffChipMBps {
		t.Error("fir should demand more bandwidth than depth")
	}
}

func TestFigure2Subset(t *testing.T) {
	r := sharedRunner
	out, err := r.Figure2(io.Discard, []string{"fir", "depth"})
	if err != nil {
		t.Fatal(err)
	}
	for app, bars := range out {
		if len(bars) != 8 { // 4 core counts x 2 models
			t.Errorf("%s: %d bars, want 8", app, len(bars))
		}
		for _, b := range bars {
			if b.Total <= 0 || b.Total > 1.5 {
				t.Errorf("%s %s: normalized total %.3f out of range", app, b.Label, b.Total)
			}
		}
	}
	// Compute-bound depth: both models nearly identical at 16 cores.
	bars := out["depth"]
	cc16, str16 := bars[6], bars[7]
	ratio := cc16.Total / str16.Total
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("depth CC16/STR16 = %.2f, want ~1", ratio)
	}
}

func TestFigure6Shape(t *testing.T) {
	r := sharedRunner
	bars, err := r.Figure6(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 9 {
		t.Fatalf("%d bars, want 9", len(bars))
	}
	// More bandwidth must not hurt the cache-based system.
	cc16, cc128 := bars[0], bars[6]
	if cc128.Total > cc16.Total*1.02 {
		t.Errorf("CC at 12.8 GB/s (%.3f) slower than at 1.6 (%.3f)", cc128.Total, cc16.Total)
	}
	// The gap CC vs STR shrinks as bandwidth grows.
	gapLo := bars[0].Total / bars[1].Total
	gapHi := bars[6].Total / bars[7].Total
	if gapHi > gapLo*1.05 {
		t.Errorf("bandwidth did not close the CC/STR gap: %.2f -> %.2f", gapLo, gapHi)
	}
}

func TestFigure9Shape(t *testing.T) {
	r := sharedRunner
	bars, traffic, err := r.Figure9(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 8 || len(traffic) != 8 {
		t.Fatalf("bars=%d traffic=%d, want 8 each", len(bars), len(traffic))
	}
	// At 16 cores the optimized version is faster and moves less data.
	orig16, opt16 := bars[6], bars[7]
	if opt16.Total >= orig16.Total {
		t.Errorf("optimized MPEG-2 (%.3f) not faster than original (%.3f) at 16 cores",
			opt16.Total, orig16.Total)
	}
	tOrig, tOpt := traffic[6], traffic[7]
	if tOpt.Read+tOpt.Write >= tOrig.Read+tOrig.Write {
		t.Errorf("optimized traffic (%.3f) not below original (%.3f)",
			tOpt.Read+tOpt.Write, tOrig.Read+tOrig.Write)
	}
}

func TestFigure10Shape(t *testing.T) {
	r := sharedRunner
	bars, err := r.Figure10(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Dramatic speedup "even at small core counts".
	orig2, opt2 := bars[0], bars[1]
	if sp := Speedup(orig2, opt2); sp < 2 {
		t.Errorf("art optimization speedup at 2 cores = %.2f, want >= 2", sp)
	}
}

func TestFigure4Shape(t *testing.T) {
	out, err := sharedRunner.Figure4(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range fig34Apps {
		bars := out[app]
		if len(bars) != 2 {
			t.Fatalf("%s: %d bars", app, len(bars))
		}
		for _, b := range bars {
			if b.Total <= 0 {
				t.Errorf("%s %s: non-positive energy", app, b.Label)
			}
		}
	}
	// FIR: streaming spends less total energy.
	fir := out["fir"]
	if fir[1].Total >= fir[0].Total {
		t.Errorf("fir STR energy %.3f >= CC %.3f", fir[1].Total, fir[0].Total)
	}
}

func TestFigure5Shape(t *testing.T) {
	out, err := sharedRunner.Figure5(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range fig5Apps {
		bars := out[app]
		if len(bars) != 8 {
			t.Fatalf("%s: %d bars, want 8", app, len(bars))
		}
		// Higher clocks never make the same machine slower.
		for i := 2; i < 8; i++ {
			if bars[i].Total > bars[i-2].Total*1.02 {
				t.Errorf("%s: %s (%.3f) slower than %s (%.3f)",
					app, bars[i].Label, bars[i].Total, bars[i-2].Label, bars[i-2].Total)
			}
		}
	}
	// FIR at 6.4 GHz: STR ahead (the paper's 36%).
	fir := out["fir"]
	if fir[7].Total >= fir[6].Total {
		t.Errorf("fir @6.4GHz: STR %.3f not ahead of CC %.3f", fir[7].Total, fir[6].Total)
	}
	// BitonicSort at 6.4 GHz: CC ahead (the paper's 19%).
	bt := out["bitonicsort"]
	if bt[6].Total >= bt[7].Total {
		t.Errorf("bitonic @6.4GHz: CC %.3f not ahead of STR %.3f", bt[6].Total, bt[7].Total)
	}
}

func TestFigure7Shape(t *testing.T) {
	out, err := sharedRunner.Figure7(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for app, bars := range out {
		if len(bars) != 3 { // CC, CC+P4, STR
			t.Fatalf("%s: %d bars", app, len(bars))
		}
		cc, p4 := bars[0], bars[1]
		if p4.Load > cc.Load/2 {
			t.Errorf("%s: P4 left %.3f of %.3f load stall", app, p4.Load, cc.Load)
		}
		if p4.Total >= cc.Total {
			t.Errorf("%s: P4 (%.3f) not faster than CC (%.3f)", app, p4.Total, cc.Total)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	traffic, energy, err := sharedRunner.Figure8(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"fir", "mergesort", "mpeg2"} {
		bars := traffic[app]
		if len(bars) != 3 { // CC, CC+PFS, STR
			t.Fatalf("%s: %d bars", app, len(bars))
		}
		cc, pfs := bars[0], bars[1]
		if pfs.Read >= cc.Read {
			t.Errorf("%s: PFS reads %.3f >= CC %.3f", app, pfs.Read, cc.Read)
		}
	}
	if len(energy) != 3 {
		t.Fatalf("energy bars = %d", len(energy))
	}
	if energy[1].Total >= energy[0].Total {
		t.Errorf("PFS energy %.3f >= CC %.3f", energy[1].Total, energy[0].Total)
	}
}

func TestOnRecordFiresPerFreshSimulation(t *testing.T) {
	r := NewRunner(workload.ScaleSmall)
	var mu sync.Mutex
	var recs []Record
	r.OnRecord = func(rec Record) {
		mu.Lock()
		recs = append(recs, rec)
		mu.Unlock()
	}
	cfg := core.DefaultConfig(core.CC, 2)
	if _, err := r.Run(cfg, "fir"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(cfg, "fir"); err != nil { // memo hit: no record
		t.Fatal(err)
	}
	if _, err := r.Run(core.DefaultConfig(core.STR, 2), "fir"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (one per fresh simulation)", len(recs))
	}
	for _, rec := range recs {
		if rec.Name != "fir" || rec.Report == nil || rec.Err != "" {
			t.Errorf("bad record %+v", rec)
		}
		if rec.HostNS <= 0 {
			t.Errorf("host duration not measured: %d", rec.HostNS)
		}
		if rec.Report.Engine.Dispatches == 0 && rec.Report.Engine.InlineSteps == 0 {
			t.Errorf("engine metrics missing from report")
		}
	}
}

package bench

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// runnerGrid is the fixed job grid the throughput benchmarks run: both
// models across the core-count sweep for one bandwidth-bound app.
func runnerGrid() []Job {
	jobs := []Job{{baselineCfg(), "fir"}}
	for _, n := range []int{2, 4, 8, 16} {
		for _, model := range []core.Model{core.CC, core.STR} {
			jobs = append(jobs, Job{core.DefaultConfig(model, n), "fir"})
		}
	}
	return jobs
}

// benchRunnerThroughput simulates the whole grid on a fresh runner per
// iteration (no memoization between iterations).
func benchRunnerThroughput(b *testing.B, workers int) {
	grid := runnerGrid()
	b.ReportMetric(float64(len(grid)), "sims/op")
	for i := 0; i < b.N; i++ {
		r := NewRunner(workload.ScaleSmall)
		r.Workers = workers
		r.Prefetch(grid)
		for _, j := range grid {
			if _, err := r.Run(j.Cfg, j.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRunnerJ1 is the sequential baseline; BenchmarkRunnerJN uses
// one worker per available CPU. Their ratio is the parallel speedup of
// the experiment runner on this machine (1.0 on a single-CPU host).
func BenchmarkRunnerJ1(b *testing.B) { benchRunnerThroughput(b, 1) }

func BenchmarkRunnerJN(b *testing.B) { benchRunnerThroughput(b, runtime.GOMAXPROCS(0)) }

// BenchmarkRunnerMemoized measures the pure collection path: every key
// already simulated, so Run only consults the memo table.
func BenchmarkRunnerMemoized(b *testing.B) {
	r := NewRunner(workload.ScaleSmall)
	grid := runnerGrid()
	for _, j := range grid {
		if _, err := r.Run(j.Cfg, j.Name); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range grid {
			if _, err := r.Run(j.Cfg, j.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

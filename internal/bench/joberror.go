package bench

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// ErrKind classifies a job failure. The run layer uses it to decide
// retries (only transient kinds are worth re-running) and the manifest
// records it so a campaign's failures are machine-greppable.
type ErrKind string

const (
	ErrConfig   ErrKind = "config"   // Config.Validate rejected the job
	ErrWorkload ErrKind = "workload" // unknown workload name
	ErrVerify   ErrKind = "verify"   // workload output failed verification
	ErrDeadlock ErrKind = "deadlock" // engine deadlock (model/workload bug)
	ErrLivelock ErrKind = "livelock" // simulated time passed MaxSimTime
	ErrTimeout  ErrKind = "timeout"  // per-job watchdog aborted the run
	ErrPanic    ErrKind = "panic"    // panic in Setup/model/workload code
)

// JobError is one job's structured failure: which job, how it failed,
// after how many attempts, and — when the engine produced one — the
// probe-style engine-state snapshot (heap depth, last event time,
// per-task state) attached to the underlying typed error.
type JobError struct {
	Name     string
	Cfg      core.Config
	Kind     ErrKind
	Attempts int
	Err      error
	// State is the engine's diagnostic snapshot for deadlock/livelock/
	// timeout/panic failures; nil for config, workload and verify errors,
	// which fail before or after the engine runs.
	State *sim.EngineState
}

func (e *JobError) Error() string {
	return fmt.Sprintf("%s %v/%d: %s error after %d attempt(s): %v",
		e.Name, e.Cfg.Model, e.Cfg.Cores, e.Kind, e.Attempts, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// Retryable reports whether re-running the job could plausibly succeed.
// Deterministic failures (bad config, deadlock, failed verification)
// will fail identically every time; timeouts and panics may be
// environmental (an overloaded host, a transient bug) and get another
// attempt when the Runner has retry budget.
func (e *JobError) Retryable() bool { return e.Kind == ErrTimeout || e.Kind == ErrPanic }

// classify wraps a simulation error in a JobError, typing it by the
// engine's failure taxonomy (sim/abort.go) and extracting the snapshot.
func classify(name string, cfg core.Config, err error) *JobError {
	je := &JobError{Name: name, Cfg: cfg, Err: err, Attempts: 1}
	var de *sim.DeadlockError
	var le *sim.LivelockError
	var ae *sim.AbortError
	var pe *sim.TaskPanicError
	var rpe *core.RunPanicError
	switch {
	case errors.As(err, &de):
		je.Kind, je.State = ErrDeadlock, &de.State
	case errors.As(err, &le):
		je.Kind, je.State = ErrLivelock, &le.State
	case errors.As(err, &ae):
		je.Kind, je.State = ErrTimeout, &ae.State
	case errors.As(err, &pe):
		je.Kind, je.State = ErrPanic, &pe.State
	case errors.As(err, &rpe):
		je.Kind = ErrPanic
	default:
		// The only remaining System.Run error is Workload.Verify's.
		je.Kind = ErrVerify
	}
	return je
}

// backoffDelay is the pause before retry attempt+1 of a job: an
// exponential base with jitter derived from the deterministic job key —
// not the clock — so a re-run campaign backs off identically and two
// simultaneously-failing jobs still spread out.
func backoffDelay(name string, cfg core.Config, attempt int) time.Duration {
	base := 10 * time.Millisecond << uint(attempt)
	if base > time.Second {
		base = time.Second
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d", keyOf(cfg, name), attempt)
	jitter := time.Duration(h.Sum64() % uint64(base/2+1))
	return base + jitter
}

// GridError reports a figure or table grid that rendered with failed
// cells: how many jobs succeeded, how many failed, and each cell's
// JobError. Generators return it instead of aborting on the first bad
// cell, so one poisoned configuration costs one ERR marker, not the
// whole figure.
type GridError struct {
	OK     int
	Failed int
	Errs   []error
}

func (g *GridError) Error() string {
	return fmt.Sprintf("%d ok / %d failed", g.OK, g.Failed)
}

// Unwrap exposes the per-cell errors to errors.As/Is.
func (g *GridError) Unwrap() []error { return g.Errs }

// gridTracker accumulates per-cell outcomes while a generator renders.
type gridTracker struct {
	ok     int
	failed int
	errs   []error
}

// cell records one job result; true means the cell is usable.
func (g *gridTracker) cell(err error) bool {
	if err != nil {
		g.failed++
		g.errs = append(g.errs, err)
		return false
	}
	g.ok++
	return true
}

// finish emits the summary line (only when something failed, keeping
// clean output byte-identical) and returns the GridError or nil.
func (g *gridTracker) finish(w io.Writer, figure string) error {
	if g.failed == 0 {
		return nil
	}
	fmt.Fprintf(w, "# %s: %d ok / %d failed\n", figure, g.ok, g.failed)
	return &GridError{OK: g.ok, Failed: g.failed, Errs: g.errs}
}

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/txntrace"
	"repro/internal/workload"
)

// TestCfgKeyNoCollisions is the regression test for the old string key,
// which packed DMAOutstanding+L2Banks*100+DRAMChannels*10000 into one
// integer (so e.g. DMAOutstanding=100 collided with L2Banks=1) and
// omitted fields like StoreBuffer entirely. The struct key must separate
// every pair of configs that differ in any field.
func TestCfgKeyNoCollisions(t *testing.T) {
	base := core.DefaultConfig(core.CC, 4)
	mutate := []struct {
		name string
		fn   func(*core.Config)
	}{
		{"Model", func(c *core.Config) { c.Model = core.STR }},
		{"Cores", func(c *core.Config) { c.Cores = 8 }},
		{"CoreMHz", func(c *core.Config) { c.CoreMHz = 3200 }},
		{"DRAMBandwidthMBps", func(c *core.Config) { c.DRAMBandwidthMBps = 12800 }},
		{"PrefetchDepth", func(c *core.Config) { c.PrefetchDepth = 4 }},
		{"NoWriteAllocate", func(c *core.Config) { c.NoWriteAllocate = true }},
		{"SnoopFilter", func(c *core.Config) { c.SnoopFilter = true }},
		{"InstrPerIMiss", func(c *core.Config) { c.InstrPerIMiss = 100 }},
		{"IMissPenalty", func(c *core.Config) { c.IMissPenalty = 40 * sim.Nanosecond }},
		{"MaxSimTime", func(c *core.Config) { c.MaxSimTime = sim.Second }},
		{"L2SizeKB", func(c *core.Config) { c.L2SizeKB = 1024 }},
		{"L2Banks", func(c *core.Config) { c.L2Banks = 2 }},
		{"DRAMChannels", func(c *core.Config) { c.DRAMChannels = 2 }},
		{"CoresPerCluster", func(c *core.Config) { c.CoresPerCluster = 2 }},
		{"DMAOutstanding", func(c *core.Config) { c.DMAOutstanding = 4 }},
		{"StoreBuffer", func(c *core.Config) { c.StoreBuffer = 1 }},
	}
	for _, m := range mutate {
		cfg := base
		m.fn(&cfg)
		if keyOf(cfg, "fir") == keyOf(base, "fir") {
			t.Errorf("configs differing in %s share a key", m.name)
		}
	}
	// The historical packed-int collisions specifically.
	a, b := base, base
	a.DMAOutstanding = 100
	b.L2Banks = 1
	if keyOf(a, "fir") == keyOf(b, "fir") {
		t.Error("DMAOutstanding=100 and L2Banks=1 share a key (the old packed-int bug)")
	}
	a, b = base, base
	a.L2Banks = 100
	b.DRAMChannels = 1
	if keyOf(a, "fir") == keyOf(b, "fir") {
		t.Error("L2Banks=100 and DRAMChannels=1 share a key (the old packed-int bug)")
	}
	if keyOf(base, "fir") == keyOf(base, "art") {
		t.Error("different workloads share a key")
	}
	// The tracer is a run-scoped observer, not machine identity: it must
	// not defeat memoization.
	c := base
	c.Trace = cpu.Tracer(nil)
	if keyOf(c, "fir") != keyOf(base, "fir") {
		t.Error("Trace field leaked into the memo key")
	}
	c = base
	c.TxnTrace = txntrace.New()
	if keyOf(c, "fir") != keyOf(base, "fir") {
		t.Error("TxnTrace field leaked into the memo key")
	}
}

// figureGrid renders the Figure 2 grid for two apps with the given
// worker count, returning the exact bytes written. With txnK > 0 every
// fresh simulation is traced with worst-K exemplars, and the second
// return holds the merged transaction artifacts in deterministic run
// order: each run's tree JSONL plus its Chrome-trace merge (spans and
// flow events), so any -j-dependent divergence in either sink fails the
// byte compare.
func figureGrid(t *testing.T, workers, txnK int) (fig, txn []byte) {
	t.Helper()
	r := NewRunner(workload.ScaleSmall)
	r.Workers = workers
	var mu sync.Mutex
	var recs []Record
	if txnK > 0 {
		r.TxnExemplars = txnK
		r.OnRecord = func(rec Record) {
			mu.Lock()
			recs = append(recs, rec)
			mu.Unlock()
		}
	}
	var out bytes.Buffer
	if _, err := r.Figure2(&out, []string{"fir", "depth"}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if txnK == 0 {
		return out.Bytes(), nil
	}
	type keyed struct {
		key string
		rec Record
	}
	ks := make([]keyed, 0, len(recs))
	for _, rec := range recs {
		cj, err := json.Marshal(rec.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, keyed{rec.Name + "\x00" + string(cj), rec})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	var tb bytes.Buffer
	tc := trace.New()
	for _, k := range ks {
		fmt.Fprintf(&tb, "## %s\n", k.key)
		if k.rec.Txn == nil {
			t.Fatalf("record %s carries no tracer", k.rec.Name)
		}
		if err := k.rec.Txn.WriteJSONL(&tb); err != nil {
			t.Fatal(err)
		}
		k.rec.Txn.MergeChrome(tc)
	}
	if err := tc.WriteChrome(&tb); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), tb.Bytes()
}

// TestParallelDeterminism runs the same figure grid at -j 1 and -j 8 and
// requires byte-identical reports. Every simulation is a deterministic
// isolated engine, so any divergence here is a data race in the runner.
// The traced pass repeats the comparison with per-run transaction
// tracing armed: the figure bytes must not move (tracing is
// zero-perturbation even across a concurrent campaign) and the merged
// transaction artifacts — tree JSONL plus the Chrome trace with its
// flow events — must be stable across -j too.
func TestParallelDeterminism(t *testing.T) {
	seq, _ := figureGrid(t, 1, 0)
	par, _ := figureGrid(t, 8, 0)
	if !bytes.Equal(seq, par) {
		t.Fatalf("figure output differs between -j 1 (%d bytes) and -j 8 (%d bytes)", len(seq), len(par))
	}
	seqT, seqTxn := figureGrid(t, 1, 4)
	parT, parTxn := figureGrid(t, 8, 4)
	if !bytes.Equal(seqT, seq) {
		t.Fatal("arming the transaction tracer changed the figure output")
	}
	if !bytes.Equal(seqT, parT) {
		t.Fatal("traced figure output differs between -j 1 and -j 8")
	}
	if len(seqTxn) == 0 {
		t.Fatal("traced grid produced no transaction artifacts")
	}
	if !bytes.Equal(seqTxn, parTxn) {
		t.Fatalf("transaction artifacts differ between -j 1 (%d bytes) and -j 8 (%d bytes)", len(seqTxn), len(parTxn))
	}
}

// TestPrefetchSingleflight checks that concurrent requests for one key
// simulate once: Prefetch plus many concurrent Runs must return the same
// report pointer.
func TestPrefetchSingleflight(t *testing.T) {
	r := NewRunner(workload.ScaleSmall)
	r.Workers = 4
	cfg := core.DefaultConfig(core.CC, 2)
	r.Prefetch([]Job{{cfg, "fir"}, {cfg, "fir"}})
	const callers = 8
	reps := make([]*core.Report, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := r.Run(cfg, "fir")
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = rep
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if reps[i] != reps[0] {
			t.Fatal("concurrent Runs returned different reports for one key")
		}
	}
	r.mu.Lock()
	scheduled := r.scheduled
	r.mu.Unlock()
	if scheduled != 1 {
		t.Fatalf("scheduled %d simulations for one key, want 1", scheduled)
	}
}

// TestProgressCollector checks that progress lines are serialized through
// the collector with a completed-count prefix.
func TestProgressCollector(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(workload.ScaleSmall)
	r.Workers = 4
	r.Progress = &buf
	r.Prefetch([]Job{
		{core.DefaultConfig(core.CC, 1), "fir"},
		{core.DefaultConfig(core.CC, 2), "fir"},
		{core.DefaultConfig(core.STR, 2), "fir"},
	})
	if _, err := r.Run(core.DefaultConfig(core.CC, 2), "fir"); err != nil {
		t.Fatal(err)
	}
	// Wait for the whole grid, then drain the collector.
	for _, cfg := range []core.Config{core.DefaultConfig(core.CC, 1), core.DefaultConfig(core.STR, 2)} {
		if _, err := r.Run(cfg, "fir"); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d progress lines, want 3:\n%s", len(lines), buf.String())
	}
	seen := map[string]bool{}
	for _, ln := range lines {
		if !bytes.HasPrefix(ln, []byte("# [")) {
			t.Errorf("progress line missing completed-count prefix: %q", ln)
		}
		seen[string(ln[:6])] = true
	}
	for _, want := range []string{"# [1/3", "# [2/3", "# [3/3"} {
		if !seen[want] {
			t.Errorf("no progress line with prefix %q:\n%s", want, buf.String())
		}
	}
}

// TestCloseIdempotent is the regression test for double-Close: the CLI
// closes the runner on its normal path and again from its finish
// wrapper, and a second Close used to be a latent panic on the progress
// channel once Close grew teardown. Both orders — after a campaign and
// on a zero-job runner — must be safe no-ops.
func TestCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(workload.ScaleSmall)
	r.Progress = &buf
	if _, err := r.Run(core.DefaultConfig(core.CC, 1), "fir"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close()

	zero := NewRunner(workload.ScaleSmall)
	zero.Progress = &buf
	zero.Close()
	zero.Close()
}

// TestRunnerFeedsTelemetry proves the runner walks spans through the
// campaign table: fresh simulations open and close spans, duplicate
// requests count as memo hits without opening one, and seeded results
// arrive in the memo-hit terminal state.
func TestRunnerFeedsTelemetry(t *testing.T) {
	c := telemetry.NewCampaign()
	c.BeginGroup("fig2")
	r := NewRunner(workload.ScaleSmall)
	r.Workers = 2
	r.Telemetry = c
	r.Seed(core.DefaultConfig(core.CC, 2), "fir", &core.Report{})
	cfg := core.DefaultConfig(core.CC, 1)
	if _, err := r.Run(cfg, "fir"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(cfg, "fir"); err != nil { // same key: memo hit
		t.Fatal(err)
	}
	r.Close()

	s := c.Snapshot(true)
	if s.Enqueued != 2 || s.Done != 1 || s.MemoSpan != 1 || s.MemoHits != 1 || s.MemoMisses != 1 {
		t.Fatalf("campaign snapshot: %+v", s)
	}
	if s.Queued+s.Running+s.Retrying != 0 {
		t.Fatalf("spans left open: %+v", s)
	}
	var fresh *telemetry.SpanSnapshot
	for i := range s.Spans {
		if s.Spans[i].State == "done" {
			fresh = &s.Spans[i]
		}
	}
	if fresh == nil {
		t.Fatalf("no done span: %+v", s.Spans)
	}
	if fresh.Workload != "fir" || fresh.Figure != "fig2" || fresh.Attempts != 1 || len(fresh.AttemptsNS) != 1 {
		t.Fatalf("fresh span: %+v", fresh)
	}
	if fresh.EndedNS == 0 || fresh.AttemptsNS[0] <= 0 {
		t.Fatalf("span timings: %+v", fresh)
	}
}

// TestRecordCarriesPoolResidency pins the manifest schema additions:
// every fresh-simulation Record reports its queue wait and per-attempt
// wall times under the queue_wait_ns / attempts_ns keys.
func TestRecordCarriesPoolResidency(t *testing.T) {
	r := NewRunner(workload.ScaleSmall)
	var mu sync.Mutex
	var recs []Record
	r.OnRecord = func(rec Record) {
		mu.Lock()
		recs = append(recs, rec)
		mu.Unlock()
	}
	if _, err := r.Run(core.DefaultConfig(core.CC, 1), "fir"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if len(rec.AttemptsNS) != 1 || rec.AttemptsNS[0] <= 0 {
		t.Fatalf("attempts_ns = %v, want one positive entry", rec.AttemptsNS)
	}
	if rec.QueueWaitNS < 0 || rec.AttemptsNS[0] > rec.HostNS+rec.QueueWaitNS {
		t.Fatalf("implausible residency: queue=%d attempt=%d host=%d",
			rec.QueueWaitNS, rec.AttemptsNS[0], rec.HostNS)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"queue_wait_ns"`, `"attempts_ns"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Fatalf("marshalled record lacks %s: %s", key, raw)
		}
	}
}

package bench

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestCfgKeyNoCollisions is the regression test for the old string key,
// which packed DMAOutstanding+L2Banks*100+DRAMChannels*10000 into one
// integer (so e.g. DMAOutstanding=100 collided with L2Banks=1) and
// omitted fields like StoreBuffer entirely. The struct key must separate
// every pair of configs that differ in any field.
func TestCfgKeyNoCollisions(t *testing.T) {
	base := core.DefaultConfig(core.CC, 4)
	mutate := []struct {
		name string
		fn   func(*core.Config)
	}{
		{"Model", func(c *core.Config) { c.Model = core.STR }},
		{"Cores", func(c *core.Config) { c.Cores = 8 }},
		{"CoreMHz", func(c *core.Config) { c.CoreMHz = 3200 }},
		{"DRAMBandwidthMBps", func(c *core.Config) { c.DRAMBandwidthMBps = 12800 }},
		{"PrefetchDepth", func(c *core.Config) { c.PrefetchDepth = 4 }},
		{"NoWriteAllocate", func(c *core.Config) { c.NoWriteAllocate = true }},
		{"SnoopFilter", func(c *core.Config) { c.SnoopFilter = true }},
		{"InstrPerIMiss", func(c *core.Config) { c.InstrPerIMiss = 100 }},
		{"IMissPenalty", func(c *core.Config) { c.IMissPenalty = 40 * sim.Nanosecond }},
		{"MaxSimTime", func(c *core.Config) { c.MaxSimTime = sim.Second }},
		{"L2SizeKB", func(c *core.Config) { c.L2SizeKB = 1024 }},
		{"L2Banks", func(c *core.Config) { c.L2Banks = 2 }},
		{"DRAMChannels", func(c *core.Config) { c.DRAMChannels = 2 }},
		{"CoresPerCluster", func(c *core.Config) { c.CoresPerCluster = 2 }},
		{"DMAOutstanding", func(c *core.Config) { c.DMAOutstanding = 4 }},
		{"StoreBuffer", func(c *core.Config) { c.StoreBuffer = 1 }},
	}
	for _, m := range mutate {
		cfg := base
		m.fn(&cfg)
		if keyOf(cfg, "fir") == keyOf(base, "fir") {
			t.Errorf("configs differing in %s share a key", m.name)
		}
	}
	// The historical packed-int collisions specifically.
	a, b := base, base
	a.DMAOutstanding = 100
	b.L2Banks = 1
	if keyOf(a, "fir") == keyOf(b, "fir") {
		t.Error("DMAOutstanding=100 and L2Banks=1 share a key (the old packed-int bug)")
	}
	a, b = base, base
	a.L2Banks = 100
	b.DRAMChannels = 1
	if keyOf(a, "fir") == keyOf(b, "fir") {
		t.Error("L2Banks=100 and DRAMChannels=1 share a key (the old packed-int bug)")
	}
	if keyOf(base, "fir") == keyOf(base, "art") {
		t.Error("different workloads share a key")
	}
	// The tracer is a run-scoped observer, not machine identity: it must
	// not defeat memoization.
	c := base
	c.Trace = cpu.Tracer(nil)
	if keyOf(c, "fir") != keyOf(base, "fir") {
		t.Error("Trace field leaked into the memo key")
	}
}

// figureGrid renders the Figure 2 grid for two apps with the given
// worker count, returning the exact bytes written.
func figureGrid(t *testing.T, workers int) []byte {
	t.Helper()
	r := NewRunner(workload.ScaleSmall)
	r.Workers = workers
	var out bytes.Buffer
	if _, err := r.Figure2(&out, []string{"fir", "depth"}); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestParallelDeterminism runs the same figure grid at -j 1 and -j 8 and
// requires byte-identical reports. Every simulation is a deterministic
// isolated engine, so any divergence here is a data race in the runner.
func TestParallelDeterminism(t *testing.T) {
	seq := figureGrid(t, 1)
	par := figureGrid(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("figure output differs between -j 1 (%d bytes) and -j 8 (%d bytes)", len(seq), len(par))
	}
}

// TestPrefetchSingleflight checks that concurrent requests for one key
// simulate once: Prefetch plus many concurrent Runs must return the same
// report pointer.
func TestPrefetchSingleflight(t *testing.T) {
	r := NewRunner(workload.ScaleSmall)
	r.Workers = 4
	cfg := core.DefaultConfig(core.CC, 2)
	r.Prefetch([]Job{{cfg, "fir"}, {cfg, "fir"}})
	const callers = 8
	reps := make([]*core.Report, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := r.Run(cfg, "fir")
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = rep
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if reps[i] != reps[0] {
			t.Fatal("concurrent Runs returned different reports for one key")
		}
	}
	r.mu.Lock()
	scheduled := r.scheduled
	r.mu.Unlock()
	if scheduled != 1 {
		t.Fatalf("scheduled %d simulations for one key, want 1", scheduled)
	}
}

// TestProgressCollector checks that progress lines are serialized through
// the collector with a completed-count prefix.
func TestProgressCollector(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(workload.ScaleSmall)
	r.Workers = 4
	r.Progress = &buf
	r.Prefetch([]Job{
		{core.DefaultConfig(core.CC, 1), "fir"},
		{core.DefaultConfig(core.CC, 2), "fir"},
		{core.DefaultConfig(core.STR, 2), "fir"},
	})
	if _, err := r.Run(core.DefaultConfig(core.CC, 2), "fir"); err != nil {
		t.Fatal(err)
	}
	// Wait for the whole grid, then drain the collector.
	for _, cfg := range []core.Config{core.DefaultConfig(core.CC, 1), core.DefaultConfig(core.STR, 2)} {
		if _, err := r.Run(cfg, "fir"); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d progress lines, want 3:\n%s", len(lines), buf.String())
	}
	seen := map[string]bool{}
	for _, ln := range lines {
		if !bytes.HasPrefix(ln, []byte("# [")) {
			t.Errorf("progress line missing completed-count prefix: %q", ln)
		}
		seen[string(ln[:6])] = true
	}
	for _, want := range []string{"# [1/3", "# [2/3", "# [3/3"} {
		if !seen[want] {
			t.Errorf("no progress line with prefix %q:\n%s", want, buf.String())
		}
	}
}

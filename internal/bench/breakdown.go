package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/stats"
)

// breakdownCores is the core count the cycle-accounting figure reports:
// the largest machine before Figure 2's 16-core tail, keeping the
// ledger-enabled campaign affordable while still showing contention.
const breakdownCores = 8

// BreakdownBar is one stacked cycle-accounting bar: the fraction of the
// machine's total core-cycles (cores × wall) in each ledger class. The
// fractions sum to 1 by the conservation invariant. Err marks a failed
// cell, as on Bar.
type BreakdownBar struct {
	Label   string
	Classes [ledger.NumClasses]float64
	Err     bool
}

// errBreakdown is the placeholder for a failed cycle-accounting cell.
func errBreakdown(label string) BreakdownBar { return BreakdownBar{Label: label, Err: true} }

// breakdownBar folds a ledger-enabled report's per-core class totals
// into machine-wide fractions.
func breakdownBar(label string, rep *core.Report) BreakdownBar {
	b := BreakdownBar{Label: label}
	total := float64(rep.Wall) * float64(len(rep.Cycles.PerCore))
	if total == 0 {
		return b
	}
	for _, row := range rep.Cycles.PerCore {
		for c, v := range row {
			b.Classes[c] += float64(v) / total
		}
	}
	return b
}

func writeBreakdown(w io.Writer, title string, bars []BreakdownBar) {
	names := ledger.ClassNames()
	tb := stats.NewTable(title, append([]string{"config"}, names...)...)
	ch := stats.Chart{SegNames: names, Max: 1.0}
	for _, b := range bars {
		if b.Err {
			row := make([]interface{}, len(names))
			for i := range row {
				row[i] = "ERR"
			}
			tb.Row(append([]interface{}{b.Label}, row...)...)
			continue
		}
		row := []interface{}{b.Label}
		segs := make([]float64, len(b.Classes))
		for c, v := range b.Classes {
			row = append(row, v)
			segs[c] = v
		}
		tb.Row(row...)
		ch.Bars = append(ch.Bars, stats.StackedBar{Label: b.Label, Segments: segs})
	}
	tb.WriteText(w)
	ch.Write(w)
}

// FigureBreakdown produces the cycle-accounting figure: where every
// core cycle goes, per application, CC versus STR side by side at 8
// cores. Each bar self-normalizes to its machine's total core-cycles,
// so the stacks always fill to 1.0 and the models' class mixes compare
// directly even when their wall times differ.
func (r *Runner) FigureBreakdown(w io.Writer, apps []string) (map[string][]BreakdownBar, error) {
	if apps == nil {
		apps = AllApps
	}
	cfgOf := func(model core.Model) core.Config {
		cfg := core.DefaultConfig(model, breakdownCores)
		cfg.CycleLedger = true
		return cfg
	}
	var jobs []Job
	for _, app := range apps {
		for _, model := range []core.Model{core.CC, core.STR} {
			jobs = append(jobs, Job{cfgOf(model), app})
		}
	}
	r.Prefetch(jobs)
	g := &gridTracker{}
	out := map[string][]BreakdownBar{}
	for _, app := range apps {
		var bars []BreakdownBar
		for _, model := range []core.Model{core.CC, core.STR} {
			label := model.String()
			rep, err := r.Run(cfgOf(model), app)
			if !g.cell(err) {
				bars = append(bars, errBreakdown(label))
				continue
			}
			bars = append(bars, breakdownBar(label, rep))
		}
		out[app] = bars
		writeBreakdown(w, fmt.Sprintf("Cycle accounting [%s]: class fractions (%d cores)", app, breakdownCores), bars)
	}
	return out, g.finish(w, "Cycle accounting")
}

// Package bench regenerates every table and figure of the paper's
// evaluation (Table 3, Figures 2 through 10) on the simulator. Each
// generator returns the measured series and writes a plain-text table;
// cmd/paperbench drives them all and EXPERIMENTS.md records the
// paper-versus-measured comparison.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/resultstore"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/txntrace"
	"repro/internal/warnonce"
	"repro/internal/workload"
)

// AllApps is the paper's application list in Table 3 order.
var AllApps = []string{
	"mpeg2", "h264", "raytracer", "jpeg-encode", "jpeg-decode",
	"depth", "fem", "fir", "art", "bitonicsort", "mergesort",
}

// Job names one simulation: a machine configuration and a workload.
type Job struct {
	Cfg  core.Config
	Name string
}

// cfgKey identifies a simulation in the memo table. Embedding the whole
// Config keeps the key collision-free by construction: every field —
// including ones added later — participates in equality, so two distinct
// configurations can never alias one cache slot.
type cfgKey struct {
	name string
	cfg  core.Config
}

func keyOf(cfg core.Config, name string) cfgKey {
	// Config.Normalize strips the run-scoped observers (tracer, probe,
	// flight recorder): they are not part of the machine's identity, so
	// the struct stays comparable, observed runs memoize against
	// unobserved ones (and manifests written before the recorder existed
	// still seed -resume). The persistent result store hashes the same
	// normalized config, so memo identity and store identity agree.
	return cfgKey{name: name, cfg: cfg.Normalize()}
}

// Record describes one fresh simulation for machine-readable run
// artifacts (paperbench's manifest.jsonl): the full configuration, the
// measurement report, and how long the simulation took on the host.
// Memoized cache hits do not produce records — a record is one actual
// engine run; neither do results seeded from a previous manifest
// (Runner.Seed).
type Record struct {
	Name   string       `json:"workload"`
	Cfg    core.Config  `json:"config"`
	Report *core.Report `json:"report,omitempty"`
	Err    string       `json:"error,omitempty"`
	HostNS int64        `json:"host_ns"`
	// Failure diagnostics, present only when Err is set: the error kind,
	// how many attempts were made (retries count), and the engine-state
	// snapshot for failures the engine produced one for.
	ErrKind     string           `json:"error_kind,omitempty"`
	Attempts    int              `json:"attempts,omitempty"`
	EngineState *sim.EngineState `json:"engine_state,omitempty"`
	// Pool-residency diagnostics: how long the job waited for a worker
	// slot after admission, and each attempt's wall time (len > 1 means
	// the watchdog or a panic forced retries). Together with HostNS they
	// let -resume analysis distinguish queue pressure from slow sims.
	QueueWaitNS int64   `json:"queue_wait_ns"`
	AttemptsNS  []int64 `json:"attempts_ns,omitempty"`
	// TailExemplars is the run's transaction-tracer digest — per latency
	// class, how many transactions were observed and the slowest one's
	// identity — present when the Runner armed per-run tracers
	// (TxnExemplars) or the caller attached one via Config.TxnTrace.
	TailExemplars []txntrace.ClassSummary `json:"tail_exemplars,omitempty"`
	// Txn is the run's tracer itself, for callers that export the
	// exemplar trees (paperbench's -txn-trace sink). Never serialized:
	// the digest above is the manifest form.
	Txn *txntrace.Tracer `json:"-"`
}

// flight is one simulation's singleflight slot: the first requester of a
// key becomes its leader and simulates; everyone else waits on done.
type flight struct {
	done chan struct{}
	rep  *core.Report
	err  error
	// enqueuedAt stamps admission so queue_wait_ns works with or without
	// a Campaign attached; span is the job's telemetry handle (nil-safe).
	enqueuedAt time.Time
	span       *telemetry.Span
}

// Runner executes workload/configuration pairs on a bounded worker pool
// with memoization, so shared baselines (e.g. the 1-core CC run every
// figure normalizes to) are simulated once. Each simulation is an
// isolated sim.Engine world, so independent keys run concurrently;
// requests for a key already in flight wait for the running simulation
// instead of repeating it. All methods are safe for concurrent use.
//
// Two-phase usage: Prefetch fans a figure's whole grid out to the pool
// without blocking, then the figure generator collects results with the
// blocking Run in its usual deterministic order. Because simulations are
// deterministic and memoized, figure output is byte-identical at any
// worker count.
type Runner struct {
	Scale workload.Scale
	// Progress, when non-nil, receives one line per fresh simulation,
	// serialized through a single collector goroutine and prefixed with
	// a completed-count [12/88]. Set it before the first Run or Prefetch.
	Progress io.Writer
	// Workers bounds concurrent simulations; 0 means
	// runtime.GOMAXPROCS(0). Set it before the first Run or Prefetch.
	Workers int
	// OnRecord, when non-nil, receives one Record per fresh simulation
	// as it completes. It is called from worker goroutines concurrently;
	// the callback must be safe for concurrent use. Set it before the
	// first Run or Prefetch.
	OnRecord func(Record)
	// JobTimeout, when positive, arms a wall-clock watchdog per job: a
	// simulation still running after this much host time is cancelled
	// cooperatively (core.System.Abort) and fails with a timeout
	// JobError carrying the engine's progress dump. Zero disables it.
	JobTimeout time.Duration
	// Retries is the per-job retry budget for retryable failures
	// (timeouts and panics; see JobError.Retryable). Attempts are spaced
	// by exponential backoff whose jitter derives from the deterministic
	// job key, not the clock. Deterministic failures are never retried.
	Retries int
	// Telemetry, when non-nil, receives per-job lifecycle spans and
	// campaign counters (internal/telemetry) for the -http endpoints and
	// the TTY status line. Purely observational: figure output is
	// byte-identical with it attached or not. Set it before the first
	// Run or Prefetch. All Campaign methods are nil-safe, so the zero
	// Runner needs no guards.
	Telemetry *telemetry.Campaign
	// Store, when non-nil, is the persistent cross-campaign result store
	// (-store): each admitted job probes it before simulating and a hit
	// resolves the flight without running the engine — no Record, no
	// ok/failed movement, a "(store)" progress marker — while a miss
	// simulates normally and writes the verified report back. Store keys
	// include the Runner's dataset Scale, so campaigns sharing one store
	// directory at different -scale values never serve each other's
	// reports. Corrupt or version-mismatched records are misses by
	// construction (the store quarantines them), so an un-trustworthy
	// store can only cost time, never correctness. Set it before the
	// first Run or Prefetch.
	Store *resultstore.Store
	// FlightRecorder sizes the engine flight recorder armed for every
	// fresh simulation (the last K scheduler events, embedded in typed
	// failures' engine-state snapshots): 0 means the default of 256
	// events, negative disables recording. The recorder is run-scoped —
	// excluded from the memo key and from manifest configs — and its
	// disabled cost on the engine is one nil compare per record site.
	FlightRecorder int
	// TxnExemplars, when positive, arms a per-run transaction tracer
	// (internal/txntrace) for every fresh simulation with that worst-K
	// exemplar reservoir depth per latency class. Run-scoped like the
	// flight recorder: excluded from memo and store identity, reports
	// stay byte-identical. Each fresh Record then carries the run's
	// tracer and its tail_exemplars digest, and campaign telemetry
	// aggregates the per-class rollups. A caller-set Config.TxnTrace
	// wins over the Runner's arming.
	TxnExemplars int

	initOnce  sync.Once
	closeOnce sync.Once
	sem       chan struct{} // worker slots
	progCh    chan string
	progWG    sync.WaitGroup

	storeWarn warnonce.Warner // store write failures surface once, not per-job

	mu        sync.Mutex
	cache     map[cfgKey]*flight
	scheduled int // simulations admitted to the pool (the "/88")
	completed int // simulations finished (the "12")
	okCount   int // fresh simulations that succeeded
	failCount int // fresh simulations that failed (after retries)
	storeHits int // jobs answered by the persistent store
}

// defaultFlightRecorder is the per-job flight-recorder depth when the
// Runner's FlightRecorder field is zero: enough events to cover the
// whole dispatch chain around a deadlock or watchdog abort while
// keeping a ring small enough to embed in manifest records.
const defaultFlightRecorder = 256

// NewRunner returns a Runner at the given dataset scale.
func NewRunner(scale workload.Scale) *Runner {
	return &Runner{Scale: scale, cache: map[cfgKey]*flight{}}
}

// init sizes the pool and starts the progress collector on first use.
func (r *Runner) init() {
	r.initOnce.Do(func() {
		n := r.Workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		r.sem = make(chan struct{}, n)
		r.Telemetry.SetWorkers(n)
		if r.Progress != nil {
			r.progCh = make(chan string, 64)
			r.progWG.Add(1)
			go func() {
				defer r.progWG.Done()
				for line := range r.progCh {
					io.WriteString(r.Progress, line)
				}
			}()
		}
	})
}

// Close drains the progress collector. Call it after the last Run when
// Progress is set; the Runner must not be used afterwards. Idempotent:
// a second Close — including after a zero-job campaign — is a safe
// no-op (closeOnce guards the channel close, so double-Close can never
// panic even as Close grows more teardown).
func (r *Runner) Close() {
	r.init()
	r.closeOnce.Do(func() {
		if r.progCh != nil {
			close(r.progCh)
			r.progWG.Wait()
			r.progCh = nil
		}
	})
}

// admit returns the flight for a key, creating it (leader=true) if this
// caller is the first to request it.
func (r *Runner) admit(cfg core.Config, name string) (fl *flight, leader bool) {
	r.init()
	key := keyOf(cfg, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if fl, ok := r.cache[key]; ok {
		r.Telemetry.MemoHit()
		return fl, false
	}
	fl = &flight{done: make(chan struct{}), enqueuedAt: time.Now()}
	fl.span = r.Telemetry.Enqueue(name, cfgLabel(cfg))
	r.cache[key] = fl
	r.scheduled++
	return fl, true
}

// cfgLabel is the short config descriptor spans carry in /progress,
// mirroring the progress line's fields.
func cfgLabel(cfg core.Config) string {
	return fmt.Sprintf("%v %d cores @%d MHz bw=%d pf=%d",
		cfg.Model, cfg.Cores, cfg.CoreMHz, cfg.DRAMBandwidthMBps, cfg.PrefetchDepth)
}

// simulate runs one admitted job — with validation, watchdog and retry
// budget — and publishes its result. Any failure becomes a structured
// *JobError on the flight; nothing a job does can panic the pool.
func (r *Runner) simulate(fl *flight, cfg core.Config, name string) {
	defer close(fl.done)
	started := time.Now()
	queueWait := started.Sub(fl.enqueuedAt)
	fl.span.Start()
	// Probe the persistent store before simulating. A verified hit
	// resolves the flight like a memo hit from a previous campaign: no
	// Record (nothing ran here), no ok/fail movement, and the progress
	// line carries a "(store)" marker so a resumed campaign's log shows
	// what was recalled versus re-simulated.
	if r.Store != nil {
		if rep, ok := r.Store.Get(cfg, name, r.Scale.String()); ok {
			fl.rep = rep
			fl.span.StoreHit()
			r.mu.Lock()
			r.completed++
			r.storeHits++
			done, total := r.completed, r.scheduled
			r.mu.Unlock()
			if r.progCh != nil {
				r.progCh <- fmt.Sprintf("# [%d/%d] %-14s %v %2d cores @%4d MHz bw=%d pf=%d (store)\n",
					done, total, name, cfg.Model, cfg.Cores, cfg.CoreMHz, cfg.DRAMBandwidthMBps, cfg.PrefetchDepth)
			}
			return
		}
	}
	rep, tr, attemptsNS, jerr := r.attemptWithRetries(cfg, name, fl.span)
	fl.rep = rep
	if jerr != nil {
		fl.err = jerr // typed-nil guard: only assign a non-nil *JobError
		fl.span.Fail(string(jerr.Kind))
	} else {
		fl.span.Done()
		r.feedObservability(cfg, rep, tr)
		// Persist the verified result. A failed write never fails the
		// job — the report is already in hand — and the first failure is
		// warned once; the store's PutErrors counter tracks the rest.
		if r.Store != nil && rep != nil {
			if perr := r.Store.Put(cfg, name, r.Scale.String(), rep); perr != nil {
				r.storeWarn.Warnf("# result store: write failed (further errors counted, not repeated): %v", perr)
			}
		}
	}
	if r.OnRecord != nil {
		rec := Record{Name: name, Cfg: cfg, Report: rep, HostNS: time.Since(started).Nanoseconds(),
			QueueWaitNS: queueWait.Nanoseconds(), AttemptsNS: attemptsNS}
		if tr != nil {
			rec.Txn = tr
			rec.TailExemplars = tr.Summary()
		}
		if jerr != nil {
			rec.Err = jerr.Error()
			rec.ErrKind = string(jerr.Kind)
			rec.Attempts = jerr.Attempts
			rec.EngineState = jerr.State
		}
		r.OnRecord(rec)
	}

	r.mu.Lock()
	r.completed++
	if jerr != nil {
		r.failCount++
	} else {
		r.okCount++
	}
	done, total := r.completed, r.scheduled
	r.mu.Unlock()
	if r.progCh != nil {
		status := ""
		if jerr != nil {
			status = fmt.Sprintf(" FAILED (%s)", jerr.Kind)
		}
		r.progCh <- fmt.Sprintf("# [%d/%d] %-14s %v %2d cores @%4d MHz bw=%d pf=%d%s\n",
			done, total, name, cfg.Model, cfg.Cores, cfg.CoreMHz, cfg.DRAMBandwidthMBps, cfg.PrefetchDepth, status)
	}
}

// attemptWithRetries drives the retry loop: one attempt, plus up to
// Retries more for retryable failures, spaced by deterministic backoff.
// It returns each attempt's wall time alongside the result, and walks
// the span through retrying → running around every backoff.
func (r *Runner) attemptWithRetries(cfg core.Config, name string, sp *telemetry.Span) (*core.Report, *txntrace.Tracer, []int64, *JobError) {
	var attemptsNS []int64
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		rep, tr, jerr := r.attempt(cfg, name)
		d := time.Since(t0)
		attemptsNS = append(attemptsNS, d.Nanoseconds())
		sp.Attempt(d)
		if jerr == nil {
			return rep, tr, attemptsNS, nil
		}
		jerr.Attempts = attempt + 1
		if attempt >= r.Retries || !jerr.Retryable() {
			return nil, nil, attemptsNS, jerr
		}
		sp.Retry()
		time.Sleep(backoffDelay(name, cfg, attempt))
		sp.Start()
	}
}

// attempt runs the job once. Validation happens before core.New, so a
// bad configuration fails typed and synchronously — no goroutine ever
// spawns for it; the watchdog (JobTimeout) covers the simulation run.
func (r *Runner) attempt(cfg core.Config, name string) (*core.Report, *txntrace.Tracer, *JobError) {
	f, ferr := workload.Get(name)
	if ferr != nil {
		return nil, nil, &JobError{Name: name, Cfg: cfg, Kind: ErrWorkload, Attempts: 1, Err: ferr}
	}
	if verr := keyOf(cfg, name).cfg.Validate(); verr != nil {
		return nil, nil, &JobError{Name: name, Cfg: cfg, Kind: ErrConfig, Attempts: 1, Err: verr}
	}
	// Arm the flight recorder for this run (it is run-scoped: keyOf
	// strips it, and Record.Cfg carries the caller's value, so manifests
	// and memo identity are unchanged). A caller-set size wins; else the
	// Runner's default, so every typed failure in a campaign carries the
	// event tail that led there.
	if cfg.FlightRecorder == 0 {
		switch {
		case r.FlightRecorder > 0:
			cfg.FlightRecorder = r.FlightRecorder
		case r.FlightRecorder == 0:
			cfg.FlightRecorder = defaultFlightRecorder
		}
	} else if cfg.FlightRecorder < 0 {
		cfg.FlightRecorder = 0
	}
	// Arm a fresh transaction tracer per attempt (run-scoped like the
	// recorder: stripped by keyOf, json:"-" in manifests). A retried
	// attempt's partial tracer is discarded with the attempt.
	tr := cfg.TxnTrace
	if tr == nil && r.TxnExemplars > 0 {
		tr = &txntrace.Tracer{K: r.TxnExemplars}
		cfg.TxnTrace = tr
	}
	sys := core.New(cfg)
	if r.JobTimeout > 0 {
		watchdog := time.AfterFunc(r.JobTimeout, func() {
			sys.Abort(fmt.Sprintf("watchdog: job exceeded %v wall clock", r.JobTimeout))
		})
		defer watchdog.Stop()
	}
	rep, err := sys.Run(f(r.Scale))
	if err != nil {
		return nil, nil, classify(name, cfg, err)
	}
	return rep, tr, nil
}

// feedObservability folds one fresh run's latency distribution and
// transaction-tracer rollup into campaign telemetry: each report bucket
// replays into the campaign-wide per-class histograms (converted to
// core cycles, so runs at different clocks aggregate on one axis), and
// the tracer's class digests accumulate into the /progress and /metrics
// txn rollup. Nil-safe throughout.
func (r *Runner) feedObservability(cfg core.Config, rep *core.Report, tr *txntrace.Tracer) {
	if r.Telemetry == nil {
		return
	}
	if rep != nil && rep.Latency != nil {
		period := sim.MHz(cfg.CoreMHz).Period
		if period > 0 {
			rep.Latency.Each(func(name string, d *ledger.Dist) {
				for _, b := range d.Buckets {
					r.Telemetry.RecordLatency(name, uint64(b.HiFS)/uint64(period), b.Count)
				}
			})
		}
	}
	for _, s := range tr.Summary() {
		r.Telemetry.RecordTxnClass(s.Class, s.Count, s.Exemplars, s.SlowestID, s.SlowestFS)
	}
}

// Seed inserts an already-known result into the memo table (paperbench
// -resume replays successful manifest records through it). Seeded keys
// count as cache hits: they produce no Record, no progress line, and do
// not move the ok/failed counters. Returns false when the key is
// already present (first writer wins). Call before Run/Prefetch.
func (r *Runner) Seed(cfg core.Config, name string, rep *core.Report) bool {
	r.init()
	key := keyOf(cfg, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cache[key]; ok {
		return false
	}
	fl := &flight{done: make(chan struct{}), rep: rep, enqueuedAt: time.Now()}
	close(fl.done)
	r.cache[key] = fl
	r.Telemetry.Seed(name, cfgLabel(cfg))
	return true
}

// Outcome returns how many fresh simulations succeeded and failed so
// far. Seeded, memoized and store-served results are not counted: they
// reflect work a previous campaign already did.
func (r *Runner) Outcome() (ok, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.okCount, r.failCount
}

// StoreHits returns how many admitted jobs the persistent result store
// answered without simulating.
func (r *Runner) StoreHits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.storeHits
}

// Prefetch fans jobs out to the worker pool without blocking. Keys
// already cached or in flight are skipped; errors surface when the
// corresponding Run collects the result. The whole grid is admitted
// before any worker starts, so the progress denominator covers it.
func (r *Runner) Prefetch(jobs []Job) {
	type admitted struct {
		job Job
		fl  *flight
	}
	var fresh []admitted
	for _, j := range jobs {
		if fl, leader := r.admit(j.Cfg, j.Name); leader {
			fresh = append(fresh, admitted{j, fl})
		}
	}
	for _, a := range fresh {
		go func(a admitted) {
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			r.simulate(a.fl, a.job.Cfg, a.job.Name)
		}(a)
	}
}

// Run simulates (or recalls, or awaits) one configuration.
func (r *Runner) Run(cfg core.Config, name string) (*core.Report, error) {
	fl, leader := r.admit(cfg, name)
	if leader {
		r.sem <- struct{}{}
		r.simulate(fl, cfg, name)
		<-r.sem
	} else {
		<-fl.done
	}
	if fl.err != nil {
		// Every collection of a failed key is one poisoned figure cell
		// (the ERR markers); count the blast radius for telemetry.
		r.Telemetry.ErrCell()
	}
	return fl.rep, fl.err
}

// baselineCfg is the run the paper normalizes to: one 800 MHz CC core,
// default bandwidth.
func baselineCfg() core.Config { return core.DefaultConfig(core.CC, 1) }

// baseline returns the sequential cache-based baseline run.
func (r *Runner) baseline(name string) (*core.Report, error) {
	return r.Run(baselineCfg(), name)
}

// Bar is one stacked execution-time bar, normalized to a baseline run.
// Err marks a cell whose simulation failed: it renders as ERR in the
// table and is omitted from the chart, so one bad configuration costs
// one marker, not the figure.
type Bar struct {
	Label                     string
	Useful, Sync, Load, Store float64
	Total                     float64
	Err                       bool
}

// errBar is the placeholder for a failed execution-time cell.
func errBar(label string) Bar { return Bar{Label: label, Err: true} }

// normBar converts a report into a baseline-normalized stacked bar. The
// stack heights follow Figure 2: per-core average time in each bucket
// over the baseline's total time.
func normBar(label string, rep, base *core.Report) Bar {
	bt := float64(base.Wall)
	bd := rep.Breakdown
	return Bar{
		Label:  label,
		Useful: float64(bd.Useful) / bt,
		Sync:   float64(bd.Sync) / bt,
		Load:   float64(bd.LoadStall) / bt,
		Store:  float64(bd.StoreStall) / bt,
		Total:  float64(rep.Wall) / bt,
	}
}

func writeBars(w io.Writer, title string, bars []Bar) {
	tb := stats.NewTable(title, "config", "useful", "sync", "load", "store", "total")
	ch := stats.Chart{SegNames: []string{"useful", "sync", "load", "store"}, Max: 1.0}
	for _, b := range bars {
		if b.Err {
			tb.Row(b.Label, "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		tb.Row(b.Label, b.Useful, b.Sync, b.Load, b.Store, b.Total)
		ch.Bars = append(ch.Bars, stats.StackedBar{
			Label:    b.Label,
			Segments: []float64{b.Useful, b.Sync, b.Load, b.Store},
		})
	}
	tb.WriteText(w)
	ch.Write(w)
}

// TrafficBar is one off-chip-traffic bar, normalized to a baseline.
// Err marks a failed cell, as on Bar.
type TrafficBar struct {
	Label       string
	Read, Write float64
	Err         bool
}

// errTraffic is the placeholder for a failed traffic cell.
func errTraffic(label string) TrafficBar { return TrafficBar{Label: label, Err: true} }

func normTraffic(label string, rep, base *core.Report) TrafficBar {
	bt := float64(base.DRAM.TotalBytes())
	if bt == 0 {
		bt = 1
	}
	return TrafficBar{
		Label: label,
		Read:  float64(rep.DRAM.ReadBytes) / bt,
		Write: float64(rep.DRAM.WriteBytes) / bt,
	}
}

func writeTraffic(w io.Writer, title string, bars []TrafficBar) {
	tb := stats.NewTable(title, "config", "read", "write", "total")
	ch := stats.Chart{SegNames: []string{"read", "write"}, Max: 1.0}
	for _, b := range bars {
		if b.Err {
			tb.Row(b.Label, "ERR", "ERR", "ERR")
			continue
		}
		tb.Row(b.Label, b.Read, b.Write, b.Read+b.Write)
		ch.Bars = append(ch.Bars, stats.StackedBar{Label: b.Label, Segments: []float64{b.Read, b.Write}})
	}
	tb.WriteText(w)
	ch.Write(w)
}

// EnergyBar is one stacked energy bar (Figure 4's components),
// normalized to a baseline run's total energy. Err marks a failed cell,
// as on Bar.
type EnergyBar struct {
	Label                                     string
	Core, ICache, DCache, LMem, Net, L2, DRAM float64
	Total                                     float64
	Err                                       bool
}

// errEnergy is the placeholder for a failed energy cell.
func errEnergy(label string) EnergyBar { return EnergyBar{Label: label, Err: true} }

func normEnergy(label string, rep, base *core.Report) EnergyBar {
	bt := base.Energy.Total()
	e := rep.Energy
	return EnergyBar{
		Label:  label,
		Core:   e.Core / bt,
		ICache: e.ICache / bt,
		DCache: e.DCache / bt,
		LMem:   e.LMem / bt,
		Net:    e.Network / bt,
		L2:     e.L2 / bt,
		DRAM:   e.DRAM / bt,
		Total:  e.Total() / bt,
	}
}

func writeEnergy(w io.Writer, title string, bars []EnergyBar) {
	tb := stats.NewTable(title, "config", "core", "i$", "d$", "lmem", "net", "l2", "dram", "total")
	ch := stats.Chart{SegNames: []string{"core", "i$", "d$", "lmem", "net", "l2", "dram"}, Max: 1.0}
	for _, b := range bars {
		if b.Err {
			tb.Row(b.Label, "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		tb.Row(b.Label, b.Core, b.ICache, b.DCache, b.LMem, b.Net, b.L2, b.DRAM, b.Total)
		ch.Bars = append(ch.Bars, stats.StackedBar{
			Label:    b.Label,
			Segments: []float64{b.Core, b.ICache, b.DCache, b.LMem, b.Net, b.L2, b.DRAM},
		})
	}
	tb.WriteText(w)
	ch.Write(w)
}

// Table2 prints the system parameters (Table 2) as configured.
func Table2(w io.Writer) {
	cfg := core.DefaultConfig(core.CC, 16)
	fmt.Fprintln(w, "Table 2: CMP system parameters")
	rows := [][2]string{
		{"Cores", "1, 2, 4, 8 or 16 Tensilica-class 3-way VLIW, 7-stage"},
		{"Core clock", "800 MHz (default), 1.6, 3.2 or 6.4 GHz"},
		{"I-cache", "16 KB 2-way, 32 B lines (analytic model)"},
		{"CC data storage", "32 KB 2-way L1 D-cache, MESI, write-back/write-allocate"},
		{"STR data storage", "24 KB local store + 8 KB 2-way cache"},
		{"Store buffer", "8 entries, loads bypass store misses (weak consistency)"},
		{"Prefetcher", "tagged, 8-miss history, 4 streams, configurable depth"},
		{"DMA engine", "16 outstanding 32 B accesses, command queuing"},
		{"Local network", "32 B bidirectional bus per 4-core cluster, 2-cycle latency"},
		{"Global crossbar", "16 B ports per cluster/L2 bank, 2.5 ns pipelined"},
		{"L2", "512 KB 16-way, 1 port, 2.2 ns, non-inclusive"},
		{"DRAM", fmt.Sprintf("one channel at %d MB/s (1600/3200/6400/12800), 70 ns random access", cfg.DRAMBandwidthMBps)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %s\n", r[0], r[1])
	}
}

// Table3Row is one application's memory characterization. Err marks an
// application whose measurement run failed; its row renders as ERR.
type Table3Row struct {
	App            string
	L1MissRate     float64
	L2MissRate     float64
	InstrPerL1Miss float64
	CyclesPerL2    float64
	OffChipMBps    float64
	Err            bool
}

// Table3 measures the memory characteristics of all applications on the
// cache-based model with 16 cores at 800 MHz, as the paper's Table 3.
// Failed applications keep their row (marked ERR); the returned error is
// a *GridError summarizing them, nil when every run succeeded.
func (r *Runner) Table3(w io.Writer) ([]Table3Row, error) {
	var jobs []Job
	for _, app := range AllApps {
		jobs = append(jobs, Job{core.DefaultConfig(core.CC, 16), app})
	}
	r.Prefetch(jobs)
	g := &gridTracker{}
	var rows []Table3Row
	for _, app := range AllApps {
		rep, err := r.Run(core.DefaultConfig(core.CC, 16), app)
		if !g.cell(err) {
			rows = append(rows, Table3Row{App: app, Err: true})
			continue
		}
		rows = append(rows, Table3Row{
			App:            app,
			L1MissRate:     rep.L1MissRate(),
			L2MissRate:     rep.L2MissRate(),
			InstrPerL1Miss: rep.InstrPerL1Miss(),
			CyclesPerL2:    rep.CyclesPerL2Miss(),
			OffChipMBps:    rep.OffChipBandwidth(),
		})
	}
	fmt.Fprintln(w, "Table 3: memory characteristics (CC, 16 cores @ 800 MHz)")
	fmt.Fprintf(w, "  %-14s %10s %10s %12s %12s %12s\n",
		"app", "L1D-miss%", "L2D-miss%", "instr/L1miss", "cyc/L2miss", "offchip MB/s")
	for _, row := range rows {
		if row.Err {
			fmt.Fprintf(w, "  %-14s %10s %10s %12s %12s %12s\n",
				row.App, "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		fmt.Fprintf(w, "  %-14s %10.2f %10.1f %12.1f %12.1f %12.1f\n",
			row.App, row.L1MissRate*100, row.L2MissRate*100,
			row.InstrPerL1Miss, row.CyclesPerL2, row.OffChipMBps)
	}
	return rows, g.finish(w, "Table 3")
}

// coreCounts are Figure 2's x axis.
var coreCounts = []int{2, 4, 8, 16}

// Figure2 produces the execution-time comparison for every application:
// CC and STR at 2-16 cores, normalized to one caching core.
func (r *Runner) Figure2(w io.Writer, apps []string) (map[string][]Bar, error) {
	if apps == nil {
		apps = AllApps
	}
	var jobs []Job
	for _, app := range apps {
		jobs = append(jobs, Job{baselineCfg(), app})
		for _, n := range coreCounts {
			for _, model := range []core.Model{core.CC, core.STR} {
				jobs = append(jobs, Job{core.DefaultConfig(model, n), app})
			}
		}
	}
	r.Prefetch(jobs)
	g := &gridTracker{}
	out := map[string][]Bar{}
	for _, app := range apps {
		base, err := r.baseline(app)
		if !g.cell(err) {
			fmt.Fprintf(w, "# Figure 2 [%s]: baseline failed, figure skipped: %v\n", app, err)
			continue
		}
		var bars []Bar
		for _, n := range coreCounts {
			for _, model := range []core.Model{core.CC, core.STR} {
				label := fmt.Sprintf("%s-%d", model, n)
				rep, err := r.Run(core.DefaultConfig(model, n), app)
				if !g.cell(err) {
					bars = append(bars, errBar(label))
					continue
				}
				bars = append(bars, normBar(label, rep, base))
			}
		}
		out[app] = bars
		writeBars(w, fmt.Sprintf("Figure 2 [%s]: normalized execution time", app), bars)
	}
	return out, g.finish(w, "Figure 2")
}

// fig34Apps are the applications Figures 3 and 4 report.
var fig34Apps = []string{"fem", "mpeg2", "fir", "bitonicsort"}

// Figure3 produces off-chip traffic at 16 cores, normalized to one
// caching core.
func (r *Runner) Figure3(w io.Writer) (map[string][]TrafficBar, error) {
	r.Prefetch(fig34Jobs())
	g := &gridTracker{}
	out := map[string][]TrafficBar{}
	for _, app := range fig34Apps {
		base, err := r.baseline(app)
		if !g.cell(err) {
			fmt.Fprintf(w, "# Figure 3 [%s]: baseline failed, figure skipped: %v\n", app, err)
			continue
		}
		var bars []TrafficBar
		for _, model := range []core.Model{core.CC, core.STR} {
			rep, err := r.Run(core.DefaultConfig(model, 16), app)
			if !g.cell(err) {
				bars = append(bars, errTraffic(model.String()))
				continue
			}
			bars = append(bars, normTraffic(model.String(), rep, base))
		}
		out[app] = bars
		writeTraffic(w, fmt.Sprintf("Figure 3 [%s]: normalized off-chip traffic (16 cores)", app), bars)
	}
	return out, g.finish(w, "Figure 3")
}

// Figure4 produces the energy comparison at 16 cores, normalized to one
// caching core.
func (r *Runner) Figure4(w io.Writer) (map[string][]EnergyBar, error) {
	r.Prefetch(fig34Jobs())
	g := &gridTracker{}
	out := map[string][]EnergyBar{}
	for _, app := range fig34Apps {
		base, err := r.baseline(app)
		if !g.cell(err) {
			fmt.Fprintf(w, "# Figure 4 [%s]: baseline failed, figure skipped: %v\n", app, err)
			continue
		}
		var bars []EnergyBar
		for _, model := range []core.Model{core.CC, core.STR} {
			rep, err := r.Run(core.DefaultConfig(model, 16), app)
			if !g.cell(err) {
				bars = append(bars, errEnergy(model.String()))
				continue
			}
			bars = append(bars, normEnergy(model.String(), rep, base))
		}
		out[app] = bars
		writeEnergy(w, fmt.Sprintf("Figure 4 [%s]: normalized energy (16 cores)", app), bars)
	}
	return out, g.finish(w, "Figure 4")
}

// fig34Jobs is the shared grid of Figures 3 and 4: both models at 16
// cores plus the baseline, per reported app.
func fig34Jobs() []Job {
	var jobs []Job
	for _, app := range fig34Apps {
		jobs = append(jobs, Job{baselineCfg(), app})
		for _, model := range []core.Model{core.CC, core.STR} {
			jobs = append(jobs, Job{core.DefaultConfig(model, 16), app})
		}
	}
	return jobs
}

// fig5Apps are the computational-scaling applications of Figure 5.
var fig5Apps = []string{"mpeg2", "fir", "bitonicsort"}

// clockSweep is Figure 5's x axis.
var clockSweep = []uint64{800, 1600, 3200, 6400}

// Figure5 sweeps the core clock at 16 cores.
func (r *Runner) Figure5(w io.Writer) (map[string][]Bar, error) {
	var jobs []Job
	for _, app := range fig5Apps {
		jobs = append(jobs, Job{baselineCfg(), app})
		for _, mhz := range clockSweep {
			for _, model := range []core.Model{core.CC, core.STR} {
				cfg := core.DefaultConfig(model, 16)
				cfg.CoreMHz = mhz
				jobs = append(jobs, Job{cfg, app})
			}
		}
	}
	r.Prefetch(jobs)
	g := &gridTracker{}
	out := map[string][]Bar{}
	for _, app := range fig5Apps {
		base, err := r.baseline(app)
		if !g.cell(err) {
			fmt.Fprintf(w, "# Figure 5 [%s]: baseline failed, figure skipped: %v\n", app, err)
			continue
		}
		var bars []Bar
		for _, mhz := range clockSweep {
			for _, model := range []core.Model{core.CC, core.STR} {
				cfg := core.DefaultConfig(model, 16)
				cfg.CoreMHz = mhz
				label := fmt.Sprintf("%s-%.1fGHz", model, float64(mhz)/1000)
				rep, err := r.Run(cfg, app)
				if !g.cell(err) {
					bars = append(bars, errBar(label))
					continue
				}
				bars = append(bars, normBar(label, rep, base))
			}
		}
		out[app] = bars
		writeBars(w, fmt.Sprintf("Figure 5 [%s]: clock scaling (16 cores)", app), bars)
	}
	return out, g.finish(w, "Figure 5")
}

// bwSweep is Figure 6's x axis.
var bwSweep = []uint64{1600, 3200, 6400, 12800}

// Figure6 sweeps off-chip bandwidth for FIR at 16 cores, 3.2 GHz; at
// 12.8 GB/s the cache-based system is additionally run with hardware
// prefetching, as in the paper.
func (r *Runner) Figure6(w io.Writer) ([]Bar, error) {
	jobs := []Job{{baselineCfg(), "fir"}}
	for _, bw := range bwSweep {
		for _, model := range []core.Model{core.CC, core.STR} {
			cfg := core.DefaultConfig(model, 16)
			cfg.CoreMHz = 3200
			cfg.DRAMBandwidthMBps = bw
			jobs = append(jobs, Job{cfg, "fir"})
		}
	}
	pcfg := core.DefaultConfig(core.CC, 16)
	pcfg.CoreMHz = 3200
	pcfg.DRAMBandwidthMBps = 12800
	pcfg.PrefetchDepth = 4
	jobs = append(jobs, Job{pcfg, "fir"})
	r.Prefetch(jobs)

	g := &gridTracker{}
	base, err := r.baseline("fir")
	if !g.cell(err) {
		fmt.Fprintf(w, "# Figure 6 [fir]: baseline failed, figure skipped: %v\n", err)
		return nil, g.finish(w, "Figure 6")
	}
	var bars []Bar
	for _, bw := range bwSweep {
		for _, model := range []core.Model{core.CC, core.STR} {
			cfg := core.DefaultConfig(model, 16)
			cfg.CoreMHz = 3200
			cfg.DRAMBandwidthMBps = bw
			label := fmt.Sprintf("%s-%.1fGB/s", model, float64(bw)/1000)
			rep, err := r.Run(cfg, "fir")
			if !g.cell(err) {
				bars = append(bars, errBar(label))
				continue
			}
			bars = append(bars, normBar(label, rep, base))
		}
	}
	cfg := core.DefaultConfig(core.CC, 16)
	cfg.CoreMHz = 3200
	cfg.DRAMBandwidthMBps = 12800
	cfg.PrefetchDepth = 4
	if rep, err := r.Run(cfg, "fir"); g.cell(err) {
		bars = append(bars, normBar("CC+P4-12.8GB/s", rep, base))
	} else {
		bars = append(bars, errBar("CC+P4-12.8GB/s"))
	}
	writeBars(w, "Figure 6 [fir]: off-chip bandwidth sweep (16 cores @ 3.2 GHz)", bars)
	return bars, g.finish(w, "Figure 6")
}

// Figure7 shows the effect of hardware prefetching (depth 4) on
// MergeSort and 179.art: 2 cores at 3.2 GHz with a 12.8 GB/s channel.
func (r *Runner) Figure7(w io.Writer) (map[string][]Bar, error) {
	var jobs []Job
	for _, app := range []string{"mergesort", "art"} {
		jobs = append(jobs, Job{baselineCfg(), app})
		for _, c := range []struct {
			model core.Model
			pf    int
		}{{core.CC, 0}, {core.CC, 4}, {core.STR, 0}} {
			cfg := core.DefaultConfig(c.model, 2)
			cfg.CoreMHz = 3200
			cfg.DRAMBandwidthMBps = 12800
			cfg.PrefetchDepth = c.pf
			jobs = append(jobs, Job{cfg, app})
		}
	}
	r.Prefetch(jobs)
	g := &gridTracker{}
	out := map[string][]Bar{}
	for _, app := range []string{"mergesort", "art"} {
		base, err := r.baseline(app)
		if !g.cell(err) {
			fmt.Fprintf(w, "# Figure 7 [%s]: baseline failed, figure skipped: %v\n", app, err)
			continue
		}
		mk := func(model core.Model, pf int) core.Config {
			cfg := core.DefaultConfig(model, 2)
			cfg.CoreMHz = 3200
			cfg.DRAMBandwidthMBps = 12800
			cfg.PrefetchDepth = pf
			return cfg
		}
		var bars []Bar
		for _, c := range []struct {
			label string
			cfg   core.Config
		}{
			{"CC", mk(core.CC, 0)},
			{"CC+P4", mk(core.CC, 4)},
			{"STR", mk(core.STR, 0)},
		} {
			rep, err := r.Run(c.cfg, app)
			if !g.cell(err) {
				bars = append(bars, errBar(c.label))
				continue
			}
			bars = append(bars, normBar(c.label, rep, base))
		}
		out[app] = bars
		writeBars(w, fmt.Sprintf("Figure 7 [%s]: hardware prefetching (2 cores @ 3.2 GHz, 12.8 GB/s)", app), bars)
	}
	return out, g.finish(w, "Figure 7")
}

// Figure8 shows "Prepare For Store" effects: off-chip traffic for FIR,
// MergeSort and MPEG-2 (CC vs CC+PFS vs STR at 16 cores, 800 MHz) and
// the FIR energy comparison.
func (r *Runner) Figure8(w io.Writer) (map[string][]TrafficBar, []EnergyBar, error) {
	out := map[string][]TrafficBar{}
	apps := map[string]string{"fir": "fir-pfs", "mergesort": "mergesort-pfs", "mpeg2": "mpeg2-pfs"}
	order := []string{"fir", "mergesort", "mpeg2"}
	var jobs []Job
	for _, app := range order {
		jobs = append(jobs,
			Job{baselineCfg(), app},
			Job{core.DefaultConfig(core.CC, 16), app},
			Job{core.DefaultConfig(core.CC, 16), apps[app]},
			Job{core.DefaultConfig(core.STR, 16), app})
	}
	r.Prefetch(jobs)
	g := &gridTracker{}
	for _, app := range order {
		pfsApp := apps[app]
		base, err := r.baseline(app)
		if !g.cell(err) {
			fmt.Fprintf(w, "# Figure 8 [%s]: baseline failed, figure skipped: %v\n", app, err)
			continue
		}
		var bars []TrafficBar
		for _, c := range []struct{ label, name string }{
			{"CC", app}, {"CC+PFS", pfsApp},
		} {
			rep, err := r.Run(core.DefaultConfig(core.CC, 16), c.name)
			if !g.cell(err) {
				bars = append(bars, errTraffic(c.label))
				continue
			}
			bars = append(bars, normTraffic(c.label, rep, base))
		}
		if rep, err := r.Run(core.DefaultConfig(core.STR, 16), app); g.cell(err) {
			bars = append(bars, normTraffic("STR", rep, base))
		} else {
			bars = append(bars, errTraffic("STR"))
		}
		out[app] = bars
		writeTraffic(w, fmt.Sprintf("Figure 8 [%s]: PFS off-chip traffic (16 cores)", app), bars)
	}
	// FIR energy with PFS.
	var ebars []EnergyBar
	base, err := r.baseline("fir")
	if !g.cell(err) {
		fmt.Fprintf(w, "# Figure 8 [fir]: baseline failed, energy figure skipped: %v\n", err)
		return out, nil, g.finish(w, "Figure 8")
	}
	for _, c := range []struct {
		label, name string
		model       core.Model
	}{
		{"CC", "fir", core.CC},
		{"CC+PFS", "fir-pfs", core.CC},
		{"STR", "fir", core.STR},
	} {
		rep, err := r.Run(core.DefaultConfig(c.model, 16), c.name)
		if !g.cell(err) {
			ebars = append(ebars, errEnergy(c.label))
			continue
		}
		ebars = append(ebars, normEnergy(c.label, rep, base))
	}
	writeEnergy(w, "Figure 8 [fir]: PFS energy (16 cores @ 800 MHz)", ebars)
	return out, ebars, g.finish(w, "Figure 8")
}

// Figure9 compares the original and stream-optimized cache-based MPEG-2
// encoders: traffic and execution time at 2-16 cores.
func (r *Runner) Figure9(w io.Writer) (bars []Bar, traffic []TrafficBar, err error) {
	r.Prefetch(origOptJobs("mpeg2-orig", "mpeg2"))
	g := &gridTracker{}
	base, err := r.baseline("mpeg2-orig")
	if !g.cell(err) {
		fmt.Fprintf(w, "# Figure 9 [mpeg2]: baseline failed, figure skipped: %v\n", err)
		return nil, nil, g.finish(w, "Figure 9")
	}
	for _, n := range coreCounts {
		for _, app := range []string{"mpeg2-orig", "mpeg2"} {
			label := fmt.Sprintf("%s-%d", map[string]string{"mpeg2-orig": "ORIG", "mpeg2": "OPT"}[app], n)
			rep, err := r.Run(core.DefaultConfig(core.CC, n), app)
			if !g.cell(err) {
				bars = append(bars, errBar(label))
				traffic = append(traffic, errTraffic(label))
				continue
			}
			bars = append(bars, normBar(label, rep, base))
			traffic = append(traffic, normTraffic(label, rep, base))
		}
	}
	writeBars(w, "Figure 9 [mpeg2]: stream-programming optimizations, execution time", bars)
	writeTraffic(w, "Figure 9 [mpeg2]: stream-programming optimizations, off-chip traffic", traffic)
	return bars, traffic, g.finish(w, "Figure 9")
}

// Figure10 compares the original and stream-optimized cache-based
// 179.art at 2-16 cores.
func (r *Runner) Figure10(w io.Writer) ([]Bar, error) {
	r.Prefetch(origOptJobs("art-orig", "art"))
	g := &gridTracker{}
	base, err := r.baseline("art-orig")
	if !g.cell(err) {
		fmt.Fprintf(w, "# Figure 10 [179.art]: baseline failed, figure skipped: %v\n", err)
		return nil, g.finish(w, "Figure 10")
	}
	var bars []Bar
	for _, n := range coreCounts {
		for _, app := range []string{"art-orig", "art"} {
			label := fmt.Sprintf("%s-%d", map[string]string{"art-orig": "ORIG", "art": "OPT"}[app], n)
			rep, err := r.Run(core.DefaultConfig(core.CC, n), app)
			if !g.cell(err) {
				bars = append(bars, errBar(label))
				continue
			}
			bars = append(bars, normBar(label, rep, base))
		}
	}
	writeBars(w, "Figure 10 [179.art]: stream-programming optimizations", bars)
	return bars, g.finish(w, "Figure 10")
}

// origOptJobs is the grid Figures 9 and 10 share: the original and
// stream-optimized variants on the CC model at 2-16 cores, plus the
// original's baseline.
func origOptJobs(orig, opt string) []Job {
	jobs := []Job{{baselineCfg(), orig}}
	for _, n := range coreCounts {
		for _, app := range []string{orig, opt} {
			jobs = append(jobs, Job{core.DefaultConfig(core.CC, n), app})
		}
	}
	return jobs
}

// Speedup returns total(b)/total(a) for two bars (how much faster b is).
func Speedup(a, b Bar) float64 { return a.Total / b.Total }

// SortedKeys returns map keys in sorted order (stable test output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ClockOf is a small helper exposing the core clock for reports.
func ClockOf(mhz uint64) sim.Clock { return sim.MHz(mhz) }

// Package bench regenerates every table and figure of the paper's
// evaluation (Table 3, Figures 2 through 10) on the simulator. Each
// generator returns the measured series and writes a plain-text table;
// cmd/paperbench drives them all and EXPERIMENTS.md records the
// paper-versus-measured comparison.
package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AllApps is the paper's application list in Table 3 order.
var AllApps = []string{
	"mpeg2", "h264", "raytracer", "jpeg-encode", "jpeg-decode",
	"depth", "fem", "fir", "art", "bitonicsort", "mergesort",
}

// Runner executes workload/configuration pairs with memoization, so
// shared baselines (e.g. the 1-core CC run every figure normalizes to)
// are simulated once.
type Runner struct {
	Scale workload.Scale
	// Progress, when non-nil, receives one line per fresh simulation.
	Progress io.Writer
	cache    map[string]*core.Report
}

// NewRunner returns a Runner at the given dataset scale.
func NewRunner(scale workload.Scale) *Runner {
	return &Runner{Scale: scale, cache: map[string]*core.Report{}}
}

func cfgKey(cfg core.Config, name string) string {
	return fmt.Sprintf("%s|%v|%d|%d|%d|%d|%v|%v|%d|%d|%d", name, cfg.Model, cfg.Cores,
		cfg.CoreMHz, cfg.DRAMBandwidthMBps, cfg.PrefetchDepth, cfg.NoWriteAllocate,
		cfg.SnoopFilter, cfg.L2SizeKB, cfg.CoresPerCluster, cfg.DMAOutstanding+cfg.L2Banks*100+cfg.DRAMChannels*10000)
}

// Run simulates (or recalls) one configuration.
func (r *Runner) Run(cfg core.Config, name string) (*core.Report, error) {
	key := cfgKey(cfg, name)
	if rep, ok := r.cache[key]; ok {
		return rep, nil
	}
	f, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "# running %-14s %v %2d cores @%4d MHz bw=%d pf=%d\n",
			name, cfg.Model, cfg.Cores, cfg.CoreMHz, cfg.DRAMBandwidthMBps, cfg.PrefetchDepth)
	}
	rep, err := core.New(cfg).Run(f(r.Scale))
	if err != nil {
		return nil, fmt.Errorf("%s %v/%d: verification failed: %w", name, cfg.Model, cfg.Cores, err)
	}
	r.cache[key] = rep
	return rep, nil
}

// baseline returns the sequential cache-based run the paper normalizes
// to: one 800 MHz CC core, default bandwidth.
func (r *Runner) baseline(name string) (*core.Report, error) {
	return r.Run(core.DefaultConfig(core.CC, 1), name)
}

// Bar is one stacked execution-time bar, normalized to a baseline run.
type Bar struct {
	Label                     string
	Useful, Sync, Load, Store float64
	Total                     float64
}

// normBar converts a report into a baseline-normalized stacked bar. The
// stack heights follow Figure 2: per-core average time in each bucket
// over the baseline's total time.
func normBar(label string, rep, base *core.Report) Bar {
	bt := float64(base.Wall)
	bd := rep.Breakdown
	return Bar{
		Label:  label,
		Useful: float64(bd.Useful) / bt,
		Sync:   float64(bd.Sync) / bt,
		Load:   float64(bd.LoadStall) / bt,
		Store:  float64(bd.StoreStall) / bt,
		Total:  float64(rep.Wall) / bt,
	}
}

func writeBars(w io.Writer, title string, bars []Bar) {
	tb := stats.NewTable(title, "config", "useful", "sync", "load", "store", "total")
	ch := stats.Chart{SegNames: []string{"useful", "sync", "load", "store"}, Max: 1.0}
	for _, b := range bars {
		tb.Row(b.Label, b.Useful, b.Sync, b.Load, b.Store, b.Total)
		ch.Bars = append(ch.Bars, stats.StackedBar{
			Label:    b.Label,
			Segments: []float64{b.Useful, b.Sync, b.Load, b.Store},
		})
	}
	tb.WriteText(w)
	ch.Write(w)
}

// TrafficBar is one off-chip-traffic bar, normalized to a baseline.
type TrafficBar struct {
	Label       string
	Read, Write float64
}

func normTraffic(label string, rep, base *core.Report) TrafficBar {
	bt := float64(base.DRAM.TotalBytes())
	if bt == 0 {
		bt = 1
	}
	return TrafficBar{
		Label: label,
		Read:  float64(rep.DRAM.ReadBytes) / bt,
		Write: float64(rep.DRAM.WriteBytes) / bt,
	}
}

func writeTraffic(w io.Writer, title string, bars []TrafficBar) {
	tb := stats.NewTable(title, "config", "read", "write", "total")
	ch := stats.Chart{SegNames: []string{"read", "write"}, Max: 1.0}
	for _, b := range bars {
		tb.Row(b.Label, b.Read, b.Write, b.Read+b.Write)
		ch.Bars = append(ch.Bars, stats.StackedBar{Label: b.Label, Segments: []float64{b.Read, b.Write}})
	}
	tb.WriteText(w)
	ch.Write(w)
}

// EnergyBar is one stacked energy bar (Figure 4's components),
// normalized to a baseline run's total energy.
type EnergyBar struct {
	Label                                     string
	Core, ICache, DCache, LMem, Net, L2, DRAM float64
	Total                                     float64
}

func normEnergy(label string, rep, base *core.Report) EnergyBar {
	bt := base.Energy.Total()
	e := rep.Energy
	return EnergyBar{
		Label:  label,
		Core:   e.Core / bt,
		ICache: e.ICache / bt,
		DCache: e.DCache / bt,
		LMem:   e.LMem / bt,
		Net:    e.Network / bt,
		L2:     e.L2 / bt,
		DRAM:   e.DRAM / bt,
		Total:  e.Total() / bt,
	}
}

func writeEnergy(w io.Writer, title string, bars []EnergyBar) {
	tb := stats.NewTable(title, "config", "core", "i$", "d$", "lmem", "net", "l2", "dram", "total")
	ch := stats.Chart{SegNames: []string{"core", "i$", "d$", "lmem", "net", "l2", "dram"}, Max: 1.0}
	for _, b := range bars {
		tb.Row(b.Label, b.Core, b.ICache, b.DCache, b.LMem, b.Net, b.L2, b.DRAM, b.Total)
		ch.Bars = append(ch.Bars, stats.StackedBar{
			Label:    b.Label,
			Segments: []float64{b.Core, b.ICache, b.DCache, b.LMem, b.Net, b.L2, b.DRAM},
		})
	}
	tb.WriteText(w)
	ch.Write(w)
}

// Table2 prints the system parameters (Table 2) as configured.
func Table2(w io.Writer) {
	cfg := core.DefaultConfig(core.CC, 16)
	fmt.Fprintln(w, "Table 2: CMP system parameters")
	rows := [][2]string{
		{"Cores", "1, 2, 4, 8 or 16 Tensilica-class 3-way VLIW, 7-stage"},
		{"Core clock", "800 MHz (default), 1.6, 3.2 or 6.4 GHz"},
		{"I-cache", "16 KB 2-way, 32 B lines (analytic model)"},
		{"CC data storage", "32 KB 2-way L1 D-cache, MESI, write-back/write-allocate"},
		{"STR data storage", "24 KB local store + 8 KB 2-way cache"},
		{"Store buffer", "8 entries, loads bypass store misses (weak consistency)"},
		{"Prefetcher", "tagged, 8-miss history, 4 streams, configurable depth"},
		{"DMA engine", "16 outstanding 32 B accesses, command queuing"},
		{"Local network", "32 B bidirectional bus per 4-core cluster, 2-cycle latency"},
		{"Global crossbar", "16 B ports per cluster/L2 bank, 2.5 ns pipelined"},
		{"L2", "512 KB 16-way, 1 port, 2.2 ns, non-inclusive"},
		{"DRAM", fmt.Sprintf("one channel at %d MB/s (1600/3200/6400/12800), 70 ns random access", cfg.DRAMBandwidthMBps)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %s\n", r[0], r[1])
	}
}

// Table3Row is one application's memory characterization.
type Table3Row struct {
	App            string
	L1MissRate     float64
	L2MissRate     float64
	InstrPerL1Miss float64
	CyclesPerL2    float64
	OffChipMBps    float64
}

// Table3 measures the memory characteristics of all applications on the
// cache-based model with 16 cores at 800 MHz, as the paper's Table 3.
func (r *Runner) Table3(w io.Writer) ([]Table3Row, error) {
	var rows []Table3Row
	for _, app := range AllApps {
		rep, err := r.Run(core.DefaultConfig(core.CC, 16), app)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			App:            app,
			L1MissRate:     rep.L1MissRate(),
			L2MissRate:     rep.L2MissRate(),
			InstrPerL1Miss: rep.InstrPerL1Miss(),
			CyclesPerL2:    rep.CyclesPerL2Miss(),
			OffChipMBps:    rep.OffChipBandwidth(),
		})
	}
	fmt.Fprintln(w, "Table 3: memory characteristics (CC, 16 cores @ 800 MHz)")
	fmt.Fprintf(w, "  %-14s %10s %10s %12s %12s %12s\n",
		"app", "L1D-miss%", "L2D-miss%", "instr/L1miss", "cyc/L2miss", "offchip MB/s")
	for _, row := range rows {
		fmt.Fprintf(w, "  %-14s %10.2f %10.1f %12.1f %12.1f %12.1f\n",
			row.App, row.L1MissRate*100, row.L2MissRate*100,
			row.InstrPerL1Miss, row.CyclesPerL2, row.OffChipMBps)
	}
	return rows, nil
}

// coreCounts are Figure 2's x axis.
var coreCounts = []int{2, 4, 8, 16}

// Figure2 produces the execution-time comparison for every application:
// CC and STR at 2-16 cores, normalized to one caching core.
func (r *Runner) Figure2(w io.Writer, apps []string) (map[string][]Bar, error) {
	if apps == nil {
		apps = AllApps
	}
	out := map[string][]Bar{}
	for _, app := range apps {
		base, err := r.baseline(app)
		if err != nil {
			return nil, err
		}
		var bars []Bar
		for _, n := range coreCounts {
			for _, model := range []core.Model{core.CC, core.STR} {
				rep, err := r.Run(core.DefaultConfig(model, n), app)
				if err != nil {
					return nil, err
				}
				bars = append(bars, normBar(fmt.Sprintf("%s-%d", model, n), rep, base))
			}
		}
		out[app] = bars
		writeBars(w, fmt.Sprintf("Figure 2 [%s]: normalized execution time", app), bars)
	}
	return out, nil
}

// fig34Apps are the applications Figures 3 and 4 report.
var fig34Apps = []string{"fem", "mpeg2", "fir", "bitonicsort"}

// Figure3 produces off-chip traffic at 16 cores, normalized to one
// caching core.
func (r *Runner) Figure3(w io.Writer) (map[string][]TrafficBar, error) {
	out := map[string][]TrafficBar{}
	for _, app := range fig34Apps {
		base, err := r.baseline(app)
		if err != nil {
			return nil, err
		}
		var bars []TrafficBar
		for _, model := range []core.Model{core.CC, core.STR} {
			rep, err := r.Run(core.DefaultConfig(model, 16), app)
			if err != nil {
				return nil, err
			}
			bars = append(bars, normTraffic(model.String(), rep, base))
		}
		out[app] = bars
		writeTraffic(w, fmt.Sprintf("Figure 3 [%s]: normalized off-chip traffic (16 cores)", app), bars)
	}
	return out, nil
}

// Figure4 produces the energy comparison at 16 cores, normalized to one
// caching core.
func (r *Runner) Figure4(w io.Writer) (map[string][]EnergyBar, error) {
	out := map[string][]EnergyBar{}
	for _, app := range fig34Apps {
		base, err := r.baseline(app)
		if err != nil {
			return nil, err
		}
		var bars []EnergyBar
		for _, model := range []core.Model{core.CC, core.STR} {
			rep, err := r.Run(core.DefaultConfig(model, 16), app)
			if err != nil {
				return nil, err
			}
			bars = append(bars, normEnergy(model.String(), rep, base))
		}
		out[app] = bars
		writeEnergy(w, fmt.Sprintf("Figure 4 [%s]: normalized energy (16 cores)", app), bars)
	}
	return out, nil
}

// fig5Apps are the computational-scaling applications of Figure 5.
var fig5Apps = []string{"mpeg2", "fir", "bitonicsort"}

// clockSweep is Figure 5's x axis.
var clockSweep = []uint64{800, 1600, 3200, 6400}

// Figure5 sweeps the core clock at 16 cores.
func (r *Runner) Figure5(w io.Writer) (map[string][]Bar, error) {
	out := map[string][]Bar{}
	for _, app := range fig5Apps {
		base, err := r.baseline(app)
		if err != nil {
			return nil, err
		}
		var bars []Bar
		for _, mhz := range clockSweep {
			for _, model := range []core.Model{core.CC, core.STR} {
				cfg := core.DefaultConfig(model, 16)
				cfg.CoreMHz = mhz
				rep, err := r.Run(cfg, app)
				if err != nil {
					return nil, err
				}
				bars = append(bars, normBar(fmt.Sprintf("%s-%.1fGHz", model, float64(mhz)/1000), rep, base))
			}
		}
		out[app] = bars
		writeBars(w, fmt.Sprintf("Figure 5 [%s]: clock scaling (16 cores)", app), bars)
	}
	return out, nil
}

// bwSweep is Figure 6's x axis.
var bwSweep = []uint64{1600, 3200, 6400, 12800}

// Figure6 sweeps off-chip bandwidth for FIR at 16 cores, 3.2 GHz; at
// 12.8 GB/s the cache-based system is additionally run with hardware
// prefetching, as in the paper.
func (r *Runner) Figure6(w io.Writer) ([]Bar, error) {
	base, err := r.baseline("fir")
	if err != nil {
		return nil, err
	}
	var bars []Bar
	for _, bw := range bwSweep {
		for _, model := range []core.Model{core.CC, core.STR} {
			cfg := core.DefaultConfig(model, 16)
			cfg.CoreMHz = 3200
			cfg.DRAMBandwidthMBps = bw
			rep, err := r.Run(cfg, "fir")
			if err != nil {
				return nil, err
			}
			bars = append(bars, normBar(fmt.Sprintf("%s-%.1fGB/s", model, float64(bw)/1000), rep, base))
		}
	}
	cfg := core.DefaultConfig(core.CC, 16)
	cfg.CoreMHz = 3200
	cfg.DRAMBandwidthMBps = 12800
	cfg.PrefetchDepth = 4
	rep, err := r.Run(cfg, "fir")
	if err != nil {
		return nil, err
	}
	bars = append(bars, normBar("CC+P4-12.8GB/s", rep, base))
	writeBars(w, "Figure 6 [fir]: off-chip bandwidth sweep (16 cores @ 3.2 GHz)", bars)
	return bars, nil
}

// Figure7 shows the effect of hardware prefetching (depth 4) on
// MergeSort and 179.art: 2 cores at 3.2 GHz with a 12.8 GB/s channel.
func (r *Runner) Figure7(w io.Writer) (map[string][]Bar, error) {
	out := map[string][]Bar{}
	for _, app := range []string{"mergesort", "art"} {
		base, err := r.baseline(app)
		if err != nil {
			return nil, err
		}
		mk := func(model core.Model, pf int) core.Config {
			cfg := core.DefaultConfig(model, 2)
			cfg.CoreMHz = 3200
			cfg.DRAMBandwidthMBps = 12800
			cfg.PrefetchDepth = pf
			return cfg
		}
		var bars []Bar
		for _, c := range []struct {
			label string
			cfg   core.Config
		}{
			{"CC", mk(core.CC, 0)},
			{"CC+P4", mk(core.CC, 4)},
			{"STR", mk(core.STR, 0)},
		} {
			rep, err := r.Run(c.cfg, app)
			if err != nil {
				return nil, err
			}
			bars = append(bars, normBar(c.label, rep, base))
		}
		out[app] = bars
		writeBars(w, fmt.Sprintf("Figure 7 [%s]: hardware prefetching (2 cores @ 3.2 GHz, 12.8 GB/s)", app), bars)
	}
	return out, nil
}

// Figure8 shows "Prepare For Store" effects: off-chip traffic for FIR,
// MergeSort and MPEG-2 (CC vs CC+PFS vs STR at 16 cores, 800 MHz) and
// the FIR energy comparison.
func (r *Runner) Figure8(w io.Writer) (map[string][]TrafficBar, []EnergyBar, error) {
	out := map[string][]TrafficBar{}
	apps := map[string]string{"fir": "fir-pfs", "mergesort": "mergesort-pfs", "mpeg2": "mpeg2-pfs"}
	order := []string{"fir", "mergesort", "mpeg2"}
	for _, app := range order {
		pfsApp := apps[app]
		base, err := r.baseline(app)
		if err != nil {
			return nil, nil, err
		}
		var bars []TrafficBar
		for _, c := range []struct{ label, name string }{
			{"CC", app}, {"CC+PFS", pfsApp},
		} {
			rep, err := r.Run(core.DefaultConfig(core.CC, 16), c.name)
			if err != nil {
				return nil, nil, err
			}
			bars = append(bars, normTraffic(c.label, rep, base))
		}
		rep, err := r.Run(core.DefaultConfig(core.STR, 16), app)
		if err != nil {
			return nil, nil, err
		}
		bars = append(bars, normTraffic("STR", rep, base))
		out[app] = bars
		writeTraffic(w, fmt.Sprintf("Figure 8 [%s]: PFS off-chip traffic (16 cores)", app), bars)
	}
	// FIR energy with PFS.
	base, err := r.baseline("fir")
	if err != nil {
		return nil, nil, err
	}
	var ebars []EnergyBar
	for _, c := range []struct {
		label, name string
		model       core.Model
	}{
		{"CC", "fir", core.CC},
		{"CC+PFS", "fir-pfs", core.CC},
		{"STR", "fir", core.STR},
	} {
		rep, err := r.Run(core.DefaultConfig(c.model, 16), c.name)
		if err != nil {
			return nil, nil, err
		}
		ebars = append(ebars, normEnergy(c.label, rep, base))
	}
	writeEnergy(w, "Figure 8 [fir]: PFS energy (16 cores @ 800 MHz)", ebars)
	return out, ebars, nil
}

// Figure9 compares the original and stream-optimized cache-based MPEG-2
// encoders: traffic and execution time at 2-16 cores.
func (r *Runner) Figure9(w io.Writer) (bars []Bar, traffic []TrafficBar, err error) {
	base, err := r.baseline("mpeg2-orig")
	if err != nil {
		return nil, nil, err
	}
	for _, n := range coreCounts {
		for _, app := range []string{"mpeg2-orig", "mpeg2"} {
			rep, err := r.Run(core.DefaultConfig(core.CC, n), app)
			if err != nil {
				return nil, nil, err
			}
			label := fmt.Sprintf("%s-%d", map[string]string{"mpeg2-orig": "ORIG", "mpeg2": "OPT"}[app], n)
			bars = append(bars, normBar(label, rep, base))
			traffic = append(traffic, normTraffic(label, rep, base))
		}
	}
	writeBars(w, "Figure 9 [mpeg2]: stream-programming optimizations, execution time", bars)
	writeTraffic(w, "Figure 9 [mpeg2]: stream-programming optimizations, off-chip traffic", traffic)
	return bars, traffic, nil
}

// Figure10 compares the original and stream-optimized cache-based
// 179.art at 2-16 cores.
func (r *Runner) Figure10(w io.Writer) ([]Bar, error) {
	base, err := r.baseline("art-orig")
	if err != nil {
		return nil, err
	}
	var bars []Bar
	for _, n := range coreCounts {
		for _, app := range []string{"art-orig", "art"} {
			rep, err := r.Run(core.DefaultConfig(core.CC, n), app)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s-%d", map[string]string{"art-orig": "ORIG", "art": "OPT"}[app], n)
			bars = append(bars, normBar(label, rep, base))
		}
	}
	writeBars(w, "Figure 10 [179.art]: stream-programming optimizations", bars)
	return bars, nil
}

// Speedup returns total(b)/total(a) for two bars (how much faster b is).
func Speedup(a, b Bar) float64 { return a.Total / b.Total }

// SortedKeys returns map keys in sorted order (stable test output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ClockOf is a small helper exposing the core clock for reports.
func ClockOf(mhz uint64) sim.Clock { return sim.MHz(mhz) }

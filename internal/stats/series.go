package stats

import (
	"fmt"
	"io"
	"strings"
)

// sparkGlyphs is the 8-level ramp of a sparkline, lowest to highest.
// ASCII-only so output survives every terminal and diff tool.
var sparkGlyphs = []byte(" .:-=+*#")

// heatGlyphs is the 10-level intensity ramp of a heatmap row.
var heatGlyphs = []byte(" .:-=+*#%@")

// Sparkline renders values as a one-line ASCII intensity strip scaled
// to [min, max] of the data. width caps the number of output cells
// (0 = len(values)); longer series are downsampled by taking the mean
// of each bucket, so a narrow terminal still shows the whole run.
func Sparkline(values []float64, width int) string {
	values = resample(values, width)
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		b.WriteByte(glyphFor(v, lo, hi, sparkGlyphs))
	}
	return b.String()
}

// Heatmap renders one intensity row per named series, each normalized
// to its own [min, max] (series have wildly different units), with the
// labels left-aligned in a shared gutter. width caps the cells per row
// (0 = longest series length).
type Heatmap struct {
	Title  string
	Width  int
	names  []string
	series [][]float64
}

// AddRow appends one named series.
func (h *Heatmap) AddRow(name string, values []float64) *Heatmap {
	h.names = append(h.names, name)
	h.series = append(h.series, values)
	return h
}

// Write renders the heatmap.
func (h *Heatmap) Write(w io.Writer) {
	if h.Title != "" {
		fmt.Fprintln(w, h.Title)
	}
	labw := 0
	for _, n := range h.names {
		if len(n) > labw {
			labw = len(n)
		}
	}
	for i, name := range h.names {
		vals := resample(h.series[i], h.Width)
		lo, hi := 0.0, 0.0
		if len(vals) > 0 {
			lo, hi = vals[0], vals[0]
			for _, v := range vals {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		var b strings.Builder
		for _, v := range vals {
			b.WriteByte(glyphFor(v, lo, hi, heatGlyphs))
		}
		fmt.Fprintf(w, "  %-*s |%s| %.4g..%.4g\n", labw, name, b.String(), lo, hi)
	}
}

// glyphFor maps v in [lo, hi] to a ramp glyph; a flat series renders as
// the lowest glyph.
func glyphFor(v, lo, hi float64, ramp []byte) byte {
	if hi <= lo {
		return ramp[0]
	}
	idx := int((v - lo) / (hi - lo) * float64(len(ramp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}

// resample shrinks values to at most width cells by averaging each
// bucket (width <= 0 or len <= width returns values unchanged).
func resample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		s := 0.0
		for _, v := range values[lo:hi] {
			s += v
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

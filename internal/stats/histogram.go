package stats

import "math/bits"

// histBuckets is the number of power-of-two buckets: bucket 0 holds the
// value 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i). 64 value
// buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a power-of-two log-bucket histogram for service times in
// femtoseconds (or any uint64 magnitude). Recording is a bits.Len64 and
// an add — cheap enough for per-miss hot paths — and histograms from
// different cores or runs merge by bucket-wise addition. Quantiles are
// resolved to the upper bound of the containing bucket, which is the
// honest answer a log-bucket scheme can give: within a factor of two,
// biased high.
//
// The zero value is an empty histogram ready for use.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     float64 // float64: 2^64 fs * many samples overflows uint64
	max     uint64
}

// bucketOf returns the bucket index of v.
func bucketOf(v uint64) int { return bits.Len64(v) }

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// RecordN adds n observations of the same value — the bucket-replay
// primitive for merging pre-aggregated distributions (a report's
// power-of-two buckets) into a live histogram.
func (h *Histogram) RecordN(v, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[bucketOf(v)] += n
	h.count += n
	h.sum += float64(v) * float64(n)
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the value bound below which at least q (0..1) of the
// observations fall: the upper bound of the bucket containing the q-th
// observation, clamped to Max for the top bucket. 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		// The 100th percentile is the maximum exactly, not the containing
		// bucket's upper bound (which for huge counts could also round
		// rank past the total and fall through).
		return h.max
	}
	// rank is the 1-based index of the q-th observation.
	rank := uint64(q*float64(h.count) + 0.5)
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			hi := bucketHi(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// P50 returns the median bound.
func (h *Histogram) P50() uint64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile bound.
func (h *Histogram) P95() uint64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile bound.
func (h *Histogram) P99() uint64 { return h.Quantile(0.99) }

// Merge adds src's observations into h bucket-wise.
func (h *Histogram) Merge(src *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += src.buckets[i]
	}
	h.count += src.count
	h.sum += src.sum
	if src.max > h.max {
		h.max = src.max
	}
}

// bucketHi returns the exclusive upper bound of bucket i (inclusive for
// the value 0 in bucket 0).
func bucketHi(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// Buckets calls f for every non-empty bucket in ascending order with the
// bucket's inclusive lower bound, upper bound and observation count —
// the CSV-export view of the distribution.
func (h *Histogram) Buckets(f func(lo, hi, count uint64)) {
	for i, c := range h.buckets {
		if c > 0 {
			f(bucketLo(i), bucketHi(i), c)
		}
	}
}

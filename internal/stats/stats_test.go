package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("short", 1.5)
	tb.Row("a-much-longer-name", 10.25)
	var sb strings.Builder
	tb.WriteText(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "demo") {
		t.Error("missing title")
	}
	// Numeric column right-aligned: both rows end with the value.
	if !strings.HasSuffix(lines[2], "1.500") || !strings.HasSuffix(lines[3], "10.250") {
		t.Errorf("numeric alignment broken:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b,with comma")
	tb.Row(`quote"y`, 2)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	want := "a,\"b,with comma\"\n\"quote\"\"y\",2\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestChartProportions(t *testing.T) {
	ch := Chart{
		Title:    "t",
		SegNames: []string{"useful", "sync"},
		Bars: []StackedBar{
			{Label: "full", Segments: []float64{1.0, 0.0}},
			{Label: "half", Segments: []float64{0.25, 0.25}},
		},
		Max:   1.0,
		Width: 40,
	}
	var sb strings.Builder
	ch.Write(&sb)
	out := sb.String()
	if strings.Count(out, "#") != 40+10+1 { // full + half + legend
		t.Errorf("glyph counts wrong (want 40 + 10 + 1 '#'):\n%s", out)
	}
	if strings.Count(out, "~") != 10+1 { // 10 in bar + 1 in legend
		t.Errorf("segment-2 glyphs wrong:\n%s", out)
	}
	if !strings.Contains(out, "useful") || !strings.Contains(out, "sync") {
		t.Error("legend missing")
	}
}

func TestChartAutoScale(t *testing.T) {
	ch := Chart{
		Bars:  []StackedBar{{Label: "x", Segments: []float64{2.0}}},
		Width: 20,
	}
	var sb strings.Builder
	ch.Write(&sb)
	if got := strings.Count(sb.String(), "#"); got != 20 {
		t.Errorf("auto-scaled bar width = %d, want 20", got)
	}
}

func TestChartZeroData(t *testing.T) {
	ch := Chart{Bars: []StackedBar{{Label: "none", Segments: []float64{0}}}}
	var sb strings.Builder
	ch.Write(&sb) // must not panic or divide by zero
	if !strings.Contains(sb.String(), "none") {
		t.Error("label missing")
	}
}

func TestTableSetPrecision(t *testing.T) {
	tb := NewTable("", "name", "coarse", "fine")
	tb.SetPrecision(1, 1).SetPrecision(2, 6)
	tb.Row("x", 1.25, 1.25)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	want := "name,coarse,fine\nx,1.2,1.250000\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
	// Untouched columns keep the 3-decimal default.
	tb2 := NewTable("", "v").Row(0.5)
	var sb2 strings.Builder
	tb2.WriteCSV(&sb2)
	if want := "v\n0.500\n"; sb2.String() != want {
		t.Errorf("default precision csv = %q, want %q", sb2.String(), want)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if s != " .:-=+*#" {
		t.Errorf("ramp = %q", s)
	}
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty series = %q", got)
	}
	// Flat series renders as the lowest glyph, no divide-by-zero.
	if got := Sparkline([]float64{3, 3, 3}, 0); got != "   " {
		t.Errorf("flat = %q", got)
	}
	// Downsampling: 100 points into 10 cells, still monotone ramp.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	if got := Sparkline(long, 10); len(got) != 10 || got[0] != ' ' || got[9] != '#' {
		t.Errorf("downsampled = %q", got)
	}
}

func TestHeatmap(t *testing.T) {
	var h Heatmap
	h.Title = "hm"
	h.AddRow("a", []float64{0, 1, 2})
	h.AddRow("bb", []float64{5, 5, 5})
	var sb strings.Builder
	h.Write(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "a ") || !strings.Contains(lines[1], "| 0..2") {
		t.Errorf("row a = %q", lines[1])
	}
	if !strings.Contains(lines[2], "|   |") { // flat row: lowest glyph
		t.Errorf("flat row b = %q", lines[2])
	}
}

package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("short", 1.5)
	tb.Row("a-much-longer-name", 10.25)
	var sb strings.Builder
	tb.WriteText(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "demo") {
		t.Error("missing title")
	}
	// Numeric column right-aligned: both rows end with the value.
	if !strings.HasSuffix(lines[2], "1.500") || !strings.HasSuffix(lines[3], "10.250") {
		t.Errorf("numeric alignment broken:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b,with comma")
	tb.Row(`quote"y`, 2)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	want := "a,\"b,with comma\"\n\"quote\"\"y\",2\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestChartProportions(t *testing.T) {
	ch := Chart{
		Title:    "t",
		SegNames: []string{"useful", "sync"},
		Bars: []StackedBar{
			{Label: "full", Segments: []float64{1.0, 0.0}},
			{Label: "half", Segments: []float64{0.25, 0.25}},
		},
		Max:   1.0,
		Width: 40,
	}
	var sb strings.Builder
	ch.Write(&sb)
	out := sb.String()
	if strings.Count(out, "#") != 40+10+1 { // full + half + legend
		t.Errorf("glyph counts wrong (want 40 + 10 + 1 '#'):\n%s", out)
	}
	if strings.Count(out, "~") != 10+1 { // 10 in bar + 1 in legend
		t.Errorf("segment-2 glyphs wrong:\n%s", out)
	}
	if !strings.Contains(out, "useful") || !strings.Contains(out, "sync") {
		t.Error("legend missing")
	}
}

func TestChartAutoScale(t *testing.T) {
	ch := Chart{
		Bars:  []StackedBar{{Label: "x", Segments: []float64{2.0}}},
		Width: 20,
	}
	var sb strings.Builder
	ch.Write(&sb)
	if got := strings.Count(sb.String(), "#"); got != 20 {
		t.Errorf("auto-scaled bar width = %d, want 20", got)
	}
}

func TestChartZeroData(t *testing.T) {
	ch := Chart{Bars: []StackedBar{{Label: "none", Segments: []float64{0}}}}
	var sb strings.Builder
	ch.Write(&sb) // must not panic or divide by zero
	if !strings.Contains(sb.String(), "none") {
		t.Error("label missing")
	}
}

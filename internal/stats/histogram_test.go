package stats

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.P50() != 0 || h.P99() != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h)
	}
	h.Buckets(func(lo, hi, c uint64) { t.Fatalf("empty histogram emitted bucket [%d,%d]=%d", lo, hi, c) })
}

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	if got, want := h.Mean(), 500.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Log buckets answer within a factor of two, biased high.
	if p := h.P50(); p < 500 || p > 1023 {
		t.Fatalf("p50 = %d, want in [500, 1023]", p)
	}
	if p := h.P99(); p < 990 || p > 1000 {
		t.Fatalf("p99 = %d, want in [990, 1000] (clamped to max)", p)
	}
	if p := h.Quantile(1); p != 1000 {
		t.Fatalf("q(1) = %d, want max 1000", p)
	}
}

func TestHistogramZeroValues(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(0)
	h.Record(8)
	if h.P50() != 0 {
		t.Fatalf("p50 = %d, want 0 (two of three observations are 0)", h.P50())
	}
	if h.Max() != 8 {
		t.Fatalf("max = %d, want 8", h.Max())
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	var h Histogram
	// 1 lands in [1,1], 2..3 in [2,3], 4..7 in [4,7].
	for _, v := range []uint64{1, 2, 3, 4, 7} {
		h.Record(v)
	}
	type b struct{ lo, hi, count uint64 }
	var got []b
	h.Buckets(func(lo, hi, c uint64) { got = append(got, b{lo, hi, c}) })
	want := []b{{1, 1, 1}, {2, 3, 2}, {4, 7, 2}}
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := uint64(1); v <= 100; v++ {
		a.Record(v)
		whole.Record(v)
	}
	for v := uint64(1000); v <= 1100; v++ {
		b.Record(v)
		whole.Record(v)
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: got (%d,%v,%d), want (%d,%v,%d)",
			a.Count(), a.Sum(), a.Max(), whole.Count(), whole.Sum(), whole.Max())
	}
	for q := 0.1; q < 1; q += 0.2 {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q(%v): merged %d != whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramLargeValues(t *testing.T) {
	var h Histogram
	h.Record(^uint64(0))
	if h.Max() != ^uint64(0) || h.P99() != ^uint64(0) {
		t.Fatalf("top-bucket handling: max=%d p99=%d", h.Max(), h.P99())
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("empty q(%v) = %d, want 0", q, got)
			}
		}
	})
	t.Run("q below zero clamps to first observation", func(t *testing.T) {
		var h Histogram
		h.Record(3)
		h.Record(100)
		if got := h.Quantile(-0.5); got != h.Quantile(0) {
			t.Fatalf("q(-0.5) = %d, want q(0) = %d", got, h.Quantile(0))
		}
		// Rank clamps to 1: the answer is the first observation's bucket.
		if got := h.Quantile(0); got != 3 {
			t.Fatalf("q(0) = %d, want 3 (bucket of the smallest observation)", got)
		}
	})
	t.Run("q at and above one is exactly Max", func(t *testing.T) {
		var h Histogram
		for _, v := range []uint64{1, 5, 9, 1000} {
			h.Record(v)
		}
		for _, q := range []float64{1, 1.5, 100} {
			if got := h.Quantile(q); got != h.Max() {
				t.Fatalf("q(%v) = %d, want Max() = %d", q, got, h.Max())
			}
		}
	})
	t.Run("single bucket", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 10; i++ {
			h.Record(5) // all in [4,7]
		}
		for _, q := range []float64{0, 0.5, 0.99} {
			if got := h.Quantile(q); got != 5 {
				t.Fatalf("q(%v) = %d, want 5 (bucket hi clamped to max)", q, got)
			}
		}
		if got := h.Quantile(1); got != 5 {
			t.Fatalf("q(1) = %d, want 5", got)
		}
	})
	t.Run("saturated max bucket", func(t *testing.T) {
		var h Histogram
		h.Record(1)
		h.Record(^uint64(0))
		h.Record(^uint64(0) - 1)
		if got := h.Quantile(0.99); got != ^uint64(0) {
			t.Fatalf("q(0.99) = %d, want top-bucket max %d", got, ^uint64(0))
		}
		if got := h.Quantile(1); got != ^uint64(0) {
			t.Fatalf("q(1) = %d, want %d", got, ^uint64(0))
		}
	})
}

func TestHistogramRecordN(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 7; i++ {
		a.Record(12)
	}
	a.Record(900)
	b.RecordN(12, 7)
	b.RecordN(900, 1)
	b.RecordN(5, 0) // no-op
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Max() != b.Max() {
		t.Fatalf("RecordN mismatch: got (%d,%v,%d), want (%d,%v,%d)",
			b.Count(), b.Sum(), b.Max(), a.Count(), a.Sum(), a.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q(%v): RecordN %d != Record %d", q, b.Quantile(q), a.Quantile(q))
		}
	}
}

// BenchmarkHistogramRecord is the per-observation cost gate: Record sits
// on the per-miss hot path when the cycle ledger is enabled.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	v := uint64(12345)
	for i := 0; i < b.N; i++ {
		// xorshift keeps values varied without a modulo in the loop.
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		h.Record(v)
	}
	if h.Count() == 0 {
		b.Fatal("no records")
	}
}

// Package stats provides the presentation layer for measurement data:
// aligned text tables, CSV export, and ASCII stacked-bar charts used by
// cmd/paperbench to render the paper's figures in a terminal.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool // per column: right-align
	prec    []int  // per column: float decimals (-1 = default 3)
}

// NewTable returns a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header, numeric: make([]bool, len(header))}
}

// SetPrecision overrides the number of decimals used for float cells in
// column col (the default is 3). Call it before the affected Rows; it
// returns the table for chaining.
func (t *Table) SetPrecision(col, digits int) *Table {
	if col < 0 || digits < 0 {
		panic("stats: negative column or precision")
	}
	for len(t.prec) <= col {
		t.prec = append(t.prec, -1)
	}
	t.prec[col] = digits
	return t
}

// floatPrec returns the decimals for a float cell in column i.
func (t *Table) floatPrec(i int) int {
	if i < len(t.prec) && t.prec[i] >= 0 {
		return t.prec[i]
	}
	return 3
}

// Row appends a row; values are rendered with %v, floats with 3
// decimals (see SetPrecision). Numeric cells are right-aligned.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.*f", t.floatPrec(i), v)
			t.mark(i)
		case float32:
			row[i] = fmt.Sprintf("%.*f", t.floatPrec(i), v)
			t.mark(i)
		case int, int64, uint64, uint32:
			row[i] = fmt.Sprintf("%d", v)
			t.mark(i)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

func (t *Table) mark(i int) {
	for len(t.numeric) <= i {
		t.numeric = append(t.numeric, false)
	}
	t.numeric[i] = true
}

// widths computes per-column widths over header and rows.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			for len(w) <= i {
				w = append(w, 0)
			}
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := t.widths()
	line := func(cells []string) {
		var b strings.Builder
		b.WriteString(" ")
		for i, c := range cells {
			b.WriteString(" ")
			if i < len(t.numeric) && t.numeric[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}

// WriteCSV renders the table as CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.header))
	for i, h := range t.header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, r := range t.rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// StackedBar is one bar of a stacked chart: named segments in order.
type StackedBar struct {
	Label    string
	Segments []float64
}

// Chart renders horizontal stacked bars in ASCII, the terminal
// equivalent of the paper's figures. Values are relative to Max (often
// the normalization baseline = 1.0).
type Chart struct {
	Title    string
	SegNames []string
	Bars     []StackedBar
	Max      float64 // full-scale value; 0 = auto from data
	Width    int     // character budget for the bar; 0 = 50
}

// segGlyphs distinguish segments in order (useful, sync, load, store or
// the energy components).
var segGlyphs = []byte{'#', '~', '-', '=', '+', '*', ':', '.'}

// Write renders the chart.
func (c *Chart) Write(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	max := c.Max
	if max <= 0 {
		for _, b := range c.Bars {
			t := 0.0
			for _, s := range b.Segments {
				t += s
			}
			if t > max {
				max = t
			}
		}
		if max == 0 {
			max = 1
		}
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	labw := 0
	for _, b := range c.Bars {
		if len(b.Label) > labw {
			labw = len(b.Label)
		}
	}
	for _, b := range c.Bars {
		var bar strings.Builder
		total := 0.0
		for si, s := range b.Segments {
			total += s
			n := int(s/max*float64(width) + 0.5)
			g := segGlyphs[si%len(segGlyphs)]
			bar.Write(bytesRepeat(g, n))
		}
		fmt.Fprintf(w, "  %-*s |%-*s| %.3f\n", labw, b.Label, width, bar.String(), total)
	}
	if len(c.SegNames) > 0 {
		var leg strings.Builder
		for i, n := range c.SegNames {
			if i > 0 {
				leg.WriteString("  ")
			}
			fmt.Fprintf(&leg, "%c=%s", segGlyphs[i%len(segGlyphs)], n)
		}
		fmt.Fprintf(w, "  [%s]\n", leg.String())
	}
}

func bytesRepeat(b byte, n int) []byte {
	if n <= 0 {
		return nil
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

package probe

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeStats mimics a model Stats type implementing the snapshot
// contract: fixed set and order of names on every call.
type fakeStats struct{ a, b uint64 }

func (s fakeStats) Snapshot(put func(string, float64)) {
	put("a", float64(s.a))
	put("b", float64(s.b))
}

func TestRecorderColumns(t *testing.T) {
	st := &fakeStats{}
	depth := 0
	r := NewRecorder(sim.Microsecond)
	r.AddSnapshot("fake", func(put func(string, float64)) { st.Snapshot(put) })
	r.AddGauge("queue_depth", Level, func(sim.Time) float64 { return float64(depth) })

	st.a, st.b, depth = 10, 1, 3
	r.Tick(1 * sim.Microsecond)
	st.a, st.b, depth = 25, 1, 7
	r.Tick(2 * sim.Microsecond)

	if got := r.Names(); len(got) != 3 || got[0] != "fake.a" || got[2] != "queue_depth" {
		t.Fatalf("names = %v", got)
	}
	if d := r.DeltaByName("fake.a"); d[0] != 10 || d[1] != 15 {
		t.Errorf("delta fake.a = %v", d)
	}
	// Level series pass through Delta untouched.
	if d := r.DeltaByName("queue_depth"); d[0] != 3 || d[1] != 7 {
		t.Errorf("delta queue_depth = %v", d)
	}
	if s := r.SeriesByName("fake.b"); s[0] != 1 || s[1] != 1 {
		t.Errorf("series fake.b = %v", s)
	}
	if r.SeriesByName("nope") != nil {
		t.Error("unknown metric should return nil")
	}
}

func TestRecorderCapDrops(t *testing.T) {
	r := NewRecorder(sim.Nanosecond)
	r.Cap = 3
	r.AddGauge("x", Level, func(sim.Time) float64 { return 1 })
	for i := 1; i <= 10; i++ {
		r.Tick(sim.Time(i) * sim.Nanosecond)
	}
	if r.Epochs() != 3 || r.Dropped() != 7 {
		t.Errorf("epochs=%d dropped=%d", r.Epochs(), r.Dropped())
	}
}

func TestCSVAndJSONL(t *testing.T) {
	r := NewRecorder(sim.Nanosecond)
	v := 0.0
	r.AddGauge("v", Counter, func(sim.Time) float64 { return v })
	v = 1.5
	r.Tick(sim.Nanosecond)
	v = 4
	r.Tick(2 * sim.Nanosecond)

	var csv strings.Builder
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "t_fs,v\n1000000,1.5\n2000000,4\n"
	if csv.String() != want {
		t.Errorf("csv = %q, want %q", csv.String(), want)
	}

	var jl strings.Builder
	if err := r.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var rec struct {
		T uint64             `json:"t_fs"`
		V map[string]float64 `json:"v"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.T != 2000000 || rec.V["v"] != 4 {
		t.Errorf("jsonl record = %+v", rec)
	}

	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var obj struct {
		IntervalFS uint64 `json:"interval_fs"`
		Epochs     int    `json:"epochs"`
		Metrics    []struct {
			Name   string    `json:"name"`
			Kind   string    `json:"kind"`
			Values []float64 `json:"values"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b, &obj); err != nil {
		t.Fatal(err)
	}
	if obj.IntervalFS != uint64(sim.Nanosecond) || obj.Epochs != 2 ||
		len(obj.Metrics) != 1 || obj.Metrics[0].Kind != "counter" || obj.Metrics[0].Values[1] != 4 {
		t.Errorf("marshal = %s", b)
	}
}

func TestUnstableSnapshotPanics(t *testing.T) {
	r := NewRecorder(sim.Nanosecond)
	n := 1
	r.AddSnapshot("bad", func(put func(string, float64)) {
		for i := 0; i < n; i++ {
			put("x", 0)
		}
	})
	r.Tick(sim.Nanosecond)
	n = 2
	defer func() {
		if recover() == nil {
			t.Error("unstable snapshot did not panic")
		}
	}()
	r.Tick(2 * sim.Nanosecond)
}

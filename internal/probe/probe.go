// Package probe samples the whole simulated machine on a fixed
// simulated-time epoch and turns the counters every model already keeps
// into time-resolved series: DRAM bandwidth over the run, store-buffer
// fill, DMA queue depth, engine fast-path hit rate, and so on.
//
// The Recorder never schedules anything. It is driven by the engine's
// epoch hook (sim.Engine.SetEpoch), which fires synchronously whenever
// the event clock first crosses an epoch boundary; a tick only *reads*
// model counters, so the event order — and therefore every simulated
// timestamp and aggregate counter — is byte-identical with sampling on
// or off. That invariant is what lets paperbench figures be regenerated
// with sampling enabled without changing a single digit.
package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Kind says how a metric's samples should be read.
type Kind uint8

// Metric kinds.
const (
	// Counter samples are cumulative totals; the per-epoch increment
	// (Delta) or rate is the interesting view.
	Counter Kind = iota
	// Level samples are instantaneous values (queue depths, occupancy);
	// they are plotted as-is.
	Level
)

// String names the kind for JSON export.
func (k Kind) String() string {
	if k == Level {
		return "level"
	}
	return "counter"
}

// SnapshotFunc emits one cumulative counter per call to put. The probe
// contract: the number and order of put calls must be identical on every
// invocation (model Stats types satisfy it by emitting their fields in
// declaration order).
type SnapshotFunc func(put func(name string, value float64))

// DefaultCap bounds the number of recorded epochs, because a tight
// epoch on a long run could otherwise grow without bound (cf. the trace
// collector's span cap). Ticks beyond the cap are counted as dropped.
const DefaultCap = 1 << 16

// entry is one registered source, in registration order.
type entry struct {
	prefix string
	kind   Kind
	read   func(now sim.Time) float64 // gauge form (snap == nil)
	snap   SnapshotFunc               // snapshot form
}

// Recorder accumulates per-epoch samples of registered sources. It is
// not safe for concurrent use and belongs to exactly one simulation run,
// like a trace.Collector.
type Recorder struct {
	// Cap bounds recorded epochs (0 = DefaultCap).
	Cap int

	interval sim.Time
	entries  []entry
	sealed   bool
	names    []string
	kinds    []Kind
	times    []sim.Time
	cols     [][]float64
	dropped  uint64
}

// NewRecorder returns a recorder sampling every interval of simulated
// time.
func NewRecorder(interval sim.Time) *Recorder {
	if interval == 0 {
		panic("probe: zero sampling interval")
	}
	return &Recorder{interval: interval, Cap: DefaultCap}
}

// Interval returns the epoch length.
func (r *Recorder) Interval() sim.Time { return r.interval }

// AddGauge registers a single named metric read by fn at each tick.
// `now` is the epoch boundary being sampled, for occupancy computations.
// Registration must finish before the first Tick.
func (r *Recorder) AddGauge(name string, kind Kind, fn func(now sim.Time) float64) {
	if r.sealed {
		panic("probe: AddGauge after first Tick")
	}
	r.entries = append(r.entries, entry{prefix: name, kind: kind, read: fn})
}

// AddSnapshot registers a snapshot source whose metrics appear as
// "prefix.name". All snapshot metrics are Counters.
func (r *Recorder) AddSnapshot(prefix string, snap SnapshotFunc) {
	if r.sealed {
		panic("probe: AddSnapshot after first Tick")
	}
	r.entries = append(r.entries, entry{prefix: prefix, kind: Counter, snap: snap})
}

// Tick records one sample row for epoch boundary `now`. The engine's
// epoch hook calls it; it must never touch simulated time.
func (r *Recorder) Tick(now sim.Time) {
	cap := r.Cap
	if cap <= 0 {
		cap = DefaultCap
	}
	if len(r.times) >= cap {
		r.dropped++
		return
	}
	if !r.sealed {
		r.sealColumns()
	}
	r.times = append(r.times, now)
	idx := 0
	put := func(_ string, v float64) {
		if idx >= len(r.cols) {
			panic("probe: source emitted more metrics than on the first tick (unstable snapshot)")
		}
		r.cols[idx] = append(r.cols[idx], v)
		idx++
	}
	for _, e := range r.entries {
		if e.snap != nil {
			e.snap(put)
		} else {
			put(e.prefix, e.read(now))
		}
	}
	if idx != len(r.names) {
		panic(fmt.Sprintf("probe: source emitted %d metrics, first tick emitted %d (unstable snapshot)", idx, len(r.names)))
	}
}

// sealColumns runs the sources once to learn the metric names, then
// fixes the column layout for the rest of the run.
func (r *Recorder) sealColumns() {
	for _, e := range r.entries {
		if e.snap != nil {
			prefix := e.prefix
			e.snap(func(name string, _ float64) {
				r.names = append(r.names, prefix+"."+name)
				r.kinds = append(r.kinds, Counter)
			})
		} else {
			r.names = append(r.names, e.prefix)
			r.kinds = append(r.kinds, e.kind)
		}
	}
	r.cols = make([][]float64, len(r.names))
	r.sealed = true
}

// Epochs returns the number of recorded samples.
func (r *Recorder) Epochs() int { return len(r.times) }

// Dropped returns how many ticks were discarded after the cap.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Times returns the epoch boundaries of the recorded samples.
func (r *Recorder) Times() []sim.Time { return r.times }

// Names returns the metric names in column order.
func (r *Recorder) Names() []string { return r.names }

// KindOf returns column i's kind.
func (r *Recorder) KindOf(i int) Kind { return r.kinds[i] }

// Series returns column i's raw samples (cumulative for Counters).
func (r *Recorder) Series(i int) []float64 { return r.cols[i] }

// SeriesByName returns the raw samples of the named metric (nil if the
// metric does not exist).
func (r *Recorder) SeriesByName(name string) []float64 {
	for i, n := range r.names {
		if n == name {
			return r.cols[i]
		}
	}
	return nil
}

// Delta converts a cumulative series into per-epoch increments (the
// first epoch's increment is measured from zero). Level series are
// returned as-is.
func (r *Recorder) Delta(i int) []float64 {
	col := r.cols[i]
	if r.kinds[i] == Level {
		return col
	}
	out := make([]float64, len(col))
	prev := 0.0
	for k, v := range col {
		out[k] = v - prev
		prev = v
	}
	return out
}

// DeltaByName is Delta by metric name (nil if absent).
func (r *Recorder) DeltaByName(name string) []float64 {
	for i, n := range r.names {
		if n == name {
			return r.Delta(i)
		}
	}
	return nil
}

// WriteCSV writes the raw samples, one row per epoch: a "t_fs" column of
// epoch boundaries followed by one column per metric.
func (r *Recorder) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("t_fs")
	for _, n := range r.names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	for k, tm := range r.times {
		b.WriteString(strconv.FormatUint(uint64(tm), 10))
		for _, col := range r.cols {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(col[k], 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSONL writes one JSON record per epoch: {"t_fs":..., "v":{...}}.
// Keys inside "v" are sorted by encoding/json, so output is stable.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for k, tm := range r.times {
		rec := struct {
			T uint64             `json:"t_fs"`
			V map[string]float64 `json:"v"`
		}{T: uint64(tm), V: make(map[string]float64, len(r.names))}
		for i, n := range r.names {
			rec.V[n] = r.cols[i][k]
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// jsonMetric is one metric's column in the MarshalJSON form.
type jsonMetric struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Values []float64 `json:"values"`
}

// MarshalJSON renders the whole recording as one object: interval,
// epoch boundaries, and a column per metric. cmd/memsim embeds it next
// to the report under -json -sample.
func (r *Recorder) MarshalJSON() ([]byte, error) {
	times := make([]uint64, len(r.times))
	for i, t := range r.times {
		times[i] = uint64(t)
	}
	metrics := make([]jsonMetric, len(r.names))
	for i, n := range r.names {
		metrics[i] = jsonMetric{Name: n, Kind: r.kinds[i].String(), Values: r.cols[i]}
	}
	return json.Marshal(struct {
		IntervalFS uint64       `json:"interval_fs"`
		Epochs     int          `json:"epochs"`
		Dropped    uint64       `json:"dropped,omitempty"`
		TimesFS    []uint64     `json:"times_fs"`
		Metrics    []jsonMetric `json:"metrics"`
	}{uint64(r.interval), len(r.times), r.dropped, times, metrics})
}

package workload

import (
	"testing"

	"repro/internal/core"
)

func TestMergeSortBothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		for _, n := range []int{1, 2, 4} {
			rep := runWL(t, "mergesort", model, n, nil)
			if rep.Wall == 0 {
				t.Errorf("%v/%d zero wall", model, n)
			}
		}
	}
}

func TestMergeSortSyncGrowsWithCores(t *testing.T) {
	// Parallelism decays across merge levels, so per-core sync time must
	// be substantial at higher core counts (H.264/MergeSort behavior in
	// Figure 2).
	r1 := runWL(t, "mergesort", core.CC, 1, nil)
	r8 := runWL(t, "mergesort", core.CC, 8, nil)
	frac1 := float64(r1.Breakdown.Sync) / float64(r1.Breakdown.Total())
	frac8 := float64(r8.Breakdown.Sync) / float64(r8.Breakdown.Total())
	if frac8 <= frac1 {
		t.Errorf("sync fraction did not grow with cores: %.3f -> %.3f", frac1, frac8)
	}
}

func TestBitonicBothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		for _, n := range []int{1, 4} {
			rep := runWL(t, "bitonicsort", model, n, nil)
			if rep.Wall == 0 {
				t.Errorf("%v/%d zero wall", model, n)
			}
		}
	}
}

func TestBitonicSTRWritesMore(t *testing.T) {
	// The in-situ sort often needn't swap; CC writes back only dirtied
	// lines while STR writes every block (Section 5.1 / Figure 3).
	// At small scale the dataset fits in the L2, so compare write volume
	// where it is visible: dirty L1 lines written back versus DMA puts.
	cc := runWL(t, "bitonicsort", core.CC, 4, nil)
	str := runWL(t, "bitonicsort", core.STR, 4, nil)
	ccW := cc.L1WritebacksL2 * 32
	strW := str.DMAPutBytes
	if strW <= ccW*3/2 {
		t.Errorf("STR write traffic %d not well above CC %d; expected write-back of unmodified data", strW, ccW)
	}
}

func TestMergeSortPFSReducesReads(t *testing.T) {
	plain := runWL(t, "mergesort", core.CC, 4, nil)
	pfs := runWL(t, "mergesort-pfs", core.CC, 4, nil)
	if pfs.DRAM.ReadBytes >= plain.DRAM.ReadBytes {
		t.Errorf("PFS reads %d >= plain %d", pfs.DRAM.ReadBytes, plain.DRAM.ReadBytes)
	}
}

package workload

import "math"

// This file holds the signal-processing kernels shared by the JPEG and
// MPEG-2 workloads: an 8x8 DCT pair, quantization, zigzag ordering and
// a run-length entropy stage. The transforms are real (the decoders
// verify round-trips); the simulator only sees their memory behavior
// and instruction counts.

// dctCos holds the DCT-II basis, precomputed once.
var dctCos [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			dctCos[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func dctAlpha(u int) float64 {
	if u == 0 {
		return math.Sqrt2 / 2
	}
	return 1
}

// fdct8 computes the forward 8x8 DCT-II of a spatial block into coef.
func fdct8(block *[64]int32, coef *[64]int32) {
	var tmp [64]float64
	// Rows then columns (separable).
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			s := 0.0
			for x := 0; x < 8; x++ {
				s += float64(block[y*8+x]) * dctCos[u][x]
			}
			tmp[y*8+u] = s * dctAlpha(u) / 2
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			s := 0.0
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * dctCos[v][y]
			}
			coef[v*8+u] = int32(math.RoundToEven(s * dctAlpha(v) / 2))
		}
	}
}

// idct8 inverts fdct8 (up to rounding).
func idct8(coef *[64]int32, block *[64]int32) {
	var tmp [64]float64
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			s := 0.0
			for u := 0; u < 8; u++ {
				s += dctAlpha(u) * float64(coef[v*8+u]) * dctCos[u][x]
			}
			tmp[v*8+x] = s / 2
		}
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			s := 0.0
			for v := 0; v < 8; v++ {
				s += dctAlpha(v) * tmp[v*8+x] * dctCos[v][y]
			}
			block[y*8+x] = int32(math.RoundToEven(s / 2))
		}
	}
}

// jpegQuant is a luminance quantization table (JPEG Annex K, quality
// ~50).
var jpegQuant = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantize divides coefficients by the table with rounding to nearest.
func quantize(coef *[64]int32, table *[64]int32) {
	for i := range coef {
		q := table[i]
		c := coef[i]
		if c >= 0 {
			coef[i] = (c + q/2) / q
		} else {
			coef[i] = -((-c + q/2) / q)
		}
	}
}

// dequantize multiplies coefficients back up.
func dequantize(coef *[64]int32, table *[64]int32) {
	for i := range coef {
		coef[i] *= table[i]
	}
}

// zigzag is the JPEG coefficient scan order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// rleEncode appends a (run, level) entropy coding of the zigzagged
// coefficients to out: runs of zeros are counted, values stored as
// 16-bit little-endian pairs, terminated by an end-of-block marker.
func rleEncode(coef *[64]int32, out []byte) []byte {
	run := 0
	for _, zi := range zigzag {
		v := coef[zi]
		if v == 0 {
			run++
			continue
		}
		for run > 255 {
			out = append(out, 255, 0, 0)
			run -= 255
		}
		out = append(out, byte(run), byte(uint16(v)), byte(uint16(v)>>8))
		run = 0
	}
	return append(out, 0xFF, 0xFF, 0xFF) // end of block
}

// rleDecode parses one block from data, returning the rest.
func rleDecode(data []byte, coef *[64]int32) []byte {
	*coef = [64]int32{}
	pos := 0
	for {
		run, lo, hi := data[0], data[1], data[2]
		data = data[3:]
		if run == 0xFF && lo == 0xFF && hi == 0xFF {
			return data
		}
		pos += int(run)
		v := int32(int16(uint16(lo) | uint16(hi)<<8))
		if v != 0 {
			coef[zigzag[pos]] = v
			pos++
		}
	}
}

// Instruction-cost constants for the kernels above, in 3-slot VLIW
// issue slots. A separable 8x8 DCT is ~2x64x8 multiply-adds on two FPU
// slots plus address arithmetic.
const (
	workFDCT     = 600 // per 8x8 block
	workIDCT     = 600
	workQuant    = 96 // 64 divides-by-constant via multiplies
	workRLE      = 160
	workPerPixel = 3 // level shift / color handling per pixel
)

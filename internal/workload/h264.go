package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/syncprim"
)

func init() {
	Register("h264", func(s Scale) core.Workload { return newH264(s) })
}

// h264 models the H.264 encoder's defining behavior: intra prediction
// creates dependencies between macroblocks (a block predicts from the
// *reconstructed* pixels of its left and top neighbors), so parallelism
// is limited to the anti-diagonal wavefront. "We schedule the
// processing of dependent macroblocks so as to minimize the length of
// the critical execution path ... the macroblock parallelism available
// in H.264 is limited", which shows up as synchronization stalls on
// both memory models at high core counts (Figure 2).
//
// The encoder is real: DC/horizontal/vertical intra mode decision by
// SAD, residual DCT + quantization + RLE, and reconstruction through
// the inverse transform (so the dependency is genuine — reordering
// macroblocks illegally would change the output).
type h264 struct {
	frames int
	w, h   int
	mbW    int
	mbH    int

	pix   [][]byte
	recon [][]byte
	modes [][]uint8
	out   [][][]byte

	pixR   []mem.Region
	reconR []mem.Region
	outR   []mem.Region

	cores   int
	lock    *syncprim.Lock
	barrier *syncprim.Barrier
	deps    []int8
	ready   []int
	done    int
}

func newH264(s Scale) *h264 {
	e := &h264{frames: 3, w: 176, h: 144}
	switch s {
	case ScaleSmall:
		e.frames, e.w, e.h = 2, 96, 80
	case ScalePaper:
		e.frames, e.w, e.h = 10, 352, 288
	}
	e.mbW, e.mbH = e.w/mbSize, e.h/mbSize
	return e
}

func (e *h264) Name() string { return "h264" }

func (e *h264) Setup(sys *core.System) {
	e.cores = sys.Cores()
	rg := newRNG(0x264)
	as := sys.AddressSpace()
	for f := 0; f < e.frames; f++ {
		pix := make([]byte, e.w*e.h)
		for y := 0; y < e.h; y++ {
			for x := 0; x < e.w; x++ {
				pix[y*e.w+x] = byte(13*(x/8)+29*(y/8)+5*f) ^ rg.byte()&0x07
			}
		}
		e.pix = append(e.pix, pix)
		e.recon = append(e.recon, make([]byte, e.w*e.h))
		e.modes = append(e.modes, make([]uint8, e.mbW*e.mbH))
		e.out = append(e.out, make([][]byte, e.mbW*e.mbH))
		e.pixR = append(e.pixR, as.Alloc(fmt.Sprintf("h264.f%d", f), uint64(e.w*e.h)))
		e.reconR = append(e.reconR, as.Alloc(fmt.Sprintf("h264.r%d", f), uint64(e.w*e.h)))
		e.outR = append(e.outR, as.Alloc(fmt.Sprintf("h264.o%d", f), uint64(e.mbW*e.mbH*mbOutSlot)))
	}
	e.lock = syncprim.NewLock("h264.sched")
	e.barrier = syncprim.NewBarrier("h264.bar", e.cores)
	e.deps = make([]int8, e.mbW*e.mbH)
	// Like MPEG-2, the encoder's footprint pressures the 16 KB I-cache.
	sys.SetICacheProfile(3000)
}

// predict fills pred with the chosen intra prediction for mb, returning
// the SAD-best mode (0 = DC, 1 = vertical from top, 2 = horizontal from
// left). Prediction sources are reconstructed neighbor pixels.
func (e *h264) predict(f, mbx, mby int, pred []byte) uint8 {
	x, y := mbx*mbSize, mby*mbSize
	rec := e.recon[f]
	cur := e.pix[f]
	// Candidate predictions.
	var dc int
	var top, left [mbSize]byte
	haveTop, haveLeft := mby > 0, mbx > 0
	count := 0
	for i := 0; i < mbSize; i++ {
		if haveTop {
			top[i] = rec[(y-1)*e.w+x+i]
			dc += int(top[i])
			count++
		}
		if haveLeft {
			left[i] = rec[(y+i)*e.w+x-1]
			dc += int(left[i])
			count++
		}
	}
	if count > 0 {
		dc /= count
	} else {
		dc = 128
	}
	bestMode, bestSAD := uint8(0), 1<<30
	try := func(mode uint8, at func(i, j int) byte) {
		sad := 0
		for j := 0; j < mbSize; j++ {
			for i := 0; i < mbSize; i++ {
				d := int(cur[(y+j)*e.w+x+i]) - int(at(i, j))
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestSAD {
			bestSAD = sad
			bestMode = mode
		}
	}
	try(0, func(i, j int) byte { return byte(dc) })
	if haveTop {
		try(1, func(i, j int) byte { return top[i] })
	}
	if haveLeft {
		try(2, func(i, j int) byte { return left[j] })
	}
	fill := func(at func(i, j int) byte) {
		for j := 0; j < mbSize; j++ {
			for i := 0; i < mbSize; i++ {
				pred[j*mbSize+i] = at(i, j)
			}
		}
	}
	switch bestMode {
	case 1:
		fill(func(i, j int) byte { return top[i] })
	case 2:
		fill(func(i, j int) byte { return left[j] })
	default:
		fill(func(i, j int) byte { return byte(dc) })
	}
	return bestMode
}

// encodeMB codes one macroblock and reconstructs it in place.
func (e *h264) encodeMB(f, mb int, pred []byte, res []int32) {
	mbx, mby := mb%e.mbW, mb/e.mbW
	x, y := mbx*mbSize, mby*mbSize
	e.modes[f][mb] = e.predict(f, mbx, mby, pred)
	cur := e.pix[f]
	for j := 0; j < mbSize; j++ {
		for i := 0; i < mbSize; i++ {
			res[j*mbSize+i] = int32(cur[(y+j)*e.w+x+i]) - int32(pred[j*mbSize+i])
		}
	}
	var out []byte
	var blk, coef [64]int32
	rec := e.recon[f]
	for b := 0; b < 4; b++ {
		ox, oy := (b%2)*8, (b/2)*8
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				blk[j*8+i] = res[(oy+j)*mbSize+ox+i]
			}
		}
		fdct8(&blk, &coef)
		quantize(&coef, &jpegQuant)
		out = rleEncode(&coef, out)
		// Reconstruction path: dequantize + inverse transform + pred.
		dequantize(&coef, &jpegQuant)
		idct8(&coef, &blk)
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				v := blk[j*8+i] + int32(pred[(oy+j)*mbSize+ox+i])
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				rec[(y+oy+j)*e.w+x+ox+i] = byte(v)
			}
		}
	}
	e.out[f][mb] = out
}

// workH264MB is the issue cost per macroblock: intra mode trials,
// forward+inverse transforms, quantization both ways, coding and
// reconstruction clamping.
const workH264MB = 3*workSAD16 + 4*(workFDCT+workQuant+workRLE+workIDCT) + 2*workResid + workMBMisc

// workH264ME approximates the encoder's dominant cost on P-frames that
// this intra-path model does not execute: exhaustive fractional motion
// search and rate-distortion mode decisions (H.264's compute per
// macroblock dwarfs MPEG-2's — Table 3 shows ~3700 instructions per L1
// miss). Charged per macroblock on non-first frames.
const workH264ME = 140 * workSAD16

// pollDelay is how long a core backs off when no macroblock is ready.
const pollDelay = 200 * sim.Nanosecond

func (e *h264) Run(p *cpu.Proc) {
	sm, isSTR := streamMem(p)
	pred := make([]byte, mbSize*mbSize)
	res := make([]int32, mbSize*mbSize)
	nMB := e.mbW * e.mbH
	for f := 0; f < e.frames; f++ {
		if p.ID() == 0 {
			for mb := 0; mb < nMB; mb++ {
				d := int8(0)
				if mb%e.mbW > 0 {
					d++
				}
				if mb/e.mbW > 0 {
					d++
				}
				e.deps[mb] = d
			}
			e.ready = e.ready[:0]
			e.ready = append(e.ready, 0)
			e.done = 0
		}
		e.barrier.Wait(p)
		for {
			e.lock.Acquire(p)
			if e.done == nMB {
				e.lock.Release(p)
				break
			}
			if len(e.ready) == 0 {
				e.lock.Release(p)
				p.WaitUntil(p.Now() + pollDelay)
				continue
			}
			mb := e.ready[0]
			e.ready = e.ready[1:]
			e.lock.Release(p)

			mbx, mby := mb%e.mbW, mb/e.mbW
			x, y := mbx*mbSize, mby*mbSize
			// Input pixels + neighbor reconstruction rows/columns.
			if isSTR {
				g := sm.GetStrided(p, e.pixR[f].At(uint64(y*e.w+x)), mbSize, uint64(e.w), mbSize)
				if mby > 0 {
					g2 := sm.Get(p, e.reconR[f].At(uint64((y-1)*e.w+x)), mbSize)
					sm.Wait(p, g2)
				}
				if mbx > 0 {
					g3 := sm.GetStrided(p, e.reconR[f].At(uint64(y*e.w+x-1)), 1, uint64(e.w), mbSize)
					sm.Wait(p, g3)
				}
				sm.Wait(p, g)
				sm.LSLoadN(p, mbSize*mbSize/4)
			} else {
				for j := 0; j < mbSize; j++ {
					p.LoadN(e.pixR[f].At(uint64((y+j)*e.w+x)), 4, mbSize/4)
				}
				if mby > 0 {
					p.LoadN(e.reconR[f].At(uint64((y-1)*e.w+x)), 4, mbSize/4)
				}
				if mbx > 0 {
					for j := 0; j < mbSize; j++ {
						p.Load(e.reconR[f].At(uint64((y+j)*e.w + x - 1)))
					}
				}
			}
			e.encodeMB(f, mb, pred, res)
			work := uint64(workH264MB)
			if f > 0 {
				work += workH264ME
			}
			if isSTR {
				// "The streaming H.264 takes advantage of some boundary-
				// condition optimizations that proved difficult in the
				// cache-based variant", a slight instruction reduction.
				work = work * 97 / 100
			}
			p.Work(work)
			// Write reconstruction + bitstream.
			n := uint64(len(e.out[f][mb]))
			if isSTR {
				sm.LSStoreN(p, mbSize*mbSize/4)
				pr := sm.PutStrided(p, e.reconR[f].At(uint64(y*e.w+x)), mbSize, uint64(e.w), mbSize)
				po := sm.Put(p, e.outR[f].At(uint64(mb*mbOutSlot)), n)
				sm.Wait(p, pr)
				sm.Wait(p, po)
			} else {
				for j := 0; j < mbSize; j++ {
					p.StoreN(e.reconR[f].At(uint64((y+j)*e.w+x)), 4, mbSize/4)
				}
				p.StoreN(e.outR[f].At(uint64(mb*mbOutSlot)), 4, (n+3)/4)
			}

			// Release dependents.
			e.lock.Acquire(p)
			e.done++
			if mbx+1 < e.mbW {
				r := mb + 1
				e.deps[r]--
				if e.deps[r] == 0 {
					e.ready = append(e.ready, r)
				}
			}
			if mby+1 < e.mbH {
				r := mb + e.mbW
				e.deps[r]--
				if e.deps[r] == 0 {
					e.ready = append(e.ready, r)
				}
			}
			e.lock.Release(p)
		}
		e.barrier.Wait(p)
	}
}

func (e *h264) Verify() error {
	// Re-encode sequentially in raster order (a legal dependency order)
	// and compare bitstreams and reconstructions.
	ref := &h264{frames: e.frames, w: e.w, h: e.h, mbW: e.mbW, mbH: e.mbH}
	ref.pix = e.pix
	pred := make([]byte, mbSize*mbSize)
	res := make([]int32, mbSize*mbSize)
	for f := 0; f < e.frames; f++ {
		ref.recon = append(ref.recon, make([]byte, e.w*e.h))
		ref.modes = append(ref.modes, make([]uint8, e.mbW*e.mbH))
		ref.out = append(ref.out, make([][]byte, e.mbW*e.mbH))
	}
	for f := 0; f < e.frames; f++ {
		for mb := 0; mb < e.mbW*e.mbH; mb++ {
			ref.encodeMB(f, mb, pred, res)
			got, want := e.out[f][mb], ref.out[f][mb]
			if len(got) != len(want) {
				return fmt.Errorf("h264: frame %d mb %d output %d bytes, want %d", f, mb, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					return fmt.Errorf("h264: frame %d mb %d byte %d differs", f, mb, k)
				}
			}
			if e.modes[f][mb] != ref.modes[f][mb] {
				return fmt.Errorf("h264: frame %d mb %d mode %d, want %d", f, mb, e.modes[f][mb], ref.modes[f][mb])
			}
		}
	}
	return nil
}

package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stream"
)

// strioHarness runs one streaming core body via a throwaway workload.
type strioWorkload struct {
	region mem.Region
	body   func(p *cpu.Proc, sm *stream.Mem, r mem.Region)
}

func (w *strioWorkload) Name() string { return "strio-test" }
func (w *strioWorkload) Setup(sys *core.System) {
	w.region = sys.AddressSpace().Alloc("strio", 1<<20)
}
func (w *strioWorkload) Run(p *cpu.Proc) {
	sm, _ := streamMem(p)
	w.body(p, sm, w.region)
}
func (w *strioWorkload) Verify() error { return nil }

func runStrio(t *testing.T, body func(p *cpu.Proc, sm *stream.Mem, r mem.Region)) *core.Report {
	t.Helper()
	sys := core.New(core.DefaultConfig(core.STR, 1))
	rep, err := sys.Run(&strioWorkload{body: body})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestStrInConsumesExactly(t *testing.T) {
	rep := runStrio(t, func(p *cpu.Proc, sm *stream.Mem, r mem.Region) {
		in := newStrIn(p, sm, r.Base, 4, 1000, 256)
		for consumed := 0; consumed < 1000; {
			n := min(137, 1000-consumed)
			in.consume(n)
			consumed += n
		}
	})
	if got := rep.DMAGetBytes; got != 4000 {
		t.Errorf("fetched %d bytes, want 4000 (exactly the stream)", got)
	}
	if got := rep.LSAccesses; got < 1000 {
		t.Errorf("local store saw %d accesses, want >= 1000 element reads", got)
	}
}

func TestStrInEnsureBeyondEndClamps(t *testing.T) {
	runStrio(t, func(p *cpu.Proc, sm *stream.Mem, r mem.Region) {
		in := newStrIn(p, sm, r.Base, 8, 10, 4)
		in.ensure(1000) // way beyond the stream: must not panic or hang
		in.consume(10)
	})
}

func TestStrOutFlushesEverything(t *testing.T) {
	rep := runStrio(t, func(p *cpu.Proc, sm *stream.Mem, r mem.Region) {
		out := newStrOut(p, sm, r.Base, 4, 256)
		for produced := 0; produced < 1000; {
			n := min(113, 1000-produced)
			out.produce(n)
			produced += n
		}
		out.flush()
	})
	if got := rep.DMAPutBytes; got != 4000 {
		t.Errorf("wrote %d bytes, want 4000", got)
	}
}

func TestStrOutDoubleFlushHarmless(t *testing.T) {
	runStrio(t, func(p *cpu.Proc, sm *stream.Mem, r mem.Region) {
		out := newStrOut(p, sm, r.Base, 4, 64)
		out.produce(10)
		out.flush()
		out.flush() // second flush with nothing buffered
	})
}

func TestStrInDoubleBuffersAhead(t *testing.T) {
	// After construction, two block transfers must already be in flight
	// (the definition of double buffering).
	rep := runStrio(t, func(p *cpu.Proc, sm *stream.Mem, r mem.Region) {
		in := newStrIn(p, sm, r.Base, 4, 4096, 512)
		if got := len(in.tags); got != 2 {
			t.Errorf("%d transfers in flight after init, want 2", got)
		}
		in.consume(4096)
	})
	_ = rep
}

package workload

import (
	"testing"

	"repro/internal/core"
)

func TestMPEG2BothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		for _, n := range []int{1, 4} {
			runWL(t, "mpeg2", model, n, nil)
		}
	}
}

func TestMPEG2OrigVerifies(t *testing.T) {
	runWL(t, "mpeg2-orig", core.CC, 4, nil)
}

func TestMPEG2StreamOptimizationReducesWritebacks(t *testing.T) {
	// Figure 9: fusing the kernels per block removed the frame-sized
	// temporaries; "the improved producer-consumer locality reduced
	// write-backs from L1 caches by 60%".
	orig := runWL(t, "mpeg2-orig", core.CC, 4, nil)
	opt := runWL(t, "mpeg2", core.CC, 4, nil)
	if opt.L1WritebacksL2 >= orig.L1WritebacksL2/2 {
		t.Errorf("optimized writebacks %d vs original %d; want >=50%% reduction",
			opt.L1WritebacksL2, orig.L1WritebacksL2)
	}
	if opt.Wall >= orig.Wall {
		t.Errorf("optimized (%v) not faster than original (%v)", opt.Wall, orig.Wall)
	}
}

func TestMPEG2PFSReducesWriteMissTraffic(t *testing.T) {
	// Figure 8: "For MPEG-2, the memory traffic due to write misses was
	// reduced 56% compared to the cache-based application without PFS."
	plain := runWL(t, "mpeg2", core.CC, 4, nil)
	pfs := runWL(t, "mpeg2-pfs", core.CC, 4, nil)
	if pfs.WriteMisses >= plain.WriteMisses {
		t.Errorf("PFS write misses %d >= plain %d", pfs.WriteMisses, plain.WriteMisses)
	}
	if pfs.PFSMisses == 0 {
		t.Error("PFS variant allocated no lines via PFS")
	}
}

func TestMPEG2ComputeBound(t *testing.T) {
	rep := runWL(t, "mpeg2", core.CC, 4, nil)
	frac := float64(rep.Breakdown.Useful) / float64(rep.Breakdown.Total())
	if frac < 0.7 {
		t.Errorf("useful fraction %.2f; MPEG-2 should be compute-bound", frac)
	}
	if rep.Counts.Instructions == 0 || rep.L1.Reads == 0 {
		t.Error("missing activity counts")
	}
}

func TestMPEG2ICacheMissesPresent(t *testing.T) {
	rep := runWL(t, "mpeg2", core.CC, 2, nil)
	var imisses uint64
	for range rep.PerCore {
		// per-core IMisses are not exported in the report; use the
		// instruction count plus profile to sanity-check indirectly.
		imisses++
	}
	_ = imisses
	if rep.Instructions == 0 {
		t.Fatal("no instructions recorded")
	}
}

package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stream"
	"repro/internal/syncprim"
)

func init() {
	Register("art", func(s Scale) core.Workload { return newArt(s, false) })
	// The pre-stream-programming version of Figure 10: array-of-structs
	// F1 layer (sparse strided access) and large temporary vectors.
	Register("art-orig", func(s Scale) core.Workload { return newArt(s, true) })
}

// art reproduces the memory behavior of SPEC 179.art's trainmatch loop:
// an ART neural network whose F1 layer is processed by data-parallel
// vector passes separated by barriers, a matrix-vector resonance step
// against the F2 layer, and a winner weight update. The computation is
// real (the verification reruns it sequentially); what distinguishes the
// variants is the data layout:
//
//   - art-orig: F1 neurons are 64-byte structs and each pass touches one
//     field, so every access lands on a new cache line with 8 of 32
//     bytes used — the sparse pattern the paper's Section 6 fixes.
//   - art: structure-of-arrays fields, merged loops and scalar temps,
//     the stream-programming rewrite that gave the paper ~7x.
type art struct {
	orig  bool
	numF1 int
	numF2 int
	iters int

	i, w, x, v, u, pp, q, r []float64 // F1 fields (SoA storage)
	tds                     [][]float64
	tds0                    [][]float64 // initial weights, for verification

	// Simulated layout regions.
	aosR    mem.Region   // array-of-structs F1 (orig)
	soaR    []mem.Region // one region per field (optimized)
	tdsR    mem.Region
	tempR   mem.Region // orig's large temporary vector
	cores   int
	barrier *syncprim.Barrier
	redLock *syncprim.Lock

	partial  []float64 // reduction scratch (one slot per core)
	norm     float64
	winners  []int
	resonate []float64 // per-F2 accumulators
}

const artFields = 8
const artStructBytes = 64

func newArt(s Scale, orig bool) *art {
	a := &art{orig: orig, numF1: 1 << 14, numF2: 6, iters: 10}
	switch s {
	case ScaleSmall:
		a.numF1 = 1 << 13 // AoS layer ~ L2-sized even at small scale
		a.iters = 3
	case ScalePaper:
		a.numF1 = 1 << 15 // SPEC reference-class F1 layer
		a.iters = 10      // "we measure 10 invocations of trainmatch"
	}
	return a
}

func (a *art) Name() string {
	if a.orig {
		return "art-orig"
	}
	return "art"
}

func (a *art) Setup(sys *core.System) {
	a.cores = sys.Cores()
	n := a.numF1
	alloc := func() []float64 { return make([]float64, n) }
	a.i, a.w, a.x, a.v, a.u, a.pp, a.q, a.r =
		alloc(), alloc(), alloc(), alloc(), alloc(), alloc(), alloc(), alloc()
	rg := newRNG(0xA27)
	for k := 0; k < n; k++ {
		a.i[k] = rg.float01()
	}
	a.tds = make([][]float64, a.numF2)
	a.tds0 = make([][]float64, a.numF2)
	for j := range a.tds {
		a.tds[j] = alloc()
		for k := range a.tds[j] {
			a.tds[j][k] = rg.float01() * 0.1
		}
		a.tds0[j] = append([]float64(nil), a.tds[j]...)
	}
	as := sys.AddressSpace()
	a.aosR = as.Alloc("art.f1aos", uint64(n*artStructBytes))
	for f := 0; f < artFields; f++ {
		a.soaR = append(a.soaR, as.AllocArray(fmt.Sprintf("art.f%d", f), n, 8))
	}
	a.tdsR = as.Alloc("art.tds", uint64(a.numF2*n*8))
	a.tempR = as.AllocArray("art.temp", n, 8)
	a.barrier = syncprim.NewBarrier("art.bar", a.cores)
	a.redLock = syncprim.NewLock("art.red")
	a.partial = make([]float64, a.cores)
	a.resonate = make([]float64, a.numF2)
}

// fieldAddr returns the simulated address of field f of neuron k under
// the active layout.
func (a *art) fieldAddr(f, k int) mem.Addr {
	if a.orig {
		return a.aosR.At(uint64(k*artStructBytes + f*8))
	}
	return a.soaR[f].Index(k, 8)
}

// loadField charges the loads for reading field f over [lo, hi).
func (a *art) loadField(p *cpu.Proc, sm *stream.Mem, f, lo, hi int) {
	n := hi - lo
	if sm != nil {
		// Sequential SoA DMA; the strIn helper double-buffers it.
		in := newStrIn(p, sm, a.fieldAddr(f, lo), 8, n, 1024)
		in.consume(n)
		return
	}
	if a.orig {
		// One access per struct: a new line every 64 bytes.
		for k := lo; k < hi; k++ {
			p.Load(a.fieldAddr(f, k))
		}
		return
	}
	p.LoadN(a.fieldAddr(f, lo), 8, uint64(n))
}

// storeField charges the stores for writing field f over [lo, hi).
func (a *art) storeField(p *cpu.Proc, sm *stream.Mem, f, lo, hi int) {
	n := hi - lo
	if sm != nil {
		out := newStrOut(p, sm, a.fieldAddr(f, lo), 8, 1024)
		out.produce(n)
		out.flush()
		return
	}
	if a.orig {
		for k := lo; k < hi; k++ {
			p.Store(a.fieldAddr(f, k))
		}
		return
	}
	p.StoreN(a.fieldAddr(f, lo), 8, uint64(n))
}

// reduce combines per-core partial sums; core 0 publishes the result.
func (a *art) reduce(p *cpu.Proc, val float64) float64 {
	a.redLock.Acquire(p)
	a.partial[p.ID()] = val
	a.redLock.Release(p)
	a.barrier.Wait(p)
	if p.ID() == 0 {
		s := 0.0
		for _, v := range a.partial {
			s += v
		}
		p.Work(uint64(2 * a.cores))
		a.norm = s
	}
	a.barrier.Wait(p)
	return a.norm
}

func (a *art) Run(p *cpu.Proc) {
	sm, _ := streamMem(p)
	lo, hi := span(a.numF1, a.cores, p.ID())
	n := hi - lo
	for it := 0; it < a.iters; it++ {
		// Pass 1: norm of I (reduction).
		a.loadField(p, sm, 0, lo, hi)
		s := 0.0
		for k := lo; k < hi; k++ {
			s += a.i[k] * a.i[k]
		}
		p.Work(uint64(2 * n))
		normI := math.Sqrt(a.reduce(p, s)) + 1e-9

		if a.orig {
			// Original code: one field-at-a-time pass per vector op,
			// each striding through the 64-byte neuron structs, with a
			// large temporary vector written and re-read in between.
			a.loadField(p, sm, 0, lo, hi) // I
			for k := lo; k < hi; k++ {
				a.x[k] = a.i[k] / normI
			}
			p.Work(uint64(n))
			a.storeField(p, sm, 2, lo, hi) // X
			a.barrier.Wait(p)

			a.loadField(p, sm, 2, lo, hi) // X
			p.StoreN(a.tempR.Index(lo, 8), 8, uint64(n))
			p.Work(uint64(n))
			a.barrier.Wait(p)

			p.LoadN(a.tempR.Index(lo, 8), 8, uint64(n))
			a.loadField(p, sm, 4, lo, hi) // U
			for k := lo; k < hi; k++ {
				a.v[k] = a.x[k] + 0.5*a.u[k]
			}
			p.Work(uint64(n))
			a.storeField(p, sm, 3, lo, hi) // V
			a.barrier.Wait(p)

			a.loadField(p, sm, 3, lo, hi) // V
			a.loadField(p, sm, 4, lo, hi) // U
			for k := lo; k < hi; k++ {
				a.pp[k] = a.u[k] + a.v[k]
			}
			p.Work(uint64(n))
			a.storeField(p, sm, 5, lo, hi) // P
			a.barrier.Wait(p)

			// Q = P / |P| needs another reduction pass over P.
			a.loadField(p, sm, 5, lo, hi)
			sq := 0.0
			for k := lo; k < hi; k++ {
				sq += a.pp[k] * a.pp[k]
			}
			p.Work(uint64(2 * n))
			normP := math.Sqrt(a.reduce(p, sq)) + 1e-9
			a.loadField(p, sm, 5, lo, hi)
			for k := lo; k < hi; k++ {
				a.q[k] = a.pp[k] / normP
			}
			p.Work(uint64(n))
			a.storeField(p, sm, 6, lo, hi) // Q
			a.barrier.Wait(p)

			a.loadField(p, sm, 5, lo, hi) // P
			a.loadField(p, sm, 0, lo, hi) // I
			for k := lo; k < hi; k++ {
				a.r[k] = (a.i[k] + 0.3*a.pp[k]) / (normI + 0.3*normP)
			}
			p.Work(uint64(2 * n))
			a.storeField(p, sm, 7, lo, hi) // R
		} else {
			// Stream-optimized: one fused pass over contiguous fields,
			// temps in registers ("we were able to replace several
			// large temporary vectors with scalar values by merging
			// several loops").
			a.loadField(p, sm, 0, lo, hi) // I
			a.loadField(p, sm, 4, lo, hi) // U
			sq := 0.0
			for k := lo; k < hi; k++ {
				a.x[k] = a.i[k] / normI
				a.v[k] = a.x[k] + 0.5*a.u[k]
				a.pp[k] = a.u[k] + a.v[k]
				sq += a.pp[k] * a.pp[k]
			}
			p.Work(uint64(5 * n))
			a.storeField(p, sm, 5, lo, hi) // P (needed by resonance)
			normP := math.Sqrt(a.reduce(p, sq)) + 1e-9
			for k := lo; k < hi; k++ {
				a.q[k] = a.pp[k] / normP
				a.r[k] = (a.i[k] + 0.3*a.pp[k]) / (normI + 0.3*normP)
			}
			p.Work(uint64(3 * n))
			a.storeField(p, sm, 6, lo, hi) // Q
			a.storeField(p, sm, 7, lo, hi) // R
		}
		a.barrier.Wait(p)

		// Resonance: y[j] = sum_i P[i] * tds[j][i], reduced across
		// cores, then the winner's weights adapt.
		for j := 0; j < a.numF2; j++ {
			s := 0.0
			for k := lo; k < hi; k++ {
				s += a.pp[k] * a.tds[j][k]
			}
			// tds row slice for this core's span.
			rowBase := a.tdsR.At(uint64(j*a.numF1*8) + uint64(lo*8))
			if sm != nil {
				in := newStrIn(p, sm, rowBase, 8, n, 1024)
				in.consume(n)
			} else {
				p.LoadN(rowBase, 8, uint64(n))
			}
			p.Work(uint64(6 * n)) // double-precision MAC + index math

			a.redLock.Acquire(p)
			a.resonate[j] += s
			a.redLock.Release(p)
		}
		a.barrier.Wait(p)
		winner := 0
		if p.ID() == 0 {
			for j := 1; j < a.numF2; j++ {
				if a.resonate[j] > a.resonate[winner] {
					winner = j
				}
			}
			a.winners = append(a.winners, winner)
			p.Work(uint64(2 * a.numF2))
		}
		a.barrier.Wait(p)
		winner = a.winners[len(a.winners)-1]
		// Weight update for the winner row (parallel over F1).
		for k := lo; k < hi; k++ {
			a.tds[winner][k] += 0.05 * (a.pp[k] - a.tds[winner][k])
		}
		rowBase := a.tdsR.At(uint64(winner*a.numF1*8) + uint64(lo*8))
		if sm != nil {
			in := newStrIn(p, sm, rowBase, 8, n, 1024)
			in.consume(n)
			out := newStrOut(p, sm, rowBase, 8, 1024)
			out.produce(n)
			out.flush()
		} else {
			p.LoadN(rowBase, 8, uint64(n))
			p.StoreN(rowBase, 8, uint64(n))
		}
		p.Work(uint64(3 * n))
		if p.ID() == 0 {
			for j := range a.resonate {
				a.resonate[j] = 0
			}
		}
		a.barrier.Wait(p)
	}
}

func (a *art) Verify() error {
	if len(a.winners) != a.iters {
		return fmt.Errorf("art: %d winners recorded, want %d", len(a.winners), a.iters)
	}
	// Sequential reference from the saved initial weights. Reduction
	// order differs from the parallel run, so compare with tolerance.
	n := a.numF1
	tds := make([][]float64, a.numF2)
	for j := range tds {
		tds[j] = append([]float64(nil), a.tds0[j]...)
	}
	normI := 0.0
	for k := 0; k < n; k++ {
		normI += a.i[k] * a.i[k]
	}
	normI = math.Sqrt(normI) + 1e-9
	x := make([]float64, n)
	v := make([]float64, n)
	pp := make([]float64, n)
	for k := 0; k < n; k++ {
		x[k] = a.i[k] / normI
		v[k] = x[k] + 0.5*a.u[k] // u stays zero throughout
		pp[k] = a.u[k] + v[k]
	}
	for it := 0; it < a.iters; it++ {
		winner := 0
		best := math.Inf(-1)
		for j := 0; j < a.numF2; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += pp[k] * tds[j][k]
			}
			if s > best {
				best, winner = s, j
			}
		}
		if a.winners[it] != winner {
			return fmt.Errorf("art: iteration %d winner = %d, want %d", it, a.winners[it], winner)
		}
		for k := 0; k < n; k++ {
			tds[winner][k] += 0.05 * (pp[k] - tds[winner][k])
		}
	}
	var got, want float64
	for j := 0; j < a.numF2; j++ {
		for k := 0; k < n; k++ {
			got += a.tds[j][k]
			want += tds[j][k]
		}
	}
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		return fmt.Errorf("art: weight checksum %v, want %v", got, want)
	}
	return nil
}

package workload

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stream"
	"repro/internal/syncprim"
)

func init() {
	Register("bitonicsort", func(s Scale) core.Workload { return newBitonic(s) })
}

// bitonic sorts 32-bit keys with a bitonic network, operating on the
// list in situ ("BitonicSort operates on the list in situ ... retains
// full parallelism for its duration"). The defining behavior (Section
// 5.1): compare-exchanges often do not swap, so the cache-based system
// writes back only the lines it actually dirtied, while the streaming
// system DMA-writes every block back whether modified or not — giving
// STR more off-chip traffic and the CC version the edge at high core
// counts.
type bitonic struct {
	n       int
	keys    []uint32
	data    []uint32
	dataR   mem.Region
	cores   int
	barrier *syncprim.Barrier
}

func newBitonic(s Scale) *bitonic {
	n := 1 << 17
	switch s {
	case ScaleSmall:
		n = 1 << 13
	case ScalePaper:
		n = 1 << 19 // the paper's 2^19 keys (2 MB)
	}
	return &bitonic{n: n}
}

func (bt *bitonic) Name() string { return "bitonicsort" }

func (bt *bitonic) Setup(sys *core.System) {
	bt.cores = sys.Cores()
	bt.keys = make([]uint32, bt.n)
	r := newRNG(0xB170)
	for i := range bt.keys {
		// Moderately in-order input: a rising ramp with local noise, so
		// that long-distance compare-exchanges rarely swap while local
		// ones do ("it is often the case that sublists are moderately
		// in-order and elements don't need to be swapped").
		bt.keys[i] = uint32(i)<<6 + uint32(r.next()&0x3FFF)
	}
	bt.data = make([]uint32, bt.n)
	copy(bt.data, bt.keys)
	bt.dataR = sys.AddressSpace().AllocArray("bitonic.data", bt.n, 4)
	bt.barrier = syncprim.NewBarrier("bitonic.bar", bt.cores)
}

// bitonicWorkPerPair is the compare-exchange issue cost.
const bitonicWorkPerPair = 4

func (bt *bitonic) Run(p *cpu.Proc) {
	sm, isSTR := streamMem(p)
	for k := 2; k <= bt.n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			// The N/2 pair indices are split evenly across cores.
			lo, hi := span(bt.n/2, bt.cores, p.ID())
			if isSTR {
				bt.stageSTR(p, sm, k, j, lo, hi)
			} else {
				bt.stageCC(p, k, j, lo, hi)
			}
			bt.barrier.Wait(p)
		}
	}
}

// pairIndex maps pair p to its lower element index for distance j.
func pairIndex(pi, j int) int { return (pi/j)*(2*j) + pi%j }

// exchange performs the compare-exchange for element i and partner i+j
// within the k-block ordering, reporting whether it swapped.
func (bt *bitonic) exchange(i, j, k int) bool {
	a, b := bt.data[i], bt.data[i+j]
	up := i&k == 0
	if (a > b) == up {
		bt.data[i], bt.data[i+j] = b, a
		return true
	}
	return false
}

// stageCC processes pairs [lo, hi) for stage (k, j) through the caches.
// It loads both sides and stores back only the cache lines that an
// actual swap dirtied.
func (bt *bitonic) stageCC(p *cpu.Proc, k, j, lo, hi int) {
	const lineElems = mem.LineSize / 4
	for pi := lo; pi < hi; {
		// Process one contiguous run of pair indices within a segment.
		i0 := pairIndex(pi, j)
		segLeft := j - pi%j
		n := min(segLeft, hi-pi)
		// Fetch both sides (for j < lineElems the ranges overlap within
		// lines; the second LoadN then hits in the L1).
		p.LoadN(bt.dataR.Index(i0, 4), 4, uint64(n))
		p.LoadN(bt.dataR.Index(i0+j, 4), 4, uint64(n))
		var dirtyLo, dirtyHi uint64 // swapped-line bitmaps via counters
		var lineDirtyA, lineDirtyB bool
		for t := 0; t < n; t++ {
			i := i0 + t
			sw := bt.exchange(i, j, k)
			if sw {
				lineDirtyA, lineDirtyB = true, true
			}
			if (i+1)%lineElems == 0 || t == n-1 {
				if lineDirtyA {
					p.Store(bt.dataR.Index(i, 4)) // dirty the lower line
					dirtyLo++
					lineDirtyA = false
				}
				if lineDirtyB {
					p.Store(bt.dataR.Index(i+j, 4)) // dirty the upper line
					dirtyHi++
					lineDirtyB = false
				}
			}
		}
		p.Work(uint64(n) * bitonicWorkPerPair)
		pi += n
	}
}

// stageSTR processes pairs [lo, hi) with DMA: both sides are fetched and
// written back in full blocks, modified or not ("the streaming memory
// system writes the unmodified data back to main memory anyway").
// Segments are double-buffered: the next pair of gets is in flight while
// the current segment computes.
func (bt *bitonic) stageSTR(p *cpu.Proc, sm *stream.Mem, k, j, lo, hi int) {
	const maxBlock = 1024 // elements per DMA buffer per side
	if j <= maxBlock {
		bt.stageSTRContig(p, sm, k, j, lo, hi)
		return
	}
	type seg struct{ i0, n int }
	var segs []seg
	for pi := lo; pi < hi; {
		i0 := pairIndex(pi, j)
		n := min(min(j-pi%j, hi-pi), maxBlock)
		segs = append(segs, seg{i0, n})
		pi += n
	}
	getSeg := func(s seg) [2]dmaTag {
		return [2]dmaTag{
			sm.Get(p, bt.dataR.Index(s.i0, 4), uint64(s.n)*4),
			sm.Get(p, bt.dataR.Index(s.i0+j, 4), uint64(s.n)*4),
		}
	}
	gets := getSeg(segs[0])
	var puts []dmaTag
	for si, s := range segs {
		cur := gets
		if si+1 < len(segs) {
			gets = getSeg(segs[si+1])
		}
		sm.Wait(p, cur[0])
		sm.Wait(p, cur[1])
		for t := 0; t < s.n; t++ {
			bt.exchange(s.i0+t, j, k)
		}
		sm.LSLoadN(p, uint64(2*s.n))
		p.Work(uint64(s.n) * bitonicWorkPerPair)
		sm.LSStoreN(p, uint64(2*s.n))
		for len(puts) > 2 {
			sm.Wait(p, puts[0])
			puts = puts[1:]
		}
		puts = append(puts,
			sm.Put(p, bt.dataR.Index(s.i0, 4), uint64(s.n)*4),
			sm.Put(p, bt.dataR.Index(s.i0+j, 4), uint64(s.n)*4))
	}
	for _, t := range puts {
		sm.Wait(p, t)
	}
}

// stageSTRContig handles small exchange distances: whole segments are
// contiguous in memory, so the local store holds 2*maxBlock-element
// chunks covering many segments, fetched and written back as single
// sequential transfers (the blocking a streaming programmer would use).
func (bt *bitonic) stageSTRContig(p *cpu.Proc, sm *stream.Mem, k, j, lo, hi int) {
	const chunkPairs = 1024 // pairs per chunk = 2048 elements = 8 KB
	type chunk struct{ p0, n int }
	var chunks []chunk
	for pi := lo; pi < hi; {
		n := min(chunkPairs, hi-pi)
		chunks = append(chunks, chunk{pi, n})
		pi += n
	}
	get := func(c chunk) dmaTag {
		i0 := pairIndex(c.p0, j)
		return sm.Get(p, bt.dataR.Index(i0, 4), uint64(2*c.n)*4)
	}
	gets := get(chunks[0])
	var puts []dmaTag
	for ci, c := range chunks {
		cur := gets
		if ci+1 < len(chunks) {
			gets = get(chunks[ci+1])
		}
		sm.Wait(p, cur)
		for t := 0; t < c.n; t++ {
			bt.exchange(pairIndex(c.p0+t, j), j, k)
		}
		sm.LSLoadN(p, uint64(2*c.n))
		p.Work(uint64(c.n) * bitonicWorkPerPair)
		sm.LSStoreN(p, uint64(2*c.n))
		for len(puts) > 1 {
			sm.Wait(p, puts[0])
			puts = puts[1:]
		}
		i0 := pairIndex(c.p0, j)
		puts = append(puts, sm.Put(p, bt.dataR.Index(i0, 4), uint64(2*c.n)*4))
	}
	for _, t := range puts {
		sm.Wait(p, t)
	}
}

func (bt *bitonic) Verify() error {
	want := make([]uint32, bt.n)
	copy(want, bt.keys)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if bt.data[i] != want[i] {
			return fmt.Errorf("bitonicsort: data[%d] = %d, want %d", i, bt.data[i], want[i])
		}
	}
	return nil
}

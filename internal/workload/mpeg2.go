package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dma"
	"repro/internal/mem"
	"repro/internal/stream"
	"repro/internal/syncprim"
)

func init() {
	Register("mpeg2", func(s Scale) core.Workload { return newMpeg2(s, mpegFused) })
	// Section 6 / Figure 9: the original parallel code runs each kernel
	// over a whole frame before the next is invoked, with frame-sized
	// temporaries in between.
	Register("mpeg2-orig", func(s Scale) core.Workload { return newMpeg2(s, mpegOrig) })
	// Section 5.5 / Figure 8: fused version with Prepare-For-Store
	// output.
	Register("mpeg2-pfs", func(s Scale) core.Workload { return newMpeg2(s, mpegPFS) })
}

type mpegVariant int

const (
	mpegFused mpegVariant = iota // stream-programmed: all kernels per macroblock
	mpegOrig                     // kernel-per-frame passes with temporaries
	mpegPFS                      // fused + non-allocating output stores
)

const (
	mbSize    = 16
	meRange   = 7    // +/- motion search range
	mbOutSlot = 1024 // reserved output bytes per macroblock
)

// mpeg2 is the MPEG-2 encoder: macroblock motion estimation against the
// previous frame (three-step search), residual DCT, quantization and
// run-length coding. Macroblocks are dynamically assigned from a task
// queue; they are entirely data-parallel within a frame (Section 4.2).
type mpeg2 struct {
	variant mpegVariant
	frames  int
	w, h    int
	mbW     int
	mbH     int

	pix [][]byte // per frame luma

	// Per frame per macroblock outputs.
	mvX, mvY [][]int8
	out      [][][]byte

	// Frame-sized temporaries for the unfused original code.
	resid []int32 // residual pixels
	coefT []int32 // DCT coefficients

	pixR    []mem.Region
	outR    []mem.Region
	residR  mem.Region
	coefR   mem.Region
	cores   int
	wq      *syncprim.TaskQueue
	barrier *syncprim.Barrier
}

func newMpeg2(s Scale, v mpegVariant) *mpeg2 {
	m := &mpeg2{variant: v, frames: 4, w: 176, h: 144}
	switch s {
	case ScaleSmall:
		m.frames, m.w, m.h = 2, 96, 80
	case ScalePaper:
		m.frames, m.w, m.h = 10, 352, 288 // "10 CIF frames"
	}
	m.mbW, m.mbH = m.w/mbSize, m.h/mbSize
	return m
}

func (m *mpeg2) Name() string {
	switch m.variant {
	case mpegOrig:
		return "mpeg2-orig"
	case mpegPFS:
		return "mpeg2-pfs"
	}
	return "mpeg2"
}

func (m *mpeg2) Setup(sys *core.System) {
	m.cores = sys.Cores()
	rg := newRNG(0x3E62)
	as := sys.AddressSpace()
	for f := 0; f < m.frames; f++ {
		pix := make([]byte, m.w*m.h)
		for y := 0; y < m.h; y++ {
			for x := 0; x < m.w; x++ {
				// A pattern moving 2 px right / 1 px down per frame,
				// with static noise.
				sx, sy := x+2*f, y+f
				pix[y*m.w+x] = byte(23*(sx/4)+31*(sy/4)) ^ rg.byte()&0x07
			}
		}
		m.pix = append(m.pix, pix)
		m.pixR = append(m.pixR, as.Alloc(fmt.Sprintf("mpeg2.f%d", f), uint64(m.w*m.h)))
		m.outR = append(m.outR, as.Alloc(fmt.Sprintf("mpeg2.out%d", f), uint64(m.mbW*m.mbH*mbOutSlot)))
		m.mvX = append(m.mvX, make([]int8, m.mbW*m.mbH))
		m.mvY = append(m.mvY, make([]int8, m.mbW*m.mbH))
		m.out = append(m.out, make([][]byte, m.mbW*m.mbH))
	}
	m.resid = make([]int32, m.w*m.h)
	m.coefT = make([]int32, m.w*m.h)
	m.residR = as.AllocArray("mpeg2.resid", m.w*m.h, 4)
	m.coefR = as.AllocArray("mpeg2.coef", m.w*m.h, 4)
	m.wq = syncprim.NewTaskQueue("mpeg2.mbs", 0)
	m.barrier = syncprim.NewBarrier("mpeg2.bar", m.cores)

	// MPEG-2's code footprint exceeds the 16 KB I-cache ("MPEG-2
	// suffers a moderate number of instruction cache misses due the
	// cache's limited size"); the fused loop body is bigger, so the
	// stream-optimized code misses more (Figure 9 discussion).
	if m.variant == mpegOrig {
		sys.SetICacheProfile(5000)
	} else {
		sys.SetICacheProfile(2500)
	}
}

// sad16 computes the 16x16 sum of absolute differences between the
// macroblock at (x,y) in cur and the block at (x+dx, y+dy) in ref.
func (m *mpeg2) sad16(cur, ref []byte, x, y, dx, dy int) int {
	rx, ry := x+dx, y+dy
	if rx < 0 || ry < 0 || rx+mbSize > m.w || ry+mbSize > m.h {
		return 1 << 30
	}
	s := 0
	for j := 0; j < mbSize; j++ {
		co := (y+j)*m.w + x
		ro := (ry+j)*m.w + rx
		for i := 0; i < mbSize; i++ {
			d := int(cur[co+i]) - int(ref[ro+i])
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

// motionSearch runs a three-step search and returns the best vector and
// the number of SADs evaluated.
func (m *mpeg2) motionSearch(cur, ref []byte, x, y int) (bx, by, sads int) {
	bestSAD := m.sad16(cur, ref, x, y, 0, 0)
	sads = 1
	step := 4
	for step >= 1 {
		improved := true
		for improved {
			improved = false
			for _, d := range [8][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
				dx, dy := bx+d[0]*step, by+d[1]*step
				if dx < -meRange || dx > meRange || dy < -meRange || dy > meRange {
					continue
				}
				s := m.sad16(cur, ref, x, y, dx, dy)
				sads++
				if s < bestSAD {
					bestSAD, bx, by = s, dx, dy
					improved = true
				}
			}
		}
		step /= 2
	}
	return bx, by, sads
}

// residualMB computes the prediction residual of one macroblock into a
// 16x16 buffer (intra blocks subtract 128).
func (m *mpeg2) residualMB(f, mbx, mby, dx, dy int, dst []int32) {
	cur := m.pix[f]
	x, y := mbx*mbSize, mby*mbSize
	if f == 0 {
		for j := 0; j < mbSize; j++ {
			for i := 0; i < mbSize; i++ {
				dst[j*mbSize+i] = int32(cur[(y+j)*m.w+x+i]) - 128
			}
		}
		return
	}
	ref := m.pix[f-1]
	for j := 0; j < mbSize; j++ {
		for i := 0; i < mbSize; i++ {
			dst[j*mbSize+i] = int32(cur[(y+j)*m.w+x+i]) - int32(ref[(y+dy+j)*m.w+x+dx+i])
		}
	}
}

// codeMB transforms and entropy-codes a 16x16 residual into bytes.
func codeMB(res []int32) []byte {
	var out []byte
	var blk, coef [64]int32
	for b := 0; b < 4; b++ {
		ox, oy := (b%2)*8, (b/2)*8
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				blk[y*8+x] = res[(oy+y)*mbSize+ox+x]
			}
		}
		fdct8(&blk, &coef)
		quantize(&coef, &jpegQuant)
		out = rleEncode(&coef, out)
	}
	return out
}

// encodeMB runs the full fused pipeline for one macroblock, returning
// the SAD count for instruction accounting.
func (m *mpeg2) encodeMB(f, mb int, res []int32) int {
	mbx, mby := mb%m.mbW, mb/m.mbW
	sads := 0
	dx, dy := 0, 0
	if f > 0 {
		dx, dy, sads = m.motionSearch(m.pix[f], m.pix[f-1], mbx*mbSize, mby*mbSize)
	}
	m.mvX[f][mb], m.mvY[f][mb] = int8(dx), int8(dy)
	m.residualMB(f, mbx, mby, dx, dy, res)
	m.out[f][mb] = codeMB(res)
	return sads
}

// Work constants: a 16x16 SAD is 256 absolute differences at 2 per
// cycle; the residual is 256 subtractions.
const (
	workSAD16  = 140
	workResid  = 160
	workMBMisc = 80
)

// issueMBInput queues the strided DMA gets for one macroblock's current
// pixels and (for P frames) its reference window, without waiting —
// the caller overlaps them with the previous macroblock's computation
// (double-buffering).
func (m *mpeg2) issueMBInput(p *cpu.Proc, sm *stream.Mem, f, mbx, mby int) []dma.Tag {
	x, y := mbx*mbSize, mby*mbSize
	tags := []dma.Tag{
		sm.GetStrided(p, m.pixR[f].At(uint64(y*m.w+x)), mbSize, uint64(m.w), mbSize),
	}
	if f > 0 {
		wx, wy := max(0, x-meRange), max(0, y-meRange)
		ww := min(x+mbSize+meRange, m.w) - wx
		wh := min(y+mbSize+meRange, m.h) - wy
		tags = append(tags, sm.GetStrided(p, m.pixR[f-1].At(uint64(wy*m.w+wx)), uint64(ww), uint64(m.w), uint64(wh)))
	}
	return tags
}

// chargeMBInput charges the loads for one macroblock's current pixels
// and (for P frames) its reference window (cache-based path).
func (m *mpeg2) chargeMBInput(p *cpu.Proc, sm *stream.Mem, f, mbx, mby int) {
	x, y := mbx*mbSize, mby*mbSize
	if sm != nil {
		panic("mpeg2: streaming path uses issueMBInput")
	}
	for j := 0; j < mbSize; j++ {
		p.LoadN(m.pixR[f].At(uint64((y+j)*m.w+x)), 4, mbSize/4)
	}
	if f > 0 {
		wx, wy := max(0, x-meRange), max(0, y-meRange)
		wEnd := min(x+mbSize+meRange, m.w)
		hEnd := min(y+mbSize+meRange, m.h)
		for j := wy; j < hEnd; j++ {
			p.LoadN(m.pixR[f-1].At(uint64(j*m.w+wx)), 4, uint64(wEnd-wx+3)/4)
		}
	}
}

func (m *mpeg2) Run(p *cpu.Proc) {
	sm, isSTR := streamMem(p)
	res := make([]int32, mbSize*mbSize)
	nMB := m.mbW * m.mbH
	for f := 0; f < m.frames; f++ {
		if m.variant == mpegOrig && !isSTR {
			m.runFrameOrig(p, f, res)
			continue
		}
		// Fused: one task-queue pass over the frame's macroblocks (the
		// streaming version strip-mines half-rows of macroblocks so
		// that overlapping search windows are fetched once).
		if p.ID() == 0 {
			if isSTR {
				m.wq.Reset(m.strSplits() * m.mbH)
			} else {
				m.wq.Reset(nMB)
			}
		}
		m.barrier.Wait(p)
		if isSTR {
			m.runFrameSTR(p, sm, f, res)
		} else {
			for {
				mb := m.wq.Next(p)
				if mb < 0 {
					break
				}
				mbx, mby := mb%m.mbW, mb/m.mbW
				m.chargeMBInput(p, nil, f, mbx, mby)
				sads := m.encodeMB(f, mb, res)
				p.Work(uint64(sads*workSAD16 + workResid + 4*(workFDCT+workQuant+workRLE) + workMBMisc))
				n := uint64(len(m.out[f][mb]))
				if m.variant == mpegPFS {
					p.StorePFSN(m.outR[f].At(uint64(mb*mbOutSlot)), 4, (n+3)/4)
				} else {
					p.StoreN(m.outR[f].At(uint64(mb*mbOutSlot)), 4, (n+3)/4)
				}
			}
		}
		m.barrier.Wait(p)
	}
}

// strSplits returns how many strip tasks each macroblock row is divided
// into for the streaming pass: enough that the task queue keeps all
// cores busy (~2 tasks per core), at least two macroblocks per strip so
// overlapping search windows are still fetched once, and narrow enough
// that two tasks' strips fit the 24 KB local store at CIF width.
func (m *mpeg2) strSplits() int {
	splits := (2*m.cores + m.mbH - 1) / m.mbH
	if splits < 2 {
		splits = 2
	}
	if max := m.mbW / 2; splits > max {
		splits = max
	}
	if splits < 1 {
		splits = 1
	}
	return splits
}

// runFrameSTR is the streaming fused pass, strip-mined: a task is a
// fraction of a macroblock row; its current-frame strip and
// reference-window strip are fetched with two wide strided transfers
// (so overlapping search windows within the strip are fetched exactly
// once), and the next task's strips stream in while the current one
// computes — software double-buffering, the paper's macroscopic
// prefetching.
func (m *mpeg2) runFrameSTR(p *cpu.Proc, sm *stream.Mem, f int, res []int32) {
	splits := m.strSplits()
	issueStrips := func(task int) []dma.Tag {
		row, half := task/splits, task%splits
		x0, x1 := span(m.mbW, splits, half)
		px0, px1 := x0*mbSize, x1*mbSize
		y := row * mbSize
		// Extend by the search range for the reference strip.
		wx := max(0, px0-meRange)
		wEnd := min(px1+meRange, m.w)
		tags := []dma.Tag{
			sm.GetStrided(p, m.pixR[f].At(uint64(y*m.w+px0)), uint64(px1-px0), uint64(m.w), mbSize),
		}
		if f > 0 {
			wy := max(0, y-meRange)
			wh := min(y+mbSize+meRange, m.h) - wy
			tags = append(tags, sm.GetStrided(p, m.pixR[f-1].At(uint64(wy*m.w+wx)), uint64(wEnd-wx), uint64(m.w), uint64(wh)))
		}
		return tags
	}
	cur := m.wq.Next(p)
	if cur < 0 {
		return
	}
	curTags := issueStrips(cur)
	var puts []dma.Tag
	for cur >= 0 {
		next := m.wq.Next(p)
		var nextTags []dma.Tag
		if next >= 0 {
			nextTags = issueStrips(next)
		}
		for _, tg := range curTags {
			sm.Wait(p, tg)
		}
		row, half := cur/splits, cur%splits
		x0, x1 := span(m.mbW, splits, half)
		for mbx := x0; mbx < x1; mbx++ {
			mb := row*m.mbW + mbx
			sm.LSLoadN(p, mbSize*mbSize/4)
			sads := m.encodeMB(f, mb, res)
			p.Work(uint64(sads*workSAD16 + workResid + 4*(workFDCT+workQuant+workRLE) + workMBMisc))
			n := uint64(len(m.out[f][mb]))
			sm.LSStoreN(p, (n+3)/4)
			for len(puts) > 2 {
				sm.Wait(p, puts[0])
				puts = puts[1:]
			}
			puts = append(puts, sm.Put(p, m.outR[f].At(uint64(mb*mbOutSlot)), n))
		}
		cur, curTags = next, nextTags
	}
	for _, tg := range puts {
		sm.Wait(p, tg)
	}
}

// runFrameOrig is the original kernel-per-frame structure: motion
// estimation over the whole frame writing a frame-sized residual
// temporary, then a DCT pass writing a coefficient temporary, then
// quantization + coding — with barriers and temporary traffic between.
func (m *mpeg2) runFrameOrig(p *cpu.Proc, f int, res []int32) {
	nMB := m.mbW * m.mbH
	// Pass 1: motion estimation + residual into m.resid.
	if p.ID() == 0 {
		m.wq.Reset(nMB)
	}
	m.barrier.Wait(p)
	for {
		mb := m.wq.Next(p)
		if mb < 0 {
			break
		}
		mbx, mby := mb%m.mbW, mb/m.mbW
		m.chargeMBInput(p, nil, f, mbx, mby)
		sads := 0
		dx, dy := 0, 0
		if f > 0 {
			dx, dy, sads = m.motionSearch(m.pix[f], m.pix[f-1], mbx*mbSize, mby*mbSize)
		}
		m.mvX[f][mb], m.mvY[f][mb] = int8(dx), int8(dy)
		m.residualMB(f, mbx, mby, dx, dy, res)
		for j := 0; j < mbSize; j++ {
			copy(m.resid[((mby*mbSize+j)*m.w+mbx*mbSize):], res[j*mbSize:(j+1)*mbSize])
		}
		p.Work(uint64(sads*workSAD16 + workResid + workMBMisc))
		// Residual temporary written to memory.
		for j := 0; j < mbSize; j++ {
			p.StoreN(m.residR.Index((mby*mbSize+j)*m.w+mbx*mbSize, 4), 4, mbSize)
		}
	}
	m.barrier.Wait(p)

	// Pass 2: DCT of the residual temporary into the coefficient
	// temporary.
	if p.ID() == 0 {
		m.wq.Reset(nMB)
	}
	m.barrier.Wait(p)
	var blk, coef [64]int32
	for {
		mb := m.wq.Next(p)
		if mb < 0 {
			break
		}
		mbx, mby := mb%m.mbW, mb/m.mbW
		for j := 0; j < mbSize; j++ {
			p.LoadN(m.residR.Index((mby*mbSize+j)*m.w+mbx*mbSize, 4), 4, mbSize)
		}
		for b := 0; b < 4; b++ {
			ox, oy := (b%2)*8, (b/2)*8
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = m.resid[(mby*mbSize+oy+y)*m.w+mbx*mbSize+ox+x]
				}
			}
			fdct8(&blk, &coef)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					m.coefT[(mby*mbSize+oy+y)*m.w+mbx*mbSize+ox+x] = coef[y*8+x]
				}
			}
		}
		p.Work(uint64(4 * workFDCT))
		for j := 0; j < mbSize; j++ {
			p.StoreN(m.coefR.Index((mby*mbSize+j)*m.w+mbx*mbSize, 4), 4, mbSize)
		}
	}
	m.barrier.Wait(p)

	// Pass 3: quantize + entropy-code from the coefficient temporary.
	if p.ID() == 0 {
		m.wq.Reset(nMB)
	}
	m.barrier.Wait(p)
	for {
		mb := m.wq.Next(p)
		if mb < 0 {
			break
		}
		mbx, mby := mb%m.mbW, mb/m.mbW
		for j := 0; j < mbSize; j++ {
			p.LoadN(m.coefR.Index((mby*mbSize+j)*m.w+mbx*mbSize, 4), 4, mbSize)
		}
		var out []byte
		for b := 0; b < 4; b++ {
			ox, oy := (b%2)*8, (b/2)*8
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					coef[y*8+x] = m.coefT[(mby*mbSize+oy+y)*m.w+mbx*mbSize+ox+x]
				}
			}
			quantize(&coef, &jpegQuant)
			out = rleEncode(&coef, out)
		}
		m.out[f][mb] = out
		p.Work(uint64(4 * (workQuant + workRLE)))
		p.StoreN(m.outR[f].At(uint64(mb*mbOutSlot)), 4, (uint64(len(out))+3)/4)
	}
	m.barrier.Wait(p)
}

func (m *mpeg2) Verify() error {
	res := make([]int32, mbSize*mbSize)
	for f := 0; f < m.frames; f++ {
		for mb := 0; mb < m.mbW*m.mbH; mb++ {
			if m.out[f][mb] == nil {
				return fmt.Errorf("mpeg2: frame %d mb %d never encoded", f, mb)
			}
			mbx, mby := mb%m.mbW, mb/m.mbW
			dx, dy := 0, 0
			if f > 0 {
				dx, dy, _ = m.motionSearch(m.pix[f], m.pix[f-1], mbx*mbSize, mby*mbSize)
			}
			if int8(dx) != m.mvX[f][mb] || int8(dy) != m.mvY[f][mb] {
				return fmt.Errorf("mpeg2: frame %d mb %d mv (%d,%d), want (%d,%d)",
					f, mb, m.mvX[f][mb], m.mvY[f][mb], dx, dy)
			}
			m.residualMB(f, mbx, mby, dx, dy, res)
			want := codeMB(res)
			got := m.out[f][mb]
			if len(got) != len(want) {
				return fmt.Errorf("mpeg2: frame %d mb %d output %d bytes, want %d", f, mb, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					return fmt.Errorf("mpeg2: frame %d mb %d byte %d differs", f, mb, k)
				}
			}
		}
	}
	return nil
}

package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/syncprim"
)

func init() {
	Register("depth", func(s Scale) core.Workload { return newDepth(s) })
}

// depthWin is the SAD matching window and depthRange the disparity
// search range of the stereo matcher.
const (
	depthWin   = 8
	depthRange = 16
	depthBlk   = 32 // "dividing input frames into 32x32 blocks"
)

// depth is Stereo Depth Extraction: block-matching disparity between
// image pairs. It performs an enormous computation per byte fetched
// (Table 3: ~8700 instructions per L1 miss) and is insensitive to every
// memory-system experiment in the paper — the control workload.
type depth struct {
	pairs int
	w, h  int

	left  [][]byte // per pair
	right [][]byte
	disp  [][]byte

	leftR  []mem.Region
	rightR []mem.Region
	dispR  []mem.Region
	cores  int
	wq     *syncprim.TaskQueue
}

func newDepth(s Scale) *depth {
	d := &depth{pairs: 1, w: 176, h: 144}
	switch s {
	case ScaleSmall:
		d.w, d.h = 64, 48
	case ScalePaper:
		d.pairs, d.w, d.h = 3, 352, 288 // "3 CIF image pairs"
	}
	return d
}

func (d *depth) Name() string { return "depth" }

func (d *depth) Setup(sys *core.System) {
	d.cores = sys.Cores()
	rg := newRNG(0xDE72)
	as := sys.AddressSpace()
	for pi := 0; pi < d.pairs; pi++ {
		left := make([]byte, d.w*d.h)
		right := make([]byte, d.w*d.h)
		// Left image: texture; right image: left shifted by a varying
		// true disparity plus noise.
		for y := 0; y < d.h; y++ {
			for x := 0; x < d.w; x++ {
				left[y*d.w+x] = byte(x*3+y*7) ^ rg.byte()&0x1F
			}
		}
		for y := 0; y < d.h; y++ {
			trueD := 2 + (y/16)%8
			for x := 0; x < d.w; x++ {
				sx := x + trueD
				if sx >= d.w {
					sx = d.w - 1
				}
				right[y*d.w+x] = left[y*d.w+sx]
			}
		}
		d.left = append(d.left, left)
		d.right = append(d.right, right)
		d.disp = append(d.disp, make([]byte, d.w*d.h))
		d.leftR = append(d.leftR, as.Alloc(fmt.Sprintf("depth.left%d", pi), uint64(d.w*d.h)))
		d.rightR = append(d.rightR, as.Alloc(fmt.Sprintf("depth.right%d", pi), uint64(d.w*d.h)))
		d.dispR = append(d.dispR, as.Alloc(fmt.Sprintf("depth.disp%d", pi), uint64(d.w*d.h)))
	}
	bw := (d.w + depthBlk - 1) / depthBlk
	bh := (d.h + depthBlk - 1) / depthBlk
	// Static assignment ("statically assigning them to processors") is
	// modeled with a cheap striped dispenser rather than the dynamic
	// lock-based queue: index math below mimics static striping.
	d.wq = syncprim.NewTaskQueue("depth.blocks", d.pairs*bw*bh)
	_ = bw
	_ = bh
}

// matchPixel computes the best disparity for (x, y) by SAD over a
// depthWin x depthWin window.
func (d *depth) matchPixel(pi, x, y int) byte {
	left, right := d.left[pi], d.right[pi]
	bestD, bestSAD := 0, int(^uint(0)>>1)
	for disp := 0; disp < depthRange; disp++ {
		sad := 0
		for wy := 0; wy < depthWin; wy++ {
			yy := min(y+wy, d.h-1)
			for wx := 0; wx < depthWin; wx++ {
				xx := min(x+wx, d.w-1)
				sx := min(xx+disp, d.w-1)
				diff := int(left[yy*d.w+xx]) - int(right[yy*d.w+sx])
				if diff < 0 {
					diff = -diff
				}
				sad += diff
			}
		}
		if sad < bestSAD {
			bestSAD, bestD = sad, disp
		}
	}
	return byte(bestD)
}

// depthWorkPerPixel: 16 disparities x 64 absolute differences, two SAD
// ops per 3-slot instruction, plus min tracking.
const depthWorkPerPixel = depthRange*depthWin*depthWin/2 + 24

func (d *depth) Run(p *cpu.Proc) {
	sm, isSTR := streamMem(p)
	bw := (d.w + depthBlk - 1) / depthBlk
	bh := (d.h + depthBlk - 1) / depthBlk
	total := d.pairs * bw * bh
	// Static striped assignment across cores.
	for task := p.ID(); task < total; task += d.cores {
		pi := task / (bw * bh)
		rem := task % (bw * bh)
		bx, by := rem%bw, rem/bw
		x0, y0 := bx*depthBlk, by*depthBlk
		x1, y1 := min(x0+depthBlk, d.w), min(y0+depthBlk, d.h)

		// Fetch the left block rows and the right rows extended by the
		// search range.
		for y := y0; y < y1; y++ {
			nL := uint64(x1 - x0)
			nR := uint64(min(x1+depthRange+depthWin, d.w) - x0)
			if isSTR {
				g1 := sm.Get(p, d.leftR[pi].At(uint64(y*d.w+x0)), nL)
				g2 := sm.Get(p, d.rightR[pi].At(uint64(y*d.w+x0)), nR)
				sm.Wait(p, g1)
				sm.Wait(p, g2)
			} else {
				p.LoadN(d.leftR[pi].At(uint64(y*d.w+x0)), 4, (nL+3)/4)
				p.LoadN(d.rightR[pi].At(uint64(y*d.w+x0)), 4, (nR+3)/4)
			}
		}
		pixels := uint64((x1 - x0) * (y1 - y0))
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				d.disp[pi][y*d.w+x] = d.matchPixel(pi, x, y)
			}
		}
		if isSTR {
			sm.LSLoadN(p, pixels*2)
			p.Work(pixels * depthWorkPerPixel)
			sm.LSStoreN(p, pixels/4)
			for y := y0; y < y1; y++ {
				put := sm.Put(p, d.dispR[pi].At(uint64(y*d.w+x0)), uint64(x1-x0))
				if y == y1-1 {
					sm.Wait(p, put)
				}
			}
		} else {
			p.Work(pixels * depthWorkPerPixel)
			for y := y0; y < y1; y++ {
				p.StoreN(d.dispR[pi].At(uint64(y*d.w+x0)), 4, uint64(x1-x0+3)/4)
			}
		}
	}
}

func (d *depth) Verify() error {
	for pi := 0; pi < d.pairs; pi++ {
		for y := 0; y < d.h; y += 7 {
			for x := 0; x < d.w; x += 5 {
				want := d.matchPixel(pi, x, y)
				if got := d.disp[pi][y*d.w+x]; got != want {
					return fmt.Errorf("depth: pair %d (%d,%d) = %d, want %d", pi, x, y, got, want)
				}
			}
		}
	}
	return nil
}

package workload

import (
	"testing"

	"repro/internal/core"
)

// runWL builds a system, runs the named workload at small scale, and
// fails the test on verification errors.
func runWL(t *testing.T, name string, model core.Model, cores int, mut func(*core.Config)) *core.Report {
	t.Helper()
	f, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(model, cores)
	if mut != nil {
		mut(&cfg)
	}
	sys := core.New(cfg)
	rep, err := sys.Run(f(ScaleSmall))
	if err != nil {
		t.Fatalf("%s/%v/%d: %v", name, model, cores, err)
	}
	return rep
}

func TestFIRBothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		for _, n := range []int{1, 4} {
			rep := runWL(t, "fir", model, n, nil)
			if rep.Wall == 0 {
				t.Errorf("%v/%d: zero wall", model, n)
			}
		}
	}
}

func TestFIRSTRAvoidsRefills(t *testing.T) {
	cc := runWL(t, "fir", core.CC, 4, nil)
	str := runWL(t, "fir", core.STR, 4, nil)
	// CC reads input + refills the output stream; STR reads input only.
	if cc.DRAM.ReadBytes <= str.DRAM.ReadBytes*3/2 {
		t.Errorf("CC read %d, STR read %d; want refill overhead in CC",
			cc.DRAM.ReadBytes, str.DRAM.ReadBytes)
	}
}

func TestFIRPFSEliminatesRefills(t *testing.T) {
	plain := runWL(t, "fir", core.CC, 4, nil)
	pfs := runWL(t, "fir-pfs", core.CC, 4, nil)
	str := runWL(t, "fir", core.STR, 4, nil)
	if pfs.DRAM.ReadBytes >= plain.DRAM.ReadBytes*3/4 {
		t.Errorf("PFS read %d vs plain %d; want a large reduction",
			pfs.DRAM.ReadBytes, plain.DRAM.ReadBytes)
	}
	// PFS brings CC traffic to rough parity with streaming (Figure 8).
	lo, hi := str.DRAM.ReadBytes*3/4, str.DRAM.ReadBytes*3/2+4096
	if pfs.DRAM.ReadBytes < lo || pfs.DRAM.ReadBytes > hi {
		t.Errorf("PFS reads %d not near STR reads %d", pfs.DRAM.ReadBytes, str.DRAM.ReadBytes)
	}
}

func TestFIRSTRInstructionOverhead(t *testing.T) {
	cc := runWL(t, "fir", core.CC, 2, nil)
	str := runWL(t, "fir", core.STR, 2, nil)
	ratio := float64(str.Instructions) / float64(cc.Instructions)
	// The paper measured 14% more instructions when streaming.
	if ratio < 1.05 || ratio > 1.30 {
		t.Errorf("STR/CC instruction ratio = %.3f, want ~1.14", ratio)
	}
}

// Package workload implements the study's eleven applications (Table 3)
// for both memory models, parallelized exactly as Section 4.2 describes.
// Every application computes real results over deterministic synthetic
// datasets and verifies them against an independent reference
// implementation; the timing model sees the same blocking, access
// patterns and instruction intensities the paper's versions had.
//
// Each application registers one or more variants:
//
//	fir, mergesort, bitonicsort, art, art-orig, jpeg-encode,
//	jpeg-decode, mpeg2, mpeg2-orig, h264, raytracer, depth, fem
//
// The "-orig" variants are the pre-stream-programming versions of
// Section 6 (Figures 9 and 10).
package workload

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stream"
)

// Scale selects dataset sizes: Small for unit tests, Default for benches
// (same shape as the paper at lower cost), Paper for paper-scale inputs.
type Scale int

// Dataset scales.
const (
	ScaleSmall Scale = iota
	ScaleDefault
	ScalePaper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleDefault:
		return "default"
	case ScalePaper:
		return "paper"
	}
	return "unknown"
}

// Factory builds a fresh workload instance at the given scale.
type Factory func(scale Scale) core.Workload

var registry = map[string]Factory{}
var names []string

// Register adds a workload under name; it panics on duplicates.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration " + name)
	}
	registry[name] = f
	names = append(names, name)
	sort.Strings(names)
}

// Get returns the factory for name.
func Get(name string) (Factory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, names)
	}
	return f, nil
}

// Names lists the registered workloads.
func Names() []string { return append([]string(nil), names...) }

// streamMem returns the streaming first level when p runs on the STR
// model.
func streamMem(p *cpu.Proc) (*stream.Mem, bool) {
	sm, ok := p.Mem().(*stream.Mem)
	return sm, ok
}

// span returns the half-open range [lo, hi) of item i of n split in
// parts contiguous pieces.
func span(n, parts, i int) (lo, hi int) {
	return n * i / parts, n * (i + 1) / parts
}

// rng is a small deterministic PRNG (xorshift64*), so datasets are
// reproducible without pulling in math/rand state semantics.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 2685821657736338717
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// byteAt returns a deterministic pseudo-random byte.
func (r *rng) byte() byte { return byte(r.next() >> 32) }

// float01 returns a float64 in [0, 1).
func (r *rng) float01() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

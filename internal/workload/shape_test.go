package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file asserts, at small scale, the per-application "shapes" the
// paper's evaluation reports: which model wins, roughly by how much,
// and which execution-time component dominates. Absolute numbers are
// not compared (our substrate is a rebuilt simulator); the relations
// are.

// shapeRun is a memoizing runner for the shape tests (many assertions
// share configurations).
var shapeCache = map[string]*core.Report{}

func shapeRep(t *testing.T, name string, model core.Model, cores int, mut func(*core.Config)) *core.Report {
	t.Helper()
	key := name + model.String() + string(rune('0'+cores))
	if mut != nil {
		key = "" // uncacheable
	}
	if key != "" {
		if rep, ok := shapeCache[key]; ok {
			return rep
		}
	}
	rep := runWL(t, name, model, cores, mut)
	if key != "" {
		shapeCache[key] = rep
	}
	return rep
}

// TestFigure2ComputeBoundAppsModelAgnostic: "For 7 out of 11
// applications the two models perform almost identically for all
// processor counts."
func TestFigure2ComputeBoundAppsModelAgnostic(t *testing.T) {
	apps := []string{"mpeg2", "raytracer", "depth", "fem", "jpeg-encode", "jpeg-decode", "h264"}
	for _, app := range apps {
		for _, cores := range []int{2, 8} {
			cc := shapeRep(t, app, core.CC, cores, nil)
			str := shapeRep(t, app, core.STR, cores, nil)
			ratio := float64(cc.Wall) / float64(str.Wall)
			if ratio < 0.60 || ratio > 1.67 {
				t.Errorf("%s @%d cores: CC/STR = %.2f, want ~1 (compute-bound)", app, cores, ratio)
			}
		}
	}
}

// TestFigure2ScalableAppsScale: the data-parallel applications speed up
// substantially from 2 to 8 cores on both models.
func TestFigure2ScalableAppsScale(t *testing.T) {
	// depth and raytracer have only 4 blocks/tiles at small scale, so
	// their scaling is asserted over 1 -> 4 cores instead of 2 -> 8.
	cases := []struct {
		app      string
		lo, hi   int
		expected float64
	}{
		{"depth", 1, 4, 2.8},
		{"raytracer", 1, 4, 2.4},
		{"fem", 2, 8, 2.0},
		{"jpeg-encode", 2, 8, 2.0},
		{"mpeg2", 2, 8, 2.0},
	}
	for _, c := range cases {
		for _, model := range []core.Model{core.CC, core.STR} {
			tLo := shapeRep(t, c.app, model, c.lo, nil).Wall
			tHi := shapeRep(t, c.app, model, c.hi, nil).Wall
			speedup := float64(tLo) / float64(tHi)
			if speedup < c.expected {
				t.Errorf("%s/%v: %d->%d core speedup %.2f, want >= %.1f",
					c.app, model, c.lo, c.hi, speedup, c.expected)
			}
		}
	}
}

// TestFigure2LimitedParallelismApps: H.264 and MergeSort scale
// sublinearly with substantial synchronization ("H.264 and MergeSort
// have synchronization stalls with both models due to limited
// parallelism").
func TestFigure2LimitedParallelismApps(t *testing.T) {
	for _, app := range []string{"h264", "mergesort"} {
		for _, model := range []core.Model{core.CC, core.STR} {
			t2 := shapeRep(t, app, model, 2, nil)
			t8 := shapeRep(t, app, model, 8, nil)
			speedup := float64(t2.Wall) / float64(t8.Wall)
			if speedup > 3.6 {
				t.Errorf("%s/%v: 2->8 speedup %.2f too perfect for a limited-parallelism app", app, model, speedup)
			}
			frac := float64(t8.Breakdown.Sync) / float64(t8.Breakdown.Total())
			if frac < 0.02 {
				t.Errorf("%s/%v @8 cores: sync fraction %.3f, want visible sync stalls", app, model, frac)
			}
		}
	}
}

// TestFigure2DataBoundSTRHidesStalls: for the data-bound applications,
// the streaming versions eliminate load stalls through double-buffering
// ("Streaming versions eliminate many of these stalls using
// double-buffering (macroscopic prefetching)").
func TestFigure2DataBoundSTRHidesStalls(t *testing.T) {
	for _, app := range []string{"fir", "art"} {
		cc := shapeRep(t, app, core.CC, 8, nil)
		str := shapeRep(t, app, core.STR, 8, nil)
		ccStall := float64(cc.Breakdown.LoadStall+cc.Breakdown.StoreStall) / float64(cc.Breakdown.Total())
		strStall := float64(str.Breakdown.LoadStall+str.Breakdown.StoreStall) / float64(str.Breakdown.Total())
		if strStall > ccStall/2 {
			t.Errorf("%s: STR stall fraction %.3f not well below CC's %.3f", app, strStall, ccStall)
		}
	}
}

// TestFigure4EnergyAdvantageApps: "For 5 out of 11 applications
// (JPEG Encode, JPEG Decode, FIR, 179.art, and MergeSort), streaming
// consistently consumes less energy than cache-coherence, typically 10%
// to 25%. The energy differential in nearly every case comes from the
// DRAM system."
func TestFigure4EnergyAdvantageApps(t *testing.T) {
	for _, app := range []string{"jpeg-decode", "fir", "art", "mergesort"} {
		cc := shapeRep(t, app, core.CC, 8, nil)
		str := shapeRep(t, app, core.STR, 8, nil)
		if str.Energy.Total() >= cc.Energy.Total() {
			t.Errorf("%s: STR energy %.3g >= CC %.3g", app, str.Energy.Total(), cc.Energy.Total())
			continue
		}
		// The differential comes mostly from DRAM for the streaming
		// workloads (at small scale jpeg-decode's images sit in the L2,
		// so its refill savings show up on-chip instead).
		if app == "jpeg-decode" {
			continue
		}
		dramDelta := cc.Energy.DRAM - str.Energy.DRAM
		totalDelta := cc.Energy.Total() - str.Energy.Total()
		if dramDelta < totalDelta/3 {
			t.Errorf("%s: DRAM saves %.3g of %.3g total; expected DRAM-driven gap",
				app, dramDelta, totalDelta)
		}
	}
}

// TestFigure5ClockScalingShapes: at 6.4 GHz the streaming MPEG-2 pulls
// ahead (latency tolerance) while BitonicSort favors the cache-based
// system (write-back of unmodified data saturates the STR channel).
func TestFigure5ClockScalingShapes(t *testing.T) {
	fast := func(c *core.Config) { c.CoreMHz = 6400 }
	mCC := runWL(t, "mpeg2", core.CC, 8, fast)
	mSTR := runWL(t, "mpeg2", core.STR, 8, fast)
	if mSTR.Wall > mCC.Wall*105/100 {
		t.Errorf("mpeg2 @6.4GHz: STR (%v) should not trail CC (%v) by >5%%", mSTR.Wall, mCC.Wall)
	}
	bCC := runWL(t, "bitonicsort", core.CC, 8, fast)
	bSTR := runWL(t, "bitonicsort", core.STR, 8, fast)
	if bCC.Wall >= bSTR.Wall {
		t.Errorf("bitonicsort @6.4GHz: CC (%v) should beat STR (%v)", bCC.Wall, bSTR.Wall)
	}
}

// TestFigure7PrefetchLatencyTolerance: "a small degree of prefetching
// is sufficient to hide over 200 cycles of memory latency" — with depth
// 4 at a high clock, CC load stalls on the sorts collapse.
func TestFigure7PrefetchLatencyTolerance(t *testing.T) {
	base := func(c *core.Config) {
		c.CoreMHz = 3200
		c.DRAMBandwidthMBps = 12800
	}
	pf := func(c *core.Config) {
		base(c)
		c.PrefetchDepth = 4
	}
	for _, app := range []string{"mergesort", "art"} {
		plain := runWL(t, app, core.CC, 2, base)
		pref := runWL(t, app, core.CC, 2, pf)
		if pref.Breakdown.LoadStall > plain.Breakdown.LoadStall/2 {
			t.Errorf("%s: P4 left %v of %v load stall", app,
				pref.Breakdown.LoadStall, plain.Breakdown.LoadStall)
		}
		if pref.Wall >= plain.Wall {
			t.Errorf("%s: prefetching did not improve wall time (%v vs %v)", app, pref.Wall, plain.Wall)
		}
	}
}

// TestWallClockSanity: no run's wall time may exceed the sequential
// baseline (adding cores never hurts in these regular workloads).
func TestWallClockSanity(t *testing.T) {
	for _, app := range []string{"fir", "depth", "fem", "mpeg2"} {
		for _, model := range []core.Model{core.CC, core.STR} {
			t2 := shapeRep(t, app, model, 2, nil).Wall
			t8 := shapeRep(t, app, model, 8, nil).Wall
			if t8 > t2 {
				t.Errorf("%s/%v: 8 cores (%v) slower than 2 (%v)", app, model, t8, t2)
			}
		}
	}
}

// TestEnergyNeverFree: every run consumes energy and the components
// stay positive (guards the accounting plumbing end to end).
func TestEnergyNeverFree(t *testing.T) {
	for _, app := range []string{"fir", "depth"} {
		for _, model := range []core.Model{core.CC, core.STR} {
			rep := shapeRep(t, app, model, 2, nil)
			if rep.Energy.Total() <= 0 {
				t.Errorf("%s/%v: energy %.3g", app, model, rep.Energy.Total())
			}
			if rep.Energy.Core <= 0 || rep.Energy.DRAM <= 0 {
				t.Errorf("%s/%v: missing component energies: %+v", app, model, rep.Energy)
			}
		}
	}
}

// TestBreakdownBucketsConsistent: for every app and model, the per-core
// breakdown buckets sum to at most the wall time, and the dominant
// bucket matches the app's class.
func TestBreakdownBucketsConsistent(t *testing.T) {
	classes := map[string]string{
		"depth": "useful", // compute-bound
		"fir":   "",       // data-bound: no constraint on which stall
	}
	for app, dominant := range classes {
		for _, model := range []core.Model{core.CC, core.STR} {
			rep := shapeRep(t, app, model, 8, nil)
			for i, bd := range rep.PerCore {
				if bd.Total() > rep.Wall+sim.Nanosecond {
					t.Errorf("%s/%v core %d: buckets %v exceed wall %v", app, model, i, bd.Total(), rep.Wall)
				}
			}
			if dominant == "useful" {
				bd := rep.Breakdown
				if bd.Useful < bd.Sync || bd.Useful < bd.LoadStall || bd.Useful < bd.StoreStall {
					t.Errorf("%s/%v: useful not dominant: %+v", app, model, bd)
				}
			}
		}
	}
}

// TestInstructionRatios: Section 5.1's instruction-count observations.
// "FIR executes 14% more instructions in the streaming model ... In the
// streaming MergeSort, the inner loop executes extra comparisons ...
// The streaming H.264 takes advantage of some boundary-condition
// optimizations ... This resulted in a slight reduction in instruction
// count when streaming."
func TestInstructionRatios(t *testing.T) {
	ratio := func(app string) float64 {
		cc := shapeRep(t, app, core.CC, 2, nil)
		str := shapeRep(t, app, core.STR, 2, nil)
		return float64(str.Instructions) / float64(cc.Instructions)
	}
	if r := ratio("fir"); r < 1.05 || r > 1.30 {
		t.Errorf("fir STR/CC instructions = %.3f, want ~1.14", r)
	}
	if r := ratio("mergesort"); r <= 1.0 {
		t.Errorf("mergesort STR/CC instructions = %.3f, want > 1 (buffer drain checks)", r)
	}
	if r := ratio("h264"); r >= 1.0 {
		t.Errorf("h264 STR/CC instructions = %.3f, want < 1 (boundary optimizations)", r)
	}
}

package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/syncprim"
)

func init() {
	Register("fem", func(s Scale) core.Workload { return newFEM(s) })
}

// fem is the 2D finite-element-method application: explicit time
// stepping over an unstructured mesh, parallelized across mesh cells
// (Section 4.2). Cell numbering is randomly permuted, so neighbor state
// is gathered through index lists — sequential own-cell traffic plus an
// irregular gather, which the streaming model serves with indexed DMA
// and the cache-based model with demand misses.
type fem struct {
	cells int
	steps int
	w, h  int

	neighbors [][4]int32 // permuted neighbor ids per cell (-1 = boundary)
	coef      []float64
	state     []float64
	next      []float64
	init0     []float64 // initial state snapshot for verification

	stateR  mem.Region
	nextR   mem.Region
	nbrR    mem.Region
	cores   int
	barrier *syncprim.Barrier
}

func newFEM(s Scale) *fem {
	f := &fem{w: 128, h: 64, steps: 20}
	switch s {
	case ScaleSmall:
		f.w, f.h, f.steps = 32, 32, 6
	case ScalePaper:
		// The paper's mesh: 5006 cells, 7663 edges. A 72x70 grid gives
		// a cell count in the same class.
		f.w, f.h, f.steps = 72, 70, 60
	}
	f.cells = f.w * f.h
	return f
}

func (f *fem) Name() string { return "fem" }

func (f *fem) Setup(sys *core.System) {
	f.cores = sys.Cores()
	n := f.cells
	// Window-local random permutation of cell ids makes the mesh
	// "unstructured" while keeping the locality a bandwidth-reducing
	// renumbering (which any real FEM code applies) would give:
	// neighbor indices are scattered within a few hundred cells, not
	// across the whole mesh.
	const window = femWindow
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rg := newRNG(0xFE31)
	for base := 0; base < n; base += window {
		end := min(base+window, n)
		for i := end - 1; i > base; i-- {
			j := base + rg.intn(i-base+1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	inv := make([]int32, n)
	for i, p := range perm {
		inv[p] = int32(i)
	}
	f.neighbors = make([][4]int32, n)
	grid := func(x, y int) int32 {
		if x < 0 || y < 0 || x >= f.w || y >= f.h {
			return -1
		}
		return inv[y*f.w+x]
	}
	for y := 0; y < f.h; y++ {
		for x := 0; x < f.w; x++ {
			id := inv[y*f.w+x]
			f.neighbors[id] = [4]int32{grid(x-1, y), grid(x+1, y), grid(x, y-1), grid(x, y+1)}
		}
	}
	f.coef = make([]float64, n)
	f.state = make([]float64, n)
	for i := 0; i < n; i++ {
		f.coef[i] = 0.05 + 0.1*rg.float01()
		f.state[i] = rg.float01()
	}
	f.init0 = append([]float64(nil), f.state...)
	f.next = make([]float64, n)
	as := sys.AddressSpace()
	f.stateR = as.AllocArray("fem.state", n, 8)
	f.nextR = as.AllocArray("fem.next", n, 8)
	f.nbrR = as.AllocArray("fem.nbr", n, 16)
	f.barrier = syncprim.NewBarrier("fem.bar", f.cores)
}

// femWindow matches the mesh renumbering window in Setup: neighbor ids
// are scattered within this range of a cell's own id.
const femWindow = 256

// femWorkPerCell is the per-cell flux update cost: per-edge flux terms
// (differences, coefficients, upwinding), integration and index
// arithmetic — FEM kernels carry real floating-point weight per cell.
const femWorkPerCell = 90

// stepCell computes one cell's explicit update.
func (f *fem) stepCell(src, dst []float64, id int) {
	flux := 0.0
	for _, nb := range f.neighbors[id] {
		if nb >= 0 {
			flux += src[nb] - src[id]
		}
	}
	dst[id] = src[id] + f.coef[id]*flux
}

func (f *fem) Run(p *cpu.Proc) {
	sm, isSTR := streamMem(p)
	lo, hi := span(f.cells, f.cores, p.ID())
	n := hi - lo
	src, dst := f.state, f.next
	srcR, dstR := f.stateR, f.nextR
	const block = 512
	// Reusable gather index buffer (addresses of the 4 neighbors).
	var idx []mem.Addr
	for step := 0; step < f.steps; step++ {
		for b := lo; b < hi; b += block {
			e := min(b+block, hi)
			bn := e - b
			if isSTR {
				// The streaming version fetches a contiguous superset of
				// the needed state — the block extended by the mesh
				// renumbering window — and gathers only the stragglers
				// with indexed DMA ("A streaming system can sometimes
				// cope with these patterns by fetching a superset of the
				// needed input data").
				sLo := max(b-femWindow, 0)
				sHi := min(e+femWindow, f.cells)
				gOwn := sm.Get(p, srcR.Index(sLo, 8), uint64(sHi-sLo)*8)
				gNbr := sm.Get(p, f.nbrR.Index(b, 16), uint64(bn)*16)
				idx = idx[:0]
				for c := b; c < e; c++ {
					for _, nb := range f.neighbors[c] {
						if int(nb) >= sHi || (nb >= 0 && int(nb) < sLo) {
							idx = append(idx, srcR.Index(int(nb), 8))
						}
					}
				}
				sm.Wait(p, gOwn)
				sm.Wait(p, gNbr)
				if len(idx) > 0 {
					gG := sm.GetIndexed(p, idx, 8)
					sm.Wait(p, gG)
				}
				for c := b; c < e; c++ {
					f.stepCell(src, dst, c)
				}
				sm.LSLoadN(p, uint64(5*bn))
				p.Work(uint64(bn) * femWorkPerCell)
				sm.LSStoreN(p, uint64(bn))
				put := sm.Put(p, dstR.Index(b, 8), uint64(bn)*8)
				sm.Wait(p, put)
			} else {
				p.LoadN(srcR.Index(b, 8), 8, uint64(bn))     // own state
				p.LoadN(f.nbrR.Index(b, 16), 16, uint64(bn)) // neighbor ids
				for c := b; c < e; c++ {
					for _, nb := range f.neighbors[c] {
						if nb >= 0 {
							p.Load(srcR.Index(int(nb), 8))
						}
					}
					f.stepCell(src, dst, c)
				}
				p.Work(uint64(bn) * femWorkPerCell)
				p.StoreN(dstR.Index(b, 8), 8, uint64(bn))
			}
		}
		p.Work(uint64(n / 64)) // loop bookkeeping
		f.barrier.Wait(p)
		src, dst = dst, src
		srcR, dstR = dstR, srcR
	}
}

func (f *fem) Verify() error {
	// Sequential reference from the saved initial state.
	n := f.cells
	src := append([]float64(nil), f.init0...)
	dst := make([]float64, n)
	for step := 0; step < f.steps; step++ {
		for c := 0; c < n; c++ {
			f.stepCell(src, dst, c)
		}
		src, dst = dst, src
	}
	got := f.state
	if f.steps%2 == 1 {
		got = f.next
	}
	for c := 0; c < n; c++ {
		if got[c] != src[c] {
			return fmt.Errorf("fem: cell %d = %v, want %v", c, got[c], src[c])
		}
	}
	return nil
}

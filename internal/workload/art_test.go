package workload

import (
	"testing"

	"repro/internal/core"
)

func TestArtBothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		rep := runWL(t, "art", model, 4, nil)
		if rep.Wall == 0 {
			t.Errorf("%v: zero wall", model)
		}
	}
}

func TestArtOrigVerifies(t *testing.T) {
	runWL(t, "art-orig", core.CC, 4, nil)
}

func TestArtOptimizationSpeedsUpCC(t *testing.T) {
	// The Figure 10 effect: the stream-programming rewrite (SoA layout,
	// merged loops, scalar temps) is dramatically faster on the
	// cache-based machine, even without prefetching.
	orig := runWL(t, "art-orig", core.CC, 4, nil)
	opt := runWL(t, "art", core.CC, 4, nil)
	speedup := float64(orig.Wall) / float64(opt.Wall)
	if speedup < 2.0 {
		t.Errorf("stream optimization speedup = %.2fx, want >= 2x (paper: ~7x with prefetching)", speedup)
	}
	// The original wastes bandwidth on sparse lines.
	if orig.DRAM.ReadBytes <= opt.DRAM.ReadBytes {
		t.Errorf("orig reads %d <= opt reads %d; sparse AoS should read more",
			orig.DRAM.ReadBytes, opt.DRAM.ReadBytes)
	}
}

func TestArtPrefetchHelpsOptimizedMore(t *testing.T) {
	// Both variants stream the F2 weight rows (prefetchable), but only
	// the optimized layout makes the F1 passes prefetchable: "These
	// optimizations ... allowed us to use prefetching effectively."
	pf := func(c *core.Config) { c.PrefetchDepth = 4 }
	orig := runWL(t, "art-orig", core.CC, 2, nil)
	origPF := runWL(t, "art-orig", core.CC, 2, pf)
	opt := runWL(t, "art", core.CC, 2, nil)
	optPF := runWL(t, "art", core.CC, 2, pf)
	if optPF.PrefetchFills == 0 {
		t.Error("no prefetches issued for the contiguous layout")
	}
	gainOrig := float64(orig.Wall) / float64(origPF.Wall)
	gainOpt := float64(opt.Wall) / float64(optPF.Wall)
	if gainOpt <= gainOrig {
		t.Errorf("prefetch speedup: opt %.3fx <= orig %.3fx; contiguous layout should benefit more",
			gainOpt, gainOrig)
	}
}

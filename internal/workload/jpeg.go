package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/syncprim"
)

func init() {
	Register("jpeg-encode", func(s Scale) core.Workload { return newJpeg(s, true) })
	Register("jpeg-decode", func(s Scale) core.Workload { return newJpeg(s, false) })
}

// jpegImage is one grayscale image and its compressed form.
type jpegImage struct {
	w, h   int
	pixels []byte
	comp   []byte // RLE-compressed DCT blocks
	outPix []byte // decoder output
	outCmp []byte // encoder output

	pixR mem.Region
	cmpR mem.Region
	outR mem.Region
}

// jpeg implements JPEG Encode and Decode, parallelized across input
// images "in a manner similar to that done by an image thumbnail
// browser". Encode reads a lot of pixel data and writes little; Decode
// reads little and writes whole frames, which makes its output stream
// the poster child for superfluous write-allocate refills (Figures 3/4).
type jpeg struct {
	encode bool
	images []*jpegImage
	cores  int
	wq     *syncprim.TaskQueue
}

func newJpeg(s Scale, encode bool) *jpeg {
	j := &jpeg{encode: encode}
	count, minW := 32, 64
	switch s {
	case ScaleSmall:
		count, minW = 6, 48
	case ScalePaper:
		count, minW = 128, 128 // "128 PPMs of various sizes"
	}
	rg := newRNG(0x12E6)
	for i := 0; i < count; i++ {
		w := minW + 8*rg.intn(8)
		h := minW + 8*rg.intn(8)
		img := &jpegImage{w: w, h: h, pixels: make([]byte, w*h)}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.pixels[y*w+x] = byte(16*(x/8)+8*(y/8)) + rg.byte()&0x0F
			}
		}
		j.images = append(j.images, img)
	}
	return j
}

func (j *jpeg) Name() string {
	if j.encode {
		return "jpeg-encode"
	}
	return "jpeg-decode"
}

// encodeImage compresses img.pixels into a fresh buffer.
func encodeImage(img *jpegImage) []byte {
	var out []byte
	var blk, coef [64]int32
	for by := 0; by < img.h; by += 8 {
		for bx := 0; bx < img.w; bx += 8 {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					blk[y*8+x] = int32(img.pixels[(by+y)*img.w+bx+x]) - 128
				}
			}
			fdct8(&blk, &coef)
			quantize(&coef, &jpegQuant)
			out = rleEncode(&coef, out)
		}
	}
	return out
}

// decodeImage decompresses comp into pixels.
func decodeImage(comp []byte, w, h int) []byte {
	pix := make([]byte, w*h)
	var blk, coef [64]int32
	for by := 0; by < h; by += 8 {
		for bx := 0; bx < w; bx += 8 {
			comp = rleDecode(comp, &coef)
			dequantize(&coef, &jpegQuant)
			idct8(&coef, &blk)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := blk[y*8+x] + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					pix[(by+y)*w+bx+x] = byte(v)
				}
			}
		}
	}
	return pix
}

func (j *jpeg) Setup(sys *core.System) {
	j.cores = sys.Cores()
	as := sys.AddressSpace()
	for i, img := range j.images {
		img.comp = encodeImage(img) // decoder input / encoder reference
		img.pixR = as.Alloc(fmt.Sprintf("jpeg.pix%d", i), uint64(len(img.pixels)))
		img.cmpR = as.Alloc(fmt.Sprintf("jpeg.cmp%d", i), uint64(len(img.comp))+64)
		if j.encode {
			img.outR = img.cmpR
		} else {
			img.outR = as.Alloc(fmt.Sprintf("jpeg.out%d", i), uint64(len(img.pixels)))
		}
	}
	j.wq = syncprim.NewTaskQueue("jpeg.images", len(j.images))
	// The codec loop is a few kilobytes of hot code; it fits the 16 KB
	// I-cache after warmup, so no analytic I-miss rate is configured.
}

func (j *jpeg) Run(p *cpu.Proc) {
	for {
		idx := j.wq.Next(p)
		if idx < 0 {
			return
		}
		img := j.images[idx]
		if j.encode {
			j.encodeOne(p, img)
		} else {
			j.decodeOne(p, img)
		}
	}
}

// blocksPerStrip covers one 8-pixel-high strip of blocks.
func (img *jpegImage) stripBlocks() int { return img.w / 8 }

func (j *jpeg) encodeOne(p *cpu.Proc, img *jpegImage) {
	sm, isSTR := streamMem(p)
	img.outCmp = encodeImage(img) // the real computation
	nBlocks := uint64(img.w / 8 * (img.h / 8))
	perStrip := uint64(img.w * 8)
	outPerBlock := uint64(len(img.outCmp)) / nBlocks

	var out *strOut
	if isSTR {
		out = newStrOut(p, sm, img.outR.Base, 1, 2048)
	}
	written := uint64(0)
	for by := 0; by < img.h; by += 8 {
		if isSTR {
			g := sm.Get(p, img.pixR.At(uint64(by*img.w)), perStrip)
			sm.Wait(p, g)
			sm.LSLoadN(p, perStrip/4)
		} else {
			p.LoadN(img.pixR.At(uint64(by*img.w)), 4, perStrip/4)
		}
		strip := uint64(img.stripBlocks())
		p.Work(strip * (workFDCT + workQuant + workRLE + 64*workPerPixel))
		produced := strip * outPerBlock
		if isSTR {
			out.produce(int(produced))
		} else {
			p.StoreN(img.outR.At(written), 4, (produced+3)/4)
		}
		written += produced
	}
	if isSTR {
		out.flush()
	}
}

func (j *jpeg) decodeOne(p *cpu.Proc, img *jpegImage) {
	sm, isSTR := streamMem(p)
	img.outPix = decodeImage(img.comp, img.w, img.h) // the real computation
	nBlocks := uint64(img.w / 8 * (img.h / 8))
	perStrip := uint64(img.w * 8)
	inPerBlock := uint64(len(img.comp)) / nBlocks

	var in *strIn
	if isSTR {
		in = newStrIn(p, sm, img.cmpR.Base, 1, len(img.comp), 2048)
	}
	read := uint64(0)
	for by := 0; by < img.h; by += 8 {
		strip := uint64(img.stripBlocks())
		consumed := strip * inPerBlock
		if isSTR {
			in.consume(int(consumed))
		} else {
			p.LoadN(img.cmpR.At(read), 4, (consumed+3)/4)
		}
		read += consumed
		p.Work(strip * (workIDCT + workQuant + workRLE + 64*workPerPixel))
		if isSTR {
			sm.LSStoreN(p, perStrip/4)
			put := sm.Put(p, img.outR.At(uint64(by*img.w)), perStrip)
			if by+8 >= img.h {
				sm.Wait(p, put)
			}
		} else {
			p.StoreN(img.outR.At(uint64(by*img.w)), 4, perStrip/4)
		}
	}
}

func (j *jpeg) Verify() error {
	for i, img := range j.images {
		if j.encode {
			if img.outCmp == nil {
				return fmt.Errorf("jpeg-encode: image %d never encoded", i)
			}
			want := encodeImage(img)
			if len(img.outCmp) != len(want) {
				return fmt.Errorf("jpeg-encode: image %d output %d bytes, want %d", i, len(img.outCmp), len(want))
			}
			for k := range want {
				if img.outCmp[k] != want[k] {
					return fmt.Errorf("jpeg-encode: image %d byte %d differs", i, k)
				}
			}
			continue
		}
		if img.outPix == nil {
			return fmt.Errorf("jpeg-decode: image %d never decoded", i)
		}
		want := decodeImage(img.comp, img.w, img.h)
		for k := range want {
			if img.outPix[k] != want[k] {
				return fmt.Errorf("jpeg-decode: image %d pixel %d differs", i, k)
			}
		}
		// The lossy round trip must stay close to the source.
		var maxErr int
		for k := range want {
			d := int(want[k]) - int(img.pixels[k])
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
		// The synthetic pattern wraps around byte range, so quality-50
		// quantization legitimately rings near the wrap edges; this is
		// only a gross-corruption sanity bound — exactness is already
		// checked against the reference decoder above.
		if maxErr > 128 {
			return fmt.Errorf("jpeg-decode: image %d max reconstruction error %d too large", i, maxErr)
		}
	}
	return nil
}

package workload

import (
	"testing"

	"repro/internal/core"
)

func TestH264BothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		for _, n := range []int{1, 4} {
			runWL(t, "h264", model, n, nil)
		}
	}
}

func TestH264LimitedParallelism(t *testing.T) {
	// Wavefront dependencies limit available parallelism; sync stalls
	// grow with core count on both models (Figure 2 H.264/MergeSort).
	r2 := runWL(t, "h264", core.CC, 2, nil)
	r8 := runWL(t, "h264", core.CC, 8, nil)
	frac2 := float64(r2.Breakdown.Sync) / float64(r2.Breakdown.Total())
	frac8 := float64(r8.Breakdown.Sync) / float64(r8.Breakdown.Total())
	if frac8 <= frac2 {
		t.Errorf("sync fraction %.3f at 8 cores <= %.3f at 2", frac8, frac2)
	}
	// And speedup is sublinear.
	if float64(r8.Wall) < float64(r2.Wall)/3.9 {
		t.Errorf("8-core h264 scaled too perfectly: %v vs %v", r8.Wall, r2.Wall)
	}
}

func TestRaytracerBothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		for _, n := range []int{1, 4} {
			runWL(t, "raytracer", model, n, nil)
		}
	}
}

func TestRaytracerTreeCachesWell(t *testing.T) {
	// The KD-tree's hot upper levels should hit in the L1: high hit
	// rate despite the irregular traversal (Table 3 raytracer L1 miss
	// rate ~1%).
	rep := runWL(t, "raytracer", core.CC, 2, nil)
	if mr := rep.L1MissRate(); mr > 0.10 {
		t.Errorf("L1 miss rate %.3f; the tree should cache well", mr)
	}
}

func TestRaytracerSTRUsesSmallCache(t *testing.T) {
	rep := runWL(t, "raytracer", core.STR, 2, nil)
	// The streaming version reads the tree through its 8 KB cache, not
	// via DMA gathers.
	if rep.L1.Reads == 0 {
		t.Error("STR raytracer never used its small cache")
	}
	if rep.DMAGetBytes != 0 {
		t.Errorf("STR raytracer DMA-read %d bytes; the tree should come through the cache", rep.DMAGetBytes)
	}
	if rep.DMAPutBytes == 0 {
		t.Error("framebuffer should be written with DMA")
	}
}

package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// These tests exercise the applications' computational kernels directly
// (no simulator): the algorithms must be correct in their own right
// before their memory behavior is worth measuring.

func TestMotionSearchFindsGlobalShift(t *testing.T) {
	// Frame 1 is frame 0 shifted by (+2, +1) on the MPEG-2 workload's
	// own smooth block pattern. A three-step search is a heuristic: the
	// contract is not global optimality on arbitrary content but (a) a
	// large SAD reduction over not searching and (b) near-exhaustive
	// quality on smooth video-like content.
	m := &mpeg2{w: 96, h: 80}
	m.mbW, m.mbH = m.w/mbSize, m.h/mbSize
	f0 := make([]byte, m.w*m.h)
	for y := 0; y < m.h; y++ {
		for x := 0; x < m.w; x++ {
			f0[y*m.w+x] = byte(5*(x/4) + 6*(y/4)) // wrap-free smooth blocks
		}
	}
	f1 := make([]byte, m.w*m.h)
	for y := 0; y < m.h; y++ {
		for x := 0; x < m.w; x++ {
			sx, sy := min(x+2, m.w-1), min(y+1, m.h-1)
			f1[y*m.w+x] = f0[sy*m.w+sx]
		}
	}
	dx, dy, sads := m.motionSearch(f1, f0, 32, 32)
	if sads < 9 || sads > 120 {
		t.Errorf("three-step search evaluated %d SADs; expected a few dozen", sads)
	}
	found := m.sad16(f1, f0, 32, 32, dx, dy)
	zero := m.sad16(f1, f0, 32, 32, 0, 0)
	if found > zero/3 {
		t.Errorf("search SAD %d not well below zero-vector SAD %d", found, zero)
	}
	// Exhaustive reference over the full +/-7 window: the heuristic's
	// residual must be a small fraction of the unsearched residual even
	// though block content aliases (vectors congruent to the true shift
	// modulo the block size nearly tie, so exact-vector recovery is not
	// part of a three-step search's contract).
	best := zero
	for ey := -meRange; ey <= meRange; ey++ {
		for ex := -meRange; ex <= meRange; ex++ {
			if s := m.sad16(f1, f0, 32, 32, ex, ey); s < best {
				best = s
			}
		}
	}
	if best != 0 {
		t.Fatalf("test setup broken: exhaustive best SAD = %d, want 0", best)
	}
	if found > zero/3 {
		t.Errorf("search SAD %d at (%d,%d); want within a third of the zero-vector residual %d", found, dx, dy, zero)
	}
}

func TestMotionSearchNeverWorseThanZero(t *testing.T) {
	f := func(seed uint32) bool {
		m := &mpeg2{w: 64, h: 48}
		rg := newRNG(uint64(seed) | 1)
		f0 := make([]byte, m.w*m.h)
		f1 := make([]byte, m.w*m.h)
		for i := range f0 {
			f0[i] = rg.byte()
			f1[i] = rg.byte()
		}
		dx, dy, _ := m.motionSearch(f1, f0, 16, 16)
		return m.sad16(f1, f0, 16, 16, dx, dy) <= m.sad16(f1, f0, 16, 16, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	r := newRaytracer(ScaleSmall)
	r.nTris = 128
	// Setup needs a system only for region allocation; build the tree
	// directly instead.
	rg := newRNG(0x3A7)
	for i := 0; i < r.nTris; i++ {
		c := vec3{rg.float01(), rg.float01(), rg.float01()}
		e1 := vec3{(rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1}
		e2 := vec3{(rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1}
		tr := triangle{a: c, b: vec3{c.x + e1.x, c.y + e1.y, c.z + e1.z}, c: vec3{c.x + e2.x, c.y + e2.y, c.z + e2.z}}
		n := e1.cross(e2)
		if n.dot(n) < 1e-12 {
			n = vec3{0, 0, 1}
		}
		tr.normal = n.norm()
		r.tris = append(r.tris, tr)
	}
	idx := make([]int32, r.nTris)
	for i := range idx {
		idx[i] = int32(i)
	}
	r.buildKD(idx, 0)

	// Brute force reference for a grid of rays.
	for py := 0; py < r.size; py += 5 {
		for px := 0; px < r.size; px += 3 {
			got := r.tracePixel(px, py, nil, nil)
			// Brute force.
			u := (float64(px) + 0.5) / float64(r.size)
			v := (float64(py) + 0.5) / float64(r.size)
			orig := vec3{u, v, -1.5}
			dir := vec3{(u - 0.5) * 0.2, (v - 0.5) * 0.2, 1}.norm()
			light := vec3{0.3, 0.8, -0.5}.norm()
			best := math.Inf(1)
			bestTri := -1
			for ti := range r.tris {
				if d := intersect(&r.tris[ti], orig, dir); d < best {
					best = d
					bestTri = ti
				}
			}
			var want byte
			if bestTri >= 0 {
				sh := r.tris[bestTri].normal.dot(light)
				if sh < 0 {
					sh = -sh
				}
				want = byte(40 + sh*200)
			}
			if got != want {
				t.Fatalf("pixel (%d,%d): KD traversal %d, brute force %d", px, py, got, want)
			}
		}
	}
}

func TestBitonicNetworkSortsAnything(t *testing.T) {
	f := func(seed uint32) bool {
		bt := &bitonic{n: 64}
		bt.data = make([]uint32, bt.n)
		rg := newRNG(uint64(seed) | 3)
		for i := range bt.data {
			bt.data[i] = uint32(rg.next())
		}
		want := append([]uint32(nil), bt.data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for k := 2; k <= bt.n; k <<= 1 {
			for j := k >> 1; j > 0; j >>= 1 {
				for pi := 0; pi < bt.n/2; pi++ {
					bt.exchange(pairIndex(pi, j), j, k)
				}
			}
		}
		for i := range want {
			if bt.data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFEMConstantFieldIsSteadyState(t *testing.T) {
	// A spatially constant field has zero flux everywhere: stepping must
	// leave it unchanged regardless of coefficients or numbering.
	f := newFEM(ScaleSmall)
	// Build neighbors without a full system: mimic Setup's grid wiring
	// with identity numbering.
	n := f.cells
	f.neighbors = make([][4]int32, n)
	grid := func(x, y int) int32 {
		if x < 0 || y < 0 || x >= f.w || y >= f.h {
			return -1
		}
		return int32(y*f.w + x)
	}
	for y := 0; y < f.h; y++ {
		for x := 0; x < f.w; x++ {
			f.neighbors[y*f.w+x] = [4]int32{grid(x-1, y), grid(x+1, y), grid(x, y-1), grid(x, y+1)}
		}
	}
	f.coef = make([]float64, n)
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := 0; i < n; i++ {
		f.coef[i] = 0.1
		src[i] = 7.25
	}
	for c := 0; c < n; c++ {
		f.stepCell(src, dst, c)
	}
	for c := 0; c < n; c++ {
		if dst[c] != 7.25 {
			t.Fatalf("cell %d drifted to %v", c, dst[c])
		}
	}
}

func TestFEMDiffusionSmoothes(t *testing.T) {
	// A spike diffuses: after one step its neighbors rise and it falls,
	// and (interior) mass moves but is conserved locally in symmetric
	// exchanges.
	f := newFEM(ScaleSmall)
	n := f.cells
	f.neighbors = make([][4]int32, n)
	grid := func(x, y int) int32 {
		if x < 0 || y < 0 || x >= f.w || y >= f.h {
			return -1
		}
		return int32(y*f.w + x)
	}
	for y := 0; y < f.h; y++ {
		for x := 0; x < f.w; x++ {
			f.neighbors[y*f.w+x] = [4]int32{grid(x-1, y), grid(x+1, y), grid(x, y-1), grid(x, y+1)}
		}
	}
	f.coef = make([]float64, n)
	for i := range f.coef {
		f.coef[i] = 0.1
	}
	src := make([]float64, n)
	dst := make([]float64, n)
	center := (f.h/2)*f.w + f.w/2
	src[center] = 1.0
	for c := 0; c < n; c++ {
		f.stepCell(src, dst, c)
	}
	if dst[center] >= 1.0 {
		t.Error("spike did not decay")
	}
	if dst[center-1] <= 0 || dst[center+1] <= 0 || dst[center-f.w] <= 0 || dst[center+f.w] <= 0 {
		t.Error("neighbors did not receive flux")
	}
}

func TestH264PredictChoosesBestMode(t *testing.T) {
	e := newH264(ScaleSmall)
	e.pix = [][]byte{make([]byte, e.w*e.h)}
	e.recon = [][]byte{make([]byte, e.w*e.h)}
	// Vertical stripes reproduced perfectly by mode 1 (vertical
	// prediction from the top row) once recon holds the same stripes.
	for y := 0; y < e.h; y++ {
		for x := 0; x < e.w; x++ {
			e.pix[0][y*e.w+x] = byte(13 * x)
			e.recon[0][y*e.w+x] = byte(13 * x)
		}
	}
	pred := make([]byte, mbSize*mbSize)
	mode := e.predict(0, 1, 1, pred)
	if mode != 1 {
		t.Errorf("mode = %d, want 1 (vertical) for vertical stripes", mode)
	}
	// The prediction must match the source exactly for this pattern.
	x, y := 1*mbSize, 1*mbSize
	for j := 0; j < mbSize; j++ {
		for i := 0; i < mbSize; i++ {
			if pred[j*mbSize+i] != e.pix[0][(y+j)*e.w+x+i] {
				t.Fatalf("prediction differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestQuickInstrMonotonic(t *testing.T) {
	if quickInstr(1024) >= quickInstr(4096) {
		t.Error("instruction estimate must grow with n")
	}
	if quickInstr(4096) != 4*4096*12 {
		t.Errorf("quickInstr(4096) = %d", quickInstr(4096))
	}
}

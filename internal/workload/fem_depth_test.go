package workload

import (
	"testing"

	"repro/internal/core"
)

func TestFEMBothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		for _, n := range []int{1, 4} {
			runWL(t, "fem", model, n, nil)
		}
	}
}

func TestFEMModelsComparable(t *testing.T) {
	// Figure 2: FEM performs almost identically on both models.
	cc := runWL(t, "fem", core.CC, 4, nil)
	str := runWL(t, "fem", core.STR, 4, nil)
	ratio := float64(cc.Wall) / float64(str.Wall)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("CC/STR wall ratio = %.2f, want comparable", ratio)
	}
}

func TestDepthBothModelsVerify(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		runWL(t, "depth", model, 4, nil)
	}
}

func TestDepthComputeBound(t *testing.T) {
	rep := runWL(t, "depth", core.CC, 4, nil)
	frac := float64(rep.Breakdown.Useful) / float64(rep.Breakdown.Total())
	if frac < 0.9 {
		t.Errorf("useful fraction = %.2f, want > 0.9 (Depth is compute-bound)", frac)
	}
	if rep.InstrPerL1Miss() < 1000 {
		t.Errorf("instr/L1-miss = %.0f, want >1000 (Table 3: ~8700)", rep.InstrPerL1Miss())
	}
}

func TestDepthScalesBothModels(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		t1 := runWL(t, "depth", model, 1, nil).Wall
		t4 := runWL(t, "depth", model, 4, nil).Wall
		if float64(t4) > float64(t1)/2.8 {
			t.Errorf("%v: 4-core depth %v vs 1-core %v; want near-linear scaling", model, t4, t1)
		}
	}
}

package workload

import (
	"repro/internal/cpu"
	"repro/internal/dma"
	"repro/internal/mem"
	"repro/internal/stream"
)

// dmaTag aliases dma.Tag for brevity in workload code.
type dmaTag = dma.Tag

// strIn is a double-buffered sequential DMA input stream: the next block
// is always in flight while the current one is consumed, the
// "macroscopic prefetching" of Section 2.3.
type strIn struct {
	p          *cpu.Proc
	sm         *stream.Mem
	base       mem.Addr
	elemSize   uint64
	count      int // total elements
	blockElems int

	fetched  int // elements covered by issued DMAs
	avail    int // elements arrived and not yet consumed
	pos      int // consumed elements
	tags     []dma.Tag
	tagElems []int
}

// newStrIn starts a stream over count elements of elemSize at base,
// fetched in blocks of blockElems, and issues the first two transfers.
func newStrIn(p *cpu.Proc, sm *stream.Mem, base mem.Addr, elemSize uint64, count, blockElems int) *strIn {
	s := &strIn{p: p, sm: sm, base: base, elemSize: elemSize, count: count, blockElems: blockElems}
	s.issue()
	s.issue()
	return s
}

func (s *strIn) issue() {
	if s.fetched >= s.count {
		return
	}
	n := min(s.blockElems, s.count-s.fetched)
	tag := s.sm.Get(s.p, s.base+mem.Addr(uint64(s.fetched)*s.elemSize), uint64(n)*s.elemSize)
	s.fetched += n
	s.tags = append(s.tags, tag)
	s.tagElems = append(s.tagElems, n)
}

// ensure blocks until at least n unconsumed elements are resident,
// keeping one transfer in flight beyond them.
func (s *strIn) ensure(n int) {
	if left := s.count - s.pos; n > left {
		n = left
	}
	for s.avail < n {
		if len(s.tags) == 0 {
			panic("workload: stream input underflow")
		}
		s.sm.Wait(s.p, s.tags[0])
		s.avail += s.tagElems[0]
		s.tags = s.tags[1:]
		s.tagElems = s.tagElems[1:]
		s.issue()
	}
}

// consume charges n local-store element reads and marks them consumed.
func (s *strIn) consume(n int) {
	s.ensure(n)
	s.avail -= n
	s.pos += n
	s.sm.LSLoadN(s.p, uint64(n))
}

// strOut is a double-buffered sequential DMA output stream: blocks are
// written back while the next one is produced.
type strOut struct {
	p          *cpu.Proc
	sm         *stream.Mem
	base       mem.Addr
	elemSize   uint64
	blockElems int

	pos      int // elements written back or buffered
	buffered int
	pending  []dma.Tag
}

// newStrOut starts an output stream of elemSize elements at base,
// drained in blocks of blockElems.
func newStrOut(p *cpu.Proc, sm *stream.Mem, base mem.Addr, elemSize uint64, blockElems int) *strOut {
	return &strOut{p: p, sm: sm, base: base, elemSize: elemSize, blockElems: blockElems}
}

// produce charges n local-store writes and drains full blocks.
func (s *strOut) produce(n int) {
	s.sm.LSStoreN(s.p, uint64(n))
	s.buffered += n
	for s.buffered >= s.blockElems {
		s.drain(s.blockElems)
	}
}

func (s *strOut) drain(n int) {
	// Keep at most two puts outstanding (two LS buffers).
	for len(s.pending) >= 2 {
		s.sm.Wait(s.p, s.pending[0])
		s.pending = s.pending[1:]
	}
	tag := s.sm.Put(s.p, s.base+mem.Addr(uint64(s.pos)*s.elemSize), uint64(n)*s.elemSize)
	s.pending = append(s.pending, tag)
	s.pos += n
	s.buffered -= n
}

// flush writes out any partial block and waits for all puts.
func (s *strOut) flush() {
	if s.buffered > 0 {
		s.drain(s.buffered)
	}
	for len(s.pending) > 0 {
		s.sm.Wait(s.p, s.pending[0])
		s.pending = s.pending[1:]
	}
}

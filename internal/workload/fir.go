package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dma"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stream"
)

func init() {
	Register("fir", func(s Scale) core.Workload { return newFIR(s, false) })
	// The Figure 8 variant: output-only stores use "Prepare For Store".
	Register("fir-pfs", func(s Scale) core.Workload { return newFIR(s, true) })
}

// firTaps is the filter length ("The FIR filter has 16 taps and is
// parallelized across long strips of samples").
const firTaps = 16

// fir implements the 16-tap FIR filter. It performs a small computation
// per element and is bandwidth-bound: the defining Figure 5/6 workload.
type fir struct {
	pfs   bool
	n     int // input samples
	in    []float32
	out   []float32
	taps  [firTaps]float32
	inR   mem.Region
	outR  mem.Region
	cores int
}

func newFIR(s Scale, pfs bool) *fir {
	n := 1 << 20 // default: 1M samples, 4 MB in + 4 MB out
	switch s {
	case ScaleSmall:
		n = 1 << 15
	case ScalePaper:
		n = 1 << 21 // the paper's 2^21 32-bit samples
	}
	return &fir{pfs: pfs, n: n}
}

func (f *fir) Name() string {
	if f.pfs {
		return "fir-pfs"
	}
	return "fir"
}

func (f *fir) Setup(sys *core.System) {
	f.cores = sys.Cores()
	f.in = make([]float32, f.n)
	f.out = make([]float32, f.n-firTaps+1)
	r := newRNG(0xF1F1F1)
	for i := range f.in {
		f.in[i] = float32(r.float01()*2 - 1)
	}
	for j := range f.taps {
		f.taps[j] = float32(j+1) / (firTaps * 4)
	}
	f.inR = sys.AddressSpace().AllocArray("fir.in", f.n, 4)
	f.outR = sys.AddressSpace().AllocArray("fir.out", len(f.out), 4)
}

// firWorkPerElem is the issue cost of the 16 multiply-accumulates: two
// FPU slots per 3-wide instruction sustain 2 MACs per cycle.
const firWorkPerElem = 8

func (f *fir) compute(lo, hi int) {
	for i := lo; i < hi; i++ {
		var acc float32
		for j := 0; j < firTaps; j++ {
			acc += f.taps[j] * f.in[i+j]
		}
		f.out[i] = acc
	}
}

func (f *fir) Run(p *cpu.Proc) {
	lo, hi := span(len(f.out), f.cores, p.ID())
	if lo >= hi {
		return
	}
	if sm, ok := streamMem(p); ok {
		f.runSTR(p, sm, lo, hi)
	} else {
		f.runCC(p, lo, hi)
	}
}

// runCC streams through the strip in 2048-element blocks that fit the
// L1 alongside the output.
func (f *fir) runCC(p *cpu.Proc, lo, hi int) {
	const block = 2048
	for b := lo; b < hi; b += block {
		e := min(b+block, hi)
		n := uint64(e - b)
		p.LoadN(f.inR.Index(b, 4), 4, n+firTaps-1)
		f.compute(b, e)
		p.Work(n * firWorkPerElem)
		if f.pfs {
			p.StorePFSN(f.outR.Index(b, 4), 4, n)
		} else {
			p.StoreN(f.outR.Index(b, 4), 4, n)
		}
	}
}

// runSTR uses the paper's 128-element DMA transfers, double-buffered on
// both the input and output streams. The transfer-management overhead
// (the paper measured 14% more instructions than the caching version)
// comes from the per-element buffer bookkeeping plus per-transfer setup.
func (f *fir) runSTR(p *cpu.Proc, sm *stream.Mem, lo, hi int) {
	const block = 128 // elements per DMA transfer, as in the paper
	ls := sm.LocalStore()
	ls.Reset()
	ls.Alloc("in0", (block+firTaps)*4)
	ls.Alloc("in1", (block+firTaps)*4)
	ls.Alloc("out0", block*4)
	ls.Alloc("out1", block*4)

	type blk struct{ b, e int }
	var blocks []blk
	for b := lo; b < hi; b += block {
		blocks = append(blocks, blk{b, min(b+block, hi)})
	}
	getTag := sm.Get(p, f.inR.Index(blocks[0].b, 4), uint64(blocks[0].e-blocks[0].b+firTaps-1)*4)
	var prevPut dma.Tag
	havePrev := false
	for i, blkI := range blocks {
		cur := getTag
		if i+1 < len(blocks) {
			nb := blocks[i+1]
			getTag = sm.Get(p, f.inR.Index(nb.b, 4), uint64(nb.e-nb.b+firTaps-1)*4)
		}
		sm.Wait(p, cur)
		n := uint64(blkI.e - blkI.b)
		sm.LSLoadN(p, n)
		f.compute(blkI.b, blkI.e)
		p.Work(n * (firWorkPerElem + 1)) // +1: output-buffer bookkeeping
		sm.LSStoreN(p, n)
		if havePrev {
			sm.Wait(p, prevPut) // reclaim the other output buffer
		}
		prevPut = sm.Put(p, f.outR.Index(blkI.b, 4), n*4)
		havePrev = true
	}
	sm.Wait(p, prevPut)
}

// InlineBody implements core.InlineWorkload: the STR strip loop as a
// resumable state machine, so the core runs as an inline task with no
// goroutine. CC/INC cores return nil and keep the goroutine path (their
// memory models yield data-dependently inside Load/Store, which a flat
// machine cannot express).
func (f *fir) InlineBody(p *cpu.Proc) sim.Runnable {
	sm, ok := streamMem(p)
	if !ok {
		return nil
	}
	lo, hi := span(len(f.out), f.cores, p.ID())
	return &firSTR{f: f, p: p, sm: sm, lo: lo, hi: hi}
}

// firSTR's resume points. Every StatusRunning below sits exactly where
// runSTR's call chain would Sync (Get/Put setup, Wait's leading sync,
// WaitUntilDMA after an already-done tag), and the StatusBlocked where
// Wait would block on the engine — which is what keeps the inline and
// goroutine schedules identical.
const (
	fsSetup     = iota // allocate buffers, first get's setup
	fsFirstGet         // queue the first get, enter the loop
	fsLoopHead         // pick the block; prefetch setup or straight to wait
	fsNextGet          // queue the next block's get, wait on the current
	fsWaitCheck        // resolve the wait: charge, block, or fall through
	fsWaitWake         // woken from a blocked wait
	fsCompute          // filter the block, reclaim the previous put
	fsPutSetup         // output put's setup
	fsPut              // queue the put, next block
	fsDone
)

// firSTR is runSTR flattened: the loop indices and double-buffering
// tags live in the struct instead of on a goroutine stack, and the wait
// sub-machine (fsWait*) is shared by the input, reclaim and final waits
// via wret, the state to resume after the wait ends.
type firSTR struct {
	f      *fir
	p      *cpu.Proc
	sm     *stream.Mem
	lo, hi int

	pc       int
	blocks   []struct{ b, e int }
	i        int
	getTag   dma.Tag
	prevPut  dma.Tag
	havePrev bool

	wtag    dma.Tag
	wret    int
	wbefore sim.Time
}

// wait routes the machine into the shared wait sub-machine: yield for
// Wait's leading sync, then resume at ret.
func (w *firSTR) wait(tag dma.Tag, ret int) sim.Status {
	w.wtag, w.wret = tag, ret
	w.pc = fsWaitCheck
	return sim.StatusRunning
}

func (w *firSTR) Step(t *sim.Task) sim.Status {
	f, p, sm := w.f, w.p, w.sm
	const block = 128 // elements per DMA transfer, as in the paper
	for {
		switch w.pc {
		case fsSetup:
			if w.lo >= w.hi {
				return sim.StatusDone // idle core: straight to Finish
			}
			ls := sm.LocalStore()
			ls.Reset()
			ls.Alloc("in0", (block+firTaps)*4)
			ls.Alloc("in1", (block+firTaps)*4)
			ls.Alloc("out0", block*4)
			ls.Alloc("out1", block*4)
			for b := w.lo; b < w.hi; b += block {
				w.blocks = append(w.blocks, struct{ b, e int }{b, min(b+block, w.hi)})
			}
			sm.QueueSetup(p)
			w.pc = fsFirstGet
			return sim.StatusRunning
		case fsFirstGet:
			b0 := w.blocks[0]
			w.getTag = sm.QueueGet(p, f.inR.Index(b0.b, 4), uint64(b0.e-b0.b+firTaps-1)*4)
			w.pc = fsLoopHead
		case fsLoopHead:
			if w.i >= len(w.blocks) {
				return w.wait(w.prevPut, fsDone)
			}
			if w.i+1 < len(w.blocks) {
				sm.QueueSetup(p)
				w.pc = fsNextGet
				return sim.StatusRunning
			}
			return w.wait(w.getTag, fsCompute)
		case fsNextGet:
			cur := w.getTag
			nb := w.blocks[w.i+1]
			w.getTag = sm.QueueGet(p, f.inR.Index(nb.b, 4), uint64(nb.e-nb.b+firTaps-1)*4)
			return w.wait(cur, fsCompute)
		case fsWaitCheck:
			w.wbefore = p.Now()
			done, charge, blocked := sm.WaitCheck(p, w.wtag)
			if charge {
				p.ChargeDMAWait(done)
				w.pc = w.wret
				return sim.StatusRunning
			}
			if blocked {
				w.pc = fsWaitWake
				return sim.StatusBlocked
			}
			w.pc = w.wret
		case fsWaitWake:
			sm.WaitFinish(p, w.wtag, w.wbefore)
			w.pc = w.wret
		case fsCompute:
			blkI := w.blocks[w.i]
			n := uint64(blkI.e - blkI.b)
			sm.LSLoadN(p, n)
			f.compute(blkI.b, blkI.e)
			p.Work(n * (firWorkPerElem + 1)) // +1: output-buffer bookkeeping
			sm.LSStoreN(p, n)
			if w.havePrev {
				return w.wait(w.prevPut, fsPutSetup) // reclaim the other output buffer
			}
			w.pc = fsPutSetup
		case fsPutSetup:
			sm.QueueSetup(p)
			w.pc = fsPut
			return sim.StatusRunning
		case fsPut:
			blkI := w.blocks[w.i]
			n := uint64(blkI.e - blkI.b)
			w.prevPut = sm.QueuePut(p, f.outR.Index(blkI.b, 4), n*4)
			w.havePrev = true
			w.i++
			w.pc = fsLoopHead
		case fsDone:
			return sim.StatusDone
		}
	}
}

func (f *fir) Verify() error {
	for i := range f.out {
		var want float32
		for j := 0; j < firTaps; j++ {
			want += f.taps[j] * f.in[i+j]
		}
		if f.out[i] != want {
			return fmt.Errorf("fir: out[%d] = %v, want %v", i, f.out[i], want)
		}
	}
	return nil
}

package workload

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/stream"
	"repro/internal/syncprim"
)

func init() {
	Register("mergesort", func(s Scale) core.Workload { return newMergeSort(s, false) })
	Register("mergesort-pfs", func(s Scale) core.Workload { return newMergeSort(s, true) })
}

// mergeChunk is the initial quicksort granule ("The processors first
// sort chunks of 4096 keys in parallel using quicksort").
const mergeChunk = 4096

// mergeSort sorts 32-bit keys: parallel quicksort of 4096-key chunks,
// then pairwise merge levels whose parallelism halves every level
// ("MergeSort gradually reduces in parallelism as it progresses"). It
// alternates output between two buffer arrays, as the paper describes.
type mergeSort struct {
	pfs   bool
	n     int
	keys  []uint32 // original input (kept for verification)
	a, b  []uint32 // ping-pong buffers
	aR    mem.Region
	bR    mem.Region
	final []uint32 // which buffer holds the result
	cores int

	chunkQ  *syncprim.TaskQueue
	levelQ  *syncprim.TaskQueue
	barrier *syncprim.Barrier
}

func newMergeSort(s Scale, pfs bool) *mergeSort {
	n := 1 << 18
	switch s {
	case ScaleSmall:
		n = 1 << 14
	case ScalePaper:
		n = 1 << 19 // the paper's 2^19 32-bit keys (2 MB)
	}
	return &mergeSort{pfs: pfs, n: n}
}

func (m *mergeSort) Name() string {
	if m.pfs {
		return "mergesort-pfs"
	}
	return "mergesort"
}

func (m *mergeSort) Setup(sys *core.System) {
	m.cores = sys.Cores()
	m.keys = make([]uint32, m.n)
	r := newRNG(0x5027ED)
	for i := range m.keys {
		m.keys[i] = uint32(r.next())
	}
	m.a = make([]uint32, m.n)
	copy(m.a, m.keys)
	m.b = make([]uint32, m.n)
	m.aR = sys.AddressSpace().AllocArray("ms.a", m.n, 4)
	m.bR = sys.AddressSpace().AllocArray("ms.b", m.n, 4)
	m.chunkQ = syncprim.NewTaskQueue("ms.chunks", m.n/mergeChunk)
	m.levelQ = syncprim.NewTaskQueue("ms.level", 0)
	m.barrier = syncprim.NewBarrier("ms.bar", m.cores)
}

// quickInstr approximates the quicksort instruction count for n keys:
// about 4 issue slots per compare/swap over n·log2(n) steps.
func quickInstr(n int) uint64 {
	log := 0
	for v := n; v > 1; v >>= 1 {
		log++
	}
	return uint64(4 * n * log)
}

// mergeWorkPerElem is the merge inner loop cost: compare, select, copy,
// advance, loop bound check.
const mergeWorkPerElem = 6

func (m *mergeSort) Run(p *cpu.Proc) {
	sm, isSTR := streamMem(p)

	// Phase 1: quicksort 4096-key chunks off the task queue.
	for {
		idx := m.chunkQ.Next(p)
		if idx < 0 {
			break
		}
		lo, hi := idx*mergeChunk, (idx+1)*mergeChunk
		seg := m.a[lo:hi]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		if isSTR {
			// The 16 KB chunk is DMA'd in, sorted in the local store,
			// and DMA'd back. It fills most of the store, so this phase
			// is single-buffered, as on Cell-style machines.
			tag := sm.Get(p, m.aR.Index(lo, 4), mergeChunk*4)
			sm.Wait(p, tag)
			p.Work(quickInstr(mergeChunk))
			sm.LSLoadN(p, mergeChunk)
			sm.LSStoreN(p, mergeChunk)
			out := sm.Put(p, m.aR.Index(lo, 4), mergeChunk*4)
			sm.Wait(p, out)
		} else {
			p.LoadN(m.aR.Index(lo, 4), 4, mergeChunk)
			p.Work(quickInstr(mergeChunk))
			p.StoreN(m.aR.Index(lo, 4), 4, mergeChunk)
		}
	}
	m.barrier.Wait(p)

	// Phase 2: merge levels. Core 0 refills the task queue per level;
	// all cores synchronize between levels.
	src, dst := m.a, m.b
	srcR, dstR := m.aR, m.bR
	for run := mergeChunk; run < m.n; run *= 2 {
		if p.ID() == 0 {
			m.levelQ.Reset(m.n / (2 * run))
		}
		m.barrier.Wait(p)
		for {
			idx := m.levelQ.Next(p)
			if idx < 0 {
				break
			}
			lo := idx * 2 * run
			if isSTR {
				m.mergeSTR(p, sm, src, dst, srcR, dstR, lo, run)
			} else {
				m.mergeCC(p, src, dst, srcR, dstR, lo, run)
			}
		}
		m.barrier.Wait(p)
		src, dst = dst, src
		srcR, dstR = dstR, srcR
	}
	m.final = src
}

// mergeCC merges src[lo:lo+run] and src[lo+run:lo+2run] into dst,
// streaming through the caches in 2048-element blocks.
func (m *mergeSort) mergeCC(p *cpu.Proc, src, dst []uint32, srcR, dstR mem.Region, lo, run int) {
	const block = 2048
	ai, bi := lo, lo+run
	aEnd, bEnd := lo+run, lo+2*run
	aLoaded, bLoaded := ai, bi
	for out := lo; out < lo+2*run; out += block {
		outEnd := min(out+block, lo+2*run)
		n := outEnd - out
		// Worst case this block consumes n from either input; fetch
		// what is not yet resident.
		needA := min(ai+n, aEnd)
		if needA > aLoaded {
			p.LoadN(srcR.Index(aLoaded, 4), 4, uint64(needA-aLoaded))
			aLoaded = needA
		}
		needB := min(bi+n, bEnd)
		if needB > bLoaded {
			p.LoadN(srcR.Index(bLoaded, 4), 4, uint64(needB-bLoaded))
			bLoaded = needB
		}
		for o := out; o < outEnd; o++ {
			if ai < aEnd && (bi >= bEnd || src[ai] <= src[bi]) {
				dst[o] = src[ai]
				ai++
			} else {
				dst[o] = src[bi]
				bi++
			}
		}
		p.Work(uint64(n) * mergeWorkPerElem)
		if m.pfs {
			p.StorePFSN(dstR.Index(out, 4), 4, uint64(n))
		} else {
			p.StoreN(dstR.Index(out, 4), 4, uint64(n))
		}
	}
}

// mergeSTR merges with double-buffered DMA input streams and a drained
// output buffer. The inner loop pays extra compares to check for buffer
// exhaustion ("the inner loop executes extra comparisons to check if an
// output buffer is full and needs to be drained to main memory").
func (m *mergeSort) mergeSTR(p *cpu.Proc, sm *stream.Mem, src, dst []uint32, srcR, dstR mem.Region, lo, run int) {
	const block = 1024
	sm.LocalStore().Reset()
	sm.LocalStore().Alloc("mergeBufs", 6*block*4) // 2 per stream: A, B, out
	inA := newStrIn(p, sm, srcR.Index(lo, 4), 4, run, block)
	inB := newStrIn(p, sm, srcR.Index(lo+run, 4), 4, run, block)
	out := newStrOut(p, sm, dstR.Index(lo, 4), 4, block)
	ai, bi := lo, lo+run
	aEnd, bEnd := lo+run, lo+2*run
	for o := lo; o < lo+2*run; o += block {
		oEnd := min(o+block, lo+2*run)
		n := oEnd - o
		inA.ensure(min(n, aEnd-ai))
		inB.ensure(min(n, bEnd-bi))
		a0, b0 := ai, bi
		for j := o; j < oEnd; j++ {
			if ai < aEnd && (bi >= bEnd || src[ai] <= src[bi]) {
				dst[j] = src[ai]
				ai++
			} else {
				dst[j] = src[bi]
				bi++
			}
		}
		inA.consume(ai - a0)
		inB.consume(bi - b0)
		p.Work(uint64(n) * (mergeWorkPerElem + 2)) // +2: buffer checks
		out.produce(n)
	}
	out.flush()
}

func (m *mergeSort) Verify() error {
	if m.final == nil {
		return fmt.Errorf("mergesort: no result recorded")
	}
	want := make([]uint32, m.n)
	copy(want, m.keys)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if m.final[i] != want[i] {
			return fmt.Errorf("mergesort: result[%d] = %d, want %d", i, m.final[i], want[i])
		}
	}
	return nil
}

package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/syncprim"
)

func init() {
	Register("raytracer", func(s Scale) core.Workload { return newRaytracer(s) })
}

// vec3 is a 3-component vector for the raytracer's geometry.
type vec3 struct{ x, y, z float64 }

func (a vec3) sub(b vec3) vec3 { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) cross(b vec3) vec3 {
	return vec3{a.y*b.z - a.z*b.y, a.z*b.x - a.x*b.z, a.x*b.y - a.y*b.x}
}
func (a vec3) dot(b vec3) float64 { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec3) norm() vec3 {
	l := math.Sqrt(a.dot(a))
	return vec3{a.x / l, a.y / l, a.z / l}
}

type triangle struct {
	a, b, c vec3
	normal  vec3
}

type kdNode struct {
	axis     int8 // 0,1,2; 3 = leaf
	split    float64
	left     int32 // child index; for leaves, start into triIdx
	right    int32 // child index; for leaves, end into triIdx
	min, max vec3  // node bounds
}

// raytracer is the KD-tree ray tracer, parallelized across camera rays
// in chunks ("We assign rays to processors in chunks to improve
// locality"). Tree traversal is irregular pointer-chasing over the node
// array. Per the paper, the streaming version also "reads the KD-tree
// from the cache instead of streaming it with a DMA controller" — its
// accesses go through the small 8 KB cache — while the framebuffer is
// written with DMA.
type raytracer struct {
	size  int // image is size x size
	nTris int

	tris   []triangle
	triIdx []int32
	nodes  []kdNode
	img    []byte

	nodeR mem.Region
	triR  mem.Region
	imgR  mem.Region

	cores int
	wq    *syncprim.TaskQueue
}

func newRaytracer(s Scale) *raytracer {
	r := &raytracer{size: 64, nTris: 2048}
	switch s {
	case ScaleSmall:
		r.size, r.nTris = 32, 384
	case ScalePaper:
		r.size, r.nTris = 128, 16371 // "128x128, 16371 triangles"
	}
	return r
}

func (r *raytracer) Name() string { return "raytracer" }

const kdLeafTris = 8

func (r *raytracer) Setup(sys *core.System) {
	r.cores = sys.Cores()
	rg := newRNG(0x3A7)
	for i := 0; i < r.nTris; i++ {
		c := vec3{rg.float01(), rg.float01(), rg.float01()}
		e1 := vec3{(rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1}
		e2 := vec3{(rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1, (rg.float01() - 0.5) * 0.1}
		t := triangle{a: c, b: vec3{c.x + e1.x, c.y + e1.y, c.z + e1.z}, c: vec3{c.x + e2.x, c.y + e2.y, c.z + e2.z}}
		n := e1.cross(e2)
		if n.dot(n) < 1e-12 {
			n = vec3{0, 0, 1}
		}
		t.normal = n.norm()
		r.tris = append(r.tris, t)
	}
	idx := make([]int32, r.nTris)
	for i := range idx {
		idx[i] = int32(i)
	}
	r.buildKD(idx, 0)
	r.img = make([]byte, r.size*r.size)
	as := sys.AddressSpace()
	r.nodeR = as.AllocArray("rt.nodes", len(r.nodes), 32)
	r.triR = as.AllocArray("rt.tris", len(r.triIdx), 48)
	r.imgR = as.Alloc("rt.img", uint64(r.size*r.size))
	// 8x8 ray tiles dispensed dynamically: plenty of chunks per core so
	// the task queue absorbs per-tile cost variance.
	tiles := (r.size / rtTile) * (r.size / rtTile)
	if tiles == 0 {
		tiles = 1
	}
	r.wq = syncprim.NewTaskQueue("rt.tiles", tiles)
}

// triBounds returns the tight bounding box of a triangle set.
func (r *raytracer) triBounds(idx []int32) (lo, hi vec3) {
	inf := math.Inf(1)
	lo, hi = vec3{inf, inf, inf}, vec3{-inf, -inf, -inf}
	grow := func(v vec3) {
		lo.x = math.Min(lo.x, v.x)
		lo.y = math.Min(lo.y, v.y)
		lo.z = math.Min(lo.z, v.z)
		hi.x = math.Max(hi.x, v.x)
		hi.y = math.Max(hi.y, v.y)
		hi.z = math.Max(hi.z, v.z)
	}
	for _, ti := range idx {
		t := &r.tris[ti]
		grow(t.a)
		grow(t.b)
		grow(t.c)
	}
	return lo, hi
}

// buildKD builds a median-split spatial tree, returning the node index.
// Triangles are partitioned by centroid and each child keeps the tight
// bounds of its own triangles (a triangle straddling the split plane
// stays fully inside one child's box), so traversal never misses
// geometry — the robust variant of the paper's KD-tree acceleration
// structure, with the same irregular pointer-chasing access pattern.
func (r *raytracer) buildKD(idx []int32, depth int) int32 {
	me := int32(len(r.nodes))
	lo, hi := r.triBounds(idx)
	r.nodes = append(r.nodes, kdNode{min: lo, max: hi})
	if len(idx) <= kdLeafTris || depth >= 16 {
		start := int32(len(r.triIdx))
		r.triIdx = append(r.triIdx, idx...)
		r.nodes[me] = kdNode{axis: 3, left: start, right: start + int32(len(idx)), min: lo, max: hi}
		return me
	}
	ext := hi.sub(lo)
	axis := 0
	if ext.y > ext.x {
		axis = 1
	}
	if ext.z > ext.x && ext.z > ext.y {
		axis = 2
	}
	centroid := func(t triangle) float64 {
		switch axis {
		case 0:
			return (t.a.x + t.b.x + t.c.x) / 3
		case 1:
			return (t.a.y + t.b.y + t.c.y) / 3
		}
		return (t.a.z + t.b.z + t.c.z) / 3
	}
	sorted := append([]int32(nil), idx...)
	sort.Slice(sorted, func(i, j int) bool {
		return centroid(r.tris[sorted[i]]) < centroid(r.tris[sorted[j]])
	})
	mid := len(sorted) / 2
	split := centroid(r.tris[sorted[mid]])
	left := r.buildKD(sorted[:mid], depth+1)
	right := r.buildKD(sorted[mid:], depth+1)
	r.nodes[me] = kdNode{axis: int8(axis), split: split, left: left, right: right, min: lo, max: hi}
	return me
}

// intersect runs Möller–Trumbore, returning the hit distance or +Inf.
func intersect(t *triangle, orig, dir vec3) float64 {
	e1 := t.b.sub(t.a)
	e2 := t.c.sub(t.a)
	p := dir.cross(e2)
	det := e1.dot(p)
	if det > -1e-12 && det < 1e-12 {
		return math.Inf(1)
	}
	inv := 1 / det
	tv := orig.sub(t.a)
	u := tv.dot(p) * inv
	if u < 0 || u > 1 {
		return math.Inf(1)
	}
	q := tv.cross(e1)
	v := dir.dot(q) * inv
	if v < 0 || u+v > 1 {
		return math.Inf(1)
	}
	d := e2.dot(q) * inv
	if d < 1e-9 {
		return math.Inf(1)
	}
	return d
}

// tracePixel traces one primary ray, returning the shade. When the
// visit slices are non-nil it records the node and triangle indices
// actually touched, which the caller replays as memory accesses.
func (r *raytracer) tracePixel(px, py int, vNodes, vTris *[]int32) byte {
	u := (float64(px) + 0.5) / float64(r.size)
	v := (float64(py) + 0.5) / float64(r.size)
	orig := vec3{u, v, -1.5}
	dir := vec3{(u - 0.5) * 0.2, (v - 0.5) * 0.2, 1}.norm()
	light := vec3{0.3, 0.8, -0.5}.norm()

	type stackEnt struct{ node int32 }
	var stack [32]stackEnt
	sp := 0
	stack[sp] = stackEnt{0}
	sp++
	best := math.Inf(1)
	bestTri := -1
	for sp > 0 {
		sp--
		ni := stack[sp].node
		n := &r.nodes[ni]
		if vNodes != nil {
			*vNodes = append(*vNodes, ni)
		}
		if !rayBoxHit(orig, dir, n.min, n.max, best) {
			continue
		}
		if n.axis == 3 {
			for _, ti := range r.triIdx[n.left:n.right] {
				if vTris != nil {
					*vTris = append(*vTris, ti)
				}
				if d := intersect(&r.tris[ti], orig, dir); d < best {
					best = d
					bestTri = int(ti)
				}
			}
			continue
		}
		// Push far child first so the near one pops first.
		var o, dd float64
		switch n.axis {
		case 0:
			o, dd = orig.x, dir.x
		case 1:
			o, dd = orig.y, dir.y
		default:
			o, dd = orig.z, dir.z
		}
		near, far := n.left, n.right
		if o > n.split || (o == n.split && dd < 0) {
			near, far = far, near
		}
		_ = dd
		stack[sp] = stackEnt{far}
		sp++
		stack[sp] = stackEnt{near}
		sp++
	}
	if bestTri < 0 {
		return 0
	}
	shade := r.tris[bestTri].normal.dot(light)
	if shade < 0 {
		shade = -shade
	}
	return byte(40 + shade*200)
}

// rayBoxHit is a slab test bounded by the current best hit.
func rayBoxHit(orig, dir, lo, hi vec3, best float64) bool {
	tmin, tmax := 0.0, best
	for a := 0; a < 3; a++ {
		var o, d, l, h float64
		switch a {
		case 0:
			o, d, l, h = orig.x, dir.x, lo.x, hi.x
		case 1:
			o, d, l, h = orig.y, dir.y, lo.y, hi.y
		default:
			o, d, l, h = orig.z, dir.z, lo.z, hi.z
		}
		if d > -1e-12 && d < 1e-12 {
			if o < l || o > h {
				return false
			}
			continue
		}
		t0 := (l - o) / d
		t1 := (h - o) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tmin {
			tmin = t0
		}
		if t1 < tmax {
			tmax = t1
		}
		if tmin > tmax {
			return false
		}
	}
	return true
}

// Issue costs per traversal event.
const (
	workPerNode  = 14
	workPerTri   = 45
	workPerRay   = 30
	workPerShade = 12
)

// rtTile is the ray-chunk edge length.
const rtTile = 8

func (r *raytracer) Run(p *cpu.Proc) {
	sm, isSTR := streamMem(p)
	tilesPerRow := r.size / rtTile
	if tilesPerRow == 0 {
		tilesPerRow = 1
	}
	tile := min(rtTile, r.size)
	var vNodes, vTris []int32
	for {
		ti := r.wq.Next(p)
		if ti < 0 {
			return
		}
		tx, ty := (ti%tilesPerRow)*tile, (ti/tilesPerRow)*tile
		for py := ty; py < ty+tile; py++ {
			for px := tx; px < tx+tile; px++ {
				vNodes, vTris = vNodes[:0], vTris[:0]
				r.img[py*r.size+px] = r.tracePixel(px, py, &vNodes, &vTris)
				// Both models read the tree through their cache (the
				// paper's streaming version does not DMA the KD-tree),
				// so the hot top of the tree stays resident.
				for _, ni := range vNodes {
					p.Load(r.nodeR.Index(int(ni), 32))
				}
				for _, ti := range vTris {
					p.LoadN(r.triR.Index(int(ti), 48), 16, 3)
				}
				p.Work(uint64(len(vNodes)*workPerNode + len(vTris)*workPerTri + workPerRay + workPerShade))
			}
			// Framebuffer row of the tile.
			if isSTR {
				sm.LSStoreN(p, uint64(tile)/4)
				pt := sm.Put(p, r.imgR.At(uint64(py*r.size+tx)), uint64(tile))
				if py == ty+tile-1 {
					sm.Wait(p, pt)
				}
			} else {
				p.StoreN(r.imgR.At(uint64(py*r.size+tx)), 4, uint64(tile)/4)
			}
		}
	}
}

func (r *raytracer) Verify() error {
	for py := 0; py < r.size; py++ {
		for px := 0; px < r.size; px++ {
			want := r.tracePixel(px, py, nil, nil)
			if got := r.img[py*r.size+px]; got != want {
				return fmt.Errorf("raytracer: pixel (%d,%d) = %d, want %d", px, py, got, want)
			}
		}
	}
	return nil
}

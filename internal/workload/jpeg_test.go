package workload

import (
	"testing"

	"repro/internal/core"
)

func TestDCTRoundTrip(t *testing.T) {
	var blk, coef, back [64]int32
	r := newRNG(7)
	for i := range blk {
		blk[i] = int32(r.intn(256)) - 128
	}
	fdct8(&blk, &coef)
	idct8(&coef, &back)
	for i := range blk {
		d := blk[i] - back[i]
		if d < -1 || d > 1 {
			t.Fatalf("DCT round trip error at %d: %d vs %d", i, blk[i], back[i])
		}
	}
}

func TestDCTDCCoefficient(t *testing.T) {
	var blk, coef [64]int32
	for i := range blk {
		blk[i] = 100
	}
	fdct8(&blk, &coef)
	if coef[0] != 800 { // 8 * mean
		t.Errorf("DC coefficient = %d, want 800", coef[0])
	}
	for i := 1; i < 64; i++ {
		if coef[i] != 0 {
			t.Errorf("AC coefficient %d = %d, want 0 for flat block", i, coef[i])
		}
	}
}

func TestRLERoundTrip(t *testing.T) {
	var coef [64]int32
	coef[0] = 42
	coef[8] = -7
	coef[63] = 3
	data := rleEncode(&coef, nil)
	var back [64]int32
	rest := rleDecode(data, &back)
	if len(rest) != 0 {
		t.Errorf("%d bytes left after decode", len(rest))
	}
	for i := range coef {
		if coef[i] != back[i] {
			t.Fatalf("RLE round trip differs at %d: %d vs %d", i, coef[i], back[i])
		}
	}
}

func TestQuantizeRounds(t *testing.T) {
	var c [64]int32
	c[0] = 33 // /16 -> 2.06 -> 2
	c[1] = -28
	quantize(&c, &jpegQuant)
	if c[0] != 2 {
		t.Errorf("quantize(33/16) = %d, want 2", c[0])
	}
	if c[1] != -3 { // -28/11 = -2.55 -> -3
		t.Errorf("quantize(-28/11) = %d, want -3", c[1])
	}
}

func TestJPEGEncodeBothModels(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		runWL(t, "jpeg-encode", model, 4, nil)
	}
}

func TestJPEGDecodeBothModels(t *testing.T) {
	for _, model := range []core.Model{core.CC, core.STR} {
		runWL(t, "jpeg-decode", model, 4, nil)
	}
}

func TestJPEGDecodeWriteHeavy(t *testing.T) {
	enc := runWL(t, "jpeg-encode", core.CC, 2, nil)
	dec := runWL(t, "jpeg-decode", core.CC, 2, nil)
	// "Encode reads a lot of data but outputs little; Decode behaves in
	// the opposite way." Compare L1 write/read mixes.
	encRatio := float64(enc.L1.Writes) / float64(enc.L1.Reads+1)
	decRatio := float64(dec.L1.Writes) / float64(dec.L1.Reads+1)
	if decRatio <= encRatio {
		t.Errorf("decode write/read ratio %.2f <= encode %.2f", decRatio, encRatio)
	}
}

func TestJPEGDecodeSTRSavesRefills(t *testing.T) {
	cc := runWL(t, "jpeg-decode", core.CC, 4, nil)
	str := runWL(t, "jpeg-decode", core.STR, 4, nil)
	// CC refills output frames on store misses; STR writes full lines
	// via DMA. Compare memory-system read requests.
	if cc.Unc.ReadRequests <= str.Unc.ReadRequests {
		t.Errorf("CC read requests %d <= STR %d; expected output refills", cc.Unc.ReadRequests, str.Unc.ReadRequests)
	}
}

// Package lstore models the streaming model's per-core local store
// (Section 3.3): a 24 KB explicitly managed RAM with a single port,
// indexed as a random-access memory. It has no tags or control bits, so
// its per-access energy is lower than a cache's; the energy model reads
// the access counters kept here.
//
// Capacity management is software's job in a streaming system, so the
// allocator is explicit: workloads allocate buffers (typically two per
// stream, for double-buffering) and must fit in 24 KB or the allocation
// panics — exactly the discipline the paper's applications had to follow.
package lstore

import "fmt"

// DefaultSize is the paper's local store capacity.
const DefaultSize = 24 * 1024

// Stats counts local-store port activity.
type Stats struct {
	Reads  uint64
	Writes uint64
	// DMABeats counts 32-byte DMA transfers into or out of the store.
	DMABeats uint64
}

// Buffer is an allocated range of the local store.
type Buffer struct {
	Name string
	Off  uint64
	Size uint64
}

// Store is one core's local store.
type Store struct {
	size  uint64
	next  uint64
	bufs  []Buffer
	stats Stats
}

// New returns an empty local store of the given size.
func New(size uint64) *Store {
	if size == 0 {
		size = DefaultSize
	}
	return &Store{size: size}
}

// Size returns the store capacity in bytes.
func (s *Store) Size() uint64 { return s.size }

// Free returns the unallocated capacity.
func (s *Store) Free() uint64 { return s.size - s.next }

// Alloc reserves n bytes, 32-byte aligned. It panics when the store
// overflows: a streaming workload that does not fit its blocking factor
// into the local store is mis-blocked, which software must fix (the
// hardware has no fallback).
func (s *Store) Alloc(name string, n uint64) Buffer {
	off := (s.next + 31) &^ 31
	if off+n > s.size {
		panic(fmt.Sprintf("lstore: %q (%d bytes) overflows local store (%d of %d used); reduce the blocking factor", name, n, s.next, s.size))
	}
	b := Buffer{Name: name, Off: off, Size: n}
	s.next = off + n
	s.bufs = append(s.bufs, b)
	return b
}

// Reset frees all allocations (between workload phases).
func (s *Store) Reset() {
	s.next = 0
	s.bufs = nil
}

// CountRead records n core reads of the local store.
func (s *Store) CountRead(n uint64) { s.stats.Reads += n }

// CountWrite records n core writes of the local store.
func (s *Store) CountWrite(n uint64) { s.stats.Writes += n }

// CountDMABeat records one 32-byte DMA beat on the port.
func (s *Store) CountDMABeat() { s.stats.DMABeats++ }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats { return s.stats }

// FIFO is the hardware FIFO view of a local-store buffer that Table 2's
// streaming cores provide ("The cores can access their local stores as
// FIFO queues or as randomly indexed structures"). The paper's
// applications did not use it; it is provided for completeness and for
// producer/consumer kernels written against this library.
type FIFO struct {
	store    *Store
	buf      Buffer
	elemSize uint64
	head     uint64 // elements pushed
	tail     uint64 // elements popped
}

// NewFIFO wraps an allocated buffer as a FIFO of elemSize elements.
func (s *Store) NewFIFO(buf Buffer, elemSize uint64) *FIFO {
	if elemSize == 0 || buf.Size < elemSize {
		panic("lstore: FIFO element larger than buffer")
	}
	return &FIFO{store: s, buf: buf, elemSize: elemSize}
}

// Cap returns the FIFO capacity in elements.
func (f *FIFO) Cap() uint64 { return f.buf.Size / f.elemSize }

// Len returns the number of queued elements.
func (f *FIFO) Len() uint64 { return f.head - f.tail }

// Push enqueues one element, counting a local-store write. It reports
// whether there was room (a full FIFO rejects the push; hardware would
// stall the producer).
func (f *FIFO) Push() bool {
	if f.Len() == f.Cap() {
		return false
	}
	f.head++
	f.store.CountWrite(1)
	return true
}

// Pop dequeues one element, counting a local-store read. It reports
// whether an element was available.
func (f *FIFO) Pop() bool {
	if f.Len() == 0 {
		return false
	}
	f.tail++
	f.store.CountRead(1)
	return true
}

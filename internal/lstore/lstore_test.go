package lstore

import "testing"

func TestAllocAligned(t *testing.T) {
	s := New(0)
	if s.Size() != DefaultSize {
		t.Errorf("default size = %d, want %d", s.Size(), DefaultSize)
	}
	a := s.Alloc("a", 10)
	b := s.Alloc("b", 100)
	if a.Off%32 != 0 || b.Off%32 != 0 {
		t.Errorf("allocations not 32-byte aligned: %d, %d", a.Off, b.Off)
	}
	if b.Off < a.Off+a.Size {
		t.Error("allocations overlap")
	}
}

func TestAllocOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on local store overflow")
		}
	}()
	s := New(1024)
	s.Alloc("big", 2048)
}

func TestDoubleBufferFitsExactly(t *testing.T) {
	// The classic streaming layout: two input and two output buffers.
	s := New(DefaultSize)
	for i := 0; i < 4; i++ {
		s.Alloc("buf", 6*1024)
	}
	if s.Free() != 0 {
		t.Errorf("free = %d, want 0", s.Free())
	}
}

func TestReset(t *testing.T) {
	s := New(1024)
	s.Alloc("x", 512)
	s.Reset()
	s.Alloc("y", 1024) // fits again after reset
}

func TestCounters(t *testing.T) {
	s := New(0)
	s.CountRead(5)
	s.CountWrite(3)
	s.CountDMABeat()
	st := s.Stats()
	if st.Reads != 5 || st.Writes != 3 || st.DMABeats != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFIFOPushPop(t *testing.T) {
	s := New(1024)
	f := s.NewFIFO(s.Alloc("q", 64), 8) // 8 elements
	if f.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", f.Cap())
	}
	for i := 0; i < 8; i++ {
		if !f.Push() {
			t.Fatalf("push %d rejected", i)
		}
	}
	if f.Push() {
		t.Error("push into full FIFO accepted")
	}
	for i := 0; i < 8; i++ {
		if !f.Pop() {
			t.Fatalf("pop %d failed", i)
		}
	}
	if f.Pop() {
		t.Error("pop from empty FIFO succeeded")
	}
	st := s.Stats()
	if st.Writes != 8 || st.Reads != 8 {
		t.Errorf("port accounting: %+v", st)
	}
}

func TestFIFOWrapsAround(t *testing.T) {
	s := New(1024)
	f := s.NewFIFO(s.Alloc("q", 32), 8) // 4 elements
	for round := 0; round < 10; round++ {
		if !f.Push() || !f.Push() {
			t.Fatal("push failed")
		}
		if !f.Pop() || !f.Pop() {
			t.Fatal("pop failed")
		}
	}
	if f.Len() != 0 {
		t.Errorf("len = %d after balanced rounds", f.Len())
	}
}

package uncore

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

func newUncore() *Uncore {
	return New(DefaultConfig(), noc.New(noc.DefaultConfig(16)))
}

func TestReadLineMissThenHit(t *testing.T) {
	u := newUncore()
	done1, hit1 := u.ReadLine(0, 0, 0x1000)
	if hit1 {
		t.Fatal("cold read should miss L2")
	}
	// A second read of the same line, long after, should hit the L2 and
	// be much faster.
	at := done1 + 1000*sim.Nanosecond
	done2, hit2 := u.ReadLine(at, 0, 0x1000)
	if !hit2 {
		t.Fatal("second read should hit L2")
	}
	if done2-at >= done1 {
		t.Errorf("L2 hit latency %v not better than miss %v", done2-at, done1)
	}
	if done1 < 70*sim.Nanosecond {
		t.Errorf("miss latency %v below DRAM latency", done1)
	}
}

func TestFullLineWriteAvoidsRefill(t *testing.T) {
	u := newUncore()
	u.WriteLine(0, 0, 0x2000, mem.LineSize, true)
	if got := u.DRAM().Stats().ReadBytes; got != 0 {
		t.Errorf("full-line write miss caused %d bytes of DRAM reads; want 0", got)
	}
	if u.Stats().L2WriteNoFill != 1 {
		t.Errorf("L2WriteNoFill = %d, want 1", u.Stats().L2WriteNoFill)
	}
}

func TestPartialWriteRefills(t *testing.T) {
	u := newUncore()
	u.WriteLine(0, 0, 0x3000, 8, false)
	if got := u.DRAM().Stats().ReadBytes; got != mem.LineSize {
		t.Errorf("partial write refill read %d bytes, want %d", got, mem.LineSize)
	}
	if u.Stats().L2Refills != 1 {
		t.Errorf("L2Refills = %d, want 1", u.Stats().L2Refills)
	}
}

func TestDirtyL2EvictionWritesDRAM(t *testing.T) {
	u := newUncore()
	// Fill one L2 set (16 ways) with dirty lines, then one more to force
	// a dirty eviction. Lines mapping to set 0: addr = i * nsets * 32.
	setStride := uint64(u.Config().L2Size) / uint64(u.Config().L2Assoc) // bytes covered by one way pass
	var at sim.Time
	for i := 0; i <= 16; i++ {
		at = u.WriteLine(at, 0, mem.Addr(uint64(i)*setStride), mem.LineSize, true)
	}
	if wb := u.Stats().L2Writebacks; wb != 1 {
		t.Errorf("L2Writebacks = %d, want 1", wb)
	}
	if got := u.DRAM().Stats().WriteBytes; got != mem.LineSize {
		t.Errorf("DRAM write bytes = %d, want %d", got, mem.LineSize)
	}
}

func TestReadLineUncachedDoesNotAllocate(t *testing.T) {
	u := newUncore()
	u.ReadLineUncached(0, 0, 0x4000)
	if occ := u.L2().Occupancy(); occ != 0 {
		t.Errorf("uncached read allocated %d L2 lines", occ)
	}
	// But it can still hit a line someone else allocated.
	u.WriteLine(0, 0, 0x5000, mem.LineSize, true)
	before := u.DRAM().Stats().Reads
	u.ReadLineUncached(10000, 0, 0x5000)
	if u.DRAM().Stats().Reads != before {
		t.Error("uncached read of L2-resident line went to DRAM")
	}
}

func TestFlushDirty(t *testing.T) {
	u := newUncore()
	u.WriteLine(0, 0, 0x6000, mem.LineSize, true)
	u.WriteLine(0, 0, 0x7000, mem.LineSize, true)
	u.FlushDirty(1000000)
	if got := u.DRAM().Stats().WriteBytes; got != 2*mem.LineSize {
		t.Errorf("flushed %d bytes, want %d", got, 2*mem.LineSize)
	}
	if u.L2().Occupancy() != 0 {
		t.Error("L2 not empty after flush")
	}
}

func TestL2PortSerializes(t *testing.T) {
	u := newUncore()
	// Two same-time read hits from different clusters must serialize on
	// the single L2 port.
	u.WriteLine(0, 0, 0x8000, mem.LineSize, true)
	u.WriteLine(0, 0, 0x8020, mem.LineSize, true)
	at := sim.Time(1_000_000_000) // 1us, past the writes
	d1, _ := u.ReadLine(at, 0, 0x8000)
	d2, _ := u.ReadLine(at, 1, 0x8020)
	if d2 <= d1 && d1 <= d2 {
		t.Errorf("same-time L2 accesses did not serialize: %v vs %v", d1, d2)
	}
	if d2-at < u.Config().L2Latency*2 {
		t.Errorf("second access %v did not wait for port", d2-at)
	}
}

func TestReadSparseMinBurst(t *testing.T) {
	u := newUncore()
	u.ReadSparse(0, 0, 0x9000, 4)
	if got := u.DRAM().Stats().ReadBytes; got != MinBurst {
		t.Errorf("sparse 4-byte read moved %d DRAM bytes, want %d (min burst)", got, MinBurst)
	}
	// Sparse reads never allocate in the L2.
	if occ := u.L2().Occupancy(); occ != 0 {
		t.Errorf("sparse read allocated %d L2 lines", occ)
	}
}

func TestReadSparseHitsDirtyL2(t *testing.T) {
	u := newUncore()
	u.WriteLine(0, 0, 0xA000, mem.LineSize, true)
	before := u.DRAM().Stats().Reads
	u.ReadSparse(10000, 0, 0xA000, 8)
	if u.DRAM().Stats().Reads != before {
		t.Error("sparse read of L2-resident dirty line went to DRAM")
	}
}

func TestWriteSparseMergesWithoutRefill(t *testing.T) {
	u := newUncore()
	u.WriteSparse(0, 0, 0xB000, 8)
	st := u.DRAM().Stats()
	if st.ReadBytes != 0 {
		t.Errorf("sparse write refilled %d bytes; write-combining should avoid it", st.ReadBytes)
	}
	if st.WriteBytes != MinBurst {
		t.Errorf("sparse write moved %d bytes, want %d", st.WriteBytes, MinBurst)
	}
}

func TestSparseOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u := newUncore()
	u.ReadSparse(0, 0, 0, mem.LineSize+1)
}

func TestL2BanksInterleaveAndParallelize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Banks = 2
	u := New(cfg, noc.New(noc.DefaultConfig(8)))
	// Warm two lines that land in different banks (consecutive lines
	// interleave).
	u.WriteLine(0, 0, 0x0, mem.LineSize, true)
	u.WriteLine(0, 0, 0x20, mem.LineSize, true)
	if u.bankOf(0x0) == u.bankOf(0x20) {
		t.Fatal("consecutive lines should map to different banks")
	}
	at := sim.Time(1_000_000_000)
	d1, hit1 := u.ReadLine(at, 0, 0x0)
	d2, hit2 := u.ReadLine(at, 1, 0x20)
	if !hit1 || !hit2 {
		t.Fatal("expected L2 hits")
	}
	// Different banks, different clusters: near-identical service (no
	// shared-port serialization).
	diff := d2 - d1
	if d1 > d2 {
		diff = d1 - d2
	}
	if diff > cfg.L2Latency {
		t.Errorf("banked accesses serialized: %v vs %v", d1, d2)
	}
	if got := u.L2Banks(); got != 2 {
		t.Errorf("L2Banks = %d, want 2", got)
	}
	if st := u.L2Stats(); st.WriteHits+st.Fills == 0 {
		t.Error("aggregate L2 stats empty")
	}
}

func TestDRAMChannelsShareTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 2
	u := New(cfg, noc.New(noc.DefaultConfig(4)))
	for i := 0; i < 64; i++ {
		u.ReadLineUncached(0, 0, mem.Addr(i*32))
	}
	a := u.drams[0].Stats().Reads
	b := u.drams[1].Stats().Reads
	if a == 0 || b == 0 {
		t.Fatalf("traffic not interleaved: %d / %d", a, b)
	}
	if a != b {
		t.Errorf("sequential lines should split evenly: %d vs %d", a, b)
	}
	if got := u.DRAMStats().Reads; got != a+b {
		t.Errorf("aggregate reads = %d, want %d", got, a+b)
	}
}

// Package uncore assembles the parts of the memory system that both
// models share (Figure 1): the global crossbar, the 512 KB 16-way shared
// L2 with a single 2.2 ns port, and the off-chip DRAM channel. The
// cache-coherent model's L1 miss handling (internal/coher) and the
// streaming model's DMA engines (internal/dma) both sit on top of it.
//
// The L2 is non-inclusive. It allocates on reads, allocates dirty without
// a refill when a full line is written (an L1 writeback or a full-line DMA
// store — the paper: "The L2 cache avoids refills on write misses when DMA
// transfers overwrite entire lines"), and refills from DRAM before merging
// a partial-line write.
//
// Nothing in this package yields to the simulation engine: every entry
// point assumes the calling task has already Synced (it is the globally
// minimal task), so the bank and channel calendars here are mutated in
// timestamp order by construction. That assumption is what the Sync
// calls audited in internal/coher, internal/stream and internal/dma
// establish — keep it in mind before adding a call path that reaches
// the uncore without a preceding Sync.
package uncore

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/ledger"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/txntrace"
)

// Config sizes the shared memory system.
type Config struct {
	L2Size    uint64 // total capacity across banks
	L2Assoc   int
	L2Banks   int // address-interleaved banks, one port each (Figure 1)
	L2Latency sim.Time
	DRAM      dram.Config
	// Channels is the number of address-interleaved DRAM channels, each
	// with the configured bandwidth (the paper's "multiple memory
	// channels" bandwidth-scaling alternative). Default 1.
	Channels int
}

// DefaultConfig is the paper's Table 2 shared hierarchy: one 512 KB
// 16-way L2 bank and one memory channel.
func DefaultConfig() Config {
	return Config{
		L2Size:    512 * 1024,
		L2Assoc:   16,
		L2Banks:   1,
		L2Latency: 2200 * sim.Picosecond,
		DRAM:      dram.DefaultConfig(),
		Channels:  1,
	}
}

// Stats counts L2-level activity beyond the tag-array counters.
type Stats struct {
	ReadRequests  uint64 // line reads arriving from clusters
	WriteRequests uint64 // line writes arriving from clusters
	L2ReadHits    uint64
	L2WriteNoFill uint64 // full-line writes allocated without refill
	L2Refills     uint64 // partial-line writes that forced a DRAM refill
	L2Writebacks  uint64 // dirty L2 victims written to DRAM
}

// ctrlMsgBytes is the size charged on the crossbar for an address/command
// message.
const ctrlMsgBytes = 8

// Uncore is the shared global memory system. The L2 is split into
// address-interleaved banks (at line granularity), each with one port;
// DRAM may have several address-interleaved channels.
type Uncore struct {
	cfg     Config
	net     *noc.Network
	l2s     []*cache.Cache
	l2Ports []*sim.Server
	drams   []*dram.Channel
	stats   Stats
	lat     *ledger.Latency  // nil = latency histograms disabled
	txn     *txntrace.Tracer // nil = transaction tracing disabled
}

// New builds the shared hierarchy on the given network.
func New(cfg Config, net *noc.Network) *Uncore {
	if cfg.L2Banks <= 0 {
		cfg.L2Banks = 1
	}
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	u := &Uncore{cfg: cfg, net: net}
	for i := 0; i < cfg.L2Banks; i++ {
		u.l2s = append(u.l2s, cache.New(cache.Config{
			Name:  fmt.Sprintf("l2.%d", i),
			Size:  cfg.L2Size / uint64(cfg.L2Banks),
			Assoc: cfg.L2Assoc,
		}))
		u.l2Ports = append(u.l2Ports, sim.NewServer(fmt.Sprintf("l2.port%d", i)))
	}
	for i := 0; i < cfg.Channels; i++ {
		u.drams = append(u.drams, dram.NewChannel(cfg.DRAM))
	}
	return u
}

// Network returns the interconnect.
func (u *Uncore) Network() *noc.Network { return u.net }

// bankOf selects the L2 bank for a line address.
func (u *Uncore) bankOf(a mem.Addr) int {
	return int((uint64(a) >> mem.LineShift) % uint64(len(u.l2s)))
}

// chanOf selects the DRAM channel for a line address.
func (u *Uncore) chanOf(a mem.Addr) int {
	return int((uint64(a) >> mem.LineShift) % uint64(len(u.drams)))
}

// l2For returns the tag array holding a.
func (u *Uncore) l2For(a mem.Addr) *cache.Cache { return u.l2s[u.bankOf(a)] }

// dramAccess routes an access to its channel, recording the channel
// service interval as a hop on the active transaction.
func (u *Uncore) dramAccess(at sim.Time, a mem.Addr, nbytes uint64, write bool) sim.Time {
	done := u.drams[u.chanOf(a)].Access(at, a, nbytes, write)
	if u.txn != nil {
		op := "read"
		if write {
			op = "write"
		}
		u.txn.HopTag("dram", op, at, done, fmt.Sprintf("ch%d", u.chanOf(a)))
	}
	return done
}

// L2 returns bank 0's tag array (the whole L2 in the default single-bank
// configuration); multi-bank callers use L2Bank/L2Stats.
func (u *Uncore) L2() *cache.Cache { return u.l2s[0] }

// L2Banks returns the number of L2 banks.
func (u *Uncore) L2Banks() int { return len(u.l2s) }

// L2Bank returns bank i's tag array.
func (u *Uncore) L2Bank(i int) *cache.Cache { return u.l2s[i] }

// L2Stats returns the aggregate tag-array statistics across banks.
func (u *Uncore) L2Stats() cache.Stats {
	var out cache.Stats
	for _, c := range u.l2s {
		out.Add(c.Stats())
	}
	return out
}

// DRAM returns channel 0 (for stats and tests with one channel).
func (u *Uncore) DRAM() *dram.Channel { return u.drams[0] }

// Channels returns the number of DRAM channels.
func (u *Uncore) Channels() int { return len(u.drams) }

// DRAMStats returns aggregate channel statistics.
func (u *Uncore) DRAMStats() dram.Stats {
	var out dram.Stats
	for _, c := range u.drams {
		out.Add(c.Stats())
	}
	return out
}

// ChannelBusy returns the cumulative DRAM data-pin busy time summed
// across channels (the probe layer's channel-utilization series).
func (u *Uncore) ChannelBusy() sim.Time {
	var t sim.Time
	for _, c := range u.drams {
		t += c.ChannelBusy()
	}
	return t
}

// AddServerMetrics accumulates the calendar-maintenance counters of the
// L2 ports and every DRAM channel/bank server into m.
func (u *Uncore) AddServerMetrics(m *sim.ServerMetrics) {
	for _, p := range u.l2Ports {
		p.AddMetrics(m)
	}
	for _, c := range u.drams {
		c.AddServerMetrics(m)
	}
}

// AvgChannelUtilization returns the mean busy fraction of the DRAM
// data pins across channels over [0, end].
func (u *Uncore) AvgChannelUtilization(end sim.Time) float64 {
	s := 0.0
	for _, c := range u.drams {
		s += c.ChannelUtilization(end)
	}
	return s / float64(len(u.drams))
}

// Stats returns a snapshot of the uncore counters.
func (u *Uncore) Stats() Stats { return u.stats }

// SetLatency attaches the run's service-time histograms (nil disables
// recording).
func (u *Uncore) SetLatency(l *ledger.Latency) { u.lat = l }

// SetTxnTrace attaches the run's transaction tracer (nil disables it).
func (u *Uncore) SetTxnTrace(t *txntrace.Tracer) { u.txn = t }

// L2PortBusy returns the total time the L2 ports were occupied (summed
// across banks).
func (u *Uncore) L2PortBusy() sim.Time {
	var t sim.Time
	for _, p := range u.l2Ports {
		t += p.BusyTime()
	}
	return t
}

// Config returns the configuration.
func (u *Uncore) Config() Config { return u.cfg }

// l2Access reserves the bank port for a and returns the time the access
// completes.
func (u *Uncore) l2Access(at sim.Time, a mem.Addr) sim.Time {
	start := u.l2Ports[u.bankOf(a)].Acquire(at, u.cfg.L2Latency)
	done := start + u.cfg.L2Latency
	if u.txn != nil {
		tag := ""
		if start > at {
			tag = fmt.Sprintf("port_wait=%dfs", start-at)
		}
		u.txn.HopTag("l2", "access", at, done, tag)
	}
	return done
}

// evictL2 handles an L2 victim, writing it to DRAM if dirty.
func (u *Uncore) evictL2(at sim.Time, ev cache.Evicted) {
	if ev.Valid && ev.Dirty {
		u.stats.L2Writebacks++
		u.dramAccess(at, ev.Addr, mem.LineSize, true)
	}
}

// ReadLine reads the 32-byte line at a on behalf of cluster, starting at
// the time the request leaves the cluster bus. It returns the time the
// data arrives back at the cluster and whether the L2 hit.
func (u *Uncore) ReadLine(at sim.Time, cluster int, a mem.Addr) (done sim.Time, l2Hit bool) {
	u.stats.ReadRequests++
	// The line read is its own (sub-)transaction: provisionally an L2
	// hit, reclassified once the tag lookup misses. Nested inside a CC
	// miss or DMA beat it attaches to that parent; standalone callers
	// (e.g. gather-buffer flushes) make it a root.
	x := u.txn.Begin(txntrace.L2Hit, cluster, uint64(a), at)
	t := u.net.ToGlobal(at, cluster, ctrlMsgBytes)
	t = u.l2Access(t, a)
	if ln := u.l2For(a).Access(a, false); ln != nil {
		u.stats.L2ReadHits++
		if ln.FillDone > t {
			t = ln.FillDone
		}
		done = u.net.FromGlobal(t, cluster, mem.LineSize)
		if u.lat != nil {
			u.lat.L2Hit.Record(uint64(done - at))
		}
		x.AddTag("l2=hit")
		u.txn.End(done)
		return done, true
	}
	x.SetClass(txntrace.DRAMFill)
	x.AddTag("l2=miss")
	t = u.dramAccess(t, a.Line(), mem.LineSize, false)
	_, ev := u.l2For(a).Insert(a, cache.Exclusive, t)
	u.evictL2(t, ev)
	done = u.net.FromGlobal(t, cluster, mem.LineSize)
	if u.lat != nil {
		u.lat.DRAMFill.Record(uint64(done - at))
	}
	u.txn.End(done)
	return done, false
}

// WriteLine writes nbytes of the line at a from cluster. fullLine reports
// whether the whole 32-byte line is being overwritten (writebacks and
// full-line DMA stores), in which case a miss allocates without a refill.
// It returns the time the write has been accepted by the L2.
func (u *Uncore) WriteLine(at sim.Time, cluster int, a mem.Addr, nbytes uint64, fullLine bool) sim.Time {
	u.stats.WriteRequests++
	t := u.net.ToGlobal(at, cluster, ctrlMsgBytes+nbytes)
	t = u.l2Access(t, a)
	if ln := u.l2For(a).Access(a, true); ln != nil {
		ln.Dirty = true
		if ln.FillDone > t {
			t = ln.FillDone
		}
		return t
	}
	if fullLine {
		u.stats.L2WriteNoFill++
		ln, ev := u.l2For(a).Insert(a, cache.Modified, t)
		ln.Dirty = true
		u.evictL2(t, ev)
		return t
	}
	// Partial-line write miss: refill from DRAM, then merge.
	u.stats.L2Refills++
	t = u.dramAccess(t, a.Line(), mem.LineSize, false)
	ln, ev := u.l2For(a).Insert(a, cache.Modified, t)
	ln.Dirty = true
	u.evictL2(t, ev)
	return t
}

// ReadLineUncached reads a line bypassing L2 allocation (used for DMA
// gather traffic that software knows has no reuse). The L2 is still
// checked because it may hold a newer dirty copy.
func (u *Uncore) ReadLineUncached(at sim.Time, cluster int, a mem.Addr) sim.Time {
	u.stats.ReadRequests++
	t := u.net.ToGlobal(at, cluster, ctrlMsgBytes)
	t = u.l2Access(t, a)
	if ln := u.l2For(a).Access(a, false); ln != nil {
		u.stats.L2ReadHits++
		if ln.FillDone > t {
			t = ln.FillDone
		}
		return u.net.FromGlobal(t, cluster, mem.LineSize)
	}
	t = u.dramAccess(t, a.Line(), mem.LineSize, false)
	return u.net.FromGlobal(t, cluster, mem.LineSize)
}

// MinBurst is the smallest useful DRAM transaction: scatter/gather DMA
// elements smaller than this still cost a full burst on the channel
// ("memory and interconnect channels are typically optimized for block
// transfers and may not be bandwidth efficient for strided or
// scatter/gather accesses").
const MinBurst = 8

// ReadSparse reads one scatter/gather element of nbytes at a, bypassing
// L2 allocation (sparse gathers have no line-granularity reuse to cache).
// The L2 is still probed for a dirty copy.
func (u *Uncore) ReadSparse(at sim.Time, cluster int, a mem.Addr, nbytes uint64) sim.Time {
	if nbytes > mem.LineSize {
		panic("uncore: sparse element larger than a line")
	}
	u.stats.ReadRequests++
	t := u.net.ToGlobal(at, cluster, ctrlMsgBytes)
	t = u.l2Access(t, a)
	if ln := u.l2For(a).Access(a, false); ln != nil {
		u.stats.L2ReadHits++
		if ln.FillDone > t {
			t = ln.FillDone
		}
		return u.net.FromGlobal(t, cluster, nbytes)
	}
	burst := nbytes
	if burst < MinBurst {
		burst = MinBurst
	}
	t = u.dramAccess(t, a, burst, false)
	return u.net.FromGlobal(t, cluster, nbytes)
}

// WriteSparse writes one scatter element of nbytes at a. The write is
// narrow, so it merges in DRAM at MinBurst granularity without a refill
// (write masks), matching what a memory controller's write-combining
// does for scatter DMA.
func (u *Uncore) WriteSparse(at sim.Time, cluster int, a mem.Addr, nbytes uint64) sim.Time {
	if nbytes > mem.LineSize {
		panic("uncore: sparse element larger than a line")
	}
	u.stats.WriteRequests++
	t := u.net.ToGlobal(at, cluster, ctrlMsgBytes+nbytes)
	t = u.l2Access(t, a)
	if ln := u.l2For(a).Access(a, true); ln != nil {
		ln.Dirty = true
		return t
	}
	burst := nbytes
	if burst < MinBurst {
		burst = MinBurst
	}
	return u.dramAccess(t, a, burst, true)
}

// FlushDirty writes every dirty L2 line to DRAM (end-of-run accounting so
// that produced-but-resident output data appears in off-chip traffic
// consistently for both models).
func (u *Uncore) FlushDirty(at sim.Time) sim.Time {
	t := at
	for _, bank := range u.l2s {
		for _, a := range bank.FlushAll() {
			t = u.dramAccess(t, a, mem.LineSize, true)
			u.stats.L2Writebacks++
		}
	}
	return t
}

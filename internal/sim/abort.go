package sim

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the engine's failure surface: every way a run can die is
// a typed panic value carrying an EngineState snapshot, so the run layer
// (internal/bench) can recover it into a structured job record instead
// of losing the process. The types panic out of Run on the driving
// goroutine only — task-goroutine panics are forwarded there first by
// the Spawn wrapper — which is what makes recovery in one place sound.

// TaskState is one task's entry in a diagnostic snapshot.
type TaskState struct {
	Name string `json:"name"`
	ID   int    `json:"id"`
	// Time is the task's local clock: for a blocked task, the time of its
	// last sync before blocking.
	Time Time `json:"time_fs"`
	// State is "running", "runnable", "blocked" or "done".
	State string `json:"state"`
	// WaitingOn names the resource a blocked task is waiting for when the
	// blocker used BlockOn ("lock mq.lock", "dma dma3", ...); empty for a
	// plain Block.
	WaitingOn string `json:"waiting_on,omitempty"`
}

// EngineState is a read-only snapshot of the scheduling domain, taken at
// the moment a run error is raised and attached to it. It is the
// probe-style progress dump the ISSUE's watchdog and deadlock
// diagnostics carry: last event time, heap depth, per-task state, and
// the engine's self-metrics.
type EngineState struct {
	Now       Time        `json:"now_fs"`
	HeapDepth int         `json:"heap_depth"`
	Live      int         `json:"live_tasks"`
	Metrics   Metrics     `json:"metrics"`
	Tasks     []TaskState `json:"tasks,omitempty"`
	// Recent is the flight recorder's ring at the moment of failure,
	// oldest first — the last K scheduler events that led here (empty
	// when the recorder was disabled). EventsRecorded counts every event
	// the recorder ever saw, so readers can tell "K events, ring full"
	// from "K events, that was the whole run".
	Recent         []FlightEvent `json:"recent_events,omitempty"`
	EventsRecorded uint64        `json:"events_recorded,omitempty"`
}

// snapshotState captures the domain. Engine-goroutine only (it reads
// scheduling state without locks).
func (e *Engine) snapshotState() EngineState {
	st := EngineState{Now: e.now, HeapDepth: e.queue.len(), Live: e.live, Metrics: e.met}
	if e.fr != nil {
		st.Recent = e.fr.snapshot(e.tasks)
		st.EventsRecorded = e.fr.n
	}
	for _, t := range e.tasks {
		ts := TaskState{Name: t.name, ID: t.id, Time: t.time, WaitingOn: t.waitingOn}
		switch {
		case t.done:
			ts.State = "done"
		case t.blocked:
			ts.State = "blocked"
		case t.queued:
			ts.State = "runnable"
		default:
			ts.State = "running"
		}
		st.Tasks = append(st.Tasks, ts)
	}
	return st
}

// blockedSummary lists the blocked tasks sorted by name, annotating each
// with what it awaits and its last sync time when the blocker said so
// (Task.BlockOn). A deadlock on a resource must name the resource, not
// just the tasks.
func (s EngineState) blockedSummary() string {
	var parts []string
	for _, t := range s.Tasks {
		if t.State != "blocked" {
			continue
		}
		if t.WaitingOn != "" {
			parts = append(parts, fmt.Sprintf("%s (awaiting %s, last sync %v)", t.Name, t.WaitingOn, t.Time))
		} else {
			parts = append(parts, t.Name)
		}
	}
	sort.Strings(parts)
	return "blocked tasks: " + strings.Join(parts, ", ")
}

// RunError is the interface of every typed engine failure; the run layer
// recovers panics out of Run and extracts the snapshot through it.
type RunError interface {
	error
	EngineState() EngineState
}

// DeadlockError reports that live tasks remained but none was runnable.
// Always a model or workload bug, never a recoverable condition — but
// one poisoned configuration must not kill a whole experiment grid, so
// it is a typed value the run layer can catch and record.
type DeadlockError struct {
	State EngineState
}

func (d *DeadlockError) Error() string            { return "sim: deadlock: " + d.State.blockedSummary() }
func (d *DeadlockError) EngineState() EngineState { return d.State }

// LivelockError reports that simulated time passed Engine.MaxTime.
type LivelockError struct {
	MaxTime Time
	State   EngineState
}

func (l *LivelockError) Error() string {
	return fmt.Sprintf("sim: exceeded MaxTime %v (model livelock?)", l.MaxTime)
}
func (l *LivelockError) EngineState() EngineState { return l.State }

// AbortError reports a cooperative cancellation requested through
// Engine.Abort (the per-job watchdog). The snapshot is the progress
// dump: where simulated time stopped and what every task was doing.
type AbortError struct {
	Reason string
	State  EngineState
}

func (a *AbortError) Error() string {
	return fmt.Sprintf("sim: aborted: %s (last event at %v, heap depth %d, %d live tasks)",
		a.Reason, a.State.Now, a.State.HeapDepth, a.State.Live)
}
func (a *AbortError) EngineState() EngineState { return a.State }

// TaskPanicError wraps a panic raised by model or workload code on a
// task goroutine. The Spawn wrapper catches it and forwards it to the
// engine goroutine, which re-panics with this value out of Run — so a
// panic anywhere in a simulation surfaces at exactly one place.
type TaskPanicError struct {
	TaskName string
	Value    any
	Stack    string
	State    EngineState
}

func (p *TaskPanicError) Error() string {
	return fmt.Sprintf("sim: task %q panicked: %v", p.TaskName, p.Value)
}
func (p *TaskPanicError) EngineState() EngineState { return p.State }

// Abort requests cooperative cancellation of the run. Safe to call from
// any goroutine at any time (the watchdog calls it from a timer). The
// request takes effect only at a dispatch boundary inside Run — the
// engine's next loop iteration, or the running task's next Sync — where
// the engine panics out of Run with an *AbortError carrying the progress
// dump. Once Run has returned, Abort is a no-op: it can never unwind
// report finalization (see DESIGN.md).
//
// The first reason wins; later Aborts keep the flag set but do not
// overwrite it.
func (e *Engine) Abort(reason string) {
	e.abortMu.Lock()
	if e.abortReason == "" {
		e.abortReason = reason
	}
	e.abortMu.Unlock()
	e.abortFlag.Store(true)
}

// abortError builds the typed abort panic value. Engine goroutine only.
func (e *Engine) abortError() *AbortError {
	e.abortMu.Lock()
	reason := e.abortReason
	e.abortMu.Unlock()
	return &AbortError{Reason: reason, State: e.snapshotState()}
}

// taskAbortSignal is the sentinel panicked through a parked task during
// Shutdown so its goroutine unwinds without running model code.
type taskAbortSignal struct{}

// Shutdown drains the task goroutines left parked after Run panicked:
// each is resumed once, immediately unwinds via a sentinel panic caught
// in its Spawn wrapper, and acknowledges before the next is woken. Call
// it exactly once, from the goroutine that recovered Run's panic, before
// dropping the Engine — without it every failed simulation would leak
// one parked goroutine per unfinished task. Safe to call when Run
// completed normally (every task done) or never started; both are
// no-ops for the respective tasks.
func (e *Engine) Shutdown() {
	if e.drained {
		return
	}
	e.drained = true
	e.draining = true
	for _, t := range e.tasks {
		if t.done {
			continue
		}
		if t.inline != nil {
			// Inline tasks have no goroutine to unwind; just retire them.
			t.done = true
			e.live--
			continue
		}
		t.resume <- struct{}{} // parked in pause(); unwinds via taskAbortSignal
		<-e.sched              // its wrapper's acknowledgement
		t.done = true
		e.live--
	}
}

package sim

import (
	"testing"
)

// TestMetricsCountFastAndSlowSyncs: a lone task always wins the heap
// compare (fast path); two lockstep tasks always lose it (slow path).
func TestMetricsCountFastAndSlowSyncs(t *testing.T) {
	e := NewEngine()
	e.Spawn("solo", 0, func(task *Task) {
		for i := 0; i < 10; i++ {
			task.Advance(Nanosecond)
			task.Sync()
		}
	})
	e.Run()
	m := e.Metrics()
	if m.SyncFast != 10 || m.SyncSlow != 0 {
		t.Errorf("solo task: fast=%d slow=%d, want 10/0", m.SyncFast, m.SyncSlow)
	}
	if m.Spawns != 1 || m.Dispatches == 0 || m.HeapPushes != m.HeapPops {
		t.Errorf("bookkeeping off: %+v", m)
	}
	if r := m.FastPathRate(); r != 1.0 {
		t.Errorf("fast-path rate = %v, want 1", r)
	}

	e = NewEngine()
	for i := 0; i < 2; i++ {
		e.Spawn("twin", 0, func(task *Task) {
			for j := 0; j < 10; j++ {
				task.Advance(Nanosecond)
				task.Sync()
			}
		})
	}
	e.Run()
	m = e.Metrics()
	// Lockstep twins: each Sync sees the sibling queued at the same time,
	// and the tie goes to the smaller id, so at most the id-0 task can
	// occasionally win. The slow path must dominate, and nearly all of it
	// must dispatch as direct task-to-task handoffs: the engine goroutine
	// only sees the two initial dispatches and the completion edges.
	if m.SyncSlow == 0 {
		t.Errorf("lockstep twins never took the slow path: %+v", m)
	}
	if m.Handoffs == 0 {
		t.Errorf("lockstep twins never handed off: %+v", m)
	}
	if m.HeapMax < 2 {
		t.Errorf("heap max %d, want >= 2", m.HeapMax)
	}
	if r := m.HandoffRate(); r < 0.5 {
		t.Errorf("handoff rate = %v (%d handoffs / %d dispatches), want > 0.5", r, m.Handoffs, m.Dispatches)
	}
	if m.HeapPushes != m.HeapPops {
		t.Errorf("heap pushes %d != pops %d after a drained run", m.HeapPushes, m.HeapPops)
	}
}

// TestMetricsHandoffVsEngine runs the same lockstep schedule with the
// handoff enabled and disabled: the simulated result must be identical,
// the handoff run must move (almost) every slow-path dispatch off the
// engine goroutine, and the noHandoff run must report zero handoffs.
func TestMetricsHandoffVsEngine(t *testing.T) {
	run := func(noHandoff bool) (Metrics, Time) {
		e := NewEngine()
		e.noHandoff = noHandoff
		for i := 0; i < 4; i++ {
			e.Spawn("w", 0, func(task *Task) {
				for j := 0; j < 50; j++ {
					task.Advance(Nanosecond)
					task.Sync()
				}
			})
		}
		e.Run()
		return e.Metrics(), e.Now()
	}
	hm, hNow := run(false)
	em, eNow := run(true)
	if hNow != eNow {
		t.Fatalf("final times diverge: handoff %v, engine %v", hNow, eNow)
	}
	if em.Handoffs != 0 {
		t.Errorf("noHandoff run counted %d handoffs", em.Handoffs)
	}
	if em.HandoffRate() != 0 {
		t.Errorf("noHandoff handoff rate = %v, want 0", em.HandoffRate())
	}
	if hm.SyncSlow != em.SyncSlow || hm.SyncFast != em.SyncFast {
		t.Errorf("sync counts diverge: handoff %+v, engine %+v", hm, em)
	}
	if hm.Handoffs+hm.Dispatches != em.Dispatches {
		t.Errorf("dispatch totals diverge: %d handoffs + %d dispatches != %d engine dispatches",
			hm.Handoffs, hm.Dispatches, em.Dispatches)
	}
	if hm.HandoffRate() < 0.9 {
		t.Errorf("handoff rate = %v, want nearly all dispatches handed off (%+v)", hm.HandoffRate(), hm)
	}
}

// TestMetricsSnapshotEmitsHandoffCounters pins the probe-facing counter
// names, including the ones the handoff work added (handoffs, spawns,
// heap_max): renaming or dropping one would silently break recorded
// probe series.
func TestMetricsSnapshotEmitsHandoffCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 2; i++ {
		e.Spawn("twin", 0, func(task *Task) {
			for j := 0; j < 5; j++ {
				task.Advance(Nanosecond)
				task.Sync()
			}
		})
	}
	e.Run()
	got := map[string]float64{}
	e.Metrics().Snapshot(func(name string, v float64) { got[name] = v })
	for _, name := range []string{
		"sync_fast", "sync_slow", "dispatches", "handoffs", "spawns",
		"blocks", "unblocks", "heap_pushes", "heap_pops", "heap_max",
		"inline_steps",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("Snapshot missing counter %q (got %v)", name, got)
		}
	}
	if got["spawns"] != 2 {
		t.Errorf("spawns = %v, want 2", got["spawns"])
	}
	if got["handoffs"] == 0 {
		t.Errorf("handoffs = 0 for a lockstep run: %v", got)
	}
	if got["heap_max"] < 2 {
		t.Errorf("heap_max = %v, want >= 2", got["heap_max"])
	}
}

// TestEpochHookFiresOnBoundaries: the hook fires once per crossed
// boundary with the boundary time, on both the dispatch loop and the
// Sync fast path, and a multi-epoch jump yields one call per boundary.
func TestEpochHookFiresOnBoundaries(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.SetEpoch(10*Nanosecond, func(at Time) { fired = append(fired, at) })
	e.Spawn("walker", 0, func(task *Task) {
		task.Advance(25 * Nanosecond) // crosses 10ns and 20ns
		task.Sync()                   // fast path (lone task)
		task.Advance(40 * Nanosecond) // now 65ns: crosses 30..60
		task.Sync()
	})
	e.Run()
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond,
		40 * Nanosecond, 50 * Nanosecond, 60 * Nanosecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestEpochHookDoesNotPerturbSchedule: the full dispatch trace of a
// randomized-ish schedule must be identical with and without a sampling
// hook installed (the zero-perturbation invariant).
func TestEpochHookDoesNotPerturbSchedule(t *testing.T) {
	run := func(sample bool) []Time {
		e := NewEngine()
		if sample {
			e.SetEpoch(3*Nanosecond, func(Time) {})
		}
		var trace []Time
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("t", Time(i)*Nanosecond, func(task *Task) {
				for j := 0; j < 20; j++ {
					task.Advance(Time(1+(i*7+j*3)%5) * Nanosecond)
					task.Sync()
					trace = append(trace, task.Time())
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestServerPruneMetrics: long monotone arrivals push reservations past
// the prune window; the counters must see them go.
func TestServerPruneMetrics(t *testing.T) {
	s := NewServer("x")
	step := 2 * Microsecond
	for i := 0; i < 1000; i++ {
		s.Acquire(Time(i)*step, Microsecond)
	}
	var m ServerMetrics
	s.AddMetrics(&m)
	if m.Pruned == 0 {
		t.Errorf("no reservations pruned after %v of arrivals", 1000*step)
	}
	if m.Compactions == 0 {
		t.Errorf("ring never compacted: %+v", m)
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Time
		err  bool
	}{
		{"1us", Microsecond, false},
		{"2.5ns", 2500 * Femtosecond * 1000, false},
		{"800ps", 800 * Picosecond, false},
		{"3ms", 3 * Millisecond, false},
		{"1s", Second, false},
		{"42fs", 42 * Femtosecond, false},
		{"10", 0, true},
		{"-1us", 0, true},
		{"xns", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if c.err != (err != nil) || got != c.want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Engine is a conservative discrete-event engine. Every simulated agent
// (a processor core, a DMA engine, a scheduling thread) is a Task: either
// backed by its own goroutine (Spawn) or an inline state machine stepped
// by the dispatcher itself (SpawnInline; see inline.go). Exactly one
// goroutine — the engine or a single task — runs at a time, so model code
// needs no locking. The engine always resumes the runnable task with the
// smallest local time, which keeps mutations of shared model state
// (caches, resource servers) ordered by timestamp.
//
// Concurrency contract: an Engine and its Tasks form one isolated
// scheduling domain driven by the single goroutine that calls Run — the
// handshake on sched/resume guarantees at most one goroutine of the
// domain executes at a time, so within a domain model code is
// effectively single-threaded. An Engine owns no process-global state,
// so any number of independent Engines may Run concurrently from
// different goroutines (the experiment runner in internal/bench relies
// on this); what is forbidden is sharing one Engine, Task, or any model
// object across domains. Run enforces the one-driver rule with an
// atomic guard so a violation fails loudly rather than racing.
//
// Fast-path invariant: Sync exists so that a task yields before touching
// shared state and resumes only once it is the globally minimal runnable
// task under the engine's (time, id) order. The engine, however, would
// dispatch the yielding task t immediately — without running anything
// else — exactly when t already precedes every queued task under that
// order (blocked tasks cannot become runnable meanwhile: only the single
// running task could unblock them, and that is t itself). In that case
// the handshake is a provable no-op, so Sync skips it: it compares t
// against the scheduler heap's minimum and, if t wins (strictly earlier
// time, or equal time and smaller spawn id), keeps running after
// updating the engine clock to t's time. Because the skip condition is
// precisely "the engine's next pop would return t", the sequence of
// task-at-time steps — and therefore every simulated timestamp — is
// identical with the fast path on or off; TestFastPathScheduleEquivalence
// checks this on randomized schedules.
//
// Handoff invariant: when the fast path declines because a queued task
// precedes the yielder, the engine goroutine would do nothing but pop
// that task and resume it — so the yielding task does it instead
// (direct task-to-task handoff): it swaps itself into the scheduler
// heap for the minimum in one sift (taskHeap.replaceMin), advances the
// engine clock exactly as Run's dispatch loop would, and resumes the
// popped task on its resume channel before parking. The slow path costs
// one channel operation and one goroutine switch instead of two of
// each; the dispatched sequence is still "pop the global (time, id)
// minimum among runnable tasks" performed by whichever goroutine
// currently runs, so every simulated timestamp is identical with
// handoff on or off (the 2×2 fastpath × handoff matrix in
// TestFastPathScheduleEquivalence pins this). The same handoff applies
// to Block when runnable peers remain. The engine goroutine stays
// parked in its sched receive and handles only the cold edges, which
// must unwind Run with typed panics on the driving goroutine:
// block-with-empty-heap (deadlock diagnosis), task completion and
// forwarded task panics, a requested Abort, and a dispatch that would
// cross MaxTime (livelock) — handoffOK routes the last two back through
// the handshake.
//
// Ownership and memory ordering: engine scheduling state (queue, now,
// met, live, tasks, the per-task queued/blocked flags) is owned by
// whichever single goroutine of the domain is executing — the engine
// between a sched receive and the next resume send, the running task
// otherwise. With handoffs that owner migrates directly from task to
// task: the yielder's writes happen before its send on the next task's
// resume channel, and the next task's reads happen after its receive,
// so every ownership transfer — task→task via resume, task→engine via
// sched, engine→task via resume — is a channel edge the race detector
// observes as happens-before. The engine goroutine never touches the
// state while parked, so the migrated ownership is race-free by the
// same argument as the original fast path. The fast path declines when
// the task has passed MaxTime so the livelock safety net still trips
// inside Run.
type Engine struct {
	queue   taskHeap
	tasks   []*Task
	now     Time
	sched   chan yieldMsg
	live    int // tasks spawned and not yet finished
	started atomic.Bool
	// MaxTime, when non-zero, aborts the run if simulated time passes it.
	// It is a safety net against model-level livelock.
	MaxTime Time
	// noFastPath forces every Sync through the engine handshake; only the
	// determinism tests set it (the fast path must be unobservable).
	noFastPath bool
	// noHandoff forces every slow-path yield through the engine goroutine
	// instead of the direct task-to-task handoff; only the determinism
	// tests set it (the handoff must be unobservable — the schedule-
	// equivalence suite runs the full 2×2 fastpath × handoff matrix).
	noHandoff bool
	// noInline makes SpawnInline fall back to a goroutine-backed task
	// driving the same Runnable (DriveRunnable); only the determinism
	// tests set it (the inline representation must be unobservable — the
	// equivalence suite runs inline on/off against the 2×2 matrix above).
	noInline bool

	// Cooperative cancellation (Abort) and post-failure goroutine drain
	// (Shutdown). abortFlag is atomic because Abort may come from any
	// goroutine (a watchdog timer); it is read once per dispatch and once
	// every abortStride fast-path Syncs. abortPoll is the countdown to the
	// next poll — a plain field, written only by the domain's single
	// running goroutine — which keeps the watchdog's disabled cost on the
	// fast path to a decrement and branch instead of an atomic load
	// (BenchmarkSyncFastPathWatchdog gates it). draining/drained are
	// plain fields: Shutdown runs strictly after Run has unwound, when
	// every surviving task goroutine is parked in a channel receive, and
	// the resume-channel handshake orders their reads.
	abortFlag   atomic.Bool
	abortPoll   int
	abortMu     sync.Mutex
	abortReason string
	draining    bool
	drained     bool

	// Epoch sampling (SetEpoch). nextEpoch is the first simulated time at
	// which onEpoch fires; it is kept at the Time sentinel maximum while
	// sampling is off so the hot paths pay one always-false compare and
	// nothing else. The hook runs synchronously on whichever goroutine
	// advanced the clock (the engine in Run, or the running task on the
	// Sync fast path) — legal because at most one goroutine of the domain
	// executes at a time — and it must only read model state: it may not
	// Sync, Spawn, Block or Unblock, so the event order is provably
	// identical with sampling on or off.
	epoch     Time
	nextEpoch Time
	onEpoch   func(boundary Time)

	// fr, when non-nil, is the flight recorder (SetFlightRecorder): a
	// ring of the last K scheduler events embedded in every typed
	// failure's EngineState. Disabled it is one always-false nil compare
	// per record site; the Sync fast path never records, so its cost is
	// untouched in both modes. See flightrec.go.
	fr *flightRecorder

	met Metrics
}

// Metrics are the engine's self-observation counters: how often the
// handshake-free Sync fast path fires, how much work the scheduler heap
// does, and how deep it gets. They cost one increment on the paths they
// count and exist so the fast path's effectiveness is continuously
// measurable in every run instead of one-off benchmarked.
type Metrics struct {
	SyncFast    uint64 // Syncs answered without the engine handshake
	SyncSlow    uint64 // Syncs that yielded through the scheduler
	Dispatches  uint64 // events dispatched by Run's loop (engine resumes)
	Handoffs    uint64 // events dispatched task-to-task, engine parked
	InlineSteps uint64 // inline-task steps run as plain function calls
	Spawns      uint64 // tasks ever spawned
	Blocks     uint64 // yields that blocked awaiting an Unblock
	Unblocks   uint64 // wake-ups of blocked tasks
	HeapPushes uint64
	HeapPops   uint64
	HeapMax    int // deepest the scheduler heap has been
}

// FastPathRate returns the fraction of Syncs served handshake-free.
func (m Metrics) FastPathRate() float64 {
	tot := m.SyncFast + m.SyncSlow
	if tot == 0 {
		return 0
	}
	return float64(m.SyncFast) / float64(tot)
}

// HandoffRate returns the fraction of slow-path dispatches performed as
// direct task-to-task handoffs — resumes that never woke the engine
// goroutine. Together with FastPathRate it locates the dispatch cost of
// a run: fast-path Syncs are free, handoffs cost one goroutine switch,
// and the remaining Dispatches cost the full engine round trip.
func (m Metrics) HandoffRate() float64 {
	tot := m.Handoffs + m.Dispatches
	if tot == 0 {
		return 0
	}
	return float64(m.Handoffs) / float64(tot)
}

// InlineRate returns the fraction of dispatched events that ran as
// inline steps — plain function calls on the scheduling goroutine, no
// channel operation and no goroutine switch, cheaper even than a
// handoff. Events here are inline steps plus goroutine-task dispatches
// (engine resumes and handoffs); fast-path Syncs are excluded, as in
// HandoffRate.
func (m Metrics) InlineRate() float64 {
	tot := m.InlineSteps + m.Dispatches + m.Handoffs
	if tot == 0 {
		return 0
	}
	return float64(m.InlineSteps) / float64(tot)
}

// Snapshot emits the counters in a fixed order; it satisfies the probe
// layer's snapshot contract (internal/probe). HeapMax is monotone
// non-decreasing, so it is well-defined as a probe Counter like the
// rest.
func (m Metrics) Snapshot(put func(name string, value float64)) {
	put("sync_fast", float64(m.SyncFast))
	put("sync_slow", float64(m.SyncSlow))
	put("dispatches", float64(m.Dispatches))
	put("handoffs", float64(m.Handoffs))
	put("spawns", float64(m.Spawns))
	put("blocks", float64(m.Blocks))
	put("unblocks", float64(m.Unblocks))
	put("heap_pushes", float64(m.HeapPushes))
	put("heap_pops", float64(m.HeapPops))
	put("heap_max", float64(m.HeapMax))
	put("inline_steps", float64(m.InlineSteps))
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{sched: make(chan yieldMsg), nextEpoch: ^Time(0)}
}

// Metrics returns the engine's self-observation counters so far. Safe to
// call after Run, or from the running task's goroutine.
func (e *Engine) Metrics() Metrics { return e.met }

// QueueLen returns the current scheduler-heap depth (runnable tasks not
// being executed right now).
func (e *Engine) QueueLen() int { return e.queue.len() }

// SetEpoch installs fn to be called the first time simulated time
// reaches or passes every multiple of interval, with the boundary as
// argument (a jump across several boundaries fires fn once per boundary,
// so samples stay regularly spaced). Call it before Run. The hook runs
// on whichever goroutine advanced the engine clock and must only read
// model state — never Sync, Spawn, Block, Unblock or advance any clock —
// which is what makes sampling invisible to the event order; see the
// field comment.
func (e *Engine) SetEpoch(interval Time, fn func(boundary Time)) {
	if interval == 0 || fn == nil {
		panic("sim: SetEpoch needs a positive interval and a hook")
	}
	e.epoch = interval
	e.nextEpoch = interval
	e.onEpoch = fn
}

// epochTick fires the sampling hook for every boundary the clock just
// crossed. Out of line so the hot paths only inline the compare.
func (e *Engine) epochTick() {
	for e.now >= e.nextEpoch {
		at := e.nextEpoch
		e.nextEpoch += e.epoch
		e.onEpoch(at)
	}
}

// Now returns the time of the most recently dispatched event.
func (e *Engine) Now() Time { return e.now }

type yieldKind uint8

const (
	yieldRequeue yieldKind = iota // task advanced its clock; schedule again
	yieldBlock                    // task blocked; another task must unblock it
	yieldDone                     // task finished
	yieldPanic                    // task goroutine panicked; engine must re-panic
	yieldAborted                  // task unwound via the Shutdown drain sentinel
	yieldResched                  // inline dispatch hit a cold edge; engine re-diagnoses
)

type yieldMsg struct {
	task *Task
	kind yieldKind
	// val and stack carry a task goroutine's recovered panic (yieldPanic).
	val   any
	stack string
}

// Task is a simulated agent with its own local clock. All methods must be
// called from the task's own goroutine unless documented otherwise.
type Task struct {
	engine  *Engine
	name    string
	id      int
	time    Time
	resume  chan struct{}
	blocked bool
	queued  bool
	done    bool
	// waitingOn names the resource this task is blocked on (BlockOn);
	// empty while runnable or for a plain Block. Written by the task
	// goroutine, read by the engine in snapshotState — ordered by the
	// sched/resume handshake.
	waitingOn string
	// inline, when non-nil, is the task's state-machine body: the task
	// has no goroutine and no resume channel, and the dispatcher calls
	// inline.Step directly (see inline.go).
	inline Runnable
	// blockLabel is the pending WillBlockOn label, consumed by the next
	// StatusBlocked an inline Step (or DriveRunnable) returns.
	blockLabel string
}

// Spawn registers fn as a new task starting at time start. It may be called
// before Run or from a running task.
func (e *Engine) Spawn(name string, start Time, fn func(*Task)) *Task {
	t := &Task{
		engine: e,
		name:   name,
		id:     len(e.tasks),
		time:   start,
		resume: make(chan struct{}),
	}
	e.tasks = append(e.tasks, t)
	e.live++
	e.met.Spawns++
	go func() {
		// The wrapper is the task goroutine's only exit. A panic in model
		// or workload code is forwarded to the engine goroutine (which
		// re-panics out of Run as a *TaskPanicError), so failures surface
		// at exactly one place; the Shutdown drain sentinel just
		// acknowledges and dies.
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(taskAbortSignal); ok {
				e.sched <- yieldMsg{task: t, kind: yieldAborted}
				return
			}
			t.done = true
			e.sched <- yieldMsg{task: t, kind: yieldPanic, val: r, stack: string(debug.Stack())}
		}()
		t.pause() // wait for first dispatch
		fn(t)
		t.done = true
		e.sched <- yieldMsg{task: t, kind: yieldDone}
	}()
	e.push(t)
	return t
}

// pause parks the task until the engine (or Shutdown) resumes it. Every
// task-side wait goes through here so that a draining engine can unwind
// the goroutine via the sentinel panic instead of running model code.
func (t *Task) pause() {
	<-t.resume
	if t.engine.draining {
		panic(taskAbortSignal{})
	}
}

func (e *Engine) push(t *Task) {
	if t.queued || t.done {
		return
	}
	t.queued = true
	t.blocked = false
	e.queue.push(t)
	e.met.HeapPushes++
	if d := e.queue.len(); d > e.met.HeapMax {
		e.met.HeapMax = d
	}
}

// Run dispatches events until every task has finished. With the direct
// task-to-task handoff (see the Engine doc) the hot dispatches never
// return here: tasks resume each other while this loop sits parked in
// its sched receive, and it wakes only for the cold edges — task
// completion, a blocked task with the runnable set drained (deadlock
// diagnosis), a forwarded task panic, a requested Abort, a dispatch
// crossing MaxTime. It panics with a typed value (see abort.go) on
// deadlock (live tasks remain but none is runnable — always a bug in a
// model or workload, never a recoverable condition), on livelock past
// MaxTime, on a requested Abort, and when a task goroutine panicked;
// every such value carries an EngineState snapshot. The run layer
// recovers these in one place (core.System.Run) and must call Shutdown
// afterwards to drain the parked task goroutines.
// Run must be called exactly once, and only one goroutine may drive an
// Engine: the compare-and-swap below asserts it, making concurrent
// engines provably non-interfering (each is driven by its own caller).
func (e *Engine) Run() {
	if !e.started.CompareAndSwap(false, true) {
		panic("sim: Engine.Run called twice or from two goroutines")
	}
	for e.live > 0 {
		if e.abortFlag.Load() {
			panic(e.abortError())
		}
		if e.queue.len() == 0 {
			panic(&DeadlockError{State: e.snapshotState()})
		}
		t := e.queue.pop()
		t.queued = false
		e.met.HeapPops++
		if t.inline == nil {
			e.met.Dispatches++
			e.record(flightDispatch, t)
		}
		if t.time < e.now {
			panic(fmt.Sprintf("sim: task %q scheduled in the past (%v < %v)", t.name, t.time, e.now))
		}
		e.now = t.time
		if e.MaxTime != 0 && e.now > e.MaxTime {
			panic(&LivelockError{MaxTime: e.MaxTime, State: e.snapshotState()})
		}
		if e.now >= e.nextEpoch {
			e.epochTick()
		}
		if t.inline != nil {
			e.driveInlineEngine(t)
			continue
		}
		t.resume <- struct{}{}
		msg := <-e.sched
		switch msg.kind {
		case yieldRequeue:
			e.push(msg.task)
		case yieldBlock:
			msg.task.blocked = true
			e.met.Blocks++
			e.record(flightBlock, msg.task)
		case yieldDone:
			e.live--
		case yieldPanic:
			e.live--
			panic(&TaskPanicError{TaskName: msg.task.name, Value: msg.val, Stack: msg.stack, State: e.snapshotState()})
		case yieldResched:
			// A task-goroutine dispatcher hit a cold edge mid-inline-chain
			// and handed control back; the loop re-diagnoses from the top.
		}
	}
}

func (e *Engine) describeBlocked() string {
	return e.snapshotState().blockedSummary()
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// ID returns the task's spawn index.
func (t *Task) ID() int { return t.id }

// Time returns the task's local clock.
func (t *Task) Time() Time { return t.time }

// SetTime advances the task's local clock without yielding to the engine.
// Use it for purely local charges (e.g. L1 hits) that touch no shared
// state. It never moves the clock backwards.
func (t *Task) SetTime(tm Time) {
	if tm > t.time {
		t.time = tm
	}
}

// Advance adds d to the local clock without yielding.
func (t *Task) Advance(d Time) { t.time += d }

// Sync yields to the engine and returns once this task is globally minimal
// again. Call it before touching shared model state so that mutations are
// applied in timestamp order.
//
// When the task is already globally minimal — no queued task precedes it
// under (time, id) — the engine would dispatch it right back, so Sync
// returns without the channel round trip (see the fast-path invariant in
// the Engine doc). The engine clock still advances to the task's time.
//
// Otherwise a queued task precedes this one, and the engine's only move
// would be to pop and resume it — so the yielding task does that itself
// (the handoff invariant in the Engine doc): swap self for the heap
// minimum in one sift, advance the clock, resume the winner directly,
// park. One channel operation and one goroutine switch instead of two
// of each. Only the cold edges — abort, MaxTime — fall back to the
// engine handshake.
func (t *Task) Sync() {
	e := t.engine
	if !e.noFastPath && (e.MaxTime == 0 || t.time <= e.MaxTime) &&
		(e.queue.len() == 0 || t.before(e.queue.peek())) && e.abortPollOK() {
		e.met.SyncFast++
		e.now = t.time
		if e.now >= e.nextEpoch {
			e.epochTick()
		}
		return
	}
	e.met.SyncSlow++
	if t.inline != nil {
		panic("sim: Sync from inline task " + t.name + "'s Step; return StatusRunning instead")
	}
	if e.handoffOK(t.time) {
		e.met.HeapPushes++
		e.met.HeapPops++
		n := e.queue.replaceMin(t)
		if n == t {
			// The yielder is still globally minimal — possible only when
			// the fast path was declined for another reason (noFastPath,
			// or a strided abort poll that read a clear flag after all).
			// The engine would dispatch it right back; keep running.
			e.dispatchClock(t)
			return
		}
		t.queued = true
		n.queued = false
		e.dispatchClock(n)
		if n.inline != nil {
			e.handoffInline(t, n)
			return
		}
		e.met.Handoffs++
		e.record(flightHandoff, n)
		n.resume <- struct{}{}
		t.pause()
		return
	}
	e.sched <- yieldMsg{task: t, kind: yieldRequeue}
	t.pause()
}

// handoffOK reports whether the running task may dispatch the next task
// itself instead of bouncing through the engine goroutine. next is the
// local time of the yielder (Sync, which requeues itself) or of the
// heap head (Block, which does not); the task actually dispatched runs
// at min(next, heap head), which is what the MaxTime comparison needs.
// The cold edges stay with the engine, because they unwind Run with
// typed panics on the driving goroutine: a requested Abort and a
// dispatch that would cross MaxTime decline the handoff, forcing the
// handshake where Run raises *AbortError / *LivelockError. The abort
// flag is polled on every slow-path yield — an atomic load is noise
// next to the goroutine switch that follows — so cancellation latency
// is no worse than the engine path's once-per-dispatch check.
func (e *Engine) handoffOK(next Time) bool {
	if e.noHandoff || e.abortFlag.Load() {
		return false
	}
	if e.MaxTime == 0 {
		return true
	}
	if e.queue.len() > 0 && e.queue.peek().time < next {
		next = e.queue.peek().time
	}
	return next <= e.MaxTime
}

// dispatchClock advances the engine clock for a dispatch performed on a
// task goroutine, mirroring Run's dispatch loop: the scheduled-in-the-
// past consistency check, the clock write, the epoch hook. On a task
// goroutine the impossible-by-invariant panic surfaces as a
// *TaskPanicError instead of a raw engine panic; both are loud.
func (e *Engine) dispatchClock(n *Task) {
	if n.time < e.now {
		panic(fmt.Sprintf("sim: task %q scheduled in the past (%v < %v)", n.name, n.time, e.now))
	}
	e.now = n.time
	if e.now >= e.nextEpoch {
		e.epochTick()
	}
}

// abortStride is how many fast-path Syncs may pass between polls of the
// abort flag. It bounds cancellation latency on an all-fast-path
// simulation (one task, never yielding) at 64 Syncs while keeping the
// common case free of the atomic load.
const abortStride = 64

// abortPollOK amortizes the watchdog's cost on the Sync fast path: a
// decrement and branch on abortStride-1 calls out of abortStride, one
// atomic abortFlag load on the rest. A requested Abort declines the fast
// path, forcing the handshake where the engine raises the typed abort.
// Without this poll an all-fast-path simulation would be uncancelable.
// abortPoll is a plain field: only the domain's single running goroutine
// calls Sync, and the sched/resume handshake orders its writes.
func (e *Engine) abortPollOK() bool {
	e.abortPoll--
	if e.abortPoll >= 0 {
		return true
	}
	e.abortPoll = abortStride - 1
	return !e.abortFlag.Load()
}

// AdvanceTo moves the local clock to tm (if later) and syncs.
func (t *Task) AdvanceTo(tm Time) {
	t.SetTime(tm)
	t.Sync()
}

// Block suspends the task until another task calls Unblock. The task's
// clock may be moved forward by the waker.
func (t *Task) Block() { t.block("") }

// BlockOn is Block with a label naming the resource the task is waiting
// for ("lock mq", "barrier start", "dma dma0"). The label appears in
// deadlock diagnostics and engine-state snapshots alongside the task's
// last sync time, so a deadlock on a resource names the resource, not
// just the tasks.
func (t *Task) BlockOn(label string) { t.block(label) }

func (t *Task) block(label string) {
	e := t.engine
	if t.inline != nil {
		panic("sim: Block from inline task " + t.name + "'s Step; return StatusBlocked instead")
	}
	t.waitingOn = label
	if e.queue.len() > 0 && e.handoffOK(e.queue.peek().time) {
		// Runnable peers remain: mark this task blocked and dispatch the
		// heap minimum directly, exactly as the engine's yieldBlock
		// handling plus its next loop iteration would. Blocking with an
		// empty heap stays on the engine path — that is the deadlock the
		// engine must diagnose with a snapshot.
		e.met.Blocks++
		e.record(flightBlock, t)
		t.blocked = true
		n := e.queue.pop()
		n.queued = false
		e.met.HeapPops++
		e.dispatchClock(n)
		if n.inline != nil {
			e.handoffInline(t, n)
		} else {
			e.met.Handoffs++
			e.record(flightHandoff, n)
			n.resume <- struct{}{}
			t.pause()
		}
	} else {
		e.sched <- yieldMsg{task: t, kind: yieldBlock}
		t.pause()
	}
	t.waitingOn = ""
}

// Unblock makes a blocked task runnable again, no earlier than time at.
// The wake time is additionally clamped to the engine's current time: a
// wake event generated by a task running at time T cannot take effect
// before T. It must be called from a different, currently-running task's
// goroutine (the engine is single-threaded, so this is race-free).
func (t *Task) Unblock(at Time) {
	if t.done {
		panic("sim: Unblock of finished task " + t.name)
	}
	if !t.blocked {
		panic("sim: Unblock of runnable task " + t.name)
	}
	if now := t.engine.now; at < now {
		at = now
	}
	t.SetTime(at)
	t.engine.met.Unblocks++
	t.engine.record(flightUnblock, t)
	t.engine.push(t)
}

// before reports whether t precedes u in dispatch order: earlier local
// time, with the spawn id breaking ties so dispatch is deterministic.
func (t *Task) before(u *Task) bool {
	if t.time != u.time {
		return t.time < u.time
	}
	return t.id < u.id
}

// taskHeap is a 4-ary min-heap of tasks ordered by (time, id). It is
// hand-specialized rather than using container/heap: no interface boxing
// on push/pop, and the sift loops compare the (time, id) key directly.
// 4-ary halves the tree depth of the binary heap, which matters because
// the heap is touched twice per slow-path dispatch.
type taskHeap struct {
	s []*Task
}

const heapArity = 4

func (h *taskHeap) len() int { return len(h.s) }

// peek returns the minimum without removing it. Caller checks len > 0.
func (h *taskHeap) peek() *Task { return h.s[0] }

func (h *taskHeap) push(t *Task) {
	h.s = append(h.s, t)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !t.before(s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = t
}

// replaceMin pushes t and pops the global minimum in a single sift, the
// handoff dispatch's heap operation. When t precedes the current root —
// or the heap is empty — the heap is left untouched and t itself is
// returned; otherwise the root is returned and t sifts down from the
// root slot, halving the work of a separate push + pop. The result is
// always the minimum of {heap ∪ t}, and because (time, id) keys are
// unique and totally ordered, the pop sequence — hence the dispatch
// order — is identical to push(t) followed by pop() regardless of the
// differing internal heap shape.
func (h *taskHeap) replaceMin(t *Task) *Task {
	s := h.s
	n := len(s)
	if n == 0 || t.before(s[0]) {
		return t
	}
	top := s[0]
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s[c].before(s[min]) {
				min = c
			}
		}
		if !s[min].before(t) {
			break
		}
		s[i] = s[min]
		i = min
	}
	s[i] = t
	return top
}

func (h *taskHeap) pop() *Task {
	s := h.s
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = nil
	h.s = s[:n]
	if n == 0 {
		return top
	}
	s = h.s
	// Sift the former tail down from the root.
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s[c].before(s[min]) {
				min = c
			}
		}
		if !s[min].before(last) {
			break
		}
		s[i] = s[min]
		i = min
	}
	s[i] = last
	return top
}

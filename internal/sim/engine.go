package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Engine is a conservative discrete-event engine. Every simulated agent
// (a processor core, a DMA engine, a scheduling thread) is a Task backed
// by a goroutine. Exactly one goroutine — either the engine or a single
// task — runs at a time, so model code needs no locking. The engine always
// resumes the runnable task with the smallest local time, which keeps
// mutations of shared model state (caches, resource servers) ordered by
// timestamp.
//
// Concurrency contract: an Engine and its Tasks form one isolated
// scheduling domain driven by the single goroutine that calls Run — the
// handshake on sched/resume guarantees at most one goroutine of the
// domain executes at a time, so within a domain model code is
// effectively single-threaded. An Engine owns no process-global state,
// so any number of independent Engines may Run concurrently from
// different goroutines (the experiment runner in internal/bench relies
// on this); what is forbidden is sharing one Engine, Task, or any model
// object across domains. Run enforces the one-driver rule with an
// atomic guard so a violation fails loudly rather than racing.
type Engine struct {
	queue   taskQueue
	tasks   []*Task
	now     Time
	sched   chan yieldMsg
	live    int // tasks spawned and not yet finished
	started atomic.Bool
	// MaxTime, when non-zero, aborts the run if simulated time passes it.
	// It is a safety net against model-level livelock.
	MaxTime Time
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{sched: make(chan yieldMsg)}
}

// Now returns the time of the most recently dispatched event.
func (e *Engine) Now() Time { return e.now }

type yieldKind uint8

const (
	yieldRequeue yieldKind = iota // task advanced its clock; schedule again
	yieldBlock                    // task blocked; another task must unblock it
	yieldDone                     // task finished
)

type yieldMsg struct {
	task *Task
	kind yieldKind
}

// Task is a simulated agent with its own local clock. All methods must be
// called from the task's own goroutine unless documented otherwise.
type Task struct {
	engine  *Engine
	name    string
	id      int
	time    Time
	resume  chan struct{}
	blocked bool
	queued  bool
	done    bool
	index   int // heap index, -1 when not queued
}

// Spawn registers fn as a new task starting at time start. It may be called
// before Run or from a running task.
func (e *Engine) Spawn(name string, start Time, fn func(*Task)) *Task {
	t := &Task{
		engine: e,
		name:   name,
		id:     len(e.tasks),
		time:   start,
		resume: make(chan struct{}),
		index:  -1,
	}
	e.tasks = append(e.tasks, t)
	e.live++
	go func() {
		<-t.resume // wait for first dispatch
		fn(t)
		t.done = true
		e.sched <- yieldMsg{t, yieldDone}
	}()
	e.push(t)
	return t
}

func (e *Engine) push(t *Task) {
	if t.queued || t.done {
		return
	}
	t.queued = true
	t.blocked = false
	heap.Push(&e.queue, t)
}

// Run dispatches events until every task has finished. It panics on
// deadlock (live tasks remain but none is runnable) because a deadlock is
// always a bug in a model or workload, never a recoverable condition.
// It must be called exactly once, and only one goroutine may drive an
// Engine: the compare-and-swap below asserts it, making concurrent
// engines provably non-interfering (each is driven by its own caller).
func (e *Engine) Run() {
	if !e.started.CompareAndSwap(false, true) {
		panic("sim: Engine.Run called twice or from two goroutines")
	}
	for e.live > 0 {
		if e.queue.Len() == 0 {
			panic("sim: deadlock: " + e.describeBlocked())
		}
		t := heap.Pop(&e.queue).(*Task)
		t.queued = false
		if t.time < e.now {
			panic(fmt.Sprintf("sim: task %q scheduled in the past (%v < %v)", t.name, t.time, e.now))
		}
		e.now = t.time
		if e.MaxTime != 0 && e.now > e.MaxTime {
			panic(fmt.Sprintf("sim: exceeded MaxTime %v (model livelock?)", e.MaxTime))
		}
		t.resume <- struct{}{}
		msg := <-e.sched
		switch msg.kind {
		case yieldRequeue:
			e.push(msg.task)
		case yieldBlock:
			msg.task.blocked = true
		case yieldDone:
			e.live--
		}
	}
}

func (e *Engine) describeBlocked() string {
	var names []string
	for _, t := range e.tasks {
		if t.blocked && !t.done {
			names = append(names, t.name)
		}
	}
	sort.Strings(names)
	return "blocked tasks: " + strings.Join(names, ", ")
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// ID returns the task's spawn index.
func (t *Task) ID() int { return t.id }

// Time returns the task's local clock.
func (t *Task) Time() Time { return t.time }

// SetTime advances the task's local clock without yielding to the engine.
// Use it for purely local charges (e.g. L1 hits) that touch no shared
// state. It never moves the clock backwards.
func (t *Task) SetTime(tm Time) {
	if tm > t.time {
		t.time = tm
	}
}

// Advance adds d to the local clock without yielding.
func (t *Task) Advance(d Time) { t.time += d }

// Sync yields to the engine and returns once this task is globally minimal
// again. Call it before touching shared model state so that mutations are
// applied in timestamp order.
func (t *Task) Sync() {
	t.engine.sched <- yieldMsg{t, yieldRequeue}
	<-t.resume
}

// AdvanceTo moves the local clock to tm (if later) and syncs.
func (t *Task) AdvanceTo(tm Time) {
	t.SetTime(tm)
	t.Sync()
}

// Block suspends the task until another task calls Unblock. The task's
// clock may be moved forward by the waker.
func (t *Task) Block() {
	t.engine.sched <- yieldMsg{t, yieldBlock}
	<-t.resume
}

// Unblock makes a blocked task runnable again, no earlier than time at.
// The wake time is additionally clamped to the engine's current time: a
// wake event generated by a task running at time T cannot take effect
// before T. It must be called from a different, currently-running task's
// goroutine (the engine is single-threaded, so this is race-free).
func (t *Task) Unblock(at Time) {
	if t.done {
		panic("sim: Unblock of finished task " + t.name)
	}
	if !t.blocked {
		panic("sim: Unblock of runnable task " + t.name)
	}
	if now := t.engine.now; at < now {
		at = now
	}
	t.SetTime(at)
	t.engine.push(t)
}

// taskQueue is a min-heap of tasks ordered by (time, id); the id tiebreak
// makes dispatch deterministic.
type taskQueue []*Task

func (q taskQueue) Len() int { return len(q) }

func (q taskQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].id < q[j].id
}

func (q taskQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *taskQueue) Push(x any) {
	t := x.(*Task)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *taskQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

package sim

import (
	"testing"
	"time"
)

// BenchmarkSyncFastPath measures a lone task repeatedly advancing and
// syncing. With no peer at an earlier timestamp the task is always
// globally minimal, so this is the pure cost of one Sync in the common
// streaming case (the engine fast path, once it exists, should make it
// channel-free).
func BenchmarkSyncFastPath(b *testing.B) {
	e := NewEngine()
	e.Spawn("solo", 0, func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Advance(10 * Nanosecond)
			t.Sync()
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkSyncFastPathWatchdog is BenchmarkSyncFastPath with a watchdog
// armed but never firing: the Abort request never arrives, so the only
// extra work on the fast path is the strided abort poll — a decrement and
// branch, with one atomic abort-flag load every abortStride Syncs. The
// bench-check gate compares this against BenchmarkSyncFastPath's
// baseline to prove the watchdog's disabled cost stays one branch.
func BenchmarkSyncFastPathWatchdog(b *testing.B) {
	e := NewEngine()
	watchdog := time.AfterFunc(time.Hour, func() { e.Abort("bench watchdog") })
	defer watchdog.Stop()
	e.Spawn("solo", 0, func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Advance(10 * Nanosecond)
			t.Sync()
		}
	})
	b.ResetTimer()
	e.Run()
	if e.abortFlag.Load() {
		b.Fatal("watchdog fired during benchmark")
	}
}

// BenchmarkDispatch measures the contended dispatch path: 8 tasks in
// lockstep, so every Sync finds a peer at an earlier timestamp and must
// yield. With the direct handoff this is one heap sift, one channel
// send and one goroutine switch per event — the yielding task resumes
// its successor itself while the engine goroutine stays parked (the old
// engine round trip cost two channel operations and two switches).
func BenchmarkDispatch(b *testing.B) {
	e := NewEngine()
	const tasks = 8
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.Spawn("w", 0, func(t *Task) {
			for j := 0; j < per; j++ {
				t.Advance(10 * Nanosecond)
				t.Sync()
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkDispatchNoHandoff is BenchmarkDispatch with the handoff
// escape hatch thrown: every slow-path yield bounces through the engine
// goroutine. The gap between this and BenchmarkDispatch is the measured
// value of the task-to-task handoff.
func BenchmarkDispatchNoHandoff(b *testing.B) {
	e := NewEngine()
	e.noHandoff = true
	const tasks = 8
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.Spawn("w", 0, func(t *Task) {
			for j := 0; j < per; j++ {
				t.Advance(10 * Nanosecond)
				t.Sync()
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkDispatchLockstep is the batched-wake case the handoff was
// built for: 64 tasks all at the same timestamp, every dispatch an
// equal-time id tiebreak, so the whole run queue is walked task-to-task
// on one OS thread each round — the N-cores-in-lockstep pattern of a
// barrier-synchronized multicore simulation, with a deeper heap behind
// every sift.
func BenchmarkDispatchLockstep(b *testing.B) {
	e := NewEngine()
	const tasks = 64
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.Spawn("w", 0, func(t *Task) {
			for j := 0; j < per; j++ {
				t.Advance(10 * Nanosecond)
				t.Sync()
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// benchStepper is the inline twin of BenchmarkDispatch's worker body:
// advance 10ns per step until per steps have run.
type benchStepper struct{ n, per int }

func (s *benchStepper) Step(t *Task) Status {
	if s.n >= s.per {
		return StatusDone
	}
	s.n++
	t.Advance(10 * Nanosecond)
	return StatusRunning
}

// BenchmarkDispatchInline is BenchmarkDispatch with the 8 lockstep
// workers as inline state machines: every dispatch is a heap sift plus a
// plain function call on the engine goroutine — zero channel operations,
// zero goroutine switches. The gap between this and BenchmarkDispatch is
// the measured value of the inline representation, and bench-check pins
// the pair as a same-run ratio so host drift cannot fake a result.
func BenchmarkDispatchInline(b *testing.B) {
	e := NewEngine()
	const tasks = 8
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.SpawnInline("w", 0, &benchStepper{per: per})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkDispatchInlineGoroutine is BenchmarkDispatchInline with the
// identical Runnables forced onto goroutines (the noInline escape
// hatch): the same-day A/B control measuring exactly what the inline
// representation removes — the dispatch-path difference with zero
// workload-code difference.
func BenchmarkDispatchInlineGoroutine(b *testing.B) {
	e := NewEngine()
	e.noInline = true
	const tasks = 8
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.SpawnInline("w", 0, &benchStepper{per: per})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkSyncFastPathInline is BenchmarkSyncFastPath for a lone inline
// task: always globally minimal, so every step takes the inline spin —
// no heap traffic at all, just the Step call and the clock bump.
func BenchmarkSyncFastPathInline(b *testing.B) {
	e := NewEngine()
	e.SpawnInline("solo", 0, &benchStepper{per: b.N})
	b.ResetTimer()
	e.Run()
}

// BenchmarkServerAcquire measures the dominant calendar operation:
// monotone arrivals appending at the end of a busy calendar whose live
// window holds ~200 reservations (1us steps inside the 200us prune
// window), so pruning is continuously active.
func BenchmarkServerAcquire(b *testing.B) {
	s := NewServer("x")
	at := Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(at, 500*Nanosecond)
		at += Microsecond
	}
}

// BenchmarkFlightRecorderDisabled is BenchmarkDispatchInline with the
// flight recorder explicitly disarmed: the record sites compile to one
// always-false nil compare per dispatch. bench-check pins this against
// BenchmarkDispatchInline as a same-run ratio to prove the disabled
// recorder costs nothing on the hot dispatch path.
func BenchmarkFlightRecorderDisabled(b *testing.B) {
	e := NewEngine()
	e.SetFlightRecorder(0)
	const tasks = 8
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.SpawnInline("w", 0, &benchStepper{per: per})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkFlightRecorderEnabled arms a 256-event ring on the same
// workload: per dispatch, the extra work is one masked ring store — the
// price every fresh paperbench simulation pays for crash forensics.
func BenchmarkFlightRecorderEnabled(b *testing.B) {
	e := NewEngine()
	e.SetFlightRecorder(256)
	const tasks = 8
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.SpawnInline("w", 0, &benchStepper{per: per})
	}
	b.ResetTimer()
	e.Run()
	if e.fr == nil || e.fr.n == 0 {
		b.Fatal("recorder armed but no events recorded")
	}
}

package sim

import (
	"testing"
	"time"
)

// BenchmarkSyncFastPath measures a lone task repeatedly advancing and
// syncing. With no peer at an earlier timestamp the task is always
// globally minimal, so this is the pure cost of one Sync in the common
// streaming case (the engine fast path, once it exists, should make it
// channel-free).
func BenchmarkSyncFastPath(b *testing.B) {
	e := NewEngine()
	e.Spawn("solo", 0, func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Advance(10 * Nanosecond)
			t.Sync()
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkSyncFastPathWatchdog is BenchmarkSyncFastPath with a watchdog
// armed but never firing: the Abort request never arrives, so the only
// extra work on the fast path is the strided abort poll — a decrement and
// branch, with one atomic abort-flag load every abortStride Syncs. The
// bench-check gate compares this against BenchmarkSyncFastPath's
// baseline to prove the watchdog's disabled cost stays one branch.
func BenchmarkSyncFastPathWatchdog(b *testing.B) {
	e := NewEngine()
	watchdog := time.AfterFunc(time.Hour, func() { e.Abort("bench watchdog") })
	defer watchdog.Stop()
	e.Spawn("solo", 0, func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Advance(10 * Nanosecond)
			t.Sync()
		}
	})
	b.ResetTimer()
	e.Run()
	if e.abortFlag.Load() {
		b.Fatal("watchdog fired during benchmark")
	}
}

// BenchmarkDispatch measures the full scheduler round trip: 8 tasks in
// lockstep, so every Sync finds a peer at an earlier timestamp and must
// hand control back to the engine (heap push + pop + two channel
// operations + two goroutine switches per event).
func BenchmarkDispatch(b *testing.B) {
	e := NewEngine()
	const tasks = 8
	per := b.N/tasks + 1
	for i := 0; i < tasks; i++ {
		e.Spawn("w", 0, func(t *Task) {
			for j := 0; j < per; j++ {
				t.Advance(10 * Nanosecond)
				t.Sync()
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkServerAcquire measures the dominant calendar operation:
// monotone arrivals appending at the end of a busy calendar whose live
// window holds ~200 reservations (1us steps inside the 200us prune
// window), so pruning is continuously active.
func BenchmarkServerAcquire(b *testing.B) {
	s := NewServer("x")
	at := Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(at, 500*Nanosecond)
		at += Microsecond
	}
}

package sim

import "runtime/debug"

// This file is the inline-task representation: tasks whose bodies are
// explicit resumable state machines (Runnable) instead of goroutines.
// The dispatcher runs an inline task's next step as a plain function
// call on whichever goroutine is currently scheduling — the engine's
// Run loop, or a goroutine-backed task mid-handoff — so dispatching an
// inline task costs zero channel operations and zero goroutine
// switches. Goroutine-backed and inline tasks interleave freely in one
// scheduler heap under the same (time, id) total order; the schedule is
// provably identical between the two representations because both are
// dispatched by the same "pop the global minimum" rule, and because
// DriveRunnable gives every Runnable an exact goroutine-backed twin
// (the {inline on/off} axis of the schedule-equivalence matrix).
//
// Inline task ownership: an inline task has no goroutine, so its state
// machine's fields are part of the scheduling domain's state — owned by
// whichever single goroutine of the domain is currently dispatching,
// exactly like the engine's queue and clock. Every transfer of that
// ownership rides the same channel edges as before (task→task resume,
// task→engine sched, engine→task resume), so `go test -race` proving
// the handoff invariant proves the inline extension too; see DESIGN.md.

// Status is what a Runnable's Step reports about the task's state.
type Status uint8

const (
	// StatusRunning: the step advanced the task's clock (or not) and the
	// task wants to be scheduled again — the inline equivalent of Sync.
	StatusRunning Status = iota
	// StatusBlocked: the task cannot proceed until another task calls
	// Unblock on it — the inline equivalent of Block/BlockOn (set the
	// label with WillBlockOn before returning).
	StatusBlocked
	// StatusDone: the task has finished; Step will not be called again.
	StatusDone
)

// Runnable is the body of an inline task: an explicit state machine
// whose Step runs the task up to its next yield point and reports why
// it stopped. Step must not call Sync, Block, BlockOn or AdvanceTo on
// its own task — those park a goroutine the task does not have; it
// yields by returning instead. Everything else is allowed: Advance and
// SetTime move the clock, Unblock wakes peers, Spawn/SpawnInline create
// tasks, and shared model state may be touched exactly as a
// goroutine-backed body would between Syncs.
type Runnable interface {
	Step(t *Task) Status
}

// SpawnInline registers r as an inline task starting at time start. The
// task's steps run as plain function calls on whichever goroutine is
// dispatching — no goroutine, no channel operations, no stack — which
// is what makes an inline dispatch cheaper than even the direct
// task-to-task handoff. May be called before Run or from a running
// task (including from another Runnable's Step).
func (e *Engine) SpawnInline(name string, start Time, r Runnable) *Task {
	if r == nil {
		panic("sim: SpawnInline with nil Runnable")
	}
	if e.noInline {
		return e.Spawn(name, start, func(t *Task) { DriveRunnable(t, r) })
	}
	t := &Task{
		engine: e,
		name:   name,
		id:     len(e.tasks),
		time:   start,
		inline: r,
	}
	e.tasks = append(e.tasks, t)
	e.live++
	e.met.Spawns++
	e.push(t)
	return t
}

// DriveRunnable runs r to completion on a goroutine-backed task,
// translating each returned Status into the equivalent blocking call:
// StatusRunning → Sync, StatusBlocked → Block (with WillBlockOn's
// label), StatusDone → return. SpawnInline falls back to it when inline
// execution is disabled (noInline), and model packages use it to run
// the same state machine in both representations — which makes the
// inline on/off schedule equivalence hold by construction: both modes
// execute the identical sequence of Step calls and yields.
func DriveRunnable(t *Task, r Runnable) {
	for {
		switch r.Step(t) {
		case StatusRunning:
			t.Sync()
		case StatusBlocked:
			t.block(t.takeBlockLabel())
		case StatusDone:
			return
		default:
			panic("sim: Runnable.Step returned an invalid Status")
		}
	}
}

// WillBlockOn records the label for the StatusBlocked this task's Step
// is about to return — the inline equivalent of BlockOn's resource
// label, shown in deadlock diagnostics and engine-state snapshots. It
// only takes effect through the next StatusBlocked.
func (t *Task) WillBlockOn(label string) { t.blockLabel = label }

// takeBlockLabel consumes the label set by WillBlockOn.
func (t *Task) takeBlockLabel() string {
	l := t.blockLabel
	t.blockLabel = ""
	return l
}

// runStep executes one Step of inline task n. driver is the
// goroutine-backed task driving the dispatch chain, or nil when the
// engine goroutine is dispatching. A panic out of Step is routed
// exactly like a goroutine task body's panic: it surfaces out of Run on
// the engine goroutine as a *TaskPanicError naming n (forwarded over
// sched when a task goroutine was driving).
func (e *Engine) runStep(n, driver *Task) Status {
	e.met.InlineSteps++
	e.record(flightInlineStep, n)
	n.waitingOn = ""
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		n.done = true
		stack := string(debug.Stack())
		if driver == nil {
			e.live--
			panic(&TaskPanicError{TaskName: n.name, Value: r, Stack: stack, State: e.snapshotState()})
		}
		e.sched <- yieldMsg{task: n, kind: yieldPanic, val: r, stack: stack}
		driver.pause()
	}()
	return n.inline.Step(n)
}

// inlineSpinOK reports whether inline task t, which just yielded
// StatusRunning, may be stepped again immediately without touching the
// heap. The condition is exactly the Sync fast path's: t still precedes
// every queued task under (time, id), MaxTime is not crossed, and the
// strided abort poll stays clear — so the spin is schedule-invisible
// for the same reason the fast path is.
func (e *Engine) inlineSpinOK(t *Task) bool {
	return !e.noFastPath && (e.MaxTime == 0 || t.time <= e.MaxTime) &&
		(e.queue.len() == 0 || t.before(e.queue.peek())) && e.abortPollOK()
}

// dispatchOK reports whether a popped task m may be dispatched by a
// non-engine-loop driver, mirroring the cold edges Run's loop checks
// per iteration: a requested Abort and a dispatch crossing MaxTime must
// instead unwind Run on the engine goroutine with the typed diagnosis.
func (e *Engine) dispatchOK(m *Task) bool {
	if e.abortFlag.Load() {
		return false
	}
	return e.MaxTime == 0 || m.time <= e.MaxTime
}

// driveInlineEngine dispatches inline task t from Run's loop: t has
// been popped and the clock advanced. Steps run as plain calls on the
// engine goroutine; while t stays globally minimal it is re-stepped
// without touching the heap (the inline fast path), otherwise it is
// requeued / blocked / retired and the loop resumes scheduling.
func (e *Engine) driveInlineEngine(t *Task) {
	for {
		switch e.runStep(t, nil) {
		case StatusRunning:
			if e.inlineSpinOK(t) {
				e.now = t.time
				if e.now >= e.nextEpoch {
					e.epochTick()
				}
				continue
			}
			e.push(t)
			return
		case StatusBlocked:
			t.blocked = true
			t.waitingOn = t.takeBlockLabel()
			e.met.Blocks++
			e.record(flightBlock, t)
			return
		case StatusDone:
			t.done = true
			e.live--
			return
		}
	}
}

// handback wakes the parked engine goroutine so its loop can diagnose a
// cold edge (abort, livelock, deadlock, end of run) exactly as if the
// dispatch had never left it, then parks the caller like any yield.
func (e *Engine) handback(t *Task) {
	e.sched <- yieldMsg{kind: yieldResched}
	t.pause()
}

// handoffInline continues a task-to-task handoff whose next runnable is
// inline task n (already popped, clock advanced): the yielding
// goroutine-backed task t becomes the dispatcher, stepping n — and any
// inline successors after it — as plain function calls, until the next
// runnable is goroutine-backed (resume it and park, a normal handoff),
// is t itself (return: t's Sync/block call completes), or a cold edge
// routes back to the engine. This is the zero-switch core of the
// inline representation: a chain of inline events costs no channel
// operations at all.
func (e *Engine) handoffInline(t, n *Task) {
	for {
		var m *Task
		switch e.runStep(n, t) {
		case StatusRunning:
			if e.inlineSpinOK(n) {
				e.now = n.time
				if e.now >= e.nextEpoch {
					e.epochTick()
				}
				continue
			}
			// Requeue n and take the global minimum of heap ∪ {n} in one
			// sift, exactly as Sync's handoff path does for t.
			e.met.HeapPushes++
			e.met.HeapPops++
			m = e.queue.replaceMin(n)
			if m != n {
				n.queued = true
				m.queued = false
			}
		case StatusBlocked:
			n.blocked = true
			n.waitingOn = n.takeBlockLabel()
			e.met.Blocks++
			e.record(flightBlock, n)
			if e.queue.len() == 0 {
				// No runnable task remains. With t blocked too this is the
				// deadlock the engine must diagnose with a snapshot.
				e.handback(t)
				return
			}
			m = e.queue.pop()
			m.queued = false
			e.met.HeapPops++
		case StatusDone:
			n.done = true
			e.live--
			if e.queue.len() == 0 {
				e.handback(t)
				return
			}
			m = e.queue.pop()
			m.queued = false
			e.met.HeapPops++
		}
		if !e.dispatchOK(m) {
			e.push(m)
			e.handback(t)
			return
		}
		e.dispatchClock(m)
		if m == t {
			return
		}
		if m.inline != nil {
			n = m
			continue
		}
		e.met.Handoffs++
		e.record(flightHandoff, m)
		m.resume <- struct{}{}
		t.pause()
		return
	}
}

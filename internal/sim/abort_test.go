package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// recoverRunError runs e.Run, recovers its panic, drains the engine, and
// returns the typed run error (nil if Run completed normally). It is the
// test-side copy of what core.System.Run does.
func recoverRunError(e *Engine) (rerr error) {
	defer e.Shutdown()
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				rerr = err
				return
			}
			panic(r)
		}
	}()
	e.Run()
	return nil
}

// TestAbortFromRunLoop aborts a multi-task simulation from another
// goroutine (the watchdog pattern) and checks the typed error and its
// progress dump.
func TestAbortFromRunLoop(t *testing.T) {
	e := NewEngine()
	started := make(chan struct{})
	var signaled bool
	for i := 0; i < 3; i++ {
		e.Spawn("core", Time(i), func(tk *Task) {
			for {
				if !signaled { // domain is single-threaded; no lock needed
					signaled = true
					close(started)
				}
				tk.Advance(3)
				tk.Sync()
			}
		})
	}
	go func() {
		<-started
		e.Abort("watchdog: job exceeded 1ms wall clock")
	}()
	err := recoverRunError(e)
	ae, ok := err.(*AbortError)
	if !ok {
		t.Fatalf("Run error = %#v, want *AbortError", err)
	}
	if ae.Reason != "watchdog: job exceeded 1ms wall clock" {
		t.Fatalf("abort reason = %q", ae.Reason)
	}
	st := ae.EngineState()
	if st.Live != 3 || len(st.Tasks) != 3 {
		t.Fatalf("snapshot = %+v, want 3 live tasks", st)
	}
	if !strings.Contains(ae.Error(), "sim: aborted: watchdog") {
		t.Fatalf("Error() = %q", ae.Error())
	}
}

// TestAbortCancelsFastPathLoop proves the watchdog can cancel a
// simulation that never takes the slow path: a lone task advancing and
// syncing forever is all fast path, so only the abort check inside Sync
// can stop it.
func TestAbortCancelsFastPathLoop(t *testing.T) {
	e := NewEngine()
	started := make(chan struct{})
	var once bool
	e.Spawn("spinner", 0, func(tk *Task) {
		for {
			if !once {
				once = true
				close(started)
			}
			tk.Advance(1)
			tk.Sync()
		}
	})
	done := make(chan error, 1)
	go func() { done <- recoverRunError(e) }()
	<-started
	e.Abort("watchdog: stalled")
	select {
	case err := <-done:
		if _, ok := err.(*AbortError); !ok {
			t.Fatalf("Run error = %#v, want *AbortError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not cancel the fast-path loop")
	}
}

// TestAbortLandsMidHandoff is the handoff-dispatch regression: a
// watchdog Abort that arrives while tasks are resuming each other
// directly — the engine goroutine parked the whole time — must still
// cancel the run with a typed *AbortError and a coherent EngineState
// snapshot, because every handoff polls the abort flag and routes the
// yield back through the engine handshake when it is set. The tasks
// run in lockstep so every Sync is a slow-path dispatch (all handoffs
// until the abort lands).
func TestAbortLandsMidHandoff(t *testing.T) {
	e := NewEngine()
	started := make(chan struct{})
	var once bool
	const tasks = 4
	for i := 0; i < tasks; i++ {
		e.Spawn("core", 0, func(tk *Task) {
			for {
				if !once {
					once = true
					close(started)
				}
				tk.Advance(3)
				tk.Sync()
			}
		})
	}
	done := make(chan error, 1)
	go func() { done <- recoverRunError(e) }()
	<-started
	e.Abort("watchdog: handoff loop stalled")
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not cancel the handoff loop")
	}
	ae, ok := err.(*AbortError)
	if !ok {
		t.Fatalf("Run error = %#v, want *AbortError", err)
	}
	if ae.Reason != "watchdog: handoff loop stalled" {
		t.Fatalf("abort reason = %q", ae.Reason)
	}
	st := ae.EngineState()
	if st.Live != tasks || len(st.Tasks) != tasks {
		t.Fatalf("snapshot = %+v, want %d live tasks", st, tasks)
	}
	// The snapshot must be internally consistent even though the abort
	// interrupted a task-to-task dispatch chain: every task is accounted
	// for as runnable (parked mid-yield) — none can be "running" or
	// "done" — and the handoff counter proves the chain was active.
	for _, ts := range st.Tasks {
		if ts.State != "runnable" {
			t.Fatalf("task %s state = %q after abort, want runnable (%+v)", ts.Name, ts.State, st.Tasks)
		}
	}
	if st.Metrics.Handoffs == 0 {
		t.Fatalf("abort landed but no handoffs were counted: %+v", st.Metrics)
	}
}

// TestAbortFirstReasonWins pins the Abort contract: concurrent or
// repeated Aborts keep the first reason.
func TestAbortFirstReasonWins(t *testing.T) {
	e := NewEngine()
	e.Abort("first")
	e.Abort("second")
	e.Spawn("a", 0, func(tk *Task) {})
	err := recoverRunError(e)
	ae, ok := err.(*AbortError)
	if !ok || ae.Reason != "first" {
		t.Fatalf("Run error = %#v, want *AbortError with reason \"first\"", err)
	}
}

// TestAbortAfterRunIsNoOp pins the report-finalization invariant: once
// Run has returned, Abort must have no effect (DESIGN.md).
func TestAbortAfterRunIsNoOp(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", 0, func(tk *Task) { tk.Advance(5); tk.Sync() })
	if err := recoverRunError(e); err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
	e.Abort("too late") // must not panic or disturb anything
	if e.Now() != 5 {
		t.Fatalf("Now = %v after post-Run Abort, want 5", e.Now())
	}
}

// TestTaskPanicForwarded proves a panic in model code on a task
// goroutine surfaces as a typed *TaskPanicError out of Run — on the
// driving goroutine — naming the task and carrying its stack.
func TestTaskPanicForwarded(t *testing.T) {
	e := NewEngine()
	e.Spawn("victim", 0, func(tk *Task) {
		tk.Advance(7)
		tk.Sync()
		panic("model bug: negative occupancy")
	})
	e.Spawn("bystander", 1, func(tk *Task) { tk.Block() })
	err := recoverRunError(e)
	pe, ok := err.(*TaskPanicError)
	if !ok {
		t.Fatalf("Run error = %#v, want *TaskPanicError", err)
	}
	if pe.TaskName != "victim" {
		t.Fatalf("TaskName = %q, want victim", pe.TaskName)
	}
	if pe.Value != "model bug: negative occupancy" {
		t.Fatalf("Value = %v", pe.Value)
	}
	if !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("Stack missing: %q", pe.Stack)
	}
	if !strings.Contains(pe.Error(), `task "victim" panicked`) {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

// TestLivelockTypedError checks the MaxTime safety net raises a typed
// value whose message keeps the historical wording.
func TestLivelockTypedError(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 100
	e.Spawn("runaway", 0, func(tk *Task) {
		for {
			tk.Advance(60)
			tk.Sync()
		}
	})
	e.Spawn("peer", 0, func(tk *Task) {
		for {
			tk.Advance(60)
			tk.Sync()
		}
	})
	err := recoverRunError(e)
	le, ok := err.(*LivelockError)
	if !ok {
		t.Fatalf("Run error = %#v, want *LivelockError", err)
	}
	if le.MaxTime != 100 {
		t.Fatalf("MaxTime = %v", le.MaxTime)
	}
	if !strings.Contains(le.Error(), "exceeded MaxTime") || !strings.Contains(le.Error(), "livelock") {
		t.Fatalf("Error() = %q", le.Error())
	}
}

// TestShutdownDrainsParkedGoroutines proves a failed run leaks no task
// goroutines once Shutdown has drained them — channel-parked goroutines
// are never garbage collected, so without the drain every failed job in
// a long campaign would pin its tasks forever.
func TestShutdownDrainsParkedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		e := NewEngine()
		for j := 0; j < 8; j++ {
			e.Spawn("stuck", Time(j), func(tk *Task) {
				tk.Advance(5)
				tk.Sync()
				tk.BlockOn("nothing ever")
			})
		}
		if _, ok := recoverRunError(e).(*DeadlockError); !ok {
			t.Fatal("expected deadlock")
		}
	}
	// Give the drained goroutines a moment to exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after drain", before, n)
	}
}

// TestShutdownIdempotent checks repeated Shutdown calls are safe, as are
// Shutdowns of engines that finished cleanly or never ran.
func TestShutdownIdempotent(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", 0, func(tk *Task) {})
	if err := recoverRunError(e); err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
	e.Shutdown()
	e.Shutdown()

	fresh := NewEngine()
	fresh.Shutdown() // never ran, no tasks
}

// TestEngineStateSnapshotStates covers the per-task state labels in the
// progress dump.
func TestEngineStateSnapshotStates(t *testing.T) {
	e := NewEngine()
	e.Spawn("finisher", 0, func(tk *Task) {})
	e.Spawn("blocker", 1, func(tk *Task) { tk.BlockOn("lock q.lock") })
	e.Spawn("runner", 2, func(tk *Task) {
		tk.Advance(50)
		tk.Sync()
		tk.Block()
	})
	err := recoverRunError(e)
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run error = %#v, want *DeadlockError", err)
	}
	states := map[string]string{}
	for _, ts := range de.State.Tasks {
		states[ts.Name] = ts.State
	}
	want := map[string]string{"finisher": "done", "blocker": "blocked", "runner": "blocked"}
	for name, st := range want {
		if states[name] != st {
			t.Fatalf("task %s state = %q, want %q (all: %v)", name, states[name], st, states)
		}
	}
}

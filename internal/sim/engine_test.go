package sim

import (
	"testing"
	"testing/quick"
)

func TestClockPeriods(t *testing.T) {
	cases := []struct {
		mhz    uint64
		period Time
	}{
		{800, 1250 * Picosecond},
		{1600, 625 * Picosecond},
		{3200, 312500 * Femtosecond},
		{6400, 156250 * Femtosecond},
	}
	for _, c := range cases {
		if got := MHz(c.mhz).Period; got != c.period {
			t.Errorf("MHz(%d).Period = %v, want %v", c.mhz, got, c.period)
		}
	}
}

func TestClockCycles(t *testing.T) {
	c := MHz(800)
	if got := c.Cycles(4); got != 5*Nanosecond {
		t.Errorf("Cycles(4) = %v, want 5ns", got)
	}
	if got := c.ToCycles(5 * Nanosecond); got != 4 {
		t.Errorf("ToCycles(5ns) = %d, want 4", got)
	}
	// Rounding up.
	if got := c.ToCycles(5*Nanosecond + 1); got != 5 {
		t.Errorf("ToCycles(5ns+1fs) = %d, want 5", got)
	}
}

func TestClockRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		c := MHz(3200)
		return c.ToCycles(c.Cycles(uint64(n))) == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{70 * Nanosecond, "70.000ns"},
		{2500 * Nanosecond, "2.500us"},
		{3 * Millisecond, "3.000ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdersTasksByTime(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("late", 100, func(tk *Task) {
		order = append(order, "late@start")
		tk.Advance(50)
		tk.Sync()
		order = append(order, "late@end")
	})
	e.Spawn("early", 10, func(tk *Task) {
		order = append(order, "early@start")
		tk.Advance(200)
		tk.Sync()
		order = append(order, "early@end")
	})
	e.Run()
	want := []string{"early@start", "late@start", "late@end", "early@end"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineDeterministicTieBreak(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn("t", 5, func(tk *Task) { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] || a[i] != i {
			t.Fatalf("non-deterministic or unordered dispatch: %v vs %v", a, b)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	e := NewEngine()
	var waiter *Task
	var wokeAt Time
	e.Spawn("waiter", 0, func(tk *Task) {
		waiter = tk
		tk.Block()
		wokeAt = tk.Time()
	})
	e.Spawn("waker", 10, func(tk *Task) {
		tk.Advance(90)
		tk.Sync()
		waiter.Unblock(tk.Time())
	})
	e.Run()
	if wokeAt != 100 {
		t.Errorf("waiter woke at %d, want 100", wokeAt)
	}
}

func TestUnblockNeverMovesClockBackwards(t *testing.T) {
	e := NewEngine()
	var wokeAt Time
	waiter := e.Spawn("waiter", 0, func(tk *Task) {
		tk.Advance(500)
		tk.Sync()
		tk.Block()
		wokeAt = tk.Time()
	})
	e.Spawn("waker", 1000, func(tk *Task) {
		waiter.Unblock(10) // earlier than both clocks
	})
	e.Run()
	// The wake must not precede the waking event (t=1000), and certainly
	// not the waiter's own clock (t=500).
	if wokeAt != 1000 {
		t.Errorf("waiter woke at %d, want 1000", wokeAt)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	e.Spawn("stuck", 0, func(tk *Task) { tk.Block() })
	e.Run()
}

func TestSpawnFromRunningTask(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", 0, func(tk *Task) {
		tk.engine.Spawn("child", tk.Time()+5, func(c *Task) { childRan = true })
		tk.Advance(100)
		tk.Sync()
	})
	e.Run()
	if !childRan {
		t.Error("child task did not run")
	}
}

func TestServerFIFOContention(t *testing.T) {
	s := NewServer("bus")
	start1 := s.Acquire(0, 10)
	start2 := s.Acquire(3, 10)
	start3 := s.Acquire(25, 10)
	if start1 != 0 || start2 != 10 || start3 != 25 {
		t.Errorf("starts = %d,%d,%d; want 0,10,25", start1, start2, start3)
	}
	if s.BusyTime() != 30 || s.Uses() != 3 {
		t.Errorf("busy=%d uses=%d; want 30, 3", s.BusyTime(), s.Uses())
	}
}

func TestServerNeverOverlapsAndNeverEarly(t *testing.T) {
	// Property: grants start no earlier than requested, and tracked
	// reservations never overlap (they are sorted, disjoint intervals).
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		s := NewServer("x")
		for _, r := range reqs {
			dur := Time(r.Dur%64) + 1
			start := s.Acquire(Time(r.At), dur)
			if start < Time(r.At) {
				return false
			}
		}
		ivs := s.Reservations()
		for i := 1; i < len(ivs); i++ {
			if ivs[i][0] < ivs[i-1][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerBackfillsGaps(t *testing.T) {
	// A future booking must not delay an earlier-time request that fits
	// in the gap before it.
	s := NewServer("x")
	s.Acquire(1000, 10) // future booking [1000,1010)
	start := s.Acquire(0, 10)
	if start != 0 {
		t.Errorf("earlier request got start %d, want 0 (backfill)", start)
	}
	// But a request that does not fit before the booking queues after.
	start2 := s.Acquire(995, 10)
	if start2 != 1010 {
		t.Errorf("conflicting request got %d, want 1010", start2)
	}
}

func TestPipeTransfer(t *testing.T) {
	// 16 bytes/cycle at 800 MHz (1.25ns), 2.5ns latency: the paper's
	// crossbar port. A 32-byte transfer occupies 2 cycles.
	p := NewPipe("xbar", 16, MHz(800), 2500*Picosecond)
	done := p.Transfer(0, 32)
	want := 2*1250*Picosecond + 2500*Picosecond
	if done != want {
		t.Errorf("done = %v, want %v", done, want)
	}
	// A second transfer issued at time 0 queues behind the first but
	// overlaps in the pipeline.
	done2 := p.Transfer(0, 32)
	if done2 != want+2*1250*Picosecond {
		t.Errorf("done2 = %v, want %v", done2, want+2*1250*Picosecond)
	}
}

func TestPipeZeroBytes(t *testing.T) {
	p := NewPipe("x", 16, MHz(800), 10)
	if got := p.Transfer(100, 0); got != 110 {
		t.Errorf("zero-byte transfer done = %d, want 110", got)
	}
}

func TestEngineManyTasksProgress(t *testing.T) {
	e := NewEngine()
	total := 0
	for i := 0; i < 64; i++ {
		e.Spawn("w", Time(i), func(tk *Task) {
			for j := 0; j < 100; j++ {
				tk.Advance(7)
				tk.Sync()
			}
			total++
		})
	}
	e.Run()
	if total != 64 {
		t.Errorf("finished %d tasks, want 64", total)
	}
}

func TestServerPrunesOldReservations(t *testing.T) {
	s := NewServer("x")
	for i := Time(0); i < 100; i++ {
		s.Acquire(i*100, 50)
	}
	// An arrival far in the future makes the old intervals unreachable;
	// they must be pruned (bounded memory for long simulations).
	s.Acquire(10*pruneWindow, 10)
	if n := len(s.Reservations()); n > 4 {
		t.Errorf("%d reservations retained after pruning, want few", n)
	}
	// Utilization accounting survives pruning.
	if s.BusyTime() != 100*50+10 {
		t.Errorf("busy time %d, want %d", s.BusyTime(), 100*50+10)
	}
}

func TestEngineMaxTimeAborts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected MaxTime panic")
		}
	}()
	e := NewEngine()
	e.MaxTime = 1000
	e.Spawn("runaway", 0, func(tk *Task) {
		for {
			tk.Advance(100)
			tk.Sync()
		}
	})
	e.Run()
}

package sim

// Server models a contended resource (a bus, a cache port, a DRAM
// channel) as a busy-interval calendar. A request arriving at time t is
// granted the first gap of sufficient length starting no earlier than t.
//
// Transactions in this simulator reserve their whole resource chain when
// they are handled (e.g. a cache miss books the response bus slot at its
// future fill time), so a resource sees arrivals at non-monotone times.
// A single next-free-time scalar would let those future bookings block
// earlier requests; the calendar instead backfills gaps, which is what a
// real arbiter does with requests that are actually present at the time.
type Server struct {
	name string
	// busy holds non-overlapping reservations sorted by start time.
	busy    []interval
	busyAcc Time // total reserved time, for utilization
	uses    uint64
	maxAt   Time // latest arrival seen, for safe pruning
}

type interval struct{ start, end Time }

// pruneWindow bounds how far in the past a new arrival may land relative
// to the latest arrival seen. Arrivals carry times no earlier than the
// engine's current event time, and future bookings extend at most one
// transaction latency (far below this) ahead, so reservations older than
// the window can never interact with new arrivals.
const pruneWindow = 200 * Microsecond

// NewServer returns a named idle server.
func NewServer(name string) *Server { return &Server{name: name} }

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Acquire reserves the server for dur starting no earlier than at,
// returning the grant time. Zero-duration acquisitions return at.
func (s *Server) Acquire(at, dur Time) (start Time) {
	s.uses++
	s.busyAcc += dur
	if at > s.maxAt {
		s.maxAt = at
		s.prune()
	}
	if dur == 0 {
		return at
	}
	// Find the first gap of length dur at or after `at`.
	// Binary search for the first interval ending after `at`.
	lo, hi := 0, len(s.busy)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.busy[mid].end <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start = at
	idx := lo
	for idx < len(s.busy) {
		iv := s.busy[idx]
		if start+dur <= iv.start {
			break // fits in the gap before this interval
		}
		if iv.end > start {
			start = iv.end
		}
		idx++
	}
	s.insert(idx, interval{start, start + dur})
	return start
}

// insert places iv at position idx, merging with contiguous neighbors.
func (s *Server) insert(idx int, iv interval) {
	mergeLeft := idx > 0 && s.busy[idx-1].end == iv.start
	mergeRight := idx < len(s.busy) && s.busy[idx].start == iv.end
	switch {
	case mergeLeft && mergeRight:
		s.busy[idx-1].end = s.busy[idx].end
		s.busy = append(s.busy[:idx], s.busy[idx+1:]...)
	case mergeLeft:
		s.busy[idx-1].end = iv.end
	case mergeRight:
		s.busy[idx].start = iv.start
	default:
		s.busy = append(s.busy, interval{})
		copy(s.busy[idx+1:], s.busy[idx:])
		s.busy[idx] = iv
	}
}

// prune drops reservations that ended long before any possible future
// arrival.
func (s *Server) prune() {
	if s.maxAt < pruneWindow {
		return
	}
	cut := s.maxAt - pruneWindow
	n := 0
	for n < len(s.busy) && s.busy[n].end < cut {
		n++
	}
	if n > 0 {
		s.busy = append(s.busy[:0], s.busy[n:]...)
	}
}

// NextFree returns the end of the last reservation (idle time after all
// current bookings).
func (s *Server) NextFree() Time {
	if len(s.busy) == 0 {
		return 0
	}
	return s.busy[len(s.busy)-1].end
}

// BusyTime returns the total time reserved on the server.
func (s *Server) BusyTime() Time { return s.busyAcc }

// Uses returns the number of acquisitions.
func (s *Server) Uses() uint64 { return s.uses }

// Utilization returns reserved time divided by the window [0, end].
func (s *Server) Utilization(end Time) float64 {
	if end == 0 {
		return 0
	}
	return float64(s.busyAcc) / float64(end)
}

// Reservations returns the currently tracked busy intervals (tests).
func (s *Server) Reservations() [][2]Time {
	out := make([][2]Time, len(s.busy))
	for i, iv := range s.busy {
		out[i] = [2]Time{iv.start, iv.end}
	}
	return out
}

// Pipe models a pipelined link: each transfer occupies the server for an
// occupancy proportional to its size, and completes a fixed latency
// after service starts. Transfers of different requests overlap in the
// pipeline.
type Pipe struct {
	Server
	// BytesPerCycle is the link width; Clock gives the cycle time.
	BytesPerCycle uint64
	Clock         Clock
	// Latency is the pipeline depth: time from service start to delivery.
	Latency Time
}

// NewPipe returns a pipelined link.
func NewPipe(name string, bytesPerCycle uint64, clock Clock, latency Time) *Pipe {
	return &Pipe{
		Server:        Server{name: name},
		BytesPerCycle: bytesPerCycle,
		Clock:         clock,
		Latency:       latency,
	}
}

// Transfer moves nbytes through the pipe starting no earlier than at.
// It returns the time the last byte is delivered.
func (p *Pipe) Transfer(at Time, nbytes uint64) (done Time) {
	if nbytes == 0 {
		return at + p.Latency
	}
	cycles := (nbytes + p.BytesPerCycle - 1) / p.BytesPerCycle
	start := p.Acquire(at, p.Clock.Cycles(cycles))
	return start + p.Clock.Cycles(cycles) + p.Latency
}

package sim

// Server models a contended resource (a bus, a cache port, a DRAM
// channel) as a busy-interval calendar. A request arriving at time t is
// granted the first gap of sufficient length starting no earlier than t.
//
// Transactions in this simulator reserve their whole resource chain when
// they are handled (e.g. a cache miss books the response bus slot at its
// future fill time), so a resource sees arrivals at non-monotone times.
// A single next-free-time scalar would let those future bookings block
// earlier requests; the calendar instead backfills gaps, which is what a
// real arbiter does with requests that are actually present at the time.
//
// The calendar is kept as a ring: busy[head:] are the live reservations,
// sorted by start and disjoint. Pruning advances head instead of copying
// the slice, and the dead prefix is reclaimed in one amortized
// compaction once it dominates, so both the dominant append-at-end
// Acquire and prune are O(1) amortized; only the rare backfill insert
// still shifts elements.
type Server struct {
	name string
	// busy[head:] holds the live, non-overlapping reservations sorted by
	// start time; busy[:head] is pruned garbage awaiting compaction.
	busy    []interval
	head    int
	busyAcc Time // total reserved time, for utilization
	uses    uint64
	maxAt   Time // latest arrival seen, for safe pruning
	// lastEnd is the end of the latest-ending reservation ever granted.
	// Unlike the ring it survives pruning, so NextFree stays truthful
	// after old bookings are discarded.
	lastEnd Time
	// Calendar-maintenance counters (see ServerMetrics): how many
	// reservations pruning discarded and how often the ring compacted.
	pruned      uint64
	compactions uint64
}

// ServerMetrics aggregates calendar-maintenance counters across a set of
// servers. The model layers (noc, dram, uncore) sum their servers into
// one value per run so the ring calendar's behavior — how much history
// it sheds and how often it pays a compaction copy — is visible in every
// report, not just in microbenchmarks.
type ServerMetrics struct {
	Pruned      uint64 // reservations discarded past the prune window
	Compactions uint64 // amortized copies reclaiming the dead prefix
}

// AddMetrics accumulates this server's calendar counters into m.
func (s *Server) AddMetrics(m *ServerMetrics) {
	m.Pruned += s.pruned
	m.Compactions += s.compactions
}

// Snapshot emits the aggregated counters in a fixed order (probe layer).
func (m ServerMetrics) Snapshot(put func(name string, value float64)) {
	put("pruned", float64(m.Pruned))
	put("compactions", float64(m.Compactions))
}

type interval struct{ start, end Time }

// pruneWindow bounds how far in the past a new arrival may land relative
// to the latest arrival seen. Arrivals carry times no earlier than the
// engine's current event time, and future bookings extend at most one
// transaction latency (far below this) ahead, so reservations older than
// the window can never interact with new arrivals.
const pruneWindow = 200 * Microsecond

// NewServer returns a named idle server.
func NewServer(name string) *Server { return &Server{name: name} }

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Acquire reserves the server for dur starting no earlier than at,
// returning the grant time. Zero-duration acquisitions return at.
func (s *Server) Acquire(at, dur Time) (start Time) {
	s.uses++
	s.busyAcc += dur
	if at > s.maxAt {
		s.maxAt = at
		s.prune()
	}
	if dur == 0 {
		return at
	}
	n := len(s.busy)
	if s.head == n {
		// Ring empty (fresh server, or everything pruned): restart it.
		s.busy = append(s.busy[:0], interval{at, at + dur})
		s.head = 0
		s.grow(at + dur)
		return at
	}
	// Fast path: the request lands at or after the calendar's last
	// reservation — the dominant case on a busy resource with (mostly)
	// monotone arrivals. Append, merging when contiguous.
	if last := &s.busy[n-1]; at >= last.end {
		if at == last.end {
			last.end = at + dur
		} else {
			s.busy = append(s.busy, interval{at, at + dur})
		}
		s.grow(at + dur)
		return at
	}
	// General path: find the first gap of length dur at or after `at`.
	// Binary search the live window for the first interval ending after
	// `at`.
	lo, hi := s.head, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.busy[mid].end <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start = at
	idx := lo
	for idx < n {
		iv := s.busy[idx]
		if start+dur <= iv.start {
			break // fits in the gap before this interval
		}
		if iv.end > start {
			start = iv.end
		}
		idx++
	}
	s.insert(idx, interval{start, start + dur})
	s.grow(start + dur)
	return start
}

// grow records a new reservation end time for NextFree.
func (s *Server) grow(end Time) {
	if end > s.lastEnd {
		s.lastEnd = end
	}
}

// insert places iv at position idx of busy (idx >= head), merging with
// contiguous neighbors. When the ring has pruned slack at the front and
// the insertion point is nearer the head, the shorter head side shifts
// left into the slack instead of memmoving the tail right.
func (s *Server) insert(idx int, iv interval) {
	mergeLeft := idx > s.head && s.busy[idx-1].end == iv.start
	mergeRight := idx < len(s.busy) && s.busy[idx].start == iv.end
	switch {
	case mergeLeft && mergeRight:
		s.busy[idx-1].end = s.busy[idx].end
		s.busy = append(s.busy[:idx], s.busy[idx+1:]...)
	case mergeLeft:
		s.busy[idx-1].end = iv.end
	case mergeRight:
		s.busy[idx].start = iv.start
	case s.head > 0 && idx-s.head < len(s.busy)-idx:
		copy(s.busy[s.head-1:], s.busy[s.head:idx])
		s.head--
		s.busy[idx-1] = iv
	default:
		s.busy = append(s.busy, interval{})
		copy(s.busy[idx+1:], s.busy[idx:])
		s.busy[idx] = iv
	}
}

// prune advances the ring head past reservations that ended long before
// any possible future arrival, compacting the slice only once the dead
// prefix is both large and the majority of it.
func (s *Server) prune() {
	if s.maxAt < pruneWindow {
		return
	}
	cut := s.maxAt - pruneWindow
	h := s.head
	for h < len(s.busy) && s.busy[h].end < cut {
		h++
	}
	s.pruned += uint64(h - s.head)
	s.head = h
	if h > 64 && 2*h >= len(s.busy) {
		live := copy(s.busy, s.busy[h:])
		s.busy = s.busy[:live]
		s.head = 0
		s.compactions++
	}
}

// NextFree returns the time the server falls idle after every
// reservation granted so far: the end of the latest-ending booking.
// Unlike Reservations it is not affected by pruning — the answer is
// remembered even after the booking itself has been discarded — so a
// fresh server returns 0 and a used one never forgets its last grant.
func (s *Server) NextFree() Time { return s.lastEnd }

// BusyTime returns the total time reserved on the server.
func (s *Server) BusyTime() Time { return s.busyAcc }

// Uses returns the number of acquisitions.
func (s *Server) Uses() uint64 { return s.uses }

// Utilization returns reserved time divided by the window [0, end].
func (s *Server) Utilization(end Time) float64 {
	if end == 0 {
		return 0
	}
	return float64(s.busyAcc) / float64(end)
}

// Reservations returns the currently tracked busy intervals (tests).
// Reservations older than the prune window may already have been
// dropped; aggregate accounting (BusyTime, Uses, NextFree) survives
// pruning, the interval list does not.
func (s *Server) Reservations() [][2]Time {
	live := s.busy[s.head:]
	out := make([][2]Time, len(live))
	for i, iv := range live {
		out[i] = [2]Time{iv.start, iv.end}
	}
	return out
}

// Pipe models a pipelined link: each transfer occupies the server for an
// occupancy proportional to its size, and completes a fixed latency
// after service starts. Transfers of different requests overlap in the
// pipeline.
type Pipe struct {
	Server
	// BytesPerCycle is the link width; Clock gives the cycle time.
	BytesPerCycle uint64
	Clock         Clock
	// Latency is the pipeline depth: time from service start to delivery.
	Latency Time
}

// NewPipe returns a pipelined link.
func NewPipe(name string, bytesPerCycle uint64, clock Clock, latency Time) *Pipe {
	return &Pipe{
		Server:        Server{name: name},
		BytesPerCycle: bytesPerCycle,
		Clock:         clock,
		Latency:       latency,
	}
}

// Transfer moves nbytes through the pipe starting no earlier than at.
// It returns the time the last byte is delivered.
func (p *Pipe) Transfer(at Time, nbytes uint64) (done Time) {
	done, _ = p.TransferTracked(at, nbytes)
	return done
}

// TransferTracked is Transfer, additionally returning the arbitration
// wait: time from arrival at the link to service start (zero when the
// link was free). The latency-distribution layer records it as the NoC
// acquire wait.
func (p *Pipe) TransferTracked(at Time, nbytes uint64) (done, wait Time) {
	if nbytes == 0 {
		return at + p.Latency, 0
	}
	cycles := (nbytes + p.BytesPerCycle - 1) / p.BytesPerCycle
	start := p.Acquire(at, p.Clock.Cycles(cycles))
	return start + p.Clock.Cycles(cycles) + p.Latency, start - at
}

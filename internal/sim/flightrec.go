package sim

// Flight recorder: a fixed-size ring of the last K scheduler events —
// dispatches, handoffs, inline steps, blocks, unblocks — so that when a
// run dies (deadlock, watchdog abort, task panic) the typed failure
// carries not just where every task stood (EngineState.Tasks) but the
// event history that led there. The run layer arms it per job; disabled
// it costs one always-false nil compare at each record site
// (BenchmarkFlightRecorderDisabled gates this against the unrecorded
// dispatch benchmarks), and the Sync fast path records nothing in
// either mode, so fast-path cost is untouched.
//
// Ownership follows the engine's scheduling state: events are recorded
// only by the domain's single running goroutine (the engine loop or the
// task currently driving a handoff chain), so the ring needs no locks,
// and the same channel edges that order the scheduler's fields order
// the ring for the race detector.

// flightKind enumerates the recorded scheduler-event kinds.
type flightKind uint8

const (
	flightDispatch   flightKind = iota // Run's loop resumed a goroutine task
	flightHandoff                      // a yielding task resumed its successor directly
	flightInlineStep                   // an inline task's Step ran as a plain call
	flightBlock                        // a task blocked awaiting an Unblock
	flightUnblock                      // a blocked task was made runnable
	numFlightKinds
)

var flightKindNames = [numFlightKinds]string{
	"dispatch", "handoff", "inline-step", "block", "unblock",
}

// flightEvent is one ring slot, kept compact (16 bytes) so recording is
// a word-aligned store pair. The task is stored by spawn id; the name
// is resolved from Engine.tasks only at snapshot time.
type flightEvent struct {
	time Time
	id   int32
	kind flightKind
}

// flightRecorder is the ring. cap(ring) is a power of two so the write
// index is a mask, not a modulo.
type flightRecorder struct {
	ring []flightEvent
	mask uint64
	n    uint64 // events ever recorded; n&mask is the next write slot
}

func (r *flightRecorder) record(ev flightEvent) {
	r.ring[r.n&r.mask] = ev
	r.n++
}

// SetFlightRecorder arms the engine's flight recorder to retain the
// last k scheduler events (rounded up to a power of two); k <= 0
// disables it. Call before Run.
func (e *Engine) SetFlightRecorder(k int) {
	if k <= 0 {
		e.fr = nil
		return
	}
	size := 1
	for size < k {
		size <<= 1
	}
	e.fr = &flightRecorder{ring: make([]flightEvent, size), mask: uint64(size - 1)}
}

// record appends a scheduler event for task t. The nil compare is the
// entire disabled cost; both halves inline into the record sites.
func (e *Engine) record(k flightKind, t *Task) {
	if fr := e.fr; fr != nil {
		fr.record(flightEvent{time: t.time, id: int32(t.id), kind: k})
	}
}

// FlightEvent is one scheduler event as carried in an EngineState: what
// the flight recorder logged, with the task name resolved.
type FlightEvent struct {
	Time Time   `json:"time_fs"`
	Kind string `json:"kind"`
	Task string `json:"task"`
	ID   int    `json:"id"`
}

// snapshot renders the ring oldest-first, resolving task names. Engine-
// domain goroutine only (it reads the ring and tasks without locks).
func (r *flightRecorder) snapshot(tasks []*Task) []FlightEvent {
	if r == nil || r.n == 0 {
		return nil
	}
	count := r.n
	if count > uint64(len(r.ring)) {
		count = uint64(len(r.ring))
	}
	out := make([]FlightEvent, 0, count)
	for i := r.n - count; i < r.n; i++ {
		ev := r.ring[i&r.mask]
		fe := FlightEvent{Time: ev.time, Kind: flightKindNames[ev.kind], ID: int(ev.id)}
		if int(ev.id) < len(tasks) {
			fe.Task = tasks[ev.id].name
		}
		out = append(out, fe)
	}
	return out
}

package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestDeadlockMessageNamesBlockedTasks pins the deadlock diagnostic: the
// panic must name every blocked task, sorted, so a model bug is
// attributable without a debugger.
func TestDeadlockMessageNamesBlockedTasks(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := fmt.Sprint(r)
		want := "sim: deadlock: blocked tasks: alpha, beta"
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock panic = %q, want it to contain %q", msg, want)
		}
	}()
	e := NewEngine()
	e.Spawn("beta", 5, func(tk *Task) { tk.Block() })
	e.Spawn("alpha", 0, func(tk *Task) { tk.Block() })
	e.Run()
}

// TestDeadlockMessageNamesServerAndSyncTime pins the labeled deadlock
// diagnostic: a task parked on a resource via BlockOn — here waiting for
// a Server, the pattern the model layers use for contended hardware —
// must show up with the server's name and the task's last sync time, so
// a resource deadlock is attributable to the resource, not just the
// tasks. Unlabeled blockers must keep rendering as bare names alongside.
func TestDeadlockMessageNamesServerAndSyncTime(t *testing.T) {
	srv := NewServer("dram.ch0")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := fmt.Sprint(r)
		want := "sim: deadlock: blocked tasks: plain, waiter (awaiting server dram.ch0, last sync 300.000ns)"
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock panic = %q, want it to contain %q", msg, want)
		}
		de, ok := r.(*DeadlockError)
		if !ok {
			t.Fatalf("deadlock panic value = %T, want *DeadlockError", r)
		}
		for _, ts := range de.State.Tasks {
			if ts.Name == "waiter" {
				if ts.WaitingOn != "server dram.ch0" || ts.Time != 300*Nanosecond {
					t.Fatalf("waiter snapshot = %+v, want WaitingOn=%q Time=300ns", ts, "server dram.ch0")
				}
			}
		}
	}()
	e := NewEngine()
	e.Spawn("waiter", 0, func(tk *Task) {
		tk.Advance(300 * Nanosecond)
		tk.Sync()
		srv.Acquire(tk.Time(), 100*Nanosecond)
		tk.BlockOn("server " + srv.Name())
	})
	e.Spawn("plain", 10, func(tk *Task) { tk.Block() })
	e.Run()
}

// step is one observable scheduling event: a task returning from Sync at
// a local time. The sequence of steps is the engine's event order.
type step struct {
	id int
	tm Time
}

// runInterleaveStress runs two twin tasks in lockstep (every Sync is a
// tiebreak on equal timestamps, forcing the slow path) alongside a
// fine-grained task that stays behind them (its Syncs are all fast-path
// eligible), so both dispatch paths interleave constantly.
func runInterleaveStress(disableFastPath bool) []step {
	e := NewEngine()
	e.noFastPath = disableFastPath
	var order []step
	for i := 0; i < 2; i++ {
		id := i
		e.Spawn("twin", 0, func(tk *Task) {
			for j := 0; j < 500; j++ {
				tk.Advance(10)
				tk.Sync()
				order = append(order, step{id, tk.Time()})
			}
		})
	}
	e.Spawn("fine", 0, func(tk *Task) {
		for j := 0; j < 5000; j++ {
			tk.Advance(1)
			tk.Sync()
			order = append(order, step{2, tk.Time()})
		}
	})
	e.Run()
	return order
}

// TestFastSlowPathInterleave asserts the stress schedule is deterministic
// and identical with the fast path enabled and disabled, including the
// equal-timestamp id tiebreak between the twins.
func TestFastSlowPathInterleave(t *testing.T) {
	fast := runInterleaveStress(false)
	again := runInterleaveStress(false)
	slow := runInterleaveStress(true)
	if len(fast) != 2*500+5000 {
		t.Fatalf("recorded %d steps, want %d", len(fast), 2*500+5000)
	}
	for i := range fast {
		if fast[i] != again[i] {
			t.Fatalf("step %d differs across identical runs: %v vs %v", i, fast[i], again[i])
		}
		if fast[i] != slow[i] {
			t.Fatalf("step %d differs with fast path off: fast %v, slow %v", i, fast[i], slow[i])
		}
	}
	// The twins' mutual order at equal timestamps must follow spawn id.
	var twins []step
	for _, s := range fast {
		if s.id < 2 {
			twins = append(twins, s)
		}
	}
	for i := 0; i < len(twins); i += 2 {
		if twins[i].tm != twins[i+1].tm {
			t.Fatalf("twin steps %d,%d at different times: %v", i, i+1, twins[i:i+2])
		}
	}
}

// dispatchMode is one corner of the {fastpath, handoff} on/off matrix.
type dispatchMode struct {
	name                  string
	noFastPath, noHandoff bool
}

// dispatchModes enumerates all four dispatch configurations. The first
// entry is the production default; every other corner must produce the
// same simulated timestamps.
var dispatchModes = []dispatchMode{
	{"fastpath+handoff", false, false},
	{"fastpath only", false, true},
	{"handoff only", true, false},
	{"engine only", true, true},
}

// TestFastPathScheduleEquivalence is the randomized-schedule oracle: for
// many random task sets (random start times, random per-step advances
// including zero, so equal timestamps are common), the observable event
// order must be byte-for-byte identical across the full 2×2
// {fastpath, handoff} on/off matrix. This is the determinism proof
// obligation of both the Sync fast path and the direct task-to-task
// handoff (see the Engine doc comment).
func TestFastPathScheduleEquivalence(t *testing.T) {
	runSchedule := func(seed int64, mode dispatchMode) []step {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		e.noFastPath = mode.noFastPath
		e.noHandoff = mode.noHandoff
		var order []step
		nTasks := 2 + rng.Intn(6)
		for i := 0; i < nTasks; i++ {
			id := i
			steps := 20 + rng.Intn(80)
			deltas := make([]Time, steps)
			for j := range deltas {
				deltas[j] = Time(rng.Intn(5)) // zeros exercise the tiebreak
			}
			e.Spawn(fmt.Sprintf("t%d", i), Time(rng.Intn(3)), func(tk *Task) {
				for _, d := range deltas {
					tk.Advance(d)
					tk.Sync()
					order = append(order, step{id, tk.Time()})
				}
			})
		}
		e.Run()
		return order
	}
	for seed := int64(0); seed < 50; seed++ {
		ref := runSchedule(seed, dispatchModes[0])
		for _, mode := range dispatchModes[1:] {
			got := runSchedule(seed, mode)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %d steps in %s, %d in %s",
					seed, len(ref), dispatchModes[0].name, len(got), mode.name)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: step %d diverges: %s %v, %s %v",
						seed, i, dispatchModes[0].name, ref[i], mode.name, got[i])
				}
			}
		}
	}
}

// TestHandoffBlockScheduleEquivalence extends the matrix oracle to the
// Block/Unblock edges the handoff also takes over: tasks randomly block
// themselves on a FIFO wait list that the next runner drains, so
// blocked-with-peers (handoff-eligible) and wake ordering interleave
// with plain Syncs. Every corner of the 2×2 matrix must produce the
// identical step sequence, including each task's wake times.
func TestHandoffBlockScheduleEquivalence(t *testing.T) {
	runSchedule := func(seed int64, mode dispatchMode) []step {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		e.noFastPath = mode.noFastPath
		e.noHandoff = mode.noHandoff
		var order []step
		var waiting []*Task // FIFO of blocked tasks; engine is single-threaded
		liveWorkers := 0
		nTasks := 3 + rng.Intn(5)
		for i := 0; i < nTasks; i++ {
			id := i
			steps := 30 + rng.Intn(50)
			choices := make([]int, steps)
			for j := range choices {
				choices[j] = rng.Intn(10)
			}
			liveWorkers++
			e.Spawn(fmt.Sprintf("t%d", i), Time(rng.Intn(3)), func(tk *Task) {
				for _, c := range choices {
					tk.Advance(Time(c % 5))
					tk.Sync()
					// Wake every current waiter now and then so blocked
					// tasks drain from inside the schedule too.
					for len(waiting) > 0 && c%3 == 0 {
						w := waiting[0]
						waiting = waiting[1:]
						w.Unblock(tk.Time() + Time(c%4))
					}
					// Task 0 never blocks, so the wait list always has a
					// potential drainer among the workers.
					if id != 0 && c%4 == 1 {
						waiting = append(waiting, tk)
						tk.BlockOn("test wait list")
					}
					order = append(order, step{id, tk.Time()})
				}
				liveWorkers--
			})
		}
		// A sweeper in the far future unblocks leftover waiters until every
		// worker has finished (a worker may re-block after a wake, so the
		// sweeper must outlive them all, not just drain the list once).
		e.Spawn("sweeper", 1_000_000, func(tk *Task) {
			for liveWorkers > 0 {
				if len(waiting) > 0 {
					w := waiting[0]
					waiting = waiting[1:]
					w.Unblock(tk.Time())
				}
				tk.Advance(1)
				tk.Sync()
			}
		})
		e.Run()
		return order
	}
	for seed := int64(0); seed < 30; seed++ {
		ref := runSchedule(seed, dispatchModes[0])
		for _, mode := range dispatchModes[1:] {
			got := runSchedule(seed, mode)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %d steps in %s, %d in %s",
					seed, len(ref), dispatchModes[0].name, len(got), mode.name)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: step %d diverges: %s %v, %s %v",
						seed, i, dispatchModes[0].name, ref[i], mode.name, got[i])
				}
			}
		}
	}
}

// TestTaskHeapOrdering drives the specialized 4-ary heap directly with
// interleaved pushes and pops and checks it against a sorted reference.
func TestTaskHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h taskHeap
	var ref []*Task
	popRef := func() *Task {
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].before(ref[j]) })
		m := ref[0]
		ref = ref[1:]
		return m
	}
	id := 0
	for round := 0; round < 2000; round++ {
		if len(ref) == 0 || rng.Intn(3) != 0 {
			tk := &Task{id: id, time: Time(rng.Intn(50))}
			id++
			h.push(tk)
			ref = append(ref, tk)
		} else {
			want := popRef()
			if got := h.peek(); got != want {
				t.Fatalf("round %d: peek = (%d,%d), want (%d,%d)", round, got.time, got.id, want.time, want.id)
			}
			if got := h.pop(); got != want {
				t.Fatalf("round %d: pop = (%d,%d), want (%d,%d)", round, got.time, got.id, want.time, want.id)
			}
		}
	}
	for len(ref) > 0 {
		want := popRef()
		if got := h.pop(); got != want {
			t.Fatalf("drain: pop = (%d,%d), want (%d,%d)", got.time, got.id, want.time, want.id)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after drain: %d left", h.len())
	}
}

// TestTaskHeapReplaceMin drives replaceMin (the handoff dispatch's
// single-sift push+pop) against the plain push-then-pop reference on a
// second heap fed the identical operation stream: the returned minimum
// and the surviving key set must match at every step.
func TestTaskHeapReplaceMin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h, ref taskHeap
	id := 0
	mk := func() *Task {
		tk := &Task{id: id, time: Time(rng.Intn(40))}
		id++
		return tk
	}
	drain := func(h *taskHeap) []*Task {
		var out []*Task
		for h.len() > 0 {
			out = append(out, h.pop())
		}
		for _, tk := range out { // restore
			h.push(tk)
		}
		return out
	}
	for round := 0; round < 3000; round++ {
		switch {
		case h.len() == 0 || rng.Intn(4) == 0:
			tk := mk()
			h.push(tk)
			ref.push(tk)
		case rng.Intn(3) == 0:
			got, want := h.pop(), ref.pop()
			if got != want {
				t.Fatalf("round %d: pop = (%d,%d), want (%d,%d)", round, got.time, got.id, want.time, want.id)
			}
		default:
			tk := mk()
			got := h.replaceMin(tk)
			ref.push(tk)
			want := ref.pop()
			if got != want {
				t.Fatalf("round %d: replaceMin = (%d,%d), want (%d,%d)", round, got.time, got.id, want.time, want.id)
			}
		}
		a, b := drain(&h), drain(&ref)
		if len(a) != len(b) {
			t.Fatalf("round %d: heap sizes diverge: %d vs %d", round, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: pop order diverges at %d", round, i)
			}
		}
	}
	// Empty-heap and wins-outright cases: replaceMin must return the
	// pushed task untouched and leave the heap alone.
	var empty taskHeap
	tk := &Task{id: 9999, time: 5}
	if got := empty.replaceMin(tk); got != tk || empty.len() != 0 {
		t.Fatalf("replaceMin on empty heap = %v (len %d), want the task back, len 0", got, empty.len())
	}
	empty.push(&Task{id: 10000, time: 50})
	if got := empty.replaceMin(tk); got != tk || empty.len() != 1 {
		t.Fatalf("replaceMin with winning task = %v (len %d), want the task back, len 1", got, empty.len())
	}
}

// TestServerNextFreeSurvivesPruning pins the post-prune semantics: the
// interval ring may forget old bookings (Reservations shrinks), but
// NextFree keeps answering with the end of the latest-ending reservation
// ever granted.
func TestServerNextFreeSurvivesPruning(t *testing.T) {
	s := NewServer("x")
	if s.NextFree() != 0 {
		t.Fatalf("fresh server NextFree = %v, want 0", s.NextFree())
	}
	s.Acquire(0, 10)
	if s.NextFree() != 10 {
		t.Fatalf("NextFree = %v, want 10", s.NextFree())
	}
	// A zero-duration arrival far in the future books nothing but
	// advances the prune horizon past the only reservation.
	s.Acquire(5*pruneWindow, 0)
	if n := len(s.Reservations()); n != 0 {
		t.Fatalf("%d reservations tracked after pruning, want 0", n)
	}
	if s.NextFree() != 10 {
		t.Fatalf("NextFree after pruning = %v, want 10 (pruning must not forget bookings)", s.NextFree())
	}
	// A real booking after the wipe restarts the ring and NextFree moves.
	at := 5*pruneWindow + 3
	s.Acquire(at, 7)
	if s.NextFree() != at+7 {
		t.Fatalf("NextFree = %v, want %v", s.NextFree(), at+7)
	}
	if n := len(s.Reservations()); n != 1 {
		t.Fatalf("%d reservations tracked, want 1", n)
	}
}

// TestServerBackfillWithPrunedSlack exercises the middle-insert path that
// shifts the short head side into pruned slack instead of memmoving the
// tail.
func TestServerBackfillWithPrunedSlack(t *testing.T) {
	s := NewServer("x")
	// 1us bookings every 2us: the live window holds ~100 of them and the
	// ring accumulates pruned slack at the front as arrivals march on.
	for i := Time(0); i < 200; i++ {
		s.Acquire(i*2*Microsecond, Microsecond)
	}
	ivs := s.Reservations()
	live := len(ivs)
	if live >= 200 {
		t.Fatalf("pruning kept %d reservations, want far fewer", live)
	}
	// Backfill a sliver into the gap right after the first live interval.
	// The insertion point is one slot past the ring head with pruned
	// slack in front, so this takes the head-shift branch of insert.
	at := ivs[0][1] + 100 // strictly inside the gap, touching neither neighbor
	got := s.Acquire(at, 100)
	if got != at {
		t.Fatalf("backfill grant = %v, want %v", got, at)
	}
	ivs = s.Reservations()
	if len(ivs) != live+1 {
		t.Fatalf("%d reservations after backfill, want %d", len(ivs), live+1)
	}
	// The calendar must remain sorted and disjoint after the shift.
	for i := 1; i < len(ivs); i++ {
		if ivs[i][0] < ivs[i-1][1] {
			t.Fatalf("intervals overlap after head-shift insert: %v then %v", ivs[i-1], ivs[i])
		}
	}
}

package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// inlineMode is one corner of the {fastpath, handoff, inline} on/off
// cube. The first entry is the production default; every other corner
// must produce the same simulated schedule.
type inlineMode struct {
	name                            string
	noFastPath, noHandoff, noInline bool
}

// inlineModes enumerates all eight dispatch configurations: the PR 6
// 2×2 fastpath × handoff matrix crossed with the inline representation
// on (SpawnInline steps run as plain calls) and off (the same Runnables
// run goroutine-backed through DriveRunnable).
var inlineModes = []inlineMode{
	{"inline fastpath+handoff", false, false, false},
	{"inline fastpath only", false, true, false},
	{"inline handoff only", true, false, false},
	{"inline engine only", true, true, false},
	{"goroutine fastpath+handoff", false, false, true},
	{"goroutine fastpath only", false, true, true},
	{"goroutine handoff only", true, false, true},
	{"goroutine engine only", true, true, true},
}

func newInlineModeEngine(mode inlineMode) *Engine {
	e := NewEngine()
	e.noFastPath = mode.noFastPath
	e.noHandoff = mode.noHandoff
	e.noInline = mode.noInline
	return e
}

// scriptSM is a Runnable that advances through a fixed list of deltas,
// recording its local time at each dispatch — the state-machine twin of
// the goroutine bodies in fastpath_test.go (record after each yield).
type scriptSM struct {
	id     int
	deltas []Time
	i      int
	order  *[]step
}

func (s *scriptSM) Step(t *Task) Status {
	if s.i > 0 {
		*s.order = append(*s.order, step{s.id, t.Time()})
	}
	if s.i >= len(s.deltas) {
		return StatusDone
	}
	t.Advance(s.deltas[s.i])
	s.i++
	return StatusRunning
}

// TestInlineScheduleEquivalence is the randomized-schedule oracle for
// the inline representation: for many random mixed task sets — some
// goroutine-backed, some inline, random start times, random per-step
// advances including zero so equal timestamps are common — the
// observable event order must be identical across the full 2×2×2
// {fastpath, handoff, inline} cube. Goroutine-backed and inline tasks
// interleave in one heap, so this pins both the inline dispatch paths
// (engine loop and mid-handoff driving) and the fallback adapter.
func TestInlineScheduleEquivalence(t *testing.T) {
	runSchedule := func(seed int64, mode inlineMode) []step {
		rng := rand.New(rand.NewSource(seed))
		e := newInlineModeEngine(mode)
		var order []step
		nTasks := 2 + rng.Intn(6)
		for i := 0; i < nTasks; i++ {
			id := i
			steps := 20 + rng.Intn(80)
			deltas := make([]Time, steps)
			for j := range deltas {
				deltas[j] = Time(rng.Intn(5)) // zeros exercise the tiebreak
			}
			start := Time(rng.Intn(3))
			if i%2 == 0 {
				e.SpawnInline(fmt.Sprintf("in%d", i), start,
					&scriptSM{id: id, deltas: deltas, order: &order})
			} else {
				e.Spawn(fmt.Sprintf("go%d", i), start, func(tk *Task) {
					for _, d := range deltas {
						tk.Advance(d)
						tk.Sync()
						order = append(order, step{id, tk.Time()})
					}
				})
			}
		}
		e.Run()
		return order
	}
	for seed := int64(0); seed < 40; seed++ {
		ref := runSchedule(seed, inlineModes[0])
		for _, mode := range inlineModes[1:] {
			got := runSchedule(seed, mode)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %d steps in %s, %d in %s",
					seed, len(ref), inlineModes[0].name, len(got), mode.name)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: step %d diverges: %s %v, %s %v",
						seed, i, inlineModes[0].name, ref[i], mode.name, got[i])
				}
			}
		}
	}
}

// mixEnv is the shared world of the block/unblock stress: a FIFO of
// blocked tasks drained by whoever runs next (the domain is
// single-threaded, so no locking).
type mixEnv struct {
	waiting     []*Task
	order       *[]step
	liveWorkers int
}

// mixSM is the state-machine twin of TestHandoffBlockScheduleEquivalence's
// worker body: per choice c it advances, yields, drains waiters, maybe
// blocks itself on the wait list, and records its time.
type mixSM struct {
	id      int
	choices []int
	i       int
	phase   int
	env     *mixEnv
}

func (s *mixSM) Step(t *Task) Status {
	for {
		switch s.phase {
		case 0:
			if s.i >= len(s.choices) {
				s.env.liveWorkers--
				return StatusDone
			}
			t.Advance(Time(s.choices[s.i] % 5))
			s.phase = 1
			return StatusRunning
		case 1:
			c := s.choices[s.i]
			for len(s.env.waiting) > 0 && c%3 == 0 {
				w := s.env.waiting[0]
				s.env.waiting = s.env.waiting[1:]
				w.Unblock(t.Time() + Time(c%4))
			}
			// Task 0 never blocks, so the wait list always has a potential
			// drainer among the workers.
			if s.id != 0 && c%4 == 1 {
				s.env.waiting = append(s.env.waiting, t)
				t.WillBlockOn("test wait list")
				s.phase = 2
				return StatusBlocked
			}
			s.phase = 2
		case 2:
			*s.env.order = append(*s.env.order, step{s.id, t.Time()})
			s.i++
			s.phase = 0
		}
	}
}

// TestInlineBlockUnblockEquivalence extends the cube oracle to the
// Block/Unblock edges: inline workers and goroutine workers block on and
// drain a shared FIFO wait list (inline steps unblock goroutine tasks
// and vice versa), with a goroutine sweeper in the far future. Every
// corner of the 2×2×2 matrix must produce the identical step sequence,
// including each task's wake times.
func TestInlineBlockUnblockEquivalence(t *testing.T) {
	runSchedule := func(seed int64, mode inlineMode) []step {
		rng := rand.New(rand.NewSource(seed))
		e := newInlineModeEngine(mode)
		var order []step
		env := &mixEnv{order: &order}
		nTasks := 3 + rng.Intn(5)
		for i := 0; i < nTasks; i++ {
			id := i
			steps := 30 + rng.Intn(50)
			choices := make([]int, steps)
			for j := range choices {
				choices[j] = rng.Intn(10)
			}
			env.liveWorkers++
			start := Time(rng.Intn(3))
			if i%2 == 1 {
				e.SpawnInline(fmt.Sprintf("in%d", i), start,
					&mixSM{id: id, choices: choices, env: env})
			} else {
				e.Spawn(fmt.Sprintf("go%d", i), start, func(tk *Task) {
					for _, c := range choices {
						tk.Advance(Time(c % 5))
						tk.Sync()
						for len(env.waiting) > 0 && c%3 == 0 {
							w := env.waiting[0]
							env.waiting = env.waiting[1:]
							w.Unblock(tk.Time() + Time(c%4))
						}
						if id != 0 && c%4 == 1 {
							env.waiting = append(env.waiting, tk)
							tk.BlockOn("test wait list")
						}
						order = append(order, step{id, tk.Time()})
					}
					env.liveWorkers--
				})
			}
		}
		// A goroutine sweeper in the far future unblocks leftover waiters
		// until every worker has finished.
		e.Spawn("sweeper", 1_000_000, func(tk *Task) {
			for env.liveWorkers > 0 {
				if len(env.waiting) > 0 {
					w := env.waiting[0]
					env.waiting = env.waiting[1:]
					w.Unblock(tk.Time())
				}
				tk.Advance(1)
				tk.Sync()
			}
		})
		e.Run()
		return order
	}
	for seed := int64(0); seed < 25; seed++ {
		ref := runSchedule(seed, inlineModes[0])
		for _, mode := range inlineModes[1:] {
			got := runSchedule(seed, mode)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %d steps in %s, %d in %s",
					seed, len(ref), inlineModes[0].name, len(got), mode.name)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: step %d diverges: %s %v, %s %v",
						seed, i, inlineModes[0].name, ref[i], mode.name, got[i])
				}
			}
		}
	}
}

// dynSM is a Runnable parent that spawns children mid-run: at scripted
// steps it registers a new task (alternating inline and goroutine) while
// the simulation is executing — the dynamic-spawn path the equivalence
// tests above never exercise.
type dynSM struct {
	id     int
	deltas []Time
	i      int
	order  *[]step
	spawn  func(at Time, k int)
}

func (s *dynSM) Step(t *Task) Status {
	if s.i > 0 {
		if s.i%5 == 3 {
			s.spawn(t.Time(), s.i)
		}
		*s.order = append(*s.order, step{s.id, t.Time()})
	}
	if s.i >= len(s.deltas) {
		return StatusDone
	}
	t.Advance(s.deltas[s.i])
	s.i++
	return StatusRunning
}

// TestDynamicSpawnScheduleEquivalence is the mid-sim spawn stress: both
// goroutine-backed and inline parents spawn both kinds of children while
// the simulation runs (from task goroutines, from inline Steps driven by
// the engine loop, and from inline Steps driven mid-handoff), and the
// full step sequence must be identical across the 2×2×2 mode cube.
// Child record ids are assigned in spawn order, which the schedule
// equivalence itself makes deterministic.
func TestDynamicSpawnScheduleEquivalence(t *testing.T) {
	runSchedule := func(seed int64, mode inlineMode) []step {
		rng := rand.New(rand.NewSource(seed))
		e := newInlineModeEngine(mode)
		var order []step
		nextID := 100 // child ids; parents use 0..nParents-1
		nParents := 2 + rng.Intn(4)
		// Pre-generate child scripts so every mode consumes identical
		// randomness regardless of scheduling.
		childDeltas := make([][]Time, 64)
		for i := range childDeltas {
			d := make([]Time, 5+rng.Intn(15))
			for j := range d {
				d[j] = Time(rng.Intn(4))
			}
			childDeltas[i] = d
		}
		childN := 0
		spawnChild := func(at Time, k int) {
			if childN >= len(childDeltas) {
				return
			}
			deltas := childDeltas[childN]
			childN++
			id := nextID
			nextID++
			start := at + Time(k%3)
			if id%2 == 0 {
				e.SpawnInline(fmt.Sprintf("cin%d", id), start,
					&scriptSM{id: id, deltas: deltas, order: &order})
			} else {
				e.Spawn(fmt.Sprintf("cgo%d", id), start, func(tk *Task) {
					for _, d := range deltas {
						tk.Advance(d)
						tk.Sync()
						order = append(order, step{id, tk.Time()})
					}
				})
			}
		}
		for i := 0; i < nParents; i++ {
			id := i
			steps := 25 + rng.Intn(40)
			deltas := make([]Time, steps)
			for j := range deltas {
				deltas[j] = Time(rng.Intn(5))
			}
			start := Time(rng.Intn(3))
			if i%2 == 0 {
				e.SpawnInline(fmt.Sprintf("pin%d", i), start,
					&dynSM{id: id, deltas: deltas, order: &order, spawn: spawnChild})
			} else {
				e.Spawn(fmt.Sprintf("pgo%d", i), start, func(tk *Task) {
					for k, d := range deltas {
						tk.Advance(d)
						tk.Sync()
						if k > 0 && k%5 == 3 {
							spawnChild(tk.Time(), k)
						}
						order = append(order, step{id, tk.Time()})
					}
				})
			}
		}
		e.Run()
		return order
	}
	for seed := int64(0); seed < 25; seed++ {
		ref := runSchedule(seed, inlineModes[0])
		for _, mode := range inlineModes[1:] {
			got := runSchedule(seed, mode)
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %d steps in %s, %d in %s",
					seed, len(ref), inlineModes[0].name, len(got), mode.name)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: step %d diverges: %s %v, %s %v",
						seed, i, inlineModes[0].name, ref[i], mode.name, got[i])
				}
			}
		}
	}
}

// spinSM advances forever, signalling once it has started.
type spinSM struct {
	started chan struct{}
	once    bool
}

func (s *spinSM) Step(t *Task) Status {
	if !s.once {
		s.once = true
		close(s.started)
	}
	t.Advance(3)
	return StatusRunning
}

// TestAbortLandsMidInlineStep is the inline-dispatch regression twin of
// TestAbortLandsMidHandoff: a watchdog Abort arriving while the engine
// loop is stepping inline tasks — and while a goroutine task is driving
// an inline chain mid-handoff — must cancel the run with a typed
// *AbortError and a coherent EngineState snapshot (every task runnable,
// none stuck "running" or lost).
func TestAbortLandsMidInlineStep(t *testing.T) {
	for _, mixed := range []bool{false, true} {
		name := "engine-driven"
		if mixed {
			name = "task-driven"
		}
		t.Run(name, func(t *testing.T) {
			e := NewEngine()
			started := make(chan struct{})
			e.SpawnInline("in0", 0, &spinSM{started: started})
			e.SpawnInline("in1", 0, &spinSM{started: make(chan struct{})})
			tasks := 2
			if mixed {
				// A goroutine task in the same lockstep forces the
				// task-driven inline path (handoffInline) to be active.
				e.Spawn("go2", 0, func(tk *Task) {
					for {
						tk.Advance(3)
						tk.Sync()
					}
				})
				tasks = 3
			}
			done := make(chan error, 1)
			go func() { done <- recoverRunError(e) }()
			<-started
			e.Abort("watchdog: inline loop stalled")
			var err error
			select {
			case err = <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("abort did not cancel the inline loop")
			}
			ae, ok := err.(*AbortError)
			if !ok {
				t.Fatalf("Run error = %#v, want *AbortError", err)
			}
			st := ae.EngineState()
			if st.Live != tasks || len(st.Tasks) != tasks {
				t.Fatalf("snapshot = %+v, want %d live tasks", st, tasks)
			}
			for _, ts := range st.Tasks {
				if ts.State != "runnable" {
					t.Fatalf("task %s state = %q after abort, want runnable (%+v)", ts.Name, ts.State, st.Tasks)
				}
			}
			if st.Metrics.InlineSteps == 0 {
				t.Fatalf("abort landed but no inline steps were counted: %+v", st.Metrics)
			}
		})
	}
}

// panicSM panics on its nth step.
type panicSM struct {
	n, at int
	msg   string
}

func (s *panicSM) Step(t *Task) Status {
	if s.n == s.at {
		panic(s.msg)
	}
	s.n++
	t.Advance(10)
	return StatusRunning
}

// TestInlinePanicBecomesTaskPanicError proves a panic inside an inline
// Step surfaces as a typed *TaskPanicError naming the inline task — both
// when the engine loop is stepping it and when a goroutine-backed task
// is driving it mid-handoff (the panic must be forwarded to the engine
// goroutine, not unwind the driver).
func TestInlinePanicBecomesTaskPanicError(t *testing.T) {
	t.Run("engine-driven", func(t *testing.T) {
		e := NewEngine()
		e.SpawnInline("victim", 0, &panicSM{at: 0, msg: "inline bug: bad state"})
		err := recoverRunError(e)
		pe, ok := err.(*TaskPanicError)
		if !ok {
			t.Fatalf("Run error = %#v, want *TaskPanicError", err)
		}
		if pe.TaskName != "victim" || pe.Value != "inline bug: bad state" {
			t.Fatalf("panic = %q/%v", pe.TaskName, pe.Value)
		}
		if !strings.Contains(pe.Stack, "goroutine") {
			t.Fatalf("Stack missing: %q", pe.Stack)
		}
	})
	t.Run("task-driven", func(t *testing.T) {
		e := NewEngine()
		// The goroutine task (id 0) and the inline task (id 1) run in
		// lockstep, so the goroutine task's Sync hands off to the inline
		// task, whose second step panics on the driver's goroutine.
		e.Spawn("driver", 0, func(tk *Task) {
			for {
				tk.Advance(10)
				tk.Sync()
			}
		})
		e.SpawnInline("victim", 0, &panicSM{at: 1, msg: "inline bug: mid-chain"})
		err := recoverRunError(e)
		pe, ok := err.(*TaskPanicError)
		if !ok {
			t.Fatalf("Run error = %#v, want *TaskPanicError", err)
		}
		if pe.TaskName != "victim" || pe.Value != "inline bug: mid-chain" {
			t.Fatalf("panic = %q/%v", pe.TaskName, pe.Value)
		}
	})
}

// blockOnceSM blocks forever on a labelled resource at its first step.
type blockOnceSM struct{ label string }

func (s *blockOnceSM) Step(t *Task) Status {
	t.WillBlockOn(s.label)
	return StatusBlocked
}

// TestInlineDeadlockDiagnosed pins the deadlock diagnostics for inline
// tasks: WillBlockOn labels must appear in the DeadlockError exactly as
// BlockOn labels do, for both the engine-driven block and the
// block-inside-a-driven-chain (handback) path.
func TestInlineDeadlockDiagnosed(t *testing.T) {
	e := NewEngine()
	e.SpawnInline("inliner", 0, &blockOnceSM{label: "gizmo queue"})
	e.Spawn("partner", 1, func(tk *Task) {
		tk.Advance(5)
		tk.Sync()
		tk.BlockOn("widget lock")
	})
	err := recoverRunError(e)
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run error = %#v, want *DeadlockError", err)
	}
	msg := de.Error()
	if !strings.Contains(msg, "inliner (awaiting gizmo queue, last sync 0ps)") {
		t.Fatalf("deadlock message %q missing inline task's label", msg)
	}
	if !strings.Contains(msg, "partner (awaiting widget lock") {
		t.Fatalf("deadlock message %q missing goroutine task's label", msg)
	}
}

// syncMisuseSM wrongly calls Sync from its Step once a peer precedes it.
type syncMisuseSM struct{}

func (syncMisuseSM) Step(t *Task) Status {
	t.Advance(100)
	t.Sync() // illegal: the fast path may absorb it, but a losing compare must panic
	return StatusRunning
}

// blockMisuseSM wrongly calls Block from its Step.
type blockMisuseSM struct{}

func (blockMisuseSM) Step(t *Task) Status {
	t.Block()
	return StatusBlocked
}

// TestInlineMisuseGuards pins the API misuse diagnostics: an inline
// Step calling Sync (when it would need to park) or Block panics with a
// directed message, surfacing as a *TaskPanicError like any body panic.
func TestInlineMisuseGuards(t *testing.T) {
	t.Run("sync", func(t *testing.T) {
		e := NewEngine()
		e.SpawnInline("misuser", 0, syncMisuseSM{})
		e.Spawn("peer", 0, func(tk *Task) {
			for i := 0; i < 50; i++ {
				tk.Advance(1)
				tk.Sync()
			}
		})
		err := recoverRunError(e)
		pe, ok := err.(*TaskPanicError)
		if !ok {
			t.Fatalf("Run error = %#v, want *TaskPanicError", err)
		}
		if !strings.Contains(fmt.Sprint(pe.Value), "Sync from inline task") {
			t.Fatalf("panic value = %v", pe.Value)
		}
	})
	t.Run("block", func(t *testing.T) {
		e := NewEngine()
		e.SpawnInline("misuser", 0, blockMisuseSM{})
		err := recoverRunError(e)
		pe, ok := err.(*TaskPanicError)
		if !ok {
			t.Fatalf("Run error = %#v, want *TaskPanicError", err)
		}
		if !strings.Contains(fmt.Sprint(pe.Value), "Block from inline task") {
			t.Fatalf("panic value = %v", pe.Value)
		}
	})
}

// TestInlineMetrics checks the inline counters: steps counted on both
// dispatch paths, InlineRate derived from them, inline pops not
// double-counted as engine dispatches, and the probe-facing snapshot
// name present.
func TestInlineMetrics(t *testing.T) {
	var order []step
	e := NewEngine()
	e.SpawnInline("a", 0, &scriptSM{id: 0, deltas: []Time{1, 1, 1, 1, 1}, order: &order})
	e.SpawnInline("b", 0, &scriptSM{id: 1, deltas: []Time{1, 1, 1, 1, 1}, order: &order})
	e.Run()
	m := e.Metrics()
	// Each task takes 6 steps (5 advances + the final done step).
	if m.InlineSteps != 12 {
		t.Errorf("InlineSteps = %d, want 12", m.InlineSteps)
	}
	if m.Dispatches != 0 || m.Handoffs != 0 {
		t.Errorf("all-inline run counted goroutine dispatches: %+v", m)
	}
	if r := m.InlineRate(); r != 1.0 {
		t.Errorf("InlineRate = %v, want 1", r)
	}
	got := map[string]float64{}
	m.Snapshot(func(name string, v float64) { got[name] = v })
	if got["inline_steps"] != 12 {
		t.Errorf("snapshot inline_steps = %v, want 12", got["inline_steps"])
	}

	// Mixed run: the inline task's steps and the goroutine task's
	// dispatches share the denominator.
	e = NewEngine()
	e.SpawnInline("in", 0, &scriptSM{id: 0, deltas: []Time{1, 1, 1}, order: &order})
	e.Spawn("go", 0, func(tk *Task) {
		for i := 0; i < 3; i++ {
			tk.Advance(1)
			tk.Sync()
		}
	})
	e.Run()
	m = e.Metrics()
	if m.InlineSteps == 0 {
		t.Errorf("mixed run counted no inline steps: %+v", m)
	}
	if r := m.InlineRate(); r <= 0 || r >= 1 {
		t.Errorf("mixed InlineRate = %v, want in (0,1)", r)
	}
}

// TestInlineLivelockDiagnosed proves the MaxTime safety net still trips
// when the runaway task is inline: the spin declines past MaxTime, the
// task requeues, and Run raises the typed *LivelockError.
func TestInlineLivelockDiagnosed(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 1000
	e.SpawnInline("runaway", 0, &spinSM{started: make(chan struct{})})
	err := recoverRunError(e)
	le, ok := err.(*LivelockError)
	if !ok {
		t.Fatalf("Run error = %#v, want *LivelockError", err)
	}
	if le.MaxTime != 1000 {
		t.Fatalf("MaxTime = %v", le.MaxTime)
	}
}

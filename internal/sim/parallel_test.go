package sim

import (
	"sync"
	"testing"
)

// TestEnginesRunConcurrently exercises the one-goroutine-per-engine
// contract: independent engines driven from separate goroutines must not
// interfere (run it under -race to prove the isolation, which the
// parallel experiment runner in internal/bench depends on).
func TestEnginesRunConcurrently(t *testing.T) {
	const engines = 8
	results := make([]Time, engines)
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine()
			srv := NewServer("srv")
			for c := 0; c < 4; c++ {
				e.Spawn("worker", Time(c), func(tk *Task) {
					for n := 0; n < 50; n++ {
						tk.AdvanceTo(srv.Acquire(tk.Time(), 5))
					}
				})
			}
			e.Run()
			results[i] = e.Now()
		}()
	}
	wg.Wait()
	for i := 1; i < engines; i++ {
		if results[i] != results[0] {
			t.Fatalf("engine %d finished at %v, engine 0 at %v: identical worlds diverged",
				i, results[i], results[0])
		}
	}
}

// TestEngineRunTwicePanics pins the atomic double-Run guard.
func TestEngineRunTwicePanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("noop", 0, func(tk *Task) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	e.Run()
}

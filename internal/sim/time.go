// Package sim provides the discrete-event simulation kernel used by the
// memory-system models: simulated time, a conservative coroutine-based
// event engine, and contended resource servers.
//
// The engine dispatches the runnable task with the smallest (time, id)
// key. A task that yields while it still holds that minimum skips the
// scheduler handshake entirely and keeps running — the fast path that
// makes fine-grained Sync calls in the model hot paths nearly free; see
// the Engine documentation for the invariant and why the resulting event
// order (and therefore every simulated timestamp) is unchanged.
//
// Time is kept in femtoseconds so that every clock frequency used by the
// study (800 MHz through 6.4 GHz, plus network and DRAM timings) has an
// exact integer period. A uint64 femtosecond counter covers more than
// 5 hours of simulated time, far beyond any run in this repository.
package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is an absolute simulation time or a duration, in femtoseconds.
type Time uint64

// Duration units.
const (
	Femtosecond Time = 1
	Picosecond  Time = 1000 * Femtosecond
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with an adaptive unit, for logs and test output.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", uint64(t)/uint64(Picosecond))
	}
}

// ParseDuration parses a simulated duration such as "1us", "2.5ns" or
// "800ps". Units: fs, ps, ns, us, ms, s. Command-line flags (-sample)
// use it; sub-femtosecond remainders truncate.
func ParseDuration(s string) (Time, error) {
	var unit Time
	var num string
	switch {
	case strings.HasSuffix(s, "fs"):
		unit, num = Femtosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ps"):
		unit, num = Picosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		unit, num = Nanosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		unit, num = Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = Second, s[:len(s)-1]
	default:
		return 0, fmt.Errorf("sim: duration %q needs a unit (fs, ps, ns, us, ms, s)", s)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("sim: invalid duration %q", s)
	}
	return Time(f * float64(unit)), nil
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Clock describes a clock domain by its period.
type Clock struct {
	Period Time // duration of one cycle
}

// MHz returns a Clock with the given frequency in megahertz.
// The period is exact for every frequency that divides 10^9 MHz·fs.
func MHz(f uint64) Clock {
	if f == 0 {
		panic("sim: zero frequency")
	}
	return Clock{Period: Time(1_000_000_000 / f)}
}

// GHz returns a Clock with the given frequency in gigahertz.
func GHz(f float64) Clock {
	if f <= 0 {
		panic("sim: non-positive frequency")
	}
	return Clock{Period: Time(1_000_000 / f)}
}

// Cycles converts a cycle count in this clock domain to a duration.
func (c Clock) Cycles(n uint64) Time { return Time(n) * c.Period }

// ToCycles converts a duration to a whole number of cycles, rounding up.
func (c Clock) ToCycles(d Time) uint64 {
	return uint64((d + c.Period - 1) / c.Period)
}

// Hz returns the clock frequency in hertz.
func (c Clock) Hz() float64 { return float64(Second) / float64(c.Period) }

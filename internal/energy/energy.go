// Package energy implements the study's 90 nm energy model (Section 4.1,
// Figure 4). The paper combined per-event energies from CACTI 4.1 and
// laid-out Tensilica cores with activity statistics from the simulator;
// we substitute a fixed per-event energy table with the same structure
// and ratios (documented in DESIGN.md): DRAM accesses cost orders of
// magnitude more than on-chip accesses, a tag-less local store access is
// cheaper than a same-capacity cache access, the L2 costs several L1
// accesses, and every component has static (leakage + clock) power.
//
// Figure 4's conclusions depend on those ratios, not on absolute joules,
// which is why a calibrated table preserves the comparison.
package energy

import "repro/internal/sim"

// PerEvent holds the dynamic energy per event, in joules.
type PerEvent struct {
	CoreInstr float64 // one 3-slot VLIW instruction (datapath + RF)
	CoreIdle  float64 // clock energy for one stalled/idle core cycle

	ICacheAccess float64 // 16 KB I-cache fetch
	L1Access     float64 // 32 KB 2-way D-cache access (tags + data)
	L1SnoopTag   float64 // tag-only probe by the coherence protocol
	SmallCache   float64 // the streaming model's 8 KB cache
	LSAccess     float64 // 24 KB local store access (no tags)

	BusByte   float64 // cluster bus, per payload byte
	BusCtrl   float64 // cluster bus, per command slot
	XbarByte  float64 // global crossbar, per payload byte
	XbarMsg   float64 // global crossbar, per message overhead
	L2Access  float64 // 512 KB 16-way access
	DRAMByte  float64 // per byte crossing the pins
	DRAMActiv float64 // per row activation
}

// Static holds static power (leakage + always-on clocks), in watts.
type Static struct {
	PerCore float64 // core + its first-level storage
	L2      float64
	DRAM    float64 // background/refresh power of the DRAM devices
}

// Model bundles the energy parameters.
type Model struct {
	Event  PerEvent
	Static Static
}

// Default90nm returns the calibrated 90 nm table (1.0 V, values in
// joules/watts).
func Default90nm() Model {
	const pJ = 1e-12
	return Model{
		Event: PerEvent{
			CoreInstr:    45 * pJ,
			CoreIdle:     8 * pJ,
			ICacheAccess: 20 * pJ,
			L1Access:     42 * pJ,
			L1SnoopTag:   10 * pJ,
			SmallCache:   18 * pJ,
			LSAccess:     26 * pJ,
			BusByte:      1.0 * pJ,
			BusCtrl:      12 * pJ,
			XbarByte:     2.2 * pJ,
			XbarMsg:      10 * pJ,
			L2Access:     310 * pJ,
			DRAMByte:     60 * pJ,
			DRAMActiv:    1500 * pJ,
		},
		Static: Static{
			PerCore: 0.012, // 12 mW per core with its L1/LS at 90 nm
			L2:      0.060,
			DRAM:    0.120,
		},
	}
}

// Counts is the activity snapshot the system gathers for the model.
type Counts struct {
	Instructions uint64 // total VLIW instructions, all cores
	CoreCycles   uint64 // total active cycles (== instructions here)
	IdleCycles   uint64 // total stall + idle cycles across cores

	ICacheAccesses uint64
	L1Accesses     uint64 // demand accesses + fills of the coherent L1s
	L1Snoops       uint64
	SmallAccesses  uint64 // streaming model's 8 KB caches
	LSAccesses     uint64 // local store reads+writes+DMA beats

	BusDataBytes uint64
	BusControl   uint64
	XbarBytes    uint64
	XbarMsgs     uint64
	L2Accesses   uint64

	DRAMBytes       uint64
	DRAMActivations uint64
}

// Breakdown is Figure 4's stacked components, in joules.
type Breakdown struct {
	Core    float64
	ICache  float64
	DCache  float64 // coherent L1s or the streaming 8 KB caches
	LMem    float64 // local stores
	Network float64
	L2      float64
	DRAM    float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.Core + b.ICache + b.DCache + b.LMem + b.Network + b.L2 + b.DRAM
}

// Compute converts activity counts into an energy breakdown. wall is the
// execution time (static power integrates over it) and nCores the number
// of powered cores.
func (m Model) Compute(c Counts, wall sim.Time, nCores int) Breakdown {
	sec := wall.Seconds()
	return Breakdown{
		Core: float64(c.Instructions)*m.Event.CoreInstr +
			float64(c.IdleCycles)*m.Event.CoreIdle +
			float64(nCores)*m.Static.PerCore*sec,
		ICache: float64(c.ICacheAccesses) * m.Event.ICacheAccess,
		DCache: float64(c.L1Accesses)*m.Event.L1Access +
			float64(c.L1Snoops)*m.Event.L1SnoopTag +
			float64(c.SmallAccesses)*m.Event.SmallCache,
		LMem: float64(c.LSAccesses) * m.Event.LSAccess,
		Network: float64(c.BusDataBytes)*m.Event.BusByte +
			float64(c.BusControl)*m.Event.BusCtrl +
			float64(c.XbarBytes)*m.Event.XbarByte +
			float64(c.XbarMsgs)*m.Event.XbarMsg,
		L2: float64(c.L2Accesses)*m.Event.L2Access +
			m.Static.L2*sec,
		DRAM: float64(c.DRAMBytes)*m.Event.DRAMByte +
			float64(c.DRAMActivations)*m.Event.DRAMActiv +
			m.Static.DRAM*sec,
	}
}

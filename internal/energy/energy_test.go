package energy

import (
	"testing"

	"repro/internal/sim"
)

func TestRatiosPreserved(t *testing.T) {
	e := Default90nm().Event
	if e.LSAccess >= e.L1Access {
		t.Error("tag-less local store must be cheaper per access than the L1 cache")
	}
	if e.SmallCache >= e.L1Access {
		t.Error("8KB cache must be cheaper than 32KB cache")
	}
	if e.L2Access <= 4*e.L1Access {
		t.Error("L2 access should cost several L1 accesses")
	}
	if 32*e.DRAMByte <= e.L2Access {
		t.Error("a DRAM line transfer should dominate an L2 access")
	}
	if e.L1SnoopTag >= e.L1Access {
		t.Error("tag-only snoop must be cheaper than a full access")
	}
}

func TestComputeComponents(t *testing.T) {
	m := Default90nm()
	c := Counts{
		Instructions: 1000, IdleCycles: 500,
		ICacheAccesses: 1000,
		L1Accesses:     300, L1Snoops: 50,
		LSAccesses:   200,
		BusDataBytes: 320, BusControl: 10,
		XbarBytes: 640, XbarMsgs: 20,
		L2Accesses: 40,
		DRAMBytes:  1024, DRAMActivations: 16,
	}
	b := m.Compute(c, sim.Microsecond, 4)
	if b.Core <= 0 || b.ICache <= 0 || b.DCache <= 0 || b.LMem <= 0 ||
		b.Network <= 0 || b.L2 <= 0 || b.DRAM <= 0 {
		t.Fatalf("all components must be positive: %+v", b)
	}
	sum := b.Core + b.ICache + b.DCache + b.LMem + b.Network + b.L2 + b.DRAM
	if got := b.Total(); got != sum {
		t.Errorf("Total = %v, want %v", got, sum)
	}
}

func TestStaticPowerScalesWithTime(t *testing.T) {
	m := Default90nm()
	var c Counts
	short := m.Compute(c, sim.Microsecond, 1)
	long := m.Compute(c, 2*sim.Microsecond, 1)
	if long.Core <= short.Core || long.L2 <= short.L2 || long.DRAM <= short.DRAM {
		t.Error("static energy must grow with time")
	}
	ratio := long.Total() / short.Total()
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("pure-static energy ratio = %v, want ~2", ratio)
	}
}

func TestDRAMDominatesForStreamingTraffic(t *testing.T) {
	// A bandwidth-bound profile: little compute, lots of DRAM bytes.
	m := Default90nm()
	c := Counts{
		Instructions:    100_000,
		L1Accesses:      100_000,
		DRAMBytes:       1_000_000,
		DRAMActivations: 1000,
		L2Accesses:      32_000,
	}
	b := m.Compute(c, 100*sim.Microsecond, 16)
	if b.DRAM <= b.Core || b.DRAM <= b.DCache {
		t.Errorf("DRAM should dominate a streaming profile: %+v", b)
	}
}

// Package dram models the off-chip memory channel of the study: a single
// channel of configurable bandwidth (Table 2: 1.6, 3.2, 6.4 or 12.8 GB/s)
// in front of a small number of DRAM banks with open-page row buffers.
// It stands in for the DRAMsim-based model the paper used: it preserves the
// 70 ns random-access latency, the channel bandwidth ceiling, and the
// row-buffer locality that lets streaming transfers approach that ceiling.
package dram

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Config describes one memory channel.
type Config struct {
	// BandwidthMBps is the peak channel bandwidth in megabytes per second
	// (10^6 bytes). The paper sweeps 1600, 3200, 6400 and 12800.
	BandwidthMBps uint64
	// Banks is the number of DRAM banks behind the channel.
	Banks int
	// RowBytes is the size of each bank's row buffer.
	RowBytes uint64
	// RowMissLatency is the random-access latency (row activate + access).
	RowMissLatency sim.Time
	// RowHitLatency is the access latency when the row buffer hits.
	RowHitLatency sim.Time
	// RowMissOccupancy is how long a row miss occupies its bank.
	RowMissOccupancy sim.Time
	// RowWindow approximates FR-FCFS controller scheduling: accesses to
	// any of the last RowWindow rows touched in a bank count as row hits,
	// because a real controller's request queue groups same-row requests
	// into batches even when several streams interleave. 1 models a
	// strict in-order open-page controller.
	RowWindow int
	// RefreshInterval and RefreshTime model periodic all-bank refresh:
	// every RefreshInterval the channel is unavailable for RefreshTime
	// (tREFI/tRFC of DDR2-era devices). Zero disables refresh.
	RefreshInterval sim.Time
	RefreshTime     sim.Time
}

// DefaultConfig is the paper's default channel: 1.6 GB/s, 70 ns random
// access. Row-hit timing is chosen so that a sequential stream can reach
// the channel's peak bandwidth while random traffic is bank-limited, which
// is how DDR2-era parts behaved.
func DefaultConfig() Config {
	return Config{
		BandwidthMBps:    1600,
		Banks:            8,
		RowBytes:         2048,
		RowMissLatency:   70 * sim.Nanosecond,
		RowHitLatency:    40 * sim.Nanosecond,
		RowMissOccupancy: 50 * sim.Nanosecond,
		RowWindow:        8,
		RefreshInterval:  7800 * sim.Nanosecond, // tREFI
		RefreshTime:      128 * sim.Nanosecond,  // tRFC
	}
}

// Stats counts channel activity. Bytes are what crossed the pins; the
// energy model and the off-chip-traffic figures are derived from them.
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
	RowHits    uint64
	RowMisses  uint64
	Refreshes  uint64
}

// Channel is one off-chip memory channel.
type Channel struct {
	cfg         Config
	channel     *sim.Server
	banks       []*bank
	stats       Stats
	lastRefresh sim.Time
}

type bank struct {
	server *sim.Server
	// recent is a small LRU of recently open rows (the FR-FCFS window);
	// recent[0] is the most recent.
	recent []uint64
}

// hitRow reports whether row falls in the bank's reordering window and
// updates the window (MRU insertion).
func (b *bank) hitRow(row uint64, window int) bool {
	for i, r := range b.recent {
		if r == row {
			copy(b.recent[1:i+1], b.recent[:i])
			b.recent[0] = row
			return true
		}
	}
	if len(b.recent) < window {
		b.recent = append(b.recent, 0)
	}
	copy(b.recent[1:], b.recent)
	b.recent[0] = row
	return false
}

// NewChannel returns a channel with the given configuration.
func NewChannel(cfg Config) *Channel {
	if cfg.Banks <= 0 || cfg.BandwidthMBps == 0 || cfg.RowBytes == 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	c := &Channel{cfg: cfg, channel: sim.NewServer("dram.channel")}
	for i := 0; i < cfg.Banks; i++ {
		c.banks = append(c.banks, &bank{server: sim.NewServer(fmt.Sprintf("dram.bank%d", i))})
	}
	return c
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// transferTime converts a byte count to channel occupancy.
func (c *Channel) transferTime(nbytes uint64) sim.Time {
	// nbytes * 1e15 fs / (MBps * 1e6) bytes-per-second.
	return sim.Time(nbytes * 1_000_000_000 / c.cfg.BandwidthMBps)
}

// bankFor maps an address to its bank and row. Consecutive addresses
// stay in one row until RowBytes; the bank index is then a hash of the
// row index rather than plain modulo, as real controllers permute bank
// bits so that power-of-two-aligned streams from different cores do not
// march through the same bank in lockstep.
func (c *Channel) bankFor(a mem.Addr) (*bank, uint64) {
	rowIdx := uint64(a) / c.cfg.RowBytes
	h := (rowIdx * 0x9E3779B1) >> 7
	b := c.banks[h%uint64(len(c.banks))]
	return b, rowIdx
}

// Access performs one read or write of nbytes at address a, arriving at
// the channel at time at. It returns the time the last byte crosses the
// pins (reads: data delivered on-chip; writes: data accepted by the DRAM).
// nbytes must not exceed one row.
func (c *Channel) Access(at sim.Time, a mem.Addr, nbytes uint64, write bool) sim.Time {
	if nbytes == 0 {
		return at
	}
	if nbytes > c.cfg.RowBytes {
		panic(fmt.Sprintf("dram: access of %d bytes exceeds row size %d; split it", nbytes, c.cfg.RowBytes))
	}
	c.refreshUpTo(at)
	b, row := c.bankFor(a)
	window := c.cfg.RowWindow
	if window <= 0 {
		window = 1
	}
	hit := b.hitRow(row, window)
	xfer := c.transferTime(nbytes)

	var latency, occupancy sim.Time
	if hit {
		latency = c.cfg.RowHitLatency
		// A row hit's bank occupancy is data-bus limited: back-to-back
		// bursts to an open row stream at channel bandwidth.
		occupancy = xfer
		c.stats.RowHits++
	} else {
		latency = c.cfg.RowMissLatency
		occupancy = c.cfg.RowMissOccupancy
		if occupancy < xfer {
			occupancy = xfer
		}
		c.stats.RowMisses++
	}
	start := b.server.Acquire(at, occupancy)
	dataAt := start + latency
	// The data burst occupies the shared channel; it cannot start before
	// the bank has the data (reads) or before the request arrives (writes).
	chanAt := start
	if !write && dataAt > start+xfer {
		chanAt = dataAt - xfer
	}
	chanStart := c.channel.Acquire(chanAt, xfer)
	done := chanStart + xfer
	if done < dataAt {
		done = dataAt
	}

	if write {
		c.stats.Writes++
		c.stats.WriteBytes += nbytes
	} else {
		c.stats.Reads++
		c.stats.ReadBytes += nbytes
	}
	return done
}

// refreshUpTo lazily reserves the channel for every refresh epoch that
// has elapsed before time at. Requests arriving during a refresh queue
// behind it; all row buffers close (real refresh precharges the banks).
func (c *Channel) refreshUpTo(at sim.Time) {
	if c.cfg.RefreshInterval == 0 {
		return
	}
	for c.lastRefresh+c.cfg.RefreshInterval <= at {
		c.lastRefresh += c.cfg.RefreshInterval
		c.channel.Acquire(c.lastRefresh, c.cfg.RefreshTime)
		for _, b := range c.banks {
			b.server.Acquire(c.lastRefresh, c.cfg.RefreshTime)
			b.recent = b.recent[:0]
		}
		c.stats.Refreshes++
	}
}

// ChannelUtilization returns the fraction of [0, end] the data pins were
// busy.
func (c *Channel) ChannelUtilization(end sim.Time) float64 {
	return c.channel.Utilization(end)
}

// ChannelBusy returns the cumulative data-pin busy time; the probe layer
// differentiates it per epoch into a utilization series.
func (c *Channel) ChannelBusy() sim.Time { return c.channel.BusyTime() }

// AddServerMetrics accumulates the calendar-maintenance counters of the
// channel and bank servers into m.
func (c *Channel) AddServerMetrics(m *sim.ServerMetrics) {
	c.channel.AddMetrics(m)
	for _, b := range c.banks {
		b.server.AddMetrics(m)
	}
}

// Add accumulates src into s (aggregating channels).
func (s *Stats) Add(src Stats) {
	s.Reads += src.Reads
	s.Writes += src.Writes
	s.ReadBytes += src.ReadBytes
	s.WriteBytes += src.WriteBytes
	s.RowHits += src.RowHits
	s.RowMisses += src.RowMisses
	s.Refreshes += src.Refreshes
}

// Snapshot emits the counters in a fixed order (probe layer); the
// per-epoch delta of read_bytes/write_bytes is the DRAM bandwidth
// series behind the paper's bursty-write-back explanations.
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("reads", float64(s.Reads))
	put("writes", float64(s.Writes))
	put("read_bytes", float64(s.ReadBytes))
	put("write_bytes", float64(s.WriteBytes))
	put("row_hits", float64(s.RowHits))
	put("row_misses", float64(s.RowMisses))
	put("refreshes", float64(s.Refreshes))
}

// TotalBytes returns read plus write traffic.
func (s Stats) TotalBytes() uint64 { return s.ReadBytes + s.WriteBytes }

package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestRandomAccessLatency(t *testing.T) {
	c := NewChannel(DefaultConfig())
	// First access to an idle channel: row miss, the paper's 70 ns
	// random-access latency (burst overlapped within it).
	done := c.Access(0, 0x1000, 32, false)
	if done != 70*sim.Nanosecond {
		t.Errorf("cold access done = %v, want 70ns", done)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := NewChannel(DefaultConfig())
	first := c.Access(0, 0x0, 32, false)
	// Same row, long after the first access completed.
	at := first + 1000*sim.Nanosecond
	second := c.Access(at, 0x20, 32, false)
	hitLat := second - at
	missLat := first
	if hitLat >= missLat {
		t.Errorf("row hit latency %v not faster than miss %v", hitLat, missLat)
	}
	st := c.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1,1", st.RowHits, st.RowMisses)
	}
}

func TestSequentialStreamReachesBandwidth(t *testing.T) {
	// Issue a long back-to-back sequential read stream; the sustained rate
	// should come within 15% of the channel's peak bandwidth.
	// Requests are issued without waiting for completions, as a DMA engine
	// or prefetcher with outstanding accesses would.
	cfg := DefaultConfig()
	cfg.BandwidthMBps = 3200
	c := NewChannel(cfg)
	var at sim.Time
	const n = 4096 // lines
	for i := 0; i < n; i++ {
		done := c.Access(at, mem.Addr(i*32), 32, false)
		if done > at {
			at = done
		}
		// Keep ~16 accesses in flight: issue time trails completion.
		if at > 16*10*sim.Nanosecond {
			at -= 16 * 10 * sim.Nanosecond
		}
	}
	// Final completion time of the stream.
	end := c.Access(at, mem.Addr(n*32), 32, false)
	bytes := float64((n + 1) * 32)
	gbps := bytes / end.Seconds() / 1e9
	if gbps < 3.2*0.85 {
		t.Errorf("sequential stream sustained %.2f GB/s, want >= %.2f", gbps, 3.2*0.85)
	}
	if gbps > 3.21 {
		t.Errorf("sustained %.2f GB/s exceeds channel peak", gbps)
	}
}

func TestRandomTrafficBankLimited(t *testing.T) {
	// Random single-line accesses must sustain far less than peak.
	cfg := DefaultConfig()
	cfg.BandwidthMBps = 12800
	c := NewChannel(cfg)
	var at sim.Time
	const n = 2048
	addr := mem.Addr(0)
	for i := 0; i < n; i++ {
		addr = (addr*2654435761 + 12345) % (1 << 28)
		at = c.Access(at, addr.Line(), 32, false)
	}
	gbps := float64(n*32) / at.Seconds() / 1e9
	if gbps > 8.0 {
		t.Errorf("random traffic sustained %.2f GB/s; should be bank-limited well below 12.8", gbps)
	}
}

func TestWriteCounters(t *testing.T) {
	c := NewChannel(DefaultConfig())
	c.Access(0, 0, 32, true)
	c.Access(0, 64, 32, false)
	st := c.Stats()
	if st.WriteBytes != 32 || st.ReadBytes != 32 || st.Writes != 1 || st.Reads != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalBytes() != 64 {
		t.Errorf("TotalBytes = %d, want 64", st.TotalBytes())
	}
}

func TestHigherBandwidthNeverSlower(t *testing.T) {
	// Property: for any access pattern, doubling channel bandwidth never
	// increases total completion time.
	f := func(seed uint32, writes []bool) bool {
		if len(writes) == 0 || len(writes) > 200 {
			return true
		}
		run := func(bw uint64) sim.Time {
			cfg := DefaultConfig()
			cfg.BandwidthMBps = bw
			c := NewChannel(cfg)
			var at sim.Time
			a := mem.Addr(seed)
			for _, w := range writes {
				a = (a*1103515245 + 12345) % (1 << 26)
				at = c.Access(at, a.Line(), 32, w)
			}
			return at
		}
		return run(3200) <= run(1600)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAccessTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized access")
		}
	}()
	c := NewChannel(DefaultConfig())
	c.Access(0, 0, 4096, false)
}

func TestZeroByteAccess(t *testing.T) {
	c := NewChannel(DefaultConfig())
	if got := c.Access(42, 0, 0, false); got != 42 {
		t.Errorf("zero-byte access done = %v, want 42", got)
	}
}

func TestRefreshClosesRowsAndCounts(t *testing.T) {
	cfg := DefaultConfig()
	c := NewChannel(cfg)
	c.Access(0, 0x0, 32, false) // opens a row
	// Access long after several refresh intervals.
	at := 3 * cfg.RefreshInterval
	c.Access(at, 0x20, 32, false) // same row, but refresh closed it
	st := c.Stats()
	if st.Refreshes != 3 {
		t.Errorf("refreshes = %d, want 3", st.Refreshes)
	}
	if st.RowHits != 0 {
		t.Errorf("row hit after refresh; refresh must close rows")
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshInterval = 0
	c := NewChannel(cfg)
	c.Access(0, 0x0, 32, false)
	c.Access(sim.Second/1000, 0x20, 32, false)
	if c.Stats().Refreshes != 0 {
		t.Error("refresh fired while disabled")
	}
	if c.Stats().RowHits != 1 {
		t.Error("expected a row hit with refresh disabled")
	}
}

func TestRefreshStealsLittleBandwidth(t *testing.T) {
	// Refresh costs tRFC/tREFI ~ 1.6% of channel time; a long stream
	// should still come within a few percent of peak.
	cfg := DefaultConfig()
	cfg.BandwidthMBps = 3200
	c := NewChannel(cfg)
	var at sim.Time
	const n = 16384
	for i := 0; i < n; i++ {
		done := c.Access(at, mem.Addr(i*32), 32, false)
		if done > at {
			at = done
		}
		if at > 200*sim.Nanosecond {
			at -= 200 * sim.Nanosecond
		}
	}
	gbps := float64(n*32) / at.Seconds() / 1e9
	if gbps < 3.2*0.80 {
		t.Errorf("sustained %.2f GB/s with refresh, want >= %.2f", gbps, 3.2*0.80)
	}
}

// Package mem defines the simulated physical address space shared by both
// memory models: addresses, cache-line math, and a region allocator that
// workloads use to place their data structures.
//
// The simulator is timing-directed and functionally decoupled: addresses
// name *regions of the timing model* only. The actual data always lives in
// ordinary Go memory owned by the workload.
package mem

import "fmt"

// Addr is a simulated physical byte address.
type Addr uint64

// LineSize is the cache-line and DMA-beat size used throughout the study
// (Table 2: 32-byte blocks everywhere).
const LineSize = 32

// LineShift is log2(LineSize).
const LineShift = 5

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// LineOffset returns the offset of a within its cache line.
func (a Addr) LineOffset() uint64 { return uint64(a) & (LineSize - 1) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%08x", uint64(a)) }

// LinesCovered returns how many distinct cache lines the byte range
// [a, a+n) touches.
func LinesCovered(a Addr, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	first := uint64(a.Line())
	last := uint64((a + Addr(n) - 1).Line())
	return (last-first)/LineSize + 1
}

// Region is a named, contiguous block of the simulated address space.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// End returns one past the last byte of the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// At returns the address of byte offset off within the region, panicking on
// overflow: workloads use it to convert indices to simulated addresses, and
// an out-of-range index is always a workload bug.
func (r Region) At(off uint64) Addr {
	if off >= r.Size {
		panic(fmt.Sprintf("mem: offset %d outside region %q (size %d)", off, r.Name, r.Size))
	}
	return r.Base + Addr(off)
}

// Index returns the address of element i in an array of elemSize-byte
// elements starting at the region base.
func (r Region) Index(i int, elemSize uint64) Addr {
	return r.At(uint64(i) * elemSize)
}

// AddressSpace hands out non-overlapping regions. Allocation is permanent:
// the study's workloads allocate everything up front, as the paper's
// applications do after their fast-forwarded initialization.
type AddressSpace struct {
	next    Addr
	regions []Region
}

// NewAddressSpace returns an allocator starting at a non-zero base so that
// the zero Addr never aliases a live region (it is reserved as "no
// address").
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: 1 << 20}
}

// Alloc reserves size bytes aligned to a cache line and returns the region.
func (s *AddressSpace) Alloc(name string, size uint64) Region {
	if size == 0 {
		panic("mem: zero-size allocation " + name)
	}
	base := Addr((uint64(s.next) + LineSize - 1) &^ (LineSize - 1))
	r := Region{Name: name, Base: base, Size: size}
	s.next = base + Addr(size)
	s.regions = append(s.regions, r)
	return r
}

// AllocArray reserves an n-element array of elemSize-byte elements.
func (s *AddressSpace) AllocArray(name string, n int, elemSize uint64) Region {
	return s.Alloc(name, uint64(n)*elemSize)
}

// Regions returns all allocated regions in allocation order.
func (s *AddressSpace) Regions() []Region { return s.regions }

// Find returns the region containing a, if any.
func (s *AddressSpace) Find(a Addr) (Region, bool) {
	for _, r := range s.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

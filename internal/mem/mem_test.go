package mem

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	if got := Addr(0x1234).Line(); got != 0x1220 {
		t.Errorf("Line(0x1234) = %v, want 0x1220", got)
	}
	if got := Addr(0x1234).LineOffset(); got != 0x14 {
		t.Errorf("LineOffset(0x1234) = %#x, want 0x14", got)
	}
	if got := Addr(0x1220).Line(); got != 0x1220 {
		t.Errorf("Line of aligned addr changed: %v", got)
	}
}

func TestLinesCovered(t *testing.T) {
	cases := []struct {
		a    Addr
		n    uint64
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 32, 1},
		{0, 33, 2},
		{31, 2, 2},
		{32, 32, 1},
		{16, 32, 2},
		{0, 4096, 128},
	}
	for _, c := range cases {
		if got := LinesCovered(c.a, c.n); got != c.want {
			t.Errorf("LinesCovered(%v, %d) = %d, want %d", c.a, c.n, got, c.want)
		}
	}
}

func TestLinesCoveredProperty(t *testing.T) {
	// The number of lines is always between ceil(n/LineSize) and that +1.
	f := func(a uint32, n uint16) bool {
		if n == 0 {
			return LinesCovered(Addr(a), 0) == 0
		}
		got := LinesCovered(Addr(a), uint64(n))
		lo := (uint64(n) + LineSize - 1) / LineSize
		return got >= lo && got <= lo+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressSpaceNonOverlapping(t *testing.T) {
	s := NewAddressSpace()
	a := s.Alloc("a", 100)
	b := s.Alloc("b", 100)
	c := s.AllocArray("c", 10, 8)
	regions := []Region{a, b, c}
	for i, r := range regions {
		if r.Base.LineOffset() != 0 {
			t.Errorf("region %d not line-aligned: %v", i, r.Base)
		}
		for j, q := range regions {
			if i == j {
				continue
			}
			if r.Contains(q.Base) || q.Contains(r.Base) {
				t.Errorf("regions %d and %d overlap", i, j)
			}
		}
	}
	if c.Size != 80 {
		t.Errorf("AllocArray size = %d, want 80", c.Size)
	}
}

func TestRegionIndexAndFind(t *testing.T) {
	s := NewAddressSpace()
	r := s.AllocArray("arr", 100, 4)
	if got := r.Index(3, 4); got != r.Base+12 {
		t.Errorf("Index(3,4) = %v, want %v", got, r.Base+12)
	}
	found, ok := s.Find(r.Base + 50)
	if !ok || found.Name != "arr" {
		t.Errorf("Find failed: %v %v", found, ok)
	}
	if _, ok := s.Find(0); ok {
		t.Error("Find(0) should fail; zero address is reserved")
	}
}

func TestRegionAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewAddressSpace()
	r := s.Alloc("r", 8)
	r.At(8)
}

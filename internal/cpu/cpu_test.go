package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// fakeMem is a scriptable memory model: loads take loadLat, stores
// complete storeLat after issue. It records accessed addresses.
type fakeMem struct {
	loadLat  sim.Time
	storeLat sim.Time
	loads    []mem.Addr
	stores   []mem.Addr
	pfs      []mem.Addr
}

func (f *fakeMem) Load(p *Proc, a mem.Addr) sim.Time {
	f.loads = append(f.loads, a)
	return p.Now() + f.loadLat
}

func (f *fakeMem) Store(p *Proc, a mem.Addr, nbytes uint64) sim.Time {
	f.stores = append(f.stores, a)
	return p.Now() + f.storeLat
}

func (f *fakeMem) StorePFS(p *Proc, a mem.Addr, nbytes uint64) sim.Time {
	f.pfs = append(f.pfs, a)
	return p.Now() + f.storeLat
}

func (f *fakeMem) Flush(p *Proc) sim.Time { return p.Now() }

// runCore executes body on a single simulated core and returns the proc.
func runCore(t *testing.T, cfg Config, m ProcMem, body func(*Proc)) *Proc {
	t.Helper()
	if cfg.Clock.Period == 0 {
		cfg.Clock = sim.MHz(800)
	}
	e := sim.NewEngine()
	p := New(0, 0, cfg)
	e.Spawn("core0", 0, func(task *sim.Task) {
		p.Bind(task, m)
		body(p)
		p.Finish()
	})
	e.Run()
	return p
}

func TestWorkChargesUseful(t *testing.T) {
	p := runCore(t, Config{}, &fakeMem{}, func(p *Proc) { p.Work(100) })
	if got := p.Breakdown().Useful; got != sim.MHz(800).Cycles(100) {
		t.Errorf("useful = %v, want 100 cycles", got)
	}
	if p.Stats().Instructions != 100 {
		t.Errorf("instructions = %d, want 100", p.Stats().Instructions)
	}
}

func TestLoadStallAttribution(t *testing.T) {
	m := &fakeMem{loadLat: 100 * sim.Nanosecond}
	p := runCore(t, Config{}, m, func(p *Proc) { p.Load(0x100) })
	bd := p.Breakdown()
	if bd.LoadStall != 100*sim.Nanosecond {
		t.Errorf("load stall = %v, want 100ns", bd.LoadStall)
	}
	if bd.Useful != sim.MHz(800).Cycles(1) {
		t.Errorf("useful = %v, want 1 cycle", bd.Useful)
	}
}

func TestStoreBufferHidesStores(t *testing.T) {
	// 8 stores with long completion fit in the buffer: no stall while
	// the core keeps running (Finish later drains the tail).
	m := &fakeMem{storeLat: 1000 * sim.Nanosecond}
	var during sim.Time
	runCore(t, Config{}, m, func(p *Proc) {
		for i := 0; i < StoreBufferEntries; i++ {
			p.Store(mem.Addr(i * 64))
		}
		during = p.Breakdown().StoreStall
	})
	if during != 0 {
		t.Errorf("store stall = %v, want 0 (buffer absorbs)", during)
	}
}

func TestStoreBufferFullStalls(t *testing.T) {
	m := &fakeMem{storeLat: 1000 * sim.Nanosecond}
	p := runCore(t, Config{}, m, func(p *Proc) {
		for i := 0; i < StoreBufferEntries+1; i++ {
			p.Store(mem.Addr(i * 64))
		}
	})
	if got := p.Breakdown().StoreStall; got == 0 {
		t.Error("9th outstanding store should stall")
	}
}

func TestFinishDrainsStores(t *testing.T) {
	m := &fakeMem{storeLat: 500 * sim.Nanosecond}
	p := runCore(t, Config{}, m, func(p *Proc) { p.Store(0x40) })
	// FinishTime must cover the store completion.
	if p.FinishTime() < 500*sim.Nanosecond {
		t.Errorf("finish at %v, want >= 500ns", p.FinishTime())
	}
	if p.Breakdown().StoreStall == 0 {
		t.Error("drain should charge store stall")
	}
}

func TestLoadNAccessesOncePerLine(t *testing.T) {
	m := &fakeMem{}
	p := runCore(t, Config{}, m, func(p *Proc) {
		p.LoadN(0, 4, 16) // 16 4-byte elements = 2 lines
	})
	if len(m.loads) != 2 {
		t.Errorf("memory consulted %d times, want 2 (one per line)", len(m.loads))
	}
	if p.Stats().Loads != 16 {
		t.Errorf("loads = %d, want 16", p.Stats().Loads)
	}
	if p.Stats().Instructions != 16 {
		t.Errorf("instructions = %d, want 16", p.Stats().Instructions)
	}
}

func TestLoadNUnaligned(t *testing.T) {
	m := &fakeMem{}
	p := runCore(t, Config{}, m, func(p *Proc) {
		p.LoadN(28, 4, 2) // elements at 28 and 32: two lines
	})
	if len(m.loads) != 2 {
		t.Errorf("memory consulted %d times, want 2", len(m.loads))
	}
	if p.Stats().Loads != 2 {
		t.Errorf("loads = %d, want 2", p.Stats().Loads)
	}
}

func TestStorePFSNRoutesToPFS(t *testing.T) {
	m := &fakeMem{}
	runCore(t, Config{}, m, func(p *Proc) { p.StorePFSN(0, 4, 8) })
	if len(m.pfs) != 1 || len(m.stores) != 0 {
		t.Errorf("pfs=%d stores=%d, want 1,0", len(m.pfs), len(m.stores))
	}
}

func TestICacheModel(t *testing.T) {
	cfg := Config{InstrPerIMiss: 100, IMissPenalty: 20 * sim.Nanosecond}
	p := runCore(t, cfg, &fakeMem{}, func(p *Proc) { p.Work(1000) })
	if got := p.Stats().IMisses; got != 10 {
		t.Errorf("imisses = %d, want 10", got)
	}
	want := sim.MHz(800).Cycles(1000) + 10*20*sim.Nanosecond
	if got := p.Breakdown().Useful; got != want {
		t.Errorf("useful = %v, want %v", got, want)
	}
}

func TestSnoopDebtStallsEveryOtherProbe(t *testing.T) {
	m := &fakeMem{}
	p := runCore(t, Config{}, m, func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.AddSnoopProbe()
		}
		p.Load(0)
	})
	if got := p.Stats().SnoopStalls; got != 2 {
		t.Errorf("snoop stalls = %d, want 2", got)
	}
}

func TestWaitUntilChargesSync(t *testing.T) {
	p := runCore(t, Config{}, &fakeMem{}, func(p *Proc) {
		p.WaitUntil(1 * sim.Microsecond)
	})
	if got := p.Breakdown().Sync; got != 1*sim.Microsecond {
		t.Errorf("sync = %v, want 1us", got)
	}
}

func TestBreakdownTotalMatchesFinishTime(t *testing.T) {
	m := &fakeMem{loadLat: 50 * sim.Nanosecond, storeLat: 200 * sim.Nanosecond}
	p := runCore(t, Config{InstrPerIMiss: 50, IMissPenalty: 10 * sim.Nanosecond}, m, func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Work(10)
			p.Load(mem.Addr(i * 32))
			p.Store(mem.Addr(4096 + i*32))
		}
		p.WaitUntil(p.Now() + 100*sim.Nanosecond)
	})
	if got, want := p.Breakdown().Total(), p.FinishTime(); got != want {
		t.Errorf("breakdown total %v != finish time %v", got, want)
	}
}

func TestElemsIn(t *testing.T) {
	// Elements of 4 bytes from base 0: line [32,64) holds elements 8..15.
	if got := elemsIn(32, 64, 0, 4); got != 8 {
		t.Errorf("elemsIn(32,64,0,4) = %d, want 8", got)
	}
	// Empty range.
	if got := elemsIn(64, 64, 0, 4); got != 0 {
		t.Errorf("empty range = %d, want 0", got)
	}
	// 12-byte elements from base 0 in line [32,64): first byte in range
	// for elements at 36, 48, 60 => 3.
	if got := elemsIn(32, 64, 0, 12); got != 3 {
		t.Errorf("elemsIn(32,64,0,12) = %d, want 3", got)
	}
}

func TestStoreBufferDepthOne(t *testing.T) {
	// Depth 1 approximates blocking stores: the second outstanding store
	// stalls immediately.
	m := &fakeMem{storeLat: 500 * sim.Nanosecond}
	p := runCore(t, Config{StoreBuffer: 1}, m, func(p *Proc) {
		p.Store(0x00)
		p.Store(0x40)
	})
	if got := p.Breakdown().StoreStall; got < 400*sim.Nanosecond {
		t.Errorf("store stall %v; depth-1 buffer should stall on the 2nd store", got)
	}
}

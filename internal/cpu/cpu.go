// Package cpu models the study's processor cores: in-order Tensilica
// LX-style 3-slot VLIW cores (Table 2) with up to one load/store per
// instruction, a 16 KB instruction cache, and an 8-entry store buffer
// that lets loads bypass store misses (weak consistency). The core is
// pure issue accounting: one VLIW instruction per cycle, with stalls
// charged to the paper's four execution-time buckets — Useful (which
// includes fetch and non-memory pipeline stalls, as in Figure 2), Sync,
// load stalls and store-buffer stalls.
//
// A Proc is driven by workload code running on a sim.Task goroutine; the
// attached ProcMem (the coherent-cache model in internal/coher or the
// streaming model in internal/stream) supplies data-access timing.
package cpu

import (
	"fmt"

	"repro/internal/ledger"
	"repro/internal/mem"
	"repro/internal/sim"
)

// StoreBufferEntries is the default depth of the store buffer that
// allows loads to bypass outstanding store misses.
const StoreBufferEntries = 8

// Tracer receives timeline spans (see internal/trace); nil disables
// collection.
type Tracer interface {
	Add(track int, name string, start, dur sim.Time)
}

// FlushClasser lets a memory model classify its Finish-time drain in
// the cycle ledger: the streaming model's Flush waits on DMA completion
// (ledger.DMAWait), everything else drains at synchronization cost
// (ledger.SyncWait, the default). The Figure 2 bucket stays Sync either
// way.
type FlushClasser interface {
	FlushClass() ledger.Class
}

// ProcMem is the per-core data-memory model.
type ProcMem interface {
	// Load returns the time the loaded data is available to the core.
	// It may sync the task with the engine.
	Load(p *Proc, a mem.Addr) sim.Time
	// Store returns the time the store completes in the memory system;
	// nbytes is how much of the line starting at a this store (or the
	// burst it represents) covers — write-gathering policies need it.
	// Completion may be far in the future; the core's store buffer
	// absorbs it.
	Store(p *Proc, a mem.Addr, nbytes uint64) sim.Time
	// StorePFS is a store that allocates its line without a refill
	// ("Prepare For Store"); models without caches treat it as Store.
	StorePFS(p *Proc, a mem.Addr, nbytes uint64) sim.Time
	// Flush completes outstanding model state (DMA queues, write
	// buffers) at the end of the workload and returns the drain time.
	Flush(p *Proc) sim.Time
}

// Breakdown is the Figure 2 execution-time decomposition.
type Breakdown struct {
	Useful     sim.Time // issue + fetch + non-memory pipeline stalls
	Sync       sim.Time // locks, barriers, waiting for DMA
	LoadStall  sim.Time
	StoreStall sim.Time
}

// Total returns the sum of all buckets (the core's busy time).
func (b Breakdown) Total() sim.Time {
	return b.Useful + b.Sync + b.LoadStall + b.StoreStall
}

// Config configures one core.
type Config struct {
	Clock sim.Clock
	// StoreBuffer overrides the store-buffer depth (0 = the default 8;
	// 1 approximates a blocking-store, stronger-consistency core).
	StoreBuffer int
	// InstrPerIMiss models the instruction-cache behavior analytically:
	// one I-cache miss is charged every InstrPerIMiss instructions
	// (0 disables; the workload sets it from its code footprint).
	InstrPerIMiss uint64
	// IMissPenalty is the fetch stall per I-cache miss (an L2 round
	// trip); it is charged to Useful, as the paper does.
	IMissPenalty sim.Time
}

// Stats are the core's activity counters.
type Stats struct {
	Instructions uint64 // VLIW instructions issued
	Loads        uint64 // explicit data-structure loads
	Stores       uint64 // explicit data-structure stores
	// LocalAccesses counts the load/store slots of Work-charged
	// instructions: stack, spills and register-resident temporaries that
	// always hit the first-level storage. Real code fills roughly half
	// its 3-slot instructions' memory slot this way; modeling them keeps
	// miss *rates* and first-level access energy comparable to the
	// paper even though the simulator only traces data-structure
	// accesses explicitly.
	LocalAccesses uint64
	IMisses       uint64
	SnoopStalls   uint64 // cycles lost to snoops occupying the D-cache
}

// Add accumulates src into s (aggregating per-core counters).
func (s *Stats) Add(src Stats) {
	s.Instructions += src.Instructions
	s.Loads += src.Loads
	s.Stores += src.Stores
	s.LocalAccesses += src.LocalAccesses
	s.IMisses += src.IMisses
	s.SnoopStalls += src.SnoopStalls
}

// Snapshot emits the counters in a fixed order (probe layer); the
// per-epoch delta of instructions is the compute-throughput series.
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("instructions", float64(s.Instructions))
	put("loads", float64(s.Loads))
	put("stores", float64(s.Stores))
	put("local_accesses", float64(s.LocalAccesses))
	put("imisses", float64(s.IMisses))
	put("snoop_stalls", float64(s.SnoopStalls))
}

// Proc is one simulated core.
type Proc struct {
	id      int
	cluster int
	task    *sim.Task
	cfg     Config
	memory  ProcMem

	bd       Breakdown
	stats    Stats
	imissAcc uint64

	// led is the fine-grained cycle ledger; nil disables it, leaving one
	// nil compare per charge site on the hot path (the probe layer's
	// sentinel pattern; BenchmarkLedgerDisabled gates the cost). Every
	// bd charge below is mirrored by exactly one ledger charge over the
	// same duration, which is what makes the conservation invariant
	// (ledger classes sum to finish time) hold by construction.
	led *ledger.Ledger
	// pfShadow marks that the in-flight stall the memory model just
	// reported is covered by an earlier prefetch (set via
	// MarkPrefetchShadow, consumed by the next Load charge). Only ever
	// set when led != nil.
	pfShadow bool

	snoopDebt uint64 // snoop probes not yet converted into stall cycles

	storeBuf []sim.Time
	sbHead   int
	sbLen    int

	tracer Tracer

	finished   bool
	finishTime sim.Time
}

// New returns a core; the caller attaches it to a task and a memory model
// via Bind before use.
func New(id, cluster int, cfg Config) *Proc {
	depth := cfg.StoreBuffer
	if depth <= 0 {
		depth = StoreBufferEntries
	}
	return &Proc{id: id, cluster: cluster, cfg: cfg, storeBuf: make([]sim.Time, depth)}
}

// Bind attaches the core to its simulation task and memory model.
func (p *Proc) Bind(task *sim.Task, m ProcMem) {
	p.BindTask(task)
	p.BindMem(m)
}

// BindMem attaches the memory model alone. The inline-core path binds
// memory before the task exists, so the workload can inspect p.Mem()
// while deciding whether to supply a state-machine body.
func (p *Proc) BindMem(m ProcMem) { p.memory = m }

// BindTask attaches the simulation task alone.
func (p *Proc) BindTask(task *sim.Task) { p.task = task }

// SetTracer attaches a span collector (nil disables tracing).
func (p *Proc) SetTracer(t Tracer) { p.tracer = t }

// SetLedger attaches a cycle ledger (nil disables accounting).
func (p *Proc) SetLedger(l *ledger.Ledger) { p.led = l }

// Ledger returns the attached cycle ledger (nil when disabled).
func (p *Proc) Ledger() *ledger.Ledger { return p.led }

// charge mirrors a breakdown charge into the ledger when enabled.
func (p *Proc) charge(c ledger.Class, d sim.Time) {
	if p.led != nil {
		p.led.Charge(c, d)
	}
}

// MarkPrefetchShadow tells the core that the stall its memory model is
// about to report comes from a line an earlier prefetch already had in
// flight, so the next Load charge classifies it as ledger.PrefetchShadow
// instead of LoadStall. The coherent model's hit path calls it; a no-op
// when the ledger is disabled.
func (p *Proc) MarkPrefetchShadow() {
	if p.led != nil {
		p.pfShadow = true
	}
}

func (p *Proc) span(name string, start, dur sim.Time) {
	if p.tracer != nil && dur > 0 {
		p.tracer.Add(p.id, name, start, dur)
	}
}

// SetICache reconfigures the analytic I-cache model (workload Setup
// hooks call this before execution starts).
func (p *Proc) SetICache(instrPerMiss uint64, penalty sim.Time) {
	p.cfg.InstrPerIMiss = instrPerMiss
	p.cfg.IMissPenalty = penalty
}

// ID returns the core index.
func (p *Proc) ID() int { return p.id }

// Cluster returns the core's cluster index.
func (p *Proc) Cluster() int { return p.cluster }

// Clock returns the core's clock domain.
func (p *Proc) Clock() sim.Clock { return p.cfg.Clock }

// Task returns the simulation task driving this core.
func (p *Proc) Task() *sim.Task { return p.task }

// Mem returns the attached memory model (workloads type-assert it for
// model-specific operations such as DMA).
func (p *Proc) Mem() ProcMem { return p.memory }

// Now returns the core's local time.
func (p *Proc) Now() sim.Time { return p.task.Time() }

// Breakdown returns the execution-time decomposition so far.
func (p *Proc) Breakdown() Breakdown { return p.bd }

// Stats returns the core's counters.
func (p *Proc) Stats() Stats { return p.stats }

// StoreBufOccupancy returns how many store-buffer entries hold stores
// still outstanding at time now (probe-layer gauge; entries whose
// completion time has passed have logically drained even if the ring has
// not been popped yet).
func (p *Proc) StoreBufOccupancy(now sim.Time) int {
	n := 0
	for i := 0; i < p.sbLen; i++ {
		if p.storeBuf[(p.sbHead+i)%len(p.storeBuf)] > now {
			n++
		}
	}
	return n
}

// FinishTime returns the core's local time when Finish was called.
func (p *Proc) FinishTime() sim.Time {
	if !p.finished {
		panic(fmt.Sprintf("cpu: core %d not finished", p.id))
	}
	return p.finishTime
}

// chargeUseful issues n instructions (n cycles) and applies the analytic
// I-cache model.
func (p *Proc) chargeUseful(n uint64) {
	d := p.cfg.Clock.Cycles(n)
	p.task.Advance(d)
	p.bd.Useful += d
	p.charge(ledger.Compute, d)
	p.stats.Instructions += n
	p.stats.LocalAccesses += n / 2
	if p.cfg.InstrPerIMiss == 0 {
		return
	}
	p.imissAcc += n
	for p.imissAcc >= p.cfg.InstrPerIMiss {
		p.imissAcc -= p.cfg.InstrPerIMiss
		p.stats.IMisses++
		p.task.Advance(p.cfg.IMissPenalty)
		p.bd.Useful += p.cfg.IMissPenalty
		p.charge(ledger.Compute, p.cfg.IMissPenalty)
	}
}

// applySnoopDebt converts pending snoop probes into stall cycles. A snoop
// occupies the D-cache for one cycle and stalls the core only when it
// collides with a load/store in the same cycle; with at most one
// load/store slot per 3-wide instruction, roughly every other probe
// collides with an access-bound core.
func (p *Proc) applySnoopDebt() {
	if p.snoopDebt < 2 {
		return
	}
	cycles := p.snoopDebt / 2
	p.snoopDebt %= 2
	d := p.cfg.Clock.Cycles(cycles)
	p.task.Advance(d)
	p.bd.LoadStall += d
	p.charge(ledger.LoadStall, d)
	p.stats.SnoopStalls += cycles
}

// AddSnoopProbe records that another agent probed this core's D-cache.
// Called by the coherence layer.
func (p *Proc) AddSnoopProbe() { p.snoopDebt++ }

// Work issues n instructions of pure computation.
func (p *Proc) Work(n uint64) { p.chargeUseful(n) }

// WaitUntil advances the core to time t, charging the wait to the Sync
// bucket (used by synchronization primitives and DMA waits). It is a
// full synchronization point: the task yields so that other agents'
// earlier events execute first, which keeps protocol state transitions
// at phase boundaries in timestamp order. (Sync audit, PR 2: callers
// read shared primitive or DMA state right after WaitUntil returns, so
// the yield must stay; the engine elides the handshake itself whenever
// this core is already globally minimal.)
func (p *Proc) WaitUntil(t sim.Time) { p.waitUntil(t, ledger.SyncWait) }

// WaitUntilDMA is WaitUntil with the wait classified as ledger.DMAWait
// (the streaming model's DMA completion waits); the Figure 2 bucket is
// still Sync, as the paper counts DMA waits as synchronization.
func (p *Proc) WaitUntilDMA(t sim.Time) { p.waitUntil(t, ledger.DMAWait) }

func (p *Proc) waitUntil(t sim.Time, c ledger.Class) {
	p.chargeWait(t, c)
	p.task.Sync()
}

// chargeWait is waitUntil's accounting without the yield: advance the
// core to t and charge the gap to the Sync bucket under class c.
func (p *Proc) chargeWait(t sim.Time, c ledger.Class) {
	if now := p.task.Time(); t > now {
		p.bd.Sync += t - now
		p.charge(c, t-now)
		p.span("sync-wait", now, t-now)
		p.task.SetTime(t)
	}
}

// ChargeDMAWait is WaitUntilDMA without the trailing yield — the
// pre-yield half for inline (state machine) core bodies, which must
// return StatusRunning where the goroutine body's WaitUntilDMA synced.
func (p *Proc) ChargeDMAWait(t sim.Time) { p.chargeWait(t, ledger.DMAWait) }

// AddSync charges d of synchronization time without advancing the clock
// (used when a primitive has already moved the task's clock, e.g. after
// an Unblock).
func (p *Proc) AddSync(d sim.Time) {
	p.bd.Sync += d
	p.charge(ledger.SyncWait, d)
}

// AddDMAWait is AddSync with the ledger class ledger.DMAWait (a DMA
// completion wait whose clock movement already happened via Unblock).
func (p *Proc) AddDMAWait(d sim.Time) {
	p.bd.Sync += d
	p.charge(ledger.DMAWait, d)
}

// Load issues one load instruction to address a and blocks until the
// data is available.
func (p *Proc) Load(a mem.Addr) {
	p.chargeUseful(1)
	p.applySnoopDebt()
	p.stats.Loads++
	done := p.memory.Load(p, a)
	if now := p.task.Time(); done > now {
		p.bd.LoadStall += done - now
		if p.pfShadow {
			p.charge(ledger.PrefetchShadow, done-now)
		} else {
			p.charge(ledger.LoadStall, done-now)
		}
		p.span("load-stall", now, done-now)
		p.task.SetTime(done)
	}
	p.pfShadow = false
}

// Store issues one store instruction to address a. The store retires into
// the store buffer; the core stalls only when the buffer is full.
func (p *Proc) Store(a mem.Addr) { p.store(a, 4, false) }

// StorePFS issues a "Prepare For Store" non-allocating-refill store.
func (p *Proc) StorePFS(a mem.Addr) { p.store(a, 4, true) }

func (p *Proc) store(a mem.Addr, nbytes uint64, pfs bool) {
	p.chargeUseful(1)
	p.applySnoopDebt()
	p.stats.Stores++
	// The store buffer gates issue: at most StoreBufferEntries store
	// misses are outstanding in the memory system. Pop completed
	// entries; if still full, the core stalls until the oldest miss
	// finishes and only then issues the new one.
	now := p.task.Time()
	depth := len(p.storeBuf)
	for p.sbLen > 0 && p.storeBuf[p.sbHead] <= now {
		p.sbHead = (p.sbHead + 1) % depth
		p.sbLen--
	}
	if p.sbLen == depth {
		oldest := p.storeBuf[p.sbHead]
		p.bd.StoreStall += oldest - now
		p.charge(ledger.StoreStall, oldest-now)
		p.span("store-stall", now, oldest-now)
		p.task.SetTime(oldest)
		p.sbHead = (p.sbHead + 1) % depth
		p.sbLen--
	}
	var done sim.Time
	if pfs {
		done = p.memory.StorePFS(p, a, nbytes)
	} else {
		done = p.memory.Store(p, a, nbytes)
	}
	if done <= p.task.Time() {
		return
	}
	p.storeBuf[(p.sbHead+p.sbLen)%len(p.storeBuf)] = done
	p.sbLen++
}

// LoadN issues count loads of elemSize-byte elements starting at a,
// walking sequentially. Issue cycles are charged per element; the memory
// system is consulted once per cache line, which is exact for an in-order
// core on a linear walk.
func (p *Proc) LoadN(a mem.Addr, elemSize, count uint64) {
	if count == 0 {
		return
	}
	if elemSize == 0 || elemSize > mem.LineSize {
		panic("cpu: LoadN element size must be 1..32 bytes")
	}
	end := a + mem.Addr(count*elemSize)
	for la := a.Line(); la < end; la += mem.LineSize {
		// Elements whose first byte falls in this line.
		lo, hi := la, la+mem.LineSize
		if a > lo {
			lo = a
		}
		if end < hi {
			hi = end
		}
		n := elemsIn(lo, hi, a, elemSize)
		if n == 0 {
			continue
		}
		p.chargeUseful(n - 1)
		p.stats.Loads += n - 1
		p.Load(lo)
	}
}

// StoreN issues count stores of elemSize-byte elements starting at a.
func (p *Proc) StoreN(a mem.Addr, elemSize, count uint64) {
	p.storeN(a, elemSize, count, false)
}

// StorePFSN issues count PFS stores of elemSize-byte elements starting
// at a. Workloads use it for output-only streams.
func (p *Proc) StorePFSN(a mem.Addr, elemSize, count uint64) {
	p.storeN(a, elemSize, count, true)
}

func (p *Proc) storeN(a mem.Addr, elemSize, count uint64, pfs bool) {
	if count == 0 {
		return
	}
	if elemSize == 0 || elemSize > mem.LineSize {
		panic("cpu: StoreN element size must be 1..32 bytes")
	}
	end := a + mem.Addr(count*elemSize)
	for la := a.Line(); la < end; la += mem.LineSize {
		lo, hi := la, la+mem.LineSize
		if a > lo {
			lo = a
		}
		if end < hi {
			hi = end
		}
		n := elemsIn(lo, hi, a, elemSize)
		if n == 0 {
			continue
		}
		p.chargeUseful(n - 1)
		p.stats.Stores += n - 1
		p.store(lo, uint64(hi-lo), pfs)
	}
}

// elemsIn counts elements of size elemSize anchored at base whose first
// byte lies in [lo, hi).
func elemsIn(lo, hi, base mem.Addr, elemSize uint64) uint64 {
	if hi <= lo {
		return 0
	}
	// First element index whose address >= lo.
	first := (uint64(lo-base) + elemSize - 1) / elemSize
	last := (uint64(hi-base) - 1) / elemSize // element containing hi-1
	if fa := base + mem.Addr(first*elemSize); fa >= hi {
		return 0
	}
	return last - first + 1
}

// Finish drains the store buffer and the memory model and records the
// core's completion time. Call it at the end of the workload body.
func (p *Proc) Finish() {
	p.DrainStores()
	p.CompleteFinish(p.memory.Flush(p))
}

// DrainStores empties the store buffer, charging store stalls. It never
// yields (pure SetTime), so inline core bodies call it directly before
// their model's flush machine.
func (p *Proc) DrainStores() {
	now := p.task.Time()
	for p.sbLen > 0 {
		done := p.storeBuf[p.sbHead]
		p.sbHead = (p.sbHead + 1) % len(p.storeBuf)
		p.sbLen--
		if done > now {
			p.bd.StoreStall += done - now
			p.charge(ledger.StoreStall, done-now)
			p.task.SetTime(done)
			now = done
		}
	}
}

// CompleteFinish applies the memory-model drain time d (what Flush
// returned, or what an inline flush machine computed), charging the gap
// to the Sync bucket under the model's FlushClasser class, and records
// the core's completion.
func (p *Proc) CompleteFinish(d sim.Time) {
	if d > p.task.Time() {
		wait := d - p.task.Time()
		p.bd.Sync += wait
		c := ledger.SyncWait
		if fc, ok := p.memory.(FlushClasser); ok {
			c = fc.FlushClass()
		}
		p.charge(c, wait)
		p.task.SetTime(d)
	}
	p.finished = true
	p.finishTime = p.task.Time()
}

package cpu

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/mem"
	"repro/internal/sim"
)

// benchMem is a minimal ProcMem with fixed latencies and no recording,
// so the benchmarks measure the core's charge sites, not test plumbing.
type benchMem struct{ lat sim.Time }

func (f *benchMem) Load(p *Proc, a mem.Addr) sim.Time                 { return p.Now() + f.lat }
func (f *benchMem) Store(p *Proc, a mem.Addr, nbytes uint64) sim.Time { return p.Now() + f.lat }
func (f *benchMem) StorePFS(p *Proc, a mem.Addr, nbytes uint64) sim.Time {
	return p.Now() + f.lat
}
func (f *benchMem) Flush(p *Proc) sim.Time { return p.Now() }

// runLedgerBench drives one simulated core through b.N Work+Load pairs,
// the two hottest charge sites, with the given ledger attached (nil =
// accounting disabled). The whole loop runs inside a single task, so no
// engine dispatch overhead lands in the measurement.
func runLedgerBench(b *testing.B, led *ledger.Ledger) {
	e := sim.NewEngine()
	p := New(0, 0, Config{Clock: sim.MHz(800)})
	p.SetLedger(led)
	m := &benchMem{lat: 5 * sim.Nanosecond}
	b.ResetTimer()
	e.Spawn("core0", 0, func(task *sim.Task) {
		p.Bind(task, m)
		for i := 0; i < b.N; i++ {
			p.Work(1)
			p.Load(mem.Addr(uint64(i) * 64))
		}
		p.Finish()
	})
	e.Run()
}

// BenchmarkLedgerDisabled is the zero-cost gate: with no ledger
// attached, every charge site must degenerate to a nil compare, so this
// should be indistinguishable from the pre-ledger core hot path
// (BENCH_engine.json records it; cmd/benchcheck gates regressions).
func BenchmarkLedgerDisabled(b *testing.B) { runLedgerBench(b, nil) }

// BenchmarkLedgerEnabled is the same loop with accounting armed — the
// price of full cycle attribution.
func BenchmarkLedgerEnabled(b *testing.B) { runLedgerBench(b, &ledger.Ledger{}) }

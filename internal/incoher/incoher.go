// Package incoher implements the third practical point in the paper's
// Table 1 design space: **incoherent cache-based** memory — hardware-
// managed locality (ordinary caches) with software-managed communication
// (no coherence protocol; software flushes and invalidates explicitly at
// synchronization points, as in the embedded MPSoCs of the paper's
// Loghi & Poncino reference [31] and the Section 7 hybrid discussion).
//
// Compared with the coherent model, every miss skips the snoop
// broadcasts — no bus command slots, no tag probes in other caches, no
// invalidation traffic — but the burden of correctness moves entirely
// into software: a core that will read data another core produced must
// first invalidate its own stale copies, and a producer must flush its
// dirty lines before signaling.
package incoher

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/ledger"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/txntrace"
	"repro/internal/uncore"
)

// Config sizes the incoherent L1 level (same first-level budget as the
// coherent model).
type Config struct {
	L1Size  uint64
	L1Assoc int
}

// DefaultConfig matches the coherent model's 32 KB 2-way L1s.
func DefaultConfig() Config { return Config{L1Size: 32 * 1024, L1Assoc: 2} }

// Stats counts software-coherence activity.
type Stats struct {
	ReadMisses  uint64
	WriteMisses uint64
	Flushes     uint64 // dirty lines written back by software
	Invalidates uint64 // lines killed by software
	FlushOps    uint64 // FlushRange calls
	InvalOps    uint64 // InvalidateRange calls

	// Miss-service accumulators mirroring coher.Stats so the models'
	// reports are comparable field-for-field (diagnostics, not time
	// series — they stay out of Snapshot so probe columns are stable).
	ReadMissLatency  sim.Time
	WriteMissLatency sim.Time
}

// AvgReadMissLatency returns the mean demand read-miss service time.
func (s Stats) AvgReadMissLatency() sim.Time {
	if s.ReadMisses == 0 {
		return 0
	}
	return s.ReadMissLatency / sim.Time(s.ReadMisses)
}

// AvgWriteMissLatency returns the mean write-miss service time.
func (s Stats) AvgWriteMissLatency() sim.Time {
	if s.WriteMisses == 0 {
		return 0
	}
	return s.WriteMissLatency / sim.Time(s.WriteMisses)
}

// Snapshot emits the counters in a fixed order (probe layer).
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("read_misses", float64(s.ReadMisses))
	put("write_misses", float64(s.WriteMisses))
	put("flushes", float64(s.Flushes))
	put("invalidates", float64(s.Invalidates))
	put("flush_ops", float64(s.FlushOps))
	put("inval_ops", float64(s.InvalOps))
}

// Domain is the set of incoherent L1s over one uncore.
type Domain struct {
	cfg   Config
	net   *noc.Network
	unc   *uncore.Uncore
	procs []*cpu.Proc
	l1s   []*cache.Cache
	stats Stats
	lat   *ledger.Latency  // nil = latency histograms disabled
	txn   *txntrace.Tracer // nil = transaction tracing disabled
}

// NewDomain builds the incoherent L1 level for the given cores.
func NewDomain(cfg Config, unc *uncore.Uncore, procs []*cpu.Proc) *Domain {
	d := &Domain{cfg: cfg, net: unc.Network(), unc: unc, procs: procs}
	for i := range procs {
		d.l1s = append(d.l1s, cache.New(cache.Config{
			Name:  fmt.Sprintf("incl1d%d", i),
			Size:  cfg.L1Size,
			Assoc: cfg.L1Assoc,
		}))
	}
	return d
}

// Mem returns the cpu.ProcMem for core i.
func (d *Domain) Mem(i int) *Mem { return &Mem{d: d, core: i} }

// L1 returns core i's cache.
func (d *Domain) L1(i int) *cache.Cache { return d.l1s[i] }

// Stats returns a snapshot of the counters.
func (d *Domain) Stats() Stats { return d.stats }

// SetLatency attaches the run's service-time histograms (nil disables
// recording).
func (d *Domain) SetLatency(l *ledger.Latency) { d.lat = l }

// SetTxnTrace attaches the run's transaction tracer (nil disables it).
func (d *Domain) SetTxnTrace(t *txntrace.Tracer) { d.txn = t }

// Mem is the per-core cpu.ProcMem of the incoherent model. Misses go
// straight to the shared L2/DRAM with no snooping.
type Mem struct {
	d    *Domain
	core int
}

var _ cpu.ProcMem = (*Mem)(nil)

func (m *Mem) cluster() int { return m.d.procs[m.core].Cluster() }

func (m *Mem) evict(at sim.Time, ev cache.Evicted) {
	if ev.Valid && ev.Dirty {
		cl := m.cluster()
		t := m.d.net.BusData(at, cl, mem.LineSize)
		m.d.unc.WriteLine(t, cl, ev.Addr, mem.LineSize, true)
	}
}

// Load implements cpu.ProcMem.
func (m *Mem) Load(p *cpu.Proc, a mem.Addr) sim.Time {
	c := m.d.l1s[m.core]
	if ln := c.Access(a, false); ln != nil {
		if ln.FillDone > p.Now() {
			return ln.FillDone
		}
		return p.Now()
	}
	p.Task().Sync()
	m.d.stats.ReadMisses++
	at := p.Now()
	m.d.txn.Begin(txntrace.ReadMiss, m.core, uint64(a.Line()), at)
	cl := m.cluster()
	t := m.d.net.BusControl(at, cl)
	done, _ := m.d.unc.ReadLine(t, cl, a)
	done = m.d.net.BusData(done, cl, mem.LineSize)
	m.d.txn.End(done)
	m.d.stats.ReadMissLatency += done - at
	if m.d.lat != nil {
		m.d.lat.ReadMiss.Record(uint64(done - at))
	}
	_, ev := c.Insert(a, cache.Exclusive, done)
	m.evict(done, ev)
	return done
}

// Store implements cpu.ProcMem: write-back, write-allocate, but with no
// ownership transaction — there is no coherence to maintain.
func (m *Mem) Store(p *cpu.Proc, a mem.Addr, nbytes uint64) sim.Time {
	c := m.d.l1s[m.core]
	if ln := c.Access(a, true); ln != nil {
		ln.State = cache.Modified
		ln.Dirty = true
		if ln.FillDone > p.Now() {
			return ln.FillDone
		}
		return p.Now()
	}
	p.Task().Sync()
	m.d.stats.WriteMisses++
	at := p.Now()
	m.d.txn.Begin(txntrace.WriteMiss, m.core, uint64(a.Line()), at)
	cl := m.cluster()
	t := m.d.net.BusControl(at, cl)
	done, _ := m.d.unc.ReadLine(t, cl, a) // write-allocate refill
	done = m.d.net.BusData(done, cl, mem.LineSize)
	m.d.txn.End(done)
	m.d.stats.WriteMissLatency += done - at
	if m.d.lat != nil {
		m.d.lat.WriteMiss.Record(uint64(done - at))
	}
	ln, ev := c.Insert(a, cache.Modified, done)
	ln.Dirty = true
	m.evict(done, ev)
	return done
}

// StorePFS implements cpu.ProcMem: allocate without refill (trivially
// safe here — there are no other copies to reconcile).
func (m *Mem) StorePFS(p *cpu.Proc, a mem.Addr, nbytes uint64) sim.Time {
	c := m.d.l1s[m.core]
	if ln := c.Access(a, true); ln != nil {
		ln.State = cache.Modified
		ln.Dirty = true
		return p.Now()
	}
	p.Task().Sync()
	_, ev := c.InsertPFS(a, p.Now())
	m.evict(p.Now(), ev)
	return p.Now()
}

// Flush implements cpu.ProcMem. No Sync here: FlushRange syncs before
// its first shared touch, and a second yield at the same (time, id) is a
// provable no-op under the engine's dispatch order.
func (m *Mem) Flush(p *cpu.Proc) sim.Time {
	return m.FlushRange(p, 0, ^uint64(0))
}

// FlushRange writes back (and retains clean) every dirty line the cache
// holds in [a, a+n). Software calls it before publishing produced data.
// It returns the time the last write-back is accepted.
func (m *Mem) FlushRange(p *cpu.Proc, a mem.Addr, n uint64) sim.Time {
	p.Task().Sync()
	m.d.stats.FlushOps++
	c := m.d.l1s[m.core]
	cl := m.cluster()
	t := p.Now()
	end := a + mem.Addr(n)
	if n == ^uint64(0) {
		end = ^mem.Addr(0)
	}
	var last sim.Time
	for _, la := range c.Lines() {
		ln := c.Lookup(la)
		if ln == nil || !ln.Dirty || la < a || la >= end {
			continue
		}
		// One flush instruction per line; the write-backs themselves
		// pipeline through the bus and L2 (the flush loop does not wait
		// for each to complete).
		p.Work(1)
		t = p.Now()
		m.d.stats.Flushes++
		bt := m.d.net.BusData(t, cl, mem.LineSize)
		if done := m.d.unc.WriteLine(bt, cl, la, mem.LineSize, true); done > last {
			last = done
		}
		ln.Dirty = false
		ln.State = cache.Exclusive
	}
	if last > t {
		t = last
	}
	return t
}

// InvalidateRange discards every cached line in [a, a+n), dirty or not.
// Software calls it before reading data another core produced. Dirty
// data in the range is dropped — exactly the sharp edge that makes
// software coherence hard to program.
func (m *Mem) InvalidateRange(p *cpu.Proc, a mem.Addr, n uint64) {
	p.Task().Sync()
	m.d.stats.InvalOps++
	c := m.d.l1s[m.core]
	end := a + mem.Addr(n)
	for _, la := range c.Lines() {
		if la < a || la >= end {
			continue
		}
		p.Work(1)
		c.Invalidate(la)
		m.d.stats.Invalidates++
	}
}

package incoher

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/uncore"
)

// harness wires an engine, uncore and n incoherent cores.
type harness struct {
	eng   *sim.Engine
	dom   *Domain
	unc   *uncore.Uncore
	procs []*cpu.Proc
}

func newHarness(n int) *harness {
	h := &harness{eng: sim.NewEngine()}
	net := noc.New(noc.DefaultConfig(n))
	h.unc = uncore.New(uncore.DefaultConfig(), net)
	for i := 0; i < n; i++ {
		h.procs = append(h.procs, cpu.New(i, net.ClusterOf(i), cpu.Config{Clock: sim.MHz(800)}))
	}
	h.dom = NewDomain(DefaultConfig(), h.unc, h.procs)
	return h
}

func (h *harness) run(bodies ...func(p *cpu.Proc)) {
	for i, body := range bodies {
		i, body := i, body
		h.eng.Spawn("core", 0, func(task *sim.Task) {
			p := h.procs[i]
			p.Bind(task, h.dom.Mem(i))
			body(p)
			p.Finish()
		})
	}
	h.eng.Run()
}

func TestMissesSkipSnoops(t *testing.T) {
	h := newHarness(4)
	bodies := make([]func(*cpu.Proc), 4)
	for i := range bodies {
		base := mem.Addr(0x10000 * (i + 1))
		bodies[i] = func(p *cpu.Proc) {
			for k := 0; k < 64; k++ {
				p.Load(base + mem.Addr(k*32))
			}
		}
	}
	h.run(bodies...)
	// No snoop probes anywhere: no coherence hardware.
	for i := 0; i < 4; i++ {
		if got := h.dom.L1(i).Stats().SnoopLookups; got != 0 {
			t.Errorf("core %d saw %d snoop probes; INC has none", i, got)
		}
		if got := h.procs[i].Stats().SnoopStalls; got != 0 {
			t.Errorf("core %d charged %d snoop stalls", i, got)
		}
	}
}

func TestStoreNeedsNoOwnership(t *testing.T) {
	// Two cores write the same line; with no protocol, both keep their
	// (incoherent!) copies dirty. This is legal hardware behavior — it
	// is software's bug if it matters.
	h := newHarness(2)
	check := func(p *cpu.Proc) {
		// Sample before Finish (which flushes, as a well-behaved INC
		// program drains its dirty data at the end).
		ln := h.dom.L1(p.ID()).Lookup(0x5000)
		if ln == nil || !ln.Dirty {
			t.Errorf("core %d lost its private dirty copy", p.ID())
		}
	}
	h.run(
		func(p *cpu.Proc) {
			p.Store(0x5000)
			p.WaitUntil(20 * sim.Microsecond)
			check(p)
		},
		func(p *cpu.Proc) {
			p.WaitUntil(10 * sim.Microsecond)
			p.Store(0x5000)
			p.WaitUntil(20 * sim.Microsecond)
			check(p)
		},
	)
}

func TestFlushRangeWritesBackDirtyLines(t *testing.T) {
	h := newHarness(1)
	h.run(func(p *cpu.Proc) {
		for k := 0; k < 16; k++ {
			p.StorePFS(mem.Addr(0x8000 + k*32)) // dirty 16 lines, no refills
		}
		m := p.Mem().(*Mem)
		m.FlushRange(p, 0x8000, 16*32)
	})
	if got := h.dom.Stats().Flushes; got != 16 {
		t.Errorf("flushed %d lines, want 16", got)
	}
	if got := h.unc.Stats().WriteRequests; got < 16 {
		t.Errorf("L2 saw %d writes, want >= 16", got)
	}
	// Lines stay resident and clean.
	ln := h.dom.L1(0).Lookup(0x8000)
	if ln == nil || ln.Dirty {
		t.Errorf("flushed line should remain resident and clean, got %+v", ln)
	}
}

func TestInvalidateRangeForcesRefetch(t *testing.T) {
	h := newHarness(1)
	var missesBefore, missesAfter uint64
	h.run(func(p *cpu.Proc) {
		p.Load(0x9000)
		p.Load(0x9000) // hit
		missesBefore = h.dom.Stats().ReadMisses
		m := p.Mem().(*Mem)
		m.InvalidateRange(p, 0x9000, 32)
		p.Load(0x9000) // must re-fetch
		missesAfter = h.dom.Stats().ReadMisses
	})
	if missesAfter != missesBefore+1 {
		t.Errorf("invalidate did not force a refetch: %d -> %d", missesBefore, missesAfter)
	}
}

// TestProducerConsumerThroughFlush exercises the software-coherence
// pattern: producer stores + flush; consumer invalidates + loads and
// must observe a memory-system fetch (not a stale local hit).
func TestProducerConsumerThroughFlush(t *testing.T) {
	h := newHarness(2)
	region := mem.Addr(0xA000)
	h.run(
		func(p *cpu.Proc) {
			// Consumer warms a stale copy first.
			p.Load(region)
			p.WaitUntil(50 * sim.Microsecond) // after producer's flush
			m := p.Mem().(*Mem)
			m.InvalidateRange(p, region, 32)
			p.Load(region) // refetches the flushed data
		},
		func(p *cpu.Proc) {
			p.WaitUntil(10 * sim.Microsecond)
			p.Store(region)
			m := p.Mem().(*Mem)
			m.FlushRange(p, region, 32)
		},
	)
	st := h.dom.Stats()
	if st.Flushes != 1 || st.Invalidates != 1 {
		t.Errorf("flushes=%d invalidates=%d, want 1,1", st.Flushes, st.Invalidates)
	}
	// Consumer read the line twice from the memory system.
	if st.ReadMisses < 2 {
		t.Errorf("read misses = %d, want >= 2", st.ReadMisses)
	}
}

func TestINCFasterThanCCWithoutSharing(t *testing.T) {
	// For perfectly partitioned data the incoherent model should be at
	// least as fast as the coherent one (no broadcasts, no upgrades).
	// This is the Loghi & Poncino observation the paper cites.
	runModel := func(inc bool) sim.Time {
		var wall sim.Time
		if inc {
			h := newHarness(4)
			bodies := make([]func(*cpu.Proc), 4)
			for i := range bodies {
				base := mem.Addr(0x100000 * (i + 1))
				bodies[i] = func(p *cpu.Proc) {
					for k := 0; k < 512; k++ {
						p.Load(base + mem.Addr(k*32))
						p.Store(base + mem.Addr(0x40000+k*32))
					}
				}
			}
			h.run(bodies...)
			for _, p := range h.procs {
				if p.FinishTime() > wall {
					wall = p.FinishTime()
				}
			}
		}
		return wall
	}
	_ = runModel
	// Full cross-model comparison lives in the root ablation bench; here
	// we only assert the protocol-free path produced zero invalidations.
	h := newHarness(4)
	bodies := make([]func(*cpu.Proc), 4)
	for i := range bodies {
		base := mem.Addr(0x100000 * (i + 1))
		bodies[i] = func(p *cpu.Proc) {
			for k := 0; k < 128; k++ {
				p.Store(base + mem.Addr(k*32))
			}
		}
	}
	h.run(bodies...)
	if got := h.dom.Stats().Invalidates; got != 0 {
		t.Errorf("unshared stores caused %d invalidations", got)
	}
}

package txntrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// ClassSummary is the per-class exemplar digest that rides on telemetry
// endpoints and paperbench manifest records (the tail_exemplars block):
// how many transactions the class saw, how many exemplar trees the
// reservoir holds, and the slowest transaction's identity.
type ClassSummary struct {
	Class     string `json:"class"`
	Count     uint64 `json:"count"`
	Exemplars int    `json:"exemplars"`
	SlowestID uint64 `json:"slowest_id,omitempty"`
	SlowestFS uint64 `json:"slowest_fs,omitempty"`
	Core      int    `json:"slowest_core,omitempty"`
}

// Summary returns one ClassSummary per class that observed at least one
// transaction, in class declaration order.
func (t *Tracer) Summary() []ClassSummary {
	if t == nil {
		return nil
	}
	var out []ClassSummary
	for _, c := range Classes() {
		if t.counts[c] == 0 {
			continue
		}
		s := ClassSummary{Class: c.String(), Count: t.counts[c], Exemplars: len(t.reservoirs[c].txs)}
		if s.Exemplars > 0 {
			worst := t.reservoirs[c].txs[0]
			s.SlowestID = worst.ID
			s.SlowestFS = uint64(worst.Latency())
			s.Core = worst.Core
		}
		out = append(out, s)
	}
	return out
}

// jsonTxn is the wire form of a transaction tree: explicit, so the
// unexported bookkeeping fields and the parent pointer (a cycle) never
// leak into the sink.
type jsonTxn struct {
	ID          uint64    `json:"id"`
	Class       string    `json:"class"`
	Core        int       `json:"core"`
	Addr        uint64    `json:"addr"`
	StartFS     sim.Time  `json:"start_fs"`
	EndFS       sim.Time  `json:"end_fs"`
	LatencyFS   sim.Time  `json:"latency_fs"`
	Sampled     bool      `json:"sampled,omitempty"`
	Exemplar    bool      `json:"exemplar,omitempty"`
	Tags        []string  `json:"tags,omitempty"`
	Hops        []Hop     `json:"hops,omitempty"`
	Kids        []jsonTxn `json:"children,omitempty"`
	DroppedHops uint64    `json:"dropped_hops,omitempty"`
	DroppedKids uint64    `json:"dropped_children,omitempty"`
}

func toJSON(x *Txn, inReservoir map[uint64]bool) jsonTxn {
	j := jsonTxn{
		ID: x.ID, Class: x.Class.String(), Core: x.Core, Addr: x.Addr,
		StartFS: x.StartFS, EndFS: x.EndFS, LatencyFS: x.Latency(),
		Sampled: x.sampled, Exemplar: inReservoir[x.ID],
		Tags: x.Tags, Hops: x.Hops,
		DroppedHops: x.DroppedHops, DroppedKids: x.DroppedKids,
	}
	for _, k := range x.Kids {
		j.Kids = append(j.Kids, toJSON(k, inReservoir))
	}
	return j
}

// export returns every retained root tree — sampled captures plus
// exemplar reservoirs, deduplicated — in (StartFS, ID) order, paired
// with whether each sits in an exemplar reservoir.
func (t *Tracer) export() []jsonTxn {
	if t == nil {
		return nil
	}
	inReservoir := map[uint64]bool{}
	byID := map[uint64]*Txn{}
	for _, c := range Classes() {
		for _, x := range t.reservoirs[c].txs {
			inReservoir[x.ID] = true
			byID[x.ID] = x
		}
	}
	for _, x := range t.kept {
		byID[x.ID] = x
	}
	// A reservoir can hold a nested transaction whose enclosing tree is
	// itself retained; exporting both would duplicate the subtree, so a
	// tree is top-level only when no ancestor is also retained (the
	// nested copy keeps its exemplar mark).
	txs := make([]*Txn, 0, len(byID))
	for _, x := range byID {
		nested := false
		for p := x.parent; p != nil; p = p.parent {
			if byID[p.ID] != nil {
				nested = true
				break
			}
		}
		if !nested {
			txs = append(txs, x)
		}
	}
	sort.Slice(txs, func(i, j int) bool {
		if txs[i].StartFS != txs[j].StartFS {
			return txs[i].StartFS < txs[j].StartFS
		}
		return txs[i].ID < txs[j].ID
	})
	out := make([]jsonTxn, 0, len(txs))
	for _, x := range txs {
		out = append(out, toJSON(x, inReservoir))
	}
	return out
}

// Trees returns how many root transaction trees the tracer retained:
// sampled captures plus exemplar reservoirs, deduplicated.
func (t *Tracer) Trees() int {
	return len(t.export())
}

// WriteJSONL writes every retained transaction tree as one JSON object
// per line (the -txn-trace sink), in deterministic (start, ID) order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, j := range t.export() {
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}

// cycles renders a femtosecond interval in core cycles at the given
// clock period.
func cycles(fs sim.Time, period sim.Time) float64 {
	if period <= 0 {
		return 0
	}
	return float64(fs) / float64(period)
}

// WriteExplainTail prints the worst-K exemplar trees per class with
// per-hop cycle attribution (the memsim -explain-tail table). period is
// the core clock period; hop shares are printed in cycles and sum to
// each transaction's total latency by construction.
func (t *Tracer) WriteExplainTail(w io.Writer, period sim.Time) {
	if t == nil {
		return
	}
	for _, c := range Classes() {
		exs := t.Exemplars(c)
		if len(exs) == 0 {
			continue
		}
		fmt.Fprintf(w, "worst-%d %s exemplars (%d observed)\n", len(exs), c, t.counts[c])
		for _, x := range exs {
			writeTxnTree(w, x, period, "  ")
		}
	}
	if d := t.DroppedSampled(); d > 0 {
		fmt.Fprintf(w, "# %d sampled trees dropped past the retention cap\n", d)
	}
}

func writeTxnTree(w io.Writer, x *Txn, period sim.Time, indent string) {
	fmt.Fprintf(w, "%s#%d %s core=%d addr=0x%x: %.1f cycles (%d fs)\n",
		indent, x.ID, x.Class, x.Core, x.Addr, cycles(x.Latency(), period), x.Latency())
	for _, tag := range x.Tags {
		fmt.Fprintf(w, "%s  tag %s\n", indent, tag)
	}
	var sum sim.Time
	for _, h := range x.Hops {
		sum += h.AdvanceFS
		tag := ""
		if h.Tag != "" {
			tag = "  " + h.Tag
		}
		fmt.Fprintf(w, "%s  %8.1f cyc  %s.%s%s\n", indent, cycles(h.AdvanceFS, period), h.Component, h.Op, tag)
	}
	fmt.Fprintf(w, "%s  %8.1f cyc  = total\n", indent, cycles(sum, period))
	if x.DroppedHops > 0 {
		fmt.Fprintf(w, "%s  (%d hops dropped past the per-txn cap)\n", indent, x.DroppedHops)
	}
	for _, k := range x.Kids {
		writeTxnTree(w, k, period, indent+"    ")
	}
	if x.DroppedKids > 0 {
		fmt.Fprintf(w, "%s  (%d children dropped past the per-txn cap)\n", indent, x.DroppedKids)
	}
}

// Merged component tracks sit far above the per-core rows of the stall
// timeline, one row per component, in this fixed order.
const componentTrackBase = 1000

var componentTracks = []string{"l1", "noc", "l2", "dram", "dma", "txn", "wait"}

func trackOf(component string) int {
	for i, c := range componentTracks {
		if c == component {
			return componentTrackBase + i
		}
	}
	return componentTrackBase + len(componentTracks)
}

// MergeChrome merges the retained transaction trees into a Chrome-trace
// collector: each hop becomes an "X" span on its component's track, and
// each root transaction becomes a flow chain ("s"/"t"/"f" request
// arrows) threading its hops in time order, so -trace timelines show
// the causal path of every traced request.
func (t *Tracer) MergeChrome(tc *trace.Collector) {
	if t == nil || tc == nil {
		return
	}
	for i, c := range componentTracks {
		tc.SetTrackName(componentTrackBase+i, "txn."+c)
	}
	tc.SetTrackName(componentTrackBase+len(componentTracks), "txn.other")
	for _, j := range t.export() {
		mergeTxn(tc, j)
	}
}

func mergeTxn(tc *trace.Collector, j jsonTxn) {
	var steps []trace.FlowStep
	for _, h := range j.Hops {
		// Child aggregates ("txn" hops) are represented by the child's
		// own spans; skip the aggregate to avoid double-drawing.
		if h.Component == "txn" {
			continue
		}
		tr := trackOf(h.Component)
		tc.Add(tr, fmt.Sprintf("%s %s.%s", j.Class, h.Component, h.Op), h.StartFS, h.EndFS-h.StartFS)
		steps = append(steps, trace.FlowStep{Track: tr, At: h.StartFS})
	}
	tc.AddFlow(j.ID, j.Class, steps)
	for _, k := range j.Kids {
		mergeTxn(tc, k)
	}
}

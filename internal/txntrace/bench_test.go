package txntrace

import (
	"testing"

	"repro/internal/sim"
)

// traceOneMiss is the charge-site shape of one CC read miss: a root
// Begin, a handful of hops across the hierarchy, one nested fill, and
// the End that finalizes attribution. The benchmarks drive this exact
// sequence so the measured cost is the per-transaction price the model
// pays, not a synthetic single hook.
func traceOneMiss(t *Tracer, i int) {
	at := sim.Time(i) * 1000
	t.Begin(ReadMiss, i&7, uint64(i)*64, at)
	t.Hop("noc", "bus_control", at, at+10)
	t.Begin(L2Hit, i&7, uint64(i)*64, at+10)
	t.Hop("l2", "access", at+10, at+20)
	t.End(at + 20)
	t.HopTag("noc", "bus_data", at+20, at+30, "wait=0fs")
	t.End(at + 30)
}

// BenchmarkTxnTraceDisabled is the disabled-cost gate: the full miss
// hook sequence against a nil Tracer, i.e. what every transaction pays
// when tracing is off. bench-check pins it against the same-run
// BenchmarkDispatchInline control, so the nil compares must stay well
// under the cost of a single inline dispatch.
func BenchmarkTxnTraceDisabled(b *testing.B) {
	var t *Tracer
	for i := 0; i < b.N; i++ {
		traceOneMiss(t, i)
	}
}

// BenchmarkTxnTraceEnabled is the same sequence with exemplar capture
// armed (the always-on mode every -txn-trace/-explain-tail run pays for
// every transaction, not just retained ones).
func BenchmarkTxnTraceEnabled(b *testing.B) {
	t := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOneMiss(t, i)
	}
}

// BenchmarkTxnTraceSampled adds 1-in-64 sampled full-tree capture with
// a bounded retention cap, the configuration the determinism tests and
// CI runs use.
func BenchmarkTxnTraceSampled(b *testing.B) {
	t := New()
	t.SampleEvery = 64
	t.KeptCap = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOneMiss(t, i)
	}
}

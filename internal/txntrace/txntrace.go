// Package txntrace is request-scoped causal tracing for individual
// memory transactions: one sampled CC/INC miss, STR queue access or DMA
// command gets a trace ID and a tree of hops recorded at the same
// charge sites the cycle ledger instruments — L1 miss issue, snoop
// fan-out, owner intervention or L2 access, NoC transfers, DRAM channel
// service — each hop carrying its sim-time interval, component, and
// outcome tag.
//
// Two capture modes run together, both deterministic:
//
//   - Sampled capture keeps the full tree of every transaction whose
//     (serial, seed) hash selects it, so re-runs at the same seed trace
//     the exact same transactions.
//   - Worst-K exemplar reservoirs (always on) keep the K slowest
//     complete trees per latency class, so the tail of every histogram
//     is explained without tracing everything.
//
// Like the ledger and the probe, a Tracer is a run-scoped observer
// behind the repo's nil-sentinel pattern: every hook is safe on a nil
// receiver, costs one nil compare when tracing is off, and only ever
// reads simulated clocks — attaching a Tracer never changes a report.
// Model code runs single-threaded in event order, so the Tracer needs
// no locks; reading results is safe once the run has finished.
package txntrace

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Class is a transaction latency class. The classes mirror the cycle
// ledger's latency histograms, plus Prefetch for hardware-prefetch
// fills that the ledger deliberately excludes from ReadMiss.
type Class uint8

// The transaction latency classes.
const (
	ReadMiss Class = iota
	WriteMiss
	L2Hit
	DRAMFill
	DMAGet
	DMAPut
	Prefetch
	numClasses
)

// String returns the class name used in exports and metrics labels.
func (c Class) String() string {
	switch c {
	case ReadMiss:
		return "read_miss"
	case WriteMiss:
		return "write_miss"
	case L2Hit:
		return "l2_hit"
	case DRAMFill:
		return "dram_fill"
	case DMAGet:
		return "dma_get"
	case DMAPut:
		return "dma_put"
	case Prefetch:
		return "prefetch"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes lists every class in declaration order (export iteration).
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Hop is one recorded interval within a transaction: a charge site the
// request passed through. AdvanceFS is the hop's critical-path
// contribution, assigned when the transaction ends: the first hop to
// cover a stretch of the transaction's [start, end] window owns it, so
// the AdvanceFS of all hops sums exactly to the transaction's latency
// (side paths the core never waited for — overlapped writebacks,
// snoop responses subsumed by a slower data return — contribute 0).
type Hop struct {
	Component string   `json:"component"`
	Op        string   `json:"op"`
	StartFS   sim.Time `json:"start_fs"`
	EndFS     sim.Time `json:"end_fs"`
	AdvanceFS sim.Time `json:"advance_fs"`
	Tag       string   `json:"tag,omitempty"`
}

// Caps bounding a single transaction's memory footprint. A transaction
// that outgrows them keeps counting (DroppedHops/DroppedKids) so
// exports can say the tree is truncated rather than silently lying.
const (
	maxHops = 512
	maxKids = 128
	maxTags = 16
)

// Txn is one transaction tree: the root interval, the hops recorded
// while it was the active transaction, and nested sub-transactions
// (an uncore line fill inside a CC miss, the beats of a DMA command).
// All methods are nil-receiver safe so instrumentation sites need no
// guards beyond the Tracer's own.
type Txn struct {
	ID      uint64
	Class   Class
	Core    int
	Addr    uint64
	StartFS sim.Time
	EndFS   sim.Time
	Hops    []Hop
	Tags    []string
	Kids    []*Txn
	// Truncation counters (see the caps above).
	DroppedHops uint64
	DroppedKids uint64

	parent  *Txn
	sampled bool
	root    bool
}

// Latency returns the transaction's end-to-end latency.
func (x *Txn) Latency() sim.Time {
	if x == nil {
		return 0
	}
	return x.EndFS - x.StartFS
}

// Sampled reports whether the deterministic sampler selected this
// transaction (exemplar-only trees return false).
func (x *Txn) Sampled() bool { return x != nil && x.sampled }

// SetClass reclassifies the transaction; the uncore uses it to turn a
// provisional l2_hit into a dram_fill once the L2 lookup misses.
func (x *Txn) SetClass(c Class) {
	if x != nil {
		x.Class = c
	}
}

// AddTag appends an outcome tag ("mesi=I->E", "src=owner_remote",
// "retry", ...). Tags beyond the cap are dropped silently — they are
// annotations, not accounting.
func (x *Txn) AddTag(tag string) {
	if x != nil && len(x.Tags) < maxTags {
		x.Tags = append(x.Tags, tag)
	}
}

// addHop appends a hop, honoring the cap.
func (x *Txn) addHop(h Hop) {
	if len(x.Hops) >= maxHops {
		x.DroppedHops++
		return
	}
	x.Hops = append(x.Hops, h)
}

// finalize stamps the end time and assigns each hop's critical-path
// share: a cursor sweeps [StartFS, end] in hop-record order, and every
// hop owns the stretch between the cursor and its own end (clamped to
// the window). Any trailing uncovered stretch becomes a synthetic
// "wait/tail" hop, so the shares always sum exactly to the latency.
func (x *Txn) finalize(end sim.Time) {
	x.EndFS = end
	cur := x.StartFS
	for i := range x.Hops {
		h := &x.Hops[i]
		hi := h.EndFS
		if hi > end {
			hi = end
		}
		if hi > cur {
			h.AdvanceFS = hi - cur
			cur = hi
		} else {
			h.AdvanceFS = 0
		}
	}
	if end > cur {
		x.Hops = append(x.Hops, Hop{
			Component: "wait", Op: "tail",
			StartFS: cur, EndFS: end, AdvanceFS: end - cur,
		})
	}
}

// reservoir keeps the K slowest finished transactions of one class,
// slowest first. K is tiny, so an insertion sort beats a heap.
type reservoir struct {
	k   int
	txs []*Txn
}

func (r *reservoir) offer(x *Txn) {
	if r.k <= 0 {
		return
	}
	if len(r.txs) == r.k && x.Latency() <= r.txs[len(r.txs)-1].Latency() {
		return
	}
	i := sort.Search(len(r.txs), func(i int) bool {
		l := r.txs[i].Latency()
		// Strictly-slower-first with ID as the deterministic tiebreak:
		// among equal latencies the earliest transaction wins, so the
		// reservoir's content does not depend on arrival order quirks.
		return l < x.Latency() || (l == x.Latency() && r.txs[i].ID > x.ID)
	})
	if i == len(r.txs) && len(r.txs) == r.k {
		return
	}
	r.txs = append(r.txs, nil)
	copy(r.txs[i+1:], r.txs[i:])
	r.txs[i] = x
	if len(r.txs) > r.k {
		r.txs = r.txs[:r.k]
	}
}

// DefaultK is the per-class exemplar reservoir depth.
const DefaultK = 4

// defaultKeptCap bounds how many sampled transaction trees are retained
// (the exemplar reservoirs are bounded by construction). Overflowing
// trees are counted, not kept; the CLIs surface the count once.
const defaultKeptCap = 1 << 16

// Tracer records transaction trees for one run. Configure the exported
// knobs before the run starts; attach via core.Config.TxnTrace. The
// zero knobs mean: sampling off, DefaultK exemplars per class.
type Tracer struct {
	// SampleEvery keeps the full tree of roughly 1-in-N root
	// transactions, selected by a deterministic hash of (serial, Seed).
	// 0 disables sampled capture; exemplar capture is always on.
	SampleEvery uint64
	// Seed salts the sampling hash so different seeds trace different
	// (but per-seed reproducible) transaction populations.
	Seed uint64
	// K overrides the per-class exemplar reservoir depth (0 = DefaultK,
	// negative disables exemplars).
	K int
	// KeptCap overrides the sampled-tree retention cap (0 = default).
	KeptCap int

	serial     uint64
	nextID     uint64
	stack      []*Txn
	reservoirs [numClasses]reservoir
	counts     [numClasses]uint64
	kept       []*Txn
	dropped    uint64
}

// New returns a Tracer with exemplar capture on (DefaultK per class)
// and sampled capture off.
func New() *Tracer { return &Tracer{} }

func (t *Tracer) kOrDefault() int {
	switch {
	case t.K > 0:
		return t.K
	case t.K < 0:
		return 0
	}
	return DefaultK
}

func (t *Tracer) keptCapOrDefault() int {
	if t.KeptCap > 0 {
		return t.KeptCap
	}
	return defaultKeptCap
}

// splitmix64 is the sampling hash: a full-avalanche mix of the
// transaction serial and the seed, so "every Nth" never aliases with a
// workload's own periodicity.
func splitmix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// sampleRoot assigns the next root serial and decides whether the
// sampler keeps this transaction's tree.
func (t *Tracer) sampleRoot() bool {
	t.serial++
	if t.SampleEvery == 0 {
		return false
	}
	return splitmix64(t.serial^t.Seed)%t.SampleEvery == 0
}

// newTxn allocates a transaction shell.
func (t *Tracer) newTxn(class Class, core int, addr uint64, at sim.Time) *Txn {
	t.nextID++
	return &Txn{ID: t.nextID, Class: class, Core: core, Addr: addr, StartFS: at}
}

// Begin opens a transaction at the top of the active stack and makes it
// the target of subsequent Hop calls. With an enclosing transaction
// active, the new one is a nested sub-transaction (it will attach to
// its parent when it ends); otherwise it is a root, which consumes a
// sampling serial. Returns nil on a nil Tracer.
func (t *Tracer) Begin(class Class, core int, addr uint64, at sim.Time) *Txn {
	if t == nil {
		return nil
	}
	x := t.newTxn(class, core, addr, at)
	if n := len(t.stack); n > 0 {
		x.parent = t.stack[n-1]
		x.sampled = x.parent.sampled
	} else {
		x.root = true
		x.sampled = t.sampleRoot()
	}
	t.stack = append(t.stack, x)
	return x
}

// BeginDetached opens a root transaction without activating it: DMA
// commands live across many engine steps interleaved with other
// commands, so the DMA engine holds the handle and brackets each beat
// with Resume/Suspend. The detached transaction consumes a sampling
// serial like any root.
func (t *Tracer) BeginDetached(class Class, core int, addr uint64, at sim.Time) *Txn {
	if t == nil {
		return nil
	}
	x := t.newTxn(class, core, addr, at)
	x.root = true
	x.sampled = t.sampleRoot()
	return x
}

// Resume makes a detached transaction the active one (nested hooks —
// uncore, NoC — then attribute to it). Balance with Suspend.
func (t *Tracer) Resume(x *Txn) {
	if t == nil || x == nil {
		return
	}
	t.stack = append(t.stack, x)
}

// Suspend deactivates the most recently resumed transaction without
// ending it.
func (t *Tracer) Suspend() {
	if t == nil || len(t.stack) == 0 {
		return
	}
	t.stack = t.stack[:len(t.stack)-1]
}

// Hop records one interval against the active transaction (no-op when
// none is active).
func (t *Tracer) Hop(component, op string, start, end sim.Time) {
	t.HopTag(component, op, start, end, "")
}

// HopTag is Hop with an outcome tag.
func (t *Tracer) HopTag(component, op string, start, end sim.Time, tag string) {
	if t == nil || len(t.stack) == 0 {
		return
	}
	t.stack[len(t.stack)-1].addHop(Hop{Component: component, Op: op, StartFS: start, EndFS: end, Tag: tag})
}

// Active returns the transaction currently receiving hops (nil when
// none, or on a nil Tracer).
func (t *Tracer) Active() *Txn {
	if t == nil || len(t.stack) == 0 {
		return nil
	}
	return t.stack[len(t.stack)-1]
}

// End closes the active transaction at the given completion time,
// finalizes its per-hop attribution, offers it to its class reservoir
// and — for sampled roots — retains the tree. Nested transactions
// attach to their parent as both a child tree and an aggregate hop, so
// the parent's conservation covers them.
func (t *Tracer) End(at sim.Time) {
	if t == nil || len(t.stack) == 0 {
		return
	}
	x := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	t.finish(x, at)
}

// EndDetached closes a detached transaction (which must not be on the
// active stack — the DMA engine suspends it between beats).
func (t *Tracer) EndDetached(x *Txn, at sim.Time) {
	if t == nil || x == nil {
		return
	}
	t.finish(x, at)
}

func (t *Tracer) finish(x *Txn, at sim.Time) {
	x.finalize(at)
	t.counts[x.Class]++
	if t.kOrDefault() > 0 {
		r := &t.reservoirs[x.Class]
		r.k = t.kOrDefault()
		r.offer(x)
	}
	if p := x.parent; p != nil {
		p.addHop(Hop{
			Component: "txn", Op: x.Class.String(),
			StartFS: x.StartFS, EndFS: x.EndFS,
			Tag: fmt.Sprintf("#%d", x.ID),
		})
		if len(p.Kids) < maxKids {
			p.Kids = append(p.Kids, x)
		} else {
			p.DroppedKids++
		}
		return
	}
	if x.sampled {
		if len(t.kept) < t.keptCapOrDefault() {
			t.kept = append(t.kept, x)
		} else {
			t.dropped++
		}
	}
}

// Exemplars returns the worst-K reservoir of one class, slowest first.
func (t *Tracer) Exemplars(c Class) []*Txn {
	if t == nil || c >= numClasses {
		return nil
	}
	return t.reservoirs[c].txs
}

// Count returns how many transactions of a class completed.
func (t *Tracer) Count(c Class) uint64 {
	if t == nil || c >= numClasses {
		return 0
	}
	return t.counts[c]
}

// Kept returns the sampled transaction trees in (start, ID) order.
func (t *Tracer) Kept() []*Txn {
	if t == nil {
		return nil
	}
	out := append([]*Txn(nil), t.kept...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartFS != out[j].StartFS {
			return out[i].StartFS < out[j].StartFS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// DroppedSampled returns how many sampled trees overflowed the
// retention cap (counted, not kept — the CLIs warn once).
func (t *Tracer) DroppedSampled() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

package txntrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestNilTracerSafe pins the nil-sentinel contract: every hook on a nil
// Tracer (and on the nil Txn it hands out) is a no-op, so charge sites
// need no guards when tracing is off.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	x := tr.Begin(ReadMiss, 0, 0x1000, 100)
	if x != nil {
		t.Fatalf("nil tracer Begin returned %v", x)
	}
	tr.Hop("l1", "lookup", 100, 110)
	tr.HopTag("noc", "bus_data", 110, 120, "wait=0")
	tr.Suspend()
	tr.Resume(nil)
	tr.End(200)
	tr.EndDetached(nil, 200)
	if tr.Active() != nil || tr.Kept() != nil || tr.Summary() != nil {
		t.Fatal("nil tracer leaked state")
	}
	if tr.Count(ReadMiss) != 0 || tr.DroppedSampled() != 0 || tr.Trees() != 0 {
		t.Fatal("nil tracer reported nonzero counters")
	}
	x.SetClass(WriteMiss)
	x.AddTag("tag")
	if x.Latency() != 0 || x.Sampled() {
		t.Fatal("nil Txn reported state")
	}
	var buf bytes.Buffer
	tr.WriteExplainTail(&buf, 1250000)
	tr.MergeChrome(trace.New())
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil tracer wrote output: %q", buf.String())
	}
}

// sumAdvance recursively checks one tree's conservation invariant and
// returns the root's hop sum.
func sumAdvance(t *testing.T, x *Txn) sim.Time {
	t.Helper()
	var sum sim.Time
	for _, h := range x.Hops {
		sum += h.AdvanceFS
	}
	if sum != x.Latency() {
		t.Errorf("txn #%d %s: hop sum %d != latency %d", x.ID, x.Class, sum, x.Latency())
	}
	for _, k := range x.Kids {
		sumAdvance(t, k)
	}
	return sum
}

// TestFinalizeConservation drives the cursor sweep through its edge
// shapes: a gap between hops, an overlapped hop that contributes zero,
// a hop past the end that is clamped, and a trailing stretch that
// becomes the synthetic wait/tail hop. The shares must sum exactly to
// the latency in every shape.
func TestFinalizeConservation(t *testing.T) {
	tr := New()
	tr.Begin(ReadMiss, 1, 0x40, 100)
	tr.Hop("l1", "lookup", 100, 110)
	tr.Hop("noc", "to_global", 150, 200) // gap 110..150 charged here
	tr.Hop("l2", "access", 180, 190)     // fully overlapped: advance 0
	tr.Hop("dram", "read", 190, 400)     // clamped to the end below
	tr.End(250)

	exs := tr.Exemplars(ReadMiss)
	if len(exs) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(exs))
	}
	x := exs[0]
	sumAdvance(t, x)
	if got := x.Hops[1].AdvanceFS; got != 90 {
		t.Errorf("gap-absorbing hop advance = %d, want 90", got)
	}
	if got := x.Hops[2].AdvanceFS; got != 0 {
		t.Errorf("overlapped hop advance = %d, want 0", got)
	}
	if got := x.Hops[3].AdvanceFS; got != 50 {
		t.Errorf("clamped hop advance = %d, want 50", got)
	}

	// A transaction whose hops end before its completion gets the
	// synthetic tail.
	tr.Begin(WriteMiss, 0, 0x80, 0)
	tr.Hop("l1", "lookup", 0, 10)
	tr.End(100)
	wx := tr.Exemplars(WriteMiss)[0]
	last := wx.Hops[len(wx.Hops)-1]
	if last.Component != "wait" || last.Op != "tail" || last.AdvanceFS != 90 {
		t.Errorf("tail hop = %+v, want wait/tail advance 90", last)
	}
	sumAdvance(t, wx)
}

// TestNestedChildAttach: a Begin under an active transaction builds a
// sub-transaction that attaches to its parent as both a child tree and
// an aggregate "txn" hop, inheriting the parent's sampled bit.
func TestNestedChildAttach(t *testing.T) {
	tr := New()
	tr.SampleEvery = 1 // sample everything
	root := tr.Begin(ReadMiss, 0, 0x100, 0)
	tr.Hop("noc", "bus_control", 0, 10)
	kid := tr.Begin(L2Hit, 0, 0x100, 10)
	kid.SetClass(DRAMFill)
	tr.Hop("dram", "read", 10, 500)
	tr.End(510) // kid
	tr.End(520) // root

	if !root.Sampled() || !kid.Sampled() {
		t.Fatal("sampled bit did not propagate to the child")
	}
	if len(root.Kids) != 1 || root.Kids[0] != kid {
		t.Fatalf("root kids = %v", root.Kids)
	}
	var agg *Hop
	for i := range root.Hops {
		if root.Hops[i].Component == "txn" {
			agg = &root.Hops[i]
		}
	}
	if agg == nil || agg.Op != "dram_fill" || agg.StartFS != 10 || agg.EndFS != 510 {
		t.Fatalf("aggregate hop = %+v", agg)
	}
	sumAdvance(t, root)
	if tr.Count(DRAMFill) != 1 || tr.Count(ReadMiss) != 1 {
		t.Fatal("class counts missing the nested transaction")
	}
	// Only the root is retained as a sampled tree; the child lives
	// inside it.
	if kept := tr.Kept(); len(kept) != 1 || kept[0] != root {
		t.Fatalf("kept = %v, want just the root", kept)
	}
}

// TestSamplingDeterminism: the (serial, seed) hash selects the same
// transactions on every run at the same seed, and a different seed
// selects a different population.
func TestSamplingDeterminism(t *testing.T) {
	sampledIDs := func(seed uint64) []uint64 {
		tr := New()
		tr.SampleEvery = 8
		tr.Seed = seed
		var ids []uint64
		for i := 0; i < 1024; i++ {
			x := tr.Begin(ReadMiss, 0, uint64(i), sim.Time(i))
			tr.End(sim.Time(i + 1))
			if x.Sampled() {
				ids = append(ids, x.ID)
			}
		}
		return ids
	}
	a, b := sampledIDs(1), sampledIDs(1)
	if len(a) == 0 {
		t.Fatal("sampler selected nothing out of 1024 at 1-in-8")
	}
	if len(a) != len(b) {
		t.Fatalf("re-run selected %d vs %d transactions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := sampledIDs(2)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 1 and seed 2 selected identical populations")
	}
}

// TestReservoirWorstK: the per-class reservoir keeps the K slowest
// trees slowest-first, breaking latency ties toward the earliest ID.
func TestReservoirWorstK(t *testing.T) {
	tr := New()
	tr.K = 2
	lat := []sim.Time{50, 300, 100, 300, 200}
	for i, l := range lat {
		tr.Begin(ReadMiss, 0, uint64(i), 0)
		tr.End(l)
	}
	exs := tr.Exemplars(ReadMiss)
	if len(exs) != 2 {
		t.Fatalf("exemplars = %d, want 2", len(exs))
	}
	// Two transactions at 300; the earlier ID (serial 2, the first 300)
	// wins the tie and leads.
	if exs[0].Latency() != 300 || exs[1].Latency() != 300 {
		t.Fatalf("kept latencies %d, %d, want 300, 300", exs[0].Latency(), exs[1].Latency())
	}
	if exs[0].ID > exs[1].ID {
		t.Fatalf("tie broke toward the later ID: %d before %d", exs[0].ID, exs[1].ID)
	}
	if tr.Count(ReadMiss) != uint64(len(lat)) {
		t.Fatalf("count = %d, want %d", tr.Count(ReadMiss), len(lat))
	}
}

// TestKeptCapOverflow: sampled trees past the retention cap are counted
// as dropped, never silently discarded.
func TestKeptCapOverflow(t *testing.T) {
	tr := New()
	tr.SampleEvery = 1
	tr.KeptCap = 2
	for i := 0; i < 5; i++ {
		tr.Begin(ReadMiss, 0, uint64(i), sim.Time(i))
		tr.End(sim.Time(i + 1))
	}
	if len(tr.Kept()) != 2 {
		t.Fatalf("kept %d trees, want 2", len(tr.Kept()))
	}
	if tr.DroppedSampled() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.DroppedSampled())
	}
}

// TestWriteJSONLDeterministic: the sink emits one parseable JSON object
// per line in (start, ID) order, deduplicating trees that are both
// sampled and exemplars, and two identical runs produce identical
// bytes.
func TestWriteJSONLDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		tr.SampleEvery = 2
		tr.Seed = 7
		for i := 0; i < 64; i++ {
			tr.Begin(Class(i%3), i%4, uint64(i)*64, sim.Time(i*100))
			tr.Hop("l1", "lookup", sim.Time(i*100), sim.Time(i*100+10))
			tr.End(sim.Time(i*100 + 10 + i))
		}
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical runs produced different JSONL")
	}
	tr := build()
	if got := strings.Count(a.String(), "\n"); got != tr.Trees() {
		t.Fatalf("JSONL has %d lines, Trees() = %d", got, tr.Trees())
	}
	var prevStart, prevID uint64
	seen := map[uint64]bool{}
	sc := bufio.NewScanner(&a)
	for sc.Scan() {
		var j struct {
			ID      uint64 `json:"id"`
			StartFS uint64 `json:"start_fs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			t.Fatalf("unparseable line: %v", err)
		}
		if seen[j.ID] {
			t.Fatalf("tree #%d exported twice", j.ID)
		}
		seen[j.ID] = true
		if j.StartFS < prevStart || (j.StartFS == prevStart && j.ID <= prevID && prevID != 0) {
			t.Fatalf("order violated at #%d", j.ID)
		}
		prevStart, prevID = j.StartFS, j.ID
	}
}

// TestWriteExplainTail pins the table's load-bearing lines: the
// worst-K header with the observed count, per-hop cycle rows, and the
// total line.
func TestWriteExplainTail(t *testing.T) {
	tr := New()
	tr.Begin(ReadMiss, 3, 0x2000, 0)
	tr.HopTag("l1", "lookup", 0, 1250000, "miss")
	tr.Hop("dram", "read", 1250000, 12500000)
	tr.End(12500000)
	var buf bytes.Buffer
	tr.WriteExplainTail(&buf, 1250000) // 800 MHz period
	out := buf.String()
	for _, want := range []string{
		"worst-1 read_miss exemplars (1 observed)",
		"core=3 addr=0x2000: 10.0 cycles",
		"1.0 cyc  l1.lookup  miss",
		"9.0 cyc  dram.read",
		"10.0 cyc  = total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain-tail output missing %q:\n%s", want, out)
		}
	}
}

// TestMergeChrome: merged trees land as component-track spans plus one
// flow chain per tree threading the hops, and aggregate "txn" hops are
// not double-drawn.
func TestMergeChrome(t *testing.T) {
	tr := New()
	tr.SampleEvery = 1
	tr.Begin(ReadMiss, 0, 0x40, 0)
	tr.Hop("l1", "lookup", 0, 10)
	tr.Begin(DRAMFill, 0, 0x40, 10)
	tr.Hop("l2", "access", 10, 20)
	tr.Hop("dram", "read", 20, 100)
	tr.End(100)
	tr.End(110)

	tc := trace.New()
	tr.MergeChrome(tc)
	if tc.Len() == 0 {
		t.Fatal("no spans merged")
	}
	for _, s := range tc.Spans() {
		if strings.HasPrefix(s.Name, "read_miss txn.") {
			t.Fatalf("aggregate txn hop drawn as a span: %+v", s)
		}
	}
	flows := tc.Flows()
	if len(flows) != 2 { // root + nested fill (chains of >= 2 steps)
		t.Fatalf("flows = %d, want 2", len(flows))
	}
	for _, f := range flows {
		if len(f.Steps) < 2 {
			t.Fatalf("flow %d has %d steps, want >= 2", f.ID, len(f.Steps))
		}
	}
}

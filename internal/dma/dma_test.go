package dma

import (
	"testing"

	"repro/internal/lstore"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/uncore"
)

// harness runs a driver body alongside one DMA engine.
func runDMA(t *testing.T, body func(task *sim.Task, e *Engine)) (*Engine, *uncore.Uncore) {
	t.Helper()
	eng := sim.NewEngine()
	unc := uncore.New(uncore.DefaultConfig(), noc.New(noc.DefaultConfig(4)))
	e := New("dma0", 0, unc, lstore.New(0))
	e.Spawn(eng, 0)
	eng.Spawn("driver", 0, func(task *sim.Task) {
		body(task, e)
		e.Stop()
	})
	eng.Run()
	return e, unc
}

func TestSequentialGet(t *testing.T) {
	var done sim.Time
	e, unc := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.Queue(task.Time(), Get, 0x10000, 4096)
		done = e.Wait(task, tag)
	})
	if got := e.Stats().GetBytes; got != 4096 {
		t.Errorf("GetBytes = %d, want 4096", got)
	}
	if got := e.Stats().Beats; got != 128 {
		t.Errorf("Beats = %d, want 128", got)
	}
	if got := unc.DRAM().Stats().ReadBytes; got != 4096 {
		t.Errorf("DRAM reads = %d, want 4096", got)
	}
	if done == 0 {
		t.Error("completion time not recorded")
	}
	// With 16 outstanding accesses, a 4 KB get at 1.6 GB/s should take
	// roughly bytes/bandwidth (~2.56us), not 128 serialized misses (~9us).
	if done > 5*sim.Microsecond {
		t.Errorf("4KB get took %v; outstanding accesses not overlapping", done)
	}
}

func TestSequentialPutAvoidsRefills(t *testing.T) {
	e, unc := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.Queue(task.Time(), Put, 0x20000, 2048)
		e.Wait(task, tag)
	})
	if got := unc.DRAM().Stats().ReadBytes; got != 0 {
		t.Errorf("full-line DMA put caused %d DRAM read bytes; want 0", got)
	}
	if got := e.Stats().PutBytes; got != 2048 {
		t.Errorf("PutBytes = %d, want 2048", got)
	}
}

func TestStridedGatherChargesSparseTraffic(t *testing.T) {
	// Gather 256 4-byte elements with a 64-byte stride: the channel
	// should move ~8 bytes per element (min burst), not 32.
	e, unc := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.QueueStrided(task.Time(), Get, 0x40000, 4, 64, 256)
		e.Wait(task, tag)
	})
	if got := e.Stats().SparseElems; got != 256 {
		t.Errorf("sparse elems = %d, want 256", got)
	}
	rd := unc.DRAM().Stats().ReadBytes
	if rd != 256*uncore.MinBurst {
		t.Errorf("DRAM reads = %d, want %d (min-burst per element)", rd, 256*uncore.MinBurst)
	}
}

func TestStridedUnitStrideCoalesces(t *testing.T) {
	e, _ := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.QueueStrided(task.Time(), Get, 0x50000, 4, 4, 64)
		e.Wait(task, tag)
	})
	if got := e.Stats().Beats; got != 8 {
		t.Errorf("unit-stride gather used %d beats, want 8 coalesced lines", got)
	}
}

func TestIndexedGather(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x9000, 0x3000, 0x7000}
	e, _ := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.QueueIndexed(task.Time(), Get, addrs, 8)
		e.Wait(task, tag)
	})
	if got := e.Stats().SparseElems; got != 4 {
		t.Errorf("sparse elems = %d, want 4", got)
	}
	if got := e.Stats().GetBytes; got != 32 {
		t.Errorf("GetBytes = %d, want 32", got)
	}
}

func TestCommandQueuingOverlapsWithDriver(t *testing.T) {
	// Queue two commands back to back; the driver continues immediately
	// and only blocks on the second tag.
	var q1, q2, waited sim.Time
	runDMA(t, func(task *sim.Task, e *Engine) {
		t1 := e.Queue(task.Time(), Get, 0x10000, 1024)
		q1 = task.Time()
		t2 := e.Queue(task.Time(), Get, 0x20000, 1024)
		q2 = task.Time()
		_ = t1
		waited = e.Wait(task, t2)
	})
	if q1 != q2 {
		t.Error("queueing a command should not advance the driver clock")
	}
	if waited <= q2 {
		t.Error("wait should advance to DMA completion")
	}
}

func TestWaitForCompletedTagReturnsImmediately(t *testing.T) {
	runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.Queue(task.Time(), Get, 0x10000, 32)
		done := e.Wait(task, tag)
		// Second workload phase long after.
		task.AdvanceTo(done + sim.Millisecond)
		tag2 := e.Queue(task.Time(), Get, 0x20000, 32)
		if _, ok := e.Done(tag2); ok {
			t.Error("fresh tag reported done")
		}
		e.Wait(task, tag2)
	})
}

func TestDoubleBufferingOverlapsTransfers(t *testing.T) {
	// Double-buffered consumption: wait for buffer A while B streams.
	// Total time should be close to one buffer transfer + compute, not
	// the serial sum.
	const buf = 8192
	var serial, overlapped sim.Time
	runDMA(t, func(task *sim.Task, e *Engine) {
		// Serial: get, wait, compute.
		for i := 0; i < 4; i++ {
			tag := e.Queue(task.Time(), Get, mem.Addr(0x100000+i*buf), buf)
			task.AdvanceTo(e.Wait(task, tag))
			task.Advance(2 * sim.Microsecond) // compute
			task.Sync()
		}
		serial = task.Time()
	})
	runDMA(t, func(task *sim.Task, e *Engine) {
		var tags [4]Tag
		tags[0] = e.Queue(task.Time(), Get, 0x100000, buf)
		for i := 0; i < 4; i++ {
			if i+1 < 4 {
				tags[i+1] = e.Queue(task.Time(), Get, mem.Addr(0x100000+(i+1)*buf), buf)
			}
			task.AdvanceTo(e.Wait(task, tags[i]))
			task.Advance(2 * sim.Microsecond)
			task.Sync()
		}
		overlapped = task.Time()
	})
	if overlapped >= serial {
		t.Errorf("double buffering (%v) not faster than serial (%v)", overlapped, serial)
	}
}

func TestStopDrainsQueue(t *testing.T) {
	e, _ := runDMA(t, func(task *sim.Task, e *Engine) {
		e.Queue(task.Time(), Get, 0x10000, 1024)
		// Stop without waiting: the engine must still finish the queued
		// command before exiting.
	})
	if got := e.Stats().GetBytes; got != 1024 {
		t.Errorf("queued transfer not completed before stop: %d bytes", got)
	}
}

func TestStridedScatterWrites(t *testing.T) {
	e, unc := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.QueueStrided(task.Time(), Put, 0x40000, 4, 64, 128)
		e.Wait(task, tag)
	})
	if got := e.Stats().PutBytes; got != 4*128 {
		t.Errorf("PutBytes = %d, want %d", got, 4*128)
	}
	// Scatter writes merge at min-burst granularity without refills.
	if rd := unc.DRAM().Stats().ReadBytes; rd != 0 {
		t.Errorf("scatter caused %d read bytes", rd)
	}
	if wr := unc.DRAM().Stats().WriteBytes; wr != 128*uncore.MinBurst {
		t.Errorf("scatter wrote %d bytes, want %d", wr, 128*uncore.MinBurst)
	}
}

func TestIndexedScatter(t *testing.T) {
	addrs := []mem.Addr{0x1000, 0x5000, 0x3000}
	e, _ := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.QueueIndexed(task.Time(), Put, addrs, 16)
		e.Wait(task, tag)
	})
	if got := e.Stats().PutBytes; got != 48 {
		t.Errorf("PutBytes = %d, want 48", got)
	}
}

func TestWideStridedElementsUseLinePath(t *testing.T) {
	// Elements of 64 bytes (two lines) with a 256-byte stride: moved as
	// whole-line beats through the cached path, not as sparse bursts.
	e, unc := runDMA(t, func(task *sim.Task, e *Engine) {
		tag := e.QueueStrided(task.Time(), Get, 0x80000, 64, 256, 16)
		e.Wait(task, tag)
	})
	if got := e.Stats().Beats; got != 32 { // 16 elements x 2 lines
		t.Errorf("beats = %d, want 32", got)
	}
	if got := e.Stats().SparseElems; got != 0 {
		t.Errorf("sparse elems = %d, want 0 for wide elements", got)
	}
	// Line-path gets allocate in the L2 (strips are re-read by later
	// passes in real workloads).
	if occ := unc.L2().Occupancy(); occ == 0 {
		t.Error("wide strided get did not allocate in the L2")
	}
}

func TestWaitUnissuedTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// The guard fires before any task interaction, so no engine needed
	// (a panic inside a spawned task would kill the test process).
	e := New("dma", 0, nil, lstore.New(0))
	e.Wait(nil, 42)
}

func TestZeroLengthTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := New("dma", 0, nil, lstore.New(0))
	e.Queue(0, Get, 0, 0)
}

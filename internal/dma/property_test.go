package dma

import (
	"testing"
	"testing/quick"

	"repro/internal/lstore"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/uncore"
)

// TestByteConservation: for any sequence of sequential transfers, the
// engine's byte counters equal exactly what was requested, and
// completion times are non-decreasing per engine.
func TestByteConservation(t *testing.T) {
	f := func(cmds []struct {
		Put  bool
		Base uint16
		Len  uint8
	}) bool {
		if len(cmds) == 0 {
			return true
		}
		if len(cmds) > 32 {
			cmds = cmds[:32]
		}
		eng := sim.NewEngine()
		unc := uncore.New(uncore.DefaultConfig(), noc.New(noc.DefaultConfig(4)))
		e := New("dma", 0, unc, lstore.New(0))
		e.Spawn(eng, 0)
		var wantGet, wantPut uint64
		ok := true
		eng.Spawn("driver", 0, func(task *sim.Task) {
			var last sim.Time
			for _, c := range cmds {
				n := uint64(c.Len) + 1
				dir := Get
				if c.Put {
					dir = Put
					wantPut += n
				} else {
					wantGet += n
				}
				tag := e.Queue(task.Time(), dir, mem.Addr(c.Base)*64, n)
				done := e.Wait(task, tag)
				if done < last {
					ok = false
				}
				last = done
				task.SetTime(done)
				task.Sync()
			}
			e.Stop()
		})
		eng.Run()
		st := e.Stats()
		return ok && st.GetBytes == wantGet && st.PutBytes == wantPut &&
			st.Commands == uint64(len(cmds))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStridedByteAccounting: strided transfers move exactly
// count*elemBytes payload bytes regardless of stride.
func TestStridedByteAccounting(t *testing.T) {
	f := func(elem, stride, count uint8) bool {
		eb := uint64(elem%16) + 1
		st := eb + uint64(stride%64)
		cnt := uint64(count%50) + 1
		eng := sim.NewEngine()
		unc := uncore.New(uncore.DefaultConfig(), noc.New(noc.DefaultConfig(4)))
		e := New("dma", 0, unc, lstore.New(0))
		e.Spawn(eng, 0)
		eng.Spawn("driver", 0, func(task *sim.Task) {
			tag := e.QueueStrided(task.Time(), Get, 0x10000, eb, st, cnt)
			e.Wait(task, tag)
			e.Stop()
		})
		eng.Run()
		return e.Stats().GetBytes == eb*cnt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package dma implements the streaming model's per-core DMA engine
// (Table 2): sequential, strided and indexed transfers between the local
// store and the global address space, with command queuing and up to 16
// outstanding 32-byte accesses. Each engine runs as its own simulation
// task so that its traffic contends with everything else in timestamp
// order, and software overlaps it with computation (double-buffering —
// the paper's "macroscopic prefetching").
package dma

import (
	"fmt"

	"repro/internal/ledger"
	"repro/internal/lstore"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/uncore"
)

// Outstanding is the number of concurrent 32-byte accesses the engine
// sustains (Table 2).
const Outstanding = 16

// Dir is a transfer direction.
type Dir uint8

// Transfer directions.
const (
	Get Dir = iota // off-chip / L2 -> local store
	Put            // local store -> off-chip / L2
)

// Tag identifies a queued command; Wait blocks until it completes.
type Tag uint64

// command describes one queued transfer.
type command struct {
	tag   Tag
	dir   Dir
	base  mem.Addr
	bytes uint64
	// Strided transfers move count elements of elemBytes separated by
	// stride. stride == 0 means a plain sequential transfer.
	elemBytes uint64
	stride    uint64
	count     uint64
	// Indexed transfers move one elemBytes element per address.
	index []mem.Addr
	// issued is when the core queued the command; completion minus
	// issued (queuing included) is the command-latency distribution.
	issued sim.Time
}

// Stats counts engine activity.
type Stats struct {
	Commands    uint64
	GetBytes    uint64
	PutBytes    uint64
	Beats       uint64 // 32-byte line beats
	SparseElems uint64 // strided/indexed elements
	BusyTime    sim.Time

	// Per-direction command counts and queue-to-completion latency
	// accumulators (diagnostics, not time series — like coher.Stats,
	// they stay out of Snapshot so probe columns are stable).
	GetCommands uint64
	PutCommands uint64
	GetLatency  sim.Time
	PutLatency  sim.Time
}

// AvgGetLatency returns the mean get-command completion latency.
func (s Stats) AvgGetLatency() sim.Time {
	if s.GetCommands == 0 {
		return 0
	}
	return s.GetLatency / sim.Time(s.GetCommands)
}

// AvgPutLatency returns the mean put-command completion latency.
func (s Stats) AvgPutLatency() sim.Time {
	if s.PutCommands == 0 {
		return 0
	}
	return s.PutLatency / sim.Time(s.PutCommands)
}

// Engine is one core's DMA engine.
type Engine struct {
	name    string
	cluster int
	unc     *uncore.Uncore
	ls      *lstore.Store
	task    *sim.Task

	window   int
	queue    []command
	nextTag  Tag
	done     map[Tag]sim.Time
	lastDone Tag
	idle     bool
	stopping bool

	waiter     *sim.Task
	waitingFor Tag

	stats Stats
	lat   *ledger.Latency // nil = latency histograms disabled
}

// New creates an engine for a core in the given cluster. Call Spawn to
// attach it to the simulation before queueing commands.
func New(name string, cluster int, unc *uncore.Uncore, ls *lstore.Store) *Engine {
	return NewWithWindow(name, cluster, unc, ls, 0)
}

// NewWithWindow creates an engine with an explicit outstanding-access
// window (0 = the paper's 16). An ablation knob.
func NewWithWindow(name string, cluster int, unc *uncore.Uncore, ls *lstore.Store, window int) *Engine {
	if window <= 0 {
		window = Outstanding
	}
	return &Engine{
		name:    name,
		cluster: cluster,
		unc:     unc,
		ls:      ls,
		window:  window,
		done:    make(map[Tag]sim.Time),
	}
}

// Spawn starts the engine's simulation task.
func (e *Engine) Spawn(eng *sim.Engine, start sim.Time) {
	e.task = eng.Spawn(e.name, start, e.run)
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetLatency attaches the run's service-time histograms (nil disables
// recording).
func (e *Engine) SetLatency(l *ledger.Latency) { e.lat = l }

// QueuedCommands returns the number of commands waiting in the queue
// (not including the one being processed). A probe-layer gauge: a deep
// queue means software issued work far ahead of the engine.
func (e *Engine) QueuedCommands() int { return len(e.queue) }

// Busy reports whether the engine is processing a command (probe-layer
// gauge; together with cpu instruction deltas it shows the DMA/compute
// overlap the streaming model's double-buffering is built on).
func (e *Engine) Busy() bool { return !e.idle }

// Add accumulates src into s (aggregating per-core engines).
func (s *Stats) Add(src Stats) {
	s.Commands += src.Commands
	s.GetBytes += src.GetBytes
	s.PutBytes += src.PutBytes
	s.Beats += src.Beats
	s.SparseElems += src.SparseElems
	s.BusyTime += src.BusyTime
	s.GetCommands += src.GetCommands
	s.PutCommands += src.PutCommands
	s.GetLatency += src.GetLatency
	s.PutLatency += src.PutLatency
}

// Snapshot emits the counters in a fixed order (probe layer).
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("commands", float64(s.Commands))
	put("get_bytes", float64(s.GetBytes))
	put("put_bytes", float64(s.PutBytes))
	put("beats", float64(s.Beats))
	put("sparse_elems", float64(s.SparseElems))
	put("busy_fs", float64(s.BusyTime))
}

// enqueue adds a command and wakes the engine. Must be called from a
// running task (the owning core).
func (e *Engine) enqueue(at sim.Time, c command) Tag {
	if e.stopping {
		panic("dma: enqueue after Stop on " + e.name)
	}
	e.nextTag++
	c.tag = e.nextTag
	c.issued = at
	e.queue = append(e.queue, c)
	e.stats.Commands++
	if e.idle {
		e.task.Unblock(at)
		e.idle = false
	}
	return c.tag
}

// Queue enqueues a sequential transfer of nbytes at base.
func (e *Engine) Queue(at sim.Time, dir Dir, base mem.Addr, nbytes uint64) Tag {
	if nbytes == 0 {
		panic("dma: zero-length transfer")
	}
	return e.enqueue(at, command{dir: dir, base: base, bytes: nbytes})
}

// QueueStrided enqueues a transfer of count elements of elemBytes each,
// starting at base with the given stride in bytes.
func (e *Engine) QueueStrided(at sim.Time, dir Dir, base mem.Addr, elemBytes, stride, count uint64) Tag {
	if count == 0 || elemBytes == 0 {
		panic("dma: empty strided transfer")
	}
	if stride == elemBytes {
		return e.Queue(at, dir, base, elemBytes*count)
	}
	return e.enqueue(at, command{dir: dir, base: base, elemBytes: elemBytes, stride: stride, count: count})
}

// QueueIndexed enqueues a gather/scatter of one elemBytes element per
// address.
func (e *Engine) QueueIndexed(at sim.Time, dir Dir, addrs []mem.Addr, elemBytes uint64) Tag {
	if len(addrs) == 0 || elemBytes == 0 {
		panic("dma: empty indexed transfer")
	}
	idx := make([]mem.Addr, len(addrs))
	copy(idx, addrs)
	return e.enqueue(at, command{dir: dir, elemBytes: elemBytes, index: idx})
}

// LastTag returns the most recently issued tag (0 if none).
func (e *Engine) LastTag() Tag { return e.nextTag }

// Done reports whether tag has completed, and its completion time.
func (e *Engine) Done(tag Tag) (sim.Time, bool) {
	t, ok := e.done[tag]
	return t, ok
}

// Wait blocks the calling task until tag completes, returning the
// completion time. The caller charges the wait to its own sync bucket.
func (e *Engine) Wait(caller *sim.Task, tag Tag) sim.Time {
	if tag > e.nextTag {
		panic(fmt.Sprintf("dma: wait for unissued tag %d", tag))
	}
	if t, ok := e.done[tag]; ok {
		delete(e.done, tag)
		return t
	}
	if tag <= e.lastDone {
		return caller.Time() // completed and already collected
	}
	if e.waiter != nil {
		panic("dma: engine " + e.name + " already has a waiter")
	}
	e.waiter = caller
	e.waitingFor = tag
	caller.BlockOn(fmt.Sprintf("dma %s tag %d", e.name, tag))
	t := e.done[tag]
	delete(e.done, tag)
	return t
}

// Stop tells the engine to exit once its queue drains. Must be called
// from a running task. Safe to call more than once.
func (e *Engine) Stop() {
	if e.stopping {
		return
	}
	e.stopping = true
	if e.idle {
		e.task.Unblock(e.task.Time())
		e.idle = false
	}
}

// run is the engine task body.
func (e *Engine) run(t *sim.Task) {
	for {
		if len(e.queue) == 0 {
			if e.stopping {
				return
			}
			e.idle = true
			t.BlockOn("dma " + e.name + " command queue")
			continue
		}
		cmd := e.queue[0]
		e.queue = e.queue[1:]
		start := t.Time()
		done := e.process(t, cmd)
		e.stats.BusyTime += done - start
		cmdLat := done - cmd.issued
		if cmd.dir == Get {
			e.stats.GetCommands++
			e.stats.GetLatency += cmdLat
			if e.lat != nil {
				e.lat.DMAGet.Record(uint64(cmdLat))
			}
		} else {
			e.stats.PutCommands++
			e.stats.PutLatency += cmdLat
			if e.lat != nil {
				e.lat.DMAPut.Record(uint64(cmdLat))
			}
		}
		e.done[cmd.tag] = done
		e.lastDone = cmd.tag
		if e.waiter != nil && e.waitingFor <= cmd.tag {
			w := e.waiter
			e.waiter = nil
			w.Unblock(done)
		}
	}
}

// process performs one command, advancing the engine task through its
// beats with up to Outstanding accesses in flight. It returns the time
// the last beat completes.
func (e *Engine) process(t *sim.Task, cmd command) sim.Time {
	ring := make([]sim.Time, e.window)
	var last sim.Time
	beat := 0
	issue := func(fn func(at sim.Time) sim.Time) {
		// Engine issues one access per network cycle.
		t.Advance(e.unc.Network().Config().Clock.Period)
		// Respect the outstanding-access window.
		if prev := ring[beat%e.window]; beat >= e.window && prev > t.Time() {
			t.SetTime(prev)
		}
		// The per-beat Sync cannot convert to a local charge: fn touches
		// the shared uncore servers. While the DMA task streams behind
		// its blocked core it is globally minimal, so the engine's Sync
		// fast path makes this yield handshake-free.
		t.Sync()
		done := fn(t.Time())
		ring[beat%e.window] = done
		if done > last {
			last = done
		}
		beat++
	}

	switch {
	case cmd.index != nil:
		for _, a := range cmd.index {
			a := a
			e.stats.SparseElems++
			e.ls.CountDMABeat()
			if cmd.dir == Get {
				e.stats.GetBytes += cmd.elemBytes
				issue(func(at sim.Time) sim.Time {
					d := e.unc.ReadSparse(at, e.cluster, a, cmd.elemBytes)
					return e.unc.Network().BusData(d, e.cluster, cmd.elemBytes)
				})
			} else {
				e.stats.PutBytes += cmd.elemBytes
				issue(func(at sim.Time) sim.Time {
					d := e.unc.Network().BusData(at, e.cluster, cmd.elemBytes)
					return e.unc.WriteSparse(d, e.cluster, a, cmd.elemBytes)
				})
			}
		}
	case cmd.stride != 0 && cmd.elemBytes >= mem.LineSize:
		// Wide strided elements (row strips of an image, matrix tiles)
		// transfer as whole-line beats through the cached path.
		for i := uint64(0); i < cmd.count; i++ {
			base := cmd.base + mem.Addr(i*cmd.stride)
			end := base + mem.Addr(cmd.elemBytes)
			for a := base.Line(); a < end; a += mem.LineSize {
				lo, hi := a, a+mem.LineSize
				if base > lo {
					lo = base
				}
				if end < hi {
					hi = end
				}
				n := uint64(hi - lo)
				a := a
				e.stats.Beats++
				e.ls.CountDMABeat()
				if cmd.dir == Get {
					e.stats.GetBytes += n
					issue(func(at sim.Time) sim.Time {
						d, _ := e.unc.ReadLine(at, e.cluster, a)
						return e.unc.Network().BusData(d, e.cluster, n)
					})
				} else {
					e.stats.PutBytes += n
					issue(func(at sim.Time) sim.Time {
						d := e.unc.Network().BusData(at, e.cluster, n)
						return e.unc.WriteLine(d, e.cluster, a, n, n == mem.LineSize)
					})
				}
			}
		}
	case cmd.stride != 0:
		for i := uint64(0); i < cmd.count; i++ {
			a := cmd.base + mem.Addr(i*cmd.stride)
			e.stats.SparseElems++
			e.ls.CountDMABeat()
			if cmd.dir == Get {
				e.stats.GetBytes += cmd.elemBytes
				issue(func(at sim.Time) sim.Time {
					d := e.unc.ReadSparse(at, e.cluster, a, cmd.elemBytes)
					return e.unc.Network().BusData(d, e.cluster, cmd.elemBytes)
				})
			} else {
				e.stats.PutBytes += cmd.elemBytes
				issue(func(at sim.Time) sim.Time {
					d := e.unc.Network().BusData(at, e.cluster, cmd.elemBytes)
					return e.unc.WriteSparse(d, e.cluster, a, cmd.elemBytes)
				})
			}
		}
	default:
		// Sequential: whole 32-byte beats; a partial tail beat of a Put
		// is a narrow write (the L2 refills for it).
		end := cmd.base + mem.Addr(cmd.bytes)
		for a := cmd.base.Line(); a < end; a += mem.LineSize {
			lo, hi := a, a+mem.LineSize
			if cmd.base > lo {
				lo = cmd.base
			}
			if end < hi {
				hi = end
			}
			n := uint64(hi - lo)
			e.stats.Beats++
			e.ls.CountDMABeat()
			if cmd.dir == Get {
				e.stats.GetBytes += n
				issue(func(at sim.Time) sim.Time {
					d, _ := e.unc.ReadLine(at, e.cluster, a)
					return e.unc.Network().BusData(d, e.cluster, n)
				})
			} else {
				full := n == mem.LineSize
				e.stats.PutBytes += n
				issue(func(at sim.Time) sim.Time {
					d := e.unc.Network().BusData(at, e.cluster, n)
					return e.unc.WriteLine(d, e.cluster, a, n, full)
				})
			}
		}
	}
	if last > t.Time() {
		t.AdvanceTo(last)
	}
	return t.Time()
}

// Package dma implements the streaming model's per-core DMA engine
// (Table 2): sequential, strided and indexed transfers between the local
// store and the global address space, with command queuing and up to 16
// outstanding 32-byte accesses. Each engine runs as its own simulation
// task so that its traffic contends with everything else in timestamp
// order, and software overlaps it with computation (double-buffering —
// the paper's "macroscopic prefetching").
package dma

import (
	"fmt"

	"repro/internal/ledger"
	"repro/internal/lstore"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/txntrace"
	"repro/internal/uncore"
)

// Outstanding is the number of concurrent 32-byte accesses the engine
// sustains (Table 2).
const Outstanding = 16

// Dir is a transfer direction.
type Dir uint8

// Transfer directions.
const (
	Get Dir = iota // off-chip / L2 -> local store
	Put            // local store -> off-chip / L2
)

// Tag identifies a queued command; Wait blocks until it completes.
type Tag uint64

// command describes one queued transfer.
type command struct {
	tag   Tag
	dir   Dir
	base  mem.Addr
	bytes uint64
	// Strided transfers move count elements of elemBytes separated by
	// stride. stride == 0 means a plain sequential transfer.
	elemBytes uint64
	stride    uint64
	count     uint64
	// Indexed transfers move one elemBytes element per address.
	index []mem.Addr
	// issued is when the core queued the command; completion minus
	// issued (queuing included) is the command-latency distribution.
	issued sim.Time
	// ctx is the command's detached transaction trace (nil when tracing
	// is off). Commands interleave with other engine work across steps,
	// so the trace lives on the command, resumed around each beat.
	ctx *txntrace.Txn
}

// Stats counts engine activity.
type Stats struct {
	Commands    uint64
	GetBytes    uint64
	PutBytes    uint64
	Beats       uint64 // 32-byte line beats
	SparseElems uint64 // strided/indexed elements
	BusyTime    sim.Time

	// Per-direction command counts and queue-to-completion latency
	// accumulators (diagnostics, not time series — like coher.Stats,
	// they stay out of Snapshot so probe columns are stable).
	GetCommands uint64
	PutCommands uint64
	GetLatency  sim.Time
	PutLatency  sim.Time
}

// AvgGetLatency returns the mean get-command completion latency.
func (s Stats) AvgGetLatency() sim.Time {
	if s.GetCommands == 0 {
		return 0
	}
	return s.GetLatency / sim.Time(s.GetCommands)
}

// AvgPutLatency returns the mean put-command completion latency.
func (s Stats) AvgPutLatency() sim.Time {
	if s.PutCommands == 0 {
		return 0
	}
	return s.PutLatency / sim.Time(s.PutCommands)
}

// dmaState is the engine state machine's resume point (where the
// goroutine body would be parked).
type dmaState uint8

const (
	// dmaIdle: between commands; check the queue (block when empty).
	dmaIdle dmaState = iota
	// dmaBeat: a beat's issue yield has happened; perform the access,
	// then issue the next beat.
	dmaBeat
	// dmaTail: the final catch-up to the last outstanding beat has
	// yielded; finish the command.
	dmaTail
)

// beat is one 32-byte (or sparse-element) access of a command.
type beat struct {
	addr   mem.Addr
	n      uint64 // bytes moved by this beat
	sparse bool   // strided/indexed element vs whole-line beat
	full   bool   // line beat covers the whole line (Put write-allocate)
}

// Engine is one core's DMA engine.
type Engine struct {
	name    string
	cluster int
	unc     *uncore.Uncore
	ls      *lstore.Store
	task    *sim.Task
	period  sim.Time // network clock period: one access issued per cycle

	window   int
	queue    []command
	nextTag  Tag
	done     map[Tag]sim.Time
	lastDone Tag
	idle     bool
	stopping bool

	waiter     *sim.Task
	waitingFor Tag

	// State-machine registers: the engine body runs as an inline task
	// (sim.Runnable), so the locals the goroutine version kept on its
	// stack live here between steps.
	pc       dmaState
	cur      command
	cmdStart sim.Time
	beatNo   int
	pending  beat
	last     sim.Time
	ring     []sim.Time // completion times of the window's accesses
	// Beat-iterator cursor: element index, and the line walk within the
	// current element for sequential/wide-strided shapes.
	ei             uint64
	la, lbase, lend mem.Addr

	stats Stats
	lat   *ledger.Latency  // nil = latency histograms disabled
	txn   *txntrace.Tracer // nil = transaction tracing disabled
	core  int              // owning core, stamped on traced commands
}

// New creates an engine for a core in the given cluster. Call Spawn to
// attach it to the simulation before queueing commands.
func New(name string, cluster int, unc *uncore.Uncore, ls *lstore.Store) *Engine {
	return NewWithWindow(name, cluster, unc, ls, 0)
}

// NewWithWindow creates an engine with an explicit outstanding-access
// window (0 = the paper's 16). An ablation knob.
func NewWithWindow(name string, cluster int, unc *uncore.Uncore, ls *lstore.Store, window int) *Engine {
	if window <= 0 {
		window = Outstanding
	}
	return &Engine{
		name:    name,
		cluster: cluster,
		unc:     unc,
		ls:      ls,
		period:  unc.Network().Config().Clock.Period,
		window:  window,
		ring:    make([]sim.Time, window),
		done:    make(map[Tag]sim.Time),
	}
}

// Spawn starts the engine's simulation task. The body is a state
// machine (Step), so the task is inline: the engine's beats dispatch as
// plain function calls on whatever goroutine is scheduling, with no
// goroutine of their own — the hot "kernel loop" of every streaming
// figure.
func (e *Engine) Spawn(eng *sim.Engine, start sim.Time) {
	e.task = eng.SpawnInline(e.name, start, e)
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetLatency attaches the run's service-time histograms (nil disables
// recording).
func (e *Engine) SetLatency(l *ledger.Latency) { e.lat = l }

// SetTxnTrace attaches the run's transaction tracer (nil disables it);
// core is the owning core, stamped on each traced command.
func (e *Engine) SetTxnTrace(t *txntrace.Tracer, core int) {
	e.txn = t
	e.core = core
}

// QueuedCommands returns the number of commands waiting in the queue
// (not including the one being processed). A probe-layer gauge: a deep
// queue means software issued work far ahead of the engine.
func (e *Engine) QueuedCommands() int { return len(e.queue) }

// Busy reports whether the engine is processing a command (probe-layer
// gauge; together with cpu instruction deltas it shows the DMA/compute
// overlap the streaming model's double-buffering is built on).
func (e *Engine) Busy() bool { return !e.idle }

// Add accumulates src into s (aggregating per-core engines).
func (s *Stats) Add(src Stats) {
	s.Commands += src.Commands
	s.GetBytes += src.GetBytes
	s.PutBytes += src.PutBytes
	s.Beats += src.Beats
	s.SparseElems += src.SparseElems
	s.BusyTime += src.BusyTime
	s.GetCommands += src.GetCommands
	s.PutCommands += src.PutCommands
	s.GetLatency += src.GetLatency
	s.PutLatency += src.PutLatency
}

// Snapshot emits the counters in a fixed order (probe layer).
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("commands", float64(s.Commands))
	put("get_bytes", float64(s.GetBytes))
	put("put_bytes", float64(s.PutBytes))
	put("beats", float64(s.Beats))
	put("sparse_elems", float64(s.SparseElems))
	put("busy_fs", float64(s.BusyTime))
}

// enqueue adds a command and wakes the engine. Must be called from a
// running task (the owning core).
func (e *Engine) enqueue(at sim.Time, c command) Tag {
	if e.stopping {
		panic("dma: enqueue after Stop on " + e.name)
	}
	e.nextTag++
	c.tag = e.nextTag
	c.issued = at
	if e.txn != nil {
		class := txntrace.DMAGet
		if c.dir == Put {
			class = txntrace.DMAPut
		}
		c.ctx = e.txn.BeginDetached(class, e.core, uint64(c.base), at)
	}
	e.queue = append(e.queue, c)
	e.stats.Commands++
	if e.idle {
		e.task.Unblock(at)
		e.idle = false
	}
	return c.tag
}

// Queue enqueues a sequential transfer of nbytes at base.
func (e *Engine) Queue(at sim.Time, dir Dir, base mem.Addr, nbytes uint64) Tag {
	if nbytes == 0 {
		panic("dma: zero-length transfer")
	}
	return e.enqueue(at, command{dir: dir, base: base, bytes: nbytes})
}

// QueueStrided enqueues a transfer of count elements of elemBytes each,
// starting at base with the given stride in bytes.
func (e *Engine) QueueStrided(at sim.Time, dir Dir, base mem.Addr, elemBytes, stride, count uint64) Tag {
	if count == 0 || elemBytes == 0 {
		panic("dma: empty strided transfer")
	}
	if stride == elemBytes {
		return e.Queue(at, dir, base, elemBytes*count)
	}
	return e.enqueue(at, command{dir: dir, base: base, elemBytes: elemBytes, stride: stride, count: count})
}

// QueueIndexed enqueues a gather/scatter of one elemBytes element per
// address.
func (e *Engine) QueueIndexed(at sim.Time, dir Dir, addrs []mem.Addr, elemBytes uint64) Tag {
	if len(addrs) == 0 || elemBytes == 0 {
		panic("dma: empty indexed transfer")
	}
	idx := make([]mem.Addr, len(addrs))
	copy(idx, addrs)
	return e.enqueue(at, command{dir: dir, elemBytes: elemBytes, index: idx})
}

// LastTag returns the most recently issued tag (0 if none).
func (e *Engine) LastTag() Tag { return e.nextTag }

// Done reports whether tag has completed, and its completion time.
func (e *Engine) Done(tag Tag) (sim.Time, bool) {
	t, ok := e.done[tag]
	return t, ok
}

// Wait blocks the calling task until tag completes, returning the
// completion time. The caller charges the wait to its own sync bucket.
func (e *Engine) Wait(caller *sim.Task, tag Tag) sim.Time {
	if t, ok := e.WaitStart(caller, tag); ok {
		return t
	}
	caller.BlockOn(e.WaitLabel(tag))
	return e.WaitCollect(tag)
}

// WaitStart is the non-blocking half of Wait: if tag has already
// completed it returns (completion time, true); otherwise it registers
// caller as the engine's waiter and returns (0, false), after which the
// caller must suspend itself — BlockOn(WaitLabel(tag)) for a
// goroutine-backed task, or StatusBlocked with WillBlockOn for an
// inline one — and call WaitCollect once woken.
func (e *Engine) WaitStart(caller *sim.Task, tag Tag) (sim.Time, bool) {
	if tag > e.nextTag {
		panic(fmt.Sprintf("dma: wait for unissued tag %d", tag))
	}
	if t, ok := e.done[tag]; ok {
		delete(e.done, tag)
		return t, true
	}
	if tag <= e.lastDone {
		return caller.Time(), true // completed and already collected
	}
	if e.waiter != nil {
		panic("dma: engine " + e.name + " already has a waiter")
	}
	e.waiter = caller
	e.waitingFor = tag
	return 0, false
}

// WaitCollect retrieves tag's completion time after a WaitStart that
// registered the caller (the engine has unblocked it).
func (e *Engine) WaitCollect(tag Tag) sim.Time {
	t := e.done[tag]
	delete(e.done, tag)
	return t
}

// WaitLabel names the resource a waiter on tag blocks on, for deadlock
// diagnostics.
func (e *Engine) WaitLabel(tag Tag) string {
	return fmt.Sprintf("dma %s tag %d", e.name, tag)
}

// Stop tells the engine to exit once its queue drains. Must be called
// from a running task. Safe to call more than once.
func (e *Engine) Stop() {
	if e.stopping {
		return
	}
	e.stopping = true
	if e.idle {
		e.task.Unblock(e.task.Time())
		e.idle = false
	}
}

// Step is the engine task body as a resumable state machine
// (sim.Runnable): the goroutine version's nested loops — pop a command,
// issue its beats with up to Outstanding in flight, catch up to the
// last completion — flattened so every yield point (the per-beat Sync,
// the idle BlockOn, the final AdvanceTo) becomes a return. The yield
// placement matches the goroutine body exactly, which is what keeps the
// schedule — and the full paperbench output — byte-identical.
func (e *Engine) Step(t *sim.Task) sim.Status {
	for {
		switch e.pc {
		case dmaIdle:
			if len(e.queue) == 0 {
				if e.stopping {
					return sim.StatusDone
				}
				e.idle = true
				t.WillBlockOn("dma " + e.name + " command queue")
				return sim.StatusBlocked // resumes here: recheck the queue
			}
			e.cur = e.queue[0]
			e.queue = e.queue[1:]
			e.cmdStart = t.Time()
			if e.cur.ctx != nil && e.cmdStart > e.cur.issued {
				e.txn.Resume(e.cur.ctx)
				e.txn.Hop("dma", "queue", e.cur.issued, e.cmdStart)
				e.txn.Suspend()
			}
			e.beatNo = 0
			e.last = 0
			e.startIter()
			if s, yield := e.issueNext(t); yield {
				return s
			}
		case dmaBeat:
			// Past the beat's sync: perform the access at the synced time.
			// The command's trace is active only for the duration of the
			// access, so the nested uncore/NoC hops attribute to it while
			// other tasks' hops (between engine steps) cannot.
			e.txn.Resume(e.cur.ctx)
			done := e.performBeat(t)
			e.txn.Suspend()
			e.ring[e.beatNo%e.window] = done
			if done > e.last {
				e.last = done
			}
			e.beatNo++
			if s, yield := e.issueNext(t); yield {
				return s
			}
		case dmaTail:
			e.finishCmd(t.Time())
			e.pc = dmaIdle
		}
	}
}

// issueNext advances the beat iterator: it either issues the next beat
// (advance one network cycle, clamp to the outstanding window, yield
// for the beat's sync) or ends the command (yielding once more if the
// engine must catch up to the last outstanding completion, as the
// goroutine body's final AdvanceTo did). The bool result reports
// whether Step must return s now.
func (e *Engine) issueNext(t *sim.Task) (sim.Status, bool) {
	b, ok := e.nextBeat()
	if !ok {
		if e.last > t.Time() {
			t.SetTime(e.last)
			e.pc = dmaTail
			return sim.StatusRunning, true
		}
		e.finishCmd(t.Time())
		e.pc = dmaIdle
		return 0, false
	}
	e.pending = b
	// Engine issues one access per network cycle.
	t.Advance(e.period)
	// Respect the outstanding-access window.
	if prev := e.ring[e.beatNo%e.window]; e.beatNo >= e.window && prev > t.Time() {
		t.SetTime(prev)
	}
	// The per-beat yield cannot convert to a local charge: the access
	// touches the shared uncore servers. While the DMA task streams
	// behind its blocked core it is globally minimal, so the dispatcher
	// re-steps it without touching the heap (the inline spin, the
	// state-machine analog of the Sync fast path).
	e.pc = dmaBeat
	return sim.StatusRunning, true
}

// startIter resets the beat iterator for e.cur: element 0, and for the
// line-walk shapes (sequential, wide strided) the first line of the
// first element.
func (e *Engine) startIter() {
	e.ei = 0
	c := &e.cur
	switch {
	case c.index != nil:
	case c.stride != 0 && c.elemBytes < mem.LineSize:
	case c.stride != 0:
		// Wide strided elements (row strips of an image, matrix tiles)
		// transfer as whole-line beats through the cached path.
		e.lbase = c.base
		e.lend = c.base + mem.Addr(c.elemBytes)
		e.la = e.lbase.Line()
	default:
		// Sequential: whole 32-byte beats; a partial tail beat of a Put
		// is a narrow write (the L2 refills for it).
		e.lbase = c.base
		e.lend = c.base + mem.Addr(c.bytes)
		e.la = e.lbase.Line()
	}
}

// nextBeat yields the current command's next access and bumps the
// traffic counters for it, exactly as the goroutine body did just
// before each issue.
func (e *Engine) nextBeat() (beat, bool) {
	c := &e.cur
	switch {
	case c.index != nil:
		if e.ei >= uint64(len(c.index)) {
			return beat{}, false
		}
		a := c.index[e.ei]
		e.ei++
		e.countSparse()
		return beat{addr: a, n: c.elemBytes, sparse: true}, true
	case c.stride != 0 && c.elemBytes < mem.LineSize:
		if e.ei >= c.count {
			return beat{}, false
		}
		a := c.base + mem.Addr(e.ei*c.stride)
		e.ei++
		e.countSparse()
		return beat{addr: a, n: c.elemBytes, sparse: true}, true
	default:
		for {
			if e.la < e.lend {
				lo, hi := e.la, e.la+mem.LineSize
				if e.lbase > lo {
					lo = e.lbase
				}
				if e.lend < hi {
					hi = e.lend
				}
				n := uint64(hi - lo)
				a := e.la
				e.la += mem.LineSize
				e.stats.Beats++
				e.ls.CountDMABeat()
				if c.dir == Get {
					e.stats.GetBytes += n
				} else {
					e.stats.PutBytes += n
				}
				return beat{addr: a, n: n, full: n == mem.LineSize}, true
			}
			// Next wide-strided element; sequential commands have one.
			e.ei++
			if c.stride == 0 || e.ei >= c.count {
				return beat{}, false
			}
			e.lbase = c.base + mem.Addr(e.ei*c.stride)
			e.lend = e.lbase + mem.Addr(c.elemBytes)
			e.la = e.lbase.Line()
		}
	}
}

// countSparse bumps the per-element counters shared by the strided and
// indexed shapes.
func (e *Engine) countSparse() {
	e.stats.SparseElems++
	e.ls.CountDMABeat()
	if e.cur.dir == Get {
		e.stats.GetBytes += e.cur.elemBytes
	} else {
		e.stats.PutBytes += e.cur.elemBytes
	}
}

// performBeat runs the pending access at the task's (synced) time and
// returns its completion time.
func (e *Engine) performBeat(t *sim.Task) sim.Time {
	at := t.Time()
	b := e.pending
	c := &e.cur
	if b.sparse {
		if c.dir == Get {
			d := e.unc.ReadSparse(at, e.cluster, b.addr, c.elemBytes)
			return e.unc.Network().BusData(d, e.cluster, c.elemBytes)
		}
		d := e.unc.Network().BusData(at, e.cluster, c.elemBytes)
		return e.unc.WriteSparse(d, e.cluster, b.addr, c.elemBytes)
	}
	if c.dir == Get {
		d, _ := e.unc.ReadLine(at, e.cluster, b.addr)
		return e.unc.Network().BusData(d, e.cluster, b.n)
	}
	d := e.unc.Network().BusData(at, e.cluster, b.n)
	return e.unc.WriteLine(d, e.cluster, b.addr, b.n, b.full)
}

// finishCmd retires the current command at completion time done:
// latency accounting, the done map, and the waiter wake.
func (e *Engine) finishCmd(done sim.Time) {
	e.stats.BusyTime += done - e.cmdStart
	cmdLat := done - e.cur.issued
	if e.cur.dir == Get {
		e.stats.GetCommands++
		e.stats.GetLatency += cmdLat
		if e.lat != nil {
			e.lat.DMAGet.Record(uint64(cmdLat))
		}
	} else {
		e.stats.PutCommands++
		e.stats.PutLatency += cmdLat
		if e.lat != nil {
			e.lat.DMAPut.Record(uint64(cmdLat))
		}
	}
	e.txn.EndDetached(e.cur.ctx, done)
	e.done[e.cur.tag] = done
	e.lastDone = e.cur.tag
	if e.waiter != nil && e.waitingFor <= e.cur.tag {
		w := e.waiter
		e.waiter = nil
		w.Unblock(done)
	}
	e.cur = command{} // release the indexed shape's address slice
}

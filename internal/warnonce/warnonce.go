// Package warnonce is the one-line answer to a recurring CLI need: a
// condition that can fire thousands of times per run (a store write
// failing per job, a collector dropping spans, a tracer overflowing its
// retention cap) should reach stderr exactly once, with later
// occurrences counted elsewhere rather than repeated. The runner, the
// CLIs and the tracer plumbing all shared hand-rolled sync.Once +
// Fprintf copies of this; they now share one.
package warnonce

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Warner emits at most one message over its lifetime. The zero value
// writes to stderr; safe for concurrent use.
type Warner struct {
	once sync.Once
	w    io.Writer
}

// New returns a Warner writing to w (nil = stderr). CLIs pass their
// injected stderr so tests can capture the warning.
func New(w io.Writer) *Warner { return &Warner{w: w} }

// Warnf emits the formatted message on the first call and nothing on
// every later one. A trailing newline is appended if missing.
func (wo *Warner) Warnf(format string, args ...any) {
	wo.once.Do(func() {
		w := wo.w
		if w == nil {
			w = os.Stderr
		}
		msg := fmt.Sprintf(format, args...)
		if len(msg) == 0 || msg[len(msg)-1] != '\n' {
			msg += "\n"
		}
		fmt.Fprint(w, msg)
	})
}

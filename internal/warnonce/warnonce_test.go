package warnonce

import (
	"strings"
	"sync"
	"testing"
)

func TestWarnerEmitsOnce(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.Warnf("store write failed: %v", "disk full")
	w.Warnf("store write failed: %v", "other error")
	got := sb.String()
	if got != "store write failed: disk full\n" {
		t.Fatalf("output = %q, want single newline-terminated first message", got)
	}
}

func TestWarnerKeepsExistingNewline(t *testing.T) {
	var sb strings.Builder
	New(&sb).Warnf("already terminated\n")
	if got := sb.String(); got != "already terminated\n" {
		t.Fatalf("output = %q, want exactly one newline", got)
	}
}

func TestWarnerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	locked := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	w := New(locked)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Warnf("boom")
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if got := sb.String(); got != "boom\n" {
		t.Fatalf("output = %q, want one message across 32 goroutines", got)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

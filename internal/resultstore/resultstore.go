// Package resultstore is the crash-safe, content-addressed, persistent
// result cache under the experiment runner: a durable promotion of the
// in-memory memo table that survives process death, detects its own
// corruption, and degrades to a miss instead of ever serving bad data.
//
// Layout: one append-only journal (store.journal) of length-prefixed,
// CRC32C-checksummed records, each carrying the canonical key — a
// SHA-256 over the normalized core.Config, the workload name, the
// dataset scale, and a version string (git describe + schema version;
// see core.Config.Hash) — plus the full config, workload, scale and
// report for belt-and-braces verification on read. A fixed header
// identifies the file and its schema; records whose key version differs
// from the running binary's simply never match a lookup, so a stale
// store cannot poison a new build, and records written at one -scale
// never answer a lookup at another.
//
// Durability: writes go through an injectable positional File (the
// fault package wraps it to inject torn writes, bit flips, short reads
// and ENOSPC). The header is fsynced at creation; record appends are
// batched — fsync every SyncEvery puts (default 16, 1 = every record)
// and always on Flush/Close. A failed append rolls the journal back to
// its last good length so a partial write can never become mid-journal
// garbage under later appends.
//
// Recovery: Open scans the whole journal. A torn tail — a record that
// runs past EOF or whose trailing checksum fails — is truncated away; a
// corrupt record in the middle is quarantined to quarantine.jsonl
// (skip-and-warn, never abort) and the scan resynchronizes on the next
// record magic. Lookups re-verify the checksum on every read, so a bit
// flip after open is detected, quarantined, and answered as a miss.
//
// Eviction: with MaxBytes set, the store compacts in place once the
// journal outgrows the cap — live records are kept most-recently-used
// first until they fit, rewritten to a temp file, fsynced, and renamed
// over the journal atomically (then the directory is fsynced), so a
// crash at any instant leaves either the old journal or the new one.
//
// One process owns a store directory at a time — Open takes an advisory
// lock on DIR/store.lock and fails with a "store directory … in use"
// error while another process (or another open Store in this process)
// holds it, so two writers can never interleave appends or race a
// compaction's rename. Methods are safe for concurrent use within the
// owning process.
package resultstore

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
)

// SchemaVersion is the journal format version. It participates in both
// the file header (a journal written under another schema is archived,
// not parsed) and every record key (a report produced under another
// schema never answers a lookup). Version 2 added the dataset scale to
// the record identity and key hash.
const SchemaVersion = 2

const (
	journalName    = "store.journal"
	quarantineName = "quarantine.jsonl"
	lockName       = "store.lock"

	headerLen = 16
	recHdrLen = 12 // magic + payload length + CRC32C, uint32 LE each

	// maxRecordLen bounds one record's payload; anything larger in the
	// length field is corruption by construction.
	maxRecordLen = 64 << 20

	// defaultSyncEvery is the record-append fsync batch size when
	// Options.SyncEvery is zero.
	defaultSyncEvery = 16
)

var (
	headerMagic = [4]byte{'M', 'S', 'R', 'S'}
	recordMagic = [4]byte{'M', 'S', 'R', 'C'}

	// castagnoli is the CRC32C polynomial table (hardware-accelerated on
	// amd64/arm64), the checksum every record carries.
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// File is the store's view of its journal: positional reads and writes,
// truncation, durability. *os.File (wrapped for Size) satisfies it; the
// fault package wraps a File to inject disk failures.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// osFile adapts *os.File to File.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// OpenOSFile is the default Options.OpenFile: a read-write *os.File
// created as needed.
func OpenOSFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Options configures Open.
type Options struct {
	// Dir is the store directory (created if missing): store.journal
	// plus quarantine.jsonl live here.
	Dir string
	// Version is the code identity mixed into every record key,
	// typically `git describe`. The schema version is appended
	// automatically. Records keyed under any other version are invisible
	// to this store instance.
	Version string
	// MaxBytes caps the journal size; exceeding it triggers an LRU
	// compaction pass. 0 = unbounded.
	MaxBytes int64
	// SyncEvery fsyncs the journal after this many record appends
	// (0 = default 16, 1 = every record). The header and every
	// compaction are always fsynced; Flush and Close sync pending
	// records regardless.
	SyncEvery int
	// OpenFile opens journal files (the live journal and compaction
	// temporaries). nil = OpenOSFile. Injectable for disk-fault tests.
	OpenFile func(path string) (File, error)
	// Log receives recovery and corruption warnings, one line each.
	// nil = discard.
	Log io.Writer
}

// Stats is the store's counter snapshot.
type Stats struct {
	Records int   // live records in the index
	Bytes   int64 // journal size on disk

	Hits      uint64 // lookups answered from the journal
	Misses    uint64 // lookups not present (or failing verification)
	Puts      uint64 // records appended
	PutErrors uint64 // appends that failed (e.g. ENOSPC); journal rolled back

	Evictions   uint64 // records dropped by LRU compaction
	Compactions uint64 // compaction passes completed

	Recovered      uint64 // records restored by the opening scan
	Corrupt        uint64 // corrupt records/runs detected and quarantined (open + read)
	TruncatedBytes int64  // torn-tail bytes truncated at open or rolled back on a failed append
}

// entry locates one live record in the journal.
type entry struct {
	off     int64
	size    int64 // whole record: header + payload
	lastUse uint64
}

// payload is a record's JSON body. Workload, Scale, Version and Config
// ride along so a lookup can verify the record answers the question
// asked even under a (cosmically unlikely) key collision, and so humans
// can inspect quarantined records.
type payload struct {
	Key      string       `json:"key"`
	Version  string       `json:"version"`
	Scale    string       `json:"scale"`
	Workload string       `json:"workload"`
	Config   core.Config  `json:"config"`
	Report   *core.Report `json:"report"`
}

// Store is an open result store. Safe for concurrent use.
type Store struct {
	dir      string
	version  string
	maxBytes int64
	syncEach int
	openFile func(string) (File, error)
	log      io.Writer
	lock     *os.File // advisory cross-process lock on the directory

	mu      sync.Mutex
	f       File
	end     int64 // append offset == journal length
	index   map[string]entry
	useTick uint64
	dirty   int // record appends since the last fsync
	closed  bool
	stats   Stats
}

// Open opens (or creates) the store in opts.Dir, running the recovery
// scan. It never fails on journal corruption — corrupt content is
// quarantined or truncated and counted — only on I/O errors that keep
// the store from operating at all (unreadable directory, unopenable
// journal), or when another process already owns the directory (the
// advisory lock is held).
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("resultstore: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		lock: lock,
		dir:      opts.Dir,
		version:  fmt.Sprintf("%s+schema%d", opts.Version, SchemaVersion),
		maxBytes: opts.MaxBytes,
		syncEach: opts.SyncEvery,
		openFile: opts.OpenFile,
		log:      opts.Log,
		index:    map[string]entry{},
	}
	if s.syncEach <= 0 {
		s.syncEach = defaultSyncEvery
	}
	if s.openFile == nil {
		s.openFile = OpenOSFile
	}
	if err := s.openAndRecover(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.log != nil {
		fmt.Fprintf(s.log, "resultstore: "+format+"\n", args...)
	}
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, journalName) }

// newHeader renders the 16-byte journal header.
func newHeader() []byte {
	h := make([]byte, headerLen)
	copy(h, headerMagic[:])
	binary.LittleEndian.PutUint32(h[4:], SchemaVersion)
	return h
}

// writeHeader initializes an empty journal: header written and fsynced
// before any record can follow it.
func (s *Store) writeHeader() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("resultstore: init journal: %w", err)
	}
	if _, err := s.f.WriteAt(newHeader(), 0); err != nil {
		return fmt.Errorf("resultstore: write header: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("resultstore: sync header: %w", err)
	}
	s.end = headerLen
	return nil
}

// openAndRecover opens the journal and rebuilds the index from it,
// truncating torn tails and quarantining mid-journal corruption.
func (s *Store) openAndRecover() error {
	f, err := s.openFile(s.journalPath())
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	s.f = f
	size, err := f.Size()
	if err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if size == 0 {
		return s.writeHeader()
	}

	// Read the whole journal once; the scan needs random access for
	// resynchronization and the file is bounded by MaxBytes in any
	// long-running deployment.
	buf := make([]byte, size)
	if n, rerr := io.ReadFull(io.NewSectionReader(f, 0, size), buf); rerr != nil {
		if n == 0 {
			f.Close()
			return fmt.Errorf("resultstore: read journal: %w", rerr)
		}
		// Short read: the tail is unreadable (bad sectors, truncated FS
		// metadata). Salvage the readable prefix — the scan below treats
		// the cut like a torn tail — rather than refusing to open.
		s.logf("recovery: journal readable only to byte %d of %d (%v); salvaging the readable prefix", n, size, rerr)
		buf = buf[:n]
		size = int64(n)
	}

	if size < headerLen {
		// A crash tore the very first write: nothing but a partial
		// header exists, so there is nothing to lose by starting over.
		s.stats.TruncatedBytes += size
		s.logf("recovery: truncated %d-byte torn header", size)
		return s.writeHeader()
	}
	if magicOK, schema := [4]byte(buf[:4]) == headerMagic, binary.LittleEndian.Uint32(buf[4:8]); !magicOK || schema != SchemaVersion {
		// The header is not ours. Two very different situations look
		// like this: a journal written under another schema version,
		// whose record framing we must not parse (it is archived intact,
		// never interpreted), and our own journal with a damaged magic,
		// which must not void every good record behind it. Repair in
		// place only when the schema field still matches ours — the one
		// case where the records are known to use our framing — and our
		// record magic follows; anything else is archived wholesale.
		if !magicOK && schema == SchemaVersion &&
			size >= headerLen+recHdrLen && [4]byte(buf[headerLen:headerLen+4]) == recordMagic {
			if _, err := s.f.WriteAt(newHeader(), 0); err != nil {
				s.f.Close()
				return fmt.Errorf("resultstore: repair header: %w", err)
			}
			if err := s.f.Sync(); err != nil {
				s.f.Close()
				return fmt.Errorf("resultstore: sync repaired header: %w", err)
			}
			s.logf("recovery: journal header magic damaged; repaired in place")
		} else {
			return s.archiveJournal(size)
		}
	}

	off := int64(headerLen)
	truncateAt := int64(-1)
	for off < size {
		rest := size - off
		if rest < recHdrLen {
			truncateAt = off // torn tail: a partial record header
			break
		}
		if [4]byte(buf[off:off+4]) != recordMagic {
			next, skipped := s.resync(buf, off)
			s.quarantine(off, skipped, "bad record magic")
			if next < 0 {
				truncateAt = off
				break
			}
			off = next
			continue
		}
		n := int64(binary.LittleEndian.Uint32(buf[off+4 : off+8]))
		crc := binary.LittleEndian.Uint32(buf[off+8 : off+12])
		if n > maxRecordLen {
			next, skipped := s.resync(buf, off)
			s.quarantine(off, skipped, fmt.Sprintf("implausible record length %d", n))
			if next < 0 {
				truncateAt = off
				break
			}
			off = next
			continue
		}
		end := off + recHdrLen + n
		if end > size {
			// The payload runs past EOF. Usually that is a torn tail,
			// but a corrupted length field looks exactly the same — so
			// only truncate if no later record magic exists; otherwise
			// this is mid-journal damage and the records after it live.
			next, skipped := s.resync(buf, off)
			if next < 0 {
				truncateAt = off // torn tail: payload runs past EOF
				break
			}
			s.quarantine(off, skipped, fmt.Sprintf("record length %d runs past EOF", n))
			off = next
			continue
		}
		body := buf[off+recHdrLen : end]
		if crc32.Checksum(body, castagnoli) != crc {
			if end == size {
				truncateAt = off // torn tail: final record half-written
				break
			}
			s.quarantine(off, buf[off:end], "checksum mismatch")
			off = end
			continue
		}
		var p payload
		if err := json.Unmarshal(body, &p); err != nil || p.Key == "" {
			s.quarantine(off, buf[off:end], "undecodable payload")
			off = end
			continue
		}
		// Later records win: an append-only journal lists newer results
		// after older ones, and a duplicate's earlier bytes become dead
		// space the next compaction drops.
		s.useTick++
		s.index[p.Key] = entry{off: off, size: end - off, lastUse: s.useTick}
		s.stats.Recovered++
		off = end
	}

	s.end = size
	if truncateAt >= 0 {
		dropped := size - truncateAt
		if err := s.f.Truncate(truncateAt); err != nil {
			s.f.Close()
			return fmt.Errorf("resultstore: truncate torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return fmt.Errorf("resultstore: sync after truncate: %w", err)
		}
		s.end = truncateAt
		s.stats.TruncatedBytes += dropped
		s.logf("recovery: truncated %d torn-tail bytes at offset %d", dropped, truncateAt)
	}
	if s.stats.Recovered > 0 || s.stats.Corrupt > 0 {
		s.logf("recovery: %d records restored, %d corrupt quarantined", s.stats.Recovered, s.stats.Corrupt)
	}
	return nil
}

// archiveJournal moves an unrecognized journal aside and starts fresh.
func (s *Store) archiveJournal(size int64) error {
	s.f.Close()
	bad := s.journalPath() + ".bad"
	if err := os.Rename(s.journalPath(), bad); err != nil {
		return fmt.Errorf("resultstore: archive foreign journal: %w", err)
	}
	syncDir(s.dir)
	s.stats.Corrupt++
	s.logf("recovery: journal header unrecognized (%d bytes); archived to %s and starting fresh", size, bad)
	f, err := s.openFile(s.journalPath())
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	s.f = f
	return s.writeHeader()
}

// resync finds the next record magic after a corrupt region starting at
// off. It returns the next plausible record offset and the skipped
// bytes, or -1 when no further magic exists (the corruption reaches the
// tail).
func (s *Store) resync(buf []byte, off int64) (int64, []byte) {
	for i := off + 1; i+recHdrLen <= int64(len(buf)); i++ {
		if [4]byte(buf[i:i+4]) == recordMagic {
			return i, buf[off:i]
		}
	}
	return -1, nil
}

// quarantineEntry is one line of quarantine.jsonl: where the corrupt
// bytes sat, why they were rejected, and the bytes themselves (base64,
// capped) so no record is ever silently destroyed.
type quarantineEntry struct {
	Offset    int64  `json:"offset"`
	Length    int    `json:"length"`
	Reason    string `json:"reason"`
	RecordB64 string `json:"record_b64,omitempty"`
}

// quarantine appends a corrupt region to quarantine.jsonl and counts
// it. Quarantine I/O failures are logged, never fatal: losing the
// post-mortem copy must not take the store down.
func (s *Store) quarantine(off int64, data []byte, reason string) {
	s.stats.Corrupt++
	e := quarantineEntry{Offset: off, Length: len(data), Reason: reason}
	const b64Cap = 1 << 20
	if len(data) > 0 {
		capped := data
		if len(capped) > b64Cap {
			capped = capped[:b64Cap]
		}
		e.RecordB64 = base64.StdEncoding.EncodeToString(capped)
	}
	s.logf("quarantine: %s at offset %d (%d bytes)", reason, off, len(data))
	qf, err := os.OpenFile(filepath.Join(s.dir, quarantineName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.logf("quarantine: cannot open %s: %v", quarantineName, err)
		return
	}
	defer qf.Close()
	if err := json.NewEncoder(qf).Encode(e); err != nil {
		s.logf("quarantine: cannot write %s: %v", quarantineName, err)
	}
}

// Get answers one lookup for a workload run at the given dataset scale.
// The record's checksum and identity (key, workload, scale, version)
// are re-verified on every read; any failure quarantines the record and
// answers a miss, so corruption discovered after open degrades to
// re-simulation, never to bad data.
func (s *Store) Get(cfg core.Config, workload, scale string) (*core.Report, bool) {
	key := cfg.Hash(workload, scale, s.version)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.stats.Misses++
		return nil, false
	}
	e, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	buf := make([]byte, e.size)
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		s.logf("read: record at offset %d unreadable: %v", e.off, err)
		s.quarantine(e.off, nil, fmt.Sprintf("unreadable: %v", err))
		delete(s.index, key)
		s.stats.Misses++
		return nil, false
	}
	p, reason := decodeRecord(buf)
	if reason == "" && (p.Key != key || p.Workload != workload || p.Scale != scale || p.Version != s.version) {
		reason = "identity mismatch"
	}
	if reason != "" {
		s.quarantine(e.off, buf, reason)
		delete(s.index, key)
		s.stats.Misses++
		return nil, false
	}
	s.useTick++
	e.lastUse = s.useTick
	s.index[key] = e
	s.stats.Hits++
	return p.Report, true
}

// decodeRecord validates one complete record's framing, checksum and
// payload. It returns the decoded payload or a rejection reason.
func decodeRecord(buf []byte) (payload, string) {
	var p payload
	if len(buf) < recHdrLen || [4]byte(buf[:4]) != recordMagic {
		return p, "bad record magic"
	}
	n := int64(binary.LittleEndian.Uint32(buf[4:8]))
	if n != int64(len(buf))-recHdrLen {
		return p, "length mismatch"
	}
	if crc32.Checksum(buf[recHdrLen:], castagnoli) != binary.LittleEndian.Uint32(buf[8:12]) {
		return p, "checksum mismatch"
	}
	if err := json.Unmarshal(buf[recHdrLen:], &p); err != nil {
		return p, "undecodable payload"
	}
	return p, ""
}

// encodeRecord frames one payload as journal bytes.
func encodeRecord(body []byte) []byte {
	rec := make([]byte, recHdrLen+len(body))
	copy(rec, recordMagic[:])
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[8:], crc32.Checksum(body, castagnoli))
	copy(rec[recHdrLen:], body)
	return rec
}

// Put appends one verified result for a workload run at the given
// dataset scale. A failed or short append rolls the journal back to its
// previous length and returns the error; the store stays usable for
// reads and later puts either way.
func (s *Store) Put(cfg core.Config, workload, scale string, rep *core.Report) error {
	key := cfg.Hash(workload, scale, s.version)
	body, err := json.Marshal(payload{
		Key: key, Version: s.version, Scale: scale, Workload: workload,
		Config: cfg.Normalize(), Report: rep,
	})
	if err != nil {
		return fmt.Errorf("resultstore: encode record: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("resultstore: store is closed")
	}
	if len(body) > maxRecordLen {
		// The recovery scan rejects any length field above maxRecordLen
		// as corruption by construction, so appending a larger record
		// would serve from memory now and quarantine at the next open —
		// a record the store itself wrote, silently lost across
		// restarts. Refuse it up front instead.
		s.stats.PutErrors++
		return fmt.Errorf("resultstore: record payload is %d bytes, above the %d-byte journal limit", len(body), maxRecordLen)
	}
	rec := encodeRecord(body)
	n, werr := s.f.WriteAt(rec, s.end)
	if werr == nil && n < len(rec) {
		werr = io.ErrShortWrite
	}
	if werr != nil {
		s.stats.PutErrors++
		// Roll back so the partial bytes can never sit mid-journal under
		// a later successful append; if truncate also fails the garbage
		// stays past s.end, where the next recovery scan drops it as a
		// torn tail.
		if terr := s.f.Truncate(s.end); terr == nil {
			s.stats.TruncatedBytes += int64(n)
		}
		return fmt.Errorf("resultstore: append record: %w", werr)
	}
	off := s.end
	s.end += int64(len(rec))
	s.useTick++
	s.index[key] = entry{off: off, size: int64(len(rec)), lastUse: s.useTick}
	s.stats.Puts++
	s.dirty++
	if s.dirty >= s.syncEach {
		if serr := s.f.Sync(); serr != nil {
			return fmt.Errorf("resultstore: sync journal: %w", serr)
		}
		s.dirty = 0
	}
	if s.maxBytes > 0 && s.end > s.maxBytes {
		if cerr := s.compactLocked(); cerr != nil {
			s.logf("compaction failed (store continues on the old journal): %v", cerr)
		}
	}
	return nil
}

// compactLocked rewrites the journal with only the records that fit
// MaxBytes, keeping the most recently used. The new journal is written
// to a temp file, fsynced, and renamed over the old one; a crash at any
// point leaves one intact journal. Caller holds mu.
func (s *Store) compactLocked() error {
	type keyed struct {
		key string
		e   entry
	}
	live := make([]keyed, 0, len(s.index))
	for k, e := range s.index {
		live = append(live, keyed{k, e})
	}
	// Most recently used first for the size cut...
	sort.Slice(live, func(i, j int) bool { return live[i].e.lastUse > live[j].e.lastUse })
	var kept []keyed
	total := int64(headerLen)
	for _, kv := range live {
		if s.maxBytes > 0 && total+kv.e.size > s.maxBytes && len(kept) > 0 {
			break
		}
		kept = append(kept, kv)
		total += kv.e.size
	}
	evicted := uint64(len(live) - len(kept))
	// ...then journal order for the rewrite, preserving append history.
	sort.Slice(kept, func(i, j int) bool { return kept[i].e.off < kept[j].e.off })

	tmpPath := s.journalPath() + ".tmp"
	tf, err := s.openFile(tmpPath)
	if err != nil {
		return err
	}
	cleanup := func() {
		tf.Close()
		os.Remove(tmpPath)
	}
	if err := tf.Truncate(0); err != nil {
		cleanup()
		return err
	}
	if _, err := tf.WriteAt(newHeader(), 0); err != nil {
		cleanup()
		return err
	}
	newIndex := make(map[string]entry, len(kept))
	off := int64(headerLen)
	for _, kv := range kept {
		rec := make([]byte, kv.e.size)
		if _, err := s.f.ReadAt(rec, kv.e.off); err != nil {
			cleanup()
			return err
		}
		if _, reason := decodeRecord(rec); reason != "" {
			// A record that rotted since it was indexed does not survive
			// compaction; quarantine it rather than carrying rot forward.
			s.quarantine(kv.e.off, rec, "corrupt during compaction: "+reason)
			evicted++
			continue
		}
		if _, err := tf.WriteAt(rec, off); err != nil {
			cleanup()
			return err
		}
		newIndex[kv.key] = entry{off: off, size: kv.e.size, lastUse: kv.e.lastUse}
		off += kv.e.size
	}
	if err := tf.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Swap. Close-old → rename → fsync dir → reopen; any failure after
	// the rename reopens whichever file now owns the journal name.
	s.f.Close()
	if err := os.Rename(tmpPath, s.journalPath()); err != nil {
		os.Remove(tmpPath)
		f, rerr := s.openFile(s.journalPath())
		if rerr != nil {
			s.closed = true
			return fmt.Errorf("rename failed (%v) and journal reopen failed: %w", err, rerr)
		}
		s.f = f
		return err
	}
	syncDir(s.dir)
	f, err := s.openFile(s.journalPath())
	if err != nil {
		s.closed = true
		return fmt.Errorf("reopen compacted journal: %w", err)
	}
	s.f = f
	s.end = off
	s.index = newIndex
	s.dirty = 0
	s.stats.Evictions += evicted
	s.stats.Compactions++
	s.logf("compacted: %d records kept (%d bytes), %d evicted", len(newIndex), off, evicted)
	return nil
}

// Flush fsyncs any batched record appends.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.dirty == 0 {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("resultstore: sync journal: %w", err)
	}
	s.dirty = 0
	return nil
}

// Close flushes and closes the journal and releases the directory
// lock, so another process can open the store. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.dirty > 0 {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	unlockDir(s.lock)
	s.lock = nil
	if err != nil {
		return fmt.Errorf("resultstore: close: %w", err)
	}
	return nil
}

// Stats returns the counter snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = len(s.index)
	st.Bytes = s.end
	return st
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// syncDir fsyncs a directory so a rename inside it is durable; best
// effort on platforms where directories cannot be synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

//go:build unix

package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir enforces the one-process-per-store-directory rule: it takes a
// non-blocking exclusive flock on DIR/store.lock and fails when another
// process (or another open Store — flock is per file description)
// already holds it. Without this, two writers would each track their
// own append offset and WriteAt over each other's records, and race a
// compaction's rename. The lock dies with the process, so a SIGKILLed
// campaign never wedges the store; the lock file itself is empty and
// carries no state.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("resultstore: store directory %s is in use by another process (one process owns a store at a time; close it or use a different -store)", dir)
		}
		return nil, fmt.Errorf("resultstore: lock store directory: %w", err)
	}
	return f, nil
}

// unlockDir releases a lock taken by lockDir. nil-safe.
func unlockDir(f *os.File) {
	if f == nil {
		return
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}

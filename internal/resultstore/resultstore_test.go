package resultstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// testReport fabricates a distinguishable report.
func testReport(i int) *core.Report {
	return &core.Report{
		Model:        core.CC,
		Cores:        4,
		CoreMHz:      800,
		Wall:         sim.Time(1000 + i),
		Instructions: uint64(42 * (i + 1)),
	}
}

// testCfg returns the i-th distinct configuration. CoreMHz carries i
// directly so the mapping is injective for any i.
func testCfg(i int) core.Config {
	cfg := core.DefaultConfig(core.CC, 1+i%16)
	cfg.DRAMBandwidthMBps = 1600 << uint(i%4)
	cfg.CoreMHz = uint64(600 + i)
	return cfg
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// fill puts n records and flushes.
func fill(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put(testCfg(i), "fir", "small", testReport(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestRoundTrip: what goes in comes back out, across a close/reopen.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Version: "v1"})
	fill(t, s, 5)
	if rep, ok := s.Get(testCfg(2), "fir", "small"); !ok || rep.Wall != testReport(2).Wall {
		t.Fatalf("live get: ok=%v rep=%+v", ok, rep)
	}
	if _, ok := s.Get(testCfg(2), "fem", "small"); ok {
		t.Fatal("hit for a workload never stored")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	s2 := mustOpen(t, Options{Dir: dir, Version: "v1"})
	defer s2.Close()
	if st := s2.Stats(); st.Recovered != 5 || st.Records != 5 || st.Corrupt != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	for i := 0; i < 5; i++ {
		rep, ok := s2.Get(testCfg(i), "fir", "small")
		if !ok || rep.Wall != testReport(i).Wall || rep.Instructions != testReport(i).Instructions {
			t.Fatalf("reopened get %d: ok=%v rep=%+v", i, ok, rep)
		}
	}
	if st := s2.Stats(); st.Hits != 5 || st.Misses != 0 {
		t.Fatalf("hit stats: %+v", st)
	}
}

// TestVersionMismatchIsAMiss: a store written under one version answers
// nothing under another — the stale-store-poisoning guard.
func TestVersionMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Version: "git-abc"})
	fill(t, s, 3)
	s.Close()

	s2 := mustOpen(t, Options{Dir: dir, Version: "git-def"})
	if st := s2.Stats(); st.Recovered != 3 {
		t.Fatalf("old-version records should still recover: %+v", st)
	}
	if _, ok := s2.Get(testCfg(0), "fir", "small"); ok {
		t.Fatal("new version served a stale record")
	}
	s2.Close() // release the directory lock for the next open
	// The old version still hits its own records in the shared journal.
	s3 := mustOpen(t, Options{Dir: dir, Version: "git-abc"})
	defer s3.Close()
	if _, ok := s3.Get(testCfg(0), "fir", "small"); !ok {
		t.Fatal("original version lost its records")
	}
}

// TestObserversDoNotPerturbKeys: a config carrying run-scoped observers
// hits a record stored from a bare one.
func TestObserversDoNotPerturbKeys(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Version: "v1"})
	defer s.Close()
	fill(t, s, 1)
	cfg := testCfg(0)
	cfg.FlightRecorder = 512
	if _, ok := s.Get(cfg, "fir", "small"); !ok {
		t.Fatal("flight recorder perturbed the store key")
	}
}

// TestTruncateAtEveryByte is the crash-safety property: for EVERY
// prefix of a journal, reopening recovers without error, restores
// exactly the records wholly inside the prefix, and serves them.
func TestTruncateAtEveryByte(t *testing.T) {
	master := t.TempDir()
	s := mustOpen(t, Options{Dir: master, Version: "v1", SyncEvery: 1})
	const n = 4
	fill(t, s, n)
	s.Close()
	journal, err := os.ReadFile(filepath.Join(master, journalName))
	if err != nil {
		t.Fatal(err)
	}

	// Locate each record's end offset by a reference scan.
	ends := recordEnds(t, journal)
	if len(ends) != n {
		t.Fatalf("reference scan found %d records, want %d", len(ends), n)
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(journal); cut++ {
		os.RemoveAll(dir)
		os.MkdirAll(dir, 0o755)
		if err := os.WriteFile(filepath.Join(dir, journalName), journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: dir, Version: "v1"})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		wantComplete := 0
		for _, e := range ends {
			if int64(cut) >= e {
				wantComplete++
			}
		}
		got := st.Len()
		if got != wantComplete {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, got, wantComplete)
		}
		for i := 0; i < wantComplete; i++ {
			if rep, ok := st.Get(testCfg(i), "fir", "small"); !ok || rep.Wall != testReport(i).Wall {
				t.Fatalf("cut=%d: record %d lost or wrong", cut, i)
			}
		}
		if stats := st.Stats(); stats.Corrupt != 0 {
			t.Fatalf("cut=%d: pure truncation quarantined %d records", cut, stats.Corrupt)
		}
		// A second open of the repaired journal must be clean: recovery
		// converges (the torn tail was truncated away durably).
		st.Close()
		st2, err := Open(Options{Dir: dir, Version: "v1"})
		if err != nil || st2.Len() != wantComplete || st2.Stats().TruncatedBytes != 0 {
			t.Fatalf("cut=%d: second open not clean: err=%v len=%d stats=%+v", cut, err, st2.Len(), st2.Stats())
		}
		st2.Close()
	}
}

// recordEnds scans a well-formed journal and returns each record's end
// offset, independently of the store's own recovery code path.
func recordEnds(t *testing.T, journal []byte) []int64 {
	t.Helper()
	var ends []int64
	off := int64(headerLen)
	for off < int64(len(journal)) {
		if !bytes.Equal(journal[off:off+4], recordMagic[:]) {
			t.Fatalf("reference scan: bad magic at %d", off)
		}
		n := int64(journal[off+4]) | int64(journal[off+5])<<8 | int64(journal[off+6])<<16 | int64(journal[off+7])<<24
		off += recHdrLen + n
		ends = append(ends, off)
	}
	return ends
}

// TestBitFlipAtEveryByteNeverServesBadData flips each byte of a small
// journal in turn: every open must succeed, and every record the store
// then serves must be one of the records originally written — corrupt
// ones vanish into quarantine or (at the tail) truncation, they are
// never returned. The header's schema field is the one region where a
// flip loses availability rather than a single record: a changed schema
// version is indistinguishable from a genuinely different journal
// format, so the whole file is archived intact (never parsed, never
// destroyed) and the store starts fresh.
func TestBitFlipAtEveryByteNeverServesBadData(t *testing.T) {
	master := t.TempDir()
	s := mustOpen(t, Options{Dir: master, Version: "v1", SyncEvery: 1})
	const n = 3
	fill(t, s, n)
	s.Close()
	journal, err := os.ReadFile(filepath.Join(master, journalName))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for pos := 0; pos < len(journal); pos++ {
		os.RemoveAll(dir)
		os.MkdirAll(dir, 0o755)
		mut := append([]byte(nil), journal...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, journalName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: dir, Version: "v1"})
		if err != nil {
			t.Fatalf("pos=%d: Open failed: %v", pos, err)
		}
		served := 0
		for i := 0; i < n; i++ {
			rep, ok := st.Get(testCfg(i), "fir", "small")
			if !ok {
				continue
			}
			served++
			if rep.Wall != testReport(i).Wall || rep.Instructions != testReport(i).Instructions {
				t.Fatalf("pos=%d: record %d served with wrong content", pos, i)
			}
		}
		if pos >= 4 && pos < 8 {
			// Schema field flipped: the journal must be archived wholesale,
			// not parsed under guessed framing.
			if served != 0 {
				t.Fatalf("pos=%d: schema-flipped journal served %d records", pos, served)
			}
			if _, err := os.Stat(filepath.Join(dir, journalName+".bad")); err != nil {
				t.Fatalf("pos=%d: schema-flipped journal not archived: %v", pos, err)
			}
		} else if served < n-1 {
			t.Fatalf("pos=%d: one flipped byte destroyed %d records", pos, n-served)
		}
		st.Close()
	}
}

// TestMidJournalCorruptionQuarantines: smashing bytes in the middle of
// the journal loses only the smashed record; everything after it
// survives and the corpse lands in quarantine.jsonl.
func TestMidJournalCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	s := mustOpen(t, Options{Dir: dir, Version: "v1", SyncEvery: 1})
	fill(t, s, 5)
	s.Close()

	path := filepath.Join(dir, journalName)
	journal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := recordEnds(t, journal)
	// Smash the payload of record 2 (between ends[1] and ends[2]).
	for i := ends[1] + recHdrLen; i < ends[2]-4; i++ {
		journal[i] ^= 0xff
	}
	if err := os.WriteFile(path, journal, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, Version: "v1", Log: &log})
	if err != nil {
		t.Fatalf("Open over mid-journal corruption: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Recovered != 4 || st.Corrupt == 0 {
		t.Fatalf("stats after corruption: %+v", st)
	}
	for _, i := range []int{0, 1, 3, 4} {
		if _, ok := s2.Get(testCfg(i), "fir", "small"); !ok {
			t.Fatalf("record %d lost to a neighbor's corruption", i)
		}
	}
	if _, ok := s2.Get(testCfg(2), "fir", "small"); ok {
		t.Fatal("corrupt record served")
	}
	qb, err := os.ReadFile(filepath.Join(dir, quarantineName))
	if err != nil {
		t.Fatalf("quarantine.jsonl missing: %v", err)
	}
	var q quarantineEntry
	if err := json.Unmarshal(bytes.SplitN(qb, []byte("\n"), 2)[0], &q); err != nil {
		t.Fatalf("quarantine entry not JSON: %v", err)
	}
	if q.Reason == "" || q.Length == 0 || q.RecordB64 == "" {
		t.Fatalf("quarantine entry incomplete: %+v", q)
	}
	if !bytes.Contains(log.Bytes(), []byte("quarantine")) {
		t.Fatalf("no quarantine warning logged: %s", log.String())
	}
}

// TestForeignJournalArchived: a journal with an alien header is moved
// aside, not parsed and not deleted.
func TestForeignJournalArchived(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte("not a journal at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, Options{Dir: dir, Version: "v1"})
	defer s.Close()
	if s.Len() != 0 {
		t.Fatal("foreign journal produced records")
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Fatalf("foreign journal not archived: %v", err)
	}
	fill(t, s, 1)
	if _, ok := s.Get(testCfg(0), "fir", "small"); !ok {
		t.Fatal("fresh journal after archive does not serve")
	}
}

// TestLRUEvictionCompacts: a size-capped store drops the least recently
// used records, keeps the hot ones, and the journal shrinks on disk via
// the atomic rewrite.
func TestLRUEvictionCompacts(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Version: "v1", SyncEvery: 1})
	fill(t, s, 1)
	size1 := s.Stats().Bytes
	recSize := size1 - headerLen
	s.Close()

	// Cap the journal at ~6 records, then write 10, touching record 0
	// along the way so it stays hot.
	cap := headerLen + 6*recSize + recSize/2
	s = mustOpen(t, Options{Dir: dir, Version: "v1", SyncEvery: 1, MaxBytes: cap})
	for i := 1; i < 10; i++ {
		if _, ok := s.Get(testCfg(0), "fir", "small"); !ok {
			t.Fatalf("hot record 0 evicted at i=%d", i)
		}
		if err := s.Put(testCfg(i), "fir", "small", testReport(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 || st.Evictions == 0 {
		t.Fatalf("no compaction happened: %+v", st)
	}
	if st.Bytes > cap {
		t.Fatalf("journal %d bytes exceeds cap %d after compaction", st.Bytes, cap)
	}
	if _, ok := s.Get(testCfg(0), "fir", "small"); !ok {
		t.Fatal("most-recently-used record was evicted")
	}
	if _, ok := s.Get(testCfg(9), "fir", "small"); !ok {
		t.Fatal("newest record was evicted")
	}
	s.Close()

	// The compacted journal reopens cleanly with the same records.
	s2 := mustOpen(t, Options{Dir: dir, Version: "v1"})
	defer s2.Close()
	if s2.Stats().Corrupt != 0 {
		t.Fatalf("compacted journal reopens corrupt: %+v", s2.Stats())
	}
	if _, ok := s2.Get(testCfg(9), "fir", "small"); !ok {
		t.Fatal("compacted journal lost the newest record")
	}
}

// TestDuplicatePutLastWins: re-putting a key serves the newer report,
// across reopen too.
func TestDuplicatePutLastWins(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Version: "v1", SyncEvery: 1})
	cfg := testCfg(0)
	if err := s.Put(cfg, "fir", "small", testReport(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(cfg, "fir", "small", testReport(7)); err != nil {
		t.Fatal(err)
	}
	if rep, ok := s.Get(cfg, "fir", "small"); !ok || rep.Wall != testReport(7).Wall {
		t.Fatalf("live duplicate get: %+v", rep)
	}
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir, Version: "v1"})
	defer s2.Close()
	if rep, ok := s2.Get(cfg, "fir", "small"); !ok || rep.Wall != testReport(7).Wall {
		t.Fatalf("reopened duplicate get: %+v", rep)
	}
}

// TestConcurrentAccess hammers the store from many goroutines; under
// -race this is the data-race proof for the one-mutex design.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Version: "v1"})
	defer s.Close()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (w*40 + i) % 23
				if rep, ok := s.Get(testCfg(k), "fir", "small"); ok && rep.Wall != testReport(k).Wall {
					t.Errorf("concurrent get served wrong record")
					return
				}
				if err := s.Put(testCfg(k), "fir", "small", testReport(k)); err != nil {
					t.Errorf("concurrent put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 23 {
		t.Fatalf("index has %d records, want 23", s.Len())
	}
	for k := 0; k < 23; k++ {
		if rep, ok := s.Get(testCfg(k), "fir", "small"); !ok || rep.Wall != testReport(k).Wall {
			t.Fatalf("record %d wrong after concurrent load", k)
		}
	}
}

// TestGetAfterCloseMisses: a closed store answers misses, never panics.
func TestGetAfterCloseMisses(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Version: "v1"})
	fill(t, s, 1)
	s.Close()
	if _, ok := s.Get(testCfg(0), "fir", "small"); ok {
		t.Fatal("closed store served a record")
	}
	if err := s.Put(testCfg(1), "fir", "small", testReport(1)); err == nil {
		t.Fatal("closed store accepted a put")
	}
}

// TestOpenRequiresDir pins the only hard Open error that is a caller
// bug rather than recoverable corruption.
func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

// TestStatsShape sanity-checks the counter bookkeeping end to end.
func TestStatsShape(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Version: "v1"})
	defer s.Close()
	fill(t, s, 2)
	s.Get(testCfg(0), "fir", "small")
	s.Get(testCfg(0), "fir", "small")
	s.Get(testCfg(5), "fir", "small")
	st := s.Stats()
	want := fmt.Sprintf("puts=2 hits=2 misses=1 records=2")
	got := fmt.Sprintf("puts=%d hits=%d misses=%d records=%d", st.Puts, st.Hits, st.Misses, st.Records)
	if got != want {
		t.Fatalf("stats: %s, want %s", got, want)
	}
	if st.Bytes <= headerLen {
		t.Fatalf("bytes not tracked: %+v", st)
	}
}

// TestScaleMismatchIsAMiss is the cross-scale poisoning guard: one
// store directory shared by campaigns at different dataset scales must
// never serve a small-scale report as a paper-scale hit (the reports
// genuinely differ — the scale sets the workload's dataset sizes).
func TestScaleMismatchIsAMiss(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Version: "v1"})
	defer s.Close()
	cfg := testCfg(0)
	if err := s.Put(cfg, "fir", "small", testReport(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(cfg, "fir", "paper"); ok {
		t.Fatal("paper-scale lookup served a small-scale record")
	}
	if _, ok := s.Get(cfg, "fir", "default"); ok {
		t.Fatal("default-scale lookup served a small-scale record")
	}
	// Both scales coexist in one journal, each answering only its own.
	if err := s.Put(cfg, "fir", "paper", testReport(9)); err != nil {
		t.Fatal(err)
	}
	if rep, ok := s.Get(cfg, "fir", "small"); !ok || rep.Wall != testReport(0).Wall {
		t.Fatal("small-scale record lost or cross-served after paper-scale put")
	}
	if rep, ok := s.Get(cfg, "fir", "paper"); !ok || rep.Wall != testReport(9).Wall {
		t.Fatal("paper-scale record missing or wrong")
	}
}

// TestDirLockExcludesSecondOpen enforces the one-process-per-directory
// rule: while a store is open, a second Open of the same directory
// fails with a clear "in use" error instead of silently racing the
// first writer's appends and compactions; Close releases the lock.
func TestDirLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Version: "v1"})
	if _, err := Open(Options{Dir: dir, Version: "v1"}); err == nil {
		t.Fatal("second Open of a locked store directory succeeded")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("lock error not self-explanatory: %v", err)
	}
	fill(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Options{Dir: dir, Version: "v1"})
	defer s2.Close()
	if _, ok := s2.Get(testCfg(0), "fir", "small"); !ok {
		t.Fatal("store lost a record across a lock handoff")
	}
}

// TestPutRejectsOversizedRecord: a payload above the journal's record
// length bound is refused up front with an error, because the recovery
// scan would otherwise quarantine it at the next open — a record the
// store wrote itself, silently lost across restarts.
func TestPutRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Version: "v1", SyncEvery: 1})
	// Size the report to encode just past the record limit: one encoded
	// per-core breakdown entry, measured, times enough entries.
	one, err := json.Marshal(cpu.Breakdown{})
	if err != nil {
		t.Fatal(err)
	}
	huge := testReport(0)
	huge.PerCore = make([]cpu.Breakdown, maxRecordLen/(len(one)+1)+2)
	err = s.Put(testCfg(0), "fir", "small", huge)
	if err == nil {
		t.Fatal("oversized record accepted")
	}
	if st := s.Stats(); st.PutErrors != 1 || st.Puts != 0 {
		t.Fatalf("stats after oversized put: %+v", st)
	}
	// The journal is untouched and the store still works.
	if err := s.Put(testCfg(1), "fir", "small", testReport(1)); err != nil {
		t.Fatalf("put after oversized rejection: %v", err)
	}
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir, Version: "v1"})
	defer s2.Close()
	if st := s2.Stats(); st.Recovered != 1 || st.Corrupt != 0 {
		t.Fatalf("journal damaged by rejected oversized put: %+v", st)
	}
}

// TestOtherSchemaJournalArchived: a journal whose header carries a
// different schema version is archived intact, never parsed — its
// record framing may differ, and mis-parsing it would churn good
// records into quarantine.
func TestOtherSchemaJournalArchived(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Version: "v1", SyncEvery: 1})
	fill(t, s, 2)
	s.Close()
	path := filepath.Join(dir, journalName)
	journal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header's schema field to a (hypothetical) older
	// version, leaving the magic and every record byte intact.
	journal[4], journal[5], journal[6], journal[7] = SchemaVersion-1, 0, 0, 0
	if err := os.WriteFile(path, journal, 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	s2 := mustOpen(t, Options{Dir: dir, Version: "v1", Log: &log})
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("old-schema journal parsed: %d records", s2.Len())
	}
	bad, err := os.ReadFile(path + ".bad")
	if err != nil {
		t.Fatalf("old-schema journal not archived: %v", err)
	}
	if !bytes.Equal(bad, journal) {
		t.Fatal("archived journal not byte-identical to the original")
	}
}

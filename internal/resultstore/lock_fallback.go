//go:build !unix

package resultstore

import "os"

// Platforms without flock get no cross-process exclusion: the store
// still works, but the one-process-per-directory rule is the caller's
// to uphold. All supported CI targets are unix.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}

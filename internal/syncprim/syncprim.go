// Package syncprim provides the synchronization primitives the study's
// applications use — locks, sense-reversing barriers, and the dynamic
// task queues both models schedule work from ("the applications ... use
// locks to implement efficient task-queues and barriers to synchronize
// SPMD code"). All waiting is charged to the Sync bucket of Figure 2.
//
// Primitive costs are model-independent round-trip charges (an atomic
// operation reaching a shared point of coherence, roughly an L2 round
// trip). The dominant synchronization costs in the study — load
// imbalance and limited parallelism — emerge from the queueing
// discipline, not the per-operation constant.
//
// Every clock movement here goes through cpu.AddSync (paired with the
// matching Advance or BlockOn), which also feeds the cycle ledger's
// SyncWait class — so lock and barrier time is fully attributed and the
// ledger's conservation invariant holds across synchronization.
package syncprim

import (
	"repro/internal/cpu"
	"repro/internal/sim"
)

// OpCost is the charge for one uncontended atomic operation (compare-
// and-swap or fetch-and-add reaching the L2).
const OpCost = 25 * sim.Nanosecond

// HandoffCost is the extra latency to pass a released lock or barrier
// wake-up to a waiting core (a line transfer between caches).
const HandoffCost = 15 * sim.Nanosecond

// Lock is a FIFO mutex in simulated time.
type Lock struct {
	name    string
	held    bool
	waiters []*cpu.Proc
	// Acquisitions counts successful acquires; Contended counts those
	// that had to wait.
	Acquisitions uint64
	Contended    uint64
}

// NewLock returns an unlocked lock.
func NewLock(name string) *Lock { return &Lock{name: name} }

// Acquire takes the lock, blocking in simulated time until available.
func (l *Lock) Acquire(p *cpu.Proc) {
	p.Task().Sync()
	p.AddSync(OpCost)
	p.Task().Advance(OpCost)
	l.Acquisitions++
	if !l.held {
		l.held = true
		return
	}
	l.Contended++
	l.waiters = append(l.waiters, p)
	before := p.Now()
	p.Task().BlockOn("lock " + l.name)
	p.AddSync(p.Now() - before)
}

// Release frees the lock, handing it to the longest-waiting core.
func (l *Lock) Release(p *cpu.Proc) {
	if !l.held {
		panic("syncprim: release of unheld lock " + l.name)
	}
	p.Task().Sync()
	if len(l.waiters) == 0 {
		l.held = false
		return
	}
	w := l.waiters[0]
	l.waiters = l.waiters[1:]
	w.Task().Unblock(p.Now() + HandoffCost)
}

// Barrier synchronizes n cores; it is reusable (sense-reversing).
type Barrier struct {
	name    string
	n       int
	arrived []*cpu.Proc
	// Waits counts completed barrier episodes.
	Waits uint64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(name string, n int) *Barrier {
	if n <= 0 {
		panic("syncprim: barrier with no participants")
	}
	return &Barrier{name: name, n: n}
}

// Wait blocks until all n participants have arrived. The release time is
// the last arrival plus the broadcast cost.
func (b *Barrier) Wait(p *cpu.Proc) {
	p.Task().Sync()
	p.AddSync(OpCost)
	p.Task().Advance(OpCost)
	if len(b.arrived)+1 < b.n {
		b.arrived = append(b.arrived, p)
		before := p.Now()
		p.Task().BlockOn("barrier " + b.name)
		p.AddSync(p.Now() - before)
		return
	}
	// Last arrival releases everyone.
	b.Waits++
	release := p.Now() + HandoffCost
	for _, w := range b.arrived {
		w.Task().Unblock(release)
	}
	b.arrived = b.arrived[:0]
}

// TaskQueue hands out work-item indexes dynamically, as the MPEG-2 and
// H.264 macroblock schedulers do. It is a lock-protected counter.
type TaskQueue struct {
	lock  *Lock
	next  int
	limit int
	// DequeueInstr is the bookkeeping instruction cost per dequeue.
	DequeueInstr uint64
}

// NewTaskQueue returns a queue dispensing [0, limit).
func NewTaskQueue(name string, limit int) *TaskQueue {
	return &TaskQueue{lock: NewLock(name + ".lock"), limit: limit, DequeueInstr: 6}
}

// Next returns the next work-item index, or -1 when the queue is empty.
func (q *TaskQueue) Next(p *cpu.Proc) int {
	q.lock.Acquire(p)
	p.Work(q.DequeueInstr)
	idx := -1
	if q.next < q.limit {
		idx = q.next
		q.next++
	}
	q.lock.Release(p)
	return idx
}

// Remaining returns how many items have not been dispensed.
func (q *TaskQueue) Remaining() int { return q.limit - q.next }

// Reset refills the queue for another phase with the given item count.
func (q *TaskQueue) Reset(limit int) {
	q.next = 0
	q.limit = limit
}

package syncprim

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
)

type nullMem struct{}

func (nullMem) Load(p *cpu.Proc, a mem.Addr) sim.Time               { return p.Now() }
func (nullMem) Store(p *cpu.Proc, a mem.Addr, n uint64) sim.Time    { return p.Now() }
func (nullMem) StorePFS(p *cpu.Proc, a mem.Addr, n uint64) sim.Time { return p.Now() }
func (nullMem) Flush(p *cpu.Proc) sim.Time                          { return p.Now() }

// runProcs executes one body per core on null memory.
func runProcs(t *testing.T, bodies ...func(p *cpu.Proc)) []*cpu.Proc {
	t.Helper()
	eng := sim.NewEngine()
	procs := make([]*cpu.Proc, len(bodies))
	for i, body := range bodies {
		i, body := i, body
		procs[i] = cpu.New(i, i/4, cpu.Config{Clock: sim.MHz(800)})
		eng.Spawn("core", 0, func(task *sim.Task) {
			procs[i].Bind(task, nullMem{})
			body(procs[i])
			procs[i].Finish()
		})
	}
	eng.Run()
	return procs
}

func TestLockMutualExclusion(t *testing.T) {
	l := NewLock("l")
	var insideAt []sim.Time // (enter, exit) pairs in acquisition order
	body := func(p *cpu.Proc) {
		for i := 0; i < 5; i++ {
			l.Acquire(p)
			insideAt = append(insideAt, p.Now())
			p.Work(100) // critical section
			insideAt = append(insideAt, p.Now())
			l.Release(p)
			p.Work(37)
		}
	}
	runProcs(t, body, body, body)
	// Critical sections must not overlap: every exit <= next enter.
	for i := 2; i < len(insideAt); i += 2 {
		if insideAt[i] < insideAt[i-1] {
			t.Fatalf("critical sections overlap: enter %v before previous exit %v", insideAt[i], insideAt[i-1])
		}
	}
	if l.Acquisitions != 15 {
		t.Errorf("acquisitions = %d, want 15", l.Acquisitions)
	}
	if l.Contended == 0 {
		t.Error("expected contention among 3 cores")
	}
}

func TestLockFIFOOrder(t *testing.T) {
	l := NewLock("l")
	var order []int
	mk := func(id int, start sim.Time) func(p *cpu.Proc) {
		return func(p *cpu.Proc) {
			p.WaitUntil(start)
			l.Acquire(p)
			order = append(order, id)
			p.Work(10000)
			l.Release(p)
		}
	}
	runProcs(t, mk(0, 0), mk(1, 1*sim.Microsecond), mk(2, 2*sim.Microsecond))
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewLock("l")
	// The held check fires before any task interaction, so an unbound
	// proc suffices (a panic inside a spawned task would kill the whole
	// test process instead of being recoverable here).
	l.Release(cpu.New(0, 0, cpu.Config{Clock: sim.MHz(800)}))
}

func TestBarrierReleasesTogether(t *testing.T) {
	b := NewBarrier("b", 3)
	var after [3]sim.Time
	mk := func(id int, work uint64) func(p *cpu.Proc) {
		return func(p *cpu.Proc) {
			p.Work(work)
			b.Wait(p)
			after[id] = p.Now()
		}
	}
	procs := runProcs(t, mk(0, 10), mk(1, 20000), mk(2, 500))
	// All exit at (nearly) the same simulated time, >= slowest arrival.
	slowest := sim.MHz(800).Cycles(20000)
	for i, a := range after {
		if a < slowest {
			t.Errorf("core %d left barrier at %v before slowest arrival %v", i, a, slowest)
		}
	}
	if after[0] != after[2] {
		t.Errorf("waiters released at different times: %v vs %v", after[0], after[2])
	}
	// The fast cores accumulated sync time.
	if procs[0].Breakdown().Sync == 0 {
		t.Error("fast core has no sync time")
	}
	if b.Waits != 1 {
		t.Errorf("barrier episodes = %d, want 1", b.Waits)
	}
}

func TestBarrierReusable(t *testing.T) {
	b := NewBarrier("b", 2)
	body := func(p *cpu.Proc) {
		for i := 0; i < 10; i++ {
			p.Work(uint64(10 * (p.ID() + 1)))
			b.Wait(p)
		}
	}
	runProcs(t, body, body)
	if b.Waits != 10 {
		t.Errorf("barrier episodes = %d, want 10", b.Waits)
	}
}

func TestTaskQueueDispensesAllItemsOnce(t *testing.T) {
	q := NewTaskQueue("q", 100)
	seen := make(map[int]int)
	body := func(p *cpu.Proc) {
		for {
			idx := q.Next(p)
			if idx < 0 {
				return
			}
			seen[idx]++
			p.Work(50)
		}
	}
	runProcs(t, body, body, body, body)
	if len(seen) != 100 {
		t.Fatalf("dispensed %d distinct items, want 100", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("item %d dispensed %d times", idx, n)
		}
	}
	if q.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", q.Remaining())
	}
}

func TestTaskQueueBalancesDynamically(t *testing.T) {
	// A core that works 10x slower should get roughly 10x fewer items.
	q := NewTaskQueue("q", 200)
	counts := [2]int{}
	mk := func(id int, work uint64) func(p *cpu.Proc) {
		return func(p *cpu.Proc) {
			for {
				if q.Next(p) < 0 {
					return
				}
				counts[id]++
				p.Work(work)
			}
		}
	}
	runProcs(t, mk(0, 100), mk(1, 1000))
	if counts[0] <= counts[1] {
		t.Errorf("fast core got %d items, slow got %d; want fast > slow", counts[0], counts[1])
	}
}

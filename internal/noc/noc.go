// Package noc models the study's hierarchical on-chip interconnect
// (Table 2, Figure 1): cores are grouped in clusters of four around a
// 32-byte-wide bidirectional bus (2-cycle latency after arbitration), and
// clusters reach the shared L2 through a global crossbar with 16-byte
// pipelined ports (2.5 ns latency). Network clocks stay fixed when the
// core clock is scaled, as in the paper's Section 5.3 experiments.
package noc

import (
	"fmt"

	"repro/internal/ledger"
	"repro/internal/sim"
	"repro/internal/txntrace"
)

// Config describes the interconnect.
type Config struct {
	Clusters      int       // number of 4-core clusters
	Clock         sim.Clock // network clock domain (fixed at 800 MHz)
	BusBytes      uint64    // local bus width per cycle
	BusLatency    sim.Time  // local bus arbitration + propagation
	XbarBytes     uint64    // crossbar port width per cycle
	XbarLatency   sim.Time  // crossbar pipeline latency
	CoresPerClust int
}

// DefaultConfig returns the paper's interconnect for n cores.
func DefaultConfig(nCores int) Config { return DefaultConfigClustered(nCores, 4) }

// DefaultConfigClustered is DefaultConfig with an explicit cluster size
// (an ablation knob; the paper fixes it at 4).
func DefaultConfigClustered(nCores, perCluster int) Config {
	if perCluster <= 0 {
		perCluster = 4
	}
	clusters := (nCores + perCluster - 1) / perCluster
	clk := sim.MHz(800)
	return Config{
		Clusters:      clusters,
		Clock:         clk,
		BusBytes:      32,
		BusLatency:    clk.Cycles(2), // "2 cycle latency (after arbitration)"
		XbarBytes:     16,
		XbarLatency:   2500 * sim.Picosecond, // "2.5ns latency (pipelined)"
		CoresPerClust: perCluster,
	}
}

// Stats counts interconnect activity for the traffic and energy reports.
type Stats struct {
	BusDataBytes uint64 // data payload moved over cluster buses
	BusControl   uint64 // address/command slots (snoops, requests)
	XbarBytes    uint64 // payload through the global crossbar
	XbarMsgs     uint64
}

// Network is the assembled interconnect.
type Network struct {
	cfg   Config
	buses []*sim.Pipe // one per cluster
	toL2  []*sim.Pipe // per-cluster crossbar output port (towards L2)
	frL2  []*sim.Pipe // per-cluster crossbar input port (from L2)
	stats Stats
	lat   *ledger.Latency  // nil = latency histograms disabled
	txn   *txntrace.Tracer // nil = transaction tracing disabled
}

// New returns a network with cfg.
func New(cfg Config) *Network {
	if cfg.Clusters <= 0 {
		panic("noc: no clusters")
	}
	n := &Network{cfg: cfg}
	for i := 0; i < cfg.Clusters; i++ {
		n.buses = append(n.buses, sim.NewPipe(fmt.Sprintf("bus%d", i), cfg.BusBytes, cfg.Clock, cfg.BusLatency))
		n.toL2 = append(n.toL2, sim.NewPipe(fmt.Sprintf("xbar.out%d", i), cfg.XbarBytes, cfg.Clock, cfg.XbarLatency))
		n.frL2 = append(n.frL2, sim.NewPipe(fmt.Sprintf("xbar.in%d", i), cfg.XbarBytes, cfg.Clock, cfg.XbarLatency))
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats }

// SetLatency attaches the run's service-time histograms (nil disables
// recording).
func (n *Network) SetLatency(l *ledger.Latency) { n.lat = l }

// SetTxnTrace attaches the run's transaction tracer (nil disables it).
func (n *Network) SetTxnTrace(t *txntrace.Tracer) { n.txn = t }

// xfer runs one tracked transfer, recording the arbitration wait into
// the NoC-acquire histogram and a hop on the active transaction when
// either observer is enabled.
func (n *Network) xfer(p *sim.Pipe, at sim.Time, nbytes uint64, op string) sim.Time {
	done, wait := p.TransferTracked(at, nbytes)
	if n.lat != nil {
		n.lat.NoCAcquire.Record(uint64(wait))
	}
	if n.txn != nil {
		tag := ""
		if wait > 0 {
			tag = fmt.Sprintf("wait=%dfs", wait)
		}
		n.txn.HopTag("noc", op, at, done, tag)
	}
	return done
}

// ClusterOf maps a core index to its cluster.
func (n *Network) ClusterOf(core int) int { return core / n.cfg.CoresPerClust }

// Clusters returns the number of clusters.
func (n *Network) Clusters() int { return n.cfg.Clusters }

// BusData moves nbytes of payload across a cluster's bus, returning
// delivery time.
func (n *Network) BusData(at sim.Time, cluster int, nbytes uint64) sim.Time {
	n.stats.BusDataBytes += nbytes
	return n.xfer(n.buses[cluster], at, nbytes, "bus_data")
}

// BusControl occupies one command slot on a cluster's bus (a coherence
// request, snoop result, or DMA command), returning delivery time.
func (n *Network) BusControl(at sim.Time, cluster int) sim.Time {
	n.stats.BusControl++
	return n.xfer(n.buses[cluster], at, n.cfg.BusBytes, "bus_control") // one bus cycle
}

// ToGlobal moves nbytes from a cluster to the global side (L2/DRAM
// direction) through the cluster's crossbar output port.
func (n *Network) ToGlobal(at sim.Time, cluster int, nbytes uint64) sim.Time {
	n.stats.XbarBytes += nbytes
	n.stats.XbarMsgs++
	return n.xfer(n.toL2[cluster], at, nbytes, "to_global")
}

// FromGlobal moves nbytes from the global side back into a cluster.
func (n *Network) FromGlobal(at sim.Time, cluster int, nbytes uint64) sim.Time {
	n.stats.XbarBytes += nbytes
	n.stats.XbarMsgs++
	return n.xfer(n.frL2[cluster], at, nbytes, "from_global")
}

// BusUtilization returns the busy fraction of a cluster bus over [0, end].
func (n *Network) BusUtilization(cluster int, end sim.Time) float64 {
	return n.buses[cluster].Utilization(end)
}

// AvgBusUtilization returns the mean busy fraction across all cluster
// buses over [0, end].
func (n *Network) AvgBusUtilization(end sim.Time) float64 {
	if end == 0 || len(n.buses) == 0 {
		return 0
	}
	s := 0.0
	for _, b := range n.buses {
		s += b.Utilization(end)
	}
	return s / float64(len(n.buses))
}

// BusBusy returns the cumulative busy time summed over cluster buses;
// the probe layer differentiates it into a bus-utilization series.
func (n *Network) BusBusy() sim.Time {
	var t sim.Time
	for _, b := range n.buses {
		t += b.BusyTime()
	}
	return t
}

// XbarBusy returns the cumulative busy time summed over the crossbar
// ports in both directions.
func (n *Network) XbarBusy() sim.Time {
	var t sim.Time
	for _, p := range n.toL2 {
		t += p.BusyTime()
	}
	for _, p := range n.frL2 {
		t += p.BusyTime()
	}
	return t
}

// AddServerMetrics accumulates the calendar-maintenance counters of
// every bus and crossbar port into m.
func (n *Network) AddServerMetrics(m *sim.ServerMetrics) {
	for _, b := range n.buses {
		b.AddMetrics(m)
	}
	for _, p := range n.toL2 {
		p.AddMetrics(m)
	}
	for _, p := range n.frL2 {
		p.AddMetrics(m)
	}
}

// Snapshot emits the counters in a fixed order (probe layer).
func (s Stats) Snapshot(put func(name string, value float64)) {
	put("bus_data_bytes", float64(s.BusDataBytes))
	put("bus_control", float64(s.BusControl))
	put("xbar_bytes", float64(s.XbarBytes))
	put("xbar_msgs", float64(s.XbarMsgs))
}

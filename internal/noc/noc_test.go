package noc

import (
	"testing"

	"repro/internal/sim"
)

func TestDefaultConfigClusters(t *testing.T) {
	cases := []struct{ cores, clusters int }{
		{1, 1}, {2, 1}, {4, 1}, {5, 2}, {8, 2}, {16, 4},
	}
	for _, c := range cases {
		if got := DefaultConfig(c.cores).Clusters; got != c.clusters {
			t.Errorf("DefaultConfig(%d).Clusters = %d, want %d", c.cores, got, c.clusters)
		}
	}
}

func TestClusterOf(t *testing.T) {
	n := New(DefaultConfig(16))
	if n.ClusterOf(0) != 0 || n.ClusterOf(3) != 0 || n.ClusterOf(4) != 1 || n.ClusterOf(15) != 3 {
		t.Error("ClusterOf mapping wrong")
	}
}

func TestBusTransferTiming(t *testing.T) {
	n := New(DefaultConfig(4))
	// 32 bytes over a 32-byte bus: 1 cycle occupancy + 2 cycles latency
	// at 800 MHz = 3.75 ns.
	done := n.BusData(0, 0, 32)
	if done != 3750*sim.Picosecond {
		t.Errorf("bus transfer done = %v, want 3.75ns", done)
	}
}

func TestXbarTiming(t *testing.T) {
	n := New(DefaultConfig(4))
	// 32 bytes over a 16-byte port: 2 cycles (2.5ns) + 2.5ns latency.
	done := n.ToGlobal(0, 0, 32)
	if done != 5*sim.Nanosecond {
		t.Errorf("xbar transfer done = %v, want 5ns", done)
	}
}

func TestBusesIndependent(t *testing.T) {
	n := New(DefaultConfig(16))
	d0 := n.BusData(0, 0, 3200)
	d1 := n.BusData(0, 1, 32)
	if d1 >= d0 {
		t.Error("cluster buses must not contend with each other")
	}
}

func TestBusContention(t *testing.T) {
	n := New(DefaultConfig(4))
	first := n.BusData(0, 0, 32)
	second := n.BusData(0, 0, 32)
	if second <= first {
		t.Errorf("second transfer on same bus must queue: %v <= %v", second, first)
	}
}

func TestStatsCounters(t *testing.T) {
	n := New(DefaultConfig(8))
	n.BusData(0, 0, 64)
	n.BusControl(0, 1)
	n.ToGlobal(0, 0, 32)
	n.FromGlobal(0, 1, 32)
	st := n.Stats()
	if st.BusDataBytes != 64 || st.BusControl != 1 || st.XbarBytes != 64 || st.XbarMsgs != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAvgBusUtilization(t *testing.T) {
	n := New(DefaultConfig(8)) // 2 clusters
	n.BusData(0, 0, 3200)      // busy cluster 0 for 100 cycles
	end := sim.MHz(800).Cycles(200)
	avg := n.AvgBusUtilization(end)
	u0 := n.BusUtilization(0, end)
	if u0 <= 0 || avg <= 0 {
		t.Fatal("utilizations not computed")
	}
	// Cluster 1 is idle, so the average is half of cluster 0's.
	if diff := avg - u0/2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("avg = %v, want %v", avg, u0/2)
	}
	if n.AvgBusUtilization(0) != 0 {
		t.Error("zero window should give zero utilization")
	}
}

func TestClusteredConfigCustomSize(t *testing.T) {
	cfg := DefaultConfigClustered(16, 8)
	if cfg.Clusters != 2 || cfg.CoresPerClust != 8 {
		t.Errorf("cfg = %+v", cfg)
	}
	n := New(cfg)
	if n.ClusterOf(7) != 0 || n.ClusterOf(8) != 1 {
		t.Error("cluster mapping wrong for 8-core clusters")
	}
	// Degenerate request: perCluster <= 0 falls back to 4.
	if DefaultConfigClustered(16, 0).CoresPerClust != 4 {
		t.Error("fallback cluster size broken")
	}
}

package prefetch

import (
	"testing"

	"repro/internal/mem"
)

const ls = mem.LineSize

func TestDisabled(t *testing.T) {
	p := New(0)
	if got := p.Miss(0x1000); got != nil {
		t.Errorf("disabled prefetcher issued %v", got)
	}
}

func TestSequentialStreamDetection(t *testing.T) {
	p := New(4)
	if got := p.Miss(1 * ls); got != nil {
		t.Errorf("first miss should not prefetch, got %v", got)
	}
	// Second sequential miss allocates a stream and runs 4 lines ahead.
	got := p.Miss(2 * ls)
	if len(got) != 4 {
		t.Fatalf("second miss issued %d prefetches, want 4", len(got))
	}
	for i, a := range got {
		if want := mem.Addr((3 + i) * ls); a != want {
			t.Errorf("prefetch[%d] = %v, want %v", i, a, want)
		}
	}
}

func TestRandomMissesNeverPrefetch(t *testing.T) {
	p := New(4)
	addrs := []mem.Addr{0x100000, 0x4000, 0x930000, 0x20, 0x77000, 0x500000}
	for _, a := range addrs {
		if got := p.Miss(a); got != nil {
			t.Errorf("random miss %v triggered prefetch %v", a, got)
		}
	}
}

func TestTaggedHitAdvancesStream(t *testing.T) {
	p := New(2)
	p.Miss(1 * ls)
	issued := p.Miss(2 * ls) // prefetches lines 3,4
	if len(issued) != 2 {
		t.Fatalf("want 2 issued, got %d", len(issued))
	}
	// Demand hit on prefetched line 3 should top the stream up by one.
	got := p.Hit(3 * ls)
	if len(got) != 1 || got[0] != 5*ls {
		t.Errorf("Hit issued %v, want [5*ls]", got)
	}
}

func TestFourStreamsTracked(t *testing.T) {
	p := New(1)
	bases := []mem.Addr{0x10000, 0x20000, 0x30000, 0x40000}
	for _, b := range bases {
		p.Miss(b)
		if got := p.Miss(b + ls); len(got) != 1 {
			t.Errorf("stream at %v not allocated (issued %v)", b, got)
		}
	}
	if p.Stats().Allocated != 4 {
		t.Errorf("allocated = %d, want 4", p.Stats().Allocated)
	}
	// A fifth stream replaces the LRU one.
	p.Miss(0x50000)
	p.Miss(0x50000 + ls)
	if p.Stats().Replaced != 1 {
		t.Errorf("replaced = %d, want 1", p.Stats().Replaced)
	}
}

func TestDemandCatchingUpReanchors(t *testing.T) {
	p := New(2)
	p.Miss(1 * ls)
	p.Miss(2 * ls) // stream next=5*ls after running ahead
	// Demand misses line 5 (prefetch was useless/evicted): stream should
	// re-anchor and keep prefetching rather than allocate a new stream.
	got := p.Miss(5 * ls)
	if len(got) == 0 {
		t.Fatal("re-anchored stream issued nothing")
	}
	if p.Stats().Allocated != 1 {
		t.Errorf("allocated = %d, want 1 (no duplicate stream)", p.Stats().Allocated)
	}
}

func TestIssuedCountMatches(t *testing.T) {
	p := New(8)
	p.Miss(1 * ls)
	got := p.Miss(2 * ls)
	if uint64(len(got)) != p.Stats().Issued {
		t.Errorf("issued stat %d != returned %d", p.Stats().Issued, len(got))
	}
}

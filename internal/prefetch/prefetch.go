// Package prefetch implements the hardware stream prefetcher of the
// cache-based model: a tagged sequential prefetcher modeled after the one
// described by Vander Wiel and Lilja (the paper's [41]). It keeps a
// history of the last 8 cache-miss lines to detect new sequential
// streams, tracks 4 independent streams, and runs a configurable number
// of cache lines ahead of the latest miss. Prefetched lines are placed
// directly in the L1 (Table 2), and a demand hit on a prefetched line
// (the "tag") advances its stream.
package prefetch

import (
	"repro/internal/mem"
)

// DefaultStreams and DefaultHistory are the paper's fixed parameters.
const (
	DefaultStreams = 4
	DefaultHistory = 8
)

// Stats counts prefetcher activity.
type Stats struct {
	Issued    uint64 // prefetches handed to the memory system
	Allocated uint64 // streams allocated
	Replaced  uint64 // streams evicted for new ones
}

type stream struct {
	next    mem.Addr // next line to prefetch
	ahead   int      // lines currently in flight / ahead of the demand
	lastUse uint64
	valid   bool
}

// Prefetcher detects sequential miss streams and proposes prefetch
// addresses. It is pure policy: the owner issues the returned addresses
// through the memory system and installs them with the Prefetched flag.
type Prefetcher struct {
	depth   int
	history [DefaultHistory]mem.Addr
	hpos    int
	streams [DefaultStreams]stream
	tick    uint64
	stats   Stats
}

// New returns a prefetcher running depth lines ahead. depth <= 0 disables
// it (both Miss and Hit return nil).
func New(depth int) *Prefetcher {
	return &Prefetcher{depth: depth}
}

// Depth returns the configured prefetch depth.
func (p *Prefetcher) Depth() int { return p.depth }

// Stats returns a snapshot of the counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Miss informs the prefetcher of a demand miss on line a and returns the
// line addresses to prefetch now (possibly none).
func (p *Prefetcher) Miss(a mem.Addr) []mem.Addr {
	if p.depth <= 0 {
		return nil
	}
	a = a.Line()
	p.tick++
	// An existing stream expecting this line: the demand caught up with
	// the stream (its prefetch was too late or evicted); re-anchor.
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && a >= s.next-mem.Addr(p.depth*mem.LineSize) && a < s.next+mem.LineSize {
			s.lastUse = p.tick
			if a >= s.next {
				s.next = a + mem.LineSize
			}
			s.ahead = 0
			return p.run(s)
		}
	}
	// A new ascending pair in the miss history allocates a stream.
	if p.inHistory(a - mem.LineSize) {
		s := p.allocStream()
		s.next = a + mem.LineSize
		s.ahead = 0
		s.lastUse = p.tick
		s.valid = true
		out := p.run(s)
		p.remember(a)
		return out
	}
	p.remember(a)
	return nil
}

// Hit informs the prefetcher of a demand hit on a line that was installed
// by a prefetch (the tagged trigger) and returns further lines to
// prefetch.
func (p *Prefetcher) Hit(a mem.Addr) []mem.Addr {
	if p.depth <= 0 {
		return nil
	}
	a = a.Line()
	p.tick++
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		// The consumed line is behind s.next by at most depth lines if it
		// belongs to this stream.
		if a < s.next && s.next-a <= mem.Addr((p.depth+1)*mem.LineSize) {
			s.lastUse = p.tick
			if s.ahead > 0 {
				s.ahead--
			}
			return p.run(s)
		}
	}
	return nil
}

// run tops the stream back up to depth lines ahead.
func (p *Prefetcher) run(s *stream) []mem.Addr {
	var out []mem.Addr
	for s.ahead < p.depth {
		out = append(out, s.next)
		s.next += mem.LineSize
		s.ahead++
		p.stats.Issued++
	}
	return out
}

func (p *Prefetcher) inHistory(a mem.Addr) bool {
	for _, h := range p.history {
		if h == a && a != 0 {
			return true
		}
	}
	return false
}

func (p *Prefetcher) remember(a mem.Addr) {
	p.history[p.hpos] = a
	p.hpos = (p.hpos + 1) % len(p.history)
}

func (p *Prefetcher) allocStream() *stream {
	victim := &p.streams[0]
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			p.stats.Allocated++
			return s
		}
		if s.lastUse < victim.lastUse {
			victim = s
		}
	}
	p.stats.Replaced++
	return victim
}

package core

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/syncprim"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	for _, m := range []Model{CC, STR, INC} {
		for _, cores := range []int{1, 4, 16, 64} {
			if err := DefaultConfig(m, cores).Validate(); err != nil {
				t.Errorf("DefaultConfig(%v, %d).Validate() = %v", m, cores, err)
			}
		}
	}
	cfg := DefaultConfig(CC, 16)
	cfg.PrefetchDepth = 4
	cfg.NoWriteAllocate = true
	cfg.SnoopFilter = true
	cfg.L2Banks = 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("tuned CC config rejected: %v", err)
	}
}

func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		fields []string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, []string{"Cores"}},
		{"too many cores", func(c *Config) { c.Cores = 65 }, []string{"Cores"}},
		{"zero clock", func(c *Config) { c.CoreMHz = 0 }, []string{"CoreMHz"}},
		{"bad model", func(c *Config) { c.Model = Model(9) }, []string{"Model"}},
		{"negative prefetch", func(c *Config) { c.PrefetchDepth = -1 }, []string{"PrefetchDepth"}},
		{"prefetch on STR", func(c *Config) { c.Model = STR; c.PrefetchDepth = 4 }, []string{"PrefetchDepth"}},
		{"nwa on INC", func(c *Config) { c.Model = INC; c.NoWriteAllocate = true }, []string{"NoWriteAllocate"}},
		{"snoop filter on STR", func(c *Config) { c.Model = STR; c.SnoopFilter = true }, []string{"SnoopFilter"}},
		{"negative ablations", func(c *Config) { c.L2Banks = -1; c.StoreBuffer = -2 }, []string{"L2Banks", "StoreBuffer"}},
		{"several at once", func(c *Config) { c.Cores = -3; c.CoreMHz = 0; c.DMAOutstanding = -1 },
			[]string{"Cores", "CoreMHz", "DMAOutstanding"}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(CC, 4)
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
			continue
		}
		fes := FieldErrors(err)
		if len(fes) != len(tc.fields) {
			t.Errorf("%s: got %d field errors (%v), want %d", tc.name, len(fes), err, len(tc.fields))
			continue
		}
		got := map[string]bool{}
		for _, fe := range fes {
			got[fe.Field] = true
			if !strings.Contains(fe.Error(), "core: config."+fe.Field) {
				t.Errorf("%s: field error text %q lacks field name", tc.name, fe.Error())
			}
		}
		for _, f := range tc.fields {
			if !got[f] {
				t.Errorf("%s: missing field error for %s in %v", tc.name, f, err)
			}
		}
	}
}

// deadlockKernel drives the machine into a real synchronization
// deadlock: core 0 takes the lock and finishes without releasing it,
// every other core blocks acquiring it.
type deadlockKernel struct{ lock *syncprim.Lock }

func (k *deadlockKernel) Name() string { return "deadlock-kernel" }
func (k *deadlockKernel) Setup(sys *System) {
	k.lock = syncprim.NewLock("poison")
}
func (k *deadlockKernel) Run(p *cpu.Proc) {
	if p.ID() == 0 {
		k.lock.Acquire(p)
		return // exits still holding the lock
	}
	p.WaitUntil(100 * sim.Nanosecond) // let core 0 win the lock race
	k.lock.Acquire(p)
	k.lock.Release(p)
}
func (k *deadlockKernel) Verify() error { return nil }

// TestRunRecoversDeadlock proves System.Run is the recovery boundary: a
// model-level deadlock comes back as a typed error with an engine-state
// snapshot naming the contended lock, not as a process-killing panic.
func TestRunRecoversDeadlock(t *testing.T) {
	sys := New(DefaultConfig(CC, 4))
	rep, err := sys.Run(&deadlockKernel{})
	if err == nil {
		t.Fatal("deadlocked run returned nil error")
	}
	if rep != nil {
		t.Fatalf("deadlocked run returned a report: %+v", rep)
	}
	de, ok := err.(*sim.DeadlockError)
	if !ok {
		t.Fatalf("err = %#v, want *sim.DeadlockError", err)
	}
	if !strings.Contains(de.Error(), "awaiting lock poison") {
		t.Fatalf("deadlock error %q does not name the lock", de.Error())
	}
	if de.State.Live != 3 {
		t.Fatalf("snapshot live = %d, want 3 blocked cores", de.State.Live)
	}
}

// panicKernel panics in workload code on a task goroutine.
type panicKernel struct{}

func (panicKernel) Name() string      { return "panic-kernel" }
func (panicKernel) Setup(sys *System) {}
func (panicKernel) Run(p *cpu.Proc) {
	if p.ID() == 1 {
		panic("injected workload bug")
	}
	p.Work(100)
}
func (panicKernel) Verify() error { return nil }

func TestRunRecoversWorkloadPanic(t *testing.T) {
	sys := New(DefaultConfig(STR, 2))
	rep, err := sys.Run(panicKernel{})
	if err == nil || rep != nil {
		t.Fatalf("panicking run returned rep=%v err=%v", rep, err)
	}
	pe, ok := err.(*sim.TaskPanicError)
	if !ok {
		t.Fatalf("err = %#v, want *sim.TaskPanicError", err)
	}
	if pe.TaskName != "core1" || pe.Value != "injected workload bug" {
		t.Fatalf("panic error = %+v", pe)
	}
}

// TestRunRecoversSetupPanic checks the boundary covers Setup too.
type setupPanicKernel struct{}

func (setupPanicKernel) Name() string      { return "setup-panic" }
func (setupPanicKernel) Setup(sys *System) { panic("bad allocation") }
func (setupPanicKernel) Run(p *cpu.Proc)   {}
func (setupPanicKernel) Verify() error     { return nil }

func TestRunRecoversSetupPanic(t *testing.T) {
	sys := New(DefaultConfig(CC, 2))
	rep, err := sys.Run(setupPanicKernel{})
	if err == nil || rep != nil {
		t.Fatalf("rep=%v err=%v, want recovered error", rep, err)
	}
	if !strings.Contains(err.Error(), "bad allocation") {
		t.Fatalf("err = %v", err)
	}
}

// TestAbortDuringRun proves the watchdog path end to end at the core
// layer: Abort from another goroutine cancels a running simulation and
// the error carries the progress dump.
type spinKernel struct{ started chan struct{} }

func (k *spinKernel) Name() string      { return "spin-kernel" }
func (k *spinKernel) Setup(sys *System) {}
func (k *spinKernel) Run(p *cpu.Proc) {
	if k.started != nil {
		close(k.started)
		k.started = nil
	}
	for {
		p.Work(1000)
		p.Task().Sync()
	}
}
func (k *spinKernel) Verify() error { return nil }

func TestAbortDuringRun(t *testing.T) {
	cfg := DefaultConfig(CC, 1)
	cfg.MaxSimTime = 0 // disable the livelock net; Abort must do the stopping
	sys := New(cfg)
	started := make(chan struct{})
	k := &spinKernel{started: started}
	go func() {
		<-started // not k.started: Run nils that field after closing
		sys.Abort("watchdog: test budget exceeded")
	}()
	rep, err := sys.Run(k)
	if rep != nil {
		t.Fatalf("aborted run returned a report")
	}
	ae, ok := err.(*sim.AbortError)
	if !ok {
		t.Fatalf("err = %#v, want *sim.AbortError", err)
	}
	if ae.Reason != "watchdog: test budget exceeded" {
		t.Fatalf("reason = %q", ae.Reason)
	}
	if len(ae.State.Tasks) == 0 {
		t.Fatal("abort error carries no task states")
	}
}
